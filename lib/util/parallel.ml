type t = {
  size : int;
  lock : Mutex.t;
  nonempty : Condition.t;
  jobs : (unit -> unit) Queue.t;
  mutable stop : bool;
  mutable workers : unit Domain.t list;
}

let in_worker_key = Domain.DLS.new_key (fun () -> false)

let in_worker () = Domain.DLS.get in_worker_key

let worker_loop pool =
  Domain.DLS.set in_worker_key true;
  let rec loop () =
    Mutex.lock pool.lock;
    while Queue.is_empty pool.jobs && not pool.stop do
      Condition.wait pool.nonempty pool.lock
    done;
    if Queue.is_empty pool.jobs then Mutex.unlock pool.lock
    else begin
      let job = Queue.pop pool.jobs in
      Mutex.unlock pool.lock;
      job ();
      loop ()
    end
  in
  loop ()

let create n =
  let size = max 1 n in
  let pool =
    {
      size;
      lock = Mutex.create ();
      nonempty = Condition.create ();
      jobs = Queue.create ();
      stop = false;
      workers = [];
    }
  in
  if size > 1 then
    pool.workers <-
      List.init size (fun _ -> Domain.spawn (fun () -> worker_loop pool));
  pool

let size t = t.size

let shutdown t =
  Mutex.lock t.lock;
  t.stop <- true;
  Condition.broadcast t.nonempty;
  let workers = t.workers in
  t.workers <- [];
  Mutex.unlock t.lock;
  List.iter Domain.join workers

(* Left-to-right by construction — [List.map]'s application order is
   unspecified, and callers rely on jobs running in list order when we
   degrade to sequential (e.g. RNG-consuming setup code). *)
let seq_map f xs = List.rev (List.rev_map f xs)

let map pool f xs =
  if pool.size <= 1 || pool.workers = [] || in_worker () then seq_map f xs
  else begin
    let input = Array.of_list xs in
    let n = Array.length input in
    if n = 0 then []
    else begin
      let results = Array.make n None in
      let failure = ref None in
      let remaining = ref n in
      let done_lock = Mutex.create () in
      let done_cond = Condition.create () in
      let job i () =
        (try results.(i) <- Some (f input.(i))
         with e ->
           let bt = Printexc.get_raw_backtrace () in
           Mutex.lock done_lock;
           (* keep the lowest-indexed failure so re-raising is
              deterministic regardless of worker interleaving *)
           (match !failure with
            | Some (j, _, _) when j < i -> ()
            | _ -> failure := Some (i, e, bt));
           Mutex.unlock done_lock);
        Mutex.lock done_lock;
        decr remaining;
        if !remaining = 0 then Condition.broadcast done_cond;
        Mutex.unlock done_lock
      in
      Mutex.lock pool.lock;
      for i = 0 to n - 1 do
        Queue.add (job i) pool.jobs
      done;
      Condition.broadcast pool.nonempty;
      Mutex.unlock pool.lock;
      Mutex.lock done_lock;
      while !remaining > 0 do
        Condition.wait done_cond done_lock
      done;
      Mutex.unlock done_lock;
      match !failure with
      | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
      | None ->
        Array.to_list
          (Array.map
             (function Some r -> r | None -> assert false)
             results)
    end
  end

let chunks size xs =
  let rec go acc cur k = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | x :: rest ->
      if k = size then go (List.rev cur :: acc) [ x ] 1 rest
      else go acc (x :: cur) (k + 1) rest
  in
  go [] [] 0 xs

let map_chunked ?chunk pool f xs =
  let n = List.length xs in
  if n = 0 then []
  else begin
    let chunk =
      match chunk with
      | Some c -> max 1 c
      | None -> max 1 (n / (4 * pool.size))
    in
    if chunk <= 1 then map pool f xs
    else List.concat (map pool (fun c -> seq_map f c) (chunks chunk xs))
  end

let default_size () =
  match Sys.getenv_opt "MP_POOL_SIZE" with
  | Some s ->
    (match int_of_string_opt (String.trim s) with
     | Some n when n > 0 -> n
     | _ -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

let global_pool = ref None
let global_lock = Mutex.create ()

let global () =
  Mutex.lock global_lock;
  let pool =
    match !global_pool with
    | Some p -> p
    | None ->
      let p = create (default_size ()) in
      global_pool := Some p;
      at_exit (fun () -> shutdown p);
      p
  in
  Mutex.unlock global_lock;
  pool
