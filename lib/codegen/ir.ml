open Mp_isa

type level = Mp_uarch.Cache_geometry.level

type instr = {
  index : int;
  op : Instruction.t;
  dests : Reg.t list;
  srcs : Reg.t list;
  imm : int64 option;
  mem_target : level option;
  taken_pattern : bool array option;
}

type t = {
  name : string;
  body : instr array;
  reg_init : (Reg.t * int64) list;
  imm_policy : string;
  memory_distribution : (level * float) list option;
  provenance : string list;
  struct_hash : int64;
  body_hash : int64;
}

let size t = Array.length t.body

(* ----- structural content hash ------------------------------------------- *)

(* Small dense ids for the hash folds: a register is its file rank and
   index, a hierarchy level its position. Both are total and injective,
   so the fold never conflates distinct operands. *)
let reg_id r =
  match (r : Reg.t) with
  | Reg.Gpr i -> i
  | Reg.Fpr i -> 0x100 + i
  | Reg.Vsr i -> 0x200 + i
  | Reg.Cr_field i -> 0x300 + i
  | Reg.Ctr -> 0x400

let level_id = function
  | Mp_uarch.Cache_geometry.L1 -> 1
  | Mp_uarch.Cache_geometry.L2 -> 2
  | Mp_uarch.Cache_geometry.L3 -> 3
  | Mp_uarch.Cache_geometry.MEM -> 4

let fold_regs h rs =
  List.fold_left
    (fun h r -> Mp_util.Fnv.int h (reg_id r))
    (Mp_util.Fnv.int h (List.length rs))
    rs

let fold_instr h (i : instr) =
  let open Mp_util.Fnv in
  let h = string h i.op.Mp_isa.Instruction.mnemonic in
  let h = fold_regs h i.dests in
  let h = fold_regs h i.srcs in
  let h =
    match i.imm with None -> byte h 0 | Some v -> int64 (byte h 1) v
  in
  let h =
    match i.mem_target with
    | None -> byte h 0
    | Some l -> byte h (0x10 + level_id l)
  in
  match i.taken_pattern with
  | None -> byte h 0
  | Some pat ->
    Array.fold_left bool (int (byte h 1) (Array.length pat)) pat

(* Everything a measurement can depend on through the program itself:
   the name (per-run RNGs are seeded from it), the instruction stream
   with operands, immediates, memory targets and branch patterns, the
   register initialisation, and the memory distribution (it drives
   address-stream synthesis at deployment). [imm_policy] and
   [provenance] are deliberately excluded — they are metadata about how
   the program was built, already reflected in the fields above
   (provenance additionally decides seed-independence, which the cache
   key accounts for separately). *)
let fold_content h ~body ~reg_init ~memory_distribution =
  let open Mp_util.Fnv in
  let h = int h (Array.length body) in
  let h = Array.fold_left fold_instr h body in
  let h = int h (List.length reg_init) in
  let h =
    List.fold_left
      (fun h (r, v) -> int64 (int h (reg_id r)) v)
      h reg_init
  in
  match memory_distribution with
  | None -> byte h 0
  | Some dist ->
    List.fold_left
      (fun h (l, w) -> int64 (byte h (level_id l)) (Int64.bits_of_float w))
      (int (byte h 1) (List.length dist))
      dist

let compute_struct_hash ~name ~body ~reg_init ~memory_distribution =
  let open Mp_util.Fnv in
  finish
    (fold_content (string seed name) ~body ~reg_init ~memory_distribution)

(* Same content fold minus the name: two programs that differ only in
   their label collapse to the same body hash. The name matters to a
   measurement only through the per-run RNG, and only for programs
   that consume randomness (memory streams); name-insensitive layers —
   the steady-state replay table in particular — key on this hash and
   account for the RNG channel separately. *)
let compute_body_hash ~body ~reg_init ~memory_distribution =
  Mp_util.Fnv.(finish (fold_content seed ~body ~reg_init ~memory_distribution))

let rehash t =
  { t with
    struct_hash =
      compute_struct_hash ~name:t.name ~body:t.body ~reg_init:t.reg_init
        ~memory_distribution:t.memory_distribution;
    body_hash =
      compute_body_hash ~body:t.body ~reg_init:t.reg_init
        ~memory_distribution:t.memory_distribution }

let struct_hash t = t.struct_hash

let body_hash t = t.body_hash

let has_memory t =
  Array.exists (fun i -> Mp_isa.Instruction.is_memory i.op) t.body

let instruction_mix t =
  let table = Hashtbl.create 32 in
  Array.iter
    (fun i ->
      let m = i.op.Instruction.mnemonic in
      Hashtbl.replace table m (1 + Option.value ~default:0 (Hashtbl.find_opt table m)))
    t.body;
  Hashtbl.fold (fun m c acc -> (m, c) :: acc) table []
  |> List.sort (fun (_, a) (_, b) -> compare b a)

let memory_instructions t =
  Array.to_list t.body
  |> List.filter (fun i -> Instruction.is_memory i.op)

let check_instr i =
  let op = i.op in
  let fail fmt = Printf.ksprintf (fun s -> Error s) fmt in
  if Instruction.is_memory op && i.mem_target = None then
    fail "%s at %d: memory op without target level" op.mnemonic i.index
  else if (not (Instruction.is_memory op)) && i.mem_target <> None then
    fail "%s at %d: non-memory op with target level" op.mnemonic i.index
  else
    let src_ok =
      match op.mem with
      | Instruction.No_mem ->
        (* data sources follow the instruction's register file *)
        Instruction.is_branch op
        || List.for_all (fun r -> Reg.class_of r = op.data_class) i.srcs
      | Instruction.Load ->
        (* only address sources, which are GPRs *)
        List.for_all (fun r -> Reg.class_of r = Instruction.Gpr) i.srcs
      | Instruction.Store ->
        (* exactly one data source of the data class; addresses are GPRs *)
        let data, addr =
          List.partition
            (fun r ->
              Reg.class_of r = op.data_class
              && op.data_class <> Instruction.Gpr)
            i.srcs
        in
        List.length data <= 1
        && List.for_all (fun r -> Reg.class_of r = Instruction.Gpr) addr
    in
    if not src_ok then
      fail "%s at %d: source register class mismatch" op.mnemonic i.index
    else Ok ()

let validate t =
  let rec check idx =
    if idx = Array.length t.body then Ok ()
    else
      let i = t.body.(idx) in
      if i.index <> idx then
        Error (Printf.sprintf "instruction %d carries index %d" idx i.index)
      else
        match check_instr i with Ok () -> check (idx + 1) | Error e -> Error e
  in
  check 0

let popcount64 v =
  let rec go acc v =
    if Int64.equal v 0L then acc
    else go (acc + 1) Int64.(logand v (sub v 1L))
  in
  go 0 v

let data_activity_factor t =
  (* register data only: immediates are narrow fields whose 64-bit
     popcount would skew the factor *)
  match List.map snd t.reg_init with
  | [] -> 0.5 (* uninitialised: assume typical random switching *)
  | vs ->
    let total =
      List.fold_left (fun acc v -> acc +. (float_of_int (popcount64 v) /. 64.0))
        0.0 vs
    in
    total /. float_of_int (List.length vs)

let pp_summary ppf t =
  Format.fprintf ppf "@[<v>%s: %d instructions, %d distinct opcodes"
    t.name (size t) (List.length (instruction_mix t));
  (match t.memory_distribution with
   | None -> ()
   | Some d ->
     Format.fprintf ppf ", mem={%s}"
       (String.concat ","
          (List.map
             (fun (l, w) ->
               Printf.sprintf "%s:%.0f%%"
                 (Mp_uarch.Cache_geometry.level_to_string l) (w *. 100.0))
             d)));
  Format.fprintf ppf "@]"
