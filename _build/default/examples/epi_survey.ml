(* EPI survey: run the automatic bootstrap on a slice of the ISA and
   print the derived per-instruction properties — latency, throughput,
   stressed units and energy-per-instruction — then the taxonomy rows
   (the paper's case study B, at example scale).

   Run with: dune exec examples/epi_survey.exe *)

open Microprobe

let () =
  let arch = get_architecture "POWER7" in
  let machine = Machine.create arch.Arch.uarch in
  let mnemonics =
    [ "add"; "and"; "subf"; "addic"; "mulldo"; "mulld"; "divd";
      "lbz"; "lwz"; "ld"; "ldux"; "lhaux"; "lxvw4x"; "lvewx";
      "fadd"; "fmadd"; "xvmaddadp"; "xvnmsubmdp"; "xstsqrtdp";
      "std"; "stfd"; "stxvw4x"; "stfsux"; "stfdu"; "dadd" ]
  in
  Printf.printf "Bootstrapping %d instructions (two micro-benchmarks each)...\n%!"
    (List.length mnemonics);
  let props =
    Epi.Bootstrap.run ~machine ~arch
      ~instructions:(List.map (Arch.find_instruction arch) mnemonics)
      ()
  in
  let table =
    Util.Text_table.create
      [ "Instr."; "Latency"; "Thread IPC"; "Core IPC"; "EPI"; "Units" ]
  in
  List.iter
    (fun (p : Epi.Bootstrap.props) ->
      Util.Text_table.add_row table
        [ p.Epi.Bootstrap.mnemonic;
          Printf.sprintf "%.1f" p.Epi.Bootstrap.derived_latency;
          Printf.sprintf "%.2f" p.Epi.Bootstrap.throughput;
          Printf.sprintf "%.2f" p.Epi.Bootstrap.core_ipc;
          Printf.sprintf "%.3f" p.Epi.Bootstrap.epi;
          String.concat "+"
            (List.map Pipe.unit_to_string p.Epi.Bootstrap.units) ])
    props;
  Util.Text_table.print table;
  (* group into the Table-3 taxonomy *)
  print_endline "Taxonomy (per category: top IPCxEPI plus same-IPC contrasts):";
  let cats = Epi.Taxonomy.categorize ~isa:arch.Arch.isa props in
  let rows = Epi.Taxonomy.table3 cats in
  List.iter
    (fun (r : Epi.Taxonomy.row) ->
      Printf.printf "  %-20s %-12s IPC %.2f  EPI x%.2f (global)\n"
        r.Epi.Taxonomy.category r.Epi.Taxonomy.mnemonic r.Epi.Taxonomy.core_ipc
        r.Epi.Taxonomy.epi_global)
    rows;
  (* data-dependence of energy *)
  let ins = Arch.find_instruction arch "xvmaddadp" in
  let random = Epi.Bootstrap.instruction_props ~machine ~arch ins in
  let zero =
    Epi.Bootstrap.instruction_props ~machine ~arch ~zero_data:true ins
  in
  Printf.printf
    "\nxvmaddadp EPI with random inputs: %.3f; with all-zero inputs: %.3f\n\
     (%.0f%% lower — why the bootstrap randomises its input data).\n"
    random.Epi.Bootstrap.epi zero.Epi.Bootstrap.epi
    ((1.0 -. (zero.Epi.Bootstrap.epi /. random.Epi.Bootstrap.epi)) *. 100.0)
