test/test_codegen.ml: Alcotest Arch Array Builder Emit Instruction Ir List Mp_codegen Mp_isa Mp_uarch Mp_util Passes QCheck QCheck_alcotest Reg Reg_alloc String Synthesizer
