open Mp_uarch

type category = {
  label : string;
  members : Bootstrap.props list;
}

let event p u =
  match List.assoc_opt u p.Bootstrap.events_per_instr with
  | Some r -> r
  | None -> 0.0

let category_label (p : Bootstrap.props) is_memory =
  let fxu = event p Pipe.FXU and lsu = event p Pipe.LSU and vsu = event p Pipe.VSU in
  if is_memory then begin
    let parts = [ "LSU" ] in
    let parts =
      if vsu >= 0.3 then parts @ [ "VSU" ] else parts
    in
    let parts =
      if fxu >= 1.5 then parts @ [ "2FXU" ]
      else if fxu >= 0.5 then parts @ [ "FXU" ]
      else parts
    in
    String.concat " and " parts
  end
  else if fxu >= 0.2 && lsu >= 0.2 then "FXU or LSU"
  else if fxu >= 0.2 then "FXU"
  else if lsu >= 0.2 then "LSU"
  else if vsu >= 0.2 then "VSU"
  else "Other"

let category_rank = function
  | "FXU" -> 0
  | "LSU" -> 1
  | "VSU" -> 2
  | "FXU or LSU" -> 3
  | "LSU and FXU" -> 4
  | "LSU and 2FXU" -> 5
  | "LSU and VSU" -> 6
  | "LSU and VSU and FXU" -> 7
  | "LSU and VSU and 2FXU" -> 8
  | _ -> 9

let categorize ~isa props =
  let table = Hashtbl.create 16 in
  List.iter
    (fun (p : Bootstrap.props) ->
      let is_memory =
        match Mp_isa.Isa_def.find isa p.Bootstrap.mnemonic with
        | Some i -> Mp_isa.Instruction.is_memory i
        | None -> false
      in
      let label = category_label p is_memory in
      let prev = Option.value ~default:[] (Hashtbl.find_opt table label) in
      Hashtbl.replace table label (p :: prev))
    props;
  Hashtbl.fold
    (fun label members acc ->
      let members =
        List.sort
          (fun (a : Bootstrap.props) b -> compare b.Bootstrap.epi a.Bootstrap.epi)
          members
      in
      { label; members } :: acc)
    table []
  |> List.sort (fun a b ->
         compare (category_rank a.label, a.label) (category_rank b.label, b.label))

type row = {
  category : string;
  mnemonic : string;
  core_ipc : float;
  epi_global : float;
  epi_category : float;
  ipc_epi_product : float;
}

let same_ipc a b = Float.abs (a -. b) < 0.07

(* Group members by IPC (within tolerance); groups are lists sorted by
   descending EPI. *)
let ipc_groups members =
  let groups = ref [] in
  List.iter
    (fun (p : Bootstrap.props) ->
      match
        List.find_opt
          (fun (ipc, _) -> same_ipc ipc p.Bootstrap.core_ipc)
          !groups
      with
      | Some (ipc, g) ->
        groups :=
          (ipc, p :: g) :: List.filter (fun (i, _) -> i <> ipc) !groups
      | None -> groups := (p.Bootstrap.core_ipc, [ p ]) :: !groups)
    members;
  List.map
    (fun (ipc, g) ->
      (ipc,
       List.sort
         (fun (a : Bootstrap.props) b -> compare b.Bootstrap.epi a.Bootstrap.epi)
         g))
    !groups

let group_contrast = function
  | [] -> 0.0
  | (g : Bootstrap.props list) ->
    let epis = List.filter_map (fun p ->
        if p.Bootstrap.epi > 0.0 then Some p.Bootstrap.epi else None) g in
    (match epis with
     | [] | [ _ ] -> 0.0
     | _ ->
       List.fold_left Float.max neg_infinity epis
       /. List.fold_left Float.min infinity epis)

let select_members ?(per_category = 3) (c : category) =
  match c.members with
  | [] -> []
  | members ->
    (* the top row: highest IPCxEPI product in the category *)
    let top =
      List.fold_left
        (fun best (p : Bootstrap.props) ->
          if p.Bootstrap.core_ipc *. p.Bootstrap.epi
             > best.Bootstrap.core_ipc *. best.Bootstrap.epi
          then p
          else best)
        (List.hd members) members
    in
    (* companions: the same-IPC group (top excluded) with the widest EPI
       contrast — "same core IPC but notably different EPI" *)
    let rest = List.filter (fun p -> p != top) members in
    let groups = ipc_groups rest in
    let best_group =
      List.fold_left
        (fun acc (_, g) ->
          if group_contrast g > group_contrast acc then g else acc)
        [] groups
    in
    let companions =
      match best_group with
      | [] -> []
      | [ x ] -> [ x ]
      | x :: rest ->
        (* highest- and lowest-EPI exemplars of the group *)
        let rec last = function [ y ] -> y | _ :: t -> last t | [] -> x in
        let mids = List.filteri (fun i _ -> i < per_category - 3) rest in
        (x :: mids) @ [ last rest ]
    in
    top :: List.filteri (fun i _ -> i < per_category - 1) companions

let table3 ?(per_category = 3) categories =
  let selected =
    List.concat_map
      (fun c ->
        List.map (fun p -> (c.label, p)) (select_members ~per_category c))
      categories
  in
  let epis = List.map (fun (_, (p : Bootstrap.props)) -> p.Bootstrap.epi) selected in
  let global_min =
    List.fold_left Float.min infinity
      (List.filter (fun e -> e > 0.0) epis)
  in
  let global_min = if global_min = infinity then 1.0 else global_min in
  List.map
    (fun (label, (p : Bootstrap.props)) ->
      let cat_min =
        List.fold_left
          (fun acc (l, (q : Bootstrap.props)) ->
            if l = label && q.Bootstrap.epi > 0.0 then Float.min acc q.Bootstrap.epi
            else acc)
          infinity selected
      in
      let cat_min = if cat_min = infinity then 1.0 else cat_min in
      {
        category = label;
        mnemonic = p.Bootstrap.mnemonic;
        core_ipc = p.Bootstrap.core_ipc;
        epi_global = p.Bootstrap.epi /. global_min;
        epi_category = p.Bootstrap.epi /. cat_min;
        ipc_epi_product = p.Bootstrap.core_ipc *. p.Bootstrap.epi;
      })
    selected

let epi_spread c =
  (* the paper's statement concerns instructions stressing the same
     unit *at the same rate*: compare within same-IPC groups only *)
  List.fold_left
    (fun acc (_, g) ->
      let r = group_contrast g in
      if r > 0.0 then Float.max acc ((r -. 1.0) *. 100.0) else acc)
    0.0
    (ipc_groups c.members)
