(* Exact rational pipe occupancies. The simulator keeps pipe busy time
   as integer ticks over a per-uarch common denominator, so every
   occupancy a definition hands out must be an exact rational — floats
   like 1.19 would reintroduce the ulp drift this module exists to
   eliminate. Values are kept normalised (gcd 1, positive denominator)
   so structural equality is value equality. *)

type t = { num : int; den : int }

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let make num den =
  if num < 0 || den <= 0 then invalid_arg "Occupancy.make";
  let g = max 1 (gcd num den) in
  { num = num / g; den = den / g }

let of_int n = make n 1

let one = { num = 1; den = 1 }

let num t = t.num

let den t = t.den

let is_zero t = t.num = 0

let to_float t = float_of_int t.num /. float_of_int t.den

let lcm a b = if a = 0 || b = 0 then 0 else a / gcd a b * b

(* fold helper for computing a definition-wide common denominator *)
let lcm_den acc t = lcm acc t.den

let ticks t ~den =
  if den <= 0 || den mod t.den <> 0 then
    invalid_arg "Occupancy.ticks: denominator is not a common multiple";
  t.num * (den / t.den)

let compare a b = compare (a.num * b.den) (b.num * a.den)

let equal a b = a.num = b.num && a.den = b.den

let to_string t =
  if t.den = 1 then string_of_int t.num
  else Printf.sprintf "%d/%d" t.num t.den

let pp ppf t = Format.pp_print_string ppf (to_string t)
