(** Area-heuristic bottom-up model, after Isci & Martonosi (the paper's
    reference \[27\]): instead of learning one weight per component from
    dedicated micro-benchmarks, assume each unit's dynamic power is
    proportional to its floorplan area times its utilization, leaving a
    single activity coefficient to calibrate. Cheaper to train than the
    full bottom-up model, but blind to per-unit energy differences that
    the area does not capture. *)

type t = {
  alpha : float;        (** power per (mm² × utilization) *)
  mem_coef : float;     (** per off-core memory access (not floorplan-scaled) *)
  cores_coef : float;
  smt_coef : float;
  intercept : float;
}

val train :
  uarch:Mp_uarch.Uarch_def.t -> Mp_sim.Measurement.t list -> t
(** Least-squares calibration of the four coefficients + intercept on
    any measurement population. *)

val predict : uarch:Mp_uarch.Uarch_def.t -> t -> Mp_sim.Measurement.t -> float

val pp : Format.formatter -> t -> unit
