open Mp_codegen
open Mp_isa

type t = {
  simple_int : float;
  complex_int : float;
  mul : float;
  fp : float;
  vec : float;
  load : float;
  store : float;
  branch_freq : float;
  taken_ratio : float;
  mem_mix : (Mp_uarch.Cache_geometry.level * float) list;
  dep : Builder.dep_mode;
}

let balanced =
  {
    simple_int = 0.30;
    complex_int = 0.10;
    mul = 0.05;
    fp = 0.10;
    vec = 0.05;
    load = 0.25;
    store = 0.10;
    branch_freq = 0.05;
    taken_ratio = 0.7;
    mem_mix =
      [ (Mp_uarch.Cache_geometry.L1, 0.85); (Mp_uarch.Cache_geometry.L2, 0.10);
        (Mp_uarch.Cache_geometry.L3, 0.04); (Mp_uarch.Cache_geometry.MEM, 0.01) ];
    dep = Builder.Random_range (1, 8);
  }

let perturb rng ~strength p =
  let j w =
    let f = 1.0 +. ((Mp_util.Rng.float rng 2.0 -. 1.0) *. strength) in
    Float.max 0.0 (w *. f)
  in
  {
    p with
    simple_int = j p.simple_int;
    complex_int = j p.complex_int;
    mul = j p.mul;
    fp = j p.fp;
    vec = j p.vec;
    load = j p.load;
    store = j p.store;
    mem_mix = List.map (fun (l, w) -> (l, Float.max 0.001 (j w))) p.mem_mix;
  }

(* Candidate pools per class; weight is split uniformly inside a pool. *)
let pool arch names =
  List.filter_map (Isa_def.find arch.Arch.isa) names

let simple_pool arch =
  pool arch [ "add"; "and"; "or"; "xor"; "nor"; "addi"; "ori"; "neg" ]

let complex_pool arch =
  pool arch [ "subf"; "addic"; "extsw"; "cntlzd"; "rldicl"; "slw"; "srad"; "popcntd" ]

let mul_pool arch = pool arch [ "mulld"; "mullw"; "mulhw"; "mulli" ]

let fp_pool arch = pool arch [ "fadd"; "fmul"; "fmadd"; "fmsub"; "xsadddp"; "xsmuldp" ]

let vec_pool arch =
  pool arch [ "xvmaddadp"; "xvadddp"; "xvmuldp"; "vadduwm"; "vand"; "xxlxor" ]

let load_pool arch =
  pool arch [ "lbz"; "lwz"; "ld"; "ldx"; "lhz"; "lfd"; "lfdx"; "lxvd2x" ]

let store_pool arch = pool arch [ "stw"; "std"; "stdx"; "stb"; "stfd"; "stxvd2x" ]

let weighted_pool pool w =
  match pool with
  | [] -> []
  | _ ->
    let each = w /. float_of_int (List.length pool) in
    List.map (fun i -> (i, each)) pool

let program ~arch ~name ~seed ?(size = 1024) p =
  let weighted =
    weighted_pool (simple_pool arch) p.simple_int
    @ weighted_pool (complex_pool arch) p.complex_int
    @ weighted_pool (mul_pool arch) p.mul
    @ weighted_pool (fp_pool arch) p.fp
    @ weighted_pool (vec_pool arch) p.vec
    @ weighted_pool (load_pool arch) p.load
    @ weighted_pool (store_pool arch) p.store
  in
  let total = List.fold_left (fun acc (_, w) -> acc +. w) 0.0 weighted in
  if total <= 0.0 then invalid_arg "Profile.program: zero weights";
  let synth = Synthesizer.create ~name arch in
  Synthesizer.add_pass synth (Passes.skeleton ~size);
  Synthesizer.add_pass synth (Passes.fill_weighted weighted);
  if p.branch_freq > 0.0 then
    Synthesizer.add_pass synth
      (Passes.branch_model
         ~bc:(Arch.find_instruction arch "bc")
         ~frequency:p.branch_freq ~taken_ratio:p.taken_ratio
         ~pattern_length:16);
  if p.load +. p.store > 0.0 then
    Synthesizer.add_pass synth (Passes.memory_model p.mem_mix);
  Synthesizer.add_pass synth (Passes.dependency p.dep);
  Synthesizer.add_pass synth (Passes.init_registers Builder.Random_values);
  Synthesizer.add_pass synth (Passes.init_immediates Builder.Random_values);
  Synthesizer.add_pass synth (Passes.rename name);
  Synthesizer.synthesize ~seed synth
