lib/dse/exhaustive.mli: Driver
