bench/main.ml: Array Bechamel_suite Context Exp_ablation Exp_model Exp_stressmark Exp_tables List Printf String Sys Unix
