open Mp_uarch
open Mp_codegen

type t = {
  lock : Mutex.t;
  table : (string, Measurement.t) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
}

type stats = { hits : int; misses : int }

let create () =
  { lock = Mutex.create (); table = Hashtbl.create 256; hits = 0; misses = 0 }

let stats t =
  Mutex.lock t.lock;
  let s = { hits = t.hits; misses = t.misses } in
  Mutex.unlock t.lock;
  s

let hit_rate t =
  let s = stats t in
  let total = s.hits + s.misses in
  if total = 0 then 0.0 else float_of_int s.hits /. float_of_int total

let reset_stats t =
  Mutex.lock t.lock;
  t.hits <- 0;
  t.misses <- 0;
  Mutex.unlock t.lock

let clear t =
  Mutex.lock t.lock;
  Hashtbl.reset t.table;
  t.hits <- 0;
  t.misses <- 0;
  Mutex.unlock t.lock

let length t =
  Mutex.lock t.lock;
  let n = Hashtbl.length t.table in
  Mutex.unlock t.lock;
  n

(* ----- fingerprinting --------------------------------------------------- *)

let level_tag = function
  | Cache_geometry.L1 -> '1'
  | Cache_geometry.L2 -> '2'
  | Cache_geometry.L3 -> '3'
  | Cache_geometry.MEM -> 'M'

let add_int buf n =
  Buffer.add_string buf (string_of_int n);
  Buffer.add_char buf ';'

let add_int64 buf n =
  Buffer.add_string buf (Int64.to_string n);
  Buffer.add_char buf ';'

let add_reg buf r =
  Buffer.add_string buf (Reg.to_string r);
  Buffer.add_char buf ','

let add_program buf (p : Ir.t) =
  Buffer.add_string buf p.Ir.name;
  Buffer.add_char buf '\x00';
  Array.iter
    (fun (i : Ir.instr) ->
      Buffer.add_string buf i.Ir.op.Mp_isa.Instruction.mnemonic;
      Buffer.add_char buf '(';
      List.iter (add_reg buf) i.Ir.dests;
      Buffer.add_char buf '<';
      List.iter (add_reg buf) i.Ir.srcs;
      (match i.Ir.imm with
       | Some v ->
         Buffer.add_char buf '#';
         add_int64 buf v
       | None -> ());
      (match i.Ir.mem_target with
       | Some l ->
         Buffer.add_char buf '@';
         Buffer.add_char buf (level_tag l)
       | None -> ());
      (match i.Ir.taken_pattern with
       | Some pat ->
         Buffer.add_char buf '?';
         Array.iter (fun b -> Buffer.add_char buf (if b then 't' else 'f')) pat
       | None -> ());
      Buffer.add_char buf ')')
    p.Ir.body;
  Buffer.add_char buf '|';
  List.iter
    (fun (r, v) ->
      add_reg buf r;
      Buffer.add_char buf '=';
      add_int64 buf v)
    p.Ir.reg_init;
  Buffer.add_char buf '|';
  match p.Ir.memory_distribution with
  | None -> Buffer.add_char buf '-'
  | Some dist ->
    List.iter
      (fun (l, w) ->
        Buffer.add_char buf (level_tag l);
        add_int64 buf (Int64.bits_of_float w))
      dist

let key ~seed ~(config : Uarch_def.config) ~warmup ~measure ~name per_thread =
  let buf = Buffer.create 4096 in
  add_int buf seed;
  add_int buf config.Uarch_def.cores;
  add_int buf config.Uarch_def.smt;
  add_int buf warmup;
  add_int buf measure;
  Buffer.add_string buf name;
  Buffer.add_char buf '\x00';
  Array.iter (add_program buf) per_thread;
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* ----- lookup ----------------------------------------------------------- *)

let find t k =
  Mutex.lock t.lock;
  let r = Hashtbl.find_opt t.table k in
  (match r with
   | Some _ -> t.hits <- t.hits + 1
   | None -> t.misses <- t.misses + 1);
  Mutex.unlock t.lock;
  r

let add t k m =
  Mutex.lock t.lock;
  if not (Hashtbl.mem t.table k) then Hashtbl.add t.table k m;
  Mutex.unlock t.lock

let find_or_add t k compute =
  match find t k with
  | Some m -> m
  | None ->
    let m = compute () in
    add t k m;
    m
