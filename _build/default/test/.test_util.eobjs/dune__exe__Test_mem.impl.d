test/test_mem.ml: Alcotest Array Cache_geometry Hashtbl List Mp_mem Mp_sim Mp_uarch Mp_util Option Power7 Uarch_def
