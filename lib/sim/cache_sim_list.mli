(** Reference cache model: the original list-based implementation of
    {!Cache_sim}, kept as the bit-exactness oracle for the packed
    default and selected there with [MP_CACHE_MODEL=list]. Use
    {!Cache_sim} everywhere except equivalence tests — this module is
    deliberately unoptimised. *)

type t

val create : Mp_uarch.Uarch_def.t -> t

val access : t -> addr:int -> store:bool -> Mp_uarch.Cache_geometry.level

val hits : t -> Mp_uarch.Cache_geometry.level -> int

val prefetches_issued : t -> int

val prefetch_streak : t -> int
(** The live sequential-stride streak, saturated at 3 (the only bound
    the prefetcher consults). *)

val reset_stats : t -> unit

val stats_snapshot : t -> int array

val credit : t -> times:int -> since:int array -> unit

val add_fingerprint : t -> Buffer.t -> unit
(** Full serialization of the behavioural state: every set's
    MRU-ordered line addresses plus the prefetcher registers —
    O(sets x ways) per call, which is exactly what the packed model's
    rolling digest replaces. *)
