(** Minimal CSV emission (RFC-4180-style quoting) for exporting
    experiment series to external plotting tools. *)

type t

val create : string list -> t
(** [create headers] starts a document. *)

val add_row : t -> string list -> unit
(** Rows are padded/truncated to the header width. *)

val add_floats : t -> float list -> unit
(** Convenience: a row of numbers. *)

val render : t -> string
(** The document, header first, [\n]-separated, fields quoted when they
    contain commas, quotes or newlines. *)

val save : t -> string -> unit
(** Write to a file. *)
