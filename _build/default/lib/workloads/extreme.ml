open Mp_codegen

type case = { name : string; program : Ir.t }

let make ~arch ~size ~name ~mnemonics ~dep ?mem_mix () =
  let pool = List.map (Arch.find_instruction arch) mnemonics in
  let synth = Synthesizer.create ~name arch in
  Synthesizer.add_pass synth (Passes.skeleton ~size);
  Synthesizer.add_pass synth (Passes.fill_uniform pool);
  (match mem_mix with
   | None -> ()
   | Some mix -> Synthesizer.add_pass synth (Passes.memory_model mix));
  Synthesizer.add_pass synth (Passes.dependency dep);
  Synthesizer.add_pass synth (Passes.init_registers Builder.Random_values);
  Synthesizer.add_pass synth (Passes.rename name);
  { name; program = Synthesizer.synthesize ~seed:1234 synth }

let cases ~arch ?(size = 1024) () =
  let l1 = [ (Mp_uarch.Cache_geometry.L1, 1.0) ] in
  let memo = [ (Mp_uarch.Cache_geometry.MEM, 1.0) ] in
  [
    (* maximum integer activity: independent simple+complex ops *)
    make ~arch ~size ~name:"FXU High"
      ~mnemonics:[ "add"; "subf"; "xor"; "addic"; "mulld" ]
      ~dep:Builder.No_deps ();
    (* minimum integer activity: one long dependence chain *)
    make ~arch ~size ~name:"FXU Low" ~mnemonics:[ "mulld" ]
      ~dep:(Builder.Fixed 1) ();
    make ~arch ~size ~name:"VSU High"
      ~mnemonics:[ "xvmaddadp"; "xvmuldp"; "xsadddp"; "xvnmsubmdp" ]
      ~dep:Builder.No_deps ();
    make ~arch ~size ~name:"VSU Low" ~mnemonics:[ "fdiv" ]
      ~dep:(Builder.Fixed 1) ();
    make ~arch ~size ~name:"L1 ld" ~mnemonics:[ "lbz"; "lwz"; "ld" ]
      ~dep:Builder.No_deps ~mem_mix:l1 ();
    make ~arch ~size ~name:"MEM" ~mnemonics:[ "ld"; "ldx"; "lfd" ]
      ~dep:Builder.No_deps ~mem_mix:memo ();
  ]
