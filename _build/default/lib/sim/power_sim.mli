(** Turn simulated core activity into chip power and sensor readings —
    the EnergyScale/TPMD stand-in. Consumes {!Energy_table} (the ground
    truth); everything downstream sees only the returned samples. *)

type reading = {
  true_power : float;      (** noiseless chip power (internal, for tests) *)
  sensor_mean : float;     (** mean of the sampled sensor trace *)
  trace : float array;     (** individual 1-ms-style sensor samples *)
}

val chip_power :
  table:Energy_table.t ->
  config:Mp_uarch.Uarch_def.config ->
  opmap:Core_sim.opmap ->
  activity:Core_sim.activity ->
  float
(** Noiseless chip power for one core's measured activity replicated
    over [config.cores] cores. *)

val sample :
  table:Energy_table.t ->
  rng:Mp_util.Rng.t ->
  ?windows:int ->
  config:Mp_uarch.Uarch_def.config ->
  opmap:Core_sim.opmap ->
  activity:Core_sim.activity ->
  unit ->
  reading
(** Apply sensor noise over [windows] (default 24) sampling windows. *)

val idle_power : table:Energy_table.t -> config:Mp_uarch.Uarch_def.config -> float
(** Chip power with enabled-but-idle cores — what a measurement of an
    empty machine reports (before sensor noise). *)
