let search ~rng ~sample ~eval ?eval_batch ~budget () =
  if budget <= 0 then invalid_arg "Random_search.search: budget";
  (* draw all points first (the RNG must be consumed in order), then
     score the whole budget as one batch *)
  let points = ref [] in
  for _ = 1 to budget do
    points := sample rng :: !points
  done;
  let all = Driver.eval_list ?eval_batch ~eval (List.rev !points) in
  { Driver.best = Driver.best_of all; evaluations = budget; all }
