lib/dse/random_search.mli: Driver Mp_util
