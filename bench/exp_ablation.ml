(* Ablations of the design choices DESIGN.md calls out:

   1. the two CMP/SMT input variables (the paper: "Models without these
      two input variables exhibit large errors and show inconsistencies
      across the different SMT and CMP modes of operation");
   2. the bottom-up fitting style (the paper's sequential per-component
      regressions vs one joint non-negative fit);
   3. the search driver for the constrained stressmark space (prior
      work's GA vs MicroProbe's exhaustive sweep vs random sampling). *)

open Microprobe
open Mp_util

let pct = Text_table.cell_pct ~decimals:1

(* A top-down model stripped of the #cores and SMT inputs. *)
type naked_td = { coef : float array; intercept : float }

let train_naked samples =
  let rows =
    Array.of_list
      (List.map
         (fun m -> Array.append (Power_model.Features.chip_sum m) [| 1.0 |])
         samples)
  in
  let y =
    Array.of_list
      (List.map (fun (m : Measurement.t) -> m.Measurement.power) samples)
  in
  let beta = Matrix.ols ~ridge:1e-6 (Matrix.of_arrays rows) y in
  { coef = Array.sub beta 0 Power_model.Features.count;
    intercept = beta.(Power_model.Features.count) }

let predict_naked t m =
  Power_model.Features.dot t.coef (Power_model.Features.chip_sum m)
  +. t.intercept

let smt_cmp_variables (ctx : Context.t) =
  Context.section
    "Ablation 1 — removing the SMT and #cores model inputs";
  let training = Context.random_multi ctx in
  let with_vars = Power_model.Top_down.train ~name:"with" training in
  let without = train_naked training in
  let spec = Context.spec ctx in
  let table =
    Text_table.create [ "Config"; "with SMT/#cores"; "without" ]
  in
  let worst = ref 0.0 in
  List.iter
    (fun (c, ms) ->
      let w =
        Power_model.Validation.paae
          ~predict:(Power_model.Top_down.predict with_vars) ms
      in
      let wo = Power_model.Validation.paae ~predict:(predict_naked without) ms in
      worst := Float.max !worst wo;
      Text_table.add_row table
        [ Uarch_def.config_to_string c; pct w; pct wo ])
    spec;
  Text_table.print table;
  Context.log
    "Worst per-configuration PAAE without the two variables: %s —\n\
     the counters only see activity; which cores and SMT modes are\n\
     powered is invisible to them, exactly as the paper argues."
    (pct !worst)

let fitting_style (ctx : Context.t) =
  Context.section
    "Ablation 2 — bottom-up variants: fitting style and the area heuristic";
  let baseline = Machine.baseline_reading ctx.Context.machine in
  let smt1 = Context.train_smt1 ctx in
  let smt_on = Context.train_smt_on ctx in
  let multi = Context.random_multi ctx in
  let spec = Context.spec_all ctx in
  let table = Text_table.create [ "Model"; "PAAE on SPEC"; "Max err" ] in
  List.iter
    (fun (name, style) ->
      let bu =
        Power_model.Bottom_up.train ~style ~baseline ~smt1 ~smt_on ~multi ()
      in
      let predict = Power_model.Bottom_up.predict bu in
      Text_table.add_row table
        [ name;
          pct (Power_model.Validation.paae ~predict spec);
          pct (Power_model.Validation.max_error ~predict spec) ])
    [ ("sequential (paper)", Power_model.Bottom_up.Sequential);
      ("joint NNLS", Power_model.Bottom_up.Joint) ];
  (* the area-size heuristic of Isci & Martonosi (ref [27]): no per-
     component training set, one activity coefficient *)
  let uarch = ctx.Context.arch.Arch.uarch in
  let area = Power_model.Area_heuristic.train ~uarch (smt1 @ smt_on @ multi) in
  let predict = Power_model.Area_heuristic.predict ~uarch area in
  Text_table.add_row table
    [ "area heuristic (Isci-style)";
      pct (Power_model.Validation.paae ~predict spec);
      pct (Power_model.Validation.max_error ~predict spec) ];
  Text_table.print table;
  Context.log
    "The area heuristic needs no micro-architecture-aware training set,\n\
     but the floorplan cannot see per-opcode energy differences."

let search_drivers (ctx : Context.t) =
  Context.section
    "Ablation 3 — search drivers over the constrained stressmark space";
  let arch = ctx.Context.arch in
  let machine = ctx.Context.machine in
  let picks =
    Stressmark.microprobe_instructions ~isa:arch.Arch.isa
      (Context.bootstrap_props ctx)
  in
  let picks = Array.of_list picks in
  let size = if ctx.Context.quick then 512 else 1024 in
  let cache = Hashtbl.create 512 in
  let evaluations = ref 0 in
  let eval (seq : Instruction.t list) =
    let key = String.concat "," (List.map (fun (i : Instruction.t) -> i.Instruction.mnemonic) seq) in
    match Hashtbl.find_opt cache key with
    | Some p -> p
    | None ->
      incr evaluations;
      let p =
        Stressmark.program_of_sequence ~arch ~size ~name:("abl-" ^ key) seq
      in
      let m =
        Machine.run machine (Context.config ctx ~cores:8 ~smt:4) p
      in
      Hashtbl.replace cache key m.Measurement.power;
      m.Measurement.power
  in
  let table = Text_table.create [ "Driver"; "Evaluations"; "Best power" ] in
  (* exhaustive *)
  let space = Stressmark.exhaustive_sequences (Array.to_list picks) ~length:6 in
  let space =
    if ctx.Context.quick then List.filteri (fun i _ -> i mod 4 = 0) space
    else space
  in
  evaluations := 0;
  let ex = Dse.Exhaustive.search ~eval space in
  Text_table.add_row table
    [ "exhaustive (MicroProbe)"; string_of_int !evaluations;
      Text_table.cell_f ~decimals:1 ex.Dse.Driver.best.Dse.Driver.score ];
  (* genetic, at a fraction of the evaluations *)
  Hashtbl.reset cache;
  evaluations := 0;
  let ops =
    {
      Dse.Genetic.init =
        (fun rng ->
          List.init 6 (fun _ -> Util.Rng.choose rng picks));
      mutate =
        (fun rng seq ->
          let i = Util.Rng.int rng 6 in
          List.mapi (fun k x -> if k = i then Util.Rng.choose rng picks else x) seq);
      crossover =
        (fun rng a b ->
          let cut = 1 + Util.Rng.int rng 4 in
          List.mapi (fun k x -> if k < cut then x else List.nth b k) a);
    }
  in
  let rng = Util.Rng.create 99 in
  let ga =
    Dse.Genetic.search ~rng ~ops ~eval ~population:12 ~generations:8 ~elite:2 ()
  in
  Text_table.add_row table
    [ "genetic (prior work)"; string_of_int !evaluations;
      Text_table.cell_f ~decimals:1 ga.Dse.Driver.best.Dse.Driver.score ];
  (* random sampling at the GA's budget *)
  Hashtbl.reset cache;
  evaluations := 0;
  let budget = ga.Dse.Driver.evaluations in
  let rnd =
    Dse.Random_search.search ~rng:(Util.Rng.create 100)
      ~sample:(fun g -> List.init 6 (fun _ -> Util.Rng.choose g picks))
      ~eval ~budget ()
  in
  Text_table.add_row table
    [ "random"; string_of_int !evaluations;
      Text_table.cell_f ~decimals:1 rnd.Dse.Driver.best.Dse.Driver.score ];
  Text_table.print table;
  Context.log
    "Once the heuristics shrink the space to %d points, the exhaustive\n\
     sweep is affordable and exact — the paper's argument for\n\
     constraining the design space instead of black-box searching it."
    (List.length space)

let run ctx =
  smt_cmp_variables ctx;
  fitting_style ctx;
  search_drivers ctx
