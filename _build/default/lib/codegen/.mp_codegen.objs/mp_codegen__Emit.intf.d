lib/codegen/emit.mli: Ir
