(** Set-associative cache geometry and address-field arithmetic
    (paper Figure 3b: the set field of each level of the hierarchy). *)

type level = L1 | L2 | L3 | MEM

type t = {
  level : level;
  size_bytes : int;
  associativity : int;
  line_bytes : int;
  latency_cycles : int;  (** load-to-use latency on a hit at this level *)
}

val make :
  level:level -> size_bytes:int -> associativity:int -> line_bytes:int ->
  latency_cycles:int -> t
(** Validates that sizes are powers of two and divide evenly. *)

val sets : t -> int
(** Number of sets: size / (line * associativity). *)

val offset_bits : t -> int
val set_bits : t -> int

val set_index : t -> int -> int
(** [set_index g addr] is the set the byte address maps to. *)

val set_shift : t -> int
val set_mask : t -> int
(** [(addr lsr set_shift g) land set_mask g = set_index g addr]: the
    precomputable shift/mask pair behind {!set_index}, for callers that
    index sets on a per-access hot path (both {!offset_bits} and
    {!sets} re-run a log2/division every call). *)

val line_address : t -> int -> int
(** Address truncated to its cache-line base. *)

val address_with_set : t -> set:int -> tag:int -> int
(** Build a line-aligned address whose set index is [set] and whose
    remaining high bits are [tag]. Inverse of {!set_index} /
    tag extraction. *)

val tag : t -> int -> int

val level_to_string : level -> string
val level_of_string : string -> level option
val level_rank : level -> int
(** Position in the hierarchy: [L1 -> 0] ... [MEM -> 3]. Stable, so it
    can index per-level arrays. *)

val level_compare : level -> level -> int
val all_levels : level list
(** [L1; L2; L3; MEM] in hierarchy order. *)

val pp : Format.formatter -> t -> unit
