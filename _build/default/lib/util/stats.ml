let sum = Array.fold_left ( +. ) 0.0

let mean xs =
  let n = Array.length xs in
  if n = 0 then 0.0 else sum xs /. float_of_int n

let variance xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else
    let m = mean xs in
    let acc = Array.fold_left (fun a x -> a +. ((x -. m) *. (x -. m))) 0.0 xs in
    acc /. float_of_int n

let stddev xs = sqrt (variance xs)

let min_max xs =
  if Array.length xs = 0 then invalid_arg "Stats.min_max: empty";
  Array.fold_left
    (fun (lo, hi) x -> (Float.min lo x, Float.max hi x))
    (xs.(0), xs.(0)) xs

let percentile xs p =
  if Array.length xs = 0 then invalid_arg "Stats.percentile: empty";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: bad p";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let n = Array.length sorted in
  let rank = p /. 100.0 *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = int_of_float (Float.ceil rank) in
  if lo = hi then sorted.(lo)
  else
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)

let median xs = percentile xs 50.0

let check_pair actual predicted =
  let n = Array.length actual in
  if n = 0 || n <> Array.length predicted then
    invalid_arg "Stats: mismatched or empty series"

let paae ~actual ~predicted =
  check_pair actual predicted;
  let n = Array.length actual in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    if actual.(i) <= 0.0 then invalid_arg "Stats.paae: non-positive actual";
    acc := !acc +. (Float.abs (predicted.(i) -. actual.(i)) /. actual.(i))
  done;
  !acc /. float_of_int n *. 100.0

let max_abs_pct_error ~actual ~predicted =
  check_pair actual predicted;
  let worst = ref 0.0 in
  Array.iteri
    (fun i a ->
      if a <= 0.0 then invalid_arg "Stats.max_abs_pct_error: non-positive";
      let e = Float.abs (predicted.(i) -. a) /. a *. 100.0 in
      if e > !worst then worst := e)
    actual;
  !worst

let pearson xs ys =
  check_pair xs ys;
  let mx = mean xs and my = mean ys in
  let num = ref 0.0 and dx = ref 0.0 and dy = ref 0.0 in
  Array.iteri
    (fun i x ->
      let a = x -. mx and b = ys.(i) -. my in
      num := !num +. (a *. b);
      dx := !dx +. (a *. a);
      dy := !dy +. (b *. b))
    xs;
  if !dx = 0.0 || !dy = 0.0 then 0.0 else !num /. sqrt (!dx *. !dy)

let normalize_to r xs =
  let _, hi = min_max xs in
  if hi = 0.0 then Array.copy xs else Array.map (fun x -> x /. hi *. r) xs

let converged ?(tolerance = 0.01) xs =
  if Array.length xs < 2 then false
  else
    let lo, hi = min_max xs in
    let m = mean xs in
    m <> 0.0 && (hi -. lo) /. Float.abs m < tolerance
