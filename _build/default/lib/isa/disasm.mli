(** Disassembly: identify an encoded 32-bit word against a registry.

    The inverse of {!Instruction.Encoding.encode} at registry level:
    candidate instructions are matched on (primary opcode, form-specific
    extended opcode). Forms with clashing field layouts (e.g. A vs X on
    the same primary opcode) are disambiguated by trying candidates in
    registry order. *)

type match_result = {
  instruction : Instruction.t;
  fields : Instruction.Encoding.fields;
}

val decode : Isa_def.t -> int32 -> match_result option
(** First registry instruction whose opcode/xo match the word. *)

val decode_all : Isa_def.t -> int32 -> match_result list
(** All matching instructions (aliases such as [bdnz]/[bc] both match). *)

val to_string : match_result -> string
(** A one-line listing, e.g. ["add r3, r4, r5"]. *)

val roundtrip :
  Isa_def.t -> Instruction.t -> Instruction.Encoding.fields -> bool
(** [roundtrip isa i f] encodes and decodes and checks that the original
    instruction is among the matches with equal fields — the property
    the binary codification must satisfy for every registry entry. *)
