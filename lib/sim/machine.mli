(** The measurement harness — the paper's experimental platform in
    Section 3. Deploys one copy of a micro-benchmark per hardware
    thread (pinned, as the paper pins to logical CPUs), runs to steady
    state, and returns PMC counters plus power-sensor samples.

    All cores execute identical copies, so one core is simulated in
    detail and the chip-level view is derived by replication plus a
    shared-memory-bandwidth contention model (re-simulating with an
    inflated memory latency when aggregate demand exceeds the chip's
    sustainable bandwidth). *)

type t

val create :
  ?seed:int -> ?cache:bool -> ?replay:bool -> Mp_uarch.Uarch_def.t -> t
(** A machine with its ground-truth power behaviour. [seed] controls
    sensor noise and stream randomisation (default 2012). [cache]
    (default [true]) memoizes measurements content-addressed on
    (uarch, program, configuration, seed, warmup/measure) —
    measurements are deterministic, so memoization is observationally
    invisible apart from wall-clock time. The cache also persists to
    disk unless the [MP_CACHE=off] environment variable disables it
    ([MP_CACHE_DIR] names the directory, default [_mp_cache]), so
    repeated harness invocations of the same build skip
    already-simulated points — see {!Measurement_cache.env_disk}.

    [replay] (default [true]) attaches the process-global
    {!Replay} table: runs that fingerprinted a steady-state period
    store a closed-form counter step, and later measurements of the
    same structural program — on this machine {e or any other},
    whatever the window — skip warmup-to-steady-state entirely.
    Replayed measurements are bit-identical to dense simulation, so
    the layer is observationally invisible apart from wall-clock time;
    [MP_REPLAY=off] disables it process-wide, [~replay:false] per
    machine (the benchmarks' dense reference machines need genuinely
    dense runs).

    Programs whose generating passes are all seed-independent (no pass
    drew from an rng and no memory model; see
    {!Mp_codegen.Passes.seed_independent}) measure bit-identically on
    machines with any [seed]: their noise rng is canonical and their
    cache entries drop the seed from the key, so warm disk caches are
    shared across seeds. *)

val default_measure : int
(** The default measured window in loop iterations per thread (8) —
    the one constant every [?measure] default below inherits. Long
    windows are nearly free for periodic kernels: exact fixed-point
    pipe arithmetic makes every bounded kernel's steady state exactly
    periodic, and the period detector elides the repeats. *)

val uarch : t -> Mp_uarch.Uarch_def.t

val measurement_cache : t -> Measurement_cache.t option
(** The machine's memoization table ([None] when created with
    [~cache:false]); expose it to read hit-rate statistics. *)

val run :
  ?warmup:int -> ?measure:int -> ?period:bool ->
  t -> Mp_uarch.Uarch_def.config -> Mp_codegen.Ir.t ->
  Measurement.t
(** Deploy and measure one micro-benchmark. [warmup]/[measure] are loop
    iterations (defaults 1 and {!default_measure}). [period] forwards to
    {!Core_sim.run}'s exact steady-state period skipping (default: on
    unless [MP_PERIOD=off]); results are bit-identical either way, so
    the knob only affects wall-clock time and is deliberately not part
    of the measurement-cache key. *)

val run_batch :
  ?warmup:int -> ?measure:int -> ?period:bool -> ?pool:Mp_util.Parallel.t ->
  ?procs:int -> ?hosts:(string * int) list -> ?shard_pool:Shard_exec.pool ->
  ?shard_sched:Shard_exec.sched -> ?dedup:bool ->
  t -> (Mp_uarch.Uarch_def.config * Mp_codegen.Ir.t) list ->
  Measurement.t list
(** Measure a list of (configuration, program) jobs, fanned across
    [pool] (default: {!Mp_util.Parallel.global}). Results come back in
    job order and are {e bit-identical} to running the same jobs
    serially through {!run} on a fresh machine: per-run RNGs are seeded
    from (seed, name, configuration) and opcode ids are pre-interned in
    job order before the fan-out, so no float is summed in a different
    order. Jobs carry a cost hint (threads × loop size) so the
    work-stealing pool starts the heaviest simulations first — a
    scheduling detail with no observable effect on results.

    [dedup] (default [true]) collapses jobs that share a measurement
    key within the batch: each distinct point is simulated once and the
    result is scattered back to every duplicate position. Measurements
    are deterministic given the key, so collapsing is observationally
    invisible apart from wall-clock time; {!batch_dup_collapsed} counts
    the positions served by a twin.

    [procs] layers a {e process-level} fan-out above the domain pool:
    deduplicated jobs are sharded by structural hash across
    {!Shard_exec} worker subprocesses, each running its own domain
    pool. [0] (the default when [MP_PROCS] is unset) keeps everything
    in-process — behavior unchanged; results with any [procs] value
    are bit-identical to in-process execution. The fan-out is adaptive
    (thin batches stay in-process, same {!Mp_util.Parallel.worthwhile}
    predicate) and crash-tolerant: jobs lost to a dead or wedged
    worker are transparently re-run in-process ({!jobs_recovered}
    counts them). [hosts] adds remote TCP workers (default: the
    [MP_HOSTS] knob) to the same pool — slots beyond the [procs] local
    subprocesses — under the identical placement fold and crash/
    recovery contract; a lost peer degrades to a slower batch exactly
    like a lost subprocess. [shard_pool] supplies an explicit pool (the
    bench harness builds per-combination pools) and then carries its
    own peers; otherwise the shared process-wide pool of [procs]
    workers plus [hosts] peers serves. [shard_sched] picks the dispatch
    discipline (default: the [MP_SHARD_SCHED] knob — dynamic
    work-conserving chunked dispatch unless overridden to [Static]);
    either way results stay bit-identical, see {!Shard_exec.run_jobs}. *)

val run_heterogeneous :
  ?warmup:int -> ?measure:int -> ?period:bool ->
  t -> Mp_uarch.Uarch_def.config -> Mp_codegen.Ir.t list ->
  Measurement.t
(** Deploy a {e different} micro-benchmark on each hardware thread of a
    core (the list length must equal the SMT mode; every core runs the
    same per-thread assignment). This is the heterogeneous-workload
    deployment the paper's Section 6 leaves to future work. *)

val run_heterogeneous_batch :
  ?warmup:int -> ?measure:int -> ?period:bool -> ?pool:Mp_util.Parallel.t ->
  ?procs:int -> ?hosts:(string * int) list -> ?shard_pool:Shard_exec.pool ->
  ?shard_sched:Shard_exec.sched -> ?dedup:bool ->
  t -> (Mp_uarch.Uarch_def.config * Mp_codegen.Ir.t list) list ->
  Measurement.t list
(** {!run_heterogeneous} over a whole candidate population as one
    fan-out across [pool], under the same determinism contract (and
    the same [dedup] duplicate collapsing, [procs]/[hosts]/[shard_pool]
    process sharding) as {!run_batch}: results in job order,
    bit-identical to the serial loop (all per-thread programs are
    pre-interned in job order before any worker runs). *)

val shard_chunk_jobs : jobs:int -> slots:int -> int
(** Jobs per chunk for the dynamic shard scheduler, from the
    deduplicated batch size and the pool's slot count (the [MP_INFLIGHT]
    pipeline depth is read from the environment):
    {!Shard_exec.default_chunk_jobs}. Exposed so tests and the bench
    harness can predict the chunking a batch will use. *)

val batch_dup_collapsed : unit -> int
(** Process-wide count of batch positions served by collapsing onto a
    duplicate within the same batch (see [dedup] on {!run_batch}).
    Monotonic; callers wanting a per-phase figure take a delta. *)

val spec : t -> Shard_exec.machine_spec
(** The machine's wire description — what a shard worker needs to
    rebuild an equivalent machine on its side. *)

val jobs_recovered : unit -> int
(** Process-wide count of batch jobs whose shard worker was lost
    (crash, timeout, garbage frame) and which were transparently
    re-run in-process. Monotonic; [0] in a healthy run. *)

val run_phases :
  ?pool:Mp_util.Parallel.t ->
  t -> Mp_uarch.Uarch_def.config -> (Mp_codegen.Ir.t * float) list ->
  Measurement.t
(** Measure a phased workload: each [(program, weight)] runs as its own
    steady-state region and the counters/power combine by weight — how
    the SPEC-surrogate benchmarks execute. The power trace concatenates
    the phase traces (Figure 5a's time axis). Phases are measured as one
    {!run_batch} over [pool]. *)

val idle_reading : t -> Mp_uarch.Uarch_def.config -> float
(** Sensor reading of the enabled-but-idle machine. *)

val baseline_reading : t -> float
(** Sensor reading in the deepest idle state (all cores folded) — the
    workload-independent chip power. The EnergyScale firmware exposes
    this state on the real platform. *)
