(** SPEC CPU2006 surrogate suite.

    The paper uses SPEC CPU2006 as the model-validation population and
    the max-power baseline. Real SPEC binaries cannot run on the
    simulated machine, so each of the 29 benchmarks is replaced by a
    deterministic synthetic surrogate: a multi-phase mixture of
    generated micro-benchmarks whose activity profile follows the
    benchmark's published characterisation (integer vs floating point,
    branchiness, cache-residency, memory-boundedness). See DESIGN.md. *)

type benchmark = {
  name : string;
  integer : bool;            (** CINT (true) vs CFP component *)
  phases : (Mp_codegen.Ir.t * float) list;  (** program, duration weight *)
}

val names : string list
(** The 29 benchmark names, suite order. *)

val suite : arch:Mp_codegen.Arch.t -> ?size:int -> unit -> benchmark list
(** Generate the full surrogate suite (deterministic; [size] is the
    per-phase loop size, default 1024). *)

val benchmark : arch:Mp_codegen.Arch.t -> ?size:int -> string -> benchmark
(** One benchmark by name; raises [Not_found] for unknown names. *)

val run :
  machine:Mp_sim.Machine.t ->
  config:Mp_uarch.Uarch_def.config ->
  ?pool:Mp_util.Parallel.t ->
  benchmark ->
  Mp_sim.Measurement.t
(** Measure a benchmark (its phases weighted) on a configuration. The
    phases are fanned out through {!Mp_sim.Machine.run_phases}, across
    [pool] when given (the global pool otherwise). *)
