open Mp_codegen

let kernel ~arch ~unroll ?(size = 1024) () =
  if unroll < 1 then invalid_arg "Daxpy.kernel: unroll";
  let lfd = Arch.find_instruction arch "lfd" in
  let fmadd = Arch.find_instruction arch "fmadd" in
  let stfd = Arch.find_instruction arch "stfd" in
  let group = [ lfd; lfd; fmadd; stfd ] in
  let pattern = List.concat (List.init unroll (fun _ -> group)) in
  let name = Printf.sprintf "daxpy-u%d" unroll in
  let synth = Synthesizer.create ~name arch in
  Synthesizer.add_pass synth (Passes.skeleton ~size);
  Synthesizer.add_pass synth (Passes.fill_sequence pattern);
  Synthesizer.add_pass synth
    (Passes.memory_model [ (Mp_uarch.Cache_geometry.L1, 1.0) ]);
  (* the fmadd consumes the loads two instructions back: short-range flow *)
  Synthesizer.add_pass synth (Passes.dependency (Builder.Fixed 2));
  Synthesizer.add_pass synth (Passes.init_registers Builder.Random_values);
  Synthesizer.add_pass synth (Passes.rename name);
  Synthesizer.synthesize ~seed:5150 synth

let variants ~arch ?size () =
  List.map (fun u -> kernel ~arch ~unroll:u ?size ()) [ 1; 2; 4; 8 ]
