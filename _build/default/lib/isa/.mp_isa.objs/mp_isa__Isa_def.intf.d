lib/isa/isa_def.mli: Format Instruction
