(* Table 2 (the training suite), Table 3 (the EPI taxonomy) and the
   Figure-3 validation of the analytical set-associative cache model. *)

open Microprobe
open Mp_util

(* ----- Table 2 ------------------------------------------------------------- *)

let table2 (ctx : Context.t) =
  Context.section "Table 2 — automatically generated training micro-benchmarks";
  let fams = Context.families ctx in
  let table =
    Text_table.create
      [ "Family"; "Units stressed"; "#"; "IPC targets"; "mean |IPC err|";
        "Description" ]
  in
  List.iter
    (fun (f : Workloads.Training.family) ->
      let entries = f.Workloads.Training.entries in
      let targets =
        List.filter_map
          (fun (e : Workloads.Training.entry) -> e.Workloads.Training.target_ipc)
          entries
      in
      let target_cell =
        match targets with
        | [] -> "-"
        | _ ->
          Printf.sprintf "%.1f..%.1f"
            (List.fold_left Float.min infinity targets)
            (List.fold_left Float.max neg_infinity targets)
      in
      let err_cell =
        match targets with
        | [] -> "-"
        | _ ->
          let errs =
            List.filter_map
              (fun (e : Workloads.Training.entry) ->
                match e.Workloads.Training.target_ipc with
                | Some t -> Some (Float.abs (e.Workloads.Training.achieved_ipc -. t))
                | None -> None)
              entries
          in
          Text_table.cell_f ~decimals:2 (Stats.mean (Array.of_list errs))
      in
      Text_table.add_row table
        [ f.Workloads.Training.family_name;
          f.Workloads.Training.units;
          string_of_int (List.length entries);
          target_cell;
          err_cell;
          f.Workloads.Training.description ])
    fams;
  Text_table.add_separator table;
  Text_table.add_row table
    [ "Total"; "";
      string_of_int (List.length (Workloads.Training.all_entries fams)); "";
      ""; "" ];
  Text_table.print table

(* ----- Table 3 ------------------------------------------------------------- *)

let table3 (ctx : Context.t) =
  Context.section
    "Table 3 — taxonomy of POWER7 instructions by EPI and unit usage";
  let props = Context.bootstrap_props ctx in
  let cats = Epi.Taxonomy.categorize ~isa:ctx.Context.arch.Arch.isa props in
  let rows = Epi.Taxonomy.table3 cats in
  let table =
    Text_table.create
      [ "Category"; "Instr."; "Core IPC"; "EPI (global)"; "EPI (category)" ]
  in
  let last = ref "" in
  List.iter
    (fun (r : Epi.Taxonomy.row) ->
      if !last <> "" && !last <> r.Epi.Taxonomy.category then
        Text_table.add_separator table;
      last := r.Epi.Taxonomy.category;
      Text_table.add_row table
        [ r.Epi.Taxonomy.category;
          r.Epi.Taxonomy.mnemonic;
          Text_table.cell_f ~decimals:2 r.Epi.Taxonomy.core_ipc;
          Text_table.cell_f ~decimals:2 r.Epi.Taxonomy.epi_global;
          Text_table.cell_f ~decimals:2 r.Epi.Taxonomy.epi_category ])
    rows;
  Text_table.print table;
  (* the paper's headline observations *)
  let spread =
    List.fold_left
      (fun acc c ->
        let s = Epi.Taxonomy.epi_spread c in
        if s > snd acc then (c.Epi.Taxonomy.label, s) else acc)
      ("", 0.0) cats
  in
  Context.log "Max within-category EPI spread: %.0f%% (%s) [paper: up to 78%%]"
    (snd spread) (fst spread);
  (* zero-data effect on a representative instruction *)
  let f m =
    (Epi.Bootstrap.instruction_props ~machine:ctx.Context.machine
       ~arch:ctx.Context.arch ~size:512 m)
      .Epi.Bootstrap.epi
  in
  let fz m =
    (Epi.Bootstrap.instruction_props ~machine:ctx.Context.machine
       ~arch:ctx.Context.arch ~size:512 ~zero_data:true m)
      .Epi.Bootstrap.epi
  in
  let ins = Arch.find_instruction ctx.Context.arch "xvmaddadp" in
  let r = f ins and z = fz ins in
  Context.log
    "Zero input data reduces xvmaddadp EPI by %.0f%% [paper: up to 40%%]"
    ((1.0 -. (z /. r)) *. 100.0)

(* ----- Figure 3: analytical cache model validation ---------------------------- *)

let fig3 (ctx : Context.t) =
  Context.section
    "Figure 3 — analytical set-associative model: requested vs measured";
  let arch = ctx.Context.arch in
  let lbz = Arch.find_instruction arch "lbz" in
  let stw = Arch.find_instruction arch "stw" in
  let cases =
    [ ("L1 only", [ (Cache_geometry.L1, 1.0) ]);
      ("75/25 L1/L2", [ (Cache_geometry.L1, 0.75); (Cache_geometry.L2, 0.25) ]);
      ("50/50 L1/L3", [ (Cache_geometry.L1, 0.5); (Cache_geometry.L3, 0.5) ]);
      ("33/33/34", [ (Cache_geometry.L1, 0.33); (Cache_geometry.L2, 0.33);
                     (Cache_geometry.L3, 0.34) ]);
      ("L2 only", [ (Cache_geometry.L2, 1.0) ]);
      ("25/75 L2/L3", [ (Cache_geometry.L2, 0.25); (Cache_geometry.L3, 0.75) ]);
      ("MEM only", [ (Cache_geometry.MEM, 1.0) ]);
      ("10% MEM", [ (Cache_geometry.L1, 0.6); (Cache_geometry.L2, 0.2);
                    (Cache_geometry.L3, 0.1); (Cache_geometry.MEM, 0.1) ]) ]
  in
  let table =
    Text_table.create
      [ "Mix"; "SMT"; "L1 req/meas"; "L2 req/meas"; "L3 req/meas";
        "MEM req/meas" ]
  in
  List.iter
    (fun (name, dist) ->
      List.iter
        (fun smt ->
          let synth = Synthesizer.create ~name:("fig3-" ^ name) arch in
          Synthesizer.add_pass synth (Passes.skeleton ~size:1024);
          Synthesizer.add_pass synth (Passes.fill_uniform [ lbz; stw ]);
          Synthesizer.add_pass synth (Passes.memory_model dist);
          Synthesizer.add_pass synth (Passes.dependency Builder.No_deps);
          let p = Synthesizer.synthesize ~seed:33 synth in
          let m =
            Machine.run ctx.Context.machine
              (Context.config ctx ~cores:1 ~smt) p
          in
          let c = Measurement.core_counters m in
          let total =
            Measurement.(c.l1 +. c.l2 +. c.l3 +. c.mem)
          in
          let req l =
            match List.assoc_opt l dist with
            | Some w ->
              w /. List.fold_left (fun a (_, x) -> a +. x) 0.0 dist
            | None -> 0.0
          in
          let cell l meas =
            Printf.sprintf "%.2f/%.2f" (req l) (meas /. Float.max 1.0 total)
          in
          Text_table.add_row table
            [ name; string_of_int smt;
              cell Cache_geometry.L1 c.Measurement.l1;
              cell Cache_geometry.L2 c.Measurement.l2;
              cell Cache_geometry.L3 c.Measurement.l3;
              cell Cache_geometry.MEM c.Measurement.mem ])
        [ 1; 4 ])
    cases;
  Text_table.print table;
  Context.log
    "The model statically guarantees the distribution: no DSE was run."
