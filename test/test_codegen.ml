(* Tests for mp_codegen: register allocation, the pass framework, the
   synthesizer, IR validation and the emitters. *)

open Mp_codegen
open Mp_isa

let arch () = Arch.power7 ()

let find a m = Arch.find_instruction a m

let l1 = [ (Mp_uarch.Cache_geometry.L1, 1.0) ]

let contains_sub haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

(* ----- register allocation ------------------------------------------------ *)

let test_reg_conventions () =
  let a = Reg_alloc.create () in
  let b = Reg_alloc.base a in
  (match b with
   | Reg.Gpr i -> Alcotest.(check bool) "base range" true (i >= 8 && i <= 15)
   | _ -> Alcotest.fail "base is a GPR");
  let s = Reg_alloc.source a Instruction.Gpr in
  (match s with
   | Reg.Gpr i -> Alcotest.(check bool) "src range" true (i >= 16 && i <= 23)
   | _ -> Alcotest.fail "src is a GPR");
  let d = Reg_alloc.dest a Instruction.Vsr in
  (match d with
   | Reg.Vsr i -> Alcotest.(check bool) "vsr dest range" true (i >= 32)
   | _ -> Alcotest.fail "dest is a VSR")

let test_reg_rotation () =
  let a = Reg_alloc.create () in
  let first = Reg_alloc.dest a Instruction.Gpr in
  let seen = ref [ first ] in
  let rec spin () =
    let r = Reg_alloc.dest a Instruction.Gpr in
    if Reg.equal r first then ()
    else begin
      seen := r :: !seen;
      spin ()
    end
  in
  spin ();
  Alcotest.(check int) "full rotation over 8 dests" 8 (List.length !seen)

let test_reg_make_bounds () =
  Alcotest.(check bool) "gpr 32 rejected" true
    (try ignore (Reg.make Instruction.Gpr 32); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "vsr 63 ok" true
    (Reg.make Instruction.Vsr 63 = Reg.Vsr 63)

(* ----- synthesizer & passes ------------------------------------------------ *)

let basic_synth ?(size = 64) ?(mnemonics = [ "add" ]) ?(dep = Builder.No_deps)
    ?mem a =
  let synth = Synthesizer.create ~name:"t" a in
  Synthesizer.add_pass synth (Passes.skeleton ~size);
  Synthesizer.add_pass synth
    (Passes.fill_uniform (List.map (find a) mnemonics));
  (match mem with
   | Some d -> Synthesizer.add_pass synth (Passes.memory_model d)
   | None -> ());
  Synthesizer.add_pass synth (Passes.dependency dep);
  synth

let test_synthesize_size () =
  let a = arch () in
  let p = Synthesizer.synthesize ~seed:1 (basic_synth a) in
  Alcotest.(check int) "body size" 64 (Ir.size p);
  Alcotest.(check bool) "valid" true (Ir.validate p = Ok ())

let test_seed_determinism () =
  let a = arch () in
  let s = basic_synth ~mnemonics:[ "add"; "xor"; "mulld" ] a in
  let p1 = Synthesizer.synthesize ~seed:9 s in
  let p2 = Synthesizer.synthesize ~seed:9 s in
  Alcotest.(check bool) "identical programs" true (p1 = p2)

let test_unseeded_distinct () =
  let a = arch () in
  let s = basic_synth ~mnemonics:[ "add"; "xor"; "mulld" ] a in
  let p1 = Synthesizer.synthesize s in
  let p2 = Synthesizer.synthesize s in
  Alcotest.(check bool) "distinct mixes" true
    (Ir.instruction_mix p1 <> Ir.instruction_mix p2 || p1.Ir.body <> p2.Ir.body)

let test_pass_ordering_enforced () =
  let a = arch () in
  let synth = Synthesizer.create a in
  Synthesizer.add_pass synth (Passes.fill_uniform [ find a "add" ]);
  Alcotest.(check bool) "distribution before skeleton fails" true
    (try ignore (Synthesizer.synthesize ~seed:1 synth); false
     with Failure _ -> true)

let test_unfilled_fails () =
  let a = arch () in
  let synth = Synthesizer.create a in
  Synthesizer.add_pass synth (Passes.skeleton ~size:8);
  Alcotest.(check bool) "no distribution fails" true
    (try ignore (Synthesizer.synthesize ~seed:1 synth); false
     with Failure _ -> true)

let test_memory_pass_requires_memory_ops () =
  let a = arch () in
  let synth = basic_synth ~mnemonics:[ "add" ] a in
  Synthesizer.add_pass synth (Passes.memory_model l1);
  Alcotest.(check bool) "no memory instructions fails" true
    (try ignore (Synthesizer.synthesize ~seed:1 synth); false
     with Failure _ -> true)

let test_fill_sequence_replicates () =
  let a = arch () in
  let synth = Synthesizer.create a in
  Synthesizer.add_pass synth (Passes.skeleton ~size:10);
  Synthesizer.add_pass synth
    (Passes.fill_sequence [ find a "add"; find a "mulld" ]);
  Synthesizer.add_pass synth (Passes.dependency Builder.No_deps);
  let p = Synthesizer.synthesize ~seed:3 synth in
  Array.iteri
    (fun i (ins : Ir.instr) ->
      let expected = if i mod 2 = 0 then "add" else "mulld" in
      Alcotest.(check string) "pattern" expected ins.Ir.op.Instruction.mnemonic)
    p.Ir.body

let test_fill_interleaved_ratio () =
  let a = arch () in
  let synth = Synthesizer.create a in
  Synthesizer.add_pass synth (Passes.skeleton ~size:120);
  Synthesizer.add_pass synth
    (Passes.fill_interleaved [ (find a "add", 2); (find a "xor", 1) ]);
  Synthesizer.add_pass synth (Passes.dependency Builder.No_deps);
  let p = Synthesizer.synthesize ~seed:3 synth in
  let mix = Ir.instruction_mix p in
  Alcotest.(check int) "2/3 add" 80 (List.assoc "add" mix);
  Alcotest.(check int) "1/3 xor" 40 (List.assoc "xor" mix)

let test_fill_weighted_mix () =
  let a = arch () in
  let synth = Synthesizer.create a in
  Synthesizer.add_pass synth (Passes.skeleton ~size:2000);
  Synthesizer.add_pass synth
    (Passes.fill_weighted [ (find a "add", 0.8); (find a "xor", 0.2) ]);
  Synthesizer.add_pass synth (Passes.dependency Builder.No_deps);
  let p = Synthesizer.synthesize ~seed:5 synth in
  let mix = Ir.instruction_mix p in
  let adds = float_of_int (List.assoc "add" mix) in
  Alcotest.(check bool) "roughly 80/20" true (adds > 1500.0 && adds < 1700.0)

let test_memory_model_apportionment () =
  let a = arch () in
  let synth =
    basic_synth ~size:100 ~mnemonics:[ "lbz" ]
      ~mem:[ (Mp_uarch.Cache_geometry.L1, 0.75); (Mp_uarch.Cache_geometry.L2, 0.25) ]
      a
  in
  let p = Synthesizer.synthesize ~seed:7 synth in
  let count lvl =
    List.length
      (List.filter
         (fun (i : Ir.instr) -> i.Ir.mem_target = Some lvl)
         (Ir.memory_instructions p))
  in
  Alcotest.(check int) "75 L1" 75 (count Mp_uarch.Cache_geometry.L1);
  Alcotest.(check int) "25 L2" 25 (count Mp_uarch.Cache_geometry.L2);
  (match p.Ir.memory_distribution with
   | Some d ->
     Alcotest.(check (float 1e-9)) "recorded" 0.75
       (List.assoc Mp_uarch.Cache_geometry.L1 d)
   | None -> Alcotest.fail "distribution not recorded")

let test_dependency_wiring () =
  let a = arch () in
  let synth = basic_synth ~size:32 ~dep:(Builder.Fixed 1) a in
  let p = Synthesizer.synthesize ~seed:11 synth in
  (* every instruction after the first must consume its predecessor's
     destination *)
  let violations = ref 0 in
  Array.iteri
    (fun i (ins : Ir.instr) ->
      if i > 0 then begin
        let prev = p.Ir.body.(i - 1) in
        match (prev.Ir.dests, ins.Ir.srcs) with
        | d :: _, s :: _ -> if not (Reg.equal d s) then incr violations
        | _ -> incr violations
      end)
    p.Ir.body;
  Alcotest.(check int) "chained" 0 !violations

let test_no_deps_no_chains () =
  let a = arch () in
  let synth = basic_synth ~size:32 ~dep:Builder.No_deps a in
  let p = Synthesizer.synthesize ~seed:12 synth in
  (* sources come from the read-only pool: no source may equal any
     destination in the loop *)
  let dests =
    Array.to_list p.Ir.body |> List.concat_map (fun (i : Ir.instr) -> i.Ir.dests)
  in
  Array.iter
    (fun (ins : Ir.instr) ->
      List.iter
        (fun s ->
          Alcotest.(check bool) "source never written" false
            (List.exists (Reg.equal s) dests))
        ins.Ir.srcs)
    p.Ir.body

let test_branch_model () =
  let a = arch () in
  let synth = basic_synth ~size:100 a in
  Synthesizer.add_pass synth
    (Passes.branch_model ~bc:(find a "bc") ~frequency:0.1 ~taken_ratio:0.5
       ~pattern_length:8);
  let p = Synthesizer.synthesize ~seed:13 synth in
  let branches =
    Array.to_list p.Ir.body
    |> List.filter (fun (i : Ir.instr) -> Instruction.is_branch i.Ir.op)
  in
  Alcotest.(check int) "10% branches" 10 (List.length branches);
  List.iter
    (fun (i : Ir.instr) ->
      match i.Ir.taken_pattern with
      | None -> Alcotest.fail "branch without pattern"
      | Some pat ->
        let taken = Array.fold_left (fun acc t -> if t then acc + 1 else acc) 0 pat in
        Alcotest.(check int) "taken ratio" 4 taken)
    branches

let test_init_policies () =
  let a = arch () in
  let synth = basic_synth ~size:32 a in
  Synthesizer.add_pass synth (Passes.init_registers (Builder.Constant 0L));
  Synthesizer.add_pass synth (Passes.init_immediates (Builder.Constant 0L));
  let p = Synthesizer.synthesize ~seed:14 synth in
  Alcotest.(check (float 1e-9)) "zero data factor" 0.0 (Ir.data_activity_factor p);
  let synth2 = basic_synth ~size:32 a in
  Synthesizer.add_pass synth2 (Passes.init_registers Builder.Random_values);
  let p2 = Synthesizer.synthesize ~seed:14 synth2 in
  Alcotest.(check bool) "random data factor near half" true
    (let f = Ir.data_activity_factor p2 in
     f > 0.4 && f < 0.6)

let test_provenance () =
  let a = arch () in
  let p = Synthesizer.synthesize ~seed:15 (basic_synth a) in
  Alcotest.(check bool) "provenance recorded" true
    (List.exists (fun s -> contains_sub s "skeleton") p.Ir.provenance)

let test_synthesize_many () =
  let a = arch () in
  let ps = Synthesizer.synthesize_many ~seed:1 (basic_synth a) 10 in
  Alcotest.(check int) "ten programs" 10 (List.length ps)

(* ----- IR validation -------------------------------------------------------- *)

let test_validate_catches_missing_target () =
  let a = arch () in
  let p = Synthesizer.synthesize ~seed:16 (basic_synth ~mnemonics:[ "lbz" ] ~mem:l1 a) in
  let broken =
    { p with
      Ir.body =
        Array.map (fun (i : Ir.instr) -> { i with Ir.mem_target = None }) p.Ir.body }
  in
  Alcotest.(check bool) "invalid" true (Ir.validate broken <> Ok ())

let test_validate_catches_class_mismatch () =
  let a = arch () in
  let p = Synthesizer.synthesize ~seed:17 (basic_synth ~mnemonics:[ "fadd" ] a) in
  let broken =
    { p with
      Ir.body =
        Array.map
          (fun (i : Ir.instr) -> { i with Ir.srcs = [ Reg.Gpr 16; Reg.Gpr 17 ] })
          p.Ir.body }
  in
  Alcotest.(check bool) "invalid" true (Ir.validate broken <> Ok ())

(* ----- emitters --------------------------------------------------------------- *)

let test_emit_asm () =
  let a = arch () in
  let p = Synthesizer.synthesize ~seed:18
      (basic_synth ~size:16 ~mnemonics:[ "lbz"; "add" ] ~mem:l1 a) in
  let asm = Emit.to_asm p in
  Alcotest.(check bool) "has loop close" true (contains_sub asm "bdnz");
  Alcotest.(check bool) "has label" true (contains_sub asm "1:");
  Alcotest.(check bool) "mentions lbz" true (contains_sub asm "lbz");
  Alcotest.(check bool) "mentions memory target" true (contains_sub asm "L1")

let test_emit_c () =
  let a = arch () in
  let p = Synthesizer.synthesize ~seed:19 (basic_synth ~size:8 a) in
  let c = Emit.to_c p in
  Alcotest.(check bool) "asm volatile" true (contains_sub c "asm volatile");
  Alcotest.(check bool) "has main" true (contains_sub c "int main")

let test_operand_strings () =
  let a = arch () in
  let p = Synthesizer.synthesize ~seed:20
      (basic_synth ~size:8 ~mnemonics:[ "lbz" ] ~mem:l1 a) in
  let s = Emit.operand_string p.Ir.body.(0) in
  (* displacement form: "rX, d(rB)" *)
  Alcotest.(check bool) "displacement form" true
    (String.contains s '(' && String.contains s ')');
  let p2 = Synthesizer.synthesize ~seed:20
      (basic_synth ~size:8 ~mnemonics:[ "ldx" ] ~mem:l1 a) in
  let s2 = Emit.operand_string p2.Ir.body.(0) in
  Alcotest.(check bool) "indexed form has three operands" true
    (List.length (String.split_on_char ',' s2) = 3)

let test_custom_pass () =
  let a = arch () in
  let synth = basic_synth ~size:8 a in
  let ran = ref false in
  Synthesizer.add_pass synth
    (Passes.custom ~name:"probe" (fun b ->
         ran := Builder.size b = 8));
  ignore (Synthesizer.synthesize ~seed:1 synth);
  Alcotest.(check bool) "custom pass ran with builder access" true !ran

let test_pass_names () =
  let a = arch () in
  let synth = basic_synth ~size:8 a in
  let names = Synthesizer.pass_names synth in
  Alcotest.(check int) "three passes" 3 (List.length names);
  Alcotest.(check string) "first is skeleton" "skeleton(8)" (List.hd names)

let test_seed_independent_classification () =
  let t = Passes.seed_independent in
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " independent") true (t name))
    [ "skeleton(64)"; "fill_sequence"; "fill_interleaved"; "rename(x)";
      "dependency(none)"; "dependency(4)"; "init_registers(0xdead)";
      "init_immediates(0x0)" ];
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " seed-consuming") false (t name))
    [ "fill_weighted"; "fill_uniform"; "memory_model"; "branch_model";
      "dependency(1..8)"; "init_registers(random)";
      "init_immediates(random)"; "my_custom_pass" ]

let test_reg_to_string () =
  Alcotest.(check string) "gpr" "r5" (Reg.to_string (Reg.Gpr 5));
  Alcotest.(check string) "fpr" "f31" (Reg.to_string (Reg.Fpr 31));
  Alcotest.(check string) "vsr" "vs63" (Reg.to_string (Reg.Vsr 63));
  Alcotest.(check string) "cr" "cr2" (Reg.to_string (Reg.Cr_field 2));
  Alcotest.(check string) "ctr" "ctr" (Reg.to_string Reg.Ctr)

let test_dependency_wraps_loop () =
  (* the chain carries across iterations: instruction 0 consumes the
     result of an instruction near the end of the body *)
  let a = arch () in
  let p = Synthesizer.synthesize ~seed:21
      (basic_synth ~size:16 ~mnemonics:[ "fadd" ] ~dep:(Builder.Fixed 1) a) in
  let first = p.Ir.body.(0) and last = p.Ir.body.(15) in
  (match (first.Ir.srcs, last.Ir.dests) with
   | s :: _, d :: _ ->
     Alcotest.(check bool) "wraps" true (Reg.equal s d)
   | _ -> Alcotest.fail "operands")

let prop_random_profiles_valid =
  (* arbitrary weighted mixes with memory models always wire into valid
     programs *)
  let a = arch () in
  let candidates =
    Array.of_list
      (Arch.select a (fun i ->
           (not i.Mp_isa.Instruction.privileged)
           && (not (Mp_isa.Instruction.is_branch i))
           && not i.Mp_isa.Instruction.prefetch))
  in
  QCheck.Test.make ~name:"random mixes produce valid programs" ~count:60
    QCheck.(pair small_int (int_range 2 10))
    (fun (seed, picks) ->
      let g = Mp_util.Rng.create seed in
      let weighted =
        List.init picks (fun _ ->
            (Mp_util.Rng.choose g candidates, 0.1 +. Mp_util.Rng.float g 1.0))
      in
      let synth = Synthesizer.create a in
      Synthesizer.add_pass synth (Passes.skeleton ~size:64);
      Synthesizer.add_pass synth (Passes.fill_weighted weighted);
      if List.exists (fun (i, _) -> Mp_isa.Instruction.is_memory i) weighted then
        Synthesizer.add_pass synth
          (Passes.memory_model
             [ (Mp_uarch.Cache_geometry.L1, 0.5); (Mp_uarch.Cache_geometry.L2, 0.5) ]);
      Synthesizer.add_pass synth
        (Passes.dependency (Builder.Random_range (1, 8)));
      let p = Synthesizer.synthesize ~seed synth in
      Ir.validate p = Ok ())

let prop_all_isa_instructions_synthesisable =
  (* every non-branch instruction of the shipped ISA can be placed in a
     loop and wired into a valid program *)
  let a = arch () in
  let instrs =
    Array.of_list
      (Arch.select a (fun i ->
           (not (Instruction.is_branch i)) && not i.Instruction.prefetch))
  in
  QCheck.Test.make ~name:"every instruction synthesisable" ~count:120
    QCheck.(int_range 0 (Array.length instrs - 1))
    (fun idx ->
      let ins = instrs.(idx) in
      let synth = Synthesizer.create a in
      Synthesizer.add_pass synth (Passes.skeleton ~size:8);
      Synthesizer.add_pass synth (Passes.fill_sequence [ ins ]);
      if Instruction.is_memory ins then
        Synthesizer.add_pass synth (Passes.memory_model l1);
      Synthesizer.add_pass synth (Passes.dependency (Builder.Fixed 1));
      let p = Synthesizer.synthesize ~seed:idx synth in
      Ir.validate p = Ok () && Ir.size p = 8)

let prop_one_instruction_changes_hash =
  (* the structural hash distinguishes single-instruction edits: two
     programs built from sequences differing in exactly one slot never
     share a struct hash, while rebuilding the same sequence with the
     same seed reproduces it *)
  let a = arch () in
  let instrs =
    Array.of_list
      (Arch.select a (fun i ->
           (not (Instruction.is_branch i))
           && (not i.Instruction.prefetch)
           && not (Instruction.is_memory i)))
  in
  let build seq seed =
    let synth = Synthesizer.create a in
    Synthesizer.add_pass synth (Passes.skeleton ~size:(List.length seq));
    Synthesizer.add_pass synth (Passes.fill_sequence seq);
    Synthesizer.add_pass synth (Passes.dependency Builder.No_deps);
    Synthesizer.synthesize ~seed synth
  in
  QCheck.Test.make ~name:"one-instruction edits change the struct hash"
    ~count:100
    QCheck.(
      quad
        (int_range 0 (Array.length instrs - 1))
        (int_range 0 (Array.length instrs - 1))
        (int_range 0 15) small_int)
    (fun (i1, i2, pos, seed) ->
      QCheck.assume (i1 <> i2);
      let base = List.init 16 (fun _ -> instrs.(i1)) in
      let edited =
        List.mapi (fun k x -> if k = pos then instrs.(i2) else x) base
      in
      let p1 = build base seed in
      let p1' = build base seed in
      let p2 = build edited seed in
      Int64.equal (Ir.struct_hash p1) (Ir.struct_hash p1')
      && not (Int64.equal (Ir.struct_hash p1) (Ir.struct_hash p2)))

let () =
  Alcotest.run "mp_codegen"
    [
      ("registers",
       [ Alcotest.test_case "conventions" `Quick test_reg_conventions;
         Alcotest.test_case "rotation" `Quick test_reg_rotation;
         Alcotest.test_case "bounds" `Quick test_reg_make_bounds ]);
      ("synthesizer",
       [ Alcotest.test_case "size" `Quick test_synthesize_size;
         Alcotest.test_case "determinism" `Quick test_seed_determinism;
         Alcotest.test_case "unseeded distinct" `Quick test_unseeded_distinct;
         Alcotest.test_case "ordering enforced" `Quick test_pass_ordering_enforced;
         Alcotest.test_case "unfilled fails" `Quick test_unfilled_fails;
         Alcotest.test_case "memory needs mem ops" `Quick test_memory_pass_requires_memory_ops;
         Alcotest.test_case "many" `Quick test_synthesize_many;
         Alcotest.test_case "provenance" `Quick test_provenance ]);
      ("passes",
       [ Alcotest.test_case "sequence" `Quick test_fill_sequence_replicates;
         Alcotest.test_case "interleaved" `Quick test_fill_interleaved_ratio;
         Alcotest.test_case "weighted" `Quick test_fill_weighted_mix;
         Alcotest.test_case "memory apportionment" `Quick test_memory_model_apportionment;
         Alcotest.test_case "dependency wiring" `Quick test_dependency_wiring;
         Alcotest.test_case "no-deps isolation" `Quick test_no_deps_no_chains;
         Alcotest.test_case "branch model" `Quick test_branch_model;
         Alcotest.test_case "init policies" `Quick test_init_policies ]);
      ("validation",
       [ Alcotest.test_case "missing target" `Quick test_validate_catches_missing_target;
         Alcotest.test_case "class mismatch" `Quick test_validate_catches_class_mismatch ]);
      ("emit",
       [ Alcotest.test_case "asm" `Quick test_emit_asm;
         Alcotest.test_case "c" `Quick test_emit_c;
         Alcotest.test_case "operand strings" `Quick test_operand_strings ]);
      ("extensibility",
       [ Alcotest.test_case "custom pass" `Quick test_custom_pass;
         Alcotest.test_case "pass names" `Quick test_pass_names;
         Alcotest.test_case "seed independence" `Quick
           test_seed_independent_classification;
         Alcotest.test_case "reg to_string" `Quick test_reg_to_string;
         Alcotest.test_case "chain wraps loop" `Quick test_dependency_wraps_loop ]);
      ("properties",
       [ QCheck_alcotest.to_alcotest prop_all_isa_instructions_synthesisable;
         QCheck_alcotest.to_alcotest prop_random_profiles_valid;
         QCheck_alcotest.to_alcotest prop_one_instruction_changes_hash ]);
    ]
