(** Aligned plain-text tables for experiment output (the bench harness
    prints paper tables/figures as text). *)

type t

val create : string list -> t
(** [create headers] starts a table with the given column headers. *)

val add_row : t -> string list -> unit
(** Rows shorter than the header are padded; longer rows raise. *)

val add_separator : t -> unit
(** A horizontal rule between row groups. *)

val render : t -> string
(** Render with column alignment and an underlined header. *)

val print : t -> unit
(** [render] to stdout followed by a newline. *)

val cell_f : ?decimals:int -> float -> string
(** Format a float cell, default 3 decimals. *)

val cell_pct : ?decimals:int -> float -> string
(** Format a percentage cell with a trailing [%], default 1 decimal. *)
