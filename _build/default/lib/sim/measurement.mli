(** Externally observable measurements: what the PCL counters and the
    EnergyScale power sensor expose on the real machine. Everything the
    characterization case studies consume comes through this interface —
    never through the simulator's internal ground truth. *)

type counters = {
  cycles : float;      (** measured-window cycles of the owning core *)
  instrs : float;      (** instructions completed by this thread *)
  dispatched : float;
  fxu : float;         (** FXU operations finished (incl. update port) *)
  lsu : float;         (** LSU operations finished (incl. store port) *)
  vsu : float;
  bru : float;
  st : float;          (** stores finished *)
  l1 : float;          (** loads sourced from L1 *)
  l2 : float;
  l3 : float;
  mem : float;         (** loads sourced from main memory *)
}

val zero_counters : counters
val add_counters : counters -> counters -> counters
val scale_counters : float -> counters -> counters

val read : counters -> Mp_uarch.Pmc.id -> float
(** PMC-style access by counter id. *)

val ipc : counters -> float
(** Instructions per cycle of the thread. *)

val rate : counters -> float -> float
(** [rate c v] is [v / c.cycles] (0 when no cycles). *)

type t = {
  config : Mp_uarch.Uarch_def.config;
  program : string;
  threads : counters array;
      (** per hardware thread of one (representative) core; all cores
          run identical copies *)
  core_ipc : float;
  power : float;          (** chip power, sensor mean (arbitrary watts) *)
  power_trace : float array;  (** sensor samples over the run *)
}

val total_threads : t -> int
(** Threads per core times enabled cores. *)

val core_counters : t -> counters
(** Sum of the per-thread counters (cycles kept, not summed). *)

val pp : Format.formatter -> t -> unit
