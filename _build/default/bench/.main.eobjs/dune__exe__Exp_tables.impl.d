bench/exp_tables.ml: Arch Array Builder Cache_geometry Context Epi Float List Machine Measurement Microprobe Mp_util Passes Printf Stats Synthesizer Text_table Workloads
