open Mp_isa

type t = { name : string; apply : Builder.t -> unit }

let skeleton ~size =
  let name = Printf.sprintf "skeleton(%d)" size in
  { name; apply = (fun b -> Builder.set_skeleton b size) }

let check_candidates name = function
  | [] -> failwith (Printf.sprintf "pass %S: no candidate instructions" name)
  | _ -> ()

let fill_weighted weighted =
  let name = "fill_weighted" in
  {
    name;
    apply =
      (fun b ->
        Builder.require_skeleton b name;
        check_candidates name weighted;
        let ops = Array.of_list (List.map fst weighted) in
        let w = Array.of_list (List.map snd weighted) in
        Array.iter
          (fun (s : Builder.slot) ->
            s.op <- Some ops.(Mp_util.Rng.weighted_index b.rng w))
          b.slots);
  }

let fill_uniform candidates =
  let name = "fill_uniform" in
  {
    name;
    apply =
      (fun b ->
        Builder.require_skeleton b name;
        check_candidates name (List.map (fun c -> (c, 1.0)) candidates);
        let ops = Array.of_list candidates in
        Array.iter
          (fun (s : Builder.slot) -> s.op <- Some (Mp_util.Rng.choose b.rng ops))
          b.slots);
  }

let fill_sequence pattern =
  let name = "fill_sequence" in
  {
    name;
    apply =
      (fun b ->
        Builder.require_skeleton b name;
        check_candidates name (List.map (fun c -> (c, 1.0)) pattern);
        let ops = Array.of_list pattern in
        Array.iteri
          (fun i (s : Builder.slot) ->
            s.op <- Some ops.(i mod Array.length ops))
          b.slots);
  }

let fill_interleaved mix =
  let name = "fill_interleaved" in
  {
    name;
    apply =
      (fun b ->
        Builder.require_skeleton b name;
        check_candidates name (List.map (fun (c, _) -> (c, 1.0)) mix);
        let round =
          List.concat_map (fun (ins, k) -> List.init (max 0 k) (fun _ -> ins)) mix
        in
        if round = [] then failwith (Printf.sprintf "pass %S: empty round" name);
        let round = Array.of_list round in
        Array.iteri
          (fun i (s : Builder.slot) ->
            s.op <- Some round.(i mod Array.length round))
          b.slots);
  }

let memory_model distribution =
  let name = "memory_model" in
  {
    name;
    apply =
      (fun b ->
        Builder.require_filled b name;
        let mem_slots =
          Array.to_list b.slots
          |> List.filter (fun (s : Builder.slot) ->
                 match s.op with
                 | Some op -> Instruction.is_memory op && not op.prefetch
                 | None -> false)
        in
        let n = List.length mem_slots in
        if n = 0 then
          failwith (Printf.sprintf "pass %S: no memory instructions to model" name);
        (* normalise and apportion by largest remainder *)
        let total = List.fold_left (fun a (_, w) -> a +. w) 0.0 distribution in
        if total <= 0.0 then failwith (Printf.sprintf "pass %S: zero weights" name);
        let dist = List.map (fun (l, w) -> (l, w /. total)) distribution in
        let quotas = List.map (fun (l, w) -> (l, w *. float_of_int n)) dist in
        let floors =
          List.map (fun (l, q) -> (l, int_of_float (Float.floor q), q)) quotas
        in
        let assigned = List.fold_left (fun a (_, f, _) -> a + f) 0 floors in
        let by_rem =
          List.sort
            (fun (_, f1, q1) (_, f2, q2) ->
              compare (q2 -. float_of_int f2) (q1 -. float_of_int f1))
            floors
        in
        let counts =
          List.mapi
            (fun i (l, f, _) -> (l, if i < n - assigned then f + 1 else f))
            by_rem
        in
        let levels =
          List.concat_map (fun (l, c) -> List.init c (fun _ -> l)) counts
          |> Array.of_list
        in
        Mp_util.Rng.shuffle_in_place b.rng levels;
        List.iteri
          (fun i (s : Builder.slot) -> s.mem_target <- Some levels.(i))
          mem_slots;
        b.mem_distribution <- Some dist);
  }

let branch_model ~bc ~frequency ~taken_ratio ~pattern_length =
  let name = "branch_model" in
  {
    name;
    apply =
      (fun b ->
        Builder.require_filled b name;
        if frequency < 0.0 || frequency > 1.0 then
          failwith (Printf.sprintf "pass %S: frequency out of range" name);
        let n = Builder.size b in
        let count = int_of_float (Float.round (frequency *. float_of_int n)) in
        let idx = Array.init n (fun i -> i) in
        Mp_util.Rng.shuffle_in_place b.rng idx;
        for k = 0 to count - 1 do
          let s = b.slots.(idx.(k)) in
          let taken = int_of_float (Float.round (taken_ratio *. float_of_int pattern_length)) in
          let pat = Array.init pattern_length (fun i -> i < taken) in
          Mp_util.Rng.shuffle_in_place b.rng pat;
          s.op <- Some bc;
          s.mem_target <- None;
          s.pattern <- Some pat
        done);
  }

let init_registers policy =
  let name =
    match policy with
    | Builder.Random_values -> "init_registers(random)"
    | Builder.Constant v -> Printf.sprintf "init_registers(0x%Lx)" v
  in
  { name; apply = (fun b -> b.reg_policy <- policy) }

let init_immediates policy =
  let name =
    match policy with
    | Builder.Random_values -> "init_immediates(random)"
    | Builder.Constant v -> Printf.sprintf "init_immediates(0x%Lx)" v
  in
  { name; apply = (fun b -> b.imm_policy <- policy) }

let dependency mode =
  let name =
    match mode with
    | Builder.No_deps -> "dependency(none)"
    | Builder.Fixed d -> Printf.sprintf "dependency(%d)" d
    | Builder.Random_range (lo, hi) -> Printf.sprintf "dependency(%d..%d)" lo hi
  in
  { name; apply = (fun b -> b.dep_mode <- mode) }

let rename n =
  { name = Printf.sprintf "rename(%s)" n; apply = (fun b -> b.name <- n) }

let custom ~name apply = { name; apply }

(* ----- seed-independence classification --------------------------------- *)

let has_prefix p s =
  String.length s >= String.length p && String.sub s 0 (String.length p) = p

let has_sub sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* Classify by recorded pass name — the [Ir.provenance] vocabulary.
   A pass is seed-independent when it draws nothing from any rng at
   build or deployment time: its whole effect is a pure function of its
   parameters, fully captured by the emitted IR. [memory_model] is
   seed-consuming even though its per-slot level assignment is baked
   into the IR, because the distribution it records triggers
   machine-rng address-stream synthesis at every deployment. Unknown
   (user [custom]) passes are conservatively seed-consuming. *)
let seed_independent name =
  name = "fill_sequence" || name = "fill_interleaved"
  || has_prefix "skeleton(" name
  || has_prefix "rename(" name
  || has_prefix "init_registers(0x" name
  || has_prefix "init_immediates(0x" name
  || (has_prefix "dependency(" name && not (has_sub ".." name))
