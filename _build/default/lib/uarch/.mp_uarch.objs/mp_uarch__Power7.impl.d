lib/uarch/power7.ml: Cache_geometry Hashtbl Instruction Isa_def List Mp_isa Pipe Pmc Power_isa Uarch_def
