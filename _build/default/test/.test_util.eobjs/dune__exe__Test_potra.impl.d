test/test_potra.ml: Alcotest Array Gen List Mp_potra Mp_util QCheck QCheck_alcotest Trace
