(* Parallel-engine benchmark: the same measurement batch run serially
   (pool of one, no cache) and across the domain pool, with a
   bit-identical result check — the engine's determinism contract is
   asserted on every harness run, not only in the test suite. Also
   home to the steady-state replay benchmark ({!replay_bench}) and the
   worker scaling curve written to BENCH_scaling.json. *)

open Microprobe

(* Exact period skipping: the same periodic steady-state kernel
   simulated densely and with the period detector on, on fresh
   cache-less machines so every run actually simulates. Two kernels:
   independent fadd (occupancy 1.0, the simplest steady state) and
   independent mulld (occupancy 1.43 — non-dyadic, exercising the
   fixed-point residual arithmetic: its boundary state only repeats
   once the fractional tick phases realign). The kernel size of 250 is
   deliberate: 250 mulld issues advance a pipe's residual phase by
   250*143 = 50 mod 100 ticks per iteration, so the phases alternate
   between two genuinely fractional states with a 2-iteration period —
   a state the old float residuals could never fingerprint-match —
   while still repeating early enough inside measure=64 that the
   skipping run simulates only a short head and tail. This is the
   acceptance benchmark for the detector, and the bit-identity checks
   plus the hits>0 checks make CI fail loudly if either kernel class
   regresses into silent dense simulation. *)
let period_kernel (ctx : Context.t) ~mnemonic ~prefix ~measure =
  let arch = ctx.Context.arch in
  let ins = Arch.find_instruction arch mnemonic in
  let synth = Synthesizer.create ~name:("period-" ^ mnemonic) arch in
  Synthesizer.add_pass synth (Passes.skeleton ~size:250);
  Synthesizer.add_pass synth (Passes.fill_sequence [ ins ]);
  Synthesizer.add_pass synth (Passes.dependency Builder.No_deps);
  let p = Synthesizer.synthesize ~seed:7 synth in
  let cfg = Context.config ctx ~cores:8 ~smt:2 in
  let reps = if ctx.Context.quick then 5 else 20 in
  let time_reps ~period =
    (* a fresh machine per side: no measurement cache and no replay
       table, same seed, so the two sides are directly comparable,
       bit-identical, and every rep actually simulates *)
    let machine = Machine.create ~cache:false ~replay:false arch.Arch.uarch in
    let t0 = Unix.gettimeofday () in
    let last = ref None in
    for _ = 1 to reps do
      last := Some (Machine.run ~measure ~period machine cfg p)
    done;
    (Option.get !last, Unix.gettimeofday () -. t0)
  in
  let dense, t_dense = time_reps ~period:false in
  let hits0 = Core_sim.period_hits () in
  let skipped0 = Core_sim.cycles_skipped () in
  let skip, t_skip = time_reps ~period:true in
  let hits = Core_sim.period_hits () - hits0 in
  let skipped = Core_sim.cycles_skipped () - skipped0 in
  if compare dense skip <> 0 then
    failwith
      (Printf.sprintf
         "period bench: %s skipping run diverges from the dense run" mnemonic);
  if hits = 0 then
    failwith
      (Printf.sprintf
         "period bench: no period detected on periodic kernel %s — the \
          detector has regressed into silent dense simulation" mnemonic);
  let speedup = t_dense /. Float.max t_skip 1e-9 in
  Context.record_metric ctx (prefix ^ "_measure") (float_of_int measure);
  Context.record_metric ctx (prefix ^ "_dense_seconds") t_dense;
  Context.record_metric ctx (prefix ^ "_skip_seconds") t_skip;
  Context.record_metric ctx (prefix ^ "_speedup") speedup;
  Context.record_metric ctx (prefix ^ "_hits") (float_of_int hits);
  Context.record_metric ctx (prefix ^ "_cycles_skipped") (float_of_int skipped);
  Context.log
    "%s @8c-smt2, measure=%d, %d reps: dense %.2fs, skipping %.2fs ->\n\
     %.1fx speedup; %d periods detected, %d cycles skipped;\n\
     results bit-identical"
    mnemonic measure reps t_dense t_skip speedup hits skipped

let period_bench (ctx : Context.t) =
  Context.section "Exact period skipping — dense vs skipping simulation";
  period_kernel ctx ~mnemonic:"fadd" ~prefix:"period_bench" ~measure:64;
  period_kernel ctx ~mnemonic:"mulld" ~prefix:"period_nondyadic" ~measure:64

(* The shared job list: a slice of the Table-2 training suite fanned
   across heterogeneous configurations, so the batch has the skewed
   cost profile (1c-smt1 vs 8c-smt4 is ~30x) the steal scheduler and
   the cost-hinted width estimate are designed around. *)
let bench_jobs (ctx : Context.t) ~skip configs =
  let programs = Context.family_programs ~skip ctx in
  ( List.length programs,
    List.concat_map
      (fun c -> List.map (fun p -> (c, p)) programs)
      configs )

(* One timed lap of the batch on a given (machine, pool). *)
let lap machine pool jobs =
  let t0 = Unix.gettimeofday () in
  let r = Machine.run_batch ~pool machine jobs in
  (r, Unix.gettimeofday () -. t0)

(* ----- scaling curve ----------------------------------------------------- *)

(* The same replay-off, cache-off batch across pools of 1, 2, 4 and 8
   workers; every lap is checked bit-identical against the 1-worker
   reference and the curve is written to BENCH_scaling.json so CI can
   archive how the engine scales on its runner. Workers beyond the
   detected core count are deliberately included — the curve should
   show the oversubscription plateau, not hide it. *)
let scaling_workers = [ 1; 2; 4; 8 ]

let write_scaling_json ~quick ~jobs ~procpool ~netpool ~sched_skew ~stride
    entries =
  let path = "BENCH_scaling.json" in
  let oc = open_out path in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"mode\": %S,\n" (if quick then "quick" else "full");
  out "  \"detected_cores\": %d,\n" (Mp_util.Parallel.detected_cores ());
  out "  \"pool_size_effective\": %d,\n" (Mp_util.Parallel.default_size ());
  out "  \"jobs\": %d,\n" jobs;
  (* membench's STREAM-like stride sweep, when it ran in this harness
     invocation — the seed of the ROADMAP's bandwidth campaign *)
  if stride <> [] then begin
    out "  \"stride_sweep\": [\n";
    List.iteri
      (fun i (s, pm, lm, frac : int * float * float * float array) ->
        out
          "    { \"stride_lines\": %d, \"packed_maccess_per_s\": %.3f, \
           \"list_maccess_per_s\": %.3f, \"frac\": { \"L1\": %.4f, \"L2\": \
           %.4f, \"L3\": %.4f, \"MEM\": %.4f } }%s\n"
          s pm lm frac.(0) frac.(1) frac.(2) frac.(3)
          (if i = List.length stride - 1 then "" else ","))
      stride;
    out "  ],\n"
  end;
  out "  \"entries\": [\n";
  List.iteri
    (fun i (workers, seconds, speedup) ->
      out "    { \"workers\": %d, \"seconds\": %.6f, \"speedup\": %.6f }%s\n"
        workers seconds speedup
        (if i = List.length entries - 1 then "" else ","))
    entries;
  out "  ],\n";
  (let combos, speedup, fanned = procpool in
   out "  \"procpool\": {\n";
   out "    \"fanned_out\": %b,\n" fanned;
   out "    \"speedup\": %.6f,\n" speedup;
   out "    \"entries\": [\n";
   List.iteri
     (fun i (w, d, seconds) ->
       out
         "      { \"procs\": %d, \"domains_per_proc\": %d, \"seconds\": \
          %.6f }%s\n"
         w d seconds
         (if i = List.length combos - 1 then "" else ","))
     combos;
   out "    ]\n";
   out "  },\n");
  (let nentries, recovered, dispatched = netpool in
   out "  \"netpool\": {\n";
   out "    \"dispatched\": %b,\n" dispatched;
   out "    \"jobs_recovered\": %d,\n" recovered;
   out "    \"entries\": [\n";
   List.iteri
     (fun i (w, seconds) ->
       out "      { \"remote_workers\": %d, \"seconds\": %.6f }%s\n" w seconds
         (if i = List.length nentries - 1 then "" else ","))
     nentries;
   out "    ]\n";
   out "  },\n");
  (let skew_jobs, t_static, t_dynamic, speedup, fanned = sched_skew in
   out "  \"sched_skew\": {\n";
   out "    \"fanned_out\": %b,\n" fanned;
   out "    \"jobs\": %d,\n" skew_jobs;
   out "    \"static_seconds\": %.6f,\n" t_static;
   out "    \"dynamic_seconds\": %.6f,\n" t_dynamic;
   out "    \"dynamic_speedup\": %.6f\n" speedup;
   out "  }\n");
  out "}\n";
  close_out oc;
  Context.log "wrote %s" path

(* ----- proc-pool curve ---------------------------------------------------- *)

(* The process-level fan-out over the same batch: every combination of
   1/2 shard workers x 1/2 domains per worker, each lap checked
   bit-identical against plain in-process execution. The headline
   number is 2 workers vs 1 at a single domain each — pure process
   sharding with the domain layer held flat. *)
let procpool_combos = [ (1, 1); (1, 2); (2, 1); (2, 2) ]

let procpool_curve (ctx : Context.t) machine jobs =
  Context.section "Process fan-out curve — 1/2 workers x 1/2 domains";
  (* in-process reference, process sharding explicitly off *)
  let reference = Machine.run_batch ~procs:0 machine jobs in
  let shard0, shard1 =
    List.fold_left
      (fun (a, b) (_, p) ->
        if Shard_exec.shard_index ~shards:2 [ p ] = 0 then (a + 1, b)
        else (a, b + 1))
      (0, 0) jobs
  in
  let rec0 = Machine.jobs_recovered () in
  let sent0 = Mp_util.Procpool.frames_sent () in
  let entries =
    List.map
      (fun (w, d) ->
        let sp =
          Shard_exec.create_pool
            ~env:[ ("MP_POOL_SIZE", string_of_int d) ]
            w
        in
        (* prime lap: spawns the workers and warms their machines
           outside the timed window *)
        let prime = Machine.run_batch ~shard_pool:sp machine jobs in
        let t0 = Unix.gettimeofday () in
        let r = Machine.run_batch ~shard_pool:sp machine jobs in
        let dt = Unix.gettimeofday () -. t0 in
        Shard_exec.shutdown_pool sp;
        if compare reference prime <> 0 || compare reference r <> 0 then
          failwith
            (Printf.sprintf
               "procpool curve: results at %d workers x %d domains diverge \
                from in-process execution"
               w d);
        (w, d, dt))
      procpool_combos
  in
  let recovered = Machine.jobs_recovered () - rec0 in
  let dispatched = Mp_util.Procpool.frames_sent () > sent0 in
  let time_of w d =
    List.find_map
      (fun (w', d', t) -> if w' = w && d' = d then Some t else None)
      entries
    |> Option.get
  in
  let speedup = time_of 1 1 /. Float.max (time_of 2 1) 1e-9 in
  (* "genuinely fanned out": frames actually crossed process
     boundaries, both shards carried work, nothing had to be
     recovered, and the runner has a second core to run it on *)
  let fanned =
    dispatched && recovered = 0 && shard0 > 0 && shard1 > 0
    && Mp_util.Parallel.detected_cores () >= 2
  in
  List.iter
    (fun (w, d, t) ->
      Context.record_metric ctx
        (Printf.sprintf "procpool_w%d_d%d_seconds" w d)
        t;
      Context.log "%d worker%s x %d domain%s: %.2fs" w
        (if w = 1 then "" else "s")
        d
        (if d = 1 then "" else "s")
        t)
    entries;
  Context.record_metric ctx "procpool_speedup" speedup;
  Context.record_metric ctx "procpool_fanned_out" (if fanned then 1. else 0.);
  Context.record_metric ctx "procpool_jobs_recovered_delta"
    (float_of_int recovered);
  Context.log
    "2 workers vs 1 (single domain each): %.2fx; %d jobs recovered;\n\
     all laps bit-identical to in-process execution"
    speedup recovered;
  (* CI gate, mirroring parbench: a batch the coordinator chose to
     shard across two live workers must not lose to one worker — below
     parity the sharding or the placement has regressed. When the
     dispatch never actually fanned out (single core, adaptive
     fallback, one-sided shard spread) or a worker had to be recovered
     mid-curve, wall-clock comparisons say nothing about the sharding
     layer, so the gate stands down. *)
  if fanned && speedup < 1.0 then
    failwith
      (Printf.sprintf
         "procpool curve: 2 workers only %.2fx vs 1 worker (floor 1.0x, \
          fanned out)"
         speedup);
  if not fanned then
    Context.log
      "speedup gate skipped (%s)"
      (if not dispatched then "dispatch stayed in-process"
       else if recovered > 0 then "jobs were recovered mid-curve"
       else if shard0 = 0 || shard1 = 0 then "one-sided shard spread"
       else "single detected core");
  (entries, speedup, fanned)

(* ----- loopback net-pool smoke ------------------------------------------- *)

(* The socket transport over the same batch: a persistent worker is
   spawned on a loopback TCP port (`microprobe worker --listen` in
   self-exec form) and the batch runs once in-process (0 remote
   workers) and once against the remote peer only (1 remote worker),
   every lap checked bit-identical against the in-process reference.
   This is a wire-path smoke, not a scaling claim — both ends share
   the same machine — so the gates are bit-identity and zero
   recoveries over a healthy peer, with the laps recorded to the
   `netpool` section of BENCH_scaling.json. *)
let free_port () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
      match Unix.getsockname fd with
      | Unix.ADDR_INET (_, p) -> p
      | _ -> assert false)

let netpool_curve (ctx : Context.t) machine jobs =
  Context.section "Remote fan-out smoke — loopback TCP worker";
  let reference = Machine.run_batch ~procs:0 machine jobs in
  let t0 = Unix.gettimeofday () in
  let local = Machine.run_batch ~procs:0 machine jobs in
  let t_local = Unix.gettimeofday () -. t0 in
  if compare reference local <> 0 then
    failwith "netpool smoke: in-process laps diverge from each other";
  let port = free_port () in
  let pid = Shard_exec.spawn_worker ~port () in
  let rec0 = Machine.jobs_recovered () in
  let nf0 = Mp_util.Netpool.frames_sent () in
  let t_remote =
    Fun.protect
      ~finally:(fun () ->
        (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
        ignore (Unix.waitpid [] pid))
      (fun () ->
        let sp = Shard_exec.create_pool ~hosts:[ ("127.0.0.1", port) ] 0 in
        Fun.protect
          ~finally:(fun () -> Shard_exec.shutdown_pool sp)
          (fun () ->
            (* prime lap: establishes the connection and warms the
               worker's machine outside the timed window *)
            let prime = Machine.run_batch ~shard_pool:sp machine jobs in
            let t0 = Unix.gettimeofday () in
            let r = Machine.run_batch ~shard_pool:sp machine jobs in
            let dt = Unix.gettimeofday () -. t0 in
            if compare reference prime <> 0 || compare reference r <> 0 then
              failwith
                "netpool smoke: remote results diverge from in-process \
                 execution";
            dt))
  in
  let recovered = Machine.jobs_recovered () - rec0 in
  let dispatched = Mp_util.Netpool.frames_sent () > nf0 in
  Context.record_metric ctx "netpool_local_seconds" t_local;
  Context.record_metric ctx "netpool_remote_seconds" t_remote;
  Context.record_metric ctx "netpool_dispatched" (if dispatched then 1. else 0.);
  Context.record_metric ctx "netpool_jobs_recovered_delta"
    (float_of_int recovered);
  Context.log
    "in-process %.2fs, loopback remote worker %.2fs; %d jobs recovered;\n\
     all laps bit-identical to in-process execution"
    t_local t_remote recovered;
  (* CI gate: over a healthy loopback peer nothing may need recovering
     — a nonzero delta means the socket transport dropped a live
     connection mid-batch. Stands down only if the dispatch never
     reached the wire (adaptive fallback on a tiny batch). *)
  if dispatched && recovered > 0 then
    failwith
      (Printf.sprintf
         "netpool smoke: %d jobs recovered over a healthy loopback worker"
         recovered);
  if not dispatched then
    Context.log "recovery gate skipped (dispatch stayed in-process)";
  ([ (0, t_local); (1, t_remote) ], recovered, dispatched)

(* ----- scheduling skew --------------------------------------------------- *)

(* A deliberately skewed batch: one heavy program measured under many
   configurations — placement ignores configuration, so every heavy
   job lands on the same slot — plus light programs that spread over
   the rest of the pool. Under the static one-frame-per-slot barrier
   the batch completes at the heavy slot's pace while its siblings
   idle after their light shards; the dynamic scheduler drains the
   heavy slot's chunks onto those idle siblings and must at least
   match static (and beat it whenever the pool genuinely fans out).
   The pool is the tentpole topology — 2 subprocess workers plus 1
   loopback TCP worker — each restricted to a single domain so the
   skew is carried by the scheduling layer, not washed out by
   intra-worker parallelism; period skipping is off so the heavy jobs
   genuinely cost what their loop size says. *)
let sched_skew_curve (ctx : Context.t) =
  Context.section "Scheduling skew — static barrier vs dynamic scheduler";
  let arch = ctx.Context.arch in
  let synth name size =
    let ins = Arch.find_instruction arch "fadd" in
    let s = Synthesizer.create ~name arch in
    Synthesizer.add_pass s (Passes.skeleton ~size);
    Synthesizer.add_pass s (Passes.fill_sequence [ ins ]);
    Synthesizer.add_pass s (Passes.dependency Builder.No_deps);
    Synthesizer.synthesize ~seed:11 s
  in
  let heavy = synth "skew-heavy" (if ctx.Context.quick then 400 else 600) in
  let lights =
    List.init 6 (fun i -> synth (Printf.sprintf "skew-light-%d" i) (40 + i))
  in
  let heavy_configs =
    List.map
      (fun (cores, smt) -> Context.config ctx ~cores ~smt)
      [ (8, 4); (4, 4); (2, 4); (8, 2); (4, 2); (2, 2) ]
  in
  let light_config = Context.config ctx ~cores:1 ~smt:1 in
  let jobs =
    List.map (fun c -> (c, heavy)) heavy_configs
    @ List.map (fun p -> (light_config, p)) lights
  in
  let slots = 3 in
  let heavy_slot = Shard_exec.shard_index ~shards:slots [ heavy ] in
  let light_spread =
    List.exists
      (fun p -> Shard_exec.shard_index ~shards:slots [ p ] <> heavy_slot)
      lights
  in
  Context.log
    "%d jobs: %d heavy (one program x %d configurations, all on slot %d)\n\
     + %d light; 2 proc workers + 1 loopback TCP worker, 1 domain each"
    (List.length jobs) (List.length heavy_configs) (List.length heavy_configs)
    heavy_slot (List.length lights);
  let machine = Machine.create ~cache:false ~replay:false arch.Arch.uarch in
  (* a widened dense window makes each heavy job cost tens of
     milliseconds, so the skew dominates per-chunk framing overhead
     and the static-vs-dynamic gap measures scheduling, not Marshal *)
  let measure = 24 in
  let reference =
    Machine.run_batch ~measure ~period:false ~procs:0 machine jobs
  in
  (* speculation off for the timed laps: the section times
     work-conserving dispatch, and tail re-dispatch would leave
     duplicate frames to drain at batch end — timer noise, and covered
     by its own test *)
  let speculate0 =
    match Sys.getenv_opt "MP_SPECULATE" with Some s -> s | None -> ""
  in
  Unix.putenv "MP_SPECULATE" "off";
  let port = free_port () in
  let pid =
    Shard_exec.spawn_worker ~env:[ ("MP_POOL_SIZE", "1") ] ~port ()
  in
  let rec0 = Machine.jobs_recovered () in
  let sent0 = Mp_util.Procpool.frames_sent () + Mp_util.Netpool.frames_sent () in
  let t_static, t_dynamic =
    Fun.protect
      ~finally:(fun () ->
        Unix.putenv "MP_SPECULATE" speculate0;
        (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
        ignore (Unix.waitpid [] pid))
      (fun () ->
        let sp =
          Shard_exec.create_pool
            ~env:[ ("MP_POOL_SIZE", "1") ]
            ~hosts:[ ("127.0.0.1", port) ]
            2
        in
        Fun.protect
          ~finally:(fun () -> Shard_exec.shutdown_pool sp)
          (fun () ->
            let lap sched =
              let t0 = Unix.gettimeofday () in
              let r =
                Machine.run_batch ~measure ~period:false ~shard_pool:sp
                  ~shard_sched:sched machine jobs
              in
              (r, Unix.gettimeofday () -. t0)
            in
            (* prime lap: spawns/connects the workers and warms their
               machines outside the timed windows *)
            let prime, _ = lap Shard_exec.Static in
            let r_static, t_static = lap Shard_exec.Static in
            let r_dynamic, t_dynamic = lap Shard_exec.Dynamic in
            if
              compare reference prime <> 0
              || compare reference r_static <> 0
              || compare reference r_dynamic <> 0
            then
              failwith
                "sched skew: static/dynamic results diverge from in-process \
                 execution";
            (t_static, t_dynamic)))
  in
  let recovered = Machine.jobs_recovered () - rec0 in
  let dispatched =
    Mp_util.Procpool.frames_sent () + Mp_util.Netpool.frames_sent () > sent0
  in
  let speedup = t_static /. Float.max t_dynamic 1e-9 in
  (* "genuinely fanned out": frames actually crossed process
     boundaries, nothing had to be recovered, the injected skew really
     was one-sided (heavy on one slot, light work elsewhere), and the
     runner has a second core to schedule onto *)
  let fanned =
    dispatched && recovered = 0 && light_spread
    && Mp_util.Parallel.detected_cores () >= 2
  in
  Context.record_metric ctx "sched_skew_static_seconds" t_static;
  Context.record_metric ctx "sched_skew_dynamic_seconds" t_dynamic;
  Context.record_metric ctx "sched_skew_speedup" speedup;
  Context.record_metric ctx "sched_skew_fanned_out" (if fanned then 1. else 0.);
  Context.record_metric ctx "sched_skew_jobs_recovered_delta"
    (float_of_int recovered);
  Context.log
    "static %.2fs, dynamic %.2fs -> %.2fx; %d jobs recovered;\n\
     all laps bit-identical to in-process execution"
    t_static t_dynamic speedup recovered;
  (* CI gate: on a pool that genuinely fanned out over an injected
     one-sided skew, the work-conserving scheduler must not lose to
     the barrier it replaces — below parity the chunking, stealing or
     requeue path has regressed. When the dispatch never fanned out
     (1-core container, adaptive serial fallback), a worker had to be
     recovered mid-lap, or the skew collapsed onto one slot,
     wall-clock comparisons say nothing about the scheduler, so the
     gate stands down. *)
  if fanned && speedup < 1.0 then
    failwith
      (Printf.sprintf
         "sched skew: dynamic only %.2fx vs static barrier (floor 1.0x, \
          fanned out)"
         speedup);
  if not fanned then
    Context.log "speedup gate skipped (%s)"
      (if not dispatched then "dispatch stayed in-process"
       else if recovered > 0 then "jobs were recovered mid-lap"
       else if not light_spread then "skew collapsed onto one slot"
       else "single detected core");
  (List.length jobs, t_static, t_dynamic, speedup, fanned)

let scaling_curve (ctx : Context.t) =
  Context.section "Worker scaling curve — one batch, pools of 1/2/4/8";
  let arch = ctx.Context.arch in
  let n_programs, jobs =
    bench_jobs ctx
      ~skip:(if ctx.Context.quick then 4 else 2)
      [ Context.config ctx ~cores:1 ~smt:2; Context.config ctx ~cores:4 ~smt:2 ]
  in
  Context.log "%d jobs (%d programs x 2 configurations), %d detected cores"
    (List.length jobs) n_programs
    (Mp_util.Parallel.detected_cores ());
  (* one machine for every pool size: cache and replay off, so each lap
     re-simulates the whole batch and the curve times pure engine work *)
  let machine = Machine.create ~cache:false ~replay:false arch.Arch.uarch in
  let entries =
    List.map
      (fun w ->
        let pool = Mp_util.Parallel.create w in
        (* prime lap: warms this pool's domains (and, on the first
           iteration, the process) outside the timed window *)
        let reference, _ = lap machine pool jobs in
        let r, dt = lap machine pool jobs in
        Mp_util.Parallel.shutdown pool;
        if compare reference r <> 0 then
          failwith
            (Printf.sprintf
               "scaling curve: results at %d workers diverge between laps" w);
        (w, r, dt))
      scaling_workers
  in
  (match entries with
   | (_, reference, _) :: rest ->
     List.iter
       (fun (w, r, _) ->
         if compare reference r <> 0 then
           failwith
             (Printf.sprintf
                "scaling curve: results at %d workers diverge from the \
                 1-worker reference" w))
       rest
   | [] -> ());
  let t1 =
    match entries with (_, _, t) :: _ -> t | [] -> Float.nan
  in
  let curve =
    List.map (fun (w, _, t) -> (w, t, t1 /. Float.max t 1e-9)) entries
  in
  List.iter
    (fun (w, t, s) ->
      Context.record_metric ctx
        (Printf.sprintf "scaling_w%d_seconds" w) t;
      Context.record_metric ctx
        (Printf.sprintf "scaling_w%d_speedup" w) s;
      Context.log "%d worker%s: %.2fs (%.2fx vs 1 worker)" w
        (if w = 1 then "" else "s") t s)
    curve;
  let procpool = procpool_curve ctx machine jobs in
  let netpool = netpool_curve ctx machine jobs in
  let sched_skew = sched_skew_curve ctx in
  write_scaling_json ~quick:ctx.Context.quick ~jobs:(List.length jobs)
    ~procpool ~netpool ~sched_skew ~stride:ctx.Context.membench_stride curve

(* ----- parbench ---------------------------------------------------------- *)

let run (ctx : Context.t) =
  period_bench ctx;
  Context.section "Parallel engine — pooled run_batch vs serial";
  let arch = ctx.Context.arch in
  let pool = ctx.Context.pool in
  let n_programs, jobs =
    bench_jobs ctx ~skip:2
      [ Context.config ctx ~cores:1 ~smt:1;
        Context.config ctx ~cores:4 ~smt:2;
        Context.config ctx ~cores:8 ~smt:4 ]
  in
  Context.log "%d jobs (%d programs x 3 configurations), pool of %d domains"
    (List.length jobs) n_programs (Mp_util.Parallel.size pool);
  (* Like-for-like: both sides get a fresh machine with the measurement
     cache and the replay table off (every lap simulates), and both
     sides run a prime lap before the timed laps, so neither side pays
     first-touch costs inside its timed window. Full mode times two
     laps per side and keeps the minimum. *)
  let timed_laps = if ctx.Context.quick then 1 else 2 in
  let side pool =
    let machine = Machine.create ~cache:false ~replay:false arch.Arch.uarch in
    let r, _ = lap machine pool jobs in
    let best = ref Float.infinity in
    for _ = 1 to timed_laps do
      let r', dt = lap machine pool jobs in
      if compare r r' <> 0 then
        failwith "parbench: a machine's laps diverge from each other";
      best := Float.min !best dt
    done;
    (r, !best)
  in
  let serial_pool = Mp_util.Parallel.create 1 in
  let serial, t_serial = side serial_pool in
  Mp_util.Parallel.shutdown serial_pool;
  let steals0 = Mp_util.Parallel.steal_count pool in
  let par0 = Mp_util.Parallel.parallel_batches pool in
  let par, t_par = side pool in
  let steals = Mp_util.Parallel.steal_count pool - steals0 in
  let fanned_out = Mp_util.Parallel.parallel_batches pool > par0 in
  let identical = List.for_all2 (fun a b -> compare a b = 0) serial par in
  if not identical then
    failwith "parbench: pooled results diverge from the serial run";
  let speedup = t_serial /. Float.max t_par 1e-9 in
  Context.record_metric ctx "parbench_jobs" (float_of_int (List.length jobs));
  Context.record_metric ctx "parbench_serial_seconds" t_serial;
  Context.record_metric ctx "parbench_parallel_seconds" t_par;
  Context.record_metric ctx "parbench_speedup" speedup;
  Context.record_metric ctx "parbench_steals" (float_of_int steals);
  Context.record_metric ctx "parbench_pool_mode" (if fanned_out then 1. else 0.);
  Context.log
    "serial %.2fs, pooled %.2fs -> %.2fx speedup (%s, %d jobs stolen\n\
     across workers); results bit-identical"
    t_serial t_par speedup
    (if fanned_out then "fanned out" else "adaptive serial fallback")
    steals;
  (* The CI invariant from the adaptive fan-out work: a batch the pool
     chose to fan out must not lose to serial — below 1.0x the fan-out
     predicate or the scheduler has regressed. When the pool declined
     to fan out (size-1 pool, or a batch below the width threshold)
     both sides ran the same code and only timer noise separates them,
     so the floor is slightly below parity. An explicit MP_POOL_SIZE
     past the core count is the documented escape hatch for
     benchmarking the oversubscribed case — there a sub-1x result is
     the finding, not a regression, so the gate stands down. *)
  let oversubscribed =
    Mp_util.Parallel.size pool > Mp_util.Parallel.detected_cores ()
  in
  if oversubscribed then
    Context.log
      "pool of %d on %d detected cores (explicit oversubscription) — \
       speedup gate skipped"
      (Mp_util.Parallel.size pool)
      (Mp_util.Parallel.detected_cores ())
  else begin
    let floor = if fanned_out then 1.0 else 0.9 in
    if speedup < floor then
      failwith
        (Printf.sprintf
           "parbench: pooled batch only %.2fx vs serial (floor %.1fx, %s)"
           speedup floor
           (if fanned_out then "fanned out" else "serial fallback"))
  end;
  (* memoization: the same batch again on a caching machine — the warm
     pass must also match the serial reference bit for bit. Replay is
     off so the cold pass genuinely simulates and the phase times the
     measurement-cache path in isolation. *)
  let memo_machine = Machine.create ~replay:false arch.Arch.uarch in
  let t0 = Unix.gettimeofday () in
  ignore (Machine.run_batch ~pool memo_machine jobs);
  let t_cold = Unix.gettimeofday () -. t0 in
  let t0 = Unix.gettimeofday () in
  let warm = Machine.run_batch ~pool memo_machine jobs in
  let t_warm = Unix.gettimeofday () -. t0 in
  if not (List.for_all2 (fun a b -> compare a b = 0) serial warm) then
    failwith "parbench: cached results diverge from the serial run";
  let memo_speedup = t_cold /. Float.max t_warm 1e-9 in
  Context.record_metric ctx "parbench_memo_cold_seconds" t_cold;
  Context.record_metric ctx "parbench_memo_warm_seconds" t_warm;
  Context.record_metric ctx "parbench_memo_speedup" memo_speedup;
  (* disk hits on the "cold" pass mean a previous harness invocation of
     this same build already simulated these points *)
  let disk_hits =
    match Machine.measurement_cache memo_machine with
    | None -> 0
    | Some c ->
      let s = Measurement_cache.stats c in
      Context.record_metric ctx "parbench_disk_hits"
        (float_of_int s.Measurement_cache.disk_hits);
      if s.Measurement_cache.disk_hits > 0 then
        Context.log "%d of the cold-pass lookups were served from the disk cache"
          s.Measurement_cache.disk_hits;
      s.Measurement_cache.disk_hits
  in
  (* The warm pass does no simulation — only key derivation and table
     lookups — so it must be decisively faster than the cold pass. A
     floor of 1.5x catches a key path regressing into per-lookup
     serialisation. When the cold pass itself was served from a warm
     disk cache (a previous run of this build), both sides skip
     simulation and only a regression below parity is meaningful. *)
  let memo_floor = if disk_hits > 0 then 1.0 else 1.5 in
  if memo_speedup < memo_floor then
    failwith
      (Printf.sprintf
         "parbench: warm memoized batch only %.2fx faster than cold \
          (floor %.1fx) — the cache lookup path has regressed"
         memo_speedup memo_floor);
  Context.log
    "memoized rerun: cold %.2fs, warm %.3fs -> %.0fx; cached results\n\
     bit-identical to serial"
    t_cold t_warm memo_speedup;
  scaling_curve ctx

(* ----- steady-state replay ----------------------------------------------- *)

(* Repeated-measurement amortisation: the workload every DSE loop,
   bootstrap round and GA generation produces — the same structural
   programs measured again and again — run on a replay-enabled machine
   against a replay-off control. Both machines have the measurement
   cache off, so the off side re-simulates every lap while the on side
   simulates once and replays from the captured steady-state records
   afterwards. A final lap widens the measurement window to twice the
   default, exercising the closed-form window extrapolation (the
   bootstrap measures at that window, so this is the production case,
   not a synthetic one). Results are compared bit for bit on every
   lap; zero replay hits or a speedup below the floor fail the run —
   and CI with it. *)
let replay_bench (ctx : Context.t) =
  Context.section "Steady-state replay — repeated measurements vs dense";
  if not (Replay.enabled ()) then begin
    Context.log "MP_REPLAY=off — replay benchmark skipped";
    Context.record_metric ctx "replay_bench_speedup" Float.nan
  end else begin
    let arch = ctx.Context.arch in
    let pool = ctx.Context.pool in
    let n_programs, jobs =
      bench_jobs ctx ~skip:2
        [ Context.config ctx ~cores:1 ~smt:1;
          Context.config ctx ~cores:4 ~smt:2 ]
    in
    let reps = if ctx.Context.quick then 4 else 6 in
    Context.log "%d jobs (%d programs x 2 configurations), %d repetitions"
      (List.length jobs) n_programs reps;
    let off_machine =
      Machine.create ~cache:false ~replay:false arch.Arch.uarch
    in
    let on_machine = Machine.create ~cache:false arch.Arch.uarch in
    let hits0 = Replay.hits () in
    let misses0 = Replay.misses () in
    let t_off = ref 0.0 and t_on = ref 0.0 in
    let reference = ref None in
    (* interleaved off/on laps, so allocator and cache warmth drift
       over the run is shared evenly between the two sides *)
    for _ = 1 to reps do
      let off, dt_off = lap off_machine pool jobs in
      t_off := !t_off +. dt_off;
      let on, dt_on = lap on_machine pool jobs in
      t_on := !t_on +. dt_on;
      (match !reference with
       | None -> reference := Some off
       | Some r ->
         if compare r off <> 0 then
           failwith "replay bench: dense laps diverge from each other");
      if compare off on <> 0 then
        failwith
          "replay bench: replayed results diverge from dense simulation"
    done;
    (* the widened-window lap: measure = 16 is twice the default 8 and
       is the Epi.Bootstrap window, so the on side must serve it by
       period extrapolation from records captured at the default *)
    let wide machine =
      let t0 = Unix.gettimeofday () in
      let r =
        List.map (fun (c, p) -> Machine.run ~measure:16 machine c p) jobs
      in
      (r, Unix.gettimeofday () -. t0)
    in
    let wide_off, dt_off = wide off_machine in
    t_off := !t_off +. dt_off;
    let wide_on, dt_on = wide on_machine in
    t_on := !t_on +. dt_on;
    if compare wide_off wide_on <> 0 then
      failwith
        "replay bench: widened-window replay diverges from dense simulation";
    let hits = Replay.hits () - hits0 in
    let misses = Replay.misses () - misses0 in
    if hits = 0 then
      failwith
        "replay bench: zero replay hits on a repeated-measurement workload \
         — the replay table has regressed into silent dense simulation";
    let speedup = !t_off /. Float.max !t_on 1e-9 in
    Context.record_metric ctx "replay_bench_jobs"
      (float_of_int (List.length jobs));
    Context.record_metric ctx "replay_bench_reps" (float_of_int reps);
    Context.record_metric ctx "replay_bench_off_seconds" !t_off;
    Context.record_metric ctx "replay_bench_on_seconds" !t_on;
    Context.record_metric ctx "replay_bench_speedup" speedup;
    Context.record_metric ctx "replay_bench_hits" (float_of_int hits);
    Context.record_metric ctx "replay_bench_misses" (float_of_int misses);
    Context.log
      "replay off %.2fs, replay on %.2fs -> %.2fx speedup; %d replay hits,\n\
       %d misses; all %d laps plus the widened window bit-identical"
      !t_off !t_on speedup hits misses (reps + 1);
    (* the acceptance target is >= 2x on this workload; the CI floor
       sits at 1.5x so timer noise on a loaded runner doesn't flake the
       gate while a real regression (replay silently disabled, a key
       component accidentally including the window) still fails *)
    if speedup < 1.5 then
      failwith
        (Printf.sprintf
           "replay bench: only %.2fx vs dense re-simulation (floor 1.5x) — \
            steady-state replay has regressed"
           speedup);
    if speedup < 2.0 then
      Context.log
        "note: below the 2.0x acceptance target (runner noise?) — floor 1.5x \
         held"
  end
