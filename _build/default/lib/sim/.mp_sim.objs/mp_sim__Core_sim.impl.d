lib/sim/core_sim.ml: Array Cache_geometry Cache_sim Float Hashtbl Ir List Measurement Mp_codegen Mp_isa Mp_uarch Option Pipe Uarch_def
