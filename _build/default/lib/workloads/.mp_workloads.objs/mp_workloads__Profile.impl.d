lib/workloads/profile.ml: Arch Builder Float Isa_def List Mp_codegen Mp_isa Mp_uarch Mp_util Passes Synthesizer
