test/test_uarch.ml: Alcotest Cache_geometry List Mp_isa Mp_uarch Pipe Pmc Power7 QCheck QCheck_alcotest String Uarch_def
