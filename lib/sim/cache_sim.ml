open Mp_uarch

(* Two interchangeable engines stand behind [t]:

   - [Packed] (the default): every level's sets live in one flat int
     array (sets x ways, MRU-first within each set), the set index is a
     precomputed shift/mask, demand counters are a rank-indexed int
     array, and a rolling FNV digest of the whole hierarchy is
     maintained incrementally so a boundary fingerprint appends a
     fixed-size digest instead of serializing O(sets x ways) state.
   - [List_ref]: the original list-of-levels model ([Cache_sim_list]),
     kept as the bit-exactness oracle and selected with
     [MP_CACHE_MODEL=list].

   Replacement semantics are identical by construction: both keep each
   set MRU-first with -1 for an empty way, probe linearly, rotate a hit
   to the front, shift a fill in at the front evicting the LRU way,
   walk levels outside-in sourcing from the first hit and filling every
   level above it, and run the same saturating sequential-stream
   prefetcher. The only behavioural difference is the fingerprint
   encoding: the reference serializes the full state (matching means
   equality), the packed model appends its 63-bit digest (matching
   means equality up to a ~2^-63 hash collision per boundary pair).
   Test/test_cache_model.ml holds the equivalence properties. *)

type model = Packed | List_ref

let model_to_string = function Packed -> "packed" | List_ref -> "list"

let model_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "" | "packed" | "fast" -> Some Packed
  | "list" | "ref" | "reference" -> Some List_ref
  | _ -> None

(* consulted at every [create], not latched at startup: tests and
   benches flip the variable between runs with [Unix.putenv] *)
let default_model () =
  match Sys.getenv_opt "MP_CACHE_MODEL" with
  | None -> Packed
  | Some s ->
    (match model_of_string s with
     | Some m -> m
     | None ->
       invalid_arg
         (Printf.sprintf "MP_CACHE_MODEL=%S (expected packed|list)" s))

(* ----- packed model -------------------------------------------------------- *)

type plevel = {
  geom : Cache_geometry.t;
  rank : int;            (* Cache_geometry.level_rank geom.level *)
  ways : int;
  set_shift : int;
  set_mask : int;
  lines : int array;     (* sets x ways, MRU-first per set; -1 = empty *)
  set_hash : int array;  (* per-set content hash; 0 until first touch *)
  salt : int;            (* folded with the set index: distinct per level *)
}

type packed = {
  plevels : plevel array;        (* L1, L2, L3 in order *)
  counts : int array;            (* demand hits, indexed by level rank *)
  mutable p_last : int;          (* last line accessed *)
  mutable p_streak : int;        (* consecutive +1-line strides, saturated *)
  mutable p_count : int;
  line_mask : int;               (* addr land mask = line address *)
  line_step : int;               (* line_bytes of L1 *)
  mutable digest : int;          (* xor of every level's set_hash entries *)
}

type t = P of packed | R of Cache_sim_list.t

let n_ranks = List.length Cache_geometry.all_levels

let rank_level = Array.of_list Cache_geometry.all_levels

let make_plevel geom =
  let sets = Cache_geometry.sets geom in
  let ways = geom.Cache_geometry.associativity in
  let rank = Cache_geometry.level_rank geom.Cache_geometry.level in
  {
    geom;
    rank;
    ways;
    set_shift = Cache_geometry.set_shift geom;
    set_mask = Cache_geometry.set_mask geom;
    lines = Array.make (sets * ways) (-1);
    set_hash = Array.make sets 0;
    (* spaced far beyond any set count, so (salt + set) never collides
       across levels and equal-content sets cannot cancel in the xor *)
    salt = (rank + 1) * 0x9E3779B9;
  }

let create_packed (uarch : Uarch_def.t) =
  let plevels = Array.of_list (List.map make_plevel uarch.Uarch_def.caches) in
  let line_mask, line_step =
    if Array.length plevels = 0 then (-1, 128)
    else
      let lb = plevels.(0).geom.Cache_geometry.line_bytes in
      (lnot (lb - 1), lb)
  in
  {
    plevels;
    counts = Array.make n_ranks 0;
    p_last = min_int;
    p_streak = 0;
    p_count = 0;
    line_mask;
    line_step;
    digest = 0;
  }

(* Content hash of one set: an FNV fold over the MRU-ordered ways,
   seeded with (salt + set) so position in the hierarchy is part of the
   content. Untouched sets keep hash 0 without ever computing it: lines
   never return to all-empty, so 0 consistently means "all ways -1"
   (see [digest_consistent], which checks exactly that). *)
let set_hash_of lvl set =
  let off = set * lvl.ways in
  let h = ref (Mp_util.Fnv.fold_int Mp_util.Fnv.seed_int (lvl.salt + set)) in
  for w = off to off + lvl.ways - 1 do
    h := Mp_util.Fnv.fold_int !h lvl.lines.(w)
  done;
  Mp_util.Fnv.finish_int !h

(* A set changed: re-hash its ways and roll the global digest. The xor
   removes the set's old contribution and adds the new one, so the
   digest stays "xor of all per-set hashes" under any mutation order. *)
let retouch c lvl set =
  let h = set_hash_of lvl set in
  c.digest <- c.digest lxor lvl.set_hash.(set) lxor h;
  lvl.set_hash.(set) <- h

(* Probe a level: true if the line is present; on hit, move to MRU.
   Fast path: a line already at way 0 needs no rotation and therefore
   no re-hash — the dominant case for Set_assoc_model resident pools. *)
let probe c lvl line =
  let set = (line lsr lvl.set_shift) land lvl.set_mask in
  let off = set * lvl.ways in
  if lvl.lines.(off) = line then true
  else begin
    let ways = lvl.ways in
    let rec find w =
      if w = ways then -1
      else if lvl.lines.(off + w) = line then w
      else find (w + 1)
    in
    let pos = find 1 in
    if pos < 0 then false
    else begin
      for j = pos downto 1 do
        lvl.lines.(off + j) <- lvl.lines.(off + j - 1)
      done;
      lvl.lines.(off) <- line;
      retouch c lvl set;
      true
    end
  end

let fill c lvl line =
  let set = (line lsr lvl.set_shift) land lvl.set_mask in
  let off = set * lvl.ways in
  for j = lvl.ways - 1 downto 1 do
    lvl.lines.(off + j) <- lvl.lines.(off + j - 1)
  done;
  lvl.lines.(off) <- line;
  retouch c lvl set

(* Walk the hierarchy for one line; returns the source rank and fills
   all levels above it (same outside-in order as the reference). *)
let lookup c line =
  let n = Array.length c.plevels in
  let rec walk i =
    if i = n then n_ranks - 1 (* MEM *)
    else begin
      let lvl = c.plevels.(i) in
      if probe c lvl line then lvl.rank
      else begin
        let src = walk (i + 1) in
        fill c lvl line;
        src
      end
    end
  in
  walk 0

let run_prefetcher c line =
  let step = c.line_step in
  if line = c.p_last + step then begin
    (* saturate at the consulted bound, like the reference model *)
    if c.p_streak < 3 then c.p_streak <- c.p_streak + 1;
    if c.p_streak >= 3 then begin
      (* stream detected: pull the next two lines into the hierarchy *)
      ignore (lookup c (line + step));
      ignore (lookup c (line + (2 * step)));
      c.p_count <- c.p_count + 2
    end
  end
  else c.p_streak <- 0;
  c.p_last <- line

let access_packed c ~addr ~store =
  ignore store;
  let line = addr land c.line_mask in
  let src = lookup c line in
  c.counts.(src) <- c.counts.(src) + 1;
  run_prefetcher c line;
  rank_level.(src)

(* ----- public surface (model dispatch) ------------------------------------- *)

let create ?model (uarch : Uarch_def.t) =
  match (match model with Some m -> m | None -> default_model ()) with
  | Packed -> P (create_packed uarch)
  | List_ref -> R (Cache_sim_list.create uarch)

let model = function P _ -> Packed | R _ -> List_ref

let access t ~addr ~store =
  match t with
  | P c -> access_packed c ~addr ~store
  | R r -> Cache_sim_list.access r ~addr ~store

let hits t level =
  match t with
  | P c -> c.counts.(Cache_geometry.level_rank level)
  | R r -> Cache_sim_list.hits r level

let prefetches_issued = function
  | P c -> c.p_count
  | R r -> Cache_sim_list.prefetches_issued r

let prefetch_streak = function
  | P c -> c.p_streak
  | R r -> Cache_sim_list.prefetch_streak r

let reset_stats = function
  | P c ->
    Array.fill c.counts 0 n_ranks 0;
    c.p_count <- 0
  | R r -> Cache_sim_list.reset_stats r

(* ----- period-skipping support ------------------------------------------- *)

let stats_snapshot = function
  | P c ->
    let a = Array.make (n_ranks + 1) 0 in
    Array.blit c.counts 0 a 0 n_ranks;
    a.(n_ranks) <- c.p_count;
    a
  | R r -> Cache_sim_list.stats_snapshot r

let credit t ~times ~since =
  match t with
  | P c ->
    for i = 0 to n_ranks - 1 do
      c.counts.(i) <- c.counts.(i) + (times * (c.counts.(i) - since.(i)))
    done;
    c.p_count <- c.p_count + (times * (c.p_count - since.(n_ranks)))
  | R r -> Cache_sim_list.credit r ~times ~since

let add_fingerprint t buf =
  match t with
  | P c ->
    (* O(1) regardless of geometry: the rolling digest stands in for
       the full line-by-line serialization of the reference model *)
    Buffer.add_char buf 'Z';
    Buffer.add_string buf (string_of_int c.digest);
    Buffer.add_char buf '#';
    Buffer.add_string buf (string_of_int c.p_last);
    Buffer.add_char buf ':';
    Buffer.add_string buf (string_of_int c.p_streak)
  | R r -> Cache_sim_list.add_fingerprint r buf

(* ----- introspection (tests, telemetry) ------------------------------------ *)

let rolling_digest = function P c -> Some c.digest | R _ -> None

let digest_consistent = function
  | R _ -> true
  | P c ->
    let ok = ref true in
    let d = ref 0 in
    Array.iter
      (fun lvl ->
        for s = 0 to Array.length lvl.set_hash - 1 do
          let off = s * lvl.ways in
          let untouched = ref true in
          for w = off to off + lvl.ways - 1 do
            if lvl.lines.(w) <> -1 then untouched := false
          done;
          let expect = if !untouched then 0 else set_hash_of lvl s in
          if lvl.set_hash.(s) <> expect then ok := false;
          d := !d lxor lvl.set_hash.(s)
        done)
      c.plevels;
    !ok && !d = c.digest
