type t = {
  arch : Arch.t;
  name : string;
  mutable passes : Passes.t list;  (* reverse order *)
  mutable counter : int;
}

let create ?(name = "ubench") arch = { arch; name; passes = []; counter = 0 }

let arch t = t.arch

let add_pass t p = t.passes <- p :: t.passes

let pass_names t = List.rev_map (fun (p : Passes.t) -> p.name) t.passes

let synthesize ?seed t =
  let seed =
    match seed with
    | Some s -> s
    | None ->
      t.counter <- t.counter + 1;
      t.counter * 0x9E37 + Hashtbl.hash t.name
  in
  let rng = Mp_util.Rng.create seed in
  let b = Builder.create t.arch rng in
  b.name <- Printf.sprintf "%s-%d" t.name seed;
  List.iter
    (fun (p : Passes.t) ->
      p.apply b;
      Builder.record b p.name)
    (List.rev t.passes);
  Builder.finalize b

let synthesize_many ?seed t n =
  List.init n (fun i ->
      match seed with
      | Some s -> synthesize ~seed:(s + i) t
      | None -> synthesize t)
