(* Tests for mp_isa: instruction semantics, the textual definition
   format, the shipped PowerPC subset and the binary encoding. *)

open Mp_isa

let isa () = Power_isa.load ()

(* ----- registry --------------------------------------------------------- *)

let test_load_size () =
  Alcotest.(check bool) "ships a substantial subset" true (Isa_def.size (isa ()) >= 120)

let test_find () =
  let i = Isa_def.find_exn (isa ()) "add" in
  Alcotest.(check string) "mnemonic" "add" i.Instruction.mnemonic;
  Alcotest.(check bool) "missing" true (Isa_def.find (isa ()) "bogus" = None)

let test_duplicate_rejected () =
  let add = Isa_def.find_exn (isa ()) "add" in
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Isa_def.add: duplicate \"add\"")
    (fun () -> ignore (Isa_def.add (isa ()) add))

let test_add_remove () =
  let i = isa () in
  let removed = Isa_def.remove i "add" in
  Alcotest.(check int) "one fewer" (Isa_def.size i - 1) (Isa_def.size removed);
  Alcotest.(check bool) "gone" false (Isa_def.mem removed "add");
  let back = Isa_def.add removed (Isa_def.find_exn i "add") in
  Alcotest.(check int) "restored" (Isa_def.size i) (Isa_def.size back)

let test_select_loads () =
  let loads = Isa_def.select (isa ()) Instruction.is_load in
  Alcotest.(check bool) "many loads" true (List.length loads >= 25);
  List.iter
    (fun (i : Instruction.t) ->
      Alcotest.(check bool) ("load " ^ i.Instruction.mnemonic) true
        (Instruction.is_memory i))
    loads

let test_table3_present () =
  let i = isa () in
  List.iter
    (fun m -> Alcotest.(check bool) ("table3 " ^ m) true (Isa_def.mem i m))
    Power_isa.table3_mnemonics;
  Alcotest.(check int) "24 rows" 24 (List.length Power_isa.table3_mnemonics)

(* ----- semantics --------------------------------------------------------- *)

let test_predicates () =
  let i = isa () in
  let f = Isa_def.find_exn i in
  Alcotest.(check bool) "lbz load" true (Instruction.is_load (f "lbz"));
  Alcotest.(check bool) "stfd store" true (Instruction.is_store (f "stfd"));
  Alcotest.(check bool) "stfd float" true (Instruction.is_float (f "stfd"));
  Alcotest.(check bool) "xvmaddadp vector" true (Instruction.is_vector (f "xvmaddadp"));
  Alcotest.(check bool) "add integer" true (Instruction.is_integer (f "add"));
  Alcotest.(check bool) "b branch" true (Instruction.is_branch (f "b"));
  Alcotest.(check bool) "dadd decimal" true (Instruction.is_decimal (f "dadd"));
  Alcotest.(check bool) "dcbt prefetch" true (f "dcbt").Instruction.prefetch;
  Alcotest.(check bool) "add not memory" false (Instruction.is_memory (f "add"))

let test_update_semantics () =
  let f = Isa_def.find_exn (isa ()) in
  let ldux = f "ldux" in
  Alcotest.(check bool) "update" true ldux.Instruction.update;
  Alcotest.(check bool) "indexed" true ldux.Instruction.indexed;
  (* update loads write both the data register and the base *)
  let writes = Instruction.writes ldux in
  Alcotest.(check int) "gpr writes" 2
    (match List.assoc_opt Instruction.Gpr writes with Some n -> n | None -> 0)

let test_reads_writes () =
  let f = Isa_def.find_exn (isa ()) in
  let stfd = f "stfd" in
  let reads = Instruction.reads stfd in
  Alcotest.(check bool) "store reads data + base" true
    (List.assoc_opt Instruction.Fpr reads = Some 1
     && List.assoc_opt Instruction.Gpr reads = Some 1);
  Alcotest.(check bool) "store writes nothing" true (Instruction.writes stfd = []);
  let cmpw = f "cmpw" in
  Alcotest.(check bool) "cmp writes CR" true
    (List.assoc_opt Instruction.Cr (Instruction.writes cmpw) = Some 1)

let test_make_validation () =
  Alcotest.(check bool) "bad opcode rejected" true
    (try
       ignore (Instruction.make ~mnemonic:"x" ~exec_class:Instruction.Simple_int
                 ~opcode:64 ());
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad width rejected" true
    (try
       ignore (Instruction.make ~mnemonic:"x" ~exec_class:Instruction.Simple_int
                 ~opcode:1 ~width:48 ());
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "xo range depends on form" true
    (try
       ignore (Instruction.make ~mnemonic:"x" ~exec_class:Instruction.Simple_int
                 ~opcode:1 ~form:Instruction.A ~xo:100 ());
       false
     with Invalid_argument _ -> true)

let test_class_string_roundtrip () =
  List.iter
    (fun c ->
      let s = Instruction.exec_class_to_string c in
      Alcotest.(check bool) ("class " ^ s) true
        (Instruction.exec_class_of_string s = Some c))
    [ Instruction.Simple_int; Instruction.Complex_int; Instruction.Mul_int;
      Instruction.Div_int; Instruction.Fp_arith; Instruction.Fp_fma;
      Instruction.Fp_heavy; Instruction.Vec_logic; Instruction.Vec_arith;
      Instruction.Vec_fma; Instruction.Dec_arith; Instruction.Cmp_op;
      Instruction.Branch_op; Instruction.Nop_op; Instruction.Mem_op ]

(* ----- text format -------------------------------------------------------- *)

let test_text_roundtrip () =
  let i = isa () in
  match Isa_def.parse (Isa_def.to_text i) with
  | Error e -> Alcotest.failf "reparse failed: %s" e
  | Ok reparsed ->
    Alcotest.(check string) "name" (Isa_def.name i) (Isa_def.name reparsed);
    Alcotest.(check int) "size" (Isa_def.size i) (Isa_def.size reparsed);
    List.iter2
      (fun (a : Instruction.t) (b : Instruction.t) ->
        if a <> b then
          Alcotest.failf "instruction %s does not round-trip" a.Instruction.mnemonic)
      (Isa_def.instructions i)
      (Isa_def.instructions reparsed)

let test_parse_minimal () =
  let text =
    "isa = tiny\n\n[instruction]\nmnemonic = foo\nclass = simple_int\nopcode = 3\n"
  in
  match Isa_def.parse text with
  | Error e -> Alcotest.failf "parse: %s" e
  | Ok i ->
    Alcotest.(check string) "name" "tiny" (Isa_def.name i);
    Alcotest.(check int) "one instruction" 1 (Isa_def.size i)

let test_parse_errors () =
  let check_err text =
    match Isa_def.parse text with
    | Ok _ -> Alcotest.fail "expected parse error"
    | Error _ -> ()
  in
  check_err "[instruction]\nclass = simple_int\nopcode = 1\n";
  check_err "[instruction]\nmnemonic = a\nclass = nonsense\nopcode = 1\n";
  check_err "mnemonic = orphan\n";
  check_err "[instruction]\nmnemonic = a\nclass = simple_int\nopcode = zz\n"

let test_parse_comments_blank () =
  let text = "# a comment\nisa = c\n\n# another\n" in
  match Isa_def.parse text with
  | Ok i -> Alcotest.(check int) "empty isa" 0 (Isa_def.size i)
  | Error e -> Alcotest.failf "parse: %s" e

let test_definition_text_nonempty () =
  let t = Power_isa.definition_text () in
  Alcotest.(check bool) "has content" true (String.length t > 4000)

(* ----- encoding ----------------------------------------------------------- *)

let test_encode_known () =
  let f = Isa_def.find_exn (isa ()) in
  let add = f "add" in
  let w = Instruction.Encoding.encode add { rt = 3; ra = 4; rb = 5; imm = 0 } in
  Alcotest.(check int) "primary opcode" 31 (Instruction.Encoding.opcode_of_word w);
  Alcotest.(check int) "xo" 266
    (Instruction.Encoding.xo_of_word add.Instruction.form w)

let test_encode_reg_bounds () =
  let f = Isa_def.find_exn (isa ()) in
  Alcotest.(check bool) "r32 rejected" true
    (try
       ignore (Instruction.Encoding.encode (f "add") { rt = 3; ra = 32; rb = 0; imm = 0 });
       false
     with Invalid_argument _ -> true)

let prop_encode_decode_roundtrip =
  let instrs = Array.of_list (Isa_def.instructions (isa ())) in
  QCheck.Test.make ~name:"encode/decode field round-trip" ~count:1000
    QCheck.(quad (int_range 0 31) (int_range 0 31) (int_range 0 31) (int_range 0 8191))
    (fun (rt, ra, rb, imm) ->
      let g = Mp_util.Rng.create (rt + (37 * ra) + (1009 * rb) + imm) in
      let i = instrs.(Mp_util.Rng.int g (Array.length instrs)) in
      let fields =
        { Instruction.Encoding.rt; ra; rb;
          imm = imm land ((1 lsl min i.Instruction.imm_bits 13) - 1) }
      in
      let w = Instruction.Encoding.encode i fields in
      let d = Instruction.Encoding.decode_fields i w in
      let open Instruction.Encoding in
      match i.Instruction.form with
      | Instruction.D | Instruction.DS | Instruction.B_form ->
        d.rt = rt && d.ra = ra && d.imm = fields.imm
      | Instruction.I_form -> d.imm = fields.imm
      | Instruction.X | Instruction.XO | Instruction.VX | Instruction.XX3 ->
        d.rt = rt && d.ra = ra && d.rb = rb
      | Instruction.A -> d.rt = rt && d.ra = ra && d.rb = rb
      | Instruction.MD -> d.rt = rt && d.ra = ra)

let test_disasm_known () =
  let i = isa () in
  let add = Isa_def.find_exn i "add" in
  let w = Instruction.Encoding.encode add { rt = 3; ra = 4; rb = 5; imm = 0 } in
  (match Disasm.decode i w with
   | Some m ->
     Alcotest.(check string) "identified" "add"
       m.Disasm.instruction.Instruction.mnemonic;
     Alcotest.(check string) "listing" "add r3, r4, r5" (Disasm.to_string m)
   | None -> Alcotest.fail "decode failed");
  Alcotest.(check bool) "garbage rejected" true
    (Disasm.decode i 0x00000000l = None)

let prop_disasm_roundtrip =
  let i = isa () in
  let instrs = Array.of_list (Isa_def.instructions i) in
  QCheck.Test.make ~name:"disassembly round-trip over the registry" ~count:500
    QCheck.(triple (int_range 0 31) (int_range 0 31) (int_range 0 31))
    (fun (rt, ra, rb) ->
      let g = Mp_util.Rng.create (rt + (41 * ra) + (997 * rb)) in
      let ins = instrs.(Mp_util.Rng.int g (Array.length instrs)) in
      Disasm.roundtrip i ins { Instruction.Encoding.rt; ra; rb; imm = 1 })

let test_opcode_xo_unique_per_form () =
  (* a disassembler must be able to identify instructions: no two
     instructions may share (form, opcode, xo) — except deliberate
     aliases like bdnz/bc *)
  let seen = Hashtbl.create 64 in
  let aliases = [ "bdnz"; "nop" (* = ori 0,0,0 *) ] in
  List.iter
    (fun (i : Instruction.t) ->
      if not (List.mem i.Instruction.mnemonic aliases) then begin
        let key = (i.Instruction.form, i.Instruction.opcode, i.Instruction.xo) in
        (match Hashtbl.find_opt seen key with
         | Some other ->
           Alcotest.failf "%s and %s share an encoding" i.Instruction.mnemonic other
         | None -> ());
        Hashtbl.add seen key i.Instruction.mnemonic
      end)
    (Isa_def.instructions (isa ()))

let () =
  Alcotest.run "mp_isa"
    [
      ("registry",
       [ Alcotest.test_case "size" `Quick test_load_size;
         Alcotest.test_case "find" `Quick test_find;
         Alcotest.test_case "duplicate" `Quick test_duplicate_rejected;
         Alcotest.test_case "add/remove" `Quick test_add_remove;
         Alcotest.test_case "select loads" `Quick test_select_loads;
         Alcotest.test_case "table3 present" `Quick test_table3_present ]);
      ("semantics",
       [ Alcotest.test_case "predicates" `Quick test_predicates;
         Alcotest.test_case "update forms" `Quick test_update_semantics;
         Alcotest.test_case "reads/writes" `Quick test_reads_writes;
         Alcotest.test_case "make validation" `Quick test_make_validation;
         Alcotest.test_case "class strings" `Quick test_class_string_roundtrip ]);
      ("text format",
       [ Alcotest.test_case "full round-trip" `Quick test_text_roundtrip;
         Alcotest.test_case "minimal" `Quick test_parse_minimal;
         Alcotest.test_case "errors" `Quick test_parse_errors;
         Alcotest.test_case "comments" `Quick test_parse_comments_blank;
         Alcotest.test_case "definition text" `Quick test_definition_text_nonempty ]);
      ("encoding",
       [ Alcotest.test_case "known word" `Quick test_encode_known;
         Alcotest.test_case "register bounds" `Quick test_encode_reg_bounds;
         Alcotest.test_case "unique encodings" `Quick test_opcode_xo_unique_per_form;
         Alcotest.test_case "disassemble" `Quick test_disasm_known;
         QCheck_alcotest.to_alcotest prop_encode_decode_roundtrip;
         QCheck_alcotest.to_alcotest prop_disasm_roundtrip ]);
    ]
