lib/workloads/training.ml: Arch Array Builder Float Hashtbl Instruction Ir List Mp_codegen Mp_dse Mp_isa Mp_sim Mp_uarch Mp_util Passes Printf Synthesizer
