bench/main.mli:
