lib/sim/energy_table.ml: Float Hashtbl List Mp_isa
