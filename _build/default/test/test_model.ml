(* Tests for mp_model: feature extraction, the bottom-up 4-step
   methodology and the top-down baselines. Synthetic measurements with
   a known linear ground truth check exact recovery; real simulated
   measurements check end-to-end accuracy. *)

open Mp_sim
open Mp_uarch

let uarch () = Power7.define ()

let cfg ~cores ~smt = Uarch_def.config ~cores ~smt (uarch ())

(* Build a synthetic measurement with prescribed per-thread rates. *)
let synthetic ~config ~rates ~power =
  let nominal = 100_000.0 in
  let thread rate =
    {
      Measurement.cycles = nominal;
      instrs = nominal;
      dispatched = nominal;
      fxu = rate.(0) *. nominal;
      vsu = rate.(1) *. nominal;
      lsu = rate.(2) *. nominal;
      st = 0.0;
      bru = 0.0;
      l1 = rate.(3) *. nominal;
      l2 = rate.(4) *. nominal;
      l3 = rate.(5) *. nominal;
      mem = rate.(6) *. nominal;
    }
  in
  {
    Measurement.config;
    program = "synthetic";
    threads = Array.map thread rates;
    core_ipc = 1.0;
    power;
    power_trace = [| power |];
  }

(* The synthetic ground truth used below. *)
let true_w = [| 1.5; 2.5; 1.0; 0.5; 2.0; 5.0; 15.0 |]
let true_wi = 30.0
let true_uncore = 6.0
let true_cmp = 1.2
let true_smt = 0.8

let truth_power (config : Uarch_def.config) rates =
  let n = float_of_int config.Uarch_def.cores in
  let dyn =
    Array.fold_left
      (fun acc r ->
        acc +. (Array.fold_left ( +. ) 0.0 (Array.mapi (fun i v -> v *. true_w.(i)) r)))
      0.0 rates
    *. n
  in
  true_wi +. true_uncore +. (true_cmp *. n)
  +. (if config.Uarch_def.smt > 1 then true_smt *. n else 0.0)
  +. dyn

let random_rates rng k =
  Array.init k (fun _ -> Array.init 7 (fun _ -> Mp_util.Rng.float rng 0.5))

let synthetic_dataset () =
  let rng = Mp_util.Rng.create 404 in
  let sample config =
    let rates = random_rates rng config.Uarch_def.smt in
    synthetic ~config ~rates ~power:(truth_power config rates)
  in
  let smt1 = List.init 40 (fun _ -> sample (cfg ~cores:1 ~smt:1)) in
  let smt_on =
    List.init 20 (fun i -> sample (cfg ~cores:1 ~smt:(if i mod 2 = 0 then 2 else 4)))
  in
  let multi =
    List.concat_map
      (fun cores ->
        List.concat_map
          (fun smt -> List.init 6 (fun _ -> sample (cfg ~cores ~smt)))
          [ 1; 2; 4 ])
      [ 1; 2; 4; 6; 8 ]
  in
  (smt1, smt_on, multi)

(* ----- features ------------------------------------------------------------- *)

let test_feature_extraction () =
  let rates = [| [| 0.1; 0.2; 0.3; 0.04; 0.05; 0.06; 0.07 |] |] in
  let m = synthetic ~config:(cfg ~cores:1 ~smt:1) ~rates ~power:1.0 in
  let x = Mp_model.Features.per_thread m in
  Alcotest.(check int) "one thread" 1 (Array.length x);
  Alcotest.(check (float 1e-9)) "fxu rate" 0.1 x.(0).(0);
  Alcotest.(check (float 1e-9)) "mem rate" 0.07 x.(0).(6);
  Alcotest.(check int) "seven features" 7 Mp_model.Features.count

let test_chip_sum_scales_with_cores () =
  let rates = [| [| 0.1; 0.0; 0.0; 0.0; 0.0; 0.0; 0.0 |] |] in
  let m1 = synthetic ~config:(cfg ~cores:1 ~smt:1) ~rates ~power:1.0 in
  let m8 = synthetic ~config:(cfg ~cores:8 ~smt:1) ~rates ~power:1.0 in
  Alcotest.(check (float 1e-9)) "1 core" 0.1 (Mp_model.Features.chip_sum m1).(0);
  Alcotest.(check (float 1e-9)) "8 cores" 0.8 (Mp_model.Features.chip_sum m8).(0)

(* ----- bottom-up recovery ----------------------------------------------------- *)

let check_bu_recovery style =
  let smt1, smt_on, multi = synthetic_dataset () in
  let bu =
    Mp_model.Bottom_up.train ~style ~baseline:true_wi ~smt1 ~smt_on ~multi ()
  in
  (* weights recovered *)
  Array.iteri
    (fun i w ->
      Alcotest.(check (float 0.25))
        (Printf.sprintf "weight %s" Mp_model.Features.names.(i))
        true_w.(i) w)
    bu.Mp_model.Bottom_up.weights;
  Alcotest.(check (float 0.4)) "smt effect" true_smt bu.Mp_model.Bottom_up.smt_effect;
  Alcotest.(check (float 0.3)) "cmp effect" true_cmp bu.Mp_model.Bottom_up.cmp_effect;
  Alcotest.(check (float 0.8)) "uncore" true_uncore bu.Mp_model.Bottom_up.uncore;
  (* predictions on fresh samples *)
  let rng = Mp_util.Rng.create 505 in
  List.iter
    (fun config ->
      let rates = random_rates rng config.Uarch_def.smt in
      let m = synthetic ~config ~rates ~power:(truth_power config rates) in
      Alcotest.(check (float 1.0)) "prediction" m.Measurement.power
        (Mp_model.Bottom_up.predict bu m))
    [ cfg ~cores:3 ~smt:2; cfg ~cores:8 ~smt:4; cfg ~cores:1 ~smt:1 ]

let test_bu_joint_recovery () = check_bu_recovery Mp_model.Bottom_up.Joint

let test_bu_decompose_sums () =
  let smt1, smt_on, multi = synthetic_dataset () in
  let bu = Mp_model.Bottom_up.train ~baseline:true_wi ~smt1 ~smt_on ~multi () in
  let m = List.hd multi in
  let b = Mp_model.Bottom_up.decompose bu m in
  Alcotest.(check (float 1e-9)) "breakdown sums to prediction"
    (Mp_model.Bottom_up.predict bu m)
    (Mp_model.Bottom_up.breakdown_total b);
  Alcotest.(check bool) "all parts non-negative" true
    (b.Mp_model.Bottom_up.workload_independent >= 0.0
     && b.Mp_model.Bottom_up.uncore_part >= -0.5
     && b.Mp_model.Bottom_up.dynamic >= 0.0)

let test_bu_validation_errors () =
  let _smt1, smt_on, multi = synthetic_dataset () in
  let bad f = try ignore (f ()); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "empty step rejected" true
    (bad (fun () ->
         Mp_model.Bottom_up.train ~baseline:0.0 ~smt1:[] ~smt_on ~multi ()));
  Alcotest.(check bool) "wrong config rejected" true
    (bad (fun () ->
         Mp_model.Bottom_up.train ~baseline:0.0 ~smt1:multi ~smt_on ~multi ()))

let test_bu_weights_nonnegative () =
  let smt1, smt_on, multi = synthetic_dataset () in
  let bu = Mp_model.Bottom_up.train ~baseline:true_wi ~smt1 ~smt_on ~multi () in
  Alcotest.(check bool) "non-negative weights" true
    (Array.for_all (fun w -> w >= 0.0) bu.Mp_model.Bottom_up.weights)

(* ----- top-down ----------------------------------------------------------------- *)

let test_td_recovery () =
  let _, _, multi = synthetic_dataset () in
  let td = Mp_model.Top_down.train ~name:"synthetic" multi in
  let rng = Mp_util.Rng.create 606 in
  List.iter
    (fun config ->
      let rates = random_rates rng config.Uarch_def.smt in
      let m = synthetic ~config ~rates ~power:(truth_power config rates) in
      Alcotest.(check (float 1.5)) "td prediction" m.Measurement.power
        (Mp_model.Top_down.predict td m))
    [ cfg ~cores:5 ~smt:2; cfg ~cores:2 ~smt:4 ]

let test_td_needs_samples () =
  Alcotest.(check bool) "too few samples" true
    (try ignore (Mp_model.Top_down.train ~name:"x" []); false
     with Invalid_argument _ -> true)

(* ----- validation metrics --------------------------------------------------------- *)

let test_paae_and_by_config () =
  let rates = [| [| 0.1; 0.0; 0.0; 0.0; 0.0; 0.0; 0.0 |] |] in
  let m1 = synthetic ~config:(cfg ~cores:1 ~smt:1) ~rates ~power:100.0 in
  let m2 = synthetic ~config:(cfg ~cores:2 ~smt:1) ~rates ~power:200.0 in
  let predict (m : Measurement.t) = m.Measurement.power *. 1.1 in
  Alcotest.(check (float 1e-6)) "paae 10%" 10.0
    (Mp_model.Validation.paae ~predict [ m1; m2 ]);
  let by = Mp_model.Validation.by_config ~predict [ m1; m2; m1 ] in
  Alcotest.(check int) "two configs" 2 (List.length by);
  List.iter
    (fun (_, e) -> Alcotest.(check (float 1e-6)) "each 10%" 10.0 e)
    by

(* ----- end-to-end on the simulated machine ------------------------------------------ *)

let test_bu_on_real_measurements () =
  (* a small real training set: unit-stressing and memory loops *)
  let arch = Mp_codegen.Arch.power7 () in
  let machine = Machine.create arch.Mp_codegen.Arch.uarch in
  let mono ?dep ?mem m =
    let ins = Mp_codegen.Arch.find_instruction arch m in
    let synth = Mp_codegen.Synthesizer.create ~name:("bu-" ^ m) arch in
    Mp_codegen.Synthesizer.add_pass synth (Mp_codegen.Passes.skeleton ~size:256);
    Mp_codegen.Synthesizer.add_pass synth (Mp_codegen.Passes.fill_sequence [ ins ]);
    (match mem with
     | Some d -> Mp_codegen.Synthesizer.add_pass synth (Mp_codegen.Passes.memory_model d)
     | None ->
       if Mp_isa.Instruction.is_memory ins then
         Mp_codegen.Synthesizer.add_pass synth
           (Mp_codegen.Passes.memory_model [ (Cache_geometry.L1, 1.0) ]));
    Mp_codegen.Synthesizer.add_pass synth
      (Mp_codegen.Passes.dependency
         (Option.value ~default:Mp_codegen.Builder.No_deps dep));
    Mp_codegen.Synthesizer.synthesize ~seed:31 synth
  in
  let programs =
    [ mono "add"; mono "subf"; mono "mulld"; mono "xvmaddadp"; mono "fadd";
      mono "lbz"; mono "std";
      mono ~mem:[ (Cache_geometry.L2, 1.0) ] "ld";
      mono ~mem:[ (Cache_geometry.L3, 1.0) ] "ld";
      mono ~mem:[ (Cache_geometry.MEM, 1.0) ] "ld";
      mono ~dep:(Mp_codegen.Builder.Fixed 1) "fadd";
      mono ~dep:(Mp_codegen.Builder.Fixed 2) "mulld" ]
  in
  let run config p = Machine.run machine config p in
  let smt1 = List.map (run (cfg ~cores:1 ~smt:1)) programs in
  let smt_on =
    List.map (run (cfg ~cores:1 ~smt:2)) programs
    @ List.map (run (cfg ~cores:1 ~smt:4)) programs
  in
  let multi =
    List.concat_map
      (fun cores ->
        List.map (run (cfg ~cores ~smt:1)) programs
        @ List.map (run (cfg ~cores ~smt:4)) programs)
      [ 1; 2; 4; 8 ]
  in
  let bu =
    Mp_model.Bottom_up.train ~baseline:(Machine.baseline_reading machine)
      ~smt1 ~smt_on ~multi ()
  in
  let predict = Mp_model.Bottom_up.predict bu in
  (* in-sample accuracy must be a few percent *)
  Alcotest.(check bool) "training PAAE < 5%" true
    (Mp_model.Validation.paae ~predict multi < 5.0);
  (* the memory weight hierarchy must be recovered: deeper = costlier *)
  let w = bu.Mp_model.Bottom_up.weights in
  Alcotest.(check bool) "L2 < L3 < MEM weights" true (w.(4) < w.(5) && w.(5) < w.(6));
  (* the Isci-style area heuristic calibrates on the same data, less
     accurately than the fully-trained bottom-up model *)
  let uarch = arch.Mp_codegen.Arch.uarch in
  let area = Mp_model.Area_heuristic.train ~uarch (smt1 @ smt_on @ multi) in
  let area_predict = Mp_model.Area_heuristic.predict ~uarch area in
  let area_paae = Mp_model.Validation.paae ~predict:area_predict multi in
  Alcotest.(check bool)
    (Printf.sprintf "area heuristic calibrates (%.1f%%)" area_paae)
    true (area_paae < 20.0);
  Alcotest.(check bool) "bottom-up at least as accurate" true
    (Mp_model.Validation.paae ~predict multi <= area_paae +. 0.5)

let () =
  Alcotest.run "mp_model"
    [
      ("features",
       [ Alcotest.test_case "extraction" `Quick test_feature_extraction;
         Alcotest.test_case "chip sum" `Quick test_chip_sum_scales_with_cores ]);
      ("bottom-up",
       [ Alcotest.test_case "joint recovery" `Quick test_bu_joint_recovery;
         Alcotest.test_case "decompose sums" `Quick test_bu_decompose_sums;
         Alcotest.test_case "validation" `Quick test_bu_validation_errors;
         Alcotest.test_case "non-negative" `Quick test_bu_weights_nonnegative ]);
      ("top-down",
       [ Alcotest.test_case "recovery" `Quick test_td_recovery;
         Alcotest.test_case "needs samples" `Quick test_td_needs_samples ]);
      ("validation",
       [ Alcotest.test_case "paae/by-config" `Quick test_paae_and_by_config ]);
      ("end-to-end",
       [ Alcotest.test_case "real measurements" `Slow test_bu_on_real_measurements ]);
    ]
