(** Cycle-stepped scoreboard model of one core running one deployed
    micro-benchmark copy per hardware thread.

    The model honours the properties micro-benchmarks are designed to
    control: dispatch width (shared across SMT threads, round-robin),
    per-pipe occupancy and multiplicity, register dependency latencies,
    per-access memory latency from the cache simulator, a per-thread
    in-flight window, and a 2-bit branch predictor with misprediction
    bubbles. It also records the activity the hidden power model needs
    (per-opcode issue counts, pipe opcode-switch events). *)

type opmap
(** Dense opcode-id interning shared by a set of runs. *)

val opmap_create : unit -> opmap
val opmap_size : opmap -> int
val opmap_name : opmap -> int -> string

val intern : opmap -> string -> int
(** Id of a mnemonic, interning it if new. Domain-safe (the table is
    locked), but id assignment then depends on arrival order: callers
    that need reproducible ids must intern deterministically before
    fanning work out (see {!Machine.run_batch}). *)

type dprog
(** A program deployed for one hardware thread: operands resolved to
    dense register ids and memory instructions bound to concrete
    address streams. *)

val deploy :
  uarch:Mp_uarch.Uarch_def.t ->
  opmap:opmap ->
  streams:(int -> int array) ->
  Mp_codegen.Ir.t ->
  dprog
(** [streams idx] supplies the cyclic address stream for the memory
    instruction at body index [idx] (raises if consulted for an index
    the caller did not prepare). An implicit loop-closing [bdnz] is
    appended to the body. *)

type activity = {
  measured_cycles : int;
  threads : Measurement.counters array;
  op_issues : int array;        (** per opmap id, all threads *)
  level_loads : int array;      (** demand loads per level L1,L2,L3,MEM *)
  switch_events : int;          (** dispatch-bus opcode transitions (total) *)
  transitions : (int * int * int) list;
      (** per ordered opcode pair (prev id, next id, count) — the
          order-dependent switching activity on the dispatch bus *)
  daf : float;                  (** mean data-activity factor of the programs *)
  prefetches : int;
}

val run :
  uarch:Mp_uarch.Uarch_def.t ->
  opmap:opmap ->
  ?mem_latency:int ->
  ?warmup:int ->
  ?measure:int ->
  ?period:bool ->
  dprog array ->
  activity
(** Run one copy per thread for [warmup] loop iterations (default 1)
    followed by [measure] iterations (default 2) during which counters
    accumulate. [mem_latency] overrides the definition's base main-
    memory latency (used for chip-level bandwidth contention).

    [period] enables exact steady-state period skipping (default: on
    unless the [MP_PERIOD] environment variable is set to [off]/[0]/
    [false]/[no]). When the full microarchitectural state repeats at an
    iteration boundary inside the measured window, the remaining whole
    periods are credited by exact counter-delta scaling instead of
    being simulated; the returned {!activity} is bit-identical to a
    dense run either way, only wall-clock time differs. *)

type period_delta = {
  pd_period_iters : int;  (** loop iterations per period (every thread) *)
  pd_cycles : int;        (** cycles per period *)
  pd_min_total : int;
      (** smallest warmup+measure total the delta extends to: the
          largest per-thread iteration count at the fingerprint match,
          plus one (below it the run would have stopped before
          reaching the matched state) *)
  pd_counters : int array array;
      (** per thread: instrs, dispatched, fxu, lsu, vsu, bru, st, l1,
          l2, l3, memc — {!Measurement.counters} minus cycles, in
          order *)
  pd_op_issues : (int * int) list;  (** (opmap id, delta), sparse *)
  pd_level_loads : int array;
  pd_switch : int;
  pd_transitions : (int * int * int) list;
      (** (prev id, next id, delta) *)
  pd_prefetches : int;
}
(** Exactly one fingerprinted period's worth of every measured
    counter, captured before the period skip credits it. Adding [k]
    times this delta to a run's {!activity} reproduces the activity of
    a run with [k * pd_period_iters] more (or, negated, fewer)
    measured iterations, bit-for-bit — the closed-form step behind
    {!Replay}, which also documents the validity conditions. Only
    captured when every thread advances the same number of iterations
    per period. *)

val run_ex :
  uarch:Mp_uarch.Uarch_def.t ->
  opmap:opmap ->
  ?mem_latency:int ->
  ?warmup:int ->
  ?measure:int ->
  ?period:bool ->
  dprog array ->
  activity * period_delta option
(** {!run}, additionally returning the per-period counter delta when a
    steady-state period was fingerprinted and skipped ([None] for
    dense runs, aperiodic programs, windows too short to skip, or
    unequal per-thread iteration rates). *)

val period_hits : unit -> int
(** Process-wide count of runs in which a steady-state period was
    detected and skipped. Telemetry only — never part of {!activity}. *)

val cycles_skipped : unit -> int
(** Process-wide total of simulated cycles elided by period skipping. *)
