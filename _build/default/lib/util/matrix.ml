type t = { m : int; n : int; data : float array }

let create m n =
  if m <= 0 || n <= 0 then invalid_arg "Matrix.create: non-positive dims";
  { m; n; data = Array.make (m * n) 0.0 }

let rows a = a.m
let cols a = a.n
let get a i j = a.data.((i * a.n) + j)
let set a i j v = a.data.((i * a.n) + j) <- v

let of_arrays rows_ =
  let m = Array.length rows_ in
  if m = 0 then invalid_arg "Matrix.of_arrays: empty";
  let n = Array.length rows_.(0) in
  let a = create m n in
  Array.iteri
    (fun i row ->
      if Array.length row <> n then invalid_arg "Matrix.of_arrays: ragged";
      Array.iteri (fun j v -> set a i j v) row)
    rows_;
  a

let identity n =
  let a = create n n in
  for i = 0 to n - 1 do
    set a i i 1.0
  done;
  a

let transpose a =
  let t = create a.n a.m in
  for i = 0 to a.m - 1 do
    for j = 0 to a.n - 1 do
      set t j i (get a i j)
    done
  done;
  t

let mul a b =
  if a.n <> b.m then invalid_arg "Matrix.mul: dimension mismatch";
  let c = create a.m b.n in
  for i = 0 to a.m - 1 do
    for k = 0 to a.n - 1 do
      let aik = get a i k in
      if aik <> 0.0 then
        for j = 0 to b.n - 1 do
          set c i j (get c i j +. (aik *. get b k j))
        done
    done
  done;
  c

let mul_vec a v =
  if a.n <> Array.length v then invalid_arg "Matrix.mul_vec: dim mismatch";
  Array.init a.m (fun i ->
      let acc = ref 0.0 in
      for j = 0 to a.n - 1 do
        acc := !acc +. (get a i j *. v.(j))
      done;
      !acc)

let add a b =
  if a.m <> b.m || a.n <> b.n then invalid_arg "Matrix.add: dim mismatch";
  { a with data = Array.mapi (fun i x -> x +. b.data.(i)) a.data }

let scale k a = { a with data = Array.map (fun x -> k *. x) a.data }

let solve a b =
  if a.m <> a.n then invalid_arg "Matrix.solve: not square";
  if a.m <> Array.length b then invalid_arg "Matrix.solve: rhs mismatch";
  let n = a.n in
  let aug = Array.init n (fun i ->
      Array.init (n + 1) (fun j -> if j = n then b.(i) else get a i j))
  in
  for col = 0 to n - 1 do
    (* Partial pivoting: move the largest remaining entry to the diagonal. *)
    let pivot = ref col in
    for r = col + 1 to n - 1 do
      if Float.abs aug.(r).(col) > Float.abs aug.(!pivot).(col) then pivot := r
    done;
    if Float.abs aug.(!pivot).(col) < 1e-12 then failwith "Matrix.solve: singular";
    if !pivot <> col then begin
      let tmp = aug.(col) in
      aug.(col) <- aug.(!pivot);
      aug.(!pivot) <- tmp
    end;
    for r = col + 1 to n - 1 do
      let f = aug.(r).(col) /. aug.(col).(col) in
      if f <> 0.0 then
        for j = col to n do
          aug.(r).(j) <- aug.(r).(j) -. (f *. aug.(col).(j))
        done
    done
  done;
  let x = Array.make n 0.0 in
  for i = n - 1 downto 0 do
    let acc = ref aug.(i).(n) in
    for j = i + 1 to n - 1 do
      acc := !acc -. (aug.(i).(j) *. x.(j))
    done;
    x.(i) <- !acc /. aug.(i).(i)
  done;
  x

let ols ?(ridge = 1e-9) x y =
  if x.m <> Array.length y then invalid_arg "Matrix.ols: rhs mismatch";
  let xt = transpose x in
  let xtx = mul xt x in
  for i = 0 to xtx.m - 1 do
    set xtx i i (get xtx i i +. ridge)
  done;
  let xty = mul_vec xt y in
  solve xtx xty

let nnls ?(iterations = 2000) x y =
  let n = x.n in
  let xt = transpose x in
  let xtx = mul xt x in
  let xty = mul_vec xt y in
  let beta = Array.make n 0.0 in
  (* Coordinate descent on the normal equations, clamping at zero.  The
     objective is convex so the sweep order does not affect the fixpoint. *)
  for _ = 1 to iterations do
    for j = 0 to n - 1 do
      let qjj = get xtx j j in
      if qjj > 1e-12 then begin
        let acc = ref xty.(j) in
        for k = 0 to n - 1 do
          if k <> j then acc := !acc -. (get xtx j k *. beta.(k))
        done;
        beta.(j) <- Float.max 0.0 (!acc /. qjj)
      end
    done
  done;
  beta

let pp ppf a =
  for i = 0 to a.m - 1 do
    Format.fprintf ppf "[";
    for j = 0 to a.n - 1 do
      Format.fprintf ppf " %8.4f" (get a i j)
    done;
    Format.fprintf ppf " ]@."
  done
