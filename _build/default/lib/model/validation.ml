open Mp_sim

let series ~predict samples =
  let actual =
    Array.of_list (List.map (fun (m : Measurement.t) -> m.Measurement.power) samples)
  in
  let predicted = Array.of_list (List.map predict samples) in
  (actual, predicted)

let paae ~predict samples =
  let actual, predicted = series ~predict samples in
  Mp_util.Stats.paae ~actual ~predicted

let max_error ~predict samples =
  let actual, predicted = series ~predict samples in
  Mp_util.Stats.max_abs_pct_error ~actual ~predicted

let by_config ~predict samples =
  let configs =
    List.sort_uniq
      (fun (a : Mp_uarch.Uarch_def.config) b ->
        compare
          (a.Mp_uarch.Uarch_def.cores, a.Mp_uarch.Uarch_def.smt)
          (b.Mp_uarch.Uarch_def.cores, b.Mp_uarch.Uarch_def.smt))
      (List.map (fun (m : Measurement.t) -> m.Measurement.config) samples)
  in
  List.map
    (fun c ->
      let subset =
        List.filter (fun (m : Measurement.t) -> m.Measurement.config = c) samples
      in
      (c, paae ~predict subset))
    configs
