lib/model/area_heuristic.mli: Format Mp_sim Mp_uarch
