open Mp_sim
open Mp_uarch

type t = {
  alpha : float;
  mem_coef : float;
  cores_coef : float;
  smt_coef : float;
  intercept : float;
}

let unit_area uarch u =
  match List.assoc_opt u uarch.Uarch_def.unit_area_mm2 with
  | Some a -> a
  | None -> 0.0

(* Σ_units area × utilization, per chip. Utilization is the unit's
   event rate divided by its pipe multiplicity (a 0..~1 activity). *)
let area_activity ~uarch (m : Measurement.t) =
  let pipes u =
    let n =
      match u with
      | Pipe.FXU -> Uarch_def.pipe_count uarch Pipe.Fxu
      | Pipe.LSU -> Uarch_def.pipe_count uarch Pipe.Lsu
      | Pipe.VSU -> Uarch_def.pipe_count uarch Pipe.Vsu
      | Pipe.BRU -> Uarch_def.pipe_count uarch Pipe.Bru
    in
    float_of_int (max 1 n)
  in
  let core =
    Array.fold_left
      (fun acc c ->
        let r v = Measurement.rate c v in
        acc
        +. (unit_area uarch Pipe.FXU *. r c.Measurement.fxu /. pipes Pipe.FXU)
        +. (unit_area uarch Pipe.LSU
            *. r (c.Measurement.lsu +. c.Measurement.st)
            /. pipes Pipe.LSU)
        +. (unit_area uarch Pipe.VSU *. r c.Measurement.vsu /. pipes Pipe.VSU)
        +. (unit_area uarch Pipe.BRU *. r c.Measurement.bru /. pipes Pipe.BRU))
      0.0 m.Measurement.threads
  in
  core *. float_of_int m.Measurement.config.Uarch_def.cores

let mem_activity (m : Measurement.t) =
  let core =
    Array.fold_left
      (fun acc c ->
        Measurement.rate c (c.Measurement.l2 +. c.Measurement.l3)
        +. (4.0 *. Measurement.rate c c.Measurement.mem)
        +. acc)
      0.0 m.Measurement.threads
  in
  core *. float_of_int m.Measurement.config.Uarch_def.cores

let row ~uarch (m : Measurement.t) =
  [| area_activity ~uarch m;
     mem_activity m;
     float_of_int m.Measurement.config.Uarch_def.cores;
     (if m.Measurement.config.Uarch_def.smt > 1 then 1.0 else 0.0);
     1.0 |]

let train ~uarch samples =
  if List.length samples < 6 then
    invalid_arg "Area_heuristic.train: not enough samples";
  let x = Array.of_list (List.map (row ~uarch) samples) in
  let y =
    Array.of_list
      (List.map (fun (m : Measurement.t) -> m.Measurement.power) samples)
  in
  let beta = Mp_util.Matrix.ols ~ridge:1e-6 (Mp_util.Matrix.of_arrays x) y in
  { alpha = beta.(0); mem_coef = beta.(1); cores_coef = beta.(2);
    smt_coef = beta.(3); intercept = beta.(4) }

let predict ~uarch t m =
  let r = row ~uarch m in
  (t.alpha *. r.(0)) +. (t.mem_coef *. r.(1)) +. (t.cores_coef *. r.(2))
  +. (t.smt_coef *. r.(3)) +. t.intercept

let pp ppf t =
  Format.fprintf ppf
    "area-heuristic model: alpha %.4f/mm², mem %.3f, cores %.3f, smt %.3f, \
     intercept %.2f"
    t.alpha t.mem_coef t.cores_coef t.smt_coef t.intercept
