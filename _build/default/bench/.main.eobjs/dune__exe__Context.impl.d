bench/context.ml: Arch Epi List Machine Measurement Microprobe Power_model Printf String Uarch_def Unix Workloads
