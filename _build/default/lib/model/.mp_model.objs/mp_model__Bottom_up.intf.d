lib/model/bottom_up.mli: Format Mp_sim
