(** The architecture handle a generation policy is bound to: an ISA
    registry plus a micro-architecture definition (paper Figure 2,
    [MP.arch.get_architecture "POWER7"]). *)

module Pipe = Mp_uarch.Pipe
(** Re-export for callers of {!stressing}. *)

type t = { isa : Mp_isa.Isa_def.t; uarch : Mp_uarch.Uarch_def.t }

val power7 : unit -> t
(** Fresh POWER7 handle. *)

val find_instruction : t -> string -> Mp_isa.Instruction.t
(** Raises [Failure] with the mnemonic when absent. *)

val select : t -> (Mp_isa.Instruction.t -> bool) -> Mp_isa.Instruction.t list

val stressing : t -> Pipe.unit_kind -> Mp_isa.Instruction.t list
(** Instructions that stress a functional unit (Figure 2 lines 14–16). *)

val pp : Format.formatter -> t -> unit
