(** The automatic bootstrap process (paper Section 2.1.2): for every
    instruction of the ISA, generate two micro-benchmarks — an endless
    loop of instances chained by dependencies, and the same loop with
    no dependencies — execute both, and derive the instruction's
    latency, throughput, stressed units and energy-per-instruction from
    the performance counters and the power sensor alone. Inputs are
    randomised to minimise data-switching effects, enabling fair
    comparison between instructions (Tiwari et al.). *)

type props = {
  mnemonic : string;
  derived_latency : float;   (** 1 / dependent-chain IPC *)
  throughput : float;        (** thread IPC with no dependencies *)
  core_ipc : float;          (** core IPC with no dependencies *)
  epi : float;               (** dynamic energy per instruction (sensor units) *)
  events_per_instr : (Mp_uarch.Pipe.unit_kind * float) list;
      (** unit-counter events per completed instruction *)
  units : Mp_uarch.Pipe.unit_kind list;
      (** units whose event rate crosses the stress threshold *)
}

val instruction_props :
  machine:Mp_sim.Machine.t ->
  arch:Mp_codegen.Arch.t ->
  ?config:Mp_uarch.Uarch_def.config ->
  ?size:int ->
  ?zero_data:bool ->
  Mp_isa.Instruction.t ->
  props
(** Bootstrap one instruction (default configuration: 8 cores SMT1, as
    in the paper's Section 5; default loop [size] 1024). [zero_data]
    initialises registers and immediates to zero instead of random —
    for studying data-dependent energy. *)

val run :
  machine:Mp_sim.Machine.t ->
  arch:Mp_codegen.Arch.t ->
  ?config:Mp_uarch.Uarch_def.config ->
  ?size:int ->
  ?instructions:Mp_isa.Instruction.t list ->
  ?pool:Mp_util.Parallel.t ->
  unit ->
  props list
(** Bootstrap the whole ISA (or a subset): every non-privileged,
    non-branch, non-prefetch instruction. The dep/nodep pairs of the
    whole campaign are evaluated as {e one}
    {!Mp_sim.Machine.run_batch} over [pool] (default: the global
    pool), in the order the serial loop would run them — the returned
    properties are bit-identical to calling {!instruction_props} per
    instruction. *)
