(** Set-associative cache geometry and address-field arithmetic
    (paper Figure 3b: the set field of each level of the hierarchy). *)

type level = L1 | L2 | L3 | MEM

type t = {
  level : level;
  size_bytes : int;
  associativity : int;
  line_bytes : int;
  latency_cycles : int;  (** load-to-use latency on a hit at this level *)
}

val make :
  level:level -> size_bytes:int -> associativity:int -> line_bytes:int ->
  latency_cycles:int -> t
(** Validates that sizes are powers of two and divide evenly. *)

val sets : t -> int
(** Number of sets: size / (line * associativity). *)

val offset_bits : t -> int
val set_bits : t -> int

val set_index : t -> int -> int
(** [set_index g addr] is the set the byte address maps to. *)

val line_address : t -> int -> int
(** Address truncated to its cache-line base. *)

val address_with_set : t -> set:int -> tag:int -> int
(** Build a line-aligned address whose set index is [set] and whose
    remaining high bits are [tag]. Inverse of {!set_index} /
    tag extraction. *)

val tag : t -> int -> int

val level_to_string : level -> string
val level_of_string : string -> level option
val level_compare : level -> level -> int
val all_levels : level list
(** [L1; L2; L3; MEM] in hierarchy order. *)

val pp : Format.formatter -> t -> unit
