lib/epi/taxonomy.ml: Bootstrap Float Hashtbl List Mp_isa Mp_uarch Option Pipe String
