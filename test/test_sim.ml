(* Tests for mp_sim: the cache simulator, the scoreboard core model and
   the measurement harness. Steady-state IPCs are checked against the
   values the POWER7 definition was calibrated to (paper Table 3). *)

open Mp_codegen
open Mp_sim

let arch () = Arch.power7 ()

let l1 = [ (Mp_uarch.Cache_geometry.L1, 1.0) ]

let mono a ?(size = 512) ?(dep = Builder.No_deps) ?mem_mix mnemonic =
  let ins = Arch.find_instruction a mnemonic in
  let synth = Synthesizer.create ~name:("t-" ^ mnemonic) a in
  Synthesizer.add_pass synth (Passes.skeleton ~size);
  Synthesizer.add_pass synth (Passes.fill_sequence [ ins ]);
  if Mp_isa.Instruction.is_memory ins then
    Synthesizer.add_pass synth
      (Passes.memory_model (Option.value ~default:l1 mem_mix));
  Synthesizer.add_pass synth (Passes.dependency dep);
  Synthesizer.synthesize ~seed:77 synth

let config a ~cores ~smt = Mp_uarch.Uarch_def.config ~cores ~smt a.Arch.uarch

(* ----- cache simulator ------------------------------------------------------ *)

let test_cache_hit_after_fill () =
  let a = arch () in
  let c = Cache_sim.create a.Arch.uarch in
  let addr = 0x10000 in
  Alcotest.(check bool) "first access misses to MEM" true
    (Cache_sim.access c ~addr ~store:false = Mp_uarch.Cache_geometry.MEM);
  Alcotest.(check bool) "second access hits L1" true
    (Cache_sim.access c ~addr ~store:false = Mp_uarch.Cache_geometry.L1)

let test_cache_lru_eviction () =
  let a = arch () in
  let u = a.Arch.uarch in
  let c = Cache_sim.create u in
  let l1g = Mp_uarch.Uarch_def.cache u Mp_uarch.Cache_geometry.L1 in
  let ways = l1g.Mp_uarch.Cache_geometry.associativity in
  (* fill one L1 set beyond capacity; lines land in the same L2 set's
     siblings so they stay L2-resident *)
  let addr i = Mp_uarch.Cache_geometry.address_with_set l1g ~set:3 ~tag:i in
  for i = 0 to ways do
    ignore (Cache_sim.access c ~addr:(addr i) ~store:false)
  done;
  (* line 0 was least recently used: it must have been evicted from L1 *)
  Alcotest.(check bool) "evicted to L2" true
    (Cache_sim.access c ~addr:(addr 0) ~store:false <> Mp_uarch.Cache_geometry.L1)

let test_cache_counters () =
  let a = arch () in
  let c = Cache_sim.create a.Arch.uarch in
  ignore (Cache_sim.access c ~addr:0 ~store:false);
  ignore (Cache_sim.access c ~addr:0 ~store:false);
  Alcotest.(check int) "one MEM source" 1 (Cache_sim.hits c Mp_uarch.Cache_geometry.MEM);
  Alcotest.(check int) "one L1 hit" 1 (Cache_sim.hits c Mp_uarch.Cache_geometry.L1);
  Cache_sim.reset_stats c;
  Alcotest.(check int) "reset" 0 (Cache_sim.hits c Mp_uarch.Cache_geometry.L1);
  Alcotest.(check bool) "contents survive reset" true
    (Cache_sim.access c ~addr:0 ~store:false = Mp_uarch.Cache_geometry.L1)

let test_prefetcher_detects_streams () =
  let a = arch () in
  let c = Cache_sim.create a.Arch.uarch in
  for i = 0 to 15 do
    ignore (Cache_sim.access c ~addr:(i * 128) ~store:false)
  done;
  Alcotest.(check bool) "prefetches issued on sequential walk" true
    (Cache_sim.prefetches_issued c > 0)

(* ----- core model: steady-state IPC ---------------------------------------- *)

let run_ipc a p ~smt =
  let machine = Machine.create a.Arch.uarch in
  (Machine.run machine (config a ~cores:8 ~smt) p).Measurement.core_ipc

let check_ipc name expected mnemonic =
  let a = arch () in
  let ipc = run_ipc a (mono a mnemonic) ~smt:1 in
  Alcotest.(check (float 0.06)) name expected ipc

let test_ipc_simple_int () = check_ipc "add 3.5" 3.53 "add"
let test_ipc_fxu () = check_ipc "subf 2.0" 2.0 "subf"
let test_ipc_mul () = check_ipc "mulldo 1.4" 1.4 "mulldo"
let test_ipc_load () = check_ipc "lbz 1.68" 1.68 "lbz"
let test_ipc_load_update () = check_ipc "ldux 1.0" 1.0 "ldux"
let test_ipc_vsu () = check_ipc "xvmaddadp 2.0" 2.0 "xvmaddadp"
let test_ipc_vec_store () = check_ipc "stxvw4x 0.48" 0.48 "stxvw4x"

let test_dependency_chain_limits_ipc () =
  let a = arch () in
  let free = run_ipc a (mono a "fadd") ~smt:1 in
  let chained = run_ipc a (mono a ~dep:(Builder.Fixed 1) "fadd") ~smt:1 in
  Alcotest.(check bool) "chain is slower" true (chained < free /. 2.0);
  (* fadd latency is 6: a single chain sustains ~1/6 IPC *)
  Alcotest.(check (float 0.05)) "1/latency" (1.0 /. 6.0) chained

let test_dependency_distance_parallelism () =
  let a = arch () in
  let d2 = run_ipc a (mono a ~dep:(Builder.Fixed 2) "fadd") ~smt:1 in
  let d4 = run_ipc a (mono a ~dep:(Builder.Fixed 4) "fadd") ~smt:1 in
  Alcotest.(check bool) "more chains, more ILP" true (d4 > d2 +. 0.1)

let test_smt_increases_core_throughput () =
  let a = arch () in
  let p = mono a "subf" in
  let smt1 = run_ipc a p ~smt:1 in
  let smt2 = run_ipc a p ~smt:2 in
  (* one thread of subf already saturates both FXU pipes: SMT must not
     reduce throughput, and per-thread share must drop *)
  Alcotest.(check bool) "core throughput preserved" true (smt2 >= smt1 -. 0.1)

let test_smt_helps_latency_bound () =
  let a = arch () in
  let p = mono a ~dep:(Builder.Fixed 1) "fadd" in
  let smt1 = run_ipc a p ~smt:1 in
  let smt4 = run_ipc a p ~smt:4 in
  (* chains from different threads overlap: core IPC scales *)
  Alcotest.(check bool) "smt hides chain latency" true (smt4 > 3.0 *. smt1)

let test_memory_latency_lowers_ipc () =
  let a = arch () in
  let l1_ipc = run_ipc a (mono a ~dep:(Builder.Fixed 1) "ld") ~smt:1 in
  let mem_ipc =
    run_ipc a
      (mono a ~dep:(Builder.Fixed 1)
         ~mem_mix:[ (Mp_uarch.Cache_geometry.MEM, 1.0) ] "ld")
      ~smt:1
  in
  Alcotest.(check bool) "pointer chase to MEM is much slower" true
    (mem_ipc < l1_ipc /. 10.0)

(* ----- measurements ----------------------------------------------------------- *)

let test_counters_consistent () =
  let a = arch () in
  let machine = Machine.create a.Arch.uarch in
  let p = mono a "add" in
  let m = Machine.run machine (config a ~cores:1 ~smt:1) p in
  let c = Measurement.core_counters m in
  (* [Machine.default_measure] measured iterations of a 512-instruction
     body + bdnz; the window boundaries land at dispatch crossings, so
     the issue count can be off by up to one in-flight window on either
     side *)
  let iters = float_of_int Machine.default_measure in
  Alcotest.(check bool) "instructions" true
    (Float.abs (c.Measurement.instrs -. (iters *. 513.0)) <= 64.0);
  (* simple int ops issue to FXU and LSU pipes; together they cover all
     payload instructions *)
  let units = c.Measurement.fxu +. c.Measurement.lsu in
  Alcotest.(check bool) "unit events" true
    (Float.abs (units -. (iters *. 512.0)) <= 64.0);
  Alcotest.(check bool) "branches" true
    (c.Measurement.bru >= iters && c.Measurement.bru <= iters +. 1.0)

let test_memory_counters () =
  let a = arch () in
  let machine = Machine.create a.Arch.uarch in
  let p =
    mono a
      ~mem_mix:[ (Mp_uarch.Cache_geometry.L1, 0.5); (Mp_uarch.Cache_geometry.L2, 0.5) ]
      "lbz"
  in
  let m = Machine.run machine (config a ~cores:1 ~smt:1) p in
  let c = Measurement.core_counters m in
  let total = c.Measurement.l1 +. c.Measurement.l2 +. c.Measurement.l3 +. c.Measurement.mem in
  Alcotest.(check bool) "loads counted" true (total > 1000.0);
  Alcotest.(check (float 0.06)) "half L1" 0.5 (c.Measurement.l1 /. total);
  Alcotest.(check (float 0.06)) "half L2" 0.5 (c.Measurement.l2 /. total)

let test_pmc_read_interface () =
  let a = arch () in
  let machine = Machine.create a.Arch.uarch in
  let m = Machine.run machine (config a ~cores:1 ~smt:1) (mono a "add") in
  let c = Measurement.core_counters m in
  Alcotest.(check (float 1e-9)) "PM_INST_CMPL" c.Measurement.instrs
    (Measurement.read c Mp_uarch.Pmc.PM_INST_CMPL);
  Alcotest.(check (float 1e-9)) "PM_RUN_CYC" c.Measurement.cycles
    (Measurement.read c Mp_uarch.Pmc.PM_RUN_CYC)

let test_measurement_determinism () =
  let a = arch () in
  let machine = Machine.create ~seed:5 a.Arch.uarch in
  let p = mono a "mulld" in
  let m1 = Machine.run machine (config a ~cores:2 ~smt:2) p in
  let m2 = Machine.run machine (config a ~cores:2 ~smt:2) p in
  Alcotest.(check (float 1e-9)) "same power" m1.Measurement.power m2.Measurement.power;
  Alcotest.(check (float 1e-9)) "same ipc" m1.Measurement.core_ipc m2.Measurement.core_ipc

let test_power_orderings () =
  let a = arch () in
  let machine = Machine.create a.Arch.uarch in
  let cfg = config a ~cores:8 ~smt:1 in
  let idle = Machine.idle_reading machine cfg in
  let loaded = (Machine.run machine cfg (mono a "xvmaddadp")).Measurement.power in
  Alcotest.(check bool) "loaded > idle" true (loaded > idle +. 1.0);
  let idle1 = Machine.idle_reading machine (config a ~cores:1 ~smt:1) in
  Alcotest.(check bool) "idle grows with cores" true (idle > idle1);
  Alcotest.(check bool) "baseline below idle" true
    (Machine.baseline_reading machine < idle1)

let test_power_scales_with_cores () =
  let a = arch () in
  let machine = Machine.create a.Arch.uarch in
  let p = mono a "add" in
  let p1 = (Machine.run machine (config a ~cores:1 ~smt:1) p).Measurement.power in
  let p8 = (Machine.run machine (config a ~cores:8 ~smt:1) p).Measurement.power in
  Alcotest.(check bool) "8 cores draw much more" true (p8 > p1 +. 15.0)

let test_smt_power_overhead () =
  let a = arch () in
  let machine = Machine.create a.Arch.uarch in
  (* a latency-bound loop leaves pipes idle: SMT2 adds both activity
     and the SMT-logic overhead *)
  let p = mono a ~dep:(Builder.Fixed 1) "mulld" in
  let p1 = (Machine.run machine (config a ~cores:4 ~smt:1) p).Measurement.power in
  let p2 = (Machine.run machine (config a ~cores:4 ~smt:2) p).Measurement.power in
  Alcotest.(check bool) "smt2 draws more" true (p2 > p1)

let test_zero_data_reduces_power () =
  let a = arch () in
  let machine = Machine.create a.Arch.uarch in
  let build policy =
    let synth = Synthesizer.create ~name:"dataswitch" a in
    Synthesizer.add_pass synth (Passes.skeleton ~size:512);
    Synthesizer.add_pass synth (Passes.fill_sequence [ Arch.find_instruction a "xvmaddadp" ]);
    Synthesizer.add_pass synth (Passes.dependency Builder.No_deps);
    Synthesizer.add_pass synth (Passes.init_registers policy);
    Synthesizer.add_pass synth (Passes.init_immediates policy);
    Synthesizer.synthesize ~seed:21 synth
  in
  let cfg = config a ~cores:8 ~smt:1 in
  let random = (Machine.run machine cfg (build Builder.Random_values)).Measurement.power in
  let zero = (Machine.run machine cfg (build (Builder.Constant 0L))).Measurement.power in
  Alcotest.(check bool) "zero data draws less" true (zero < random -. 1.0)

let test_bandwidth_contention () =
  let a = arch () in
  let machine = Machine.create a.Arch.uarch in
  let p = mono a ~mem_mix:[ (Mp_uarch.Cache_geometry.MEM, 1.0) ] "ld" in
  let one = (Machine.run machine (config a ~cores:1 ~smt:1) p).Measurement.core_ipc in
  let eight = (Machine.run machine (config a ~cores:8 ~smt:1) p).Measurement.core_ipc in
  Alcotest.(check bool) "8 cores share the memory bandwidth" true
    (eight < one *. 0.7)

let test_run_phases () =
  let a = arch () in
  let machine = Machine.create a.Arch.uarch in
  let cfg = config a ~cores:1 ~smt:1 in
  let hot = mono a "xvmaddadp" and cold = mono a ~dep:(Builder.Fixed 1) "fdiv" in
  let ph = Machine.run_phases machine cfg [ (hot, 1.0); (cold, 1.0) ] in
  let mh = Machine.run machine cfg hot and mc = Machine.run machine cfg cold in
  Alcotest.(check (float 0.5)) "power is the weighted mean"
    ((mh.Measurement.power +. mc.Measurement.power) /. 2.0)
    ph.Measurement.power;
  Alcotest.(check bool) "trace concatenates phases" true
    (Array.length ph.Measurement.power_trace > 4)

let test_heterogeneous_validation () =
  let a = arch () in
  let machine = Machine.create a.Arch.uarch in
  let p = mono a "add" in
  Alcotest.(check bool) "program count must equal SMT" true
    (try
       ignore (Machine.run_heterogeneous machine (config a ~cores:1 ~smt:2) [ p ]);
       false
     with Invalid_argument _ -> true)

let test_heterogeneous_mix () =
  let a = arch () in
  let machine = Machine.create a.Arch.uarch in
  let compute = mono a "xvmaddadp" in
  let memory =
    mono a ~mem_mix:[ (Mp_uarch.Cache_geometry.MEM, 1.0) ] "ld"
  in
  let cfg2 = config a ~cores:1 ~smt:2 in
  let both = Machine.run_heterogeneous machine cfg2 [ compute; memory ] in
  (* the compute thread must stay in steady state for the whole window:
     its per-thread IPC should be close to its homogeneous SMT1 rate *)
  let homog = Machine.run machine (config a ~cores:1 ~smt:1) compute in
  let compute_ipc = Measurement.ipc both.Measurement.threads.(0) in
  Alcotest.(check bool)
    (Printf.sprintf "compute thread unstarved (%.2f vs %.2f)" compute_ipc
       homog.Measurement.core_ipc)
    true
    (compute_ipc > 0.8 *. homog.Measurement.core_ipc);
  (* the memory thread's counters show main-memory activity *)
  let memc = both.Measurement.threads.(1) in
  Alcotest.(check bool) "memory thread touches MEM" true
    (memc.Measurement.mem > 10.0);
  (* and the mixed pair draws more power than the compute pair alone *)
  let compute_pair = Machine.run machine cfg2 compute in
  Alcotest.(check bool) "distinct from homogeneous" true
    (Float.abs (both.Measurement.power -. compute_pair.Measurement.power) > 0.2)

let test_heterogeneous_determinism () =
  let a = arch () in
  let machine = Machine.create ~seed:11 a.Arch.uarch in
  let p1 = mono a "add" and p2 = mono a "mulld" in
  let cfg2 = config a ~cores:2 ~smt:2 in
  let m1 = Machine.run_heterogeneous machine cfg2 [ p1; p2 ] in
  let m2 = Machine.run_heterogeneous machine cfg2 [ p1; p2 ] in
  Alcotest.(check (float 1e-9)) "same power" m1.Measurement.power
    m2.Measurement.power

let test_smt_fairness () =
  (* two identical threads contending for the same pipes must receive
     comparable shares — the issue arbitration rotates *)
  let a = arch () in
  let machine = Machine.create a.Arch.uarch in
  let p = mono a "subf" in
  let m = Machine.run machine (config a ~cores:1 ~smt:2) p in
  let i0 = Measurement.ipc m.Measurement.threads.(0) in
  let i1 = Measurement.ipc m.Measurement.threads.(1) in
  Alcotest.(check bool)
    (Printf.sprintf "fair shares (%.2f vs %.2f)" i0 i1)
    true
    (Float.abs (i0 -. i1) < 0.2 *. Float.max i0 i1)

let test_phases_validation () =
  let a = arch () in
  let machine = Machine.create a.Arch.uarch in
  Alcotest.(check bool) "empty phases rejected" true
    (try ignore (Machine.run_phases machine (config a ~cores:1 ~smt:1) []); false
     with Invalid_argument _ -> true)

(* ----- measurement arithmetic ------------------------------------------ *)

let test_counter_arithmetic () =
  let c1 =
    { Measurement.zero_counters with
      Measurement.cycles = 100.0; instrs = 50.0; fxu = 10.0 }
  in
  let c2 =
    { Measurement.zero_counters with
      Measurement.cycles = 80.0; instrs = 30.0; fxu = 5.0 }
  in
  let s = Measurement.add_counters c1 c2 in
  Alcotest.(check (float 1e-9)) "instrs add" 80.0 s.Measurement.instrs;
  Alcotest.(check (float 1e-9)) "cycles take max" 100.0 s.Measurement.cycles;
  let k = Measurement.scale_counters 2.0 c1 in
  Alcotest.(check (float 1e-9)) "scaled" 20.0 k.Measurement.fxu;
  Alcotest.(check (float 1e-9)) "ipc" 0.5 (Measurement.ipc c1);
  Alcotest.(check (float 1e-9)) "rate" 0.1 (Measurement.rate c1 c1.Measurement.fxu)

let test_power_trace_properties () =
  let a = arch () in
  let machine = Machine.create a.Arch.uarch in
  let m = Machine.run machine (config a ~cores:4 ~smt:2) (mono a "fmadd") in
  Alcotest.(check bool) "trace has samples" true
    (Array.length m.Measurement.power_trace >= 16);
  let mean = Mp_util.Stats.mean m.Measurement.power_trace in
  Alcotest.(check bool) "sensor mean equals reported power" true
    (Float.abs (mean -. m.Measurement.power) < 1e-9);
  let _, hi = Mp_util.Stats.min_max m.Measurement.power_trace in
  Alcotest.(check bool) "noise is small" true
    (hi < m.Measurement.power *. 1.05)

let test_total_threads () =
  let a = arch () in
  let machine = Machine.create a.Arch.uarch in
  let m = Machine.run machine (config a ~cores:4 ~smt:2) (mono a "add") in
  Alcotest.(check int) "4 cores x smt2" 8 (Measurement.total_threads m)

let test_seed_changes_sensor () =
  (* a memory kernel consumes the machine seed (address-stream
     synthesis), so its sensor noise must differ between seeds *)
  let a = arch () in
  let p = mono a "lbz" in
  let c = config a ~cores:2 ~smt:1 in
  let m1 = Machine.run (Machine.create ~seed:1 a.Arch.uarch) c p in
  let m2 = Machine.run (Machine.create ~seed:2 a.Arch.uarch) c p in
  Alcotest.(check bool) "different sensor noise" true
    (m1.Measurement.power <> m2.Measurement.power);
  Alcotest.(check bool) "but close" true
    (Float.abs (m1.Measurement.power -. m2.Measurement.power)
     < 0.05 *. m1.Measurement.power)

let test_seed_independent_identical () =
  (* a pure compute kernel built only from seed-independent passes
     draws nothing from the machine seed — not even sensor noise, which
     switches to the canonical rng so warm caches can be shared across
     seeds. Measurements must be bit-identical between machines. *)
  let a = arch () in
  let p = mono a "mulld" in
  let c = config a ~cores:2 ~smt:1 in
  let m1 = Machine.run (Machine.create ~cache:false ~seed:1 a.Arch.uarch) c p in
  let m2 = Machine.run (Machine.create ~cache:false ~seed:2 a.Arch.uarch) c p in
  Alcotest.(check bool) "bit-identical across machine seeds" true
    (compare m1 m2 = 0)

(* ----- heterogeneous batch -------------------------------------------------- *)

let test_hetero_batch_matches_serial () =
  let a = arch () in
  let c = config a ~cores:2 ~smt:2 in
  let p1 = mono a "mulld" and p2 = mono a "lbz" in
  let jobs = [ (c, [ p1; p2 ]); (c, [ p2; p1 ]); (c, [ p1; p1 ]) ] in
  let serial_machine = Machine.create ~cache:false a.Arch.uarch in
  let serial =
    List.map
      (fun (c, ps) -> Machine.run_heterogeneous serial_machine c ps)
      jobs
  in
  let batch_machine = Machine.create ~cache:false a.Arch.uarch in
  let pool = Mp_util.Parallel.create 4 in
  let batch = Machine.run_heterogeneous_batch ~pool batch_machine jobs in
  Mp_util.Parallel.shutdown pool;
  List.iter2
    (fun (s : Measurement.t) (b : Measurement.t) ->
      Alcotest.(check bool)
        (s.Measurement.program ^ " hetero batch bit-identical")
        true
        (compare s b = 0))
    serial batch

(* ----- disk-persistent measurement cache ------------------------------------ *)

let with_cache_dir dir f =
  Unix.putenv "MP_CACHE_DIR" dir;
  Fun.protect ~finally:(fun () -> Unix.putenv "MP_CACHE_DIR" "_mp_cache") f

let fresh_dir tag =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "mp_cache_test_%s_%d" tag (Unix.getpid ()))

let cache_stats machine =
  match Machine.measurement_cache machine with
  | Some c -> Measurement_cache.stats c
  | None -> Alcotest.fail "expected a measurement cache"

let test_disk_cache_roundtrip () =
  with_cache_dir (fresh_dir "rt") (fun () ->
      let a = arch () in
      let p = mono a "mulld" in
      let other = mono a "lbz" in
      let c = config a ~cores:2 ~smt:1 in
      (* reference value, no caching at all *)
      let m0 = Machine.create ~cache:false a.Arch.uarch in
      let r0 = Machine.run m0 c p in
      (* m1 interns [other] first, so its intern-table history differs
         from a machine that only ever saw [p] — the disk entry it
         writes must be bit-identical anyway *)
      let m1 = Machine.create a.Arch.uarch in
      ignore (Machine.run m1 c other);
      let r1 = Machine.run m1 c p in
      Alcotest.(check bool) "writer matches reference" true
        (compare r0 r1 = 0);
      let dir = Sys.getenv "MP_CACHE_DIR" in
      Alcotest.(check bool) "cache dir populated" true
        (Sys.file_exists dir && Array.length (Sys.readdir dir) > 0);
      (* a fresh machine with a different intern history: in-memory
         cold, disk warm *)
      let m2 = Machine.create a.Arch.uarch in
      let r2 = Machine.run m2 c p in
      Alcotest.(check bool) "disk-served result bit-identical" true
        (compare r0 r2 = 0);
      let s = cache_stats m2 in
      Alcotest.(check int) "served from disk" 1 s.Measurement_cache.disk_hits;
      Alcotest.(check int) "no simulation ran" 0 s.Measurement_cache.misses)

let test_disk_cache_shared_across_seeds () =
  with_cache_dir (fresh_dir "seedshare") (fun () ->
      let a = arch () in
      let p = mono a "mulld" in
      let c = config a ~cores:2 ~smt:1 in
      let m1 = Machine.create ~seed:1 a.Arch.uarch in
      let r1 = Machine.run m1 c p in
      (* [p] is built only from seed-independent passes, so the seed is
         folded out of its cache key: the entry written under seed 1
         must be served to a fresh machine running under seed 2 *)
      let m2 = Machine.create ~seed:2 a.Arch.uarch in
      let r2 = Machine.run m2 c p in
      Alcotest.(check bool) "served bit-identical" true (compare r1 r2 = 0);
      let s = cache_stats m2 in
      Alcotest.(check int) "served from disk" 1 s.Measurement_cache.disk_hits;
      Alcotest.(check int) "no simulation ran" 0 s.Measurement_cache.misses)

let test_disk_cache_corrupt_skipped () =
  with_cache_dir (fresh_dir "corrupt") (fun () ->
      let a = arch () in
      let p = mono a "subf" in
      let c = config a ~cores:1 ~smt:1 in
      let m1 = Machine.create a.Arch.uarch in
      let r1 = Machine.run m1 c p in
      (* vandalise every entry on disk, walking the shard subdirectories *)
      let dir = Sys.getenv "MP_CACHE_DIR" in
      let rec vandalise d =
        Array.iter
          (fun f ->
            let path = Filename.concat d f in
            if Sys.is_directory path then vandalise path
            else begin
              let oc = open_out_bin path in
              output_string oc "not a marshalled measurement";
              close_out oc
            end)
          (Sys.readdir d)
      in
      vandalise dir;
      (* corrupt entries are skipped without error and recomputed *)
      let m2 = Machine.create a.Arch.uarch in
      let r2 = Machine.run m2 c p in
      Alcotest.(check bool) "recomputed bit-identical" true
        (compare r1 r2 = 0);
      let s = cache_stats m2 in
      Alcotest.(check int) "nothing served from disk" 0
        s.Measurement_cache.disk_hits;
      Alcotest.(check int) "recomputed once" 1 s.Measurement_cache.misses)

let rec no_tmp_left d =
  Array.for_all
    (fun f ->
      let path = Filename.concat d f in
      if Sys.is_directory path then no_tmp_left path
      else not (String.length f >= 5 && String.sub f 0 5 = ".tmp."))
    (Sys.readdir d)

let test_disk_cache_concurrent_writers () =
  let a = arch () in
  let p = mono a "mulld" in
  let c = config a ~cores:1 ~smt:1 in
  let m = Machine.run (Machine.create ~cache:false a.Arch.uarch) c p in
  let dir = fresh_dir "concwr" in
  let disk =
    { Measurement_cache.dir; namespace = Measurement_cache.namespace () }
  in
  let key i = Printf.sprintf "ab%06dcafe" (i mod 4) in
  (* two independent tables race tmp+rename writes of the same keys
     into the same directory — concurrent writers of one key store
     identical bytes, so whichever rename lands last wins harmlessly *)
  let writer () =
    let t = Measurement_cache.create ~disk () in
    for i = 0 to 39 do
      Measurement_cache.add t (key i) m
    done
  in
  let d1 = Domain.spawn writer and d2 = Domain.spawn writer in
  Domain.join d1;
  Domain.join d2;
  let r = Measurement_cache.create ~disk () in
  for i = 0 to 3 do
    match Measurement_cache.find r (key i) with
    | Some got ->
      Alcotest.(check bool) "raced entry bit-identical" true
        (compare got m = 0)
    | None -> Alcotest.fail "concurrently written entry missing"
  done;
  Alcotest.(check bool) "no temp files left behind" true (no_tmp_left dir);
  let s = Measurement_cache.disk_stats dir in
  Alcotest.(check int) "one entry per key" 4 s.Measurement_cache.ds_entries;
  Alcotest.(check bool) "sharded layout" true
    (s.Measurement_cache.ds_shards >= 1)

let test_replay_store_concurrent_writers () =
  let a = arch () in
  let u = a.Arch.uarch in
  let p = mono a "mulld" in
  (* a dense single-thread run at the Core_sim level supplies the
     ground-truth activity and period delta a replay record stores *)
  let opmap = Core_sim.opmap_create () in
  let dp = Core_sim.deploy ~uarch:u ~opmap ~streams:(fun _ -> [||]) p in
  let activity, pd =
    Core_sim.run_ex ~uarch:u ~opmap ~warmup:1 ~measure:4 [| dp |]
  in
  let fp = Measurement_cache.uarch_fingerprint u in
  let key =
    Replay.key ~uarch:fp ~smt:1 ~warmup:1
      ~mem_latency:u.Mp_uarch.Uarch_def.mem_latency [| p |]
  in
  let dir = fresh_dir "replaywr" in
  let writer () =
    let t = Replay.create ~disk_dir:dir () in
    for _ = 1 to 20 do
      Replay.record t ~opmap ~measure:4 key activity pd
    done
  in
  let d1 = Domain.spawn writer and d2 = Domain.spawn writer in
  Domain.join d1;
  Domain.join d2;
  (* a fresh table must reconstruct the activity from disk exactly as
     an uncontended in-memory table would (replay-vs-dense equivalence
     itself is covered by the replay suite) *)
  let daf = Ir.data_activity_factor p in
  let reference = Replay.create () in
  Replay.record reference ~opmap ~measure:4 key activity pd;
  let expect =
    match Replay.find reference ~opmap ~daf ~warmup:1 ~measure:4 key with
    | Some a -> a
    | None -> Alcotest.fail "reference table did not serve its own record"
  in
  let t = Replay.create ~disk_dir:dir () in
  (match Replay.find t ~opmap ~daf ~warmup:1 ~measure:4 key with
   | Some got ->
     Alcotest.(check bool) "raced store serves the uncontended record" true
       (compare got expect = 0)
   | None -> Alcotest.fail "record not served from the replay store");
  Alcotest.(check bool) "no temp files left behind" true (no_tmp_left dir)

(* ----- multi-process batches ------------------------------------------------ *)

let test_procs_batch_matches_serial () =
  let a = arch () in
  (* a non-dyadic core count, memory and compute kernels, and a
     heterogeneous batch: the full surface of the wire protocol *)
  let p1 = mono a "mulld" and p2 = mono a "lbz" in
  let c3 = config a ~cores:3 ~smt:2 in
  let c1 = config a ~cores:1 ~smt:1 in
  let jobs = [ (c3, p1); (c1, p1); (c3, p2); (c1, p2) ] in
  let m1 = Machine.create ~cache:false a.Arch.uarch in
  let serial = List.map (fun (c, p) -> Machine.run m1 c p) jobs in
  let m2 = Machine.create ~cache:false a.Arch.uarch in
  let batch = Machine.run_batch ~procs:2 m2 jobs in
  List.iter2
    (fun (s : Measurement.t) (b : Measurement.t) ->
      Alcotest.(check bool)
        (s.Measurement.program ^ " procs bit-identical")
        true
        (compare s b = 0))
    serial batch;
  (* heterogeneous jobs ride the same wire *)
  let hjobs = [ (c3, [ p1; p2 ]); (c3, [ p2; p1 ]) ] in
  let hserial =
    List.map (fun (c, ps) -> Machine.run_heterogeneous m1 c ps) hjobs
  in
  let m3 = Machine.create ~cache:false a.Arch.uarch in
  let hbatch = Machine.run_heterogeneous_batch ~procs:2 m3 hjobs in
  List.iter2
    (fun (s : Measurement.t) (b : Measurement.t) ->
      Alcotest.(check bool)
        (s.Measurement.program ^ " hetero procs bit-identical")
        true
        (compare s b = 0))
    hserial hbatch

let test_single_flight () =
  let cache = Measurement_cache.create () in
  let calls = Atomic.make 0 in
  let dummy =
    {
      Measurement.config = { Mp_uarch.Uarch_def.cores = 1; smt = 1 };
      program = "sf";
      threads = [||];
      core_ipc = 0.0;
      power = 1.0;
      power_trace = [||];
    }
  in
  let pool = Mp_util.Parallel.create 4 in
  let rs =
    Mp_util.Parallel.map pool
      (fun _ ->
        Measurement_cache.find_or_add cache "the-key" (fun () ->
            Atomic.incr calls;
            Unix.sleepf 0.02;
            dummy))
      [ 1; 2; 3; 4; 5; 6 ]
  in
  Mp_util.Parallel.shutdown pool;
  (* concurrent misses on one key run the computation at most once *)
  Alcotest.(check int) "compute ran once" 1 (Atomic.get calls);
  List.iter
    (fun r ->
      Alcotest.(check bool) "same value" true (compare r dummy = 0))
    rs;
  let s = Measurement_cache.stats cache in
  Alcotest.(check int) "one miss (one simulation)" 1 s.Measurement_cache.misses;
  Alcotest.(check int) "five hits" 5 s.Measurement_cache.hits

let test_cache_gc () =
  let dir = fresh_dir "gc" in
  (try Unix.mkdir dir 0o755 with _ -> ());
  (try Unix.mkdir (Filename.concat dir "ab") 0o755 with _ -> ());
  let write name bytes mtime =
    let path = Filename.concat dir name in
    let oc = open_out_bin path in
    output_string oc (String.make bytes 'x');
    close_out oc;
    Unix.utimes path mtime mtime
  in
  let t0 = Unix.gettimeofday () -. 1000.0 in
  (* five 1000-byte entries, oldest first — one inside a shard
     subdirectory, which the sweep must walk — plus an in-flight temp *)
  write "entry-a" 1000 t0;
  write "entry-b" 1000 (t0 +. 10.0);
  write (Filename.concat "ab" "entry-e") 1000 (t0 +. 15.0);
  write "entry-c" 1000 (t0 +. 20.0);
  write "entry-d" 1000 (t0 +. 30.0);
  write ".tmp.999.0" 1000 t0;
  let s = Measurement_cache.gc ~max_bytes:2500 dir in
  (* three oldest entries go — flat root and shard alike; the temp is
     invisible to the sweep *)
  Alcotest.(check int) "entries examined" 5 s.Measurement_cache.entries;
  Alcotest.(check int) "removed oldest three" 3 s.Measurement_cache.removed;
  Alcotest.(check int) "bytes before" 5000 s.Measurement_cache.bytes_before;
  Alcotest.(check int) "bytes after" 2000 s.Measurement_cache.bytes_after;
  Alcotest.(check bool) "oldest gone" false
    (Sys.file_exists (Filename.concat dir "entry-a"));
  Alcotest.(check bool) "second oldest gone" false
    (Sys.file_exists (Filename.concat dir "entry-b"));
  Alcotest.(check bool) "sharded entry evicted too" false
    (Sys.file_exists (Filename.concat dir (Filename.concat "ab" "entry-e")));
  Alcotest.(check bool) "newest kept" true
    (Sys.file_exists (Filename.concat dir "entry-d"));
  Alcotest.(check bool) "in-flight temp never touched" true
    (Sys.file_exists (Filename.concat dir ".tmp.999.0"));
  (* already under the bound: a second sweep removes nothing *)
  let s2 = Measurement_cache.gc ~max_bytes:2500 dir in
  Alcotest.(check int) "idempotent" 0 s2.Measurement_cache.removed;
  (* missing directory is an empty sweep, not an error *)
  let s3 = Measurement_cache.gc ~max_bytes:1 (dir ^ "-nonexistent") in
  Alcotest.(check int) "missing dir" 0 s3.Measurement_cache.entries

let test_cache_gc_env () =
  Unix.putenv "MP_CACHE_MAX_MB" "2";
  Alcotest.(check (option int)) "MiB to bytes" (Some (2 * 1024 * 1024))
    (Measurement_cache.env_max_bytes ());
  Unix.putenv "MP_CACHE_MAX_MB" "0.5";
  Alcotest.(check (option int)) "fractional" (Some (512 * 1024))
    (Measurement_cache.env_max_bytes ());
  Unix.putenv "MP_CACHE_MAX_MB" "junk";
  Alcotest.(check (option int)) "garbage ignored" None
    (Measurement_cache.env_max_bytes ());
  Unix.putenv "MP_CACHE_MAX_MB" "-3";
  Alcotest.(check (option int)) "negative ignored" None
    (Measurement_cache.env_max_bytes ());
  Unix.putenv "MP_CACHE_MAX_MB" ""

(* ----- structural keys and batch dedup -------------------------------------- *)

(* A deliberately diverse program set — distinct opcodes, sizes,
   dependency modes, memory mixes and branch patterns, with structural
   duplicates built independently — to exercise the key derivations. *)
let diverse_programs a =
  let brancher () =
    let synth = Synthesizer.create ~name:"kv-branch" a in
    Synthesizer.add_pass synth (Passes.skeleton ~size:64);
    Synthesizer.add_pass synth
      (Passes.fill_sequence [ Arch.find_instruction a "add" ]);
    Synthesizer.add_pass synth
      (Passes.branch_model ~bc:(Arch.find_instruction a "bc") ~frequency:0.2
         ~taken_ratio:0.5 ~pattern_length:4);
    Synthesizer.add_pass synth (Passes.dependency Builder.No_deps);
    Synthesizer.synthesize ~seed:31 synth
  in
  [
    mono a "add";
    mono a "add";                   (* independently built duplicate *)
    mono a ~size:64 "add";
    mono a "mulld";
    mono a ~dep:(Builder.Fixed 1) "mulld";
    mono a "fadd";
    mono a "xvmaddadp";
    mono a "lbz";
    mono a
      ~mem_mix:
        [ (Mp_uarch.Cache_geometry.L1, 0.5); (Mp_uarch.Cache_geometry.L2, 0.5) ]
      "lbz";
    brancher ();
    brancher ();                    (* duplicate with a branch pattern *)
  ]

let test_key_equivalence_classes () =
  (* the structural-fold keys must induce exactly the hit/miss
     equivalence classes of the marshal-digest keys over a diverse job
     population: programs × configs × seed presence × windows *)
  let a = arch () in
  let fp = Measurement_cache.uarch_fingerprint a.Arch.uarch in
  let jobs =
    List.concat_map
      (fun p ->
        List.concat_map
          (fun (cores, smt) ->
            List.map
              (fun (seed, warmup, measure) -> (p, cores, smt, seed, warmup, measure))
              [ (Some 1, 1, 8); (Some 2, 1, 8); (None, 1, 8); (Some 1, 2, 16) ])
          [ (1, 1); (4, 2) ])
      (diverse_programs a)
  in
  let keys =
    List.map
      (fun ((p : Ir.t), cores, smt, seed, warmup, measure) ->
        let c = config a ~cores ~smt in
        ( Measurement_cache.key_structural ~uarch:fp ?seed ~config:c ~warmup
            ~measure ~name:p.Ir.name [| p |],
          Measurement_cache.key_marshal ~uarch:fp ?seed ~config:c ~warmup
            ~measure ~name:p.Ir.name [| p |] ))
      jobs
  in
  let keys = Array.of_list keys in
  let n = Array.length keys in
  let mismatches = ref 0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let s_eq = fst keys.(i) = fst keys.(j) in
      let m_eq = snd keys.(i) = snd keys.(j) in
      if s_eq <> m_eq then incr mismatches
    done
  done;
  Alcotest.(check int) "identical equivalence classes" 0 !mismatches;
  (* and the classes are non-trivial: the independently built
     duplicates actually collide *)
  let dup_pairs =
    Array.to_list keys
    |> List.filter (fun (s, _) -> s = fst keys.(0))
    |> List.length
  in
  Alcotest.(check bool) "duplicates share a key" true (dup_pairs >= 2)

let test_struct_hash_precomputed () =
  (* the hash carried on a finalized program is exactly the recomputed
     one, and editing the body without rehashing is detectable *)
  let a = arch () in
  List.iter
    (fun (p : Ir.t) ->
      Alcotest.(check bool) (p.Ir.name ^ " hash consistent") true
        (Ir.struct_hash p = Ir.struct_hash (Ir.rehash p)))
    (diverse_programs a)

let test_batch_dedup_scatter () =
  (* duplicates inside one batch: results must be bit-identical to the
     undeduplicated run, in original order, with the collapse counted *)
  let a = arch () in
  let p1 = mono a "mulld" in
  let p2 = mono a "fadd" in
  let p3 = mono a "lbz" in
  let c1 = config a ~cores:2 ~smt:1 in
  let c2 = config a ~cores:4 ~smt:2 in
  (* (c1,p1) three times and (c2,p2) twice -> 3 collapsed positions;
     (c2,p1) is a distinct point despite sharing the program *)
  let jobs =
    [ (c1, p1); (c2, p2); (c1, p1); (c1, p3); (c2, p2); (c1, p1); (c2, p1) ]
  in
  let plain =
    Machine.run_batch ~dedup:false (Machine.create ~cache:false a.Arch.uarch)
      jobs
  in
  let d0 = Machine.batch_dup_collapsed () in
  let deduped =
    Machine.run_batch (Machine.create ~cache:false a.Arch.uarch) jobs
  in
  Alcotest.(check int) "three positions collapsed" 3
    (Machine.batch_dup_collapsed () - d0);
  List.iteri
    (fun i (p, d) ->
      Alcotest.(check bool)
        (Printf.sprintf "position %d bit-identical" i)
        true (compare p d = 0))
    (List.combine plain deduped)

let test_hetero_batch_dedup_scatter () =
  let a = arch () in
  let p1 = mono a "mulld" in
  let p2 = mono a "lbz" in
  let c = config a ~cores:2 ~smt:2 in
  let jobs =
    [ (c, [ p1; p2 ]); (c, [ p2; p1 ]); (c, [ p1; p2 ]); (c, [ p1; p1 ]) ]
  in
  let plain =
    Machine.run_heterogeneous_batch ~dedup:false
      (Machine.create ~cache:false a.Arch.uarch)
      jobs
  in
  let d0 = Machine.batch_dup_collapsed () in
  let deduped =
    Machine.run_heterogeneous_batch
      (Machine.create ~cache:false a.Arch.uarch)
      jobs
  in
  (* only the exact per-thread assignment repeat collapses; the swapped
     assignment is a different point *)
  Alcotest.(check int) "one position collapsed" 1
    (Machine.batch_dup_collapsed () - d0);
  List.iteri
    (fun i (p, d) ->
      Alcotest.(check bool)
        (Printf.sprintf "hetero position %d bit-identical" i)
        true (compare p d = 0))
    (List.combine plain deduped)

let test_disk_cache_shard_layout_and_migration () =
  with_cache_dir (fresh_dir "shard") (fun () ->
      let a = arch () in
      let p = mono a "mulld" in
      let c = config a ~cores:1 ~smt:1 in
      let m1 = Machine.create a.Arch.uarch in
      let r1 = Machine.run m1 c p in
      let dir = Sys.getenv "MP_CACHE_DIR" in
      let is_hex2 f =
        String.length f = 2
        && String.for_all
             (fun ch -> (ch >= '0' && ch <= '9') || (ch >= 'a' && ch <= 'f'))
             f
      in
      (* every entry lives in a two-hex-digit shard subdirectory whose
         name prefixes the key (the suffix of the entry file name) *)
      let entries = ref [] in
      Array.iter
        (fun f ->
          let path = Filename.concat dir f in
          if Sys.is_directory path then begin
            Alcotest.(check bool) ("shard dir name " ^ f) true (is_hex2 f);
            Array.iter
              (fun e ->
                (* entry name is <namespace>-<key>; the key (either
                   derivation's) is the hex run after the last dash *)
                let i = String.rindex e '-' in
                let key = String.sub e (i + 1) (String.length e - i - 1) in
                Alcotest.(check string) "entry in its key's shard" f
                  (String.sub key 0 2);
                entries := (f, e) :: !entries)
              (Sys.readdir path)
          end
          else Alcotest.fail ("flat entry in a sharded cache root: " ^ f))
        (Sys.readdir dir);
      Alcotest.(check bool) "at least one entry written" true
        (!entries <> []);
      (* legacy flat layout: move every entry into the root, as an
         earlier version would have written it *)
      List.iter
        (fun (shard, e) ->
          Sys.rename
            (Filename.concat (Filename.concat dir shard) e)
            (Filename.concat dir e))
        !entries;
      let m2 = Machine.create a.Arch.uarch in
      let r2 = Machine.run m2 c p in
      Alcotest.(check bool) "legacy entry served bit-identical" true
        (compare r1 r2 = 0);
      let s = cache_stats m2 in
      Alcotest.(check int) "served from disk" 1 s.Measurement_cache.disk_hits;
      Alcotest.(check int) "no simulation ran" 0 s.Measurement_cache.misses;
      (* and the read migrated the flat entry back into its shard *)
      List.iter
        (fun (shard, e) ->
          Alcotest.(check bool) ("flat copy gone: " ^ e) false
            (Sys.file_exists (Filename.concat dir e));
          Alcotest.(check bool) ("migrated into " ^ shard) true
            (Sys.file_exists (Filename.concat (Filename.concat dir shard) e)))
        !entries)

(* ----- exact period skipping ------------------------------------------------ *)

(* Dense and period-skipped runs must be bit-identical: same counters,
   transitions, cache stats, power and trace. Fresh uncached machines on
   both sides so nothing is served from memo tables. *)
let period_equiv ?(cores = 1) ?(smt = 1) ?(warmup = 1) ?(measure = 48) name p =
  let a = arch () in
  let cfg = config a ~cores ~smt in
  let dense =
    Machine.run ~warmup ~measure ~period:false
      (Machine.create ~cache:false ~replay:false a.Arch.uarch)
      cfg p
  in
  let skip =
    Machine.run ~warmup ~measure ~period:true
      (Machine.create ~cache:false ~replay:false a.Arch.uarch)
      cfg p
  in
  Alcotest.(check bool) (name ^ " bit-identical") true (compare dense skip = 0)

let test_period_detects_and_skips () =
  (* pipe residuals are integer ticks over the uarch denominator, so
     every kernel's steady state repeats bit-for-bit; the simplest case
     — fadd on occupancy-1.0 pipes — must be detected and skipped *)
  let a = arch () in
  let hits0 = Core_sim.period_hits () in
  let skipped0 = Core_sim.cycles_skipped () in
  let m = Machine.create ~cache:false ~replay:false a.Arch.uarch in
  ignore
    (Machine.run ~measure:64 ~period:true m (config a ~cores:1 ~smt:1)
       (mono a "fadd"));
  Alcotest.(check bool) "periodic kernel detected" true
    (Core_sim.period_hits () > hits0);
  Alcotest.(check bool) "cycles were skipped" true
    (Core_sim.cycles_skipped () > skipped0)

let test_period_equiv_compute () =
  let a = arch () in
  period_equiv "add smt1" (mono a "add");
  period_equiv "mulldo smt1" (mono a "mulldo");
  period_equiv ~smt:2 "subf smt2" (mono a "subf");
  period_equiv ~smt:4 "fadd chain smt4" (mono a ~dep:(Builder.Fixed 1) "fadd")

let test_period_equiv_windows () =
  let a = arch () in
  let p = mono a "fmadd" in
  period_equiv ~warmup:3 ~measure:17 "warmup 3 measure 17" p;
  period_equiv ~warmup:1 ~measure:5 "measure 5" p;
  period_equiv ~cores:4 ~smt:2 ~measure:32 "4 cores smt2" p

let test_period_equiv_branches () =
  let a = arch () in
  let build ~taken_ratio ~pattern_length =
    let synth = Synthesizer.create ~name:"brper" a in
    Synthesizer.add_pass synth (Passes.skeleton ~size:128);
    Synthesizer.add_pass synth
      (Passes.fill_sequence [ Arch.find_instruction a "add" ]);
    Synthesizer.add_pass synth
      (Passes.branch_model ~bc:(Arch.find_instruction a "bc") ~frequency:0.2
         ~taken_ratio ~pattern_length);
    Synthesizer.add_pass synth (Passes.dependency Builder.No_deps);
    Synthesizer.synthesize ~seed:31 synth
  in
  period_equiv "balanced pattern" (build ~taken_ratio:0.5 ~pattern_length:4);
  period_equiv "biased pattern" (build ~taken_ratio:0.8 ~pattern_length:5);
  period_equiv ~smt:2 "branches smt2" (build ~taken_ratio:0.5 ~pattern_length:3)

let test_period_equiv_memory () =
  let a = arch () in
  period_equiv ~measure:32 "L1 loads" (mono a "lbz");
  period_equiv ~measure:32 "L1/L2 mix"
    (mono a
       ~mem_mix:
         [ (Mp_uarch.Cache_geometry.L1, 0.5); (Mp_uarch.Cache_geometry.L2, 0.5) ]
       "lbz");
  period_equiv ~measure:16 "MEM chase"
    (mono a ~dep:(Builder.Fixed 1)
       ~mem_mix:[ (Mp_uarch.Cache_geometry.MEM, 1.0) ]
       "ld");
  period_equiv ~smt:2 ~measure:16 "three levels smt2"
    (mono a
       ~mem_mix:
         [ (Mp_uarch.Cache_geometry.L1, 0.4);
           (Mp_uarch.Cache_geometry.L2, 0.3);
           (Mp_uarch.Cache_geometry.L3, 0.3) ]
       "lbz")

let test_period_equiv_heterogeneous () =
  let a = arch () in
  let compute = mono a "xvmaddadp" in
  let memory = mono a "lbz" in
  let cfg = config a ~cores:2 ~smt:2 in
  let dense =
    Machine.run_heterogeneous ~measure:32 ~period:false
      (Machine.create ~cache:false ~replay:false a.Arch.uarch)
      cfg [ compute; memory ]
  in
  let skip =
    Machine.run_heterogeneous ~measure:32 ~period:true
      (Machine.create ~cache:false ~replay:false a.Arch.uarch)
      cfg [ compute; memory ]
  in
  Alcotest.(check bool) "hetero bit-identical" true (compare dense skip = 0)

let test_period_aperiodic_fallback () =
  (* A stream whose length (127, prime) exceeds the measured window:
     every iteration boundary has a distinct stream phase, so no
     fingerprint repeats within the run — the detector simply never
     fires and the run must still match a dense run exactly. *)
  let a = arch () in
  let u = a.Arch.uarch in
  let p = mono a ~size:8 "lbz" in
  let aper = Array.init 127 (fun i -> i * 7919 * 128) in
  let run_with period =
    (* fresh opmap per run: both runs intern the same names in the same
       order, so activities are comparable field by field *)
    let opmap = Core_sim.opmap_create () in
    let dp = Core_sim.deploy ~uarch:u ~opmap ~streams:(fun _ -> aper) p in
    Core_sim.run ~uarch:u ~opmap ~warmup:1 ~measure:32 ~period [| dp |]
  in
  let hits0 = Core_sim.period_hits () in
  let dense = run_with false in
  let skip = run_with true in
  Alcotest.(check int) "no period found" hits0 (Core_sim.period_hits ());
  Alcotest.(check bool) "fallback bit-identical" true (compare dense skip = 0)

let test_period_nondyadic () =
  (* Fractional occupancies — 1.19 (lbz on the LSU), 1.3 (andi.'s LSU
     alternate), 1.43 (mulld), 2.08/0.5 (stfd on the wide store port and
     VSU) — are exact integer ticks over the uarch denominator, so these
     steady states repeat bit-for-bit too: the detector must fire for
     every kernel at every SMT level, and skipping must not change a
     single bit relative to dense. *)
  let a = arch () in
  List.iter
    (fun mnemonic ->
      let p = mono a ~size:64 mnemonic in
      List.iter
        (fun smt ->
          let name = Printf.sprintf "%s smt%d" mnemonic smt in
          let cfg = config a ~cores:1 ~smt in
          (* residual phases repeat within occ_den (=100) iterations and
             the L1 streams within their pool length; 256 measured
             iterations covers the combined period with margin *)
          let dense =
            Machine.run ~measure:256 ~period:false
              (Machine.create ~cache:false ~replay:false a.Arch.uarch)
              cfg p
          in
          let hits0 = Core_sim.period_hits () in
          let skip =
            Machine.run ~measure:256 ~period:true
              (Machine.create ~cache:false ~replay:false a.Arch.uarch)
              cfg p
          in
          Alcotest.(check bool) (name ^ " period detected") true
            (Core_sim.period_hits () > hits0);
          Alcotest.(check bool) (name ^ " bit-identical") true
            (compare dense skip = 0))
        [ 1; 2; 4 ])
    [ "lbz"; "andi."; "mulld"; "stfd" ]

let test_period_training_suite () =
  (* the acceptance bar: dense and skipped runs agree on every program
     of the (quick) Table-2 training suite *)
  let a = arch () in
  let machine = Machine.create a.Arch.uarch in
  let fams = Mp_workloads.Training.table2 ~machine ~arch:a ~quick:true () in
  let progs =
    List.map
      (fun (e : Mp_workloads.Training.entry) -> e.Mp_workloads.Training.program)
      (Mp_workloads.Training.all_entries fams)
  in
  Alcotest.(check bool) "suite non-empty" true (List.length progs > 20);
  let cfg = config a ~cores:8 ~smt:2 in
  let dense_m = Machine.create ~cache:false ~replay:false a.Arch.uarch in
  let skip_m = Machine.create ~cache:false ~replay:false a.Arch.uarch in
  List.iteri
    (fun i p ->
      let dense = Machine.run ~measure:12 ~period:false dense_m cfg p in
      let skip = Machine.run ~measure:12 ~period:true skip_m cfg p in
      Alcotest.(check bool)
        (Printf.sprintf "suite entry %d (%s) bit-identical" i
           p.Mp_codegen.Ir.name)
        true
        (compare dense skip = 0))
    progs

(* ----- steady-state replay -------------------------------------------------- *)

(* Replay serves later measurements of the same structural program from
   a captured period record; every served activity must be bit-identical
   to dense simulation. The tests run against the process-global table
   (the one Machine.create attaches), so hit/miss assertions are
   delta-based. *)

let replay_dense ?(cores = 1) ?(smt = 1) ?measure a p =
  Machine.run ?measure
    (Machine.create ~cache:false ~replay:false a.Arch.uarch)
    (config a ~cores ~smt) p

let test_replay_bit_identity () =
  (* compute kernels across SMT levels, including the non-dyadic mulld
     (occupancy 1.43) whose steady state only repeats every second
     iteration: a second run on the same machine and a run on a fresh
     machine must both be served from the table, bit-identical *)
  let a = arch () in
  List.iter
    (fun (mnemonic, dep) ->
      let p = mono a ~dep mnemonic in
      List.iter
        (fun smt ->
          let name = Printf.sprintf "%s smt%d" mnemonic smt in
          let dense = replay_dense ~smt a p in
          let m = Machine.create ~cache:false a.Arch.uarch in
          let r1 = Machine.run m (config a ~cores:1 ~smt) p in
          let hits0 = Replay.hits () in
          let r2 = Machine.run m (config a ~cores:1 ~smt) p in
          Alcotest.(check bool) (name ^ " first run = dense") true
            (compare dense r1 = 0);
          Alcotest.(check bool) (name ^ " replayed run = dense") true
            (compare dense r2 = 0);
          Alcotest.(check bool) (name ^ " second run hit the table") true
            (Replay.hits () > hits0);
          (* a fresh machine shares the process-global table *)
          let m2 = Machine.create ~cache:false a.Arch.uarch in
          let r3 = Machine.run m2 (config a ~cores:1 ~smt) p in
          Alcotest.(check bool) (name ^ " fresh machine = dense") true
            (compare dense r3 = 0))
        [ 1; 2; 4 ])
    [ ("add", Builder.No_deps); ("mulld", Builder.No_deps);
      ("fadd", Builder.Fixed 1) ]

let test_replay_memory () =
  (* memory programs consume the per-run RNG (address streams), so
     their records are salted with the machine seed: replay under each
     seed must reproduce that seed's dense run, not another's *)
  let a = arch () in
  let progs =
    [ ("lbz L1", mono a "lbz");
      ("lbz L1/L2",
       mono a
         ~mem_mix:
           [ (Mp_uarch.Cache_geometry.L1, 0.5);
             (Mp_uarch.Cache_geometry.L2, 0.5) ]
         "lbz") ]
  in
  List.iter
    (fun (name, p) ->
      List.iter
        (fun seed ->
          let tag = Printf.sprintf "%s seed %d" name seed in
          let dense =
            Machine.run ~measure:16
              (Machine.create ~seed ~cache:false ~replay:false a.Arch.uarch)
              (config a ~cores:1 ~smt:2) p
          in
          let m = Machine.create ~seed ~cache:false a.Arch.uarch in
          let r1 = Machine.run ~measure:16 m (config a ~cores:1 ~smt:2) p in
          let r2 = Machine.run ~measure:16 m (config a ~cores:1 ~smt:2) p in
          Alcotest.(check bool) (tag ^ " first run = dense") true
            (compare dense r1 = 0);
          Alcotest.(check bool) (tag ^ " replayed = dense") true
            (compare dense r2 = 0))
        [ 2012; 5 ])
    progs

let test_replay_window_extrapolation () =
  (* the period step: a record captured at a narrow window serves a
     wider window by base + k*delta — the common case (default-window
     training runs vs the bootstrap's doubled window). fadd reaches a
     1-iteration steady state inside the default window; size 250
     spreads mulld's non-dyadic residual phases over a 4-iteration
     period at smt1, so from a base of 12 the window 24 is admissible
     (diff 12 = 3 periods) while 14 is not (diff 2) and must fall back
     to dense simulation — bit-identically either way. *)
  let a = arch () in
  List.iter
    (fun (name, p, base, wider, inadmissible) ->
      let m = Machine.create ~cache:false a.Arch.uarch in
      ignore (Machine.run ~measure:base m (config a ~cores:1 ~smt:1) p);
      let hits0 = Replay.hits () in
      let m2 = Machine.create ~cache:false a.Arch.uarch in
      let wide = Machine.run ~measure:wider m2 (config a ~cores:1 ~smt:1) p in
      Alcotest.(check bool) (name ^ " wider window served by replay") true
        (Replay.hits () > hits0);
      Alcotest.(check bool) (name ^ " extrapolated = dense") true
        (compare (replay_dense ~measure:wider a p) wide = 0);
      match inadmissible with
      | None -> ()
      | Some w ->
        let m3 = Machine.create ~cache:false a.Arch.uarch in
        let r = Machine.run ~measure:w m3 (config a ~cores:1 ~smt:1) p in
        Alcotest.(check bool)
          (Printf.sprintf "%s inadmissible window %d = dense" name w)
          true
          (compare (replay_dense ~measure:w a p) r = 0))
    [ ("fadd", mono a "fadd", 8, 24, None);
      ("mulld/250", mono a ~size:250 "mulld", 12, 24, Some 14) ]

let test_replay_disabled () =
  (* ~replay:false opts a machine out entirely: no lookups, no records *)
  let a = arch () in
  let p = mono a "xvmaddadp" in
  let m = Machine.create ~cache:false ~replay:false a.Arch.uarch in
  let hits0 = Replay.hits () in
  let misses0 = Replay.misses () in
  let r1 = Machine.run m (config a ~cores:1 ~smt:1) p in
  let r2 = Machine.run m (config a ~cores:1 ~smt:1) p in
  Alcotest.(check bool) "dense runs identical" true (compare r1 r2 = 0);
  Alcotest.(check int) "no hits" hits0 (Replay.hits ());
  Alcotest.(check int) "no misses" misses0 (Replay.misses ())

let test_replay_name_insensitive () =
  (* records are keyed on the name-free body hash: the same body under
     a different label is the same record. (Memory programs are the
     exception — their salt folds the name because the address-stream
     RNG is seeded from it — so this is a compute kernel.) *)
  let a = arch () in
  let build name =
    let synth = Synthesizer.create ~name a in
    Synthesizer.add_pass synth (Passes.skeleton ~size:96);
    Synthesizer.add_pass synth
      (Passes.fill_sequence [ Arch.find_instruction a "fmul" ]);
    Synthesizer.add_pass synth (Passes.dependency Builder.No_deps);
    Synthesizer.synthesize ~seed:13 synth
  in
  let alpha = build "alpha" and beta = build "beta" in
  Alcotest.(check bool) "struct hashes differ (name included)" true
    (Ir.struct_hash alpha <> Ir.struct_hash beta);
  Alcotest.(check bool) "body hashes agree (name-free)" true
    (Ir.body_hash alpha = Ir.body_hash beta);
  let fp = Measurement_cache.uarch_fingerprint a.Arch.uarch in
  Alcotest.(check string) "replay keys agree"
    (Replay.key ~uarch:fp ~smt:1 ~warmup:1 ~mem_latency:0 [| alpha |])
    (Replay.key ~uarch:fp ~smt:1 ~warmup:1 ~mem_latency:0 [| beta |]);
  (* end to end: measuring beta is served by alpha's record *)
  let m = Machine.create ~cache:false a.Arch.uarch in
  ignore (Machine.run m (config a ~cores:1 ~smt:1) alpha);
  let hits0 = Replay.hits () in
  let r_beta = Machine.run m (config a ~cores:1 ~smt:1) beta in
  Alcotest.(check bool) "beta served from alpha's record" true
    (Replay.hits () > hits0);
  Alcotest.(check bool) "beta replay = beta dense" true
    (compare (replay_dense a beta) r_beta = 0)

let prop_replay_key_one_edit =
  (* editing a single instruction anywhere in the body must change the
     replay key — the key is a digest of the full instruction stream,
     not of summary statistics *)
  let a = arch () in
  let fp = Measurement_cache.uarch_fingerprint a.Arch.uarch in
  let size = 24 in
  let build pattern =
    let synth = Synthesizer.create ~name:"edit" a in
    Synthesizer.add_pass synth (Passes.skeleton ~size);
    Synthesizer.add_pass synth (Passes.fill_sequence pattern);
    Synthesizer.add_pass synth (Passes.dependency Builder.No_deps);
    Synthesizer.synthesize ~seed:5 synth
  in
  let add = Arch.find_instruction a "add" in
  let subf = Arch.find_instruction a "subf" in
  QCheck.Test.make ~name:"one-instruction edit changes the replay key"
    ~count:16
    QCheck.(int_range 0 (size - 1))
    (fun i ->
      let base = List.init size (fun _ -> add) in
      let edited = List.mapi (fun j x -> if j = i then subf else x) base in
      let p = build base and p' = build edited in
      Ir.body_hash p <> Ir.body_hash p'
      && Replay.key ~uarch:fp ~smt:1 ~warmup:1 ~mem_latency:0 [| p |]
         <> Replay.key ~uarch:fp ~smt:1 ~warmup:1 ~mem_latency:0 [| p' |])

let prop_power_monotone_in_cores =
  let a = arch () in
  let machine = Machine.create a.Arch.uarch in
  let p = mono a "xvmaddadp" in
  QCheck.Test.make ~name:"power grows with enabled cores" ~count:8
    QCheck.(int_range 1 7)
    (fun n ->
      let pw k = (Machine.run machine (config a ~cores:k ~smt:1) p).Measurement.power in
      pw (n + 1) > pw n)

let () =
  Alcotest.run "mp_sim"
    [
      ("cache",
       [ Alcotest.test_case "hit after fill" `Quick test_cache_hit_after_fill;
         Alcotest.test_case "LRU eviction" `Quick test_cache_lru_eviction;
         Alcotest.test_case "counters" `Quick test_cache_counters;
         Alcotest.test_case "prefetcher" `Quick test_prefetcher_detects_streams ]);
      ("ipc",
       [ Alcotest.test_case "simple int" `Quick test_ipc_simple_int;
         Alcotest.test_case "fxu" `Quick test_ipc_fxu;
         Alcotest.test_case "mul" `Quick test_ipc_mul;
         Alcotest.test_case "load" `Quick test_ipc_load;
         Alcotest.test_case "load update" `Quick test_ipc_load_update;
         Alcotest.test_case "vsu" `Quick test_ipc_vsu;
         Alcotest.test_case "vector store" `Quick test_ipc_vec_store;
         Alcotest.test_case "chain limit" `Quick test_dependency_chain_limits_ipc;
         Alcotest.test_case "distance ILP" `Quick test_dependency_distance_parallelism;
         Alcotest.test_case "smt throughput" `Quick test_smt_increases_core_throughput;
         Alcotest.test_case "smt latency hiding" `Quick test_smt_helps_latency_bound;
         Alcotest.test_case "memory latency" `Quick test_memory_latency_lowers_ipc ]);
      ("measurement",
       [ Alcotest.test_case "counters consistent" `Quick test_counters_consistent;
         Alcotest.test_case "memory counters" `Quick test_memory_counters;
         Alcotest.test_case "pmc read" `Quick test_pmc_read_interface;
         Alcotest.test_case "determinism" `Quick test_measurement_determinism;
         Alcotest.test_case "power orderings" `Quick test_power_orderings;
         Alcotest.test_case "power vs cores" `Quick test_power_scales_with_cores;
         Alcotest.test_case "smt overhead" `Quick test_smt_power_overhead;
         Alcotest.test_case "zero data" `Quick test_zero_data_reduces_power;
         Alcotest.test_case "bandwidth contention" `Quick test_bandwidth_contention;
         Alcotest.test_case "phases" `Quick test_run_phases;
         Alcotest.test_case "phases validation" `Quick test_phases_validation;
         Alcotest.test_case "hetero validation" `Quick test_heterogeneous_validation;
         Alcotest.test_case "hetero mix" `Quick test_heterogeneous_mix;
         Alcotest.test_case "hetero determinism" `Quick test_heterogeneous_determinism;
         Alcotest.test_case "smt fairness" `Quick test_smt_fairness;
         Alcotest.test_case "counter arithmetic" `Quick test_counter_arithmetic;
         Alcotest.test_case "power trace" `Quick test_power_trace_properties;
         Alcotest.test_case "total threads" `Quick test_total_threads;
         Alcotest.test_case "sensor seeds" `Quick test_seed_changes_sensor;
         Alcotest.test_case "seed-independent kernels" `Quick
           test_seed_independent_identical;
         QCheck_alcotest.to_alcotest prop_power_monotone_in_cores ]);
      ("batch",
       [ Alcotest.test_case "hetero batch = serial" `Quick
           test_hetero_batch_matches_serial;
         Alcotest.test_case "multi-process = serial" `Quick
           test_procs_batch_matches_serial ]);
      ("period skipping",
       [ Alcotest.test_case "detects and skips" `Quick test_period_detects_and_skips;
         Alcotest.test_case "compute kernels" `Quick test_period_equiv_compute;
         Alcotest.test_case "warmup/measure windows" `Quick test_period_equiv_windows;
         Alcotest.test_case "branch patterns" `Quick test_period_equiv_branches;
         Alcotest.test_case "memory streams" `Quick test_period_equiv_memory;
         Alcotest.test_case "heterogeneous" `Quick test_period_equiv_heterogeneous;
         Alcotest.test_case "aperiodic fallback" `Quick test_period_aperiodic_fallback;
         Alcotest.test_case "non-dyadic kernels" `Quick test_period_nondyadic;
         Alcotest.test_case "training suite" `Slow test_period_training_suite ]);
      ("replay",
       [ Alcotest.test_case "bit-identity across SMT" `Quick
           test_replay_bit_identity;
         Alcotest.test_case "memory programs and seeds" `Quick
           test_replay_memory;
         Alcotest.test_case "window extrapolation" `Quick
           test_replay_window_extrapolation;
         Alcotest.test_case "replay disabled" `Quick test_replay_disabled;
         Alcotest.test_case "name-insensitive keys" `Quick
           test_replay_name_insensitive;
         QCheck_alcotest.to_alcotest prop_replay_key_one_edit ]);
      ("disk cache",
       [ Alcotest.test_case "round trip" `Quick test_disk_cache_roundtrip;
         Alcotest.test_case "shared across seeds" `Quick
           test_disk_cache_shared_across_seeds;
         Alcotest.test_case "corrupt entries skipped" `Quick
           test_disk_cache_corrupt_skipped;
         Alcotest.test_case "concurrent writers" `Quick
           test_disk_cache_concurrent_writers;
         Alcotest.test_case "replay store concurrent writers" `Quick
           test_replay_store_concurrent_writers;
         Alcotest.test_case "single flight" `Quick test_single_flight;
         Alcotest.test_case "gc size bound" `Quick test_cache_gc;
         Alcotest.test_case "MP_CACHE_MAX_MB" `Quick test_cache_gc_env;
         Alcotest.test_case "shard layout + legacy migration" `Quick
           test_disk_cache_shard_layout_and_migration ]);
      ("structural keys",
       [ Alcotest.test_case "equivalence classes" `Quick
           test_key_equivalence_classes;
         Alcotest.test_case "precomputed hash consistent" `Quick
           test_struct_hash_precomputed ]);
      ("batch dedup",
       [ Alcotest.test_case "scatter bit-identical" `Quick
           test_batch_dedup_scatter;
         Alcotest.test_case "hetero scatter bit-identical" `Quick
           test_hetero_batch_dedup_scatter ]);
    ]
