type t = Gpr of int | Fpr of int | Vsr of int | Cr_field of int | Ctr

let rank = function
  | Gpr _ -> 0
  | Fpr _ -> 1
  | Vsr _ -> 2
  | Cr_field _ -> 3
  | Ctr -> 4

let index = function
  | Gpr i | Fpr i | Vsr i | Cr_field i -> i
  | Ctr -> 0

let compare a b =
  match Stdlib.compare (rank a) (rank b) with
  | 0 -> Stdlib.compare (index a) (index b)
  | c -> c

let equal a b = compare a b = 0

let to_string = function
  | Gpr i -> Printf.sprintf "r%d" i
  | Fpr i -> Printf.sprintf "f%d" i
  | Vsr i -> Printf.sprintf "vs%d" i
  | Cr_field i -> Printf.sprintf "cr%d" i
  | Ctr -> "ctr"

let pp ppf r = Format.pp_print_string ppf (to_string r)

let class_of = function
  | Gpr _ -> Mp_isa.Instruction.Gpr
  | Fpr _ -> Mp_isa.Instruction.Fpr
  | Vsr _ -> Mp_isa.Instruction.Vsr
  | Cr_field _ | Ctr -> Mp_isa.Instruction.Cr

let file_size = function
  | Mp_isa.Instruction.Gpr | Mp_isa.Instruction.Fpr -> 32
  | Mp_isa.Instruction.Vsr -> 64
  | Mp_isa.Instruction.Cr -> 8

let make cls i =
  if i < 0 || i >= file_size cls then invalid_arg "Reg.make: index";
  match cls with
  | Mp_isa.Instruction.Gpr -> Gpr i
  | Mp_isa.Instruction.Fpr -> Fpr i
  | Mp_isa.Instruction.Vsr -> Vsr i
  | Mp_isa.Instruction.Cr -> Cr_field i
