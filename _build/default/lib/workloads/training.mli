(** The Table-2 training suite: the micro-architecture-aware
    micro-benchmark population that trains the bottom-up power model.

    Unit-stressing families sweep IPC targets using the integrated
    GA-based design-space exploration (genome: instruction-mix weights
    plus dependency distance); memory families realise exact hierarchy
    distributions through the analytical cache model with no search at
    all; the random family enriches the population (and calibrates the
    model intercept). *)

type entry = {
  program : Mp_codegen.Ir.t;
  target_ipc : float option;
  achieved_ipc : float;  (** measured on 1 core, SMT1 *)
}

type family = {
  family_name : string;
  units : string;        (** Table 2's "Units stressed" column *)
  description : string;
  entries : entry list;
}

val ipc_family :
  machine:Mp_sim.Machine.t ->
  arch:Mp_codegen.Arch.t ->
  name:string ->
  units:string ->
  description:string ->
  candidates:Mp_isa.Instruction.t list ->
  targets:float list ->
  ?size:int ->
  ?population:int ->
  ?generations:int ->
  unit ->
  family
(** One GA search per target IPC; fitness is negative absolute IPC
    error measured on the machine (1 core, SMT1). *)

val memory_family :
  machine:Mp_sim.Machine.t ->
  arch:Mp_codegen.Arch.t ->
  name:string ->
  description:string ->
  loads_only:bool ->
  distribution:(Mp_uarch.Cache_geometry.level * float) list ->
  count:int ->
  ?size:int ->
  unit ->
  family
(** [count] seeds of a random load(/store) mix bound to the
    distribution by the analytical model. *)

val random_family :
  machine:Mp_sim.Machine.t ->
  arch:Mp_codegen.Arch.t ->
  count:int ->
  ?size:int ->
  unit ->
  family
(** Random micro-benchmarks: random usable-instruction mix, random
    dependency mode, random memory distribution. *)

val table2 :
  machine:Mp_sim.Machine.t ->
  arch:Mp_codegen.Arch.t ->
  ?quick:bool ->
  unit ->
  family list
(** The full paper suite (21 families, ≈590 benchmarks). [quick]
    shrinks sweeps and counts by ~4x for tests. *)

val all_entries : family list -> entry list
