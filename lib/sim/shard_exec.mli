(** Sharded multi-process and multi-host measurement execution — the
    process-level fan-out above {!Mp_util.Parallel}'s domain pool.

    A coordinator shards a (deduplicated) measurement batch across a
    mixed pool of workers: {e subprocesses} (re-execs of the current
    executable, flagged by [MP_SHARD_WORKER], driven over pipes by
    {!Mp_util.Procpool}) and {e remote peers} (the same executable
    running [microprobe worker --listen], driven over TCP by
    {!Mp_util.Netpool}). Jobs are placed by their programs' structural
    hashes, so the same structural program always lands on the same
    worker — that worker's replay table and warm cache accumulate
    exactly the records the program will ask for again; placement
    depends only on the slot count, never on a slot's transport.
    Results stream back and are scattered positionally; execution is
    bit-identical to in-process evaluation (measurements are
    deterministic given the job, and {!Power_sim} sums energies in
    opcode-name order, so a worker's independent intern history cannot
    reorder a float sum).

    {2 Wire protocol}

    Length-prefixed [Marshal] frames ({!Mp_util.Transport} owns the
    codec; pipes and sockets speak the identical format). Requests
    carry the sender's {!Measurement_cache.namespace} — schema version
    plus a digest of the executable, the same guard the disk cache
    uses — and are written with [Marshal.Closures] (the uarch's
    [resources] field is a closure), which is only sound between
    identical binaries: the self-exec guarantees it for subprocesses,
    and TCP peers additionally prove it at connect time by exchanging a
    handshake frame carrying the namespace (a mismatched peer is
    rejected before any closure-bearing frame is decoded; the
    namespace is still re-checked per request on both ends). Workers
    inherit [MP_CACHE_DIR], so the sharded disk cache and the replay
    store are the merge point: every worker writes through with the
    same tmp+rename atomicity, and a campaign's second lap is warm
    regardless of which process measured first.

    {2 Crash tolerance}

    A worker that crashes, writes garbage, or exceeds
    [MP_PROC_TIMEOUT_S] is reaped; {!run_jobs} returns [None] for its
    shard's positions and the caller ({!Machine.run_batch}) re-runs
    exactly those jobs in its own domain pool — a dying worker degrades
    to a slower batch, never a failed or wrong one. The next dispatch
    respawns a subprocess slot transparently; a remote slot reconnects
    with capped backoff (the worker process itself is out of our
    hands). *)

(** Everything needed to reconstruct an equivalent [Machine.t] in the
    worker (the worker memoizes machines per spec, so consecutive
    batches reuse warm opmaps). *)
type machine_spec = {
  ms_seed : int;
  ms_cache : bool;
  ms_replay : bool;
  ms_uarch : Mp_uarch.Uarch_def.t;
}

type job = {
  j_config : Mp_uarch.Uarch_def.config;
  j_programs : Mp_codegen.Ir.t list;
      (** one element: homogeneous deployment (replicated over SMT
          threads); [smt] elements: heterogeneous per-thread programs *)
  j_cost : float;
      (** scheduling hint, forwarded so the worker's domain pool also
          starts heaviest-first *)
}

type request = {
  rq_ns : string;
  rq_chunk : int;
      (** echoed back verbatim in {!response.rs_chunk}: with pipelined
          and speculated dispatch, responses are matched by tag, never
          by arrival order alone *)
  rq_warmup : int;
  rq_measure : int;
  rq_period : bool option;
  rq_spec : machine_spec;
  rq_jobs : job array;
}

type response = {
  rs_ns : string;
  rs_chunk : int;
  rs_results : (Measurement.t array, string) result;
}

(** {2 Knobs} *)

val env_procs : unit -> int
(** [MP_PROCS] parsed: [0] (the default, and anything unparsable) means
    in-process execution, unchanged behavior; [N] means a pool of [N]
    workers; ["auto"] picks [detected_cores / pool_size] (at least 1).
    Always [0] inside a worker process — workers never spawn process
    pools of their own. *)

val env_timeout_s : unit -> float
(** [MP_PROC_TIMEOUT_S] parsed as a positive number of seconds per
    shard exchange (default 300). A worker that exceeds it is treated
    as crashed. *)

val env_hosts : unit -> (string * int) list
(** [MP_HOSTS] parsed: a comma-separated list of [host:port] remote
    workers (the split is on the last colon, so bare IPv6 literals
    work); entries that don't parse are dropped. Always [[]] inside a
    worker process — remote workers never chain to further remotes. *)

val parse_hosts : string -> (string * int) list
(** The parser under {!env_hosts}, exposed for the CLI and tests. *)

(** How a batch is spread over the pool (see {!run_jobs}). *)
type sched = Static | Dynamic

val env_sched : unit -> sched
(** [MP_SHARD_SCHED] parsed: [static] selects the original
    one-frame-per-slot barrier; anything else (including unset) selects
    the work-conserving dynamic scheduler. *)

val default_inflight : int
(** 2 — one chunk computing, one in the pipe. *)

val env_inflight : unit -> int
(** [MP_INFLIGHT] parsed: chunk frames kept in flight per slot under
    the dynamic scheduler, clamped to [1..64] (default
    {!default_inflight}; [1] disables pipelining). Workers serve one
    request at a time, so extra frames wait in the transport buffer —
    their transfer overlaps the previous chunk's compute. *)

(** What an idle slot does once the shared queue is empty but chunks
    are still outstanding elsewhere. [Spec_force] is a test hook:
    duplicate eagerly whenever a slot merely has spare window,
    guaranteeing duplicate completions so the first-result-wins merge
    is exercised deterministically. *)
type speculate = Spec_off | Spec_on | Spec_force

val env_speculate : unit -> speculate
(** [MP_SPECULATE] parsed: [off]/[0]/[false] → [Spec_off], [force] →
    [Spec_force], anything else (including unset) → [Spec_on]. *)

val default_chunk_jobs : jobs:int -> slots:int -> inflight:int -> int
(** The chunk-size heuristic under the dynamic scheduler: jobs per
    chunk such that each slot's pipeline window refills about four
    times over a balanced batch ([jobs / (slots * inflight * 4)], at
    least 1) — enough granularity for fast slots to drain a skewed
    shard, coarse enough to amortize framing. *)

(** {3 Per-slot telemetry}

    Cumulative per endpoint label ([proc:N] or [host:port]) over every
    dynamically-scheduled batch in the process. *)

type slot_stat = {
  sl_jobs : int;  (** jobs whose first-accepted result came from here *)
  sl_chunks : int;  (** chunks whose first-accepted result came from here *)
  sl_speculated : int;  (** duplicate chunk copies dispatched to this slot *)
  sl_cancelled : int;
      (** completions discarded because a sibling's copy won *)
  sl_busy_s : float;  (** wall time with at least one chunk in flight here *)
  sl_wall_s : float;  (** wall time of the batches this slot took part in *)
}

val slot_stats : unit -> (string * slot_stat) list
(** Sorted by label. Empty until a dynamic batch has run. *)

val reset_slot_stats : unit -> unit

val chunks_speculated : unit -> int
(** Sum of [sl_speculated] over all slots. *)

val chunks_cancelled : unit -> int
(** Sum of [sl_cancelled] over all slots. *)

val in_worker_process : unit -> bool
(** True when this process was spawned as a shard worker (pipe or TCP)
    or is currently serving remote coordinators via {!serve}. *)

val shard_index : shards:int -> Mp_codegen.Ir.t list -> int
(** The placement function: an FNV fold of the per-thread programs'
    {!Mp_codegen.Ir.struct_hash} values, mod [shards]. Exposed pure so
    tests and the bench harness can predict job spread. *)

(** {2 Worker side} *)

val install_executor : (request -> Measurement.t array) -> unit
(** Install the function that actually runs a request's jobs.
    {!Machine} calls this from its module initializer — injection
    instead of a direct call breaks the dependency cycle (the
    coordinator lives below Machine, the executor needs Machine). *)

val maybe_become_worker : unit -> unit
(** If this process carries [MP_SHARD_WORKER=1]: dup the protocol fds,
    redirect stdout to stderr (stray prints must not corrupt frames),
    serve request frames until EOF, then [exit 0]. If it carries
    [MP_NET_WORKER] (["port"] or ["host:port"]): {!serve} on that
    address, then [exit 0]. Never returns in a worker process; a no-op
    otherwise. Called at [Machine] module-init, after the executor is
    installed. *)

val serve : ?host:string -> port:int -> unit -> unit
(** Run this process as a persistent TCP worker: bind [host:port]
    (default [0.0.0.0], [SO_REUSEADDR]), accept one coordinator at a
    time, require the namespace handshake on each connection, then run
    the same frame loop the pipe worker runs. SIGTERM/SIGINT request a
    graceful drain: an in-flight request finishes and its response is
    delivered, then [serve] returns (within 0.25 s when idle). The
    process must not fan out while serving ({!env_procs}/{!env_hosts}
    report 0/[[]] for its lifetime). *)

val spawn_worker :
  ?env:(string * string) list -> ?host:string -> ?ready_timeout_s:float ->
  port:int -> unit -> int
(** Spawn a loopback TCP worker — a re-exec of [Sys.executable_name]
    with [MP_NET_WORKER] set — wait until [host:port] (default
    [127.0.0.1]) accepts connections, and return its pid. Raises
    [Failure] (after killing the child) if the port is not accepting
    within [ready_timeout_s] (default 30). Used by the bench harness
    and tests; the caller owns the pid (SIGTERM + waitpid to stop
    it). *)

(** {2 Coordinator side} *)

type pool

val create_pool :
  ?env:(string * string) list -> ?timeout_s:float ->
  ?hosts:(string * int) list -> int -> pool
(** A mixed pool: [n] worker subprocesses (re-execs of
    [Sys.executable_name]; none when [n = 0]) in slots [0..n-1],
    followed by one TCP peer per [hosts] entry. [env] adds environment
    overrides for the subprocess workers — the bench harness uses
    [("MP_POOL_SIZE", d)] to control each worker's domain count; the
    worker flag, [MP_PROCS=0] and [MP_HOSTS=""] are always set (remote
    peers bring their own environment). [timeout_s] defaults to
    {!env_timeout_s}. *)

val pool_size : pool -> int
(** Local + remote slots — the [shards] the placement fold sees. *)

val local_size : pool -> int

val remote_size : pool -> int

val procpool : pool -> Mp_util.Procpool.t
(** The pipe transport, exposed for tests (crash injection via
    {!Mp_util.Procpool.kill}) and telemetry. Raises [Invalid_argument]
    when the pool has no local workers. *)

val netpool : pool -> Mp_util.Netpool.t option
(** The socket transport, when the pool has remote peers. *)

val shutdown_pool : pool -> unit
(** Shut down subprocess workers and close every remote connection.
    Idempotent. *)

val run_jobs :
  pool ->
  spec:machine_spec ->
  warmup:int ->
  measure:int ->
  ?period:bool ->
  ?sched:sched ->
  ?chunk_jobs:int ->
  ?inflight:int ->
  ?speculate:speculate ->
  job list ->
  Measurement.t option array
(** Run the jobs on the pool and scatter results back positionally;
    every parameter that is not given falls back to its [MP_*] knob.

    Under [Static], each slot's {!shard_index} bucket travels as one
    request, every shard is sent before any response is read, and the
    batch takes as long as its slowest shard. A slot lost to a crash,
    timeout, garbage frame, or namespace mismatch leaves [None] at its
    bucket's positions.

    Under [Dynamic] (the default), each bucket is split into chunks of
    [chunk_jobs] ({!default_chunk_jobs} when omitted) that still
    {e prefer} their affinity slot — warm replay/cache state keeps
    accruing where placement always put it — but dispatch is
    work-conserving: every live slot keeps up to [inflight] chunk
    frames outstanding, completions refill from the slot's own queue,
    then from re-queued chunks of dead slots, then by stealing from
    the longest sibling queue. Once queues are dry, idle slots
    re-dispatch the oldest outstanding chunk ([speculate]) and the
    first response wins — a straggler or silently-dead slot no longer
    gates the batch, and a crashed slot's chunks re-enter the queue
    instead of falling back to the coordinator. [None] positions
    remain only for chunks no live slot could complete (deterministic
    executor failure, unmarshalable request, or every slot dead).

    Either way the result is bit-identical to in-process execution,
    and dispatches are serialized process-wide (one conversation per
    slot at a time). *)

(** {2 The shared pool} *)

val get_pool : ?hosts:(string * int) list -> int -> pool option
(** The process-wide pool, created on first use and grown (never
    shrunk) to at least [n] local workers; [None] when spawning
    failed. When the requested [hosts] differ from the live pool's the
    pool is replaced (shard placement depends on the slot count, so a
    stale topology must not be served). Shut down at exit. *)

val global_size : unit -> int
(** Local workers in the shared pool ([0] when it was never created) —
    the [procs_effective] harness metric. *)

val global_remote_size : unit -> int
(** Remote peers in the shared pool — the [hosts_effective] harness
    metric. *)

val shutdown_global : unit -> unit
(** Shut down the shared pool now — subprocesses and remote
    connections both; idempotent. Also registered [at_exit]. *)
