lib/codegen/reg_alloc.ml: Array Instruction Mp_isa Reg
