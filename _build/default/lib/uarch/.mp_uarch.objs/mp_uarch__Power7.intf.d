lib/uarch/power7.mli: Mp_isa Uarch_def
