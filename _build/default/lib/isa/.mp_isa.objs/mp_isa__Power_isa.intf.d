lib/isa/power_isa.mli: Isa_def
