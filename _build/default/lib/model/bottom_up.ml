open Mp_sim
open Mp_uarch

type style = Joint | Sequential

type t = {
  weights : float array;
  intercept1 : float;
  smt_effect : float;
  cmp_effect : float;
  uncore : float;
  style : style;
}

let dyn_chip weights (m : Measurement.t) =
  Features.dot weights (Features.chip_sum m)

(* Step 1, Joint: non-negative LS over [x | 1] on the SMT1 data. *)
let fit_joint samples =
  let rows =
    List.map
      (fun (m : Measurement.t) ->
        let x = Features.chip_sum m in
        Array.append x [| 1.0 |])
      samples
  in
  let y = Array.of_list (List.map (fun (m : Measurement.t) -> m.Measurement.power) samples) in
  let beta = Mp_util.Matrix.nnls (Mp_util.Matrix.of_arrays (Array.of_list rows)) y in
  (Array.sub beta 0 Features.count, beta.(Features.count))

(* Step 1, Sequential: regress one component at a time on the samples
   it dominates, subtracting what previous components explain. *)
let fit_sequential samples =
  let n = Features.count in
  let xs =
    List.map (fun (m : Measurement.t) -> Features.chip_sum m) samples
  in
  let ys = List.map (fun (m : Measurement.t) -> m.Measurement.power) samples in
  let weights = Array.make n 0.0 in
  (* base intercept estimate: the least-active sample *)
  let base =
    List.fold_left2
      (fun acc x y ->
        let act = Array.fold_left ( +. ) 0.0 x in
        match acc with
        | Some (a, _) when a <= act -> acc
        | _ -> Some (act, y))
      None xs ys
    |> function Some (_, y) -> y | None -> invalid_arg "Bottom_up: no data"
  in
  let order = [ 0; 1; 2; 3; 4; 5; 6 ] in
  List.iter
    (fun j ->
      (* dominated-by-j: feature j explains most of the not-yet-modelled
         activity (components after j in the order) *)
      let explained = List.filteri (fun i _ -> i < j) order in
      ignore explained;
      let selected =
        List.filter_map
          (fun (x, y) ->
            let later =
              List.fold_left
                (fun acc k -> if k > j then acc +. x.(k) else acc)
                0.0 order
            in
            if x.(j) > 0.05 && later < 0.25 *. x.(j) then Some (x, y) else None)
          (List.combine xs ys)
      in
      match selected with
      | [] -> ()
      | sel ->
        (* 1D regression of the unexplained residual against feature j *)
        let pts =
          List.map
            (fun (x, y) ->
              let known = ref 0.0 in
              for k = 0 to j - 1 do
                known := !known +. (weights.(k) *. x.(k))
              done;
              (x.(j), y -. base -. !known))
            sel
        in
        let sx = List.fold_left (fun a (x, _) -> a +. x) 0.0 pts in
        let sy = List.fold_left (fun a (_, y) -> a +. y) 0.0 pts in
        let sxx = List.fold_left (fun a (x, _) -> a +. (x *. x)) 0.0 pts in
        let sxy = List.fold_left (fun a (x, y) -> a +. (x *. y)) 0.0 pts in
        let m = float_of_int (List.length pts) in
        let denom = (m *. sxx) -. (sx *. sx) in
        if Float.abs denom > 1e-9 then
          weights.(j) <- Float.max 0.0 (((m *. sxy) -. (sx *. sy)) /. denom))
    order;
  (* calibrate the intercept as the mean unexplained power *)
  let intercept =
    Mp_util.Stats.mean
      (Array.of_list
         (List.map2 (fun x y -> y -. Features.dot weights x) xs ys))
  in
  (weights, intercept)

let check_config name pred samples =
  List.iter
    (fun (m : Measurement.t) ->
      if not (pred m.Measurement.config) then
        invalid_arg (Printf.sprintf "Bottom_up.train: %s has wrong config" name))
    samples

let train ?(style = Joint) ~baseline ~smt1 ~smt_on ~multi () =
  if smt1 = [] || smt_on = [] || multi = [] then
    invalid_arg "Bottom_up.train: empty training step";
  check_config "smt1"
    (fun c -> c.Uarch_def.cores = 1 && c.Uarch_def.smt = 1)
    smt1;
  check_config "smt_on"
    (fun c -> c.Uarch_def.cores = 1 && c.Uarch_def.smt > 1)
    smt_on;
  let weights, intercept1 =
    match style with
    | Joint -> fit_joint smt1
    | Sequential -> fit_sequential smt1
  in
  (* Step 2: SMT effect = intercept shift with SMT enabled *)
  let smt_intercepts =
    List.map
      (fun (m : Measurement.t) -> m.Measurement.power -. dyn_chip weights m)
      smt_on
  in
  let smt_effect =
    Float.max 0.0 (Mp_util.Stats.mean (Array.of_list smt_intercepts) -. intercept1)
  in
  (* Step 3: residuals vs number of cores *)
  let pts =
    List.map
      (fun (m : Measurement.t) ->
        let n = float_of_int m.Measurement.config.Uarch_def.cores in
        let smt_term =
          if m.Measurement.config.Uarch_def.smt > 1 then smt_effect *. n else 0.0
        in
        let r =
          m.Measurement.power -. intercept1 -. dyn_chip weights m -. smt_term
        in
        (n, r))
      multi
  in
  let mcount = float_of_int (List.length pts) in
  let sx = List.fold_left (fun a (x, _) -> a +. x) 0.0 pts in
  let sy = List.fold_left (fun a (_, y) -> a +. y) 0.0 pts in
  let sxx = List.fold_left (fun a (x, _) -> a +. (x *. x)) 0.0 pts in
  let sxy = List.fold_left (fun a (x, y) -> a +. (x *. y)) 0.0 pts in
  let denom = (mcount *. sxx) -. (sx *. sx) in
  let cmp_effect, uncore =
    if Float.abs denom < 1e-9 then (0.0, sy /. mcount)
    else
      let a = ((mcount *. sxy) -. (sx *. sy)) /. denom in
      let b = (sy -. (a *. sx)) /. mcount in
      (a, b)
  in
  (* Attribution: the workload-independent part is the measured
     deepest-idle baseline; everything else of the constant term is
     uncore. The step-1 intercept absorbed the uncore and one core's
     static share, so the residual intercept [c] re-centres it. *)
  let uncore = intercept1 +. uncore -. baseline in
  { weights; intercept1 = baseline; smt_effect; cmp_effect; uncore; style }

type breakdown = {
  workload_independent : float;
  uncore_part : float;
  cmp_part : float;
  smt_part : float;
  dynamic : float;
}

let decompose t (m : Measurement.t) =
  let n = float_of_int m.Measurement.config.Uarch_def.cores in
  {
    workload_independent = t.intercept1;
    uncore_part = t.uncore;
    cmp_part = t.cmp_effect *. n;
    smt_part =
      (if m.Measurement.config.Uarch_def.smt > 1 then t.smt_effect *. n else 0.0);
    dynamic = dyn_chip t.weights m;
  }

let breakdown_total b =
  b.workload_independent +. b.uncore_part +. b.cmp_part +. b.smt_part
  +. b.dynamic

let predict t m = breakdown_total (decompose t m)

let pp ppf t =
  Format.fprintf ppf
    "@[<v>bottom-up model (%s):@ weights: %s@ workload-independent %.2f, uncore %.2f, CMP %.3f/core, SMT %.3f/core@]"
    (match t.style with Joint -> "joint" | Sequential -> "sequential")
    (String.concat ", "
       (Array.to_list
          (Array.mapi
             (fun i w -> Printf.sprintf "%s=%.3f" Features.names.(i) w)
             t.weights)))
    t.intercept1 t.uncore t.cmp_effect t.smt_effect
