(** Max-power stressmark generation (paper Section 6).

    The search looks for the sequence of [length] (default 6)
    instructions that, replicated in an endless loop and executed on
    every hardware thread, maximises chip power. Three candidate-
    selection strategies are compared, as in the paper:

    - {e Expert manual}: a few hand-crafted orderings of
      mullw/xvmaddadp/lxvd2x — what a micro-architecture expert writes
      without tool support;
    - {e Expert DSE}: exhaustive exploration of all sequences over the
      expert's instruction choice;
    - {e MicroProbe}: exhaustive exploration over the instructions the
      framework selects automatically — the highest IPC×EPI instruction
      of each functional-unit category from the bootstrap data. *)

type evaluation = {
  sequence : string list;  (** mnemonics, loop order *)
  smt : int;
  power : float;
  core_ipc : float;
}

type set_summary = {
  set_name : string;
  evaluations : evaluation list;
  min_power : float;
  mean_power : float;
  max_power : float;
  best : evaluation;
}

val program_of_sequence :
  arch:Mp_codegen.Arch.t ->
  ?size:int ->
  name:string ->
  Mp_isa.Instruction.t list ->
  Mp_codegen.Ir.t
(** The canonical stressmark skeleton: the sequence replicated through
    a [size]-instruction endless loop (default 1024), no register
    dependencies, random data, memory operations pinned to L1. *)

val expert_instructions : Mp_codegen.Arch.t -> Mp_isa.Instruction.t list
(** mullw, xvmaddadp, lxvd2x — wide-datapath, high-throughput picks for
    FXU/VSU/LSU, as the paper's expert chooses. *)

val expert_manual_sequences : Mp_codegen.Arch.t -> Mp_isa.Instruction.t list list
(** Hand-crafted orderings (balanced round-robin and clustered). *)

val microprobe_instructions :
  isa:Mp_isa.Isa_def.t ->
  Mp_epi.Bootstrap.props list ->
  Mp_isa.Instruction.t list
(** The automatic selection: per functional-unit category (FXU / LSU /
    VSU), the bootstrapped instruction with the highest IPC×EPI
    product. *)

val evaluate_set :
  machine:Mp_sim.Machine.t ->
  arch:Mp_codegen.Arch.t ->
  name:string ->
  ?size:int ->
  ?smt_modes:int list ->
  ?pool:Mp_util.Parallel.t ->
  Mp_isa.Instruction.t list list ->
  set_summary
(** Measure every sequence on 8 cores in each SMT mode (default all
    three) and summarise. All (sequence, SMT) measurements are fanned
    out as one {!Mp_sim.Machine.run_batch} across [pool] (the global
    pool by default). *)

val exhaustive_sequences :
  Mp_isa.Instruction.t list -> length:int -> Mp_isa.Instruction.t list list
(** All [length]-long sequences over the candidate instructions. *)

type hetero_evaluation = {
  assignment : string list;  (** one building-block name per hardware thread *)
  power : float;
}

val heterogeneous_search :
  machine:Mp_sim.Machine.t ->
  arch:Mp_codegen.Arch.t ->
  ?size:int ->
  ?smt:int ->
  ?pool:Mp_util.Parallel.t ->
  homogeneous_best:Mp_isa.Instruction.t list ->
  unit ->
  hetero_evaluation list * hetero_evaluation
(** The extension the paper's Section 6 defers to future work: search
    per-thread {e heterogeneous} assignments. Building blocks: the
    homogeneous max-power loop ("compute"), a main-memory streaming
    loop ("mem") and an L1-resident load loop ("l1"). Every multiset
    assignment of blocks to the [smt] (default 4) threads is evaluated
    on 8 cores, fanned out as one
    {!Mp_sim.Machine.run_heterogeneous_batch} over [pool] (results
    bit-identical to the serial loop); returns all evaluations (sorted
    best-first) and the best. Heterogeneous mixes can beat the
    homogeneous stressmark when memory-interface power is on the
    table, as MAMPO observed. *)

type order_spread = {
  multiset : string list;
  n_orders : int;
  min_power : float;
  max_power : float;
  spread_pct : float;  (** (max−min)/min × 100 *)
}

val order_spread :
  machine:Mp_sim.Machine.t ->
  arch:Mp_codegen.Arch.t ->
  ?size:int ->
  ?smt:int ->
  ?pool:Mp_util.Parallel.t ->
  Mp_isa.Instruction.t list ->
  order_spread
(** Fix an instruction multiset and measure every distinct ordering
    (batched across [pool]) — the paper's observation that order alone
    moves power by up to ~17%. *)

type ga_summary = {
  ga_best : evaluation;
  ga_evaluations : int;  (** fitness evaluations the GA requested *)
  ga_cache_hits : int;  (** measurement-cache hits during the search *)
  ga_cache_misses : int;  (** simulations actually executed *)
}

val ga_search :
  machine:Mp_sim.Machine.t ->
  arch:Mp_codegen.Arch.t ->
  ?size:int ->
  ?smt:int ->
  ?seed:int ->
  ?population:int ->
  ?generations:int ->
  ?dedup:bool ->
  ?pool:Mp_util.Parallel.t ->
  candidates:Mp_isa.Instruction.t list ->
  length:int ->
  unit ->
  ga_summary
(** Genetic max-power search over [length]-long sequences of the
    candidate instructions. Each generation is scored as one
    {!Mp_sim.Machine.run_batch}; stressmark names are content-derived,
    so sequences the GA revisits are served from the measurement cache
    — [ga_cache_hits]/[ga_cache_misses] report the split.

    [dedup] (default [true]) additionally memoizes genome→program
    synthesis (elites and re-generated clones skip codegen) and
    collapses duplicate genomes within each generation's batch before
    any simulation ({!Mp_dse.Genetic.search}'s [point_key] plus
    {!Mp_sim.Machine.run_batch}'s [dedup]). The search trajectory and
    the summary are bit-identical with it on or off — fitness is a
    pure function of the genome — so the flag exists for the tests
    that prove exactly that. Note that dedup changes which lookups the
    measurement cache sees, so [ga_cache_hits] is lower with it on
    (collapsed positions never reach the cache). *)
