type t = {
  name : string;
  order : string list;  (* mnemonics in definition order *)
  table : (string, Instruction.t) Hashtbl.t;
}

let name t = t.name

let instructions t = List.map (Hashtbl.find t.table) t.order

let size t = List.length t.order

let find t m = Hashtbl.find_opt t.table m

let find_exn t m =
  match find t m with
  | Some i -> i
  | None -> failwith (Printf.sprintf "Isa_def.find_exn: unknown mnemonic %S" m)

let mem t m = Hashtbl.mem t.table m

let select t pred = List.filter pred (instructions t)

let create ~name instrs =
  let table = Hashtbl.create (List.length instrs * 2) in
  let order =
    List.map
      (fun (i : Instruction.t) ->
        if Hashtbl.mem table i.mnemonic then
          invalid_arg (Printf.sprintf "Isa_def.create: duplicate %S" i.mnemonic);
        Hashtbl.add table i.mnemonic i;
        i.mnemonic)
      instrs
  in
  { name; order; table }

let add t (i : Instruction.t) =
  if mem t i.mnemonic then
    invalid_arg (Printf.sprintf "Isa_def.add: duplicate %S" i.mnemonic);
  create ~name:t.name (instructions t @ [ i ])

let remove t m =
  create ~name:t.name
    (List.filter (fun (i : Instruction.t) -> i.mnemonic <> m) (instructions t))

(* --- text format ------------------------------------------------------- *)

type entry = { mutable fields : (string * string) list; line : int }

let parse_bool line v =
  match String.lowercase_ascii v with
  | "true" | "yes" | "1" -> true
  | "false" | "no" | "0" -> false
  | _ -> failwith (Printf.sprintf "line %d: bad boolean %S" line v)

let parse_int line v =
  match int_of_string_opt v with
  | Some n -> n
  | None -> failwith (Printf.sprintf "line %d: bad integer %S" line v)

let instruction_of_entry e =
  let get k = List.assoc_opt k e.fields in
  let require k =
    match get k with
    | Some v -> v
    | None -> failwith (Printf.sprintf "line %d: missing field %S" e.line k)
  in
  let mnemonic = require "mnemonic" in
  let exec_class =
    match Instruction.exec_class_of_string (require "class") with
    | Some c -> c
    | None -> failwith (Printf.sprintf "line %d: bad class" e.line)
  in
  let form =
    match get "form" with
    | None -> Instruction.X
    | Some f ->
      (match Instruction.form_of_string f with
       | Some f -> f
       | None -> failwith (Printf.sprintf "line %d: bad form %S" e.line f))
  in
  let mem_kind =
    match get "mem" with
    | None -> Instruction.No_mem
    | Some "load" -> Instruction.Load
    | Some "store" -> Instruction.Store
    | Some other -> failwith (Printf.sprintf "line %d: bad mem %S" e.line other)
  in
  let data_class =
    match get "data" with
    | None -> Instruction.Gpr
    | Some d ->
      (match Instruction.reg_class_of_string d with
       | Some c -> c
       | None -> failwith (Printf.sprintf "line %d: bad data class" e.line))
  in
  let geti k default = match get k with None -> default | Some v -> parse_int e.line v in
  let getb k default = match get k with None -> default | Some v -> parse_bool e.line v in
  let imm_bits = geti "imm" 0 in
  Instruction.make ~mnemonic ~exec_class ~mem:mem_kind
    ~update:(getb "update" false) ~algebraic:(getb "algebraic" false)
    ~indexed:(getb "indexed" false) ~data_class ~width:(geti "width" 64)
    ~has_imm:(imm_bits > 0) ~imm_bits:(if imm_bits > 0 then imm_bits else 16)
    ~srcs:(geti "srcs" 2) ~has_dest:(getb "dest" true)
    ~conditional:(getb "conditional" false)
    ~privileged:(getb "privileged" false) ~prefetch:(getb "prefetch" false)
    ~form ~opcode:(geti "opcode" 0) ~xo:(geti "xo" 0)
    ~description:(match get "desc" with None -> "" | Some d -> d)
    ()

let parse text =
  let lines = String.split_on_char '\n' text in
  let isa_name = ref "unnamed" in
  let entries = ref [] in
  let current = ref None in
  let flush () =
    match !current with
    | None -> ()
    | Some e ->
      e.fields <- List.rev e.fields;
      entries := e :: !entries;
      current := None
  in
  try
    List.iteri
      (fun idx raw ->
        let lineno = idx + 1 in
        let line = String.trim raw in
        if line = "" || line.[0] = '#' then ()
        else if line = "[instruction]" then begin
          flush ();
          current := Some { fields = []; line = lineno }
        end
        else
          match String.index_opt line '=' with
          | None -> failwith (Printf.sprintf "line %d: expected key = value" lineno)
          | Some eq ->
            let key = String.trim (String.sub line 0 eq) in
            let value = String.trim (String.sub line (eq + 1) (String.length line - eq - 1)) in
            if key = "isa" then isa_name := value
            else (
              match !current with
              | None ->
                failwith (Printf.sprintf "line %d: field outside [instruction]" lineno)
              | Some e -> e.fields <- (key, value) :: e.fields))
      lines;
    flush ();
    (* [entries] is in reverse order; rev_map restores file order *)
    let instrs = List.rev_map instruction_of_entry !entries in
    Ok (create ~name:!isa_name instrs)
  with
  | Failure msg -> Error msg
  | Invalid_argument msg -> Error msg

let to_text t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "isa = %s\n" t.name);
  List.iter
    (fun (i : Instruction.t) ->
      Buffer.add_string buf "\n[instruction]\n";
      let add k v = Buffer.add_string buf (Printf.sprintf "%s = %s\n" k v) in
      add "mnemonic" i.mnemonic;
      add "class" (Instruction.exec_class_to_string i.exec_class);
      add "form" (Instruction.form_to_string i.form);
      add "opcode" (string_of_int i.opcode);
      if i.xo <> 0 then add "xo" (string_of_int i.xo);
      if i.width <> 64 then add "width" (string_of_int i.width);
      (match i.mem with
       | Instruction.No_mem -> ()
       | Instruction.Load -> add "mem" "load"
       | Instruction.Store -> add "mem" "store");
      if i.update then add "update" "true";
      if i.algebraic then add "algebraic" "true";
      if i.indexed then add "indexed" "true";
      if i.data_class <> Instruction.Gpr then
        add "data" (Instruction.reg_class_to_string i.data_class);
      if i.has_imm then add "imm" (string_of_int i.imm_bits);
      if i.srcs <> 2 then add "srcs" (string_of_int i.srcs);
      if not i.has_dest then add "dest" "false";
      if i.conditional then add "conditional" "true";
      if i.privileged then add "privileged" "true";
      if i.prefetch then add "prefetch" "true";
      if i.description <> "" then add "desc" i.description)
    (instructions t);
  Buffer.contents buf

let pp ppf t =
  Format.fprintf ppf "ISA %s (%d instructions)" t.name (size t)
