(** Design-space construction combinators. *)

val cartesian : 'a list list -> 'a list list
(** All tuples picking one element per dimension. The empty dimension
    list yields [\[\[\]\]]. *)

val sequences : 'a list -> length:int -> 'a list list
(** All length-[length] sequences over the alphabet (k^n points). *)

val combinations_with_repetition : 'a list -> length:int -> 'a list list
(** Multisets of the alphabet, represented as sorted-by-alphabet-order
    lists (C(k+n-1, n) points). *)

val permutations : 'a list -> 'a list list
(** All orderings; duplicates appear when elements repeat. *)

val distinct_permutations : 'a list -> 'a list list
(** Orderings deduplicated by structural equality. *)

val size_sequences : alphabet:int -> length:int -> int
val size_combinations : alphabet:int -> length:int -> int
