examples/quickstart.mli:
