(** Common result shape and evaluation plumbing of the search drivers.

    Every driver takes a scalar [eval] and, optionally, an [eval_batch]
    hook that scores a whole list of points at once. The measurement
    engine implements [eval_batch] with {!Mp_sim.Machine.run_batch}, so
    a driver that groups its candidate points (a GA generation, a
    random-search budget, an exhaustive space) gets pool-parallel,
    memoized evaluation without knowing anything about domains. *)

type 'p evaluation = { point : 'p; score : float }

type 'p result = {
  best : 'p evaluation;
  evaluations : int;
  all : 'p evaluation list;  (** every evaluated point, in evaluation order *)
}

val compare_scores_desc : float -> float -> int
(** Total order, descending, NaN strictly last. *)

val compare_desc : 'p evaluation -> 'p evaluation -> int
(** {!compare_scores_desc} on the scores. *)

val best_of : 'p evaluation list -> 'p evaluation
(** Highest non-NaN score (first among ties; a NaN-scored evaluation
    is returned only when every score is NaN); raises
    [Invalid_argument] on an empty list. *)

val top : int -> 'p evaluation list -> 'p evaluation list
(** The [n] highest-scoring evaluations, best first, NaN last. *)

val eval_list :
  ?key:('p -> string) ->
  ?eval_batch:('p list -> float list) ->
  eval:('p -> float) ->
  'p list ->
  'p evaluation list
(** Score points in order. With [eval_batch], the whole list is scored
    in one call (which must return one score per point, in order —
    raises [Invalid_argument] otherwise); without it, [eval] is applied
    left-to-right.

    With [key], points whose keys collide are scored once and the score
    is scattered back to every duplicate position — sound whenever
    evaluation is a pure function of the key (true for the measurement
    engine: keys are measurement-cache keys and measurements are
    deterministic). The returned evaluations keep each position's own
    [point] value; only the score is shared. *)

val dup_collapsed : unit -> int
(** Process-wide count of positions collapsed onto an earlier duplicate
    by [eval_list ~key]. Monotonic; take deltas for per-run figures. *)
