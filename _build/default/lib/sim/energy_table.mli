(** GROUND TRUTH — the silicon's true energy characteristics.

    This module stands in for the physical power behaviour of the chip.
    It is consumed exclusively by {!Power_sim} to turn simulated
    activity into sensor readings. The characterization libraries
    ({e mp_model}, {e mp_epi}, {e mp_stressmark}) must never read it:
    they may only observe the machine through {!Measurement}, exactly
    as the paper's methods only observe the POWER7 through PMCs and the
    EnergyScale sensor.

    The table deliberately contains effects a linear counter-based
    model cannot capture exactly — per-opcode energy spread invisible
    to unit-level counters, dispatch-bus switching that depends on
    instruction order, a data-dependent switching factor, a mildly
    non-linear CMP/uncore term and dynamic-power saturation — plus
    sensor noise. These produce the few-percent residual errors the
    paper reports on real hardware. *)

type t = {
  opcode_epi : string -> float;
      (** dynamic core energy per issue of an opcode (sensor units/cycle·rate) *)
  level_energy : float array;  (** demand-load energy per source level L1..MEM *)
  store_energy : float;
  dispatch_energy : float;
  transition_energy : string -> string -> float;
      (** energy of an ordered opcode-pair transition on the dispatch
          bus; 0 for equal opcodes, irregular across pairs *)
  idle_power : float;          (** chip power with no activity *)
  uncore_base : float;
  cmp_linear : float;          (** per enabled core *)
  cmp_quad : float;            (** quadratic term (negative: concave) *)
  smt_overhead : float;        (** per core with SMT enabled (any width) *)
  data_scale : float -> float; (** data-activity factor -> energy scale *)
  saturate : float -> float;   (** chip dynamic power -> delivered power *)
  noise_rel : float;           (** relative sensor noise (sigma) *)
  noise_abs : float;           (** absolute sensor noise (sigma) *)
}

val power7 : t
(** The shipped ground truth, calibrated so that the reproduction
    exhibits the paper's qualitative results (Table 3 EPI ordering,
    ~10% stressmark headroom over the SPEC-surrogate maximum, 40%
    zero-data EPI reduction, breakdown shares of Figure 8). *)
