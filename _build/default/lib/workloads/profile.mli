(** Workload activity profiles: the parameter vector from which
    synthetic SPEC-surrogate phases and extreme-case loads are
    generated. *)

type t = {
  simple_int : float;   (** instruction-class weights (relative) *)
  complex_int : float;
  mul : float;
  fp : float;
  vec : float;
  load : float;
  store : float;
  branch_freq : float;  (** fraction of slots turned into conditional branches *)
  taken_ratio : float;
  mem_mix : (Mp_uarch.Cache_geometry.level * float) list;
      (** data-source distribution of the memory instructions *)
  dep : Mp_codegen.Builder.dep_mode;  (** ILP model *)
}

val balanced : t
(** A mid-of-the-road reference profile. *)

val perturb : Mp_util.Rng.t -> strength:float -> t -> t
(** Randomly scale the class weights by up to ±[strength] (relative)
    and jitter the memory mix — used to derive per-phase variation. *)

val program :
  arch:Mp_codegen.Arch.t ->
  name:string ->
  seed:int ->
  ?size:int ->
  t ->
  Mp_codegen.Ir.t
(** Generate one endless-loop micro-benchmark realising the profile
    (default [size] 1024). Weights that are all zero raise. *)
