lib/dse/driver.ml: List
