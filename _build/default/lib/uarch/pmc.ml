type id =
  | PM_RUN_CYC
  | PM_INST_CMPL
  | PM_INST_DISP
  | PM_FXU_FIN
  | PM_LSU_FIN
  | PM_VSU_FIN
  | PM_BRU_FIN
  | PM_ST_FIN
  | PM_DATA_FROM_L1
  | PM_DATA_FROM_L2
  | PM_DATA_FROM_L3
  | PM_DATA_FROM_MEM

let all =
  [ PM_RUN_CYC; PM_INST_CMPL; PM_INST_DISP; PM_FXU_FIN; PM_LSU_FIN;
    PM_VSU_FIN; PM_BRU_FIN; PM_ST_FIN; PM_DATA_FROM_L1; PM_DATA_FROM_L2;
    PM_DATA_FROM_L3; PM_DATA_FROM_MEM ]

let name = function
  | PM_RUN_CYC -> "PM_RUN_CYC"
  | PM_INST_CMPL -> "PM_INST_CMPL"
  | PM_INST_DISP -> "PM_INST_DISP"
  | PM_FXU_FIN -> "PM_FXU_FIN"
  | PM_LSU_FIN -> "PM_LSU_FIN"
  | PM_VSU_FIN -> "PM_VSU_FIN"
  | PM_BRU_FIN -> "PM_BRU_FIN"
  | PM_ST_FIN -> "PM_ST_FIN"
  | PM_DATA_FROM_L1 -> "PM_DATA_FROM_L1"
  | PM_DATA_FROM_L2 -> "PM_DATA_FROM_L2"
  | PM_DATA_FROM_L3 -> "PM_DATA_FROM_L3"
  | PM_DATA_FROM_MEM -> "PM_DATA_FROM_MEM"

let description = function
  | PM_RUN_CYC -> "Run cycles"
  | PM_INST_CMPL -> "Instructions completed"
  | PM_INST_DISP -> "Instructions dispatched"
  | PM_FXU_FIN -> "Fixed-point unit operations finished"
  | PM_LSU_FIN -> "Load-store unit operations finished"
  | PM_VSU_FIN -> "Vector-scalar unit operations finished"
  | PM_BRU_FIN -> "Branch unit operations finished"
  | PM_ST_FIN -> "Store operations finished"
  | PM_DATA_FROM_L1 -> "Loads sourced from the L1 data cache"
  | PM_DATA_FROM_L2 -> "Loads sourced from the L2 cache"
  | PM_DATA_FROM_L3 -> "Loads sourced from the L3 cache"
  | PM_DATA_FROM_MEM -> "Loads sourced from main memory"

let of_unit = function
  | Pipe.FXU -> PM_FXU_FIN
  | Pipe.LSU -> PM_LSU_FIN
  | Pipe.VSU -> PM_VSU_FIN
  | Pipe.BRU -> PM_BRU_FIN

let of_level = function
  | Cache_geometry.L1 -> PM_DATA_FROM_L1
  | Cache_geometry.L2 -> PM_DATA_FROM_L2
  | Cache_geometry.L3 -> PM_DATA_FROM_L3
  | Cache_geometry.MEM -> PM_DATA_FROM_MEM

let pp ppf id = Format.pp_print_string ppf (name id)
