lib/sim/cache_sim.ml: Array Cache_geometry List Mp_uarch Uarch_def
