examples/cache_fractions.ml: Arch Array Builder Cache_geometry Instruction List Machine Measurement Microprobe Passes Printf Set_assoc_model String Synthesizer Sys Uarch_def
