(** Performance-monitoring-counter catalogue.

    Mirrors the subset of the POWER7 PMU the paper's power-model
    formulas consume: cycle/instruction counts, per-functional-unit
    finish counts, and data-source counts per memory-hierarchy level. *)

type id =
  | PM_RUN_CYC
  | PM_INST_CMPL
  | PM_INST_DISP
  | PM_FXU_FIN
  | PM_LSU_FIN
  | PM_VSU_FIN
  | PM_BRU_FIN
  | PM_ST_FIN
  | PM_DATA_FROM_L1
  | PM_DATA_FROM_L2
  | PM_DATA_FROM_L3
  | PM_DATA_FROM_MEM

val all : id list
val name : id -> string
val description : id -> string
val of_unit : Pipe.unit_kind -> id
(** The finish counter associated with a functional unit. *)

val of_level : Cache_geometry.level -> id
(** The data-source counter associated with a hierarchy level. *)

val pp : Format.formatter -> id -> unit
