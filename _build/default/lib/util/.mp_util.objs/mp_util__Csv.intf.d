lib/util/csv.mli:
