lib/uarch/pmc.mli: Cache_geometry Format Pipe
