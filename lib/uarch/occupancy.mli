(** Exact rational pipe occupancies (cycles per instruction instance).

    Micro-architecture definitions express pipe throughputs as exact
    rationals — 1.19 cycles/op is [make 119 100] — so the simulator can
    do all busy-time bookkeeping in integer ticks over one common
    denominator and steady-state machine state repeats bit-for-bit for
    every kernel. Values are normalised on construction; structural
    equality is value equality. *)

type t = private { num : int; den : int }

val make : int -> int -> t
(** [make num den] is the rational [num/den], normalised. Raises
    [Invalid_argument] when [num < 0] or [den <= 0]. *)

val of_int : int -> t

val one : t

val num : t -> int

val den : t -> int
(** Always positive; 1 for whole-cycle occupancies. *)

val is_zero : t -> bool

val to_float : t -> float
(** For reporting and float-domain queries ({!Uarch_def.peak_ipc});
    never used in simulator state. *)

val lcm : int -> int -> int

val lcm_den : int -> t -> int
(** [lcm_den acc t] is [lcm acc (den t)] — fold over every occupancy a
    definition can return to get the uarch common denominator. *)

val ticks : t -> den:int -> int
(** The occupancy as integer ticks at resolution [den] ticks per cycle.
    Exact by construction: raises [Invalid_argument] unless [den] is a
    positive multiple of [den t]. *)

val compare : t -> t -> int

val equal : t -> t -> bool

val to_string : t -> string

val pp : Format.formatter -> t -> unit
