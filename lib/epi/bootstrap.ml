open Mp_codegen
open Mp_isa
open Mp_sim

type props = {
  mnemonic : string;
  derived_latency : float;
  throughput : float;
  core_ipc : float;
  epi : float;
  events_per_instr : (Mp_uarch.Pipe.unit_kind * float) list;
  units : Mp_uarch.Pipe.unit_kind list;
}

let ubench ~arch ~size ~deps ~zero_data (ins : Instruction.t) =
  let name =
    Printf.sprintf "boot-%s-%s" ins.Instruction.mnemonic
      (if deps then "dep" else "nodep")
  in
  let synth = Synthesizer.create ~name arch in
  Synthesizer.add_pass synth (Passes.skeleton ~size);
  Synthesizer.add_pass synth (Passes.fill_sequence [ ins ]);
  if Instruction.is_memory ins && not ins.Instruction.prefetch then
    Synthesizer.add_pass synth
      (Passes.memory_model [ (Mp_uarch.Cache_geometry.L1, 1.0) ]);
  Synthesizer.add_pass synth
    (Passes.dependency (if deps then Builder.Fixed 1 else Builder.No_deps));
  let policy =
    if zero_data then Builder.Constant 0L else Builder.Random_values
  in
  Synthesizer.add_pass synth (Passes.init_registers policy);
  Synthesizer.add_pass synth (Passes.init_immediates policy);
  Synthesizer.add_pass synth (Passes.rename name);
  Synthesizer.synthesize ~seed:(Hashtbl.hash name) synth

let stress_threshold = 0.20

let resolve_config ~arch config =
  match config with
  | Some c -> c
  | None -> Mp_uarch.Uarch_def.config ~cores:8 ~smt:1 arch.Arch.uarch

(* A long measured window shrinks the warmup-drain bias on the
   dependent-chain latency estimate. Twice the harness default (16
   iterations): period skipping elides the repeats, so the extra
   iterations cost almost nothing for these single-instruction
   kernels. *)
let measure_iterations = 2 * Machine.default_measure

(* Derive the properties from the two measurements — shared between the
   serial path ({!instruction_props}) and the batched {!run}, so both
   compute bit-identical results from bit-identical measurements. *)
let props_of_measurements ~machine ~config ins (nodep : Measurement.t)
    (dep : Measurement.t) =
  let core = Measurement.core_counters nodep in
  let instrs = Float.max 1.0 core.Measurement.instrs in
  let events =
    [
      (Mp_uarch.Pipe.FXU, core.Measurement.fxu /. instrs);
      (Mp_uarch.Pipe.LSU, (core.Measurement.lsu +. core.Measurement.st) /. instrs);
      (Mp_uarch.Pipe.VSU, core.Measurement.vsu /. instrs);
      (Mp_uarch.Pipe.BRU, core.Measurement.bru /. instrs);
    ]
  in
  let units =
    List.filter_map
      (fun (u, r) -> if r >= stress_threshold then Some u else None)
      events
  in
  let idle = Machine.idle_reading machine config in
  let chip_rate =
    nodep.Measurement.core_ipc
    *. float_of_int config.Mp_uarch.Uarch_def.cores
  in
  let epi =
    if chip_rate <= 0.0 then 0.0
    else Float.max 0.0 (nodep.Measurement.power -. idle) /. chip_rate
  in
  let dep_thread_ipc =
    match Array.to_list dep.Measurement.threads with
    | c :: _ -> Measurement.ipc c
    | [] -> 0.0
  in
  let nodep_thread_ipc =
    match Array.to_list nodep.Measurement.threads with
    | c :: _ -> Measurement.ipc c
    | [] -> 0.0
  in
  {
    mnemonic = ins.Instruction.mnemonic;
    derived_latency = (if dep_thread_ipc > 0.0 then 1.0 /. dep_thread_ipc else 0.0);
    throughput = nodep_thread_ipc;
    core_ipc = nodep.Measurement.core_ipc;
    epi;
    events_per_instr = events;
    units;
  }

let instruction_props ~machine ~arch ?config ?(size = 1024) ?(zero_data = false)
    ins =
  let config = resolve_config ~arch config in
  let run_one deps =
    Machine.run machine ~measure:measure_iterations config
      (ubench ~arch ~size ~deps ~zero_data ins)
  in
  let nodep = run_one false in
  let dep = run_one true in
  props_of_measurements ~machine ~config ins nodep dep

let bootstrappable (i : Instruction.t) =
  (not i.Instruction.privileged)
  && (not (Instruction.is_branch i))
  && (not i.Instruction.prefetch)
  && i.Instruction.exec_class <> Instruction.Nop_op

let run ~machine ~arch ?config ?(size = 1024) ?instructions ?pool () =
  let instrs =
    match instructions with
    | Some l -> l
    | None -> Arch.select arch bootstrappable
  in
  let config = resolve_config ~arch config in
  (* The whole characterization campaign as one batch: the nodep/dep
     pair of every instruction, in exactly the order the serial loop
     would run them — so opcode interning (and therefore every float
     summation order downstream) matches the serial path and the
     results are bit-identical to per-instruction instruction_props. *)
  let jobs =
    List.concat_map
      (fun ins ->
        [ (config, ubench ~arch ~size ~deps:false ~zero_data:false ins);
          (config, ubench ~arch ~size ~deps:true ~zero_data:false ins) ])
      instrs
  in
  let ms = Machine.run_batch ~measure:measure_iterations ?pool machine jobs in
  let rec pair instrs ms =
    match (instrs, ms) with
    | [], [] -> []
    | ins :: instrs, nodep :: dep :: ms ->
      props_of_measurements ~machine ~config ins nodep dep :: pair instrs ms
    | _ -> assert false
  in
  pair instrs ms
