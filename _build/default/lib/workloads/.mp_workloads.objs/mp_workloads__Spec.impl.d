lib/workloads/spec.ml: Arch Builder Hashtbl Ir List Mp_codegen Mp_sim Mp_uarch Mp_util Passes Printf Profile Synthesizer
