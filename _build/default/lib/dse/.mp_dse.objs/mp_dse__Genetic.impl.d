lib/dse/genetic.ml: Array Driver List Mp_util
