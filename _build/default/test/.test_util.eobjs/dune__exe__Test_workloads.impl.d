test/test_workloads.ml: Alcotest Arch Cache_geometry Float Ir List Mp_codegen Mp_isa Mp_sim Mp_uarch Mp_util Mp_workloads Printf Uarch_def
