examples/power_projection.mli:
