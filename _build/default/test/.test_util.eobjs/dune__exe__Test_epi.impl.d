test/test_epi.ml: Alcotest Arch Array Float List Mp_codegen Mp_epi Mp_isa Mp_sim Mp_uarch Pipe QCheck QCheck_alcotest
