lib/codegen/reg_alloc.mli: Mp_isa Reg
