open Mp_uarch
open Mp_codegen

type t = {
  uarch : Uarch_def.t;
  table : Energy_table.t;
  opmap : Core_sim.opmap;
  seed : int;
  cache : Measurement_cache.t option;
  replay : Replay.t option;
  uarch_fp : string;  (* keys machines with different uarchs apart *)
}

let create ?(seed = 2012) ?(cache = true) ?(replay = true) uarch =
  {
    uarch;
    table = Energy_table.power7;
    opmap = Core_sim.opmap_create ();
    seed;
    cache =
      (if cache then
         Some (Measurement_cache.create ?disk:(Measurement_cache.env_disk ()) ())
       else None);
    (* the replay table is process-global (records are keyed on
       everything that distinguishes machines), so machines share
       steady-state work; [~replay:false] opts a machine out — the
       benchmarks' dense reference machines need genuinely dense runs *)
    replay = (if replay && Replay.enabled () then Some (Replay.global ()) else None);
    uarch_fp = Measurement_cache.uarch_fingerprint uarch;
  }

let uarch t = t.uarch

let measurement_cache t = t.cache

(* Intern every opcode a program will deploy, in body order (exactly the
   order [Core_sim.deploy] would), plus the implicit loop-closing bdnz.
   Doing this eagerly — and, for batches, in job order before fanning
   out — keeps id assignment independent of worker scheduling and of
   cache hits, so energy sums (whose float addition order follows ids)
   are bit-identical between serial and pooled runs. *)
let pre_intern t (p : Ir.t) =
  Array.iter
    (fun (i : Ir.instr) ->
      ignore (Core_sim.intern t.opmap i.Ir.op.Mp_isa.Instruction.mnemonic))
    p.Ir.body;
  ignore (Core_sim.intern t.opmap "bdnz")

(* Default measured window, in loop iterations per thread. Exact
   fixed-point pipe arithmetic makes every bounded kernel's steady
   state exactly periodic, so the period detector elides almost all of
   a long window — raising this is nearly free for periodic kernels
   and buys tighter steady-state averages everywhere. One knob: every
   harness path inherits it. *)
let default_measure = 8

(* A measurement depends on the machine seed through exactly two
   channels: address-stream synthesis at deploy time (memory programs)
   and the sensor-noise rng. Programs whose generating passes are all
   seed-independent (see [Passes.seed_independent]) — and which
   therefore carry no memory model — draw their noise from a canonical
   rng instead, so their measurements are bit-identical across machines
   with different seeds and the cache key can drop the seed: warm disk
   caches are shared across seeds. *)
let seed_independent_program (p : Ir.t) =
  p.Ir.memory_distribution = None
  && (not (Ir.has_memory p))
  && List.for_all Passes.seed_independent p.Ir.provenance

let run_rng t (config : Uarch_def.config) ~seeded name =
  let seed = if seeded then t.seed else 0 in
  Mp_util.Rng.create
    (Hashtbl.hash (seed, name, config.Uarch_def.cores, config.Uarch_def.smt))

(* Build per-thread address streams honouring the SMT partition. *)
let deploy_thread t rng (config : Uarch_def.config) tid (p : Ir.t) =
  let mem_instrs = Ir.memory_instructions p in
  let streams_tbl = Hashtbl.create 16 in
  (match (mem_instrs, p.Ir.memory_distribution) with
   | [], _ -> ()
   | _ :: _, None ->
     failwith "Machine: memory instructions without a memory model pass"
   | _ :: _, Some distribution ->
     let plan =
       Mp_mem.Set_assoc_model.create ~uarch:t.uarch
         ~partition:(tid, config.Uarch_def.smt) ~distribution ()
     in
     let targeted =
       List.filter (fun (i : Ir.instr) -> i.Ir.mem_target <> None) mem_instrs
     in
     let targets =
       Array.of_list
         (List.map
            (fun (i : Ir.instr) -> Option.get i.Ir.mem_target)
            targeted)
     in
     let streams =
       Mp_mem.Set_assoc_model.coordinated_streams plan rng ~targets
     in
     List.iteri
       (fun k (i : Ir.instr) ->
         Hashtbl.replace streams_tbl i.Ir.index
           streams.(k).Mp_mem.Set_assoc_model.addresses)
       targeted);
  let streams idx =
    match Hashtbl.find_opt streams_tbl idx with
    | Some a -> a
    | None -> failwith "Machine: no stream prepared for memory instruction"
  in
  Core_sim.deploy ~uarch:t.uarch ~opmap:t.opmap ~streams p

let mem_demand (activity : Core_sim.activity) =
  let cycles = float_of_int (max 1 activity.Core_sim.measured_cycles) in
  float_of_int activity.Core_sim.level_loads.(3) /. cycles

let simulate_many ?(warmup = 1) ?(measure = default_measure) ?period t
    (config : Uarch_def.config) name (per_thread : Ir.t array) =
  let seeded = not (Array.for_all seed_independent_program per_thread) in
  let rng = run_rng t config ~seeded name in
  (* Programs with memory instructions draw their address streams from
     [rng] at deploy time, and the sensor-noise rng continues from that
     phase — so such programs always deploy, replay hit or not, and
     their replay key carries the RNG inputs as a salt. Pure compute
     programs consume no randomness: a replay hit skips their
     deployment entirely and their records are shared across names,
     seeds and core counts. *)
  let consumes_rng = Array.exists Ir.has_memory per_thread in
  let progs =
    lazy
      (Array.init config.Uarch_def.smt (fun tid ->
           deploy_thread t rng config tid per_thread.(tid)))
  in
  if consumes_rng then ignore (Lazy.force progs);
  let salt =
    if consumes_rng then
      Some
        (Printf.sprintf "%d.%s.%d.%d"
           (if seeded then t.seed else 0)
           name config.Uarch_def.cores config.Uarch_def.smt)
    else None
  in
  (* same float fold as Core_sim's daf: per_thread is the per-thread
     program array, so a reified activity carries the identical value *)
  let daf =
    Array.fold_left
      (fun acc (p : Ir.t) -> acc +. Ir.data_activity_factor p)
      0.0 per_thread
    /. float_of_int (Array.length per_thread)
  in
  let run_once ~mem_latency =
    let dense () =
      Core_sim.run_ex ~uarch:t.uarch ~opmap:t.opmap ~mem_latency ~warmup
        ~measure ?period (Lazy.force progs)
    in
    match t.replay with
    | None -> fst (dense ())
    | Some table ->
      let key =
        Replay.key ~uarch:t.uarch_fp ~smt:config.Uarch_def.smt ~warmup
          ~mem_latency ?salt per_thread
      in
      (match Replay.find table ~opmap:t.opmap ~daf ~warmup ~measure key with
       | Some activity -> activity
       | None ->
         let activity, pd = dense () in
         Replay.record table ~opmap:t.opmap ~measure key activity pd;
         activity)
  in
  let activity = run_once ~mem_latency:t.uarch.Uarch_def.mem_latency in
  (* shared memory bandwidth: inflate memory latency when the chip's
     aggregate demand exceeds the sustainable rate, and re-simulate
     (the re-run replays under its own key — the latency component
     differs) *)
  let demand = mem_demand activity *. float_of_int config.Uarch_def.cores in
  let cap = t.uarch.Uarch_def.mem_bw_lines_per_cycle in
  let activity =
    if demand > cap then begin
      let factor = demand /. cap in
      let lat =
        int_of_float (float_of_int t.uarch.Uarch_def.mem_latency *. factor)
      in
      run_once ~mem_latency:lat
    end
    else activity
  in
  (rng, activity)

let simulate ?warmup ?measure ?period t (config : Uarch_def.config) (p : Ir.t) =
  simulate_many ?warmup ?measure ?period t config p.Ir.name
    (Array.make config.Uarch_def.smt p)

let measurement_of t config name rng (activity : Core_sim.activity) =
  let reading =
    Power_sim.sample ~table:t.table ~rng ~config ~opmap:t.opmap ~activity ()
  in
  let instrs =
    Array.fold_left
      (fun acc (c : Measurement.counters) -> acc +. c.Measurement.instrs)
      0.0 activity.Core_sim.threads
  in
  {
    Measurement.config;
    program = name;
    threads = activity.Core_sim.threads;
    core_ipc = instrs /. float_of_int (max 1 activity.Core_sim.measured_cycles);
    power = reading.Power_sim.sensor_mean;
    power_trace = reading.Power_sim.trace;
  }

let cached t ~warmup ~measure config name per_thread compute =
  match t.cache with
  | None -> compute ()
  | Some cache ->
    (* seed-independent jobs drop the seed from the key — their bytes
       are the same on any machine, so warm disk entries are shared
       across seeds *)
    let seed =
      if Array.for_all seed_independent_program per_thread then None
      else Some t.seed
    in
    let key =
      Measurement_cache.key ~uarch:t.uarch_fp ?seed ~config ~warmup
        ~measure ~name per_thread
    in
    Measurement_cache.find_or_add cache key compute

(* [period] is deliberately absent from the cache key: skipped and
   dense runs are bit-identical, so their cache entries are
   interchangeable by construction. *)
let run ?(warmup = 1) ?(measure = default_measure) ?period t config (p : Ir.t) =
  pre_intern t p;
  cached t ~warmup ~measure config p.Ir.name [| p |] (fun () ->
      let rng, activity = simulate ~warmup ~measure ?period t config p in
      measurement_of t config p.Ir.name rng activity)

let run_heterogeneous ?(warmup = 1) ?(measure = default_measure) ?period t
    (config : Uarch_def.config) programs =
  let n = List.length programs in
  if n <> config.Uarch_def.smt then
    invalid_arg
      "Machine.run_heterogeneous: one program per hardware thread required";
  List.iter (pre_intern t) programs;
  let per_thread = Array.of_list programs in
  let name =
    String.concat "|"
      (List.map (fun (p : Ir.t) -> p.Ir.name) programs)
  in
  cached t ~warmup ~measure config name per_thread (fun () ->
      let rng, activity =
        simulate_many ~warmup ~measure ?period t config name per_thread
      in
      measurement_of t config name rng activity)

(* Scheduling cost hint: simulated work scales with enabled threads and
   loop size. Purely a hint — results are order-preserved regardless. *)
let job_cost (config : Uarch_def.config) (ps : Ir.t list) =
  let body =
    List.fold_left (fun acc (p : Ir.t) -> acc + Array.length p.Ir.body) 0 ps
  in
  float_of_int (config.Uarch_def.cores * config.Uarch_def.smt * (body + 1))

(* ----- multi-process sharding -------------------------------------------- *)

let spec t =
  {
    Shard_exec.ms_seed = t.seed;
    ms_cache = t.cache <> None;
    ms_replay = t.replay <> None;
    ms_uarch = t.uarch;
  }

let jobs_recovered_total = Atomic.make 0

let jobs_recovered () = Atomic.get jobs_recovered_total

(* Worker-computed results warm this machine's cache under the same key
   [cached] derives, so later runs and batches hit without resimulating
   what another process already measured. *)
let cache_insert t ~warmup ~measure config name per_thread m =
  match t.cache with
  | None -> ()
  | Some cache ->
    let seed =
      if Array.for_all seed_independent_program per_thread then None
      else Some t.seed
    in
    let key =
      Measurement_cache.key ~uarch:t.uarch_fp ?seed ~config ~warmup ~measure
        ~name per_thread
    in
    Measurement_cache.add cache key m

(* Chunk sizing for the dynamic shard scheduler, from what Machine
   knows at dispatch time: the deduplicated job count, the slot count,
   and the pipeline depth knob. Delegates to the scheduler's own
   heuristic so callers, tests and the bench harness all agree on the
   granularity. *)
let shard_chunk_jobs ~jobs ~slots =
  Shard_exec.default_chunk_jobs ~jobs ~slots
    ~inflight:(Shard_exec.env_inflight ())

(* Dispatch already-deduplicated jobs to the worker pool. Under the
   dynamic scheduler a crashed slot's chunks re-enter the shared queue
   and finish on surviving slots, so positions come back [None] only
   when no worker could run them; those are re-run through
   [in_process] — the coordinator's own domain pool — and
   [jobs_recovered] counts them. A dying worker degrades to a slower
   batch, never a failed or wrong one. *)
let sharded_exec t ~warmup ~measure ?period ?shard_sched ~procs ~hosts
    ~shard_pool ~to_job ~insert ~in_process jobs =
  let sjobs = List.map to_job jobs in
  let slots =
    match shard_pool with
    | Some sp -> Shard_exec.pool_size sp
    | None -> procs + List.length hosts
  in
  let fan_out =
    let width =
      Mp_util.Parallel.effective_width
        (Some (fun (j : Shard_exec.job) -> j.Shard_exec.j_cost))
        (Array.of_list sjobs)
    in
    (* the adaptive decision reuses the domain pool's predicate, with
       the size floored at 2: a single worker still carries dispatch
       overhead worth amortising, but [worthwhile] vetoes size 1
       outright *)
    Mp_util.Parallel.worthwhile ~size:(max 2 slots) ~jobs:(List.length jobs)
      ~width
      ~min_jobs_per_core:(Mp_util.Parallel.env_min_jobs_per_core ())
  in
  let pool =
    if not fan_out then None
    else
      match shard_pool with
      | Some p -> Some p
      | None -> Shard_exec.get_pool ~hosts procs
  in
  match pool with
  | None -> in_process jobs
  | Some p ->
    let res =
      Shard_exec.run_jobs p ~spec:(spec t) ~warmup ~measure ?period
        ?sched:shard_sched
        ~chunk_jobs:
          (shard_chunk_jobs ~jobs:(List.length sjobs)
             ~slots:(Shard_exec.pool_size p))
        sjobs
    in
    let jobs_arr = Array.of_list jobs in
    let from_worker = Array.map Option.is_some res in
    let missing = ref [] in
    Array.iteri (fun i r -> if Option.is_none r then missing := i :: !missing) res;
    let missing = List.rev !missing in
    if missing <> [] then begin
      ignore (Atomic.fetch_and_add jobs_recovered_total (List.length missing));
      let recovered = in_process (List.map (fun i -> jobs_arr.(i)) missing) in
      List.iter2 (fun i m -> res.(i) <- Some m) missing recovered
    end;
    Array.iteri
      (fun i fw -> if fw then insert jobs_arr.(i) (Option.get res.(i)))
      from_worker;
    Array.to_list (Array.map Option.get res)

(* ----- duplicate collapsing ---------------------------------------------- *)

(* Search drivers routinely submit the same point several times within
   one batch (GA elites, re-generated crossovers, symmetric sweeps).
   Measurements are deterministic given the cache key, so evaluating
   each distinct key once and scattering the result back preserves
   bit-identity while skipping the redundant simulations — and, unlike
   the measurement cache's single-flight, never parks a worker waiting
   on a twin job. *)

let batch_dups = Atomic.make 0

let batch_dup_collapsed () = Atomic.get batch_dups

(* grouping key: same derivation as [cached] (period excluded — skipped
   and dense runs are interchangeable), always the structural fold
   since the string never leaves this process *)
let batch_key t ~warmup ~measure config name per_thread =
  let seed =
    if Array.for_all seed_independent_program per_thread then None
    else Some t.seed
  in
  Measurement_cache.key_structural ~uarch:t.uarch_fp ?seed ~config ~warmup
    ~measure ~name per_thread

(* Evaluate each distinct key once (first occurrence order, so worker
   scheduling and opcode interning see the same sequence a deduped
   caller would submit) and scatter results back positionally. *)
let dedup_map job_key exec jobs =
  let slot_of = Hashtbl.create 64 in
  let uniques = ref [] in
  let n_unique = ref 0 in
  let slots =
    List.map
      (fun job ->
        let k = job_key job in
        match Hashtbl.find_opt slot_of k with
        | Some slot ->
          Atomic.incr batch_dups;
          slot
        | None ->
          let slot = !n_unique in
          Hashtbl.add slot_of k slot;
          incr n_unique;
          uniques := job :: !uniques;
          slot)
      jobs
  in
  let results = Array.of_list (exec (List.rev !uniques)) in
  List.map (fun slot -> results.(slot)) slots

(* procs resolution shared by both batch entry points: explicit arg
   wins; a caller-supplied pool implies its own size; otherwise the
   MP_PROCS knob decides (0 = in-process, unchanged behavior). *)
let resolve_procs procs shard_pool =
  match (procs, shard_pool) with
  | Some n, _ -> max 0 n
  | None, Some sp -> Shard_exec.pool_size sp
  | None, None -> Shard_exec.env_procs ()

(* same shape for remote hosts: explicit arg wins; a caller-supplied
   pool carries its own peers (so no extra hosts); otherwise the
   MP_HOSTS knob decides ([] = no remotes, unchanged behavior) *)
let resolve_hosts hosts shard_pool =
  match (hosts, shard_pool) with
  | Some h, _ -> h
  | None, Some _ -> []
  | None, None -> Shard_exec.env_hosts ()

let run_batch ?(warmup = 1) ?(measure = default_measure) ?period ?pool ?procs
    ?hosts ?shard_pool ?shard_sched ?(dedup = true) t jobs =
  (* deterministic id assignment: intern everything in job order —
     duplicates included — before any worker touches the opmap *)
  List.iter (fun (_, p) -> pre_intern t p) jobs;
  let pool =
    match pool with Some p -> p | None -> Mp_util.Parallel.global ()
  in
  let procs = resolve_procs procs shard_pool in
  let hosts = resolve_hosts hosts shard_pool in
  let in_process jobs =
    (* chunked: replay and cache hits make individual jobs tiny, and
       chunking amortises deque traffic over them; auto_chunk leaves
       ~8 chunks per worker so stealing can still rebalance tails *)
    Mp_util.Parallel.map_chunked
      ~cost:(fun (config, p) -> job_cost config [ p ])
      pool
      (fun (config, p) -> run ~warmup ~measure ?period t config p)
      jobs
  in
  let exec jobs =
    if procs <= 0 && hosts = [] then in_process jobs
    else
      sharded_exec t ~warmup ~measure ?period ?shard_sched ~procs ~hosts
        ~shard_pool
        ~to_job:(fun (config, p) ->
          {
            Shard_exec.j_config = config;
            j_programs = [ p ];
            j_cost = job_cost config [ p ];
          })
        ~insert:(fun (config, (p : Ir.t)) m ->
          cache_insert t ~warmup ~measure config p.Ir.name [| p |] m)
        ~in_process jobs
  in
  if dedup then
    dedup_map
      (fun (config, (p : Ir.t)) ->
        batch_key t ~warmup ~measure config p.Ir.name [| p |])
      exec jobs
  else exec jobs

let run_heterogeneous_batch ?(warmup = 1) ?(measure = default_measure) ?period
    ?pool ?procs ?hosts ?shard_pool ?shard_sched ?(dedup = true) t jobs =
  List.iter (fun (_, ps) -> List.iter (pre_intern t) ps) jobs;
  let pool =
    match pool with Some p -> p | None -> Mp_util.Parallel.global ()
  in
  let procs = resolve_procs procs shard_pool in
  let hosts = resolve_hosts hosts shard_pool in
  let in_process jobs =
    Mp_util.Parallel.map_chunked
      ~cost:(fun (config, ps) -> job_cost config ps)
      pool
      (fun (config, ps) ->
        run_heterogeneous ~warmup ~measure ?period t config ps)
      jobs
  in
  let exec jobs =
    if procs <= 0 && hosts = [] then in_process jobs
    else
      sharded_exec t ~warmup ~measure ?period ?shard_sched ~procs ~hosts
        ~shard_pool
        ~to_job:(fun (config, ps) ->
          { Shard_exec.j_config = config; j_programs = ps; j_cost = job_cost config ps })
        ~insert:(fun (config, ps) m ->
          let name =
            String.concat "|" (List.map (fun (p : Ir.t) -> p.Ir.name) ps)
          in
          cache_insert t ~warmup ~measure config name (Array.of_list ps) m)
        ~in_process jobs
  in
  if dedup then
    dedup_map
      (fun (config, ps) ->
        let name =
          String.concat "|" (List.map (fun (p : Ir.t) -> p.Ir.name) ps)
        in
        batch_key t ~warmup ~measure config name (Array.of_list ps))
      exec jobs
  else exec jobs

let run_phases ?pool t config phases =
  match phases with
  | [] -> invalid_arg "Machine.run_phases: no phases"
  | _ ->
    let total_w = List.fold_left (fun acc (_, w) -> acc +. w) 0.0 phases in
    if total_w <= 0.0 then invalid_arg "Machine.run_phases: zero weight";
    let ms = run_batch ?pool t (List.map (fun (p, _) -> (config, p)) phases) in
    let results = List.map2 (fun m (_, w) -> (m, w /. total_w)) ms phases in
    let nominal = 1_000_000.0 in
    let combine_thread idx =
      List.fold_left
        (fun acc ((m : Measurement.t), w) ->
          let c = m.Measurement.threads.(idx) in
          let r v = Measurement.rate c v *. w *. nominal in
          {
            Measurement.cycles = nominal;
            instrs = acc.Measurement.instrs +. r c.Measurement.instrs;
            dispatched = acc.Measurement.dispatched +. r c.Measurement.dispatched;
            fxu = acc.Measurement.fxu +. r c.Measurement.fxu;
            lsu = acc.Measurement.lsu +. r c.Measurement.lsu;
            vsu = acc.Measurement.vsu +. r c.Measurement.vsu;
            bru = acc.Measurement.bru +. r c.Measurement.bru;
            st = acc.Measurement.st +. r c.Measurement.st;
            l1 = acc.Measurement.l1 +. r c.Measurement.l1;
            l2 = acc.Measurement.l2 +. r c.Measurement.l2;
            l3 = acc.Measurement.l3 +. r c.Measurement.l3;
            mem = acc.Measurement.mem +. r c.Measurement.mem;
          })
        { Measurement.zero_counters with cycles = nominal }
        results
    in
    let nthreads = config.Uarch_def.smt in
    let threads = Array.init nthreads combine_thread in
    let power =
      List.fold_left (fun acc (m, w) -> acc +. (m.Measurement.power *. w)) 0.0
        results
    in
    let core_ipc =
      List.fold_left (fun acc (m, w) -> acc +. (m.Measurement.core_ipc *. w))
        0.0 results
    in
    let trace =
      Array.concat
        (List.map
           (fun ((m : Measurement.t), w) ->
             let n = max 2 (int_of_float (w *. 24.0)) in
             let len = Array.length m.Measurement.power_trace in
             if len = 0 then Array.make n m.Measurement.power
             else
               Array.init n (fun i -> m.Measurement.power_trace.(i mod len)))
           results)
    in
    let name =
      match phases with (p, _) :: _ -> p.Ir.name ^ "-phased" | [] -> "phased"
    in
    {
      Measurement.config;
      program = name;
      threads;
      core_ipc;
      power;
      power_trace = trace;
    }

let baseline_reading t =
  let rng = Mp_util.Rng.create (Hashtbl.hash (t.seed, "baseline")) in
  let p = t.table.Energy_table.idle_power in
  let rel = Mp_util.Rng.gaussian rng ~mu:1.0 ~sigma:t.table.Energy_table.noise_rel in
  Float.max 0.0 (p *. rel)

let idle_reading t config =
  let rng = run_rng t config ~seeded:true "idle" in
  let p = Power_sim.idle_power ~table:t.table ~config in
  let rel = Mp_util.Rng.gaussian rng ~mu:1.0 ~sigma:t.table.Energy_table.noise_rel in
  Float.max 0.0 (p *. rel)

(* ----- worker-side executor ---------------------------------------------- *)

(* One machine per distinct spec, memoized so consecutive request
   frames of a campaign reuse a warm opmap, cache and replay
   connection. Keyed on the uarch fingerprint — [machine_spec] values
   can't be compared structurally (the uarch holds a closure). *)
let worker_machines : (string * int * bool * bool, t) Hashtbl.t =
  Hashtbl.create 4

let machine_for_spec (s : Shard_exec.machine_spec) =
  let k =
    ( Measurement_cache.uarch_fingerprint s.Shard_exec.ms_uarch,
      s.Shard_exec.ms_seed,
      s.Shard_exec.ms_cache,
      s.Shard_exec.ms_replay )
  in
  match Hashtbl.find_opt worker_machines k with
  | Some m -> m
  | None ->
    let m =
      create ~seed:s.Shard_exec.ms_seed ~cache:s.Shard_exec.ms_cache
        ~replay:s.Shard_exec.ms_replay s.Shard_exec.ms_uarch
    in
    Hashtbl.add worker_machines k m;
    m

(* Execute a coordinator's request inside a worker process: same
   pre-intern discipline and chunked domain-pool fan-out as
   [run_batch], so a shard computes exactly what the coordinator
   would. *)
let exec_request (rq : Shard_exec.request) =
  let t = machine_for_spec rq.Shard_exec.rq_spec in
  let jobs = Array.to_list rq.Shard_exec.rq_jobs in
  List.iter
    (fun (j : Shard_exec.job) -> List.iter (pre_intern t) j.Shard_exec.j_programs)
    jobs;
  let warmup = rq.Shard_exec.rq_warmup in
  let measure = rq.Shard_exec.rq_measure in
  let period = rq.Shard_exec.rq_period in
  let results =
    Mp_util.Parallel.map_chunked
      ~cost:(fun (j : Shard_exec.job) -> j.Shard_exec.j_cost)
      (Mp_util.Parallel.global ())
      (fun (j : Shard_exec.job) ->
        match j.Shard_exec.j_programs with
        | [ p ] -> run ~warmup ~measure ?period t j.Shard_exec.j_config p
        | ps -> run_heterogeneous ~warmup ~measure ?period t j.Shard_exec.j_config ps)
      jobs
  in
  Array.of_list results

(* Every executable linking the simulator can be its own shard worker:
   the executor is injected (breaking the Machine <-> Shard_exec
   cycle), then the worker flag is checked — [maybe_become_worker]
   never returns in a worker process. *)
let () =
  Shard_exec.install_executor exec_request;
  Shard_exec.maybe_become_worker ()
