(* Tests for mp_stressmark: candidate selection, sequence programs and
   set evaluation. *)

open Mp_codegen
open Mp_uarch

let arch () = Arch.power7 ()

let machine a = Mp_sim.Machine.create a.Arch.uarch

let test_program_of_sequence () =
  let a = arch () in
  let seqn = Mp_stressmark.Stressmark.expert_instructions a in
  let p =
    Mp_stressmark.Stressmark.program_of_sequence ~arch:a ~size:120 ~name:"sm" seqn
  in
  Alcotest.(check bool) "valid" true (Ir.validate p = Ok ());
  let mix = Ir.instruction_mix p in
  Alcotest.(check int) "equal thirds mullw" 40 (List.assoc "mullw" mix);
  Alcotest.(check int) "equal thirds xvmaddadp" 40 (List.assoc "xvmaddadp" mix);
  Alcotest.(check int) "equal thirds lxvd2x" 40 (List.assoc "lxvd2x" mix);
  (* memory instructions are pinned to the L1 *)
  List.iter
    (fun (i : Ir.instr) ->
      Alcotest.(check bool) "L1 pinned" true
        (i.Ir.mem_target = Some Cache_geometry.L1))
    (Ir.memory_instructions p)

let test_expert_sets () =
  let a = arch () in
  let manual = Mp_stressmark.Stressmark.expert_manual_sequences a in
  Alcotest.(check int) "four hand-written orders" 4 (List.length manual);
  List.iter
    (fun s -> Alcotest.(check int) "six instructions" 6 (List.length s))
    manual;
  Alcotest.(check int) "dse space" 729
    (List.length
       (Mp_stressmark.Stressmark.exhaustive_sequences
          (Mp_stressmark.Stressmark.expert_instructions a)
          ~length:6))

let test_microprobe_selection () =
  (* crafted bootstrap data: the per-category IPC×EPI winners must be
     picked, one per pure functional-unit category *)
  let a = arch () in
  let fake m ipc epi fxu lsu vsu =
    {
      Mp_epi.Bootstrap.mnemonic = m;
      derived_latency = 1.0;
      throughput = ipc;
      core_ipc = ipc;
      epi;
      events_per_instr =
        [ (Pipe.FXU, fxu); (Pipe.LSU, lsu); (Pipe.VSU, vsu); (Pipe.BRU, 0.0) ];
      units = [];
    }
  in
  let props =
    [ fake "mulldo" 1.4 2.6 1.0 0.0 0.0;      (* FXU: product 3.64 *)
      fake "subf" 2.0 1.69 1.0 0.0 0.0;       (* FXU: product 3.38 *)
      fake "lbz" 1.68 2.14 0.0 1.0 0.0;       (* LSU: product 3.6 *)
      fake "lxvw4x" 1.68 2.88 0.0 1.0 0.0;    (* LSU: product 4.84 *)
      fake "ldux" 1.0 5.12 1.0 1.0 0.0;       (* LSU and FXU: excluded *)
      fake "add" 3.5 1.73 0.6 0.4 0.0;        (* FXU or LSU: excluded *)
      fake "xvnmsubmdp" 2.0 2.35 0.0 0.0 1.0; (* VSU: product 4.7 *)
      fake "xstsqrtdp" 2.0 1.32 0.0 0.0 1.0 ]
  in
  let picks =
    Mp_stressmark.Stressmark.microprobe_instructions ~isa:a.Arch.isa props
  in
  Alcotest.(check (list string)) "paper's picks"
    [ "mulldo"; "lxvw4x"; "xvnmsubmdp" ]
    (List.map (fun (i : Mp_isa.Instruction.t) -> i.Mp_isa.Instruction.mnemonic) picks)

let test_evaluate_set () =
  let a = arch () in
  let seqs =
    [ Mp_stressmark.Stressmark.expert_instructions a;
      List.rev (Mp_stressmark.Stressmark.expert_instructions a) ]
  in
  let s =
    Mp_stressmark.Stressmark.evaluate_set ~machine:(machine a) ~arch:a
      ~name:"mini" ~size:120 ~smt_modes:[ 1; 2 ] seqs
  in
  Alcotest.(check int) "2 seqs x 2 smt" 4
    (List.length s.Mp_stressmark.Stressmark.evaluations);
  Alcotest.(check bool) "ordering" true
    (s.Mp_stressmark.Stressmark.min_power <= s.Mp_stressmark.Stressmark.mean_power
     && s.Mp_stressmark.Stressmark.mean_power <= s.Mp_stressmark.Stressmark.max_power);
  Alcotest.(check (float 1e-9)) "best is max" s.Mp_stressmark.Stressmark.max_power
    s.Mp_stressmark.Stressmark.best.Mp_stressmark.Stressmark.power

let test_order_spread_positive () =
  let a = arch () in
  let f = Arch.find_instruction a in
  let os =
    Mp_stressmark.Stressmark.order_spread ~machine:(machine a) ~arch:a
      ~size:120 ~smt:1
      [ f "mulldo"; f "lxvw4x"; f "xvnmsubmdp" ]
  in
  Alcotest.(check int) "3! orders" 6 os.Mp_stressmark.Stressmark.n_orders;
  Alcotest.(check bool) "order changes power" true
    (os.Mp_stressmark.Stressmark.spread_pct > 0.5)

let test_same_mix_same_ipc_different_power () =
  (* the paper's core observation: identical instruction distribution
     and IPC, different order, measurably different power *)
  let a = arch () in
  let m = machine a in
  let f = Arch.find_instruction a in
  let cfg = Uarch_def.config ~cores:8 ~smt:1 a.Arch.uarch in
  let run order name =
    let p = Mp_stressmark.Stressmark.program_of_sequence ~arch:a ~size:240 ~name order in
    Mp_sim.Machine.run m cfg p
  in
  let alt = run [ f "mulldo"; f "xvnmsubmdp"; f "mulldo"; f "xvnmsubmdp";
                  f "mulldo"; f "xvnmsubmdp" ] "alt" in
  let clu = run [ f "mulldo"; f "mulldo"; f "mulldo"; f "xvnmsubmdp";
                  f "xvnmsubmdp"; f "xvnmsubmdp" ] "clu" in
  Alcotest.(check (float 0.05)) "same IPC"
    alt.Mp_sim.Measurement.core_ipc clu.Mp_sim.Measurement.core_ipc;
  Alcotest.(check bool) "different power" true
    (Float.abs (alt.Mp_sim.Measurement.power -. clu.Mp_sim.Measurement.power) > 0.5)

let test_heterogeneous_search () =
  let a = arch () in
  let m = machine a in
  let evals, best =
    Mp_stressmark.Stressmark.heterogeneous_search ~machine:m ~arch:a
      ~size:120 ~smt:2
      ~homogeneous_best:(Mp_stressmark.Stressmark.expert_instructions a)
      ()
  in
  (* multisets of 3 blocks over 2 threads: C(4,2) = 6 *)
  Alcotest.(check int) "six assignments" 6 (List.length evals);
  Alcotest.(check bool) "sorted best-first" true
    (let rec sorted = function
       | (a : Mp_stressmark.Stressmark.hetero_evaluation)
         :: (b :: _ as rest) ->
         a.Mp_stressmark.Stressmark.power >= b.Mp_stressmark.Stressmark.power
         && sorted rest
       | _ -> true
     in
     sorted evals);
  Alcotest.(check (float 1e-9)) "best is head"
    best.Mp_stressmark.Stressmark.power
    (List.hd evals).Mp_stressmark.Stressmark.power;
  List.iter
    (fun (e : Mp_stressmark.Stressmark.hetero_evaluation) ->
      Alcotest.(check int) "two blocks" 2
        (List.length e.Mp_stressmark.Stressmark.assignment))
    evals

let test_ga_dedup_bit_identical () =
  (* fitness is a pure function of the genome, so collapsing duplicate
     candidates must not change the search: same seed with dedup on
     and off yields the same best, trajectory length and power *)
  let a = arch () in
  let f = Arch.find_instruction a in
  (* 2 candidates x length 2 = 4 distinct genomes < population 6, so
     every generation is guaranteed to contain duplicates *)
  let candidates = [ f "add"; f "fadd" ] in
  let run dedup =
    Mp_stressmark.Stressmark.ga_search ~machine:(machine a) ~arch:a ~size:64
      ~smt:1 ~seed:13 ~population:6 ~generations:2 ~dedup ~candidates
      ~length:2 ()
  in
  let d0 =
    Mp_sim.Machine.batch_dup_collapsed () + Mp_dse.Driver.dup_collapsed ()
  in
  let on = run true in
  let d_on =
    Mp_sim.Machine.batch_dup_collapsed () + Mp_dse.Driver.dup_collapsed () - d0
  in
  let off = run false in
  Alcotest.(check bool) "duplicates collapsed with dedup on" true (d_on > 0);
  Alcotest.(check (list string)) "same best sequence"
    off.Mp_stressmark.Stressmark.ga_best.Mp_stressmark.Stressmark.sequence
    on.Mp_stressmark.Stressmark.ga_best.Mp_stressmark.Stressmark.sequence;
  Alcotest.(check (float 1e-9)) "same best power"
    off.Mp_stressmark.Stressmark.ga_best.Mp_stressmark.Stressmark.power
    on.Mp_stressmark.Stressmark.ga_best.Mp_stressmark.Stressmark.power;
  Alcotest.(check int) "same best smt"
    off.Mp_stressmark.Stressmark.ga_best.Mp_stressmark.Stressmark.smt
    on.Mp_stressmark.Stressmark.ga_best.Mp_stressmark.Stressmark.smt;
  Alcotest.(check int) "same evaluation count"
    off.Mp_stressmark.Stressmark.ga_evaluations
    on.Mp_stressmark.Stressmark.ga_evaluations

let () =
  Alcotest.run "mp_stressmark"
    [
      ("construction",
       [ Alcotest.test_case "sequence program" `Quick test_program_of_sequence;
         Alcotest.test_case "expert sets" `Quick test_expert_sets;
         Alcotest.test_case "microprobe selection" `Quick test_microprobe_selection ]);
      ("evaluation",
       [ Alcotest.test_case "evaluate set" `Quick test_evaluate_set;
         Alcotest.test_case "order spread" `Quick test_order_spread_positive;
         Alcotest.test_case "same mix, different power" `Quick
           test_same_mix_same_ipc_different_power;
         Alcotest.test_case "heterogeneous search" `Quick test_heterogeneous_search;
         Alcotest.test_case "ga dedup bit-identical" `Quick
           test_ga_dedup_bit_identical ]);
    ]
