(** Small dense linear algebra: enough for the ordinary-least-squares
    regressions of the power-modeling case study. *)

type t
(** A dense row-major matrix of floats. *)

val create : int -> int -> t
(** [create rows cols] is a zero matrix. *)

val of_arrays : float array array -> t
(** Rows must be non-empty and of equal length. The input is copied. *)

val rows : t -> int
val cols : t -> int
val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit

val identity : int -> t
val transpose : t -> t
val mul : t -> t -> t
val mul_vec : t -> float array -> float array
val add : t -> t -> t
val scale : float -> t -> t

val solve : t -> float array -> float array
(** [solve a b] solves [a x = b] by Gaussian elimination with partial
    pivoting. Raises [Failure] when [a] is singular. *)

val ols : ?ridge:float -> t -> float array -> float array
(** [ols x y] returns coefficients [beta] minimising [|x beta - y|^2]
    via the normal equations. [ridge] (default [1e-9]) is added to the
    diagonal for numerical stability of near-collinear designs. *)

val nnls : ?iterations:int -> t -> float array -> float array
(** Non-negative least squares by projected coordinate descent — the
    power-component weights of a bottom-up model must not be negative.
    [iterations] defaults to 2000 sweeps. *)

val pp : Format.formatter -> t -> unit
