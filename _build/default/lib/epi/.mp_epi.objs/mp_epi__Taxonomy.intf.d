lib/epi/taxonomy.mli: Bootstrap Mp_isa
