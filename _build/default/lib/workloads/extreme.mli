(** The extreme activity cases of the paper's Figure 7: short periods
    of single-flavour activity that workload-trained models mispredict
    (high/low FXU, high/low VSU, L1-loads-only, memory-only). *)

type case = {
  name : string;
  program : Mp_codegen.Ir.t;
}

val cases : arch:Mp_codegen.Arch.t -> ?size:int -> unit -> case list
(** The six cases, deterministic ([size] default 1024):
    ["FXU High"; "FXU Low"; "VSU High"; "VSU Low"; "L1 ld"; "MEM"]. *)
