type 'p operators = {
  init : Mp_util.Rng.t -> 'p;
  mutate : Mp_util.Rng.t -> 'p -> 'p;
  crossover : Mp_util.Rng.t -> 'p -> 'p -> 'p;
}

let search ~rng ~ops ~eval ?(population = 24) ?(generations = 12) ?(elite = 4)
    ?(mutation_rate = 0.3) ?(seeds = []) () =
  if population < 2 then invalid_arg "Genetic.search: population";
  if elite >= population then invalid_arg "Genetic.search: elite";
  let evaluate p = { Driver.point = p; score = eval p } in
  let all = ref [] in
  let note e = all := e :: !all in
  let tournament pop =
    let a = Mp_util.Rng.choose rng pop and b = Mp_util.Rng.choose rng pop in
    if a.Driver.score >= b.Driver.score then a else b
  in
  let seeds = Array.of_list seeds in
  let initial =
    Array.init population (fun i ->
        let p =
          if i < Array.length seeds then seeds.(i) else ops.init rng
        in
        let e = evaluate p in
        note e;
        e)
  in
  let current = ref initial in
  for _gen = 1 to generations do
    let sorted =
      Array.of_list
        (List.sort
           (fun a b -> compare b.Driver.score a.Driver.score)
           (Array.to_list !current))
    in
    let next =
      Array.init population (fun i ->
          if i < elite then sorted.(i)
          else begin
            let a = tournament sorted and b = tournament sorted in
            let child = ops.crossover rng a.Driver.point b.Driver.point in
            let child =
              if Mp_util.Rng.float rng 1.0 < mutation_rate then
                ops.mutate rng child
              else child
            in
            let e = evaluate child in
            note e;
            e
          end)
    in
    current := next
  done;
  let all = List.rev !all in
  { Driver.best = Driver.best_of all; evaluations = List.length all; all }
