let cartesian dims =
  List.fold_right
    (fun dim acc ->
      List.concat_map (fun x -> List.map (fun rest -> x :: rest) acc) dim)
    dims [ [] ]

let sequences alphabet ~length =
  cartesian (List.init length (fun _ -> alphabet))

let combinations_with_repetition alphabet ~length =
  (* choose non-decreasing index sequences *)
  let arr = Array.of_list alphabet in
  let n = Array.length arr in
  let rec go start remaining =
    if remaining = 0 then [ [] ]
    else
      List.concat
        (List.init (n - start) (fun off ->
             let i = start + off in
             List.map (fun rest -> arr.(i) :: rest) (go i (remaining - 1))))
  in
  if n = 0 && length > 0 then [] else go 0 length

let rec permutations = function
  | [] -> [ [] ]
  | l ->
    List.concat_map
      (fun x ->
        let rec remove_first = function
          | [] -> []
          | y :: ys -> if y == x then ys else y :: remove_first ys
        in
        List.map (fun rest -> x :: rest) (permutations (remove_first l)))
      l

let distinct_permutations l =
  List.sort_uniq compare (permutations l)

let rec power base = function 0 -> 1 | n -> base * power base (n - 1)

let size_sequences ~alphabet ~length = power alphabet length

let size_combinations ~alphabet ~length =
  (* C(alphabet + length - 1, length) *)
  let rec binom n k =
    if k = 0 || k = n then 1
    else binom (n - 1) (k - 1) * n / k
  in
  if alphabet = 0 then (if length = 0 then 1 else 0)
  else binom (alphabet + length - 1) length
