type 'p evaluation = { point : 'p; score : float }

type 'p result = {
  best : 'p evaluation;
  evaluations : int;
  all : 'p evaluation list;
}

(* Descending by score with an explicit NaN-last rule: a fitness that
   divides by a zero counter must sink, not poison the ordering (plain
   [compare] on floats is not even a total preorder under NaN). *)
let compare_scores_desc a b =
  match (Float.is_nan a, Float.is_nan b) with
  | true, true -> 0
  | true, false -> 1
  | false, true -> -1
  | false, false -> Float.compare b a

let compare_desc a b = compare_scores_desc a.score b.score

let best_of = function
  | [] -> invalid_arg "Driver.best_of: empty"
  | e :: rest ->
    List.fold_left
      (fun acc x -> if compare_desc x acc < 0 then x else acc)
      e rest

let top n evals =
  let sorted = List.sort compare_desc evals in
  List.filteri (fun i _ -> i < n) sorted

let eval_list ?eval_batch ~eval points =
  match eval_batch with
  | None ->
    List.rev (List.rev_map (fun p -> { point = p; score = eval p }) points)
  | Some batch ->
    let scores = batch points in
    if List.length scores <> List.length points then
      invalid_arg "Driver.eval_list: eval_batch returned a different length";
    List.map2 (fun p s -> { point = p; score = s }) points scores
