lib/mem/set_assoc_model.mli: Mp_uarch Mp_util
