(* Tests for mp_workloads: profiles, the SPEC surrogate suite, extreme
   cases, DAXPY and the Table-2 training suite. *)

open Mp_codegen
open Mp_uarch

let arch () = Arch.power7 ()

(* ----- profiles --------------------------------------------------------------- *)

let test_profile_program_valid () =
  let a = arch () in
  let p =
    Mp_workloads.Profile.program ~arch:a ~name:"prof" ~seed:1 ~size:256
      Mp_workloads.Profile.balanced
  in
  Alcotest.(check bool) "valid" true (Ir.validate p = Ok ());
  Alcotest.(check int) "size" 256 (Ir.size p);
  Alcotest.(check bool) "has memory model" true (p.Ir.memory_distribution <> None)

let test_profile_determinism () =
  let a = arch () in
  let gen () =
    Mp_workloads.Profile.program ~arch:a ~name:"prof" ~seed:5 ~size:128
      Mp_workloads.Profile.balanced
  in
  Alcotest.(check bool) "same seed, same program" true (gen () = gen ())

let test_profile_perturb_preserves_shape () =
  let rng = Mp_util.Rng.create 2 in
  let p = Mp_workloads.Profile.perturb rng ~strength:0.3 Mp_workloads.Profile.balanced in
  Alcotest.(check bool) "weights stay non-negative" true
    (p.Mp_workloads.Profile.simple_int >= 0.0 && p.Mp_workloads.Profile.load >= 0.0);
  Alcotest.(check bool) "mem mix positive" true
    (List.for_all (fun (_, w) -> w > 0.0) p.Mp_workloads.Profile.mem_mix)

let test_profile_zero_weights_rejected () =
  let a = arch () in
  let z =
    { Mp_workloads.Profile.balanced with
      Mp_workloads.Profile.simple_int = 0.0; complex_int = 0.0; mul = 0.0;
      fp = 0.0; vec = 0.0; load = 0.0; store = 0.0 }
  in
  Alcotest.(check bool) "rejected" true
    (try
       ignore (Mp_workloads.Profile.program ~arch:a ~name:"z" ~seed:1 z);
       false
     with Invalid_argument _ -> true)

(* ----- SPEC surrogate ------------------------------------------------------------ *)

let test_spec_names () =
  Alcotest.(check int) "29 benchmarks" 29 (List.length Mp_workloads.Spec.names);
  Alcotest.(check int) "unique names" 29
    (List.length (List.sort_uniq compare Mp_workloads.Spec.names))

let test_spec_generation () =
  let a = arch () in
  let suite = Mp_workloads.Spec.suite ~arch:a ~size:128 () in
  Alcotest.(check int) "29 surrogates" 29 (List.length suite);
  List.iter
    (fun (b : Mp_workloads.Spec.benchmark) ->
      Alcotest.(check bool) (b.Mp_workloads.Spec.name ^ " has phases") true
        (List.length b.Mp_workloads.Spec.phases >= 2);
      List.iter
        (fun (p, w) ->
          Alcotest.(check bool) "valid phase" true (Ir.validate p = Ok ());
          Alcotest.(check bool) "positive weight" true (w > 0.0))
        b.Mp_workloads.Spec.phases)
    suite

let test_spec_cint_cfp_split () =
  let a = arch () in
  let suite = Mp_workloads.Spec.suite ~arch:a ~size:128 () in
  let ints = List.filter (fun b -> b.Mp_workloads.Spec.integer) suite in
  Alcotest.(check int) "12 CINT" 12 (List.length ints)

let test_spec_deterministic () =
  let a = arch () in
  let b1 = Mp_workloads.Spec.benchmark ~arch:a ~size:128 "mcf" in
  let b2 = Mp_workloads.Spec.benchmark ~arch:a ~size:128 "mcf" in
  Alcotest.(check bool) "deterministic" true
    (List.map fst b1.Mp_workloads.Spec.phases = List.map fst b2.Mp_workloads.Spec.phases)

let test_spec_unknown () =
  let a = arch () in
  Alcotest.check_raises "unknown" Not_found (fun () ->
      ignore (Mp_workloads.Spec.benchmark ~arch:a "doom3"))

let test_spec_profiles_differ () =
  let a = arch () in
  let mcf = Mp_workloads.Spec.benchmark ~arch:a ~size:256 "mcf" in
  let hmmer = Mp_workloads.Spec.benchmark ~arch:a ~size:256 "hmmer" in
  let machine = Mp_sim.Machine.create a.Arch.uarch in
  let cfg = Uarch_def.config ~cores:1 ~smt:1 a.Arch.uarch in
  let m_mcf = Mp_workloads.Spec.run ~machine ~config:cfg mcf in
  let m_hmmer = Mp_workloads.Spec.run ~machine ~config:cfg hmmer in
  (* mcf is memory bound, hmmer is L1-resident high-IPC integer *)
  Alcotest.(check bool) "mcf slower" true
    (m_mcf.Mp_sim.Measurement.core_ipc < m_hmmer.Mp_sim.Measurement.core_ipc /. 2.0);
  let mem_rate (m : Mp_sim.Measurement.t) =
    let c = Mp_sim.Measurement.core_counters m in
    c.Mp_sim.Measurement.mem /. Float.max 1.0 c.Mp_sim.Measurement.instrs
  in
  Alcotest.(check bool) "mcf touches memory more" true
    (mem_rate m_mcf > 4.0 *. mem_rate m_hmmer)

(* ----- extremes & daxpy ------------------------------------------------------------ *)

let test_extreme_cases () =
  let a = arch () in
  let cases = Mp_workloads.Extreme.cases ~arch:a ~size:128 () in
  Alcotest.(check int) "six cases" 6 (List.length cases);
  let names = List.map (fun c -> c.Mp_workloads.Extreme.name) cases in
  List.iter
    (fun n -> Alcotest.(check bool) n true (List.mem n names))
    [ "FXU High"; "FXU Low"; "VSU High"; "VSU Low"; "L1 ld"; "MEM" ];
  List.iter
    (fun c ->
      Alcotest.(check bool) "valid" true
        (Ir.validate c.Mp_workloads.Extreme.program = Ok ()))
    cases

let test_extreme_activity_contrast () =
  let a = arch () in
  let machine = Mp_sim.Machine.create a.Arch.uarch in
  let cfg = Uarch_def.config ~cores:1 ~smt:1 a.Arch.uarch in
  let cases = Mp_workloads.Extreme.cases ~arch:a ~size:256 () in
  let run name =
    let c = List.find (fun c -> c.Mp_workloads.Extreme.name = name) cases in
    Mp_sim.Machine.run machine cfg c.Mp_workloads.Extreme.program
  in
  let hi = run "FXU High" and lo = run "FXU Low" in
  Alcotest.(check bool) "FXU high IPC >> low" true
    (hi.Mp_sim.Measurement.core_ipc > 4.0 *. lo.Mp_sim.Measurement.core_ipc)

let test_daxpy () =
  let a = arch () in
  let ks = Mp_workloads.Daxpy.variants ~arch:a ~size:128 () in
  Alcotest.(check int) "four variants" 4 (List.length ks);
  let k = Mp_workloads.Daxpy.kernel ~arch:a ~unroll:1 ~size:128 () in
  let mix = Ir.instruction_mix k in
  Alcotest.(check int) "half loads" 64 (List.assoc "lfd" mix);
  Alcotest.(check int) "quarter fmadd" 32 (List.assoc "fmadd" mix);
  Alcotest.(check int) "quarter stores" 32 (List.assoc "stfd" mix);
  (* every memory access targets the L1 *)
  List.iter
    (fun (i : Ir.instr) ->
      Alcotest.(check bool) "L1 resident" true
        (i.Ir.mem_target = Some Cache_geometry.L1))
    (Ir.memory_instructions k)

(* ----- training suite --------------------------------------------------------------- *)

let test_memory_family () =
  let a = arch () in
  let machine = Mp_sim.Machine.create a.Arch.uarch in
  let fam =
    Mp_workloads.Training.memory_family ~machine ~arch:a ~name:"L2"
      ~description:"t" ~loads_only:false
      ~distribution:[ (Cache_geometry.L2, 1.0) ] ~count:3 ~size:128 ()
  in
  Alcotest.(check int) "three entries" 3
    (List.length fam.Mp_workloads.Training.entries);
  List.iter
    (fun (e : Mp_workloads.Training.entry) ->
      Alcotest.(check bool) "achieved ipc positive" true (e.achieved_ipc > 0.0);
      Alcotest.(check bool) "valid" true (Ir.validate e.program = Ok ()))
    fam.Mp_workloads.Training.entries

let test_ipc_family_ga_targets () =
  let a = arch () in
  let machine = Mp_sim.Machine.create a.Arch.uarch in
  let candidates =
    Arch.select a (fun i ->
        i.Mp_isa.Instruction.exec_class = Mp_isa.Instruction.Complex_int)
  in
  let fam =
    Mp_workloads.Training.ipc_family ~machine ~arch:a ~name:"cx" ~units:"FXU"
      ~description:"t" ~candidates ~targets:[ 0.5; 1.0 ] ~size:128
      ~population:6 ~generations:3 ()
  in
  List.iter
    (fun (e : Mp_workloads.Training.entry) ->
      match e.Mp_workloads.Training.target_ipc with
      | None -> Alcotest.fail "target recorded"
      | Some t ->
        Alcotest.(check bool)
          (Printf.sprintf "GA hits IPC %.1f (got %.2f)" t e.achieved_ipc)
          true
          (Float.abs (e.achieved_ipc -. t) < 0.25))
    fam.Mp_workloads.Training.entries

let test_table2_quick_shape () =
  let a = arch () in
  let machine = Mp_sim.Machine.create a.Arch.uarch in
  let fams = Mp_workloads.Training.table2 ~machine ~arch:a ~quick:true () in
  Alcotest.(check int) "21 families" 21 (List.length fams);
  let names = List.map (fun f -> f.Mp_workloads.Training.family_name) fams in
  List.iter
    (fun n -> Alcotest.(check bool) n true (List.mem n names))
    [ "Simple Integer"; "Complex Integer"; "Float/Vector"; "L1 ld"; "Caches";
      "Memory"; "Random" ];
  Alcotest.(check bool) "has entries" true
    (List.length (Mp_workloads.Training.all_entries fams) > 50)

let test_gamess_hot_phase () =
  (* gamess carries the dense-FMA hot kernel that anchors the paper's
     Figure-9 normalisation *)
  let a = arch () in
  let b = Mp_workloads.Spec.benchmark ~arch:a ~size:256 "gamess" in
  let machine = Mp_sim.Machine.create a.Arch.uarch in
  let cfg = Uarch_def.config ~cores:8 ~smt:4 a.Arch.uarch in
  let m = Mp_workloads.Spec.run ~machine ~config:cfg b in
  let peak = snd (Mp_util.Stats.min_max m.Mp_sim.Measurement.power_trace) in
  Alcotest.(check bool) "peak well above mean" true
    (peak > m.Mp_sim.Measurement.power *. 1.1)

let () =
  Alcotest.run "mp_workloads"
    [
      ("profiles",
       [ Alcotest.test_case "program valid" `Quick test_profile_program_valid;
         Alcotest.test_case "determinism" `Quick test_profile_determinism;
         Alcotest.test_case "perturb" `Quick test_profile_perturb_preserves_shape;
         Alcotest.test_case "zero weights" `Quick test_profile_zero_weights_rejected ]);
      ("spec",
       [ Alcotest.test_case "names" `Quick test_spec_names;
         Alcotest.test_case "generation" `Quick test_spec_generation;
         Alcotest.test_case "cint/cfp" `Quick test_spec_cint_cfp_split;
         Alcotest.test_case "deterministic" `Quick test_spec_deterministic;
         Alcotest.test_case "unknown" `Quick test_spec_unknown;
         Alcotest.test_case "profiles differ" `Quick test_spec_profiles_differ;
         Alcotest.test_case "gamess hot phase" `Quick test_gamess_hot_phase ]);
      ("extreme/daxpy",
       [ Alcotest.test_case "extreme cases" `Quick test_extreme_cases;
         Alcotest.test_case "activity contrast" `Quick test_extreme_activity_contrast;
         Alcotest.test_case "daxpy" `Quick test_daxpy ]);
      ("training",
       [ Alcotest.test_case "memory family" `Quick test_memory_family;
         Alcotest.test_case "GA IPC targets" `Slow test_ipc_family_ga_targets;
         Alcotest.test_case "table2 quick" `Slow test_table2_quick_shape ]);
    ]
