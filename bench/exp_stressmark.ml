(* Case study C: Figure 9 (max-power stressmarks) plus the instruction-
   order experiment the paper reports alongside it. *)

open Microprobe
open Mp_util

let spec_peak (ctx : Context.t) =
  (* the paper normalises to the maximum power exhibited by one of the
     SPEC benchmarks *during its execution*: the peak of the trace *)
  List.fold_left
    (fun acc ((c : Uarch_def.config), ms) ->
      if c.Uarch_def.cores = 8 then
        List.fold_left
          (fun acc (m : Measurement.t) ->
            Float.max acc (snd (Stats.min_max m.Measurement.power_trace)))
          acc ms
      else acc)
    0.0 (Context.spec ctx)

let fig9 (ctx : Context.t) =
  Context.section
    "Figure 9 — max-power stressmark sets (normalised to SPEC peak power)";
  let arch = ctx.Context.arch in
  let machine = ctx.Context.machine in
  let baseline = spec_peak ctx in
  Context.log "SPEC CPU2006 surrogate peak power (8 cores, all SMT modes): %.1f"
    baseline;
  let size = if ctx.Context.quick then 512 else 1024 in
  let seq_len = 6 in
  (* 1. expert manual *)
  let manual =
    Context.timed "Expert manual set" (fun () ->
        Stressmark.evaluate_set ~machine ~arch ~name:"Expert Manual" ~size
          (Stressmark.expert_manual_sequences arch))
  in
  (* 2. expert DSE: exhaustive over the expert's instruction picks *)
  let expert_space =
    Stressmark.exhaustive_sequences (Stressmark.expert_instructions arch)
      ~length:seq_len
  in
  let expert_space =
    if ctx.Context.quick then
      List.filteri (fun i _ -> i mod 8 = 0) expert_space
    else expert_space
  in
  let dse =
    Context.timed
      (Printf.sprintf "Expert DSE set (%d sequences x 3 SMT modes)"
         (List.length expert_space))
      (fun () ->
        Stressmark.evaluate_set ~machine ~arch ~name:"Expert DSE" ~size
          expert_space)
  in
  (* 3. MicroProbe: bootstrap-driven candidate selection, then exhaustive *)
  let props = Context.bootstrap_props ctx in
  let picks = Stressmark.microprobe_instructions ~isa:arch.Arch.isa props in
  Context.log "MicroProbe IPCxEPI candidates: %s [paper: mulldo, lxvw4x, xvnmsubmdp]"
    (String.concat ", "
       (List.map (fun (i : Instruction.t) -> i.Instruction.mnemonic) picks));
  let mp_space = Stressmark.exhaustive_sequences picks ~length:seq_len in
  let mp_space =
    if ctx.Context.quick then List.filteri (fun i _ -> i mod 8 = 0) mp_space
    else mp_space
  in
  let mp =
    Context.timed
      (Printf.sprintf "MicroProbe set (%d sequences x 3 SMT modes)"
         (List.length mp_space))
      (fun () ->
        Stressmark.evaluate_set ~machine ~arch ~name:"MicroProbe" ~size mp_space)
  in
  (* 4. DAXPY kernels *)
  let daxpy_evals =
    Machine.run_batch ~pool:ctx.Context.pool machine
      (List.concat_map
         (fun p ->
           List.map
             (fun smt -> (Context.config ctx ~cores:8 ~smt, p))
             [ 1; 2; 4 ])
         (Workloads.Daxpy.variants ~arch ~size ()))
    |> List.map (fun (m : Measurement.t) -> m.Measurement.power)
  in
  let table =
    Text_table.create [ "Set"; "Min"; "Mean"; "Max"; "Max vs SPEC peak" ]
  in
  let row name lo mean hi =
    Text_table.add_row table
      [ name;
        Text_table.cell_f ~decimals:3 (lo /. baseline);
        Text_table.cell_f ~decimals:3 (mean /. baseline);
        Text_table.cell_f ~decimals:3 (hi /. baseline);
        Printf.sprintf "%+.1f%%" ((hi /. baseline -. 1.0) *. 100.0) ]
  in
  let dp = Array.of_list daxpy_evals in
  row "DAXPY" (fst (Stats.min_max dp)) (Stats.mean dp) (snd (Stats.min_max dp));
  row "Expert Manual" manual.Stressmark.min_power manual.Stressmark.mean_power
    manual.Stressmark.max_power;
  row "Expert DSE" dse.Stressmark.min_power dse.Stressmark.mean_power
    dse.Stressmark.max_power;
  row "MicroProbe" mp.Stressmark.min_power mp.Stressmark.mean_power
    mp.Stressmark.max_power;
  Text_table.print table;
  Context.log "Best stressmark: %s (SMT%d) at %.1f"
    (String.concat "," mp.Stressmark.best.Stressmark.sequence)
    mp.Stressmark.best.Stressmark.smt mp.Stressmark.best.Stressmark.power;
  Context.log
    "[paper: Expert Manual ~= SPEC max; Expert DSE +9.6%%; MicroProbe +10.7%%]";
  (* the same-IPC sub-population of the Expert DSE set *)
  let top_ipc =
    List.fold_left
      (fun acc (e : Stressmark.evaluation) -> Float.max acc e.Stressmark.core_ipc)
      0.0 dse.Stressmark.evaluations
  in
  let same_ipc =
    List.filter
      (fun (e : Stressmark.evaluation) ->
        e.Stressmark.core_ipc > top_ipc -. 0.05)
      dse.Stressmark.evaluations
  in
  let powers =
    Array.of_list
      (List.map (fun (e : Stressmark.evaluation) -> e.Stressmark.power) same_ipc)
  in
  let lo, hi = Stats.min_max powers in
  Context.log
    "%d Expert-DSE stressmarks share the maximum core IPC (%.2f); their\n\
     power spans %.3f .. %.3f of the SPEC peak [paper: 181 stressmarks,\n\
     0.93 .. 1.096] — same instructions, same IPC, different order."
    (List.length same_ipc) top_ipc (lo /. baseline) (hi /. baseline)

let order_experiment (ctx : Context.t) =
  Context.section
    "Instruction order experiment — same mix and IPC, different power";
  let arch = ctx.Context.arch in
  let f = Arch.find_instruction arch in
  let multiset =
    [ f "mulldo"; f "mulldo"; f "lxvw4x"; f "lxvw4x"; f "xvnmsubmdp";
      f "xvnmsubmdp" ]
  in
  let os =
    Context.timed "evaluate all 90 distinct orders" (fun () ->
        Stressmark.order_spread ~machine:ctx.Context.machine ~arch
          ~size:(if ctx.Context.quick then 512 else 1024)
          multiset)
  in
  Context.log
    "Multiset {%s}: %d distinct orders, power %.1f .. %.1f — a %.1f%%\n\
     spread from instruction order alone [paper: up to 17%%]."
    (String.concat ", " os.Stressmark.multiset)
    os.Stressmark.n_orders os.Stressmark.min_power os.Stressmark.max_power
    os.Stressmark.spread_pct

let ga (ctx : Context.t) =
  Context.section
    "Extension — GA max-power search (batched, memoized evaluation)";
  let arch = ctx.Context.arch in
  let machine = ctx.Context.machine in
  let picks =
    Stressmark.microprobe_instructions ~isa:arch.Arch.isa
      (Context.bootstrap_props ctx)
  in
  let size = if ctx.Context.quick then 512 else 1024 in
  let dups0 = Machine.batch_dup_collapsed () + Dse.Driver.dup_collapsed () in
  let r =
    Context.timed "GA stressmark search" (fun () ->
        Stressmark.ga_search ~machine ~arch ~size ~pool:ctx.Context.pool
          ~population:(if ctx.Context.quick then 12 else 24)
          ~generations:(if ctx.Context.quick then 6 else 12)
          ~candidates:picks ~length:6 ())
  in
  let dups =
    Machine.batch_dup_collapsed () + Dse.Driver.dup_collapsed () - dups0
  in
  (* a GA over 3 candidates regenerates previously seen 6-grams every
     generation; if no duplicate was ever collapsed, the dedup path is
     dead and revisits are paying for full evaluations again *)
  if dups = 0 then
    failwith
      "ga bench: no duplicate candidates collapsed across the search — \
       batch dedup has regressed";
  Context.record_metric ctx "ga_dup_collapsed" (float_of_int dups);
  let lookups = r.Stressmark.ga_cache_hits + r.Stressmark.ga_cache_misses in
  let hit_rate =
    if lookups = 0 then 0.0
    else float_of_int r.Stressmark.ga_cache_hits /. float_of_int lookups
  in
  Context.record_metric ctx "ga_cache_hit_rate" hit_rate;
  Context.log "Best GA stressmark: %s (SMT%d) at %.1f after %d evaluations"
    (String.concat "," r.Stressmark.ga_best.Stressmark.sequence)
    r.Stressmark.ga_best.Stressmark.smt r.Stressmark.ga_best.Stressmark.power
    r.Stressmark.ga_evaluations;
  Context.log
    "Measurement cache over the search: %d hits / %d lookups (%.1f%% hit\n\
     rate) — only %d distinct simulations ran; revisited sequences were\n\
     served from the cache, and %d duplicate candidates were collapsed\n\
     before ever reaching it."
    r.Stressmark.ga_cache_hits lookups (hit_rate *. 100.0)
    r.Stressmark.ga_cache_misses dups

let heterogeneous (ctx : Context.t) =
  Context.section
    "Extension — heterogeneous per-thread stressmarks (the paper's future work)";
  let arch = ctx.Context.arch in
  let machine = ctx.Context.machine in
  let picks =
    Stressmark.microprobe_instructions ~isa:arch.Arch.isa
      (Context.bootstrap_props ctx)
  in
  let size = if ctx.Context.quick then 512 else 1024 in
  let evals, best =
    Context.timed "evaluate all thread-assignment multisets" (fun () ->
        Stressmark.heterogeneous_search ~machine ~arch ~size
          ~pool:ctx.Context.pool ~homogeneous_best:picks ())
  in
  let table = Text_table.create [ "Per-thread assignment (SMT4)"; "Power" ] in
  List.iter
    (fun (e : Stressmark.hetero_evaluation) ->
      Text_table.add_row table
        [ String.concat " | " e.Stressmark.assignment;
          Text_table.cell_f ~decimals:1 e.Stressmark.power ])
    evals;
  Text_table.print table;
  let homogeneous =
    List.find
      (fun (e : Stressmark.hetero_evaluation) ->
        List.for_all (( = ) "compute") e.Stressmark.assignment)
      evals
  in
  Context.log
    "Best assignment [%s] draws %.1f vs %.1f for the all-compute loop\n\
     (%+.1f%%): once memory-interface power counts, mixing a streaming\n\
     thread in %s — the effect MAMPO reported at system level."
    (String.concat " | " best.Stressmark.assignment)
    best.Stressmark.power homogeneous.Stressmark.power
    ((best.Stressmark.power /. homogeneous.Stressmark.power -. 1.) *. 100.)
    (if best.Stressmark.power > homogeneous.Stressmark.power +. 0.5 then "wins"
     else "does not pay off on this chip")
