open Mp_isa

(* The definition closes over the ISA it was built against so that
   resource lookups and user-side queries agree. *)
let isa_table : (string, Isa_def.t) Hashtbl.t = Hashtbl.create 4

let usage pipe occupancy = { Uarch_def.pipe; occupancy }

(* occupancies are exact rationals: [occ 119 100] is 1.19 cycles/op *)
let occ = Occupancy.make
let occ1 = Occupancy.one

(* Per-mnemonic overrides for instructions whose pipe behaviour departs
   from their class default (e.g. xstsqrtdp is a cheap *test* op that
   does not occupy the long-latency sqrt pipe). *)
let overrides : (string * Uarch_def.resources) list =
  [
    ("xstsqrtdp",
     { fixed = [ usage Pipe.Vsu occ1 ]; alt = []; latency = 3 });
    ("dcbt", { fixed = [ usage Pipe.Lsu occ1 ]; alt = []; latency = 1 });
    (* record forms: the CR write delays forwarding of the result *)
    ("andi.",
     { fixed = [];
       alt = [ usage Pipe.Fxu occ1; usage Pipe.Lsu (occ 13 10) ];
       latency = 4 });
    ("addic.", { fixed = [ usage Pipe.Fxu occ1 ]; alt = []; latency = 4 });
  ]

let mem_resources (i : Instruction.t) =
  let needs_fixup = i.update || i.algebraic in
  match i.mem with
  | Instruction.Load ->
    let fixed =
      usage Pipe.Lsu (occ 119 100)
      :: (if needs_fixup then [ usage Pipe.Update_port occ1 ] else [])
    in
    (* Latency is the L1-hit value; the simulator substitutes the
       actual data-source level's latency per access. *)
    let latency = if i.data_class = Instruction.Gpr then 3 else 5 in
    { Uarch_def.fixed; alt = []; latency }
  | Instruction.Store ->
    let wide = i.data_class <> Instruction.Gpr in
    let fixed =
      [ usage Pipe.Lsu occ1;
        usage Pipe.Store_port (if wide then occ 52 25 else occ1) ]
      @ (if wide then [ usage Pipe.Vsu (occ 1 2) ] else [])
      @ (if needs_fixup then [ usage Pipe.Update_port occ1 ] else [])
    in
    { Uarch_def.fixed; alt = []; latency = 1 }
  | Instruction.No_mem ->
    invalid_arg "Power7.mem_resources: not a memory instruction"

let class_resources (i : Instruction.t) =
  match i.exec_class with
  | Instruction.Simple_int ->
    (* Executable by the FXU or, with a small penalty, the LSU's simple
       ALU — giving the ~3.5 combined IPC of the paper's Table 3. *)
    { Uarch_def.fixed = [];
      alt = [ usage Pipe.Fxu occ1; usage Pipe.Lsu (occ 13 10) ];
      latency = 1 }
  | Instruction.Complex_int ->
    { fixed = [ usage Pipe.Fxu occ1 ]; alt = []; latency = 2 }
  | Instruction.Mul_int ->
    { fixed = [ usage Pipe.Fxu (occ 143 100) ]; alt = []; latency = 5 }
  | Instruction.Div_int ->
    { fixed = [ usage Pipe.Fxu (occ 13 1) ]; alt = []; latency = 26 }
  | Instruction.Fp_arith | Instruction.Vec_arith | Instruction.Vec_logic ->
    { fixed = [ usage Pipe.Vsu occ1 ]; alt = []; latency = 6 }
  | Instruction.Fp_fma | Instruction.Vec_fma ->
    { fixed = [ usage Pipe.Vsu occ1 ]; alt = []; latency = 6 }
  | Instruction.Fp_heavy ->
    { fixed = [ usage Pipe.Vsu (occ 17 1) ]; alt = []; latency = 30 }
  | Instruction.Dec_arith ->
    { fixed = [ usage Pipe.Vsu (occ 2 1) ]; alt = []; latency = 13 }
  | Instruction.Cmp_op ->
    { fixed = [ usage Pipe.Fxu occ1 ]; alt = []; latency = 1 }
  | Instruction.Branch_op ->
    { fixed = [ usage Pipe.Bru occ1 ]; alt = []; latency = 1 }
  | Instruction.Nop_op -> { fixed = []; alt = []; latency = 1 }
  | Instruction.Mem_op -> mem_resources i

let resources (i : Instruction.t) =
  match List.assoc_opt i.mnemonic overrides with
  | Some r -> r
  | None -> class_resources i

let define () =
  let isa = Power_isa.load () in
  let caches =
    [
      Cache_geometry.make ~level:Cache_geometry.L1 ~size_bytes:(32 * 1024)
        ~associativity:8 ~line_bytes:128 ~latency_cycles:3;
      Cache_geometry.make ~level:Cache_geometry.L2 ~size_bytes:(256 * 1024)
        ~associativity:8 ~line_bytes:128 ~latency_cycles:12;
      Cache_geometry.make ~level:Cache_geometry.L3 ~size_bytes:(4 * 1024 * 1024)
        ~associativity:8 ~line_bytes:128 ~latency_cycles:28;
    ]
  in
  let def =
    {
      Uarch_def.name = "POWER7";
      max_cores = 8;
      smt_modes = [ 1; 2; 4 ];
      dispatch_width = 6;
      completion_width = 6;
      window = 48;
      pipes =
        [ (Pipe.Fxu, 2); (Pipe.Lsu, 2); (Pipe.Vsu, 2); (Pipe.Bru, 1);
          (Pipe.Store_port, 1); (Pipe.Update_port, 1) ];
      caches;
      mem_latency = 180;
      mem_bw_lines_per_cycle = 0.45;
      freq_ghz = 3.0;
      unit_area_mm2 =
        [ (Pipe.FXU, 9.5); (Pipe.LSU, 14.0); (Pipe.VSU, 18.5); (Pipe.BRU, 3.0) ];
      pmcs = Pmc.all;
      (* LCM of every occupancy denominator the table can yield over the
         loaded ISA (100 for this definition: 119/100, 13/10, 143/100,
         52/25, 1/2 and whole cycles) — fixes the simulator's ticks-per-
         cycle resolution at machine build time. *)
      occ_den =
        Uarch_def.occ_den_of_instructions resources (Isa_def.instructions isa);
      resources;
    }
  in
  Hashtbl.replace isa_table def.name isa;
  def

let isa (def : Uarch_def.t) =
  match Hashtbl.find_opt isa_table def.name with
  | Some isa -> isa
  | None -> Power_isa.load ()
