(** Register pools and the allocation convention of generated code.

    The convention keeps operand roles in disjoint index ranges so that
    the dependency-distance pass has full control over inter-instruction
    dependencies — nothing else in the loop accidentally aliases:

    - GPR 0–7: loop control and scratch (never allocated);
    - GPR 8–15: memory base registers (rotating);
    - GPR 16–23: read-only sources;
    - GPR 24–31: rotating destinations;
    - FPR 0–15 sources, FPR 16–31 destinations;
    - VSR 0–31 sources, VSR 32–63 destinations;
    - CR fields 0–5 rotate as compare destinations. *)

type t

val create : unit -> t

val base : t -> Reg.t
(** Next rotating memory base register. *)

val source : t -> Mp_isa.Instruction.reg_class -> Reg.t
(** Next read-only source of a class. *)

val dest : t -> Mp_isa.Instruction.reg_class -> Reg.t
(** Next rotating destination of a class. *)

val all_sources : Mp_isa.Instruction.reg_class -> Reg.t list
val all_bases : Reg.t list
val all_dests : Mp_isa.Instruction.reg_class -> Reg.t list
