(** The repository of standard transformation passes (paper Section
    2.2). A pass is a named transformation over a {!Builder.t}; the
    synthesizer applies them in user order. New passes are created with
    {!custom} — the framework is extensible at user level. *)

type t = { name : string; apply : Builder.t -> unit }

val skeleton : size:int -> t
(** "Single end-less loop of [size] instructions." *)

val fill_weighted : (Mp_isa.Instruction.t * float) list -> t
(** Fill every slot by weighted sampling — the instruction-distribution
    pass. *)

val fill_uniform : Mp_isa.Instruction.t list -> t
(** Uniform random distribution over the candidates. *)

val fill_sequence : Mp_isa.Instruction.t list -> t
(** Replicate a fixed instruction sequence cyclically (the stressmark
    building block). *)

val fill_interleaved : (Mp_isa.Instruction.t * int) list -> t
(** Deterministic mix: [(ins, k)] contributes [k] slots per round,
    round-robin — gives exact ratios for IPC-targeted benchmarks. *)

val memory_model : (Ir.level * float) list -> t
(** Assign data-source levels to the memory instructions according to
    the distribution (largest-remainder apportionment over the actual
    memory slots), and record the distribution for deployment-time
    address-stream instantiation by the analytical cache model. *)

val branch_model :
  bc:Mp_isa.Instruction.t -> frequency:float -> taken_ratio:float ->
  pattern_length:int -> t
(** Overwrite a [frequency] fraction of slots with conditional branches
    whose outcome pattern has the given taken ratio. *)

val init_registers : Builder.value_policy -> t
val init_immediates : Builder.value_policy -> t

val dependency : Builder.dep_mode -> t
(** "Set instruction dependency distance" — fixed, random or none. *)

val rename : string -> t

val custom : name:string -> (Builder.t -> unit) -> t

val seed_independent : string -> bool
(** Whether a recorded pass name (the {!Ir.t.provenance} vocabulary)
    denotes a pass that consumes no randomness at build or deployment
    time. True for [skeleton], [fill_sequence], [fill_interleaved],
    [rename], constant [init_registers]/[init_immediates], and fixed or
    disabled [dependency]; false for the sampling fills, [memory_model]
    (its distribution triggers machine-rng address-stream synthesis at
    deployment), [branch_model], random-range [dependency], random
    value-init policies, and any unknown ([custom]) pass. The
    measurement layer uses this to share cache entries across machine
    seeds for programs built only from seed-independent passes. *)
