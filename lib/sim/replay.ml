(* Steady-state replay: pay a program's warmup-to-steady-state
   simulation once, then answer later measurements of the same
   structural program with a closed-form counter step.

   The period detector in Core_sim proves — by full-state fingerprint
   equality, not a digest — that the machine state repeats at an
   iteration boundary. A run that detected a period therefore factors,
   exactly, as head + k * period + tail, where the per-period counter
   delta is an integer vector. Store the run's final activity plus
   that delta, and the activity of any other admissible window is
   activity + k * delta, bit-for-bit (see the validity analysis on
   [find]). Runs that never detect a period still store their final
   activity, which replays exactly at the recorded window.

   Records are keyed on everything the activity depends on:

   - the uarch fingerprint (geometry, latencies, occupancies — and the
     base memory latency, so a bandwidth-inflated re-run keys apart
     via the explicit [mem_latency] component),
   - the SMT mode and the warmup length,
   - each per-thread program's name-free [Ir.body_hash] (opcodes,
     operands, immediates, branch patterns, register initialisation,
     memory distribution),
   - for programs that consume per-run randomness (memory address
     streams), a salt folding the RNG inputs (effective seed, run
     name, cores, smt) — pure compute programs omit it, so GA
     re-evaluations and renamed duplicates share records across names,
     seeds and core counts.

   The measured window is NOT part of the key: one record serves every
   admissible window through the period step.

   Counters are stored by opcode NAME, not intern id: ids reflect one
   machine's interning history, names are canonical. Power_sim sums
   energies in name order for exactly this reason, so reifying a
   record against any machine's opmap reproduces the measurement
   bit-for-bit. *)

open Mp_codegen

(* ----- stored data (pure, marshal-safe) ---------------------------------- *)

type snapshot = {
  s_measure : int;
  s_cycles : int;
  s_counters : int array array; (* per thread: raw_counters in order *)
  s_op_issues : (string * int) list;
  s_level_loads : int array;
  s_switch : int;
  s_transitions : (string * string * int) list;
  s_prefetches : int;
}

type period = {
  p_iters : int;
  p_cycles : int;
  p_min_total : int;
  p_counters : int array array;
  p_op_issues : (string * int) list;
  p_level_loads : int array;
  p_switch : int;
  p_transitions : (string * string * int) list;
  p_prefetches : int;
}

type record = { bases : snapshot list; period : period option }

(* Bound the per-key base list: distinct windows of one program are
   few in practice (default and bootstrap's 2x default), and any base
   extrapolates to every admissible window once a period is known. *)
let max_bases = 8

(* ----- the table --------------------------------------------------------- *)

type t = {
  table : (string, record) Hashtbl.t;
  lock : Mutex.t;
  disk_dir : string option; (* records live in dir/<shard>/<ns>-<key> *)
}

let schema_version = 1

let hits_ctr = Atomic.make 0
let misses_ctr = Atomic.make 0

let hits () = Atomic.get hits_ctr
let misses () = Atomic.get misses_ctr

let enabled () =
  match Sys.getenv_opt "MP_REPLAY" with
  | Some v ->
    not
      (List.mem
         (String.lowercase_ascii (String.trim v))
         [ "off"; "0"; "false"; "no" ])
  | None -> true

(* Same gate and directory as the measurement cache ([MP_CACHE],
   [MP_CACHE_DIR]), one level down — replay records shard and
   namespace exactly like measurement entries, so a build's records
   are pruned and GC'd by the same housekeeping story. *)
let env_disk_dir () =
  match Measurement_cache.env_disk () with
  | None -> None
  | Some d -> Some (Filename.concat d.Measurement_cache.dir "replay")

let create ?disk_dir () =
  { table = Hashtbl.create 256; lock = Mutex.create (); disk_dir }

let length t =
  Mutex.lock t.lock;
  let n = Hashtbl.length t.table in
  Mutex.unlock t.lock;
  n

let global_table = ref None
let global_lock = Mutex.create ()

let global () =
  Mutex.lock global_lock;
  let r =
    match !global_table with
    | Some r -> r
    | None ->
      let r = create ?disk_dir:(env_disk_dir ()) () in
      global_table := Some r;
      r
  in
  Mutex.unlock global_lock;
  r

(* ----- keys -------------------------------------------------------------- *)

let key ~uarch ~smt ~warmup ~mem_latency ?salt (per_thread : Ir.t array) =
  let open Mp_util.Fnv in
  let h = string seed uarch in
  let h = int h smt in
  let h = int h warmup in
  let h = int h mem_latency in
  let h =
    match salt with None -> byte h 0 | Some s -> string (byte h 1) s
  in
  let h = int h (Array.length per_thread) in
  let h =
    Array.fold_left (fun h (p : Ir.t) -> int64 h p.Ir.body_hash) h per_thread
  in
  to_hex (finish h)

(* ----- disk persistence -------------------------------------------------- *)

let shard_of key =
  if String.length key >= 2 then String.sub key 0 2 else "00"

let entry_path dir key =
  Filename.concat
    (Filename.concat dir (shard_of key))
    (Measurement_cache.namespace () ^ "-" ^ key)

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error ((Unix.EEXIST | Unix.EISDIR), _, _) -> ()
  end

let disk_read dir key =
  let path = entry_path dir key in
  try
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let v, k, (r : record) = Marshal.from_channel ic in
        if v = schema_version && k = key then Some r else None)
  with _ -> None

let disk_write dir key (r : record) =
  try
    let path = entry_path dir key in
    mkdir_p (Filename.dirname path);
    let tmp =
      Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ())
        (Hashtbl.hash (Domain.self ()))
    in
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> Marshal.to_channel oc (schema_version, key, r) []);
    Sys.rename tmp path
  with _ -> () (* best-effort, like the measurement cache *)

(* ----- activity <-> record conversion ------------------------------------ *)

let counters_to_ints (c : Measurement.counters) =
  let open Measurement in
  Array.map int_of_float
    [| c.instrs; c.dispatched; c.fxu; c.lsu; c.vsu; c.bru; c.st;
       c.l1; c.l2; c.l3; c.mem |]

let op_issues_by_name ~opmap op_issues =
  let acc = ref [] in
  for id = Array.length op_issues - 1 downto 0 do
    if op_issues.(id) <> 0 then
      acc := (Core_sim.opmap_name opmap id, op_issues.(id)) :: !acc
  done;
  !acc

let transitions_by_name ~opmap trans =
  List.map
    (fun (a, b, c) ->
      (Core_sim.opmap_name opmap a, Core_sim.opmap_name opmap b, c))
    trans

let snapshot_of_activity ~opmap ~measure (a : Core_sim.activity) =
  {
    s_measure = measure;
    s_cycles = a.Core_sim.measured_cycles;
    s_counters = Array.map counters_to_ints a.Core_sim.threads;
    s_op_issues = op_issues_by_name ~opmap a.Core_sim.op_issues;
    s_level_loads = Array.copy a.Core_sim.level_loads;
    s_switch = a.Core_sim.switch_events;
    s_transitions = transitions_by_name ~opmap a.Core_sim.transitions;
    s_prefetches = a.Core_sim.prefetches;
  }

let period_of_delta ~opmap (pd : Core_sim.period_delta) =
  {
    p_iters = pd.Core_sim.pd_period_iters;
    p_cycles = pd.Core_sim.pd_cycles;
    p_min_total = pd.Core_sim.pd_min_total;
    p_counters = pd.Core_sim.pd_counters;
    p_op_issues =
      List.map
        (fun (id, d) -> (Core_sim.opmap_name opmap id, d))
        pd.Core_sim.pd_op_issues;
    p_level_loads = pd.Core_sim.pd_level_loads;
    p_switch = pd.Core_sim.pd_switch;
    p_transitions = transitions_by_name ~opmap pd.Core_sim.pd_transitions;
    p_prefetches = pd.Core_sim.pd_prefetches;
  }

(* [base + k * period], reified against [opmap]. [k] may be negative
   (extrapolating down to a shorter window); every resulting counter
   equals the corresponding dense run's and is therefore >= 0. *)
let reify ~opmap ~daf (b : snapshot) k (p : period option) =
  let step fs fp = match p with None -> fs | Some p -> fs + (k * fp p) in
  let cycles =
    step b.s_cycles (fun p -> p.p_cycles)
  in
  let cyc_f = float_of_int cycles in
  let threads =
    Array.mapi
      (fun t bc ->
        let v i =
          float_of_int
            (match p with
             | None -> bc.(i)
             | Some p -> bc.(i) + (k * p.p_counters.(t).(i)))
        in
        {
          Measurement.cycles = cyc_f;
          instrs = v 0;
          dispatched = v 1;
          fxu = v 2;
          lsu = v 3;
          vsu = v 4;
          bru = v 5;
          st = v 6;
          l1 = v 7;
          l2 = v 8;
          l3 = v 9;
          mem = v 10;
        })
      b.s_counters
  in
  (* merge name-keyed counts: base + k * period, dropping zeros so the
     reified activity matches what a dense run reports (dense lists
     only live entries) *)
  let merge base step_list =
    let tbl = Hashtbl.create 32 in
    List.iter (fun (n, c) -> Hashtbl.replace tbl n c) base;
    (match p with
     | None -> ()
     | Some _ ->
       List.iter
         (fun (n, d) ->
           let cur = Option.value ~default:0 (Hashtbl.find_opt tbl n) in
           Hashtbl.replace tbl n (cur + (k * d)))
         step_list);
    tbl
  in
  let op_tbl =
    merge b.s_op_issues (match p with Some p -> p.p_op_issues | None -> [])
  in
  let max_id = ref 0 in
  let op_ids =
    Hashtbl.fold
      (fun name count acc ->
        let id = Core_sim.intern opmap name in
        if id > !max_id then max_id := id;
        (id, count) :: acc)
      op_tbl []
  in
  let op_issues = Array.make (!max_id + 1) 0 in
  List.iter (fun (id, c) -> op_issues.(id) <- c) op_ids;
  let trans_tbl = Hashtbl.create 32 in
  let add_trans scale l =
    List.iter
      (fun (a, b, c) ->
        let k' = (a, b) in
        let cur = Option.value ~default:0 (Hashtbl.find_opt trans_tbl k') in
        Hashtbl.replace trans_tbl k' (cur + (scale * c)))
      l
  in
  add_trans 1 b.s_transitions;
  (match p with None -> () | Some p -> add_trans k p.p_transitions);
  let transitions =
    Hashtbl.fold
      (fun (a, b) c acc ->
        if c <> 0 then (Core_sim.intern opmap a, Core_sim.intern opmap b, c) :: acc
        else acc)
      trans_tbl []
    |> List.sort compare
  in
  let level_loads =
    Array.init 4 (fun i ->
        step b.s_level_loads.(i) (fun p -> p.p_level_loads.(i)))
  in
  {
    Core_sim.measured_cycles = cycles;
    threads;
    op_issues;
    level_loads;
    switch_events = step b.s_switch (fun p -> p.p_switch);
    transitions;
    daf;
    prefetches = step b.s_prefetches (fun p -> p.p_prefetches);
  }

(* ----- lookup and recording ---------------------------------------------- *)

let lookup t key =
  Mutex.lock t.lock;
  let r = Hashtbl.find_opt t.table key in
  Mutex.unlock t.lock;
  match (r, t.disk_dir) with
  | (Some _ as r), _ | r, None -> r
  | None, Some dir ->
    (match disk_read dir key with
     | None -> None
     | Some r ->
       Mutex.lock t.lock;
       (* merge with any record another domain promoted meanwhile *)
       let merged =
         match Hashtbl.find_opt t.table key with
         | None -> r
         | Some cur ->
           {
             bases =
               List.fold_left
                 (fun acc b ->
                   if
                     List.exists
                       (fun (x : snapshot) -> x.s_measure = b.s_measure)
                       acc
                   then acc
                   else acc @ [ b ])
                 cur.bases r.bases;
             period =
               (match cur.period with Some _ -> cur.period | None -> r.period);
           }
       in
       Hashtbl.replace t.table key merged;
       Mutex.unlock t.lock;
       Some merged)

(* A window [measure] is admissible from base [b] with period [p] when
   the step count k = (measure - b.s_measure) / p_iters is integral
   and both totals stay at or above [p_min_total]:

   - The simulated trajectory up to the fingerprint match is a prefix
     of every run with total >= p_min_total (below it the run ends
     before reaching the matched state, so its counters are not of the
     head + k*period + tail form).
   - With every thread advancing p_iters iterations per period, a run
     whose total is s*p_iters larger credits exactly s more periods
     and then simulates a bit-identical tail: the skip threshold
     total - n*p_iters is unchanged. Core_sim's period skipping is
     asserted bit-identical to dense simulation, so
     dense(measure) = dense(b.s_measure) + k * delta, in both
     directions.

   Any admissible base yields the same activity (each equals the dense
   run's), so the first one wins. *)
let find_base (r : record) ~warmup ~measure =
  match List.find_opt (fun b -> b.s_measure = measure) r.bases with
  | Some b -> Some (b, 0)
  | None ->
    (match r.period with
     | Some p when p.p_iters > 0 ->
       List.find_map
         (fun b ->
           let diff = measure - b.s_measure in
           if
             diff mod p.p_iters = 0
             && warmup + measure >= p.p_min_total
             && warmup + b.s_measure >= p.p_min_total
           then Some (b, diff / p.p_iters)
           else None)
         r.bases
     | _ -> None)

let find t ~opmap ~daf ~warmup ~measure key =
  match lookup t key with
  | None ->
    Atomic.incr misses_ctr;
    None
  | Some r ->
    (match find_base r ~warmup ~measure with
     | None ->
       Atomic.incr misses_ctr;
       None
     | Some (b, k) ->
       Atomic.incr hits_ctr;
       Some (reify ~opmap ~daf b k r.period))

let record t ~opmap ~measure key (activity : Core_sim.activity)
    (pd : Core_sim.period_delta option) =
  let b = snapshot_of_activity ~opmap ~measure activity in
  let p = Option.map (period_of_delta ~opmap) pd in
  Mutex.lock t.lock;
  let cur =
    Option.value ~default:{ bases = []; period = None }
      (Hashtbl.find_opt t.table key)
  in
  let bases =
    if List.exists (fun (x : snapshot) -> x.s_measure = measure) cur.bases
    then cur.bases
    else
      let bs = b :: cur.bases in
      if List.length bs > max_bases then
        List.filteri (fun i _ -> i < max_bases) bs
      else bs
  in
  let period = match cur.period with Some _ -> cur.period | None -> p in
  let merged = { bases; period } in
  let changed = merged <> cur in
  if changed then Hashtbl.replace t.table key merged;
  Mutex.unlock t.lock;
  if changed then
    match t.disk_dir with
    | Some dir -> disk_write dir key merged
    | None -> ()
