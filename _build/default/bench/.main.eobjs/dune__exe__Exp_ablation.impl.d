bench/exp_ablation.ml: Arch Array Context Dse Float Hashtbl Instruction List Machine Matrix Measurement Microprobe Mp_util Power_model Stressmark String Text_table Uarch_def Util
