(** Functional simulation of one core's cache hierarchy: three
    set-associative LRU levels plus a sequential-stream prefetcher
    (which the paper's randomised streams are designed to defeat). The
    hierarchy is shared by the core's hardware threads, as on POWER7. *)

type t

val create : Mp_uarch.Uarch_def.t -> t

val access : t -> addr:int -> store:bool -> Mp_uarch.Cache_geometry.level
(** Perform one access; returns the data-source level (the deepest
    level that had to supply the line) and fills all upper levels.
    Stores allocate like loads (write-allocate). *)

val hits : t -> Mp_uarch.Cache_geometry.level -> int
(** Accesses sourced from a level since creation (demand only;
    prefetch fills are not counted). *)

val prefetches_issued : t -> int

val reset_stats : t -> unit
(** Clear counters but keep cache contents (for warmup/measure
    separation). *)
