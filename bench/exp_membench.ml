(* membench: the packed cache model against the list reference on
   dense memory kernels.

   Two halves, both asserting bit-identity between the models before
   trusting any clock:

   - Kernels: one single-level memory micro-benchmark per target level
     (L1/L2/L3/MEM) x SMT 1/2/4, run on a cache-off/replay-off machine
     so every lap simulates densely. The L3/MEM pools are longer than
     the measured window, so the period detector fingerprints every
     iteration boundary without ever matching — exactly the case whose
     O(sets x ways) serialization the packed model's rolling digest
     replaces. CI floors: >= 2x packed-vs-list aggregate wall-clock on
     the L3/MEM kernels, and every kernel's loads sourced
     predominantly from its targeted level.

   - Stride sweep: a raw Cache_sim throughput walk over the
     STREAM-like [Set_assoc_model.sequential_stream] at MEM footprint,
     strides 1..16 lines — the first step toward the ROADMAP's
     bandwidth-saturation campaign. At stride 1 the sequential
     prefetcher covers the walk (sources collapse to L1); stride >= 2
     defeats the streak and the walk misses to memory. The curve also
     lands in BENCH_scaling.json via the shared context.

   Artifacts: per-kernel metrics in BENCH_sim.json, the full histogram
   table in BENCH_mem.json and BENCH_mem_hist.csv (the latter read by
   `microprobe mem-stat`). *)

open Microprobe

let targets = [ Cache_geometry.L1; Cache_geometry.L2; Cache_geometry.L3;
                Cache_geometry.MEM ]

let smts = [ 1; 2; 4 ]

let strides = [ 1; 2; 4; 8; 16 ]

(* measured iterations per lap: below the 25-line L3/MEM pool length,
   so their iteration phases never repeat and every boundary pays a
   fingerprint — the list model's worst case and the packed model's
   target case *)
let measure = 16

let lname = Cache_geometry.level_to_string

(* Flip the model under [f] via the env knob the simulator reads at
   every [Cache_sim.create] — single-job [Machine.run] simulates on
   the calling domain, so the assignment is race-free here. *)
let with_model model f =
  let prev = Option.value ~default:"" (Sys.getenv_opt "MP_CACHE_MODEL") in
  Unix.putenv "MP_CACHE_MODEL" (Cache_sim.model_to_string model);
  Fun.protect ~finally:(fun () -> Unix.putenv "MP_CACHE_MODEL" prev) f

let synth_kernel (ctx : Context.t) target size =
  let arch = ctx.Context.arch in
  let lbz = Arch.find_instruction arch "lbz" in
  let synth =
    Synthesizer.create ~name:("membench-" ^ lname target) arch
  in
  Synthesizer.add_pass synth (Passes.skeleton ~size);
  Synthesizer.add_pass synth (Passes.fill_uniform [ lbz ]);
  Synthesizer.add_pass synth (Passes.memory_model [ (target, 1.0) ]);
  Synthesizer.add_pass synth (Passes.dependency Builder.No_deps);
  Synthesizer.synthesize ~seed:77 synth

type kernel = {
  k_target : Cache_geometry.level;
  k_smt : int;
  k_list_s : float;
  k_packed_s : float;
  k_frac : float array;  (* loads per source level / total, L1..MEM *)
  k_minor_words_per_cycle : float;
}

let run_kernels (ctx : Context.t) machine =
  let reps = if ctx.Context.quick then 3 else 8 in
  let size = if ctx.Context.quick then 128 else 256 in
  List.concat_map
    (fun target ->
      let p = synth_kernel ctx target size in
      List.map
        (fun smt ->
          let config = Context.config ctx ~cores:1 ~smt in
          let side model =
            with_model model (fun () ->
                (* prime lap outside the clock; later laps must
                   reproduce it bit for bit *)
                let prime = Machine.run ~measure ~period:true machine config p in
                let g0 = Gc.minor_words () in
                let t0 = Unix.gettimeofday () in
                for _ = 1 to reps do
                  let r = Machine.run ~measure ~period:true machine config p in
                  if compare prime r <> 0 then
                    failwith
                      (Printf.sprintf "membench: %s laps diverge (%s smt%d)"
                         (Cache_sim.model_to_string model) (lname target) smt)
                done;
                let dt = Unix.gettimeofday () -. t0 in
                (prime, dt, Gc.minor_words () -. g0))
          in
          let m_list, t_list, _ = side Cache_sim.List_ref in
          let m_packed, t_packed, minor = side Cache_sim.Packed in
          (* the tentpole invariant: the packed model must not change a
             single measured bit *)
          if compare m_list m_packed <> 0 then
            failwith
              (Printf.sprintf
                 "membench: packed and list results diverge (%s smt%d)"
                 (lname target) smt);
          let c = Measurement.core_counters m_packed in
          let loads = Measurement.(c.l1 +. c.l2 +. c.l3 +. c.mem) in
          let frac v = v /. Float.max 1.0 loads in
          {
            k_target = target;
            k_smt = smt;
            k_list_s = t_list;
            k_packed_s = t_packed;
            k_frac =
              Measurement.[| frac c.l1; frac c.l2; frac c.l3; frac c.mem |];
            k_minor_words_per_cycle =
              minor /. Float.max 1.0 (float_of_int reps *. c.Measurement.cycles);
          })
        smts)
    targets

(* Raw model throughput: one warm lap over the strided walk, then timed
   laps, per model; source-level counts must agree between models. *)
let stride_cell (ctx : Context.t) ~stride =
  let uarch = ctx.Context.arch.Arch.uarch in
  let stream =
    Set_assoc_model.sequential_stream ~uarch ~target:Cache_geometry.MEM
      ~stride_lines:stride
  in
  let addrs = stream.Set_assoc_model.addresses in
  let n = Array.length addrs in
  let laps = if ctx.Context.quick then 2 else 4 in
  let side model =
    let c = Cache_sim.create ~model uarch in
    Array.iter (fun a -> ignore (Cache_sim.access c ~addr:a ~store:false)) addrs;
    Cache_sim.reset_stats c;
    let t0 = Unix.gettimeofday () in
    for _ = 1 to laps do
      Array.iter
        (fun a -> ignore (Cache_sim.access c ~addr:a ~store:false))
        addrs
    done;
    let dt = Unix.gettimeofday () -. t0 in
    if not (Cache_sim.digest_consistent c) then
      failwith "membench: rolling digest diverged from recomputation";
    let hist =
      Array.of_list
        (List.map (fun l -> Cache_sim.hits c l) Cache_geometry.all_levels)
    in
    (float_of_int (laps * n) /. Float.max 1e-9 dt /. 1e6, hist)
  in
  let packed_mps, packed_hist = side Cache_sim.Packed in
  let list_mps, list_hist = side Cache_sim.List_ref in
  if packed_hist <> list_hist then
    failwith
      (Printf.sprintf "membench: stride-%d source histograms diverge" stride);
  let total =
    Float.max 1.0 (float_of_int (Array.fold_left ( + ) 0 packed_hist))
  in
  let frac = Array.map (fun h -> float_of_int h /. total) packed_hist in
  (stride, packed_mps, list_mps, frac)

(* ----- artifacts ---------------------------------------------------------- *)

let write_mem_json ~quick kernels stride_rows l3mem_speedup =
  let path = "BENCH_mem.json" in
  let oc = open_out path in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"mode\": %S,\n" (if quick then "quick" else "full");
  out "  \"l3mem_speedup\": %.6f,\n" l3mem_speedup;
  out "  \"kernels\": [\n";
  List.iteri
    (fun i k ->
      out
        "    { \"target\": %S, \"smt\": %d, \"list_seconds\": %.6f, \
         \"packed_seconds\": %.6f, \"speedup\": %.6f, \"frac\": { \"L1\": \
         %.4f, \"L2\": %.4f, \"L3\": %.4f, \"MEM\": %.4f }, \
         \"minor_words_per_cycle\": %.6f }%s\n"
        (lname k.k_target) k.k_smt k.k_list_s k.k_packed_s
        (k.k_list_s /. Float.max 1e-9 k.k_packed_s)
        k.k_frac.(0) k.k_frac.(1) k.k_frac.(2) k.k_frac.(3)
        k.k_minor_words_per_cycle
        (if i = List.length kernels - 1 then "" else ","))
    kernels;
  out "  ],\n";
  out "  \"stride_sweep\": [\n";
  List.iteri
    (fun i (s, pm, lm, frac) ->
      out
        "    { \"stride_lines\": %d, \"packed_maccess_per_s\": %.3f, \
         \"list_maccess_per_s\": %.3f, \"frac\": { \"L1\": %.4f, \"L2\": \
         %.4f, \"L3\": %.4f, \"MEM\": %.4f } }%s\n"
        s pm lm frac.(0) frac.(1) frac.(2) frac.(3)
        (if i = List.length stride_rows - 1 then "" else ","))
    stride_rows;
  out "  ]\n";
  out "}\n";
  close_out oc;
  Context.log "wrote %s" path

let write_hist_csv kernels stride_rows =
  let csv =
    Mp_util.Csv.create
      [ "kind"; "target"; "smt_or_stride"; "list_seconds_or_maccess";
        "packed_seconds_or_maccess"; "speedup"; "frac_l1"; "frac_l2";
        "frac_l3"; "frac_mem"; "minor_words_per_cycle" ]
  in
  List.iter
    (fun k ->
      Mp_util.Csv.add_row csv
        [ "kernel"; lname k.k_target; string_of_int k.k_smt;
          Printf.sprintf "%.6f" k.k_list_s;
          Printf.sprintf "%.6f" k.k_packed_s;
          Printf.sprintf "%.3f" (k.k_list_s /. Float.max 1e-9 k.k_packed_s);
          Printf.sprintf "%.4f" k.k_frac.(0);
          Printf.sprintf "%.4f" k.k_frac.(1);
          Printf.sprintf "%.4f" k.k_frac.(2);
          Printf.sprintf "%.4f" k.k_frac.(3);
          Printf.sprintf "%.6f" k.k_minor_words_per_cycle ])
    kernels;
  List.iter
    (fun (s, pm, lm, frac) ->
      Mp_util.Csv.add_row csv
        [ "stride"; "MEM"; string_of_int s; Printf.sprintf "%.3f" lm;
          Printf.sprintf "%.3f" pm;
          Printf.sprintf "%.3f" (pm /. Float.max 1e-9 lm);
          Printf.sprintf "%.4f" frac.(0); Printf.sprintf "%.4f" frac.(1);
          Printf.sprintf "%.4f" frac.(2); Printf.sprintf "%.4f" frac.(3);
          "" ])
    stride_rows;
  Mp_util.Csv.save csv "BENCH_mem_hist.csv";
  Context.log "wrote BENCH_mem_hist.csv"

(* ----- entry point -------------------------------------------------------- *)

let run (ctx : Context.t) =
  Context.section "membench — packed vs list memory hierarchy";
  let arch = ctx.Context.arch in
  (* cache and replay off: every lap re-simulates, so the clock times
     the cache model and the fingerprint path, nothing else *)
  let machine = Machine.create ~cache:false ~replay:false arch.Arch.uarch in
  let kernels = run_kernels ctx machine in
  let table =
    Mp_util.Text_table.create
      [ "Target"; "SMT"; "list s"; "packed s"; "speedup"; "frac@target";
        "minorw/cyc" ]
  in
  List.iter
    (fun k ->
      let speedup = k.k_list_s /. Float.max 1e-9 k.k_packed_s in
      let tfrac = k.k_frac.(Cache_geometry.level_rank k.k_target) in
      Mp_util.Text_table.add_row table
        [ lname k.k_target; string_of_int k.k_smt;
          Printf.sprintf "%.4f" k.k_list_s;
          Printf.sprintf "%.4f" k.k_packed_s;
          Printf.sprintf "%.2fx" speedup;
          Printf.sprintf "%.2f" tfrac;
          Printf.sprintf "%.2f" k.k_minor_words_per_cycle ];
      let base = Printf.sprintf "membench_%s_smt%d" (lname k.k_target) k.k_smt in
      Context.record_metric ctx (base ^ "_list_seconds") k.k_list_s;
      Context.record_metric ctx (base ^ "_packed_seconds") k.k_packed_s;
      Context.record_metric ctx (base ^ "_speedup") speedup;
      Context.record_metric ctx (base ^ "_target_frac") tfrac;
      Context.record_metric ctx
        (base ^ "_minor_words_per_cycle")
        k.k_minor_words_per_cycle)
    kernels;
  Mp_util.Text_table.print table;
  (* histogram sanity gate: a single-level kernel's loads must land on
     the level the analytical model guarantees *)
  List.iter
    (fun k ->
      let tfrac = k.k_frac.(Cache_geometry.level_rank k.k_target) in
      if tfrac < 0.75 then
        failwith
          (Printf.sprintf
             "membench: %s smt%d kernel sources only %.2f of its loads from \
              its target level"
             (lname k.k_target) k.k_smt tfrac))
    kernels;
  (* speedup floor on the kernels that fingerprint every boundary *)
  let deep =
    List.filter
      (fun k -> k.k_target = Cache_geometry.L3 || k.k_target = Cache_geometry.MEM)
      kernels
  in
  let sum f = List.fold_left (fun a k -> a +. f k) 0.0 deep in
  let l3mem_speedup =
    sum (fun k -> k.k_list_s) /. Float.max 1e-9 (sum (fun k -> k.k_packed_s))
  in
  Context.record_metric ctx "membench_l3mem_speedup" l3mem_speedup;
  Context.log
    "L3/MEM-resident kernels: packed %.2fx vs list (floor 2.0x);\n\
     all 12 kernels bit-identical across models"
    l3mem_speedup;
  if l3mem_speedup < 2.0 then
    failwith
      (Printf.sprintf
         "membench: packed model only %.2fx vs list on L3/MEM kernels \
          (floor 2.0x) — the dense-path or fingerprint fast path has \
          regressed"
         l3mem_speedup);
  (* stride sweep *)
  let stride_rows = List.map (fun s -> stride_cell ctx ~stride:s) strides in
  List.iter
    (fun (s, pm, lm, frac) ->
      Context.record_metric ctx
        (Printf.sprintf "membench_stride%d_packed_maccess_s" s) pm;
      Context.record_metric ctx
        (Printf.sprintf "membench_stride%d_list_maccess_s" s) lm;
      Context.log
        "stride %2d: packed %6.1f Macc/s, list %6.1f Macc/s, sources \
         L1/L2/L3/MEM %.2f/%.2f/%.2f/%.2f"
        s pm lm frac.(0) frac.(1) frac.(2) frac.(3))
    stride_rows;
  ctx.Context.membench_stride <- stride_rows;
  write_mem_json ~quick:ctx.Context.quick kernels stride_rows l3mem_speedup;
  write_hist_csv kernels stride_rows
