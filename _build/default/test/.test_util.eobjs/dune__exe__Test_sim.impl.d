test/test_sim.ml: Alcotest Arch Array Builder Cache_sim Float Machine Measurement Mp_codegen Mp_isa Mp_sim Mp_uarch Mp_util Option Passes Printf QCheck QCheck_alcotest Synthesizer
