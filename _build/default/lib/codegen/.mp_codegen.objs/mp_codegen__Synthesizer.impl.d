lib/codegen/synthesizer.ml: Arch Builder Hashtbl List Mp_util Passes Printf
