lib/sim/measurement.ml: Array Float Format Mp_uarch Pmc Uarch_def
