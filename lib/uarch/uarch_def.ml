type usage = { pipe : Pipe.t; occupancy : Occupancy.t }

type resources = { fixed : usage list; alt : usage list; latency : int }

type config = { cores : int; smt : int }

type t = {
  name : string;
  max_cores : int;
  smt_modes : int list;
  dispatch_width : int;
  completion_width : int;
  window : int;
  pipes : (Pipe.t * int) list;
  caches : Cache_geometry.t list;
  mem_latency : int;
  mem_bw_lines_per_cycle : float;
  freq_ghz : float;
  unit_area_mm2 : (Pipe.unit_kind * float) list;
  pmcs : Pmc.id list;
  occ_den : int;
  resources : Mp_isa.Instruction.t -> resources;
}

let occ_ticks t occ = Occupancy.ticks occ ~den:t.occ_den

let occ_den_of_instructions resources instructions =
  List.fold_left
    (fun acc i ->
      let r = resources i in
      let acc =
        List.fold_left
          (fun acc u -> Occupancy.lcm_den acc u.occupancy)
          acc r.fixed
      in
      List.fold_left (fun acc u -> Occupancy.lcm_den acc u.occupancy) acc r.alt)
    1 instructions

let pipe_count t p =
  match List.assoc_opt p t.pipes with None -> 0 | Some n -> n

let cache t level =
  List.find (fun (g : Cache_geometry.t) -> g.level = level) t.caches

let level_latency t = function
  | Cache_geometry.MEM -> t.mem_latency
  | level -> (cache t level).latency_cycles

let units_stressed t ins =
  let r = t.resources ins in
  let used =
    List.map (fun u -> Pipe.parent_unit u.pipe) r.fixed
    @ (match r.alt with [] -> [] | u :: _ -> [ Pipe.parent_unit u.pipe ])
  in
  List.sort_uniq Pipe.compare_unit used

let stresses t ins unit = List.mem unit (units_stressed t ins)

let peak_ipc t ins =
  let r = t.resources ins in
  let rate u =
    let n = pipe_count t u.pipe in
    if n = 0 || Occupancy.is_zero u.occupancy then infinity
    else float_of_int n /. Occupancy.to_float u.occupancy
  in
  let fixed_rate =
    List.fold_left (fun acc u -> Float.min acc (rate u)) infinity r.fixed
  in
  let alt_rate =
    match r.alt with
    | [] -> infinity
    | alts -> List.fold_left (fun acc u -> acc +. rate u) 0.0 alts
  in
  Float.min (float_of_int t.dispatch_width) (Float.min fixed_rate alt_rate)

let config ~cores ~smt t =
  if cores < 1 || cores > t.max_cores then
    invalid_arg "Uarch_def.config: core count out of range";
  if not (List.mem smt t.smt_modes) then
    invalid_arg "Uarch_def.config: unsupported SMT mode";
  { cores; smt }

let all_configs t =
  List.concat_map
    (fun cores -> List.map (fun smt -> { cores; smt }) t.smt_modes)
    (List.init t.max_cores (fun i -> i + 1))

let threads c = c.cores * c.smt

let config_to_string c = Printf.sprintf "%dc-smt%d" c.cores c.smt

let pp_config ppf c = Format.pp_print_string ppf (config_to_string c)
