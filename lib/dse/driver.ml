type 'p evaluation = { point : 'p; score : float }

type 'p result = {
  best : 'p evaluation;
  evaluations : int;
  all : 'p evaluation list;
}

(* Descending by score with an explicit NaN-last rule: a fitness that
   divides by a zero counter must sink, not poison the ordering (plain
   [compare] on floats is not even a total preorder under NaN). *)
let compare_scores_desc a b =
  match (Float.is_nan a, Float.is_nan b) with
  | true, true -> 0
  | true, false -> 1
  | false, true -> -1
  | false, false -> Float.compare b a

let compare_desc a b = compare_scores_desc a.score b.score

let best_of = function
  | [] -> invalid_arg "Driver.best_of: empty"
  | e :: rest ->
    List.fold_left
      (fun acc x -> if compare_desc x acc < 0 then x else acc)
      e rest

let top n evals =
  let sorted = List.sort compare_desc evals in
  List.filteri (fun i _ -> i < n) sorted

(* Duplicate points collapsed by [eval_list ~key] across all calls in
   this process — the driver-level complement of
   [Mp_sim.Machine.batch_dup_collapsed]. *)
let dups = Atomic.make 0

let dup_collapsed () = Atomic.get dups

let eval_all ?eval_batch ~eval points =
  match eval_batch with
  | None ->
    List.rev (List.rev_map (fun p -> { point = p; score = eval p }) points)
  | Some batch ->
    let scores = batch points in
    if List.length scores <> List.length points then
      invalid_arg "Driver.eval_list: eval_batch returned a different length";
    List.map2 (fun p s -> { point = p; score = s }) points scores

let eval_list ?key ?eval_batch ~eval points =
  match key with
  | None -> eval_all ?eval_batch ~eval points
  | Some key ->
    (* Evaluation is a pure function of the point's key, so score each
       distinct key once — in first-occurrence order, exactly the
       sequence a pre-deduplicated caller would submit — and scatter
       the scores back positionally. *)
    let slot_of = Hashtbl.create 64 in
    let uniques = ref [] in
    let n_unique = ref 0 in
    let slots =
      List.map
        (fun p ->
          let k = key p in
          match Hashtbl.find_opt slot_of k with
          | Some slot ->
            Atomic.incr dups;
            slot
          | None ->
            let slot = !n_unique in
            Hashtbl.add slot_of k slot;
            incr n_unique;
            uniques := p :: !uniques;
            slot)
        points
    in
    let evaluated =
      Array.of_list (eval_all ?eval_batch ~eval (List.rev !uniques))
    in
    List.map2
      (fun p slot -> { point = p; score = evaluated.(slot).score })
      points slots
