(** Common result shape of the search drivers. *)

type 'p evaluation = { point : 'p; score : float }

type 'p result = {
  best : 'p evaluation;
  evaluations : int;
  all : 'p evaluation list;  (** every evaluated point, in evaluation order *)
}

val best_of : 'p evaluation list -> 'p evaluation
(** Highest score; raises [Invalid_argument] on an empty list. *)

val top : int -> 'p evaluation list -> 'p evaluation list
(** The [n] highest-scoring evaluations, best first. *)
