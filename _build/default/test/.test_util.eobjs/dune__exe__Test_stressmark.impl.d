test/test_stressmark.ml: Alcotest Arch Cache_geometry Float Ir List Mp_codegen Mp_epi Mp_isa Mp_sim Mp_stressmark Mp_uarch Pipe Uarch_def
