(* Bechamel micro-timings of the framework's hot kernels: one Test.make
   per pipeline stage (synthesis, deployment+simulation, model fitting,
   a GA step and the analytical memory planner). *)

open Bechamel
open Toolkit
open Microprobe

let tests (ctx : Context.t) =
  let arch = ctx.Context.arch in
  let machine = ctx.Context.machine in
  let cfg1 = Context.config ctx ~cores:1 ~smt:1 in
  let cfg84 = Context.config ctx ~cores:8 ~smt:4 in
  let add = Arch.find_instruction arch "add" in
  let lbz = Arch.find_instruction arch "lbz" in
  let mk_synth () =
    let s = Synthesizer.create ~name:"bench" arch in
    Synthesizer.add_pass s (Passes.skeleton ~size:1024);
    Synthesizer.add_pass s (Passes.fill_uniform [ add; lbz ]);
    Synthesizer.add_pass s (Passes.memory_model [ (Cache_geometry.L1, 1.0) ]);
    Synthesizer.add_pass s (Passes.dependency (Builder.Random_range (1, 8)));
    s
  in
  let synth = mk_synth () in
  let program = Synthesizer.synthesize ~seed:1 synth in
  (* periodic steady-state kernel for the dense-vs-skipping pair: pure
     fadd reaches a bit-exact repeating state, and the cache-less
     machine makes every run an actual simulation *)
  let periodic =
    let s = Synthesizer.create ~name:"bench-period" arch in
    Synthesizer.add_pass s (Passes.skeleton ~size:256);
    Synthesizer.add_pass s
      (Passes.fill_sequence [ Arch.find_instruction arch "fadd" ]);
    Synthesizer.add_pass s (Passes.dependency Builder.No_deps);
    Synthesizer.synthesize ~seed:7 s
  in
  let nocache = Machine.create ~cache:false arch.Arch.uarch in
  let cfg42 = Context.config ctx ~cores:4 ~smt:2 in
  let counter = ref 0 in
  let dataset =
    (* a small regression problem representative of model training *)
    let rng = Util.Rng.create 7 in
    let rows =
      Array.init 200 (fun _ -> Array.init 8 (fun _ -> Util.Rng.float rng 1.0))
    in
    let y = Array.map (fun r -> Array.fold_left ( +. ) 0.1 r) rows in
    (Util.Matrix.of_arrays rows, y)
  in
  [
    Test.make ~name:"synthesize 1K-instruction loop"
      (Staged.stage (fun () ->
           incr counter;
           ignore (Synthesizer.synthesize ~seed:!counter synth)));
    Test.make ~name:"simulate+measure @1c-smt1"
      (Staged.stage (fun () -> ignore (Machine.run machine cfg1 program)));
    Test.make ~name:"simulate+measure @8c-smt4"
      (Staged.stage (fun () -> ignore (Machine.run machine cfg84 program)));
    Test.make ~name:"simulate dense measure=48 @4c-smt2"
      (Staged.stage (fun () ->
           ignore
             (Machine.run ~measure:48 ~period:false nocache cfg42 periodic)));
    Test.make ~name:"simulate period-skip measure=48 @4c-smt2"
      (Staged.stage (fun () ->
           ignore
             (Machine.run ~measure:48 ~period:true nocache cfg42 periodic)));
    Test.make ~name:"NNLS fit (200x8)"
      (Staged.stage (fun () ->
           let x, y = dataset in
           ignore (Util.Matrix.nnls ~iterations:200 x y)));
    Test.make ~name:"OLS fit (200x8)"
      (Staged.stage (fun () ->
           let x, y = dataset in
           ignore (Util.Matrix.ols x y)));
    Test.make ~name:"analytical memory plan (4 levels)"
      (Staged.stage (fun () ->
           let plan =
             Set_assoc_model.create ~uarch:arch.Arch.uarch
               ~distribution:
                 [ (Cache_geometry.L1, 0.25); (Cache_geometry.L2, 0.25);
                   (Cache_geometry.L3, 0.25); (Cache_geometry.MEM, 0.25) ]
               ()
           in
           let rng = Util.Rng.create 3 in
           ignore
             (Set_assoc_model.coordinated_streams plan rng
                ~targets:(Array.make 64 Cache_geometry.L2))));
    Test.make ~name:"emit asm (1K loop)"
      (Staged.stage (fun () -> ignore (Emit.to_asm program)));
  ]

let run (ctx : Context.t) =
  Context.section "Bechamel — framework kernel timings";
  let cfg =
    Benchmark.cfg ~limit:500
      ~quota:(Time.second (if ctx.Context.quick then 0.25 else 0.5))
      ~kde:None ()
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let raw =
    Benchmark.all cfg [ Instance.monotonic_clock ]
      (Test.make_grouped ~name:"microprobe" (tests ctx))
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let table = Mp_util.Text_table.create [ "Kernel"; "ns/run"; "R^2" ] in
  let rows = ref [] in
  Hashtbl.iter (fun name ols -> rows := (name, ols) :: !rows) results;
  List.iter
    (fun (name, ols) ->
      let est =
        match Analyze.OLS.estimates ols with
        | Some (e :: _) -> Printf.sprintf "%.0f" e
        | _ -> "-"
      in
      let r2 =
        match Analyze.OLS.r_square ols with
        | Some r when not (Float.is_nan r) -> Printf.sprintf "%.3f" r
        | _ -> "-"
      in
      Mp_util.Text_table.add_row table [ name; est; r2 ])
    (List.sort compare !rows);
  Mp_util.Text_table.print table
