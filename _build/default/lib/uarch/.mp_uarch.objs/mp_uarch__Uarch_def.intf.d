lib/uarch/uarch_def.mli: Cache_geometry Format Mp_isa Pipe Pmc
