(** Exhaustive search over an enumerated design space — feasible once
    micro-architecture heuristics have constrained the space to the
    points of interest (the paper's Section 6 argument). *)

val search :
  ?on_progress:(int -> 'p Driver.evaluation -> unit) ->
  eval:('p -> float) ->
  'p list ->
  'p Driver.result
(** Evaluate every point. [on_progress] fires after each evaluation
    with the running count. Raises [Invalid_argument] on an empty
    space. *)
