lib/codegen/passes.ml: Array Builder Float Instruction List Mp_isa Mp_util Printf
