(* A crash-tolerant pool of worker subprocesses driven over
   stdin/stdout pipes. This is the transport layer under
   Mp_sim.Shard_exec: it owns process lifecycle (spawn, reap, respawn)
   and byte-level framing, and knows nothing about what the frames
   mean. Every failure mode — a worker that died, a truncated or
   oversized frame, a write into a broken pipe, a read that times out —
   degrades to "this worker is gone" (the slot is reaped and the call
   reports failure); the *caller* decides what to do with the jobs that
   were in flight. That split keeps the recovery story testable with a
   plain [/bin/cat] echo worker. *)

(* ----- framing ----------------------------------------------------------- *)

(* The codec itself lives in [Transport] (shared with the socket
   transport, [Netpool]); these aliases keep the historical Procpool
   names working for the worker side of the protocol and for tests. *)
let max_frame_bytes = Transport.max_frame_bytes
let write_all = Transport.write_all
let write_frame = Transport.write_frame
let read_frame = Transport.read_frame

(* ----- process-wide telemetry -------------------------------------------- *)

(* Cumulative over every pool in the process, so the bench harness can
   report one number per metric without threading pool handles around. *)
let respawns = Atomic.make 0
let sent = Atomic.make 0
let received = Atomic.make 0

let respawn_count () = Atomic.get respawns
let frames_sent () = Atomic.get sent
let frames_received () = Atomic.get received

(* ----- the pool ---------------------------------------------------------- *)

type worker = {
  mutable pid : int; (* -1 when the slot holds no live process *)
  mutable to_fd : Unix.file_descr option;
  mutable from_fd : Unix.file_descr option;
  mutable spawned_once : bool; (* a later spawn is a respawn *)
}

type t = {
  prog : string;
  argv : string array;
  env : string array;
  lock : Mutex.t; (* guards worker slots (spawn/reap transitions) *)
  mutable workers : worker array;
}

(* Overrides win over the inherited environment; first occurrence of a
   key wins within the override list itself. *)
let child_env overrides =
  let seen = Hashtbl.create 8 in
  let ov =
    List.filter_map
      (fun (k, v) ->
        if Hashtbl.mem seen k then None
        else begin
          Hashtbl.add seen k ();
          Some (k ^ "=" ^ v)
        end)
      overrides
  in
  let inherited =
    Array.to_list (Unix.environment ())
    |> List.filter (fun s ->
           match String.index_opt s '=' with
           | Some i -> not (Hashtbl.mem seen (String.sub s 0 i))
           | None -> true)
  in
  Array.of_list (ov @ inherited)

let fresh_worker () =
  { pid = -1; to_fd = None; from_fd = None; spawned_once = false }

(* cloexec on the ends we keep: a worker spawned later must not inherit
   an earlier worker's pipe ends, or closing our copy would no longer
   deliver EOF to that worker *)
let spawn t w =
  let in_r, in_w = Unix.pipe ~cloexec:true () in
  let out_r, out_w = Unix.pipe ~cloexec:true () in
  match Unix.create_process_env t.prog t.argv t.env in_r out_w Unix.stderr with
  | exception e ->
    List.iter (fun fd -> try Unix.close fd with _ -> ()) [ in_r; in_w; out_r; out_w ];
    raise e
  | pid ->
    Unix.close in_r;
    Unix.close out_w;
    (* non-blocking writes so a worker that stopped draining its stdin
       can't wedge the coordinator (see [write_all]) *)
    Unix.set_nonblock in_w;
    if w.spawned_once then Atomic.incr respawns;
    w.spawned_once <- true;
    w.pid <- pid;
    w.to_fd <- Some in_w;
    w.from_fd <- Some out_r

(* must hold t.lock *)
let reap_locked w =
  (match w.to_fd with Some fd -> (try Unix.close fd with _ -> ()) | None -> ());
  (match w.from_fd with Some fd -> (try Unix.close fd with _ -> ()) | None -> ());
  w.to_fd <- None;
  w.from_fd <- None;
  if w.pid > 0 then begin
    (try Unix.kill w.pid Sys.sigkill with _ -> ());
    (try ignore (Unix.waitpid [] w.pid) with _ -> ())
  end;
  w.pid <- -1

let create ?(env = []) ~prog ~args n =
  (* a write into a pipe whose worker just died must surface as EPIPE,
     not kill the coordinator *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with _ -> ());
  let n = max 1 n in
  let t =
    {
      prog;
      argv = Array.of_list (prog :: args);
      env = child_env env;
      lock = Mutex.create ();
      workers = Array.init n (fun _ -> fresh_worker ());
    }
  in
  Array.iter (fun w -> spawn t w) t.workers;
  t

let size t = Array.length t.workers

let ensure_size t n =
  Mutex.lock t.lock;
  let cur = Array.length t.workers in
  if n > cur then
    t.workers <-
      Array.append t.workers (Array.init (n - cur) (fun _ -> fresh_worker ()));
  Mutex.unlock t.lock

let pid t i =
  let w = t.workers.(i) in
  if w.pid > 0 then Some w.pid else None

let send ?timeout_s t i payload =
  let deadline = Option.map (fun s -> Unix.gettimeofday () +. s) timeout_s in
  Mutex.lock t.lock;
  let w = t.workers.(i) in
  let fd =
    if w.pid <= 0 then (match spawn t w with () -> w.to_fd | exception _ -> None)
    else w.to_fd
  in
  let ok =
    match fd with
    | None -> false
    | Some fd ->
      (match write_frame ?deadline fd payload with
       | () ->
         Atomic.incr sent;
         true
       | exception _ ->
         reap_locked w;
         false)
  in
  Mutex.unlock t.lock;
  ok

(* test hook: write raw bytes with no framing, to simulate a worker (or
   coordinator) that emits a truncated or corrupt frame *)
let send_raw t i payload =
  Mutex.lock t.lock;
  let w = t.workers.(i) in
  let ok =
    match w.to_fd with
    | None -> false
    | Some fd ->
      (match write_all fd payload 0 (Bytes.length payload) with
       | () -> true
       | exception _ ->
         reap_locked w;
         false)
  in
  Mutex.unlock t.lock;
  ok

let recv ?timeout_s t i =
  let fd =
    Mutex.lock t.lock;
    let fd = t.workers.(i).from_fd in
    Mutex.unlock t.lock;
    fd
  in
  match fd with
  | None -> None
  | Some fd ->
    (* the read itself runs outside the lock — a slow worker must not
       block sends to its siblings *)
    (match read_frame ?timeout_s fd with
     | Some payload ->
       Atomic.incr received;
       Some payload
     | None ->
       Mutex.lock t.lock;
       reap_locked t.workers.(i);
       Mutex.unlock t.lock;
       None)

let reap t i =
  Mutex.lock t.lock;
  reap_locked t.workers.(i);
  Mutex.unlock t.lock

(* test hook: SIGKILL the process but leave the slot's bookkeeping
   alone, exactly like a real crash — the next send/recv discovers the
   death and reaps *)
let kill t i =
  Mutex.lock t.lock;
  let w = t.workers.(i) in
  if w.pid > 0 then (try Unix.kill w.pid Sys.sigkill with _ -> ());
  Mutex.unlock t.lock

(* view slot [i] as a generic transport endpoint, so Shard_exec can
   drive a mixed pool of subprocesses and TCP peers uniformly *)
let endpoint t i =
  let field f =
    Mutex.lock t.lock;
    let fd = f t.workers.(i) in
    Mutex.unlock t.lock;
    fd
  in
  {
    Transport.ep_label = Printf.sprintf "proc:%d" i;
    ep_send = (fun ?timeout_s payload -> send ?timeout_s t i payload);
    ep_recv = (fun ?timeout_s () -> recv ?timeout_s t i);
    ep_reap = (fun () -> reap t i);
    ep_rfd = (fun () -> field (fun w -> w.from_fd));
    ep_wfd = (fun () -> field (fun w -> w.to_fd));
  }

let shutdown ?(grace_s = 1.0) t =
  Mutex.lock t.lock;
  let workers = t.workers in
  (* closing stdin delivers EOF: a healthy worker exits on its own *)
  Array.iter
    (fun w ->
      (match w.to_fd with Some fd -> (try Unix.close fd with _ -> ()) | None -> ());
      w.to_fd <- None)
    workers;
  let deadline = Unix.gettimeofday () +. grace_s in
  Array.iter
    (fun w ->
      if w.pid > 0 then begin
        let rec wait () =
          match Unix.waitpid [ Unix.WNOHANG ] w.pid with
          | 0, _ ->
            if Unix.gettimeofday () < deadline then begin
              Unix.sleepf 0.005;
              wait ()
            end
            else begin
              (try Unix.kill w.pid Sys.sigkill with _ -> ());
              (try ignore (Unix.waitpid [] w.pid) with _ -> ())
            end
          | _ -> ()
          | exception _ -> ()
        in
        wait ();
        w.pid <- -1
      end;
      (match w.from_fd with Some fd -> (try Unix.close fd with _ -> ()) | None -> ());
      w.from_fd <- None)
    workers;
  Mutex.unlock t.lock
