lib/epi/bootstrap.ml: Arch Array Builder Float Hashtbl Instruction List Machine Measurement Mp_codegen Mp_isa Mp_sim Mp_uarch Passes Printf Synthesizer
