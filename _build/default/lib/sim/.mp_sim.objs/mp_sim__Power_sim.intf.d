lib/sim/power_sim.mli: Core_sim Energy_table Mp_uarch Mp_util
