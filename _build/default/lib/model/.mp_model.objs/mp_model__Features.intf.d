lib/model/features.mli: Mp_sim
