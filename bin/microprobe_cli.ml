(* microprobe — command-line front end to the framework.

   Sub-commands:
     list-isa    print the instruction registry (with filters)
     isa-text    dump the ISA definition in the text-file format
     generate    synthesize a micro-benchmark and emit asm/C
     measure     synthesize, deploy and measure a micro-benchmark
     bootstrap   derive latency/throughput/units/EPI for instructions
     stressmark  run a compact max-power search
     worker      serve as a persistent remote measurement worker (TCP)
     mp-cache    disk measurement-cache housekeeping (gc, stat)
     mem-stat    per-level histogram of the last membench run
*)

open Microprobe
open Cmdliner

let arch = lazy (get_architecture "POWER7")

(* ----- shared argument parsing ------------------------------------------- *)

let parse_mix arch_v s =
  (* "add:2,mulld:1" or "add,mulld" *)
  String.split_on_char ',' s
  |> List.filter (fun x -> String.trim x <> "")
  |> List.map (fun item ->
         match String.split_on_char ':' (String.trim item) with
         | [ m ] -> (Arch.find_instruction arch_v m, 1.0)
         | [ m; w ] -> (Arch.find_instruction arch_v m, float_of_string w)
         | _ -> failwith ("bad mix item: " ^ item))

let parse_mem s =
  (* "L1:50,L2:50" *)
  String.split_on_char ',' s
  |> List.filter (fun x -> String.trim x <> "")
  |> List.map (fun item ->
         match String.split_on_char ':' (String.trim item) with
         | [ l; w ] ->
           (match Cache_geometry.level_of_string (String.trim l) with
            | Some level -> (level, float_of_string w)
            | None -> failwith ("bad level: " ^ l))
         | _ -> failwith ("bad memory item: " ^ item))

let build_program ~mix ~mem ~dep ~size ~seed ~zero_data =
  let a = Lazy.force arch in
  let weighted = parse_mix a mix in
  let synth = Synthesizer.create ~name:"cli" a in
  Synthesizer.add_pass synth (Passes.skeleton ~size);
  Synthesizer.add_pass synth (Passes.fill_weighted weighted);
  (match mem with
   | "" ->
     if List.exists (fun (i, _) -> Instruction.is_memory i) weighted then
       Synthesizer.add_pass synth
         (Passes.memory_model [ (Cache_geometry.L1, 1.0) ])
   | spec -> Synthesizer.add_pass synth (Passes.memory_model (parse_mem spec)));
  let dep_mode =
    match dep with
    | 0 -> Builder.No_deps
    | d when d > 0 -> Builder.Fixed d
    | _ -> Builder.Random_range (1, 8)
  in
  Synthesizer.add_pass synth (Passes.dependency dep_mode);
  let policy =
    if zero_data then Builder.Constant 0L else Builder.Random_values
  in
  Synthesizer.add_pass synth (Passes.init_registers policy);
  Synthesizer.add_pass synth (Passes.init_immediates policy);
  Synthesizer.synthesize ~seed synth

(* common options *)
let size_t =
  Arg.(value & opt int 4096 & info [ "size" ] ~docv:"N" ~doc:"Loop body size.")

let seed_t =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"S" ~doc:"Generation seed.")

let mix_t =
  Arg.(
    value
    & opt string "add"
    & info [ "mix" ] ~docv:"SPEC"
        ~doc:"Instruction mix, e.g. $(b,add:2,mulld:1).")

let mem_t =
  Arg.(
    value
    & opt string ""
    & info [ "mem" ] ~docv:"SPEC"
        ~doc:"Memory distribution, e.g. $(b,L1:50,L2:50). Levels: L1 L2 L3 MEM.")

let dep_t =
  Arg.(
    value
    & opt int 0
    & info [ "dep" ] ~docv:"D"
        ~doc:"Dependency distance: 0 = none, -1 = random, d>0 = fixed.")

let zero_data_t =
  Arg.(value & flag & info [ "zero-data" ] ~doc:"Initialise data to zero.")

let cores_t =
  Arg.(value & opt int 8 & info [ "cores" ] ~docv:"N" ~doc:"Enabled cores (1-8).")

let smt_t =
  Arg.(value & opt int 1 & info [ "smt" ] ~docv:"K" ~doc:"SMT mode (1, 2 or 4).")

(* ----- list-isa ------------------------------------------------------------ *)

let list_isa filter =
  let a = Lazy.force arch in
  let pred (i : Instruction.t) =
    match filter with
    | "" -> true
    | "load" -> Instruction.is_load i
    | "store" -> Instruction.is_store i
    | "memory" -> Instruction.is_memory i
    | "vector" -> Instruction.is_vector i
    | "float" -> Instruction.is_float i
    | "integer" -> Instruction.is_integer i
    | "branch" -> Instruction.is_branch i
    | other -> failwith ("unknown filter: " ^ other)
  in
  let table =
    Util.Text_table.create
      [ "Mnemonic"; "Class"; "Form"; "Width"; "Units"; "Peak IPC";
        "Description" ]
  in
  List.iter
    (fun (i : Instruction.t) ->
      if pred i then
        Util.Text_table.add_row table
          [ i.Instruction.mnemonic;
            Instruction.exec_class_to_string i.Instruction.exec_class;
            Instruction.form_to_string i.Instruction.form;
            string_of_int i.Instruction.width;
            String.concat "+"
              (List.map Pipe.unit_to_string
                 (Uarch_def.units_stressed a.Arch.uarch i));
            Printf.sprintf "%.2f" (Uarch_def.peak_ipc a.Arch.uarch i);
            i.Instruction.description ])
    (Isa_def.instructions a.Arch.isa);
  Util.Text_table.print table;
  0

let list_isa_cmd =
  let filter =
    Arg.(
      value & opt string ""
      & info [ "filter" ] ~docv:"KIND"
          ~doc:"Only list $(docv): load, store, memory, vector, float, \
                integer or branch.")
  in
  Cmd.v (Cmd.info "list-isa" ~doc:"Print the instruction registry")
    Term.(const list_isa $ filter)

(* ----- isa-text ------------------------------------------------------------- *)

let isa_text () =
  print_string (Power_isa.definition_text ());
  0

let isa_text_cmd =
  Cmd.v
    (Cmd.info "isa-text" ~doc:"Dump the ISA definition in the text-file format")
    Term.(const isa_text $ const ())

(* ----- generate --------------------------------------------------------------- *)

let generate mix mem dep size seed zero_data emit_c out =
  let p = build_program ~mix ~mem ~dep ~size ~seed ~zero_data in
  let text = if emit_c then Emit.to_c p else Emit.to_asm p in
  (match out with
   | "" -> print_string text
   | file ->
     let oc = open_out file in
     output_string oc text;
     close_out oc;
     Printf.printf "wrote %s (%d instructions)\n" file (Ir.size p));
  0

let generate_cmd =
  let emit_c =
    Arg.(value & flag & info [ "c" ] ~doc:"Emit a C harness instead of asm.")
  in
  let out =
    Arg.(value & opt string "" & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Write to $(docv) instead of stdout.")
  in
  Cmd.v (Cmd.info "generate" ~doc:"Synthesize a micro-benchmark")
    Term.(
      const generate $ mix_t $ mem_t $ dep_t $ size_t $ seed_t $ zero_data_t
      $ emit_c $ out)

(* ----- measure ------------------------------------------------------------------ *)

let measure mix mem dep size seed zero_data cores smt =
  let a = Lazy.force arch in
  let p = build_program ~mix ~mem ~dep ~size ~seed ~zero_data in
  let machine = Machine.create a.Arch.uarch in
  let config = Uarch_def.config ~cores ~smt a.Arch.uarch in
  let m = Machine.run machine config p in
  let c = Measurement.core_counters m in
  Printf.printf "configuration   : %s\n" (Uarch_def.config_to_string config);
  Printf.printf "core IPC        : %.3f\n" m.Measurement.core_ipc;
  Printf.printf "chip power      : %.2f (idle %.2f)\n" m.Measurement.power
    (Machine.idle_reading machine config);
  List.iter
    (fun id ->
      Printf.printf "%-15s : %.0f\n" (Pmc.name id) (Measurement.read c id))
    Pmc.all;
  0

let measure_cmd =
  Cmd.v
    (Cmd.info "measure" ~doc:"Synthesize, deploy and measure a micro-benchmark")
    Term.(
      const measure $ mix_t $ mem_t $ dep_t $ size_t $ seed_t $ zero_data_t
      $ cores_t $ smt_t)

(* ----- bootstrap ----------------------------------------------------------------- *)

let bootstrap mnemonics =
  let a = Lazy.force arch in
  let machine = Machine.create a.Arch.uarch in
  let instructions =
    match mnemonics with
    | [] -> None
    | ms -> Some (List.map (Arch.find_instruction a) ms)
  in
  let props = Epi.Bootstrap.run ~machine ~arch:a ?instructions () in
  let table =
    Util.Text_table.create
      [ "Instr."; "Latency"; "Thread IPC"; "Core IPC"; "EPI"; "Units" ]
  in
  List.iter
    (fun (p : Epi.Bootstrap.props) ->
      Util.Text_table.add_row table
        [ p.Epi.Bootstrap.mnemonic;
          Printf.sprintf "%.1f" p.Epi.Bootstrap.derived_latency;
          Printf.sprintf "%.2f" p.Epi.Bootstrap.throughput;
          Printf.sprintf "%.2f" p.Epi.Bootstrap.core_ipc;
          Printf.sprintf "%.3f" p.Epi.Bootstrap.epi;
          String.concat "+"
            (List.map Pipe.unit_to_string p.Epi.Bootstrap.units) ])
    props;
  Util.Text_table.print table;
  0

let bootstrap_cmd =
  let mnemonics =
    Arg.(value & pos_all string [] & info [] ~docv:"MNEMONIC"
           ~doc:"Instructions to bootstrap (default: the whole ISA).")
  in
  Cmd.v
    (Cmd.info "bootstrap"
       ~doc:"Derive latency, throughput, units and EPI from measurements")
    Term.(const bootstrap $ mnemonics)

(* ----- stressmark ----------------------------------------------------------------- *)

let stressmark subsample =
  let a = Lazy.force arch in
  let machine = Machine.create a.Arch.uarch in
  let pool =
    [ "mulldo"; "mullw"; "lxvw4x"; "lxvd2x"; "xvnmsubmdp"; "xvmaddadp" ]
  in
  Printf.printf "bootstrapping candidates...\n%!";
  let props =
    Epi.Bootstrap.run ~machine ~arch:a
      ~instructions:(List.map (Arch.find_instruction a) pool)
      ()
  in
  let picks = Stressmark.microprobe_instructions ~isa:a.Arch.isa props in
  Printf.printf "per-unit IPCxEPI picks: %s\n%!"
    (String.concat ", "
       (List.map (fun (i : Instruction.t) -> i.Instruction.mnemonic) picks));
  let space =
    Stressmark.exhaustive_sequences picks ~length:6
    |> List.filteri (fun i _ -> i mod max 1 subsample = 0)
  in
  Printf.printf "searching %d sequences x 3 SMT modes...\n%!"
    (List.length space);
  let s = Stressmark.evaluate_set ~machine ~arch:a ~name:"cli" space in
  Printf.printf
    "power range %.1f .. %.1f; best %.1f with [%s] on SMT%d\n"
    s.Stressmark.min_power s.Stressmark.max_power
    s.Stressmark.best.Stressmark.power
    (String.concat ", " s.Stressmark.best.Stressmark.sequence)
    s.Stressmark.best.Stressmark.smt;
  0

let stressmark_cmd =
  let subsample =
    Arg.(value & opt int 3 & info [ "subsample" ] ~docv:"K"
           ~doc:"Evaluate every $(docv)-th sequence (1 = exhaustive).")
  in
  Cmd.v (Cmd.info "stressmark" ~doc:"Run a compact max-power search")
    Term.(const stressmark $ subsample)

(* ----- worker -------------------------------------------------------------------- *)

(* A persistent remote worker: coordinators with MP_HOSTS pointing here
   shard measurement batches onto this process over TCP. The serve loop
   returns on SIGTERM/SIGINT after finishing any in-flight request, so
   a supervisor restart never loses a coordinator's job (the
   coordinator re-runs whatever a hard kill drops anyway). *)
let worker listen =
  match Shard_exec.parse_hosts listen with
  | [ (host, port) ] ->
    Printf.eprintf "microprobe worker: listening on %s:%d\n" host port;
    Printf.eprintf "namespace: %s\n%!" (Measurement_cache.namespace ());
    Shard_exec.serve ~host ~port ();
    prerr_endline "microprobe worker: drained, exiting";
    0
  | _ ->
    prerr_endline "worker: --listen must be HOST:PORT";
    2

let worker_cmd =
  let listen_t =
    Arg.(
      required
      & opt (some string) None
      & info [ "listen" ] ~docv:"HOST:PORT"
          ~doc:
            "Bind address. Coordinators list it in $(b,MP_HOSTS); both \
             ends must run the identical binary (enforced by the \
             namespace handshake on connect).")
  in
  Cmd.v
    (Cmd.info "worker"
       ~doc:
         "Serve as a persistent remote measurement worker until \
          SIGTERM/SIGINT (in-flight requests finish first)")
    Term.(const worker $ listen_t)

(* ----- mp-cache ------------------------------------------------------------------ *)

let mib = 1024.0 *. 1024.0

let cache_gc dir max_mb =
  let dir =
    match dir with
    | "" ->
      (match Measurement_cache.env_disk () with
       | Some d -> d.Measurement_cache.dir
       | None -> "_mp_cache")
    | d -> d
  in
  let max_bytes =
    match max_mb with
    | Some mb when mb > 0.0 -> Some (int_of_float (mb *. mib))
    | Some _ -> None
    | None -> Measurement_cache.env_max_bytes ()
  in
  match max_bytes with
  | None ->
    prerr_endline
      "mp-cache gc: no size bound given (pass --max-mb or set MP_CACHE_MAX_MB)";
    2
  | Some b ->
    if not (Sys.file_exists dir) then begin
      Printf.printf "%s: no cache directory, nothing to do\n" dir;
      0
    end
    else begin
      let s = Measurement_cache.gc ~max_bytes:b dir in
      Printf.printf
        "%s: %d entries, %.1f MiB -> %.1f MiB (removed %d, bound %.1f MiB)\n"
        dir s.Measurement_cache.entries
        (float_of_int s.Measurement_cache.bytes_before /. mib)
        (float_of_int s.Measurement_cache.bytes_after /. mib)
        s.Measurement_cache.removed
        (float_of_int b /. mib);
      0
    end

(* minimal JSON string escaping: paths and namespaces are the only
   strings we emit, but a backslash-y path must still round-trip *)
let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* What's on disk for the current build: entry counts and sizes for
   the measurement cache and the replay store it contains, plus the
   namespace entries of this binary carry. Read-only. [--json] emits
   the same facts as one machine-readable object on stdout (absent
   stores are [null], so consumers need no existence probe of their
   own). *)
let cache_stat dir json =
  let dir =
    match dir with
    | "" ->
      (match Measurement_cache.env_disk () with
       | Some d -> d.Measurement_cache.dir
       | None -> "_mp_cache")
    | d -> d
  in
  let exists = Sys.file_exists dir in
  let stats d =
    let s = Measurement_cache.disk_stats d in
    ( s.Measurement_cache.ds_entries,
      s.Measurement_cache.ds_shards,
      s.Measurement_cache.ds_bytes )
  in
  let rdir = Filename.concat dir "replay" in
  if json then begin
    let store d =
      if not (Sys.file_exists d) then "null"
      else
        let entries, shards, bytes = stats d in
        Printf.sprintf "{\"entries\": %d, \"shards\": %d, \"bytes\": %d}"
          entries shards bytes
    in
    Printf.printf
      "{\"directory\": \"%s\", \"namespace\": \"%s\", \"cache\": %s, \
       \"replay\": %s}\n"
      (json_escape dir)
      (json_escape (Measurement_cache.namespace ()))
      (if exists then store dir else "null")
      (if exists then store rdir else "null")
  end
  else begin
    Printf.printf "directory:  %s\n" dir;
    Printf.printf "namespace:  %s\n" (Measurement_cache.namespace ());
    if not exists then Printf.printf "(no cache directory yet)\n"
    else begin
      let entries, shards, bytes = stats dir in
      Printf.printf "cache:      %d entries in %d shards, %.1f MiB\n" entries
        shards
        (float_of_int bytes /. mib);
      if Sys.file_exists rdir then begin
        let entries, shards, bytes = stats rdir in
        Printf.printf "replay:     %d records in %d shards, %.1f MiB\n"
          entries shards
          (float_of_int bytes /. mib)
      end
      else Printf.printf "replay:     (no store)\n"
    end
  end;
  0

let cache_cmd =
  let dir_t =
    Arg.(
      value & opt string ""
      & info [ "dir" ] ~docv:"DIR"
          ~doc:
            "Cache directory (default: $(b,MP_CACHE_DIR) or $(b,_mp_cache)).")
  in
  let max_mb_t =
    Arg.(
      value
      & opt (some float) None
      & info [ "max-mb" ] ~docv:"MB"
          ~doc:
            "Size bound in MiB; oldest entries are pruned until the \
             directory fits (default: $(b,MP_CACHE_MAX_MB)).")
  in
  let gc =
    Cmd.v
      (Cmd.info "gc"
         ~doc:
           "Prune oldest measurement-cache entries past the size bound \
            (in-flight writes are never touched)")
      Term.(const cache_gc $ dir_t $ max_mb_t)
  in
  let json_t =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit one machine-readable JSON object instead of text.")
  in
  let stat =
    Cmd.v
      (Cmd.info "stat"
         ~doc:
           "Show shard, entry and size statistics for the measurement \
            cache and the replay store, plus this build's namespace")
      Term.(const cache_stat $ dir_t $ json_t)
  in
  Cmd.group
    (Cmd.info "mp-cache" ~doc:"Disk measurement-cache housekeeping")
    [ gc; stat ]

(* ----- mem-stat ---------------------------------------------------------------------- *)

(* The per-level source histogram of the last membench run, read back
   from the BENCH_mem_hist.csv artifact the bench harness writes (rows
   are comma-separated with no quoting — every field is a plain token).
   Read-only: point --file at the artifact, or let the default search
   find it next to the binary's usual invocation directories. *)
let mem_stat_paths =
  [ "BENCH_mem_hist.csv"; "bench/BENCH_mem_hist.csv";
    "_build/default/bench/BENCH_mem_hist.csv" ]

let mem_stat file =
  let path =
    match file with
    | "" -> List.find_opt Sys.file_exists mem_stat_paths
    | f -> if Sys.file_exists f then Some f else None
  in
  match path with
  | None ->
    prerr_endline
      "mem-stat: no BENCH_mem_hist.csv found (run `dune build @ci` or \
       `bench/main.exe membench` first, or pass --file)";
    2
  | Some path ->
    let ic = open_in path in
    let rows = ref [] in
    (try
       while true do
         rows := String.split_on_char ',' (input_line ic) :: !rows
       done
     with End_of_file -> ());
    close_in ic;
    (match List.rev !rows with
     | [] | [ _ ] ->
       Printf.eprintf "mem-stat: %s is empty\n" path;
       2
     | _header :: rows ->
       Printf.printf "membench histograms from %s\n\n" path;
       let kernels =
         Util.Text_table.create
           [ "Target"; "SMT"; "speedup"; "L1"; "L2"; "L3"; "MEM";
             "minorw/cyc" ]
       in
       let sweep =
         Util.Text_table.create
           [ "Stride"; "packed Macc/s"; "list Macc/s"; "L1"; "L2"; "L3";
             "MEM" ]
       in
       let n_kernels = ref 0 and n_stride = ref 0 in
       List.iter
         (fun row ->
           match row with
           | [ "kernel"; target; smt; _list_s; _packed_s; speedup; f1; f2;
               f3; fm; minorw ] ->
             incr n_kernels;
             Util.Text_table.add_row kernels
               [ target; smt; speedup ^ "x"; f1; f2; f3; fm; minorw ]
           | [ "stride"; _; stride; list_m; packed_m; _speedup; f1; f2; f3;
               fm; _ ] ->
             incr n_stride;
             Util.Text_table.add_row sweep
               [ stride; packed_m; list_m; f1; f2; f3; fm ]
           | _ -> ())
         rows;
       if !n_kernels = 0 && !n_stride = 0 then begin
         Printf.eprintf "mem-stat: no recognisable rows in %s\n" path;
         2
       end
       else begin
         if !n_kernels > 0 then Util.Text_table.print kernels;
         if !n_stride > 0 then begin
           print_newline ();
           Util.Text_table.print sweep
         end;
         0
       end)

let mem_stat_cmd =
  let file_t =
    Arg.(
      value & opt string ""
      & info [ "file" ] ~docv:"CSV"
          ~doc:
            "Histogram artifact to read (default: search for \
             $(b,BENCH_mem_hist.csv) in the usual bench output \
             directories).")
  in
  Cmd.v
    (Cmd.info "mem-stat"
       ~doc:
         "Print the per-level source histogram (and stride sweep) of the \
          last membench run")
    Term.(const mem_stat $ file_t)

(* ----- main ------------------------------------------------------------------------- *)

let () =
  (* process-wide: a peer (coordinator, worker, or a pager on stdout)
     closing its end mid-write must surface as EPIPE on that write, not
     kill the process — the worker/coordinator socket paths depend on
     it, and the pool constructors only cover processes that build
     pools *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with _ -> ());
  let doc = "automated micro-benchmark generation for energy characterization" in
  let info = Cmd.info "microprobe" ~version ~doc in
  let group =
    Cmd.group info
      [ list_isa_cmd; isa_text_cmd; generate_cmd; measure_cmd; bootstrap_cmd;
        stressmark_cmd; worker_cmd; cache_cmd; mem_stat_cmd ]
  in
  let code = Cmd.eval' group in
  (* join worker domains and shard subprocesses deterministically on
     every exit path (the at_exit hooks cover abnormal ones) *)
  Shard_exec.shutdown_global ();
  Util.Parallel.shutdown_global ();
  exit code
