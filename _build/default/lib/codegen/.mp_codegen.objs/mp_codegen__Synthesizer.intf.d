lib/codegen/synthesizer.mli: Arch Ir Passes
