(* Integration tests: the three case studies exercised end-to-end
   through the public facade, at reduced scale. These assert the
   paper's qualitative results, not absolute numbers. *)

open Microprobe

let arch () = get_architecture "POWER7"

let test_facade () =
  Alcotest.(check (list string)) "registry" [ "POWER7" ] (architectures ());
  Alcotest.check_raises "unknown arch" Not_found (fun () ->
      ignore (get_architecture "Alpha21264"));
  let a = arch () in
  Alcotest.(check bool) "isa attached" true (Isa_def.size a.Arch.isa > 100)

(* The paper's Figure 2 script, verbatim structure. *)
let test_figure2_script () =
  let a = arch () in
  let synth = Synthesizer.create ~name:"fig2" a in
  (* Pass 1: program skeleton *)
  Synthesizer.add_pass synth (Passes.skeleton ~size:4096);
  (* Pass 2: loads stressing the VSU *)
  let loads = Arch.select a Instruction.is_load in
  let loads_vsu =
    List.filter (fun i -> Uarch_def.stresses a.Arch.uarch i Pipe.VSU) loads
  in
  (* vector loads stress only the LSU on POWER7; take VSR-file loads *)
  let loads_vsu =
    if loads_vsu = [] then List.filter Instruction.is_vector loads else loads_vsu
  in
  Alcotest.(check bool) "vector loads found" true (loads_vsu <> []);
  Synthesizer.add_pass synth (Passes.fill_uniform loads_vsu);
  (* Pass 3: equal activity in the three cache levels *)
  Synthesizer.add_pass synth
    (Passes.memory_model
       [ (Cache_geometry.L1, 0.33); (Cache_geometry.L2, 0.33);
         (Cache_geometry.L3, 0.34) ]);
  (* Passes 4-5: constant initialisation *)
  Synthesizer.add_pass synth (Passes.init_registers (Builder.Constant 0x5555555555555555L));
  Synthesizer.add_pass synth (Passes.init_immediates (Builder.Constant 0x55L));
  (* Pass 6: random dependency distances *)
  Synthesizer.add_pass synth (Passes.dependency (Builder.Random_range (1, 8)));
  (* generate 10 micro-benchmarks *)
  let ubenchs = Synthesizer.synthesize_many ~seed:1 synth 10 in
  Alcotest.(check int) "ten benchmarks" 10 (List.length ubenchs);
  List.iter
    (fun u ->
      Alcotest.(check bool) "valid" true (Ir.validate u = Ok ());
      Alcotest.(check int) "4K loop" 4096 (Ir.size u);
      Alcotest.(check bool) "emits" true (String.length (Emit.to_c u) > 1000))
    ubenchs;
  (* run one and confirm the memory activity *)
  let machine = Machine.create a.Arch.uarch in
  let cfg = Uarch_def.config ~cores:1 ~smt:1 a.Arch.uarch in
  let m = Machine.run machine cfg (List.hd ubenchs) in
  let c = Measurement.core_counters m in
  let total = c.Measurement.l1 +. c.Measurement.l2 +. c.Measurement.l3 +. c.Measurement.mem in
  Alcotest.(check (float 0.08)) "third L1" 0.33 (c.Measurement.l1 /. total);
  Alcotest.(check (float 0.08)) "third L2" 0.33 (c.Measurement.l2 /. total);
  Alcotest.(check (float 0.08)) "third L3" 0.34 (c.Measurement.l3 /. total)

(* Case study A at reduced scale: BU beats TD_Random on extremes. *)
let test_power_model_case_study () =
  let a = arch () in
  let machine = Machine.create a.Arch.uarch in
  let cfg ~cores ~smt = Uarch_def.config ~cores ~smt a.Arch.uarch in
  let fams = Workloads.Training.table2 ~machine ~arch:a ~quick:true () in
  let progs =
    List.map (fun (e : Workloads.Training.entry) -> e.Workloads.Training.program)
      (Workloads.Training.all_entries fams)
  in
  let random_progs =
    List.map (fun (e : Workloads.Training.entry) -> e.Workloads.Training.program)
      (List.find
         (fun (f : Workloads.Training.family) ->
           f.Workloads.Training.family_name = "Random")
         fams)
        .Workloads.Training.entries
  in
  let run c p = Machine.run machine c p in
  let smt1 = List.map (run (cfg ~cores:1 ~smt:1)) progs in
  let smt_on =
    List.map (run (cfg ~cores:1 ~smt:2)) progs
    @ List.map (run (cfg ~cores:1 ~smt:4)) progs
  in
  let multi =
    List.concat_map
      (fun cores ->
        List.concat_map
          (fun smt -> List.map (run (cfg ~cores ~smt)) random_progs)
          [ 1; 2; 4 ])
      [ 1; 2; 4; 8 ]
  in
  let bu =
    Power_model.Bottom_up.train ~baseline:(Machine.baseline_reading machine)
      ~smt1 ~smt_on ~multi ()
  in
  let td_random = Power_model.Top_down.train ~name:"TD_Random" multi in
  (* validate on the SPEC surrogate over a config subset *)
  let suite =
    List.filteri (fun i _ -> i mod 4 = 0) (Workloads.Spec.suite ~arch:a ~size:512 ())
  in
  let spec =
    List.concat_map
      (fun c -> List.map (fun b -> Workloads.Spec.run ~machine ~config:c b) suite)
      [ cfg ~cores:1 ~smt:1; cfg ~cores:4 ~smt:2; cfg ~cores:8 ~smt:4 ]
  in
  let bu_paae = Power_model.Validation.paae ~predict:(Power_model.Bottom_up.predict bu) spec in
  Alcotest.(check bool)
    (Printf.sprintf "BU PAAE on SPEC < 6%% (got %.2f)" bu_paae)
    true (bu_paae < 6.0);
  (* extreme cases: BU stays accurate, TD_Random degrades badly *)
  let extremes =
    List.map
      (fun (c : Workloads.Extreme.case) ->
        run (cfg ~cores:8 ~smt:1) c.Workloads.Extreme.program)
      (Workloads.Extreme.cases ~arch:a ~size:512 ())
  in
  let bu_ext = Power_model.Validation.paae ~predict:(Power_model.Bottom_up.predict bu) extremes in
  let td_ext = Power_model.Validation.max_error ~predict:(Power_model.Top_down.predict td_random) extremes in
  Alcotest.(check bool)
    (Printf.sprintf "TD_Random worst extreme error (%.1f) > BU average (%.1f)"
       td_ext bu_ext)
    true
    (td_ext > 2.0 *. bu_ext)

(* Case study B at reduced scale: taxonomy top picks. *)
let test_epi_case_study () =
  let a = arch () in
  let machine = Machine.create a.Arch.uarch in
  let instrs =
    List.map (Arch.find_instruction a) Power_isa.table3_mnemonics
  in
  let props = Epi.Bootstrap.run ~machine ~arch:a ~size:512 ~instructions:instrs () in
  let cats = Epi.Taxonomy.categorize ~isa:a.Arch.isa props in
  let rows = Epi.Taxonomy.table3 cats in
  (* the per-category winners of the paper *)
  let top_of label =
    List.find_opt (fun (r : Epi.Taxonomy.row) -> r.Epi.Taxonomy.category = label) rows
  in
  (match top_of "FXU" with
   | Some r -> Alcotest.(check string) "FXU top" "mulldo" r.Epi.Taxonomy.mnemonic
   | None -> Alcotest.fail "no FXU category");
  (match top_of "LSU" with
   | Some r -> Alcotest.(check string) "LSU top" "lxvw4x" r.Epi.Taxonomy.mnemonic
   | None -> Alcotest.fail "no LSU category");
  (match top_of "VSU" with
   | Some r -> Alcotest.(check string) "VSU top" "xvnmsubmdp" r.Epi.Taxonomy.mnemonic
   | None -> Alcotest.fail "no VSU category");
  (* large within-category spreads exist *)
  let max_spread =
    List.fold_left (fun acc c -> Float.max acc (Epi.Taxonomy.epi_spread c)) 0.0 cats
  in
  Alcotest.(check bool)
    (Printf.sprintf "spread >= 50%% somewhere (got %.0f%%)" max_spread)
    true (max_spread >= 50.0)

(* Case study C at reduced scale: the heuristic set tops SPEC's peak. *)
let test_stressmark_case_study () =
  let a = arch () in
  let machine = Machine.create a.Arch.uarch in
  let cfg smt = Uarch_def.config ~cores:8 ~smt a.Arch.uarch in
  (* SPEC peak over a hot subset *)
  let peak =
    List.fold_left
      (fun acc name ->
        let b = Workloads.Spec.benchmark ~arch:a ~size:512 name in
        List.fold_left
          (fun acc smt ->
            let m = Workloads.Spec.run ~machine ~config:(cfg smt) b in
            Float.max acc (snd (Util.Stats.min_max m.Measurement.power_trace)))
          acc [ 1; 4 ])
      0.0
      [ "gamess"; "calculix"; "leslie3d"; "hmmer" ]
  in
  (* MicroProbe candidates from a focused bootstrap *)
  let cand =
    List.map (Arch.find_instruction a)
      [ "mulldo"; "mullw"; "lxvw4x"; "lxvd2x"; "xvnmsubmdp"; "xvmaddadp" ]
  in
  let props = Epi.Bootstrap.run ~machine ~arch:a ~size:512 ~instructions:cand () in
  let picks = Stressmark.microprobe_instructions ~isa:a.Arch.isa props in
  Alcotest.(check int) "three picks" 3 (List.length picks);
  (* a cheap subset of the sequence space: rotations of the pick cycle *)
  let seqs =
    match picks with
    | [ x; y; z ] -> [ [ x; y; z; x; y; z ]; [ x; z; y; x; z; y ];
                       [ y; x; z; y; x; z ]; [ x; x; y; y; z; z ] ]
    | _ -> []
  in
  let s =
    Stressmark.evaluate_set ~machine ~arch:a ~name:"mini-mp" ~size:512
      ~smt_modes:[ 2; 4 ] seqs
  in
  Alcotest.(check bool)
    (Printf.sprintf "stressmark (%.1f) above SPEC subset peak (%.1f)"
       s.Stressmark.max_power peak)
    true
    (s.Stressmark.max_power > peak)

let () =
  Alcotest.run "integration"
    [
      ("facade", [ Alcotest.test_case "registry" `Quick test_facade ]);
      ("figure2", [ Alcotest.test_case "script" `Quick test_figure2_script ]);
      ("case studies",
       [ Alcotest.test_case "power model" `Slow test_power_model_case_study;
         Alcotest.test_case "EPI taxonomy" `Slow test_epi_case_study;
         Alcotest.test_case "stressmark" `Slow test_stressmark_case_study ]);
    ]
