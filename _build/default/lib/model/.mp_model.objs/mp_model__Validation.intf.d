lib/model/validation.mli: Mp_sim Mp_uarch
