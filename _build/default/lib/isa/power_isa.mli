(** The Power ISA v2.06B subset shipped with the framework.

    Roughly 140 instructions covering every class the paper's case
    studies discriminate: simple integer (FXU-or-LSU), complex integer
    (FXU-only), loads/stores in byte..doubleword and FP/vector widths,
    with and without base-update and algebraic (sign-extending)
    variants, VSX scalar/vector arithmetic, decimal arithmetic,
    compares and branches. Includes every instruction named in the
    paper's Table 3. *)

val load : unit -> Isa_def.t
(** Build the registry. The result is freshly constructed on each call
    so user additions/removals do not leak across experiments. *)

val definition_text : unit -> string
(** The registry rendered in the readable text-file format of
    {!Isa_def} — what would ship as the ISA definition file. *)

val table3_mnemonics : string list
(** The 24 instructions appearing in the paper's Table 3, in paper
    order. All are guaranteed to be present in {!load}. *)
