module Pipe = Mp_uarch.Pipe

type t = { isa : Mp_isa.Isa_def.t; uarch : Mp_uarch.Uarch_def.t }

let power7 () =
  let uarch = Mp_uarch.Power7.define () in
  { isa = Mp_uarch.Power7.isa uarch; uarch }

let find_instruction t m = Mp_isa.Isa_def.find_exn t.isa m

let select t pred = Mp_isa.Isa_def.select t.isa pred

let stressing t unit =
  select t (fun i -> Mp_uarch.Uarch_def.stresses t.uarch i unit)

let pp ppf t =
  Format.fprintf ppf "%s / %a" t.uarch.Mp_uarch.Uarch_def.name
    Mp_isa.Isa_def.pp t.isa
