test/test_stressmark.mli:
