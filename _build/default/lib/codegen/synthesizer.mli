(** The micro-benchmark synthesizer (paper Figure 2, lines 5–31).

    A synthesizer holds an architecture handle and an ordered list of
    passes; each {!synthesize} call applies the passes to a fresh
    builder and returns the finished program. Repeated calls with the
    same seed are identical; successive calls without a seed draw fresh
    randomness (Figure 2 generates ten distinct benchmarks from one
    policy). *)

type t

val create : ?name:string -> Arch.t -> t

val arch : t -> Arch.t

val add_pass : t -> Passes.t -> unit
(** Append a pass to the policy. *)

val pass_names : t -> string list

val synthesize : ?seed:int -> t -> Ir.t
(** Apply the passes in order. Without [seed], an internal counter
    advances so each call yields a distinct program. Raises [Failure]
    when a pass's requirements are not met (e.g. distribution before
    skeleton). *)

val synthesize_many : ?seed:int -> t -> int -> Ir.t list
