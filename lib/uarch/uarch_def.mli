(** Micro-architecture definition module (paper Section 2.1.2).

    Provides the implementation-side information MicroProbe queries
    during generation: functional units and their multiplicities, the
    cache hierarchy, the mapping between instructions and the pipes they
    stress (with per-pipe occupancy and latency), floorplan areas, and
    the PMC catalogue. *)

type usage = { pipe : Pipe.t; occupancy : Occupancy.t }
(** One pipe requirement: the pipe is busy for [occupancy] cycles per
    instance (i.e. sustainable throughput is [pipes / occupancy]). The
    occupancy is an exact rational so simulator busy-time bookkeeping
    can run in integer ticks (see {!field-occ_den}). *)

type resources = {
  fixed : usage list;   (** all of these are needed *)
  alt : usage list;     (** additionally, exactly one of these (if any) *)
  latency : int;        (** result latency in cycles (memory ops: on L1 hit) *)
}

type config = { cores : int; smt : int }
(** A CMP/SMT operating point: number of enabled cores and SMT mode
    (hardware threads per core). *)

type t = {
  name : string;
  max_cores : int;
  smt_modes : int list;
  dispatch_width : int;       (** instructions dispatched per core per cycle *)
  completion_width : int;
  window : int;               (** in-flight instructions per hardware thread *)
  pipes : (Pipe.t * int) list;(** pipe multiplicities per core *)
  caches : Cache_geometry.t list; (** L1..L3 in hierarchy order *)
  mem_latency : int;
  mem_bw_lines_per_cycle : float; (** chip-wide sustainable demand bandwidth *)
  freq_ghz : float;
  unit_area_mm2 : (Pipe.unit_kind * float) list; (** floorplan areas *)
  pmcs : Pmc.id list;
  occ_den : int;
      (** Common denominator of every occupancy {!field-resources} can
          return (the LCM over the loaded ISA, computed at definition
          build time). One cycle is [occ_den] simulator ticks, so every
          occupancy converts to a whole number of ticks — the basis of
          the simulator's exact fixed-point pipe arithmetic. *)
  resources : Mp_isa.Instruction.t -> resources;
}

val occ_ticks : t -> Occupancy.t -> int
(** An occupancy as integer ticks at the definition's [occ_den]
    resolution. Raises [Invalid_argument] if the occupancy's
    denominator does not divide [occ_den] (a definition bug). *)

val occ_den_of_instructions :
  (Mp_isa.Instruction.t -> resources) -> Mp_isa.Instruction.t list -> int
(** The LCM of every occupancy denominator the resource table yields
    over the given instructions — what a definition should store in
    [occ_den]. The implicit loop-closing branch has occupancy 1 and
    never raises it. *)

val pipe_count : t -> Pipe.t -> int

val cache : t -> Cache_geometry.level -> Cache_geometry.t
(** Raises [Not_found] for [MEM]. *)

val level_latency : t -> Cache_geometry.level -> int
(** Load-to-use latency per data source level ([MEM] included). *)

val units_stressed : t -> Mp_isa.Instruction.t -> Pipe.unit_kind list
(** The paper's [ins.stress(arch.comps\["VSU"\])] query: functional
    units an instruction exercises, deduplicated, in canonical order.
    For [alt] resources the preferred (first) pipe is reported. *)

val stresses : t -> Mp_isa.Instruction.t -> Pipe.unit_kind -> bool

val peak_ipc : t -> Mp_isa.Instruction.t -> float
(** Static sustainable throughput of a loop of independent copies of
    the instruction on one thread: min over required pipes of
    [count/occupancy], capped by the dispatch width. *)

val config : cores:int -> smt:int -> t -> config
(** Validated constructor; raises [Invalid_argument] for out-of-range
    core counts or unsupported SMT modes. *)

val all_configs : t -> config list
(** Every (cores, smt) operating point, cores-major. *)

val threads : config -> int
val config_to_string : config -> string
val pp_config : Format.formatter -> config -> unit
