(* The reproduction harness: regenerates every table and figure of the
   paper's evaluation (Tables 2-3, Figures 3, 5a, 5b, 6, 7, 8, 9), then
   times the framework's kernels with Bechamel.

   Usage:
     dune exec bench/main.exe                 # everything, full scale
     dune exec bench/main.exe -- --quick      # reduced sweeps (~4x faster)
     dune exec bench/main.exe -- table3 fig9  # selected experiments *)

let experiments : (string * string * (Context.t -> unit)) list =
  [
    ("table2", "Training micro-benchmark suite", Exp_tables.table2);
    ("table3", "EPI-based instruction taxonomy", Exp_tables.table3);
    ("fig3", "Analytical cache model validation", Exp_tables.fig3);
    ("fig5a", "SPEC power tracking with breakdown (4c-SMT4)", Exp_model.fig5a);
    ("fig5b", "Bottom-up model PAAE per configuration", Exp_model.fig5b);
    ("fig6", "Bottom-up vs top-down models", Exp_model.fig6);
    ("fig7", "Extreme activity cases", Exp_model.fig7);
    ("fig8", "Power breakdown per configuration", Exp_model.fig8);
    ("fig9", "Max-power stressmark sets", Exp_stressmark.fig9);
    ("order", "Instruction-order power experiment", Exp_stressmark.order_experiment);
    ("hetero", "Heterogeneous per-thread stressmarks", Exp_stressmark.heterogeneous);
    ("ablation", "Design-choice ablations", Exp_ablation.run);
    ("bechamel", "Kernel timings", Bechamel_suite.run);
  ]

let usage () =
  print_endline "usage: main.exe [--quick] [experiment ...]";
  print_endline "experiments:";
  List.iter
    (fun (name, descr, _) -> Printf.printf "  %-10s %s\n" name descr)
    experiments

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  if List.mem "--help" args then usage ()
  else begin
    let quick = List.mem "--quick" args in
    let selected =
      List.filter (fun a -> not (String.length a > 1 && a.[0] = '-')) args
    in
    let to_run =
      match selected with
      | [] -> experiments
      | names ->
        List.filter_map
          (fun n ->
            match
              List.find_opt (fun (name, _, _) -> name = n) experiments
            with
            | Some e -> Some e
            | None ->
              Printf.eprintf "unknown experiment %S (try --help)\n" n;
              exit 2)
          names
    in
    Printf.printf
      "MicroProbe reproduction harness (%s mode)\n\
       Paper: Bertran et al., 'Systematic Energy Characterization of\n\
       CMP/SMT Processor Systems via Automated Micro-Benchmarks', MICRO 2012\n"
      (if quick then "quick" else "full");
    let ctx = Context.create ~quick in
    let t0 = Unix.gettimeofday () in
    List.iter (fun (_, _, f) -> f ctx) to_run;
    Printf.printf "\nTotal harness time: %.1fs\n" (Unix.gettimeofday () -. t0)
  end
