type t = { headers : string list; mutable rows : string list list }

let create headers =
  if headers = [] then invalid_arg "Csv.create: no headers";
  { headers; rows = [] }

let width t = List.length t.headers

let pad t cells =
  let n = width t in
  let len = List.length cells in
  if len >= n then List.filteri (fun i _ -> i < n) cells
  else cells @ List.init (n - len) (fun _ -> "")

let add_row t cells = t.rows <- pad t cells :: t.rows

let add_floats t xs = add_row t (List.map (Printf.sprintf "%.6g") xs)

let needs_quoting s =
  String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s

let quote s =
  if needs_quoting s then begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else s

let render t =
  let line cells = String.concat "," (List.map quote cells) in
  String.concat "\n" (line t.headers :: List.rev_map line t.rows) ^ "\n"

let save t file =
  let oc = open_out file in
  output_string oc (render t);
  close_out oc
