open Mp_isa

type pool = { regs : Reg.t array; mutable next : int }

type t = {
  bases : pool;
  gpr_src : pool;
  gpr_dst : pool;
  fpr_src : pool;
  fpr_dst : pool;
  vsr_src : pool;
  vsr_dst : pool;
  cr_dst : pool;
}

let range make lo hi = Array.init (hi - lo + 1) (fun i -> make (lo + i))

let mk_pool regs = { regs; next = 0 }

let create () =
  {
    bases = mk_pool (range (fun i -> Reg.Gpr i) 8 15);
    gpr_src = mk_pool (range (fun i -> Reg.Gpr i) 16 23);
    gpr_dst = mk_pool (range (fun i -> Reg.Gpr i) 24 31);
    fpr_src = mk_pool (range (fun i -> Reg.Fpr i) 0 15);
    fpr_dst = mk_pool (range (fun i -> Reg.Fpr i) 16 31);
    vsr_src = mk_pool (range (fun i -> Reg.Vsr i) 0 31);
    vsr_dst = mk_pool (range (fun i -> Reg.Vsr i) 32 63);
    cr_dst = mk_pool (range (fun i -> Reg.Cr_field i) 0 5);
  }

let take p =
  let r = p.regs.(p.next) in
  p.next <- (p.next + 1) mod Array.length p.regs;
  r

let base t = take t.bases

let source t = function
  | Instruction.Gpr -> take t.gpr_src
  | Instruction.Fpr -> take t.fpr_src
  | Instruction.Vsr -> take t.vsr_src
  | Instruction.Cr -> take t.cr_dst

let dest t = function
  | Instruction.Gpr -> take t.gpr_dst
  | Instruction.Fpr -> take t.fpr_dst
  | Instruction.Vsr -> take t.vsr_dst
  | Instruction.Cr -> take t.cr_dst

let all_sources = function
  | Instruction.Gpr -> Array.to_list (range (fun i -> Reg.Gpr i) 16 23)
  | Instruction.Fpr -> Array.to_list (range (fun i -> Reg.Fpr i) 0 15)
  | Instruction.Vsr -> Array.to_list (range (fun i -> Reg.Vsr i) 0 31)
  | Instruction.Cr -> Array.to_list (range (fun i -> Reg.Cr_field i) 0 5)

let all_bases = Array.to_list (range (fun i -> Reg.Gpr i) 8 15)

let all_dests = function
  | Instruction.Gpr -> Array.to_list (range (fun i -> Reg.Gpr i) 24 31)
  | Instruction.Fpr -> Array.to_list (range (fun i -> Reg.Fpr i) 16 31)
  | Instruction.Vsr -> Array.to_list (range (fun i -> Reg.Vsr i) 32 63)
  | Instruction.Cr -> Array.to_list (range (fun i -> Reg.Cr_field i) 0 5)
