(** A crash-tolerant pool of remote workers driven over TCP sockets.

    The socket sibling of {!Procpool}: same frame codec ({!Transport}),
    same failure contract. Every failure mode — connect refused or
    timed out, a reset connection, a truncated or oversized frame, a
    read timeout — degrades to "this peer is gone": the slot is reaped
    (socket closed) and the call reports failure, leaving the {e
    caller} to re-run whatever was in flight. A reaped slot reconnects
    lazily on the next {!send}, with capped exponential backoff so a
    down host costs a bounded fast-fail per batch instead of a connect
    timeout.

    Sockets are non-blocking with [TCP_NODELAY]; connects are bounded
    by [connect_timeout_s] (default from [MP_NET_CONNECT_TIMEOUT_S],
    else 10 s) via select + [SO_ERROR]. When a [handshake] payload is
    given, each (re)connect exchanges it as one frame in both
    directions and rejects the peer unless the reply is byte-identical
    — the coordinator and worker prove they run the same binary and
    schema before any closure-bearing payload crosses the wire.
    SIGPIPE is ignored process-wide at pool creation.

    All operations are domain-safe; sends serialize on the pool lock,
    the blocking read itself runs outside it. *)

type t

type stats = {
  st_frames_sent : int;
  st_frames_received : int;
  st_bytes_sent : int;
  st_bytes_received : int;
  st_reconnects : int;
}

val create :
  ?handshake:bytes -> ?connect_timeout_s:float -> (string * int) list -> t
(** [create hosts] builds one slot per [host, port] pair. No connection
    is attempted until the first {!send} (or explicit {!connect}). *)

val size : t -> int

val connect : ?retry_for_s:float -> t -> int -> bool
(** Eagerly connect slot [i], bypassing the backoff window, retrying
    every 20 ms for up to [retry_for_s] seconds (default 0: one
    attempt). Used to wait out a just-spawned worker's startup. *)

val send : ?timeout_s:float -> t -> int -> bytes -> bool
(** Frame and write [payload] to peer [i], (re)connecting first if the
    slot is down and its backoff window has passed. [false] means the
    peer is gone (unreachable, handshake rejected, write failed or
    timed out) and the slot has been reaped — the caller owns whatever
    it was trying to dispatch. *)

val recv : ?timeout_s:float -> t -> int -> bytes option
(** Read one frame from peer [i]. [None] means the peer is gone — EOF,
    reset, malformed frame, or no complete frame within [timeout_s]
    (wait forever when omitted) — and the slot has been reaped. *)

val reap : t -> int -> unit
(** Force-close slot [i]'s connection. The next {!send} reconnects. *)

val connected : t -> int -> bool

val label : t -> int -> string
(** ["host:port"]. *)

val stats : t -> int -> stats
(** Per-peer cumulative counters (bytes include the 4-byte headers). *)

val endpoint : t -> int -> Transport.endpoint
(** View slot [i] as a generic transport endpoint. *)

val shutdown : t -> unit
(** Close every connection. Idempotent; slots may be reused after. *)

(** {2 Process-wide telemetry}

    Cumulative across every pool in the process; monotone, never part
    of any result. *)

val frames_sent : unit -> int
val frames_received : unit -> int

val bytes_transferred : unit -> int
(** Payload + header bytes, both directions summed. *)

val reconnect_count : unit -> int
(** Connections established to a peer that had already been connected
    once (first connects excluded). *)
