lib/uarch/pipe.mli: Format
