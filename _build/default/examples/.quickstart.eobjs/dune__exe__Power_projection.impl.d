examples/power_projection.ml: Arch Builder Cache_geometry Float Format Instruction List Machine Measurement Microprobe Passes Power_model Printf Synthesizer Uarch_def Util Workloads
