(* Tests for the POTRA-style trace module. *)

open Mp_potra

let mk samples = Trace.create ~period_ms:1.0 samples

let test_basics () =
  let t = mk [| 1.0; 2.0; 3.0 |] in
  Alcotest.(check int) "length" 3 (Trace.length t);
  Alcotest.(check (float 1e-9)) "duration" 3.0 (Trace.duration_ms t);
  Alcotest.(check (float 1e-9)) "mean" 2.0 (Trace.mean t);
  Alcotest.(check (float 1e-9)) "max" 3.0 (Trace.max t);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Trace.min t)

let test_create_copies () =
  let src = [| 1.0 |] in
  let t = mk src in
  src.(0) <- 99.0;
  Alcotest.(check (float 1e-9)) "input copied" 1.0 (Trace.mean t)

let test_window_means () =
  let t = mk [| 1.0; 3.0; 5.0; 7.0; 100.0 |] in
  let w = Trace.window_means t ~window:2 in
  Alcotest.(check int) "two full windows" 2 (Array.length w);
  Alcotest.(check (float 1e-9)) "w0" 2.0 w.(0);
  Alcotest.(check (float 1e-9)) "w1" 6.0 w.(1)

let test_stable_region () =
  (* warmup ramp then a plateau *)
  let samples =
    Array.append [| 1.0; 5.0; 9.0; 12.0 |] (Array.make 12 20.0)
  in
  let t = mk samples in
  match Trace.stable_region t with
  | None -> Alcotest.fail "expected a stable region"
  | Some (lo, hi) ->
    Alcotest.(check bool) "plateau found" true (lo >= 4 && hi = 15);
    Alcotest.(check (float 0.01)) "stable mean" 20.0 (Trace.stable_mean t)

let test_stable_region_none () =
  let t = mk [| 1.0; 10.0; 2.0; 20.0; 3.0 |] in
  Alcotest.(check bool) "no stable region" true (Trace.stable_region t = None);
  Alcotest.(check (float 1e-6)) "falls back to mean" 7.2 (Trace.stable_mean t)

let test_concat_subsample () =
  let t = Trace.concat [ mk [| 1.0; 2.0 |]; mk [| 3.0; 4.0 |] ] in
  Alcotest.(check int) "concat length" 4 (Trace.length t);
  let s = Trace.subsample t ~every:2 in
  Alcotest.(check int) "subsample length" 2 (Trace.length s);
  Alcotest.(check (float 1e-9)) "keeps stride samples" 3.0
    (Trace.max s)

let test_segments () =
  (* two clear phases plus a one-sample glitch that merges away *)
  let t = mk [| 10.0; 10.1; 10.0; 10.05; 25.0; 50.0; 50.2; 50.1; 49.9 |] in
  let segs = Trace.segments ~tolerance:0.05 t in
  Alcotest.(check int) "two phases (glitch merged)" 2 (List.length segs);
  (match segs with
   | [ (a, b); (c, d) ] ->
     Alcotest.(check int) "first starts at 0" 0 a;
     Alcotest.(check bool) "contiguous" true (c = b + 1);
     Alcotest.(check int) "last ends at end" 8 d
   | _ -> Alcotest.fail "segments");
  let means = Trace.segment_means ~tolerance:0.05 t in
  Alcotest.(check bool) "second phase hotter" true (means.(1) > means.(0) +. 30.0)

let test_segments_cover () =
  let t = mk [| 1.0; 9.0; 1.0; 9.0; 1.0 |] in
  let segs = Trace.segments ~tolerance:0.01 ~min_length:1 t in
  let covered = List.fold_left (fun acc (lo, hi) -> acc + (hi - lo + 1)) 0 segs in
  Alcotest.(check int) "cover the trace" 5 covered

let test_to_rows () =
  let rows = Trace.to_rows (mk [| 5.0; 6.0 |]) in
  Alcotest.(check int) "two rows" 2 (List.length rows);
  (match rows with
   | (t0, v0) :: (t1, v1) :: _ ->
     Alcotest.(check (float 1e-9)) "t0" 0.0 t0;
     Alcotest.(check (float 1e-9)) "v0" 5.0 v0;
     Alcotest.(check (float 1e-9)) "t1" 1.0 t1;
     Alcotest.(check (float 1e-9)) "v1" 6.0 v1
   | _ -> Alcotest.fail "rows")

let prop_window_means_bounded =
  QCheck.Test.make ~name:"window means within trace bounds" ~count:200
    QCheck.(pair (array_of_size Gen.(int_range 4 64) (float_range 0.0 100.0))
              (int_range 1 8))
    (fun (samples, window) ->
      let t = mk samples in
      let lo, hi = Mp_util.Stats.min_max samples in
      Array.for_all
        (fun w -> w >= lo -. 1e-9 && w <= hi +. 1e-9)
        (Trace.window_means t ~window))

let prop_stable_mean_bounded =
  QCheck.Test.make ~name:"stable mean within bounds" ~count:200
    QCheck.(array_of_size Gen.(int_range 1 64) (float_range 1.0 100.0))
    (fun samples ->
      let t = mk samples in
      let lo, hi = Mp_util.Stats.min_max samples in
      let m = Trace.stable_mean t in
      m >= lo -. 1e-9 && m <= hi +. 1e-9)

let () =
  Alcotest.run "mp_potra"
    [
      ("trace",
       [ Alcotest.test_case "basics" `Quick test_basics;
         Alcotest.test_case "copies input" `Quick test_create_copies;
         Alcotest.test_case "window means" `Quick test_window_means;
         Alcotest.test_case "stable region" `Quick test_stable_region;
         Alcotest.test_case "no stable region" `Quick test_stable_region_none;
         Alcotest.test_case "concat/subsample" `Quick test_concat_subsample;
         Alcotest.test_case "segments" `Quick test_segments;
         Alcotest.test_case "segments cover" `Quick test_segments_cover;
         Alcotest.test_case "rows" `Quick test_to_rows ]);
      ("properties",
       [ QCheck_alcotest.to_alcotest prop_window_means_bounded;
         QCheck_alcotest.to_alcotest prop_stable_mean_bounded ]);
    ]
