(** Budgeted random sampling of a design space — the baseline driver. *)

val search :
  rng:Mp_util.Rng.t ->
  sample:(Mp_util.Rng.t -> 'p) ->
  eval:('p -> float) ->
  budget:int ->
  'p Driver.result
