lib/sim/core_sim.mli: Measurement Mp_codegen Mp_uarch
