let search ?on_progress ?eval_batch ~eval points =
  if points = [] then invalid_arg "Exhaustive.search: empty space";
  let all = Driver.eval_list ?eval_batch ~eval points in
  let count = ref 0 in
  List.iter
    (fun e ->
      incr count;
      match on_progress with Some f -> f !count e | None -> ())
    all;
  { Driver.best = Driver.best_of all; evaluations = !count; all }
