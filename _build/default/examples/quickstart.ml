(* Quickstart: the paper's Figure-2 script, line for line.

   Generates 10 micro-benchmarks, each an endless loop of 4K vector
   load instructions hitting the three cache levels equally, then
   prints the first one as assembly and measures it on the simulated
   POWER7.

   Run with: dune exec examples/quickstart.exe *)

open Microprobe

let () =
  (* Get the architecture object *)
  let arch = get_architecture "POWER7" in
  (* Create the micro-benchmark synthesizer *)
  let synth = Synthesizer.create ~name:"example" arch in
  (* Pass 1: define the program skeleton *)
  Synthesizer.add_pass synth (Passes.skeleton ~size:4096);
  (* Pass 2: define the instruction distribution.
     Pass 2.1: select the loads from the ISA *)
  let loads = Arch.select arch Instruction.is_load in
  (* Pass 2.2: select the vector-file loads (the VSU-side loads) *)
  let loads_vsu = List.filter Instruction.is_vector loads in
  Synthesizer.add_pass synth (Passes.fill_uniform loads_vsu);
  (* Pass 3: model the memory behaviour — L1 = 33%, L2 = 33%, L3 = 34% *)
  Synthesizer.add_pass synth
    (Passes.memory_model
       [ (Cache_geometry.L1, 0.33); (Cache_geometry.L2, 0.33);
         (Cache_geometry.L3, 0.34) ]);
  (* Pass 4: init registers to 0b01010101... *)
  Synthesizer.add_pass synth
    (Passes.init_registers (Builder.Constant 0x5555555555555555L));
  (* Pass 5: init immediate operands likewise *)
  Synthesizer.add_pass synth (Passes.init_immediates (Builder.Constant 0x55L));
  (* Pass 6: model instruction-level parallelism — random dependency
     distances *)
  Synthesizer.add_pass synth (Passes.dependency (Builder.Random_range (1, 8)));
  (* Generate the 10 micro-benchmarks *)
  let ubenchs = Synthesizer.synthesize_many ~seed:1 synth 10 in
  List.iteri
    (fun i u ->
      Format.printf "example-%d: %a@." (i + 1) Ir.pp_summary u)
    ubenchs;
  (* Show the beginning of the generated assembly for the first one *)
  let asm = Emit.to_asm (List.hd ubenchs) in
  let lines = String.split_on_char '\n' asm in
  print_endline "\n--- example-1.s (first 24 lines) ---";
  List.iteri (fun i l -> if i < 24 then print_endline l) lines;
  (* Deploy and measure it on the simulated machine *)
  let machine = Machine.create arch.Arch.uarch in
  let config = Uarch_def.config ~cores:8 ~smt:2 arch.Arch.uarch in
  let m = Machine.run machine config (List.hd ubenchs) in
  let c = Measurement.core_counters m in
  Printf.printf
    "\nMeasured on 8 cores / SMT2: core IPC %.2f, chip power %.1f\n\
     loads served by L1 %.0f%%, L2 %.0f%%, L3 %.0f%% — as requested.\n"
    m.Measurement.core_ipc m.Measurement.power
    (100.0 *. c.Measurement.l1
     /. (c.Measurement.l1 +. c.Measurement.l2 +. c.Measurement.l3
         +. c.Measurement.mem))
    (100.0 *. c.Measurement.l2
     /. (c.Measurement.l1 +. c.Measurement.l2 +. c.Measurement.l3
         +. c.Measurement.mem))
    (100.0 *. c.Measurement.l3
     /. (c.Measurement.l1 +. c.Measurement.l2 +. c.Measurement.l3
         +. c.Measurement.mem))
