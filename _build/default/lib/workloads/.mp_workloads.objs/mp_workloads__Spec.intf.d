lib/workloads/spec.mli: Mp_codegen Mp_sim Mp_uarch
