(* The reproduction harness: regenerates every table and figure of the
   paper's evaluation (Tables 2-3, Figures 3, 5a, 5b, 6, 7, 8, 9), then
   times the framework's kernels with Bechamel.

   Usage:
     dune exec bench/main.exe                 # everything, full scale
     dune exec bench/main.exe -- --quick      # reduced sweeps (~4x faster)
     dune exec bench/main.exe -- table3 fig9  # selected experiments *)

let experiments : (string * string * (Context.t -> unit)) list =
  [
    ("table2", "Training micro-benchmark suite", Exp_tables.table2);
    ("table3", "EPI-based instruction taxonomy", Exp_tables.table3);
    ("fig3", "Analytical cache model validation", Exp_tables.fig3);
    ("fig5a", "SPEC power tracking with breakdown (4c-SMT4)", Exp_model.fig5a);
    ("fig5b", "Bottom-up model PAAE per configuration", Exp_model.fig5b);
    ("fig6", "Bottom-up vs top-down models", Exp_model.fig6);
    ("fig7", "Extreme activity cases", Exp_model.fig7);
    ("fig8", "Power breakdown per configuration", Exp_model.fig8);
    ("fig9", "Max-power stressmark sets", Exp_stressmark.fig9);
    ("order", "Instruction-order power experiment", Exp_stressmark.order_experiment);
    ("hetero", "Heterogeneous per-thread stressmarks", Exp_stressmark.heterogeneous);
    ("ga", "GA stressmark search (batched, memoized)", Exp_stressmark.ga);
    ("membench", "Packed vs list cache model on dense memory kernels",
     Exp_membench.run);
    ("parbench", "Parallel engine speedup vs serial", Exp_parallel.run);
    ("replay", "Steady-state replay vs dense re-simulation", Exp_parallel.replay_bench);
    ("ablation", "Design-choice ablations", Exp_ablation.run);
    ("bechamel", "Kernel timings", Bechamel_suite.run);
  ]

(* hand-rolled JSON writer — the harness has no JSON dependency and the
   shape is flat enough not to want one *)
let write_bench_json ~path ~quick ~total (ctx : Context.t) timings =
  let oc = open_out path in
  let out fmt = Printf.fprintf oc fmt in
  let json_f v =
    if Float.is_nan v then "null" else Printf.sprintf "%.6f" v
  in
  out "{\n";
  out "  \"mode\": %S,\n" (if quick then "quick" else "full");
  out "  \"pool_size\": %d,\n" (Mp_util.Parallel.size ctx.Context.pool);
  out "  \"total_seconds\": %s,\n" (json_f total);
  out "  \"experiments\": [\n";
  List.iteri
    (fun i (name, seconds) ->
      out "    { \"name\": %S, \"seconds\": %s }%s\n" name (json_f seconds)
        (if i = List.length timings - 1 then "" else ","))
    timings;
  out "  ],\n";
  (* per-slot scheduling telemetry: where dynamically-scheduled chunks
     actually ran, how often speculation fired, and each slot's busy
     fraction — labels are strings, so this is its own array section
     rather than a flat metric *)
  out "  \"shard_slot_stats\": [\n";
  let slot_stats = Microprobe.Shard_exec.slot_stats () in
  List.iteri
    (fun i (label, (s : Microprobe.Shard_exec.slot_stat)) ->
      let busy_frac =
        if s.Microprobe.Shard_exec.sl_wall_s > 0.0 then
          s.Microprobe.Shard_exec.sl_busy_s
          /. s.Microprobe.Shard_exec.sl_wall_s
        else Float.nan
      in
      out
        "    { \"slot\": %S, \"jobs\": %d, \"chunks\": %d, \"speculated\": \
         %d, \"cancelled\": %d, \"busy_s\": %s, \"busy_fraction\": %s }%s\n"
        label s.Microprobe.Shard_exec.sl_jobs
        s.Microprobe.Shard_exec.sl_chunks
        s.Microprobe.Shard_exec.sl_speculated
        s.Microprobe.Shard_exec.sl_cancelled
        (json_f s.Microprobe.Shard_exec.sl_busy_s)
        (json_f busy_frac)
        (if i = List.length slot_stats - 1 then "" else ","))
    slot_stats;
  out "  ],\n";
  out "  \"metrics\": {\n";
  let metrics = Context.metrics ctx in
  List.iteri
    (fun i (name, v) ->
      out "    %S: %s%s\n" name (json_f v)
        (if i = List.length metrics - 1 then "" else ","))
    metrics;
  out "  }\n";
  out "}\n";
  close_out oc;
  Printf.printf "Wrote %s\n" path

(* Streamed progress: one JSON object per line, appended as each
   experiment finishes, so a long (or killed) run leaves a readable
   partial record next to the final aggregate. *)
let partial_path = "BENCH_sim.json.partial"

let stream_partial ~quick name seconds =
  try
    let oc =
      open_out_gen [ Open_append; Open_creat ] 0o644 partial_path
    in
    Printf.fprintf oc
      "{ \"mode\": %S, \"experiment\": %S, \"seconds\": %s }\n"
      (if quick then "quick" else "full")
      name
      (if Float.is_nan seconds then "null" else Printf.sprintf "%.6f" seconds);
    close_out oc
  with _ -> ()

let usage () =
  print_endline "usage: main.exe [--quick] [experiment ...]";
  print_endline "experiments:";
  List.iter
    (fun (name, descr, _) -> Printf.printf "  %-10s %s\n" name descr)
    experiments

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  if List.mem "--help" args then usage ()
  else begin
    let quick = List.mem "--quick" args in
    let selected =
      List.filter (fun a -> not (String.length a > 1 && a.[0] = '-')) args
    in
    let to_run =
      match selected with
      | [] -> experiments
      | names ->
        List.filter_map
          (fun n ->
            match
              List.find_opt (fun (name, _, _) -> name = n) experiments
            with
            | Some e -> Some e
            | None ->
              Printf.eprintf "unknown experiment %S (try --help)\n" n;
              exit 2)
          names
    in
    Printf.printf
      "MicroProbe reproduction harness (%s mode)\n\
       Paper: Bertran et al., 'Systematic Energy Characterization of\n\
       CMP/SMT Processor Systems via Automated Micro-Benchmarks', MICRO 2012\n"
      (if quick then "quick" else "full");
    let ctx = Context.create ~quick in
    (try Sys.remove partial_path with _ -> ());
    let t0 = Unix.gettimeofday () in
    let timings =
      List.map
        (fun (name, _, f) ->
          let e0 = Unix.gettimeofday () in
          f ctx;
          let dt = Unix.gettimeofday () -. e0 in
          stream_partial ~quick name dt;
          (name, dt))
        to_run
    in
    let total = Unix.gettimeofday () -. t0 in
    Printf.printf "\nTotal harness time: %.1fs\n" total;
    (* engine metrics: always emitted, even when a selected-experiment
       or quick run records nothing else *)
    Context.record_metric ctx "pool_size"
      (float_of_int (Mp_util.Parallel.size ctx.Context.pool));
    (* requested vs effective: an explicit MP_POOL_SIZE pin is honoured
       verbatim, anything else is capped at the detected core count —
       recording both makes an oversubscribed or capped pool visible in
       the artifact *)
    Context.record_metric ctx "pool_size_requested"
      (float_of_int (Mp_util.Parallel.requested_size ()));
    Context.record_metric ctx "pool_size_effective"
      (float_of_int (Mp_util.Parallel.default_size ()));
    Context.record_metric ctx "detected_cores"
      (float_of_int (Mp_util.Parallel.detected_cores ()));
    Context.record_metric ctx "occ_denominator"
      (float_of_int ctx.Context.arch.Microprobe.Arch.uarch.Mp_uarch.Uarch_def.occ_den);
    Context.record_metric ctx "pool_steals"
      (float_of_int (Mp_util.Parallel.steal_count ctx.Context.pool));
    Context.record_metric ctx "period_hits"
      (float_of_int (Microprobe.Core_sim.period_hits ()));
    Context.record_metric ctx "cycles_skipped"
      (float_of_int (Microprobe.Core_sim.cycles_skipped ()));
    (* steady-state replay: measurements served from captured period
       records instead of dense simulation (MP_REPLAY=off zeroes both) *)
    Context.record_metric ctx "replay_hits"
      (float_of_int (Microprobe.Replay.hits ()));
    Context.record_metric ctx "replay_misses"
      (float_of_int (Microprobe.Replay.misses ()));
    (let h = Microprobe.Replay.hits () and m = Microprobe.Replay.misses () in
     Context.record_metric ctx "replay_hit_rate"
       (if h + m = 0 then Float.nan
        else float_of_int h /. float_of_int (h + m)));
    (* adaptive fan-out telemetry: how often the shared pool chose to
       parallelise a batch vs run it sequentially in the caller *)
    Context.record_metric ctx "pool_parallel_batches"
      (float_of_int (Mp_util.Parallel.parallel_batches ctx.Context.pool));
    Context.record_metric ctx "pool_serial_fallbacks"
      (float_of_int (Mp_util.Parallel.serial_fallbacks ctx.Context.pool));
    Context.record_metric ctx "pool_min_jobs_per_core"
      (Mp_util.Parallel.env_min_jobs_per_core ());
    (* cumulative time deriving cache keys: with structural hashing
       this should stay in the noise; MP_KEY=marshal makes it visible *)
    Context.record_metric ctx "key_digest_seconds"
      (Microprobe.Measurement_cache.key_seconds ());
    (* process-level sharding telemetry: the MP_PROCS knob as resolved,
       the shared pool actually built, frames over the worker pipes,
       and the crash-recovery counters (both zero in a healthy run) *)
    Context.record_metric ctx "procs_requested"
      (float_of_int (Microprobe.Shard_exec.env_procs ()));
    Context.record_metric ctx "procs_effective"
      (float_of_int (Microprobe.Shard_exec.global_size ()));
    Context.record_metric ctx "proc_respawns"
      (float_of_int (Mp_util.Procpool.respawn_count ()));
    Context.record_metric ctx "jobs_recovered"
      (float_of_int (Microprobe.Machine.jobs_recovered ()));
    Context.record_metric ctx "frames_sent"
      (float_of_int (Mp_util.Procpool.frames_sent ()));
    Context.record_metric ctx "frames_received"
      (float_of_int (Mp_util.Procpool.frames_received ()));
    (* socket-transport telemetry: frames and bytes over TCP peers
       (loopback smoke plus any MP_HOSTS peers), reconnects after peer
       loss, and the remote slot count of the current global pool *)
    Context.record_metric ctx "net_frames_sent"
      (float_of_int (Mp_util.Netpool.frames_sent ()));
    Context.record_metric ctx "net_frames_received"
      (float_of_int (Mp_util.Netpool.frames_received ()));
    Context.record_metric ctx "net_bytes"
      (float_of_int (Mp_util.Netpool.bytes_transferred ()));
    Context.record_metric ctx "net_reconnects"
      (float_of_int (Mp_util.Netpool.reconnect_count ()));
    Context.record_metric ctx "hosts_effective"
      (float_of_int (Microprobe.Shard_exec.global_remote_size ()));
    (* dynamic shard scheduling: duplicate chunk copies dispatched to
       idle slots, and completions discarded because a sibling's copy
       won (both zero under MP_SHARD_SCHED=static or MP_SPECULATE=off) *)
    Context.record_metric ctx "chunks_speculated"
      (float_of_int (Microprobe.Shard_exec.chunks_speculated ()));
    Context.record_metric ctx "chunks_cancelled"
      (float_of_int (Microprobe.Shard_exec.chunks_cancelled ()));
    (* how sharded the on-disk replay store ended up — the same figure
       `mp-cache stat --json` reports *)
    (let dir =
       match Microprobe.Measurement_cache.env_disk () with
       | Some d -> d.Microprobe.Measurement_cache.dir
       | None -> "_mp_cache"
     in
     let rdir = Filename.concat dir "replay" in
     Context.record_metric ctx "replay_store_shards"
       (if Sys.file_exists rdir then
          float_of_int
            (Microprobe.Measurement_cache.disk_stats rdir)
              .Microprobe.Measurement_cache.ds_shards
        else 0.0));
    (* duplicate points collapsed before simulation, at both layers:
       Machine.run_batch within-batch dedup and Driver.eval_list keyed
       dedup *)
    Context.record_metric ctx "batch_dup_collapsed"
      (float_of_int
         (Microprobe.Machine.batch_dup_collapsed ()
         + Microprobe.Dse.Driver.dup_collapsed ()));
    (match Microprobe.Machine.measurement_cache ctx.Context.machine with
     | None -> ()
     | Some c ->
       let s = Microprobe.Measurement_cache.stats c in
       Context.record_metric ctx "cache_hits"
         (float_of_int s.Microprobe.Measurement_cache.hits);
       Context.record_metric ctx "cache_misses"
         (float_of_int s.Microprobe.Measurement_cache.misses);
       Context.record_metric ctx "cache_disk_hits"
         (float_of_int s.Microprobe.Measurement_cache.disk_hits);
       Context.record_metric ctx "cache_hit_rate"
         (Microprobe.Measurement_cache.hit_rate c));
    write_bench_json ~path:"BENCH_sim.json" ~quick ~total ctx timings;
    (* join worker domains and shard subprocesses deterministically on
       the normal exit path (the at_exit hooks cover abnormal ones) *)
    Microprobe.Shard_exec.shutdown_global ();
    Mp_util.Parallel.shutdown_global ()
  end
