open Mp_codegen
open Mp_isa
open Mp_uarch

type evaluation = {
  sequence : string list;
  smt : int;
  power : float;
  core_ipc : float;
}

type set_summary = {
  set_name : string;
  evaluations : evaluation list;
  min_power : float;
  mean_power : float;
  max_power : float;
  best : evaluation;
}

let program_of_sequence ~arch ?(size = 1024) ~name sequence =
  if sequence = [] then invalid_arg "Stressmark.program_of_sequence: empty";
  let synth = Synthesizer.create ~name arch in
  Synthesizer.add_pass synth (Passes.skeleton ~size);
  Synthesizer.add_pass synth (Passes.fill_sequence sequence);
  if List.exists Instruction.is_memory sequence then
    Synthesizer.add_pass synth
      (Passes.memory_model [ (Cache_geometry.L1, 1.0) ]);
  Synthesizer.add_pass synth (Passes.dependency Builder.No_deps);
  Synthesizer.add_pass synth (Passes.init_registers Builder.Random_values);
  Synthesizer.add_pass synth (Passes.init_immediates Builder.Random_values);
  Synthesizer.add_pass synth (Passes.rename name);
  Synthesizer.synthesize ~seed:(Hashtbl.hash name) synth

let expert_instructions arch =
  List.map (Arch.find_instruction arch) [ "mullw"; "xvmaddadp"; "lxvd2x" ]

let expert_manual_sequences arch =
  match expert_instructions arch with
  | [ m; v; l ] ->
    [
      [ m; v; l; m; v; l ];  (* round-robin *)
      [ m; m; v; v; l; l ];  (* clustered *)
      [ v; l; m; v; l; m ];  (* rotated round-robin *)
      [ v; v; m; m; l; l ];
    ]
  | _ -> assert false

let microprobe_instructions ~isa props =
  (* one pick per pure functional-unit category ("FXU"/"LSU"/"VSU" of
     the taxonomy): the instruction with the highest IPC×EPI product *)
  let best = Hashtbl.create 4 in
  List.iter
    (fun (p : Mp_epi.Bootstrap.props) ->
      let is_memory =
        match Isa_def.find isa p.Mp_epi.Bootstrap.mnemonic with
        | Some i -> Instruction.is_memory i
        | None -> false
      in
      let label = Mp_epi.Taxonomy.category_label p is_memory in
      if List.mem label [ "FXU"; "LSU"; "VSU" ] then begin
        let score = p.Mp_epi.Bootstrap.core_ipc *. p.Mp_epi.Bootstrap.epi in
        match Hashtbl.find_opt best label with
        | Some (s, _) when s >= score -> ()
        | _ -> Hashtbl.replace best label (score, p.Mp_epi.Bootstrap.mnemonic)
      end)
    props;
  List.filter_map
    (fun u ->
      match Hashtbl.find_opt best u with
      | Some (_, m) -> Isa_def.find isa m
      | None -> None)
    [ "FXU"; "LSU"; "VSU" ]

let exhaustive_sequences candidates ~length =
  Mp_dse.Space.sequences candidates ~length

let mnemonics sequence =
  List.map (fun (i : Instruction.t) -> i.Instruction.mnemonic) sequence

let sequence_name idx sequence =
  Printf.sprintf "sm-%d-%s" idx (String.concat "." (mnemonics sequence))

let evaluation_of ~smt sequence (m : Mp_sim.Measurement.t) =
  {
    sequence = mnemonics sequence;
    smt;
    power = m.Mp_sim.Measurement.power;
    core_ipc = m.Mp_sim.Measurement.core_ipc;
  }

(* batch a (smt, sequence) list through Machine.run_batch *)
let evaluate_jobs ~machine ~arch ~size ?pool jobs =
  let runs =
    List.map
      (fun (smt, idx, sequence) ->
        ( Uarch_def.config ~cores:8 ~smt arch.Arch.uarch,
          program_of_sequence ~arch ~size ~name:(sequence_name idx sequence)
            sequence ))
      jobs
  in
  let ms = Mp_sim.Machine.run_batch ?pool machine runs in
  List.map2 (fun (smt, _, sequence) m -> evaluation_of ~smt sequence m) jobs ms

let evaluate_set ~machine ~arch ~name ?(size = 1024) ?(smt_modes = [ 1; 2; 4 ])
    ?pool sequences =
  if sequences = [] then invalid_arg "Stressmark.evaluate_set: no sequences";
  let jobs =
    List.concat_map
      (fun smt -> List.mapi (fun idx s -> (smt, idx, s)) sequences)
      smt_modes
  in
  let evaluations = evaluate_jobs ~machine ~arch ~size ?pool jobs in
  let powers = Array.of_list (List.map (fun e -> e.power) evaluations) in
  let lo, hi = Mp_util.Stats.min_max powers in
  let best =
    List.fold_left
      (fun acc e -> if e.power > acc.power then e else acc)
      (List.hd evaluations) evaluations
  in
  {
    set_name = name;
    evaluations;
    min_power = lo;
    mean_power = Mp_util.Stats.mean powers;
    max_power = hi;
    best;
  }

type hetero_evaluation = {
  assignment : string list;
  power : float;
}

let heterogeneous_search ~machine ~arch ?(size = 1024) ?(smt = 4) ?pool
    ~homogeneous_best () =
  let l1 = [ (Cache_geometry.L1, 1.0) ] in
  let mem = [ (Cache_geometry.MEM, 1.0) ] in
  let loop name mix dist =
    let synth = Synthesizer.create ~name arch in
    Synthesizer.add_pass synth (Passes.skeleton ~size);
    Synthesizer.add_pass synth (Passes.fill_sequence mix);
    if List.exists Instruction.is_memory mix then
      Synthesizer.add_pass synth (Passes.memory_model dist);
    Synthesizer.add_pass synth (Passes.dependency Builder.No_deps);
    Synthesizer.add_pass synth (Passes.init_registers Builder.Random_values);
    Synthesizer.add_pass synth (Passes.rename name);
    Synthesizer.synthesize ~seed:(Hashtbl.hash name) synth
  in
  let f m = Arch.find_instruction arch m in
  let blocks =
    [ ("compute", loop "het-compute" homogeneous_best l1);
      ("mem", loop "het-mem" [ f "ld"; f "ldx"; f "lfd" ] mem);
      ("l1", loop "het-l1" [ f "lbz"; f "lwz"; f "ld" ] l1) ]
  in
  let config = Uarch_def.config ~cores:8 ~smt arch.Arch.uarch in
  let assignments =
    Mp_dse.Space.combinations_with_repetition (List.map fst blocks) ~length:smt
  in
  (* the whole assignment population as one batch per search round —
     bit-identical to the serial per-assignment loop *)
  let jobs =
    List.map
      (fun assignment ->
        (config, List.map (fun b -> List.assoc b blocks) assignment))
      assignments
  in
  let ms = Mp_sim.Machine.run_heterogeneous_batch ?pool machine jobs in
  let evals =
    List.map2
      (fun assignment m ->
        { assignment; power = m.Mp_sim.Measurement.power })
      assignments ms
  in
  let sorted = List.sort (fun a b -> compare b.power a.power) evals in
  (sorted, List.hd sorted)

type order_spread = {
  multiset : string list;
  n_orders : int;
  min_power : float;
  max_power : float;
  spread_pct : float;
}

type ga_summary = {
  ga_best : evaluation;
  ga_evaluations : int;
  ga_cache_hits : int;
  ga_cache_misses : int;
}

let cache_stats machine =
  match Mp_sim.Machine.measurement_cache machine with
  | Some c -> Mp_sim.Measurement_cache.stats c
  | None -> { Mp_sim.Measurement_cache.hits = 0; misses = 0; disk_hits = 0 }

let ga_search ~machine ~arch ?(size = 1024) ?(smt = 4) ?(seed = 7)
    ?(population = 16) ?(generations = 8) ?(dedup = true) ?pool ~candidates
    ~length () =
  if candidates = [] then invalid_arg "Stressmark.ga_search: no candidates";
  if length < 1 then invalid_arg "Stressmark.ga_search: length";
  let config = Uarch_def.config ~cores:8 ~smt arch.Arch.uarch in
  let genome_key s = String.concat "." (mnemonics s) in
  (* the program name is a pure function of the sequence, so any
     sequence the GA revisits hits the measurement cache — and, with
     [dedup], a genome→program memo skips re-running the synthesis
     passes for elites and re-generated clones entirely *)
  let build s =
    program_of_sequence ~arch ~size ~name:("ga-" ^ genome_key s) s
  in
  let memo = Hashtbl.create 64 in
  let program_of s =
    if not dedup then build s
    else begin
      let k = genome_key s in
      match Hashtbl.find_opt memo k with
      | Some p -> p
      | None ->
        let p = build s in
        Hashtbl.add memo k p;
        p
    end
  in
  let run_one s = Mp_sim.Machine.run machine config (program_of s) in
  let eval s = (run_one s).Mp_sim.Measurement.power in
  let eval_batch ss =
    Mp_sim.Machine.run_batch ?pool ~dedup machine
      (List.map (fun s -> (config, program_of s)) ss)
    |> List.map (fun m -> m.Mp_sim.Measurement.power)
  in
  let cand = Array.of_list candidates in
  let pick rng = cand.(Mp_util.Rng.int rng (Array.length cand)) in
  let ops =
    {
      Mp_dse.Genetic.init =
        (fun rng ->
          let r = ref [] in
          for _ = 1 to length do
            r := pick rng :: !r
          done;
          List.rev !r);
      mutate =
        (fun rng s ->
          let pos = Mp_util.Rng.int rng length in
          let repl = pick rng in
          List.mapi (fun i x -> if i = pos then repl else x) s);
      crossover =
        (fun rng a b ->
          if length < 2 then a
          else
            let cut = 1 + Mp_util.Rng.int rng (length - 1) in
            let b = Array.of_list b in
            List.mapi (fun i x -> if i < cut then x else b.(i)) a);
    }
  in
  let before = cache_stats machine in
  let rng = Mp_util.Rng.create seed in
  let point_key = if dedup then Some genome_key else None in
  let r =
    Mp_dse.Genetic.search ~rng ~ops ~eval ~eval_batch ?point_key ~population
      ~generations ()
  in
  let after = cache_stats machine in
  let best_m = run_one r.Mp_dse.Driver.best.Mp_dse.Driver.point in
  {
    ga_best = evaluation_of ~smt r.Mp_dse.Driver.best.Mp_dse.Driver.point best_m;
    ga_evaluations = r.Mp_dse.Driver.evaluations;
    ga_cache_hits = after.Mp_sim.Measurement_cache.hits - before.Mp_sim.Measurement_cache.hits;
    ga_cache_misses =
      after.Mp_sim.Measurement_cache.misses - before.Mp_sim.Measurement_cache.misses;
  }

let order_spread ~machine ~arch ?(size = 1024) ?(smt = 4) ?pool multiset =
  let orders = Mp_dse.Space.distinct_permutations multiset in
  let evals =
    evaluate_jobs ~machine ~arch ~size ?pool
      (List.mapi (fun idx s -> (smt, idx, s)) orders)
  in
  let powers =
    Array.of_list (List.map (fun (e : evaluation) -> e.power) evals)
  in
  let lo, hi = Mp_util.Stats.min_max powers in
  {
    multiset =
      List.map (fun (i : Instruction.t) -> i.Instruction.mnemonic) multiset;
    n_orders = List.length orders;
    min_power = lo;
    max_power = hi;
    spread_pct = (if lo > 0.0 then (hi -. lo) /. lo *. 100.0 else 0.0);
  }
