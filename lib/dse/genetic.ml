type 'p operators = {
  init : Mp_util.Rng.t -> 'p;
  mutate : Mp_util.Rng.t -> 'p -> 'p;
  crossover : Mp_util.Rng.t -> 'p -> 'p -> 'p;
}

let search ~rng ~ops ~eval ?eval_batch ?point_key ?(population = 24)
    ?(generations = 12) ?(elite = 4) ?(mutation_rate = 0.3) ?(seeds = []) () =
  if population < 2 then invalid_arg "Genetic.search: population";
  if elite >= population then invalid_arg "Genetic.search: elite";
  (* [point_key] dedup lives entirely on the evaluation side: candidate
     generation consumes [rng] before any scoring happens, so collapsing
     duplicate evaluations cannot perturb the search trajectory *)
  let eval_all points =
    Driver.eval_list ?key:point_key ?eval_batch ~eval points
  in
  (* single-pass accumulator: evaluation list (reversed), count and the
     running best — no O(n) re-scan at the end *)
  let all_rev = ref [] in
  let count = ref 0 in
  let best = ref None in
  let note e =
    all_rev := e :: !all_rev;
    incr count;
    match !best with
    | Some b when Driver.compare_desc e b >= 0 -> ()
    | _ -> best := Some e
  in
  let tournament pop =
    let a = Mp_util.Rng.choose rng pop and b = Mp_util.Rng.choose rng pop in
    if Driver.compare_desc a b <= 0 then a else b
  in
  let seeds = Array.of_list seeds in
  (* build points first (consuming the RNG left-to-right), then score
     the whole population as one batch *)
  let initial_points =
    List.init population (fun i -> i)
    |> List.map (fun i ->
           if i < Array.length seeds then seeds.(i) else ops.init rng)
  in
  let initial = eval_all initial_points in
  List.iter note initial;
  let current = ref (Array.of_list initial) in
  for _gen = 1 to generations do
    let sorted =
      Array.of_list (List.sort Driver.compare_desc (Array.to_list !current))
    in
    let elites = Array.sub sorted 0 elite in
    let offspring_points = ref [] in
    for _i = elite to population - 1 do
      let a = tournament sorted and b = tournament sorted in
      let child = ops.crossover rng a.Driver.point b.Driver.point in
      let child =
        if Mp_util.Rng.float rng 1.0 < mutation_rate then ops.mutate rng child
        else child
      in
      offspring_points := child :: !offspring_points
    done;
    (* each generation's offspring is evaluated as one batch *)
    let offspring = eval_all (List.rev !offspring_points) in
    List.iter note offspring;
    current := Array.append elites (Array.of_list offspring)
  done;
  {
    Driver.best = Option.get !best;
    evaluations = !count;
    all = List.rev !all_rev;
  }
