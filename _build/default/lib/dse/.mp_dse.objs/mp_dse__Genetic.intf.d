lib/dse/genetic.mli: Driver Mp_util
