(** Architected registers referenced by generated code. *)

type t = Gpr of int | Fpr of int | Vsr of int | Cr_field of int | Ctr

val compare : t -> t -> int
val equal : t -> t -> bool
val to_string : t -> string
val pp : Format.formatter -> t -> unit

val class_of : t -> Mp_isa.Instruction.reg_class
(** The register file a register belongs to ([Ctr] reports [Cr]). *)

val file_size : Mp_isa.Instruction.reg_class -> int
(** 32 GPRs/FPRs, 64 VSRs, 8 CR fields. *)

val make : Mp_isa.Instruction.reg_class -> int -> t
(** Raises [Invalid_argument] if the index exceeds the file size. *)
