(* Work-stealing domain pool. Each worker owns a deque; batch
   submission deals jobs round-robin across the deques (heaviest first
   when the caller supplies a cost hint), owners take from the front of
   their own deque and idle workers steal from the back of a victim's —
   the two ends of a Chase-Lev deque, here guarded by a per-deque mutex
   because jobs are whole simulations (milliseconds to seconds each)
   and queue traffic is never the bottleneck. Stealing is what keeps
   domains busy at batch tails, where one 8c-SMT4 simulation can
   outlast a dozen 1c-SMT1 ones. *)

module Deque = struct
  type 'a t = {
    mutable buf : 'a option array;
    mutable head : int;  (* index of the front element *)
    mutable len : int;
    lock : Mutex.t;
  }

  let create () =
    { buf = Array.make 16 None; head = 0; len = 0; lock = Mutex.create () }

  let grow d =
    let n = Array.length d.buf in
    let bigger = Array.make (2 * n) None in
    for i = 0 to d.len - 1 do
      bigger.(i) <- d.buf.((d.head + i) mod n)
    done;
    d.buf <- bigger;
    d.head <- 0

  let push_back d x =
    Mutex.lock d.lock;
    if d.len = Array.length d.buf then grow d;
    d.buf.((d.head + d.len) mod Array.length d.buf) <- Some x;
    d.len <- d.len + 1;
    Mutex.unlock d.lock

  (* owner end: front — cost-sorted batches start their heaviest jobs
     first *)
  let pop_front d =
    Mutex.lock d.lock;
    let r =
      if d.len = 0 then None
      else begin
        let x = d.buf.(d.head) in
        d.buf.(d.head) <- None;
        d.head <- (d.head + 1) mod Array.length d.buf;
        d.len <- d.len - 1;
        x
      end
    in
    Mutex.unlock d.lock;
    r

  (* thief end: back *)
  let pop_back d =
    Mutex.lock d.lock;
    let r =
      if d.len = 0 then None
      else begin
        let i = (d.head + d.len - 1) mod Array.length d.buf in
        let x = d.buf.(i) in
        d.buf.(i) <- None;
        d.len <- d.len - 1;
        x
      end
    in
    Mutex.unlock d.lock;
    r
end

type t = {
  size : int;
  lock : Mutex.t;  (* guards epoch/stop and the idle wait *)
  nonempty : Condition.t;
  deques : (unit -> unit) Deque.t array;
  mutable epoch : int;  (* bumped on every submission *)
  mutable stop : bool;
  mutable workers : unit Domain.t list;
  steals : int Atomic.t;
  (* adaptive-mode telemetry: batches (>= 2 jobs) that fanned out vs
     ran sequentially — fallback decision, nesting, or size 1 *)
  par_batches : int Atomic.t;
  seq_batches : int Atomic.t;
}

let in_worker_key = Domain.DLS.new_key (fun () -> false)

let in_worker () = Domain.DLS.get in_worker_key

(* own deque first, then sweep the others starting just past [me] so
   thieves spread over victims instead of all hammering worker 0 *)
let find_work pool me =
  match Deque.pop_front pool.deques.(me) with
  | Some _ as j -> j
  | None ->
    let n = Array.length pool.deques in
    let rec scan k =
      if k = n then None
      else
        match Deque.pop_back pool.deques.((me + k) mod n) with
        | Some _ as j ->
          Atomic.incr pool.steals;
          j
        | None -> scan (k + 1)
    in
    scan 1

let worker_loop pool me =
  Domain.DLS.set in_worker_key true;
  let rec loop () =
    let seen =
      Mutex.lock pool.lock;
      let e = pool.epoch in
      Mutex.unlock pool.lock;
      e
    in
    match find_work pool me with
    | Some job ->
      job ();
      loop ()
    | None ->
      Mutex.lock pool.lock;
      while pool.epoch = seen && not pool.stop do
        Condition.wait pool.nonempty pool.lock
      done;
      let stopping = pool.stop in
      Mutex.unlock pool.lock;
      if stopping then
        (* drain whatever is still queued, then exit *)
        match find_work pool me with
        | Some job ->
          job ();
          loop ()
        | None -> ()
      else loop ()
  in
  loop ()

let create n =
  let size = max 1 n in
  let pool =
    {
      size;
      lock = Mutex.create ();
      nonempty = Condition.create ();
      deques = Array.init size (fun _ -> Deque.create ());
      epoch = 0;
      stop = false;
      workers = [];
      steals = Atomic.make 0;
      par_batches = Atomic.make 0;
      seq_batches = Atomic.make 0;
    }
  in
  if size > 1 then
    pool.workers <-
      List.init size (fun i -> Domain.spawn (fun () -> worker_loop pool i));
  pool

let size t = t.size

let steal_count t = Atomic.get t.steals

let parallel_batches t = Atomic.get t.par_batches

let serial_fallbacks t = Atomic.get t.seq_batches

let shutdown t =
  Mutex.lock t.lock;
  t.stop <- true;
  Condition.broadcast t.nonempty;
  let workers = t.workers in
  t.workers <- [];
  Mutex.unlock t.lock;
  List.iter Domain.join workers

(* Left-to-right by construction — [List.map]'s application order is
   unspecified, and callers rely on jobs running in list order when we
   degrade to sequential (e.g. RNG-consuming setup code). *)
let seq_map f xs = List.rev (List.rev_map f xs)

(* Execution order of a batch: heaviest-first when [cost] is given
   (descending cost, ties by index so scheduling is reproducible),
   submission order otherwise. Pure scheduling hint — results are
   indexed, so the output order never depends on it. *)
let schedule_order cost input =
  let n = Array.length input in
  match cost with
  | None -> Array.init n Fun.id
  | Some c ->
    let keyed = Array.mapi (fun i x -> (c x, i)) input in
    Array.sort
      (fun (ca, ia) (cb, ib) ->
        match compare (cb : float) ca with 0 -> compare ia ib | d -> d)
      keyed;
    Array.map snd keyed

(* ----- adaptive fan-out/serial decision ---------------------------------- *)

(* How much parallelism a batch actually carries: at most one core's
   worth per job, and — when the caller supplies cost hints — at most
   total/max "largest-job equivalents", because no schedule finishes
   before the largest job does. A batch of 90 equal jobs has width 90;
   a batch of 90 jobs where one dwarfs the rest has width ~1 and gains
   nothing from 8 domains. *)
let effective_width cost input =
  let n = Array.length input in
  match cost with
  | None -> float_of_int n
  | Some c ->
    let total = ref 0.0 in
    let mx = ref 0.0 in
    Array.iter
      (fun x ->
        let v = Float.max 0.0 (c x) in
        total := !total +. v;
        if v > !mx then mx := v)
      input;
    if !mx <= 0.0 then float_of_int n
    else Float.min (float_of_int n) (!total /. !mx)

(* Deliberately permissive: speedup is bounded by the batch's width,
   not the pool's size, so a width-6 batch on 8 workers still wins
   ~6x and must fan out. The per-core criterion only exists to catch
   batches so thin that most domains would wake up for nothing. *)
let default_min_jobs_per_core = 0.25

let env_min_jobs_per_core () =
  match Sys.getenv_opt "MP_POOL_MIN_JOBS_PER_CORE" with
  | Some s ->
    (match float_of_string_opt (String.trim s) with
     | Some f when f >= 0.0 && Float.is_finite f -> f
     | _ -> default_min_jobs_per_core)
  | None -> default_min_jobs_per_core

(* Fan out only when the batch can amortise domain wakeup/steal
   overhead: at least two jobs of comparable weight ([width >= 2] —
   below that, the batch is one dominant job plus crumbs and the
   dominant job bounds wall-clock anyway), and enough width to feed
   the pool ([min_jobs_per_core] per worker, default 1: a pool that
   can't give every domain a job's worth of work mostly pays wakeups).
   Serial execution of an unworthy batch is bit-identical by the map
   contract, so the decision is pure scheduling. *)
let worthwhile ~size ~jobs ~width ~min_jobs_per_core =
  size > 1 && jobs >= 2 && width >= 2.0
  && width >= min_jobs_per_core *. float_of_int size

let map ?cost ?min_jobs_per_core pool f xs =
  let forced_seq = pool.size <= 1 || pool.workers = [] || in_worker () in
  let input = Array.of_list xs in
  let n = Array.length input in
  let fan_out =
    (not forced_seq)
    &&
    let mjpc =
      match min_jobs_per_core with
      | Some v -> v
      | None -> env_min_jobs_per_core ()
    in
    worthwhile ~size:pool.size ~jobs:n
      ~width:(effective_width cost input)
      ~min_jobs_per_core:mjpc
  in
  if n >= 2 then
    Atomic.incr (if fan_out then pool.par_batches else pool.seq_batches);
  if not fan_out then seq_map f xs
  else begin
    if n = 0 then []
    else begin
      let results = Array.make n None in
      let failure = ref None in
      let remaining = ref n in
      let done_lock = Mutex.create () in
      let done_cond = Condition.create () in
      let job i () =
        (try results.(i) <- Some (f input.(i))
         with e ->
           let bt = Printexc.get_raw_backtrace () in
           Mutex.lock done_lock;
           (* keep the lowest-indexed failure so re-raising is
              deterministic regardless of worker interleaving and of
              which domain a failing job was stolen by *)
           (match !failure with
            | Some (j, _, _) when j < i -> ()
            | _ -> failure := Some (i, e, bt));
           Mutex.unlock done_lock);
        Mutex.lock done_lock;
        decr remaining;
        if !remaining = 0 then Condition.broadcast done_cond;
        Mutex.unlock done_lock
      in
      let order = schedule_order cost input in
      Mutex.lock pool.lock;
      (* deal round-robin: with a cost hint, the k heaviest jobs land
         one per worker; whatever imbalance remains is stolen away *)
      Array.iteri
        (fun k idx -> Deque.push_back pool.deques.(k mod pool.size) (job idx))
        order;
      pool.epoch <- pool.epoch + 1;
      Condition.broadcast pool.nonempty;
      Mutex.unlock pool.lock;
      Mutex.lock done_lock;
      while !remaining > 0 do
        Condition.wait done_cond done_lock
      done;
      Mutex.unlock done_lock;
      match !failure with
      | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
      | None ->
        Array.to_list
          (Array.map
             (function Some r -> r | None -> assert false)
             results)
    end
  end

let chunks size xs =
  let rec go acc cur k = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | x :: rest ->
      if k = size then go (List.rev cur :: acc) [ x ] 1 rest
      else go acc (x :: cur) (k + 1) rest
  in
  go [] [] 0 xs

(* Auto-tuned chunk size: enough chunks that work stealing can
   rebalance a skewed tail (~8 per worker), computed by ceiling
   division so the chunk count never overshoots that target and small
   inputs degrade to one element per chunk (i.e. plain [map]). The
   granularity/overhead trade-off: more chunks help the steal scheduler
   only up to a few per worker, while each extra chunk costs one
   deque round-trip — 8 sits past the balance knee for the skewed
   simulation batches this pool runs, and stays cheap because chunks
   are whole jobs, not cycles. *)
let auto_chunk ~jobs ~workers =
  if jobs <= 0 then 1
  else
    let target = 8 * max 1 workers in
    (jobs + target - 1) / target

let map_chunked ?chunk ?cost ?min_jobs_per_core pool f xs =
  let n = List.length xs in
  if n = 0 then []
  else begin
    let chunk =
      match chunk with
      | Some c -> max 1 c
      | None -> auto_chunk ~jobs:n ~workers:pool.size
    in
    if chunk <= 1 then map ?cost ?min_jobs_per_core pool f xs
    else
      let chunk_cost =
        Option.map
          (fun c ch -> List.fold_left (fun acc x -> acc +. c x) 0.0 ch)
          cost
      in
      List.concat
        (map ?cost:chunk_cost ?min_jobs_per_core pool
           (fun c -> seq_map f c)
           (chunks chunk xs))
  end

let detected_cores () = Domain.recommended_domain_count ()

let env_size () =
  match Sys.getenv_opt "MP_POOL_SIZE" with
  | Some s ->
    (match int_of_string_opt (String.trim s) with
     | Some n when n > 0 -> Some n
     | _ -> None)
  | None -> None

let requested_size () =
  match env_size () with Some n -> n | None -> detected_cores ()

(* An explicit MP_POOL_SIZE is honoured verbatim (deliberate pinning,
   e.g. oversubscription experiments); any other request is capped at
   the detected core count so a stale default can never put more
   workers than cores on a small box — the pathology behind a 4-worker
   pool "achieving" a 0.3x speedup on one core. *)
let default_size () =
  match env_size () with
  | Some n -> n
  | None -> min (requested_size ()) (detected_cores ())

let global_pool = ref None
let global_lock = Mutex.create ()

let global () =
  Mutex.lock global_lock;
  let pool =
    match !global_pool with
    | Some p -> p
    | None ->
      let p = create (default_size ()) in
      global_pool := Some p;
      at_exit (fun () -> shutdown p);
      p
  in
  Mutex.unlock global_lock;
  pool

(* Explicit counterpart to the at_exit hook: exit paths that want the
   domains joined *before* the process tears anything else down (the
   CLI and the bench harness) call this; [shutdown] is idempotent, so
   the at_exit firing afterwards is harmless. *)
let shutdown_global () =
  Mutex.lock global_lock;
  let p = !global_pool in
  global_pool := None;
  Mutex.unlock global_lock;
  Option.iter shutdown p
