lib/sim/cache_sim.mli: Mp_uarch
