(** A small fixed-size domain pool for fan-out over independent jobs.

    The measurement engine evaluates thousands of (program,
    configuration) points whose simulations are independent; this pool
    spreads them over the machine's cores with plain stdlib domains —
    no external dependencies.

    Semantics:
    - {!map} and {!map_chunked} preserve the order of the input list;
      the result is indistinguishable from [List.map] applied
      left-to-right (jobs must therefore be independent and
      deterministic, which every simulation job is by construction).
    - A pool of size 1 — and any call made {e from inside} a pool
      worker — degrades to sequential execution, so nested maps can
      never deadlock on the job queue.
    - If any job raises, the exception of the lowest-indexed failing
      job is re-raised in the caller once all jobs have drained. *)

type t

val create : int -> t
(** [create n] spawns a pool of [n] worker domains (clamped to at
    least 1; a size-1 pool spawns no domains and runs sequentially). *)

val size : t -> int
(** Number of workers ([1] means sequential). *)

val shutdown : t -> unit
(** Stop the workers and join them. Idempotent. Maps on a shut-down
    pool run sequentially. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** Order-preserving parallel map: one job per element. *)

val map_chunked : ?chunk:int -> t -> ('a -> 'b) -> 'a list -> 'b list
(** Like {!map} but groups elements into chunks of [chunk] (default:
    enough chunks for ~4 per worker) to amortise queue traffic when
    jobs are small. *)

val in_worker : unit -> bool
(** True when called from inside a pool worker (nested maps degrade). *)

val default_size : unit -> int
(** The pool size used by {!global}: the [MP_POOL_SIZE] environment
    variable when set to a positive integer, otherwise
    [Domain.recommended_domain_count ()]. *)

val global : unit -> t
(** The process-wide shared pool, created on first use with
    {!default_size} workers and shut down at exit. *)
