lib/dse/exhaustive.ml: Driver List
