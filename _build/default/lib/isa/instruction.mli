(** Instruction semantic records — the ISA-definition module of the
    paper (Section 2.1.1).

    Each instruction carries the "rich set of semantic information" the
    paper enumerates: type, operand length, conditional execution,
    privilege level, prefetch-ness, registers used/defined and binary
    codification. The micro-architecture mapping (units stressed,
    latency, throughput, EPI) deliberately lives elsewhere
    ({!Mp_uarch}): the ISA is implementation-independent. *)

type reg_class = Gpr | Fpr | Vsr | Cr
(** Register files: general-purpose, floating-point, vector-scalar,
    condition. *)

type exec_class =
  | Simple_int   (** add/logical ops executable by FXU {e or} LSU *)
  | Complex_int  (** FXU-only integer (rotates, extends, popcount) *)
  | Mul_int
  | Div_int
  | Fp_arith
  | Fp_fma
  | Fp_heavy     (** divide/sqrt class floating point *)
  | Vec_logic
  | Vec_arith
  | Vec_fma
  | Dec_arith    (** decimal floating point *)
  | Cmp_op
  | Branch_op
  | Nop_op
  | Mem_op       (** loads and stores; refined by [mem] below *)

type mem_kind = No_mem | Load | Store

type form = D | DS | X | XO | A | XX3 | VX | I_form | B_form | MD
(** Binary encoding layout families of the Power ISA. *)

type t = private {
  mnemonic : string;
  exec_class : exec_class;
  mem : mem_kind;
  update : bool;      (** writes the effective address back to the base GPR *)
  algebraic : bool;   (** sign-extending load (extra fixed-point work) *)
  indexed : bool;     (** X-form base+index addressing *)
  data_class : reg_class;  (** register file of the data operand(s) *)
  width : int;        (** operand length in bits (8..128) *)
  has_imm : bool;
  imm_bits : int;
  srcs : int;         (** number of register data sources *)
  has_dest : bool;
  conditional : bool;
  privileged : bool;
  prefetch : bool;
  form : form;
  opcode : int;       (** primary opcode, 6 bits *)
  xo : int;           (** extended opcode (width depends on [form]) *)
  description : string;
}

val make :
  mnemonic:string ->
  exec_class:exec_class ->
  ?mem:mem_kind ->
  ?update:bool ->
  ?algebraic:bool ->
  ?indexed:bool ->
  ?data_class:reg_class ->
  ?width:int ->
  ?has_imm:bool ->
  ?imm_bits:int ->
  ?srcs:int ->
  ?has_dest:bool ->
  ?conditional:bool ->
  ?privileged:bool ->
  ?prefetch:bool ->
  ?form:form ->
  opcode:int ->
  ?xo:int ->
  ?description:string ->
  unit ->
  t
(** Smart constructor; validates field ranges (opcode fits 6 bits, xo
    fits its form, width is a power of two between 8 and 128). *)

(* Semantic predicates, mirroring the queries of the paper's Figure 2. *)

val is_load : t -> bool
val is_store : t -> bool
val is_memory : t -> bool
val is_branch : t -> bool
val is_vector : t -> bool
(** True for VSR-file operations (vector or VSX scalar). *)

val is_float : t -> bool
(** True for FPR-file or VSX floating-point arithmetic. *)

val is_integer : t -> bool
val is_decimal : t -> bool

val reads : t -> (reg_class * int) list
(** Register file reads implied by the operand signature, including the
    base/index GPRs of memory operations. *)

val writes : t -> (reg_class * int) list
(** Register file writes, including base-update side effects. *)

val exec_class_to_string : exec_class -> string
val exec_class_of_string : string -> exec_class option
val form_to_string : form -> string
val form_of_string : string -> form option
val reg_class_to_string : reg_class -> string
val reg_class_of_string : string -> reg_class option

val pp : Format.formatter -> t -> unit

module Encoding : sig
  (** Binary codification: a simplified but invertible 32-bit Power-like
      encoding. Field layout depends on the form. *)

  type fields = {
    rt : int;  (** target register index (or BO for branches) *)
    ra : int;  (** first source / base register (or BI) *)
    rb : int;  (** second source / index register *)
    imm : int; (** immediate / displacement, sign-truncated to the form's width *)
  }

  val encode : t -> fields -> int32
  (** Raises [Invalid_argument] when a register index exceeds the file
      (32 entries, or 64 for VSRs). *)

  val decode_fields : t -> int32 -> fields
  (** Inverse of {!encode} for the same instruction descriptor. *)

  val opcode_of_word : int32 -> int
  (** Extract the primary opcode of any encoded word. *)

  val xo_of_word : form -> int32 -> int
  (** Extract the extended opcode given the form. *)
end
