examples/epi_survey.ml: Arch Epi List Machine Microprobe Pipe Printf String Util
