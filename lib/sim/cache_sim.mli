(** Functional simulation of one core's cache hierarchy: three
    set-associative LRU levels plus a sequential-stream prefetcher
    (which the paper's randomised streams are designed to defeat). The
    hierarchy is shared by the core's hardware threads, as on POWER7. *)

type t

val create : Mp_uarch.Uarch_def.t -> t

val access : t -> addr:int -> store:bool -> Mp_uarch.Cache_geometry.level
(** Perform one access; returns the data-source level (the deepest
    level that had to supply the line) and fills all upper levels.
    Stores allocate like loads (write-allocate). *)

val hits : t -> Mp_uarch.Cache_geometry.level -> int
(** Accesses sourced from a level since creation (demand only;
    prefetch fills are not counted). *)

val prefetches_issued : t -> int

val reset_stats : t -> unit
(** Clear counters but keep cache contents (for warmup/measure
    separation). *)

val stats_snapshot : t -> int array
(** The demand counters (one per level, in {!Mp_uarch.Cache_geometry.all_levels}
    order) followed by the prefetch count — a baseline for {!credit}. *)

val credit : t -> times:int -> since:int array -> unit
(** [credit t ~times ~since] adds [times] copies of the stat delta
    accumulated since the {!stats_snapshot} [since] — how the core
    simulator's exact period skipping accounts the cache activity of
    the loop iterations it does not replay. *)

val add_fingerprint : t -> Buffer.t -> unit
(** Append a byte-exact fingerprint of the cache's {e behavioural}
    state — every set's MRU-ordered line addresses plus the stream
    prefetcher's last line and (saturated) stride streak — to [buf].
    Two caches with equal fingerprints respond identically to every
    future access sequence; statistics counters are excluded. *)
