(** Functional simulation of one core's cache hierarchy: three
    set-associative LRU levels plus a sequential-stream prefetcher
    (which the paper's randomised streams are designed to defeat). The
    hierarchy is shared by the core's hardware threads, as on POWER7.

    Two engines implement identical replacement semantics. The default
    {e packed} model keeps each level's sets in one flat int array with
    precomputed set shift/mask, rank-indexed counters, an MRU fast path
    and a rolling FNV digest of the whole state, so dense memory
    simulation and boundary fingerprinting are cheap. The original
    {e list} model is retained as the bit-exactness oracle
    ([MP_CACHE_MODEL=list], {!Cache_sim_list}). *)

type model = Packed | List_ref

val model_to_string : model -> string

val model_of_string : string -> model option
(** Accepts ["packed"]/["fast"] and ["list"]/["ref"]/["reference"]. *)

val default_model : unit -> model
(** The model {!create} uses when none is given: [Packed] unless the
    [MP_CACHE_MODEL] environment variable selects the reference model.
    Read per call, so tests can flip it between runs. Raises
    [Invalid_argument] on an unrecognised value. *)

type t

val create : ?model:model -> Mp_uarch.Uarch_def.t -> t
(** [model] defaults to {!default_model}[ ()]. *)

val model : t -> model

val access : t -> addr:int -> store:bool -> Mp_uarch.Cache_geometry.level
(** Perform one access; returns the data-source level (the deepest
    level that had to supply the line) and fills all upper levels.
    Stores allocate like loads (write-allocate). *)

val hits : t -> Mp_uarch.Cache_geometry.level -> int
(** Accesses sourced from a level since creation (demand only;
    prefetch fills are not counted). *)

val prefetches_issued : t -> int

val prefetch_streak : t -> int
(** The live sequential-stride streak, saturated at 3 — the only bound
    the prefetcher consults, so saturation keeps behavioural state
    periodic on endless sequential walks. *)

val reset_stats : t -> unit
(** Clear counters but keep cache contents (for warmup/measure
    separation). *)

val stats_snapshot : t -> int array
(** The demand counters (one per level, in {!Mp_uarch.Cache_geometry.all_levels}
    order) followed by the prefetch count — a baseline for {!credit}. *)

val credit : t -> times:int -> since:int array -> unit
(** [credit t ~times ~since] adds [times] copies of the stat delta
    accumulated since the {!stats_snapshot} [since] — how the core
    simulator's exact period skipping accounts the cache activity of
    the loop iterations it does not replay. *)

val add_fingerprint : t -> Buffer.t -> unit
(** Append a fingerprint of the cache's {e behavioural} state — line
    placement and MRU order at every level plus the stream prefetcher's
    last line and saturated streak — to [buf]; statistics counters are
    excluded. The reference model serializes the full state, so equal
    fingerprints mean equal states. The packed model appends its
    rolling 63-bit digest in O(1): equal states still produce equal
    fingerprints, and distinct states collide with probability ~2^-63
    per compared pair — the one deliberate relaxation of the period
    detector's exactness, confined to memory programs. *)

val rolling_digest : t -> int option
(** The packed model's incrementally maintained digest ([None] for the
    reference model). *)

val digest_consistent : t -> bool
(** Recompute the packed digest from the flat state and compare with
    the rolling value — the incremental-hashing invariant, checked by
    tests after arbitrary access sequences. Always [true] for the
    reference model. *)
