lib/sim/power_sim.ml: Array Core_sim Energy_table Float List Measurement Mp_uarch Mp_util Uarch_def
