lib/isa/isa_def.ml: Buffer Format Hashtbl Instruction List Printf String
