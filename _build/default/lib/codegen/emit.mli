(** Emitters: render a generated micro-benchmark as pseudo-assembly or
    as a self-contained C file with an inline-asm endless loop — the
    forms the real MicroProbe writes to disk. *)

val to_asm : Ir.t -> string
(** GNU-style assembly listing: register initialisation, loop label,
    body, closing [bdnz]. *)

val to_c : Ir.t -> string
(** C harness embedding the loop as an [asm volatile] block. *)

val operand_string : Ir.instr -> string
(** The operand list of one instruction as it appears in the listing. *)
