type row = Cells of string array | Separator

type t = { headers : string array; mutable rows : row list }

let create headers = { headers = Array.of_list headers; rows = [] }

let add_row t cells =
  let n = Array.length t.headers in
  let cells = Array.of_list cells in
  if Array.length cells > n then invalid_arg "Text_table.add_row: too wide";
  let padded = Array.make n "" in
  Array.blit cells 0 padded 0 (Array.length cells);
  t.rows <- Cells padded :: t.rows

let add_separator t = t.rows <- Separator :: t.rows

let render t =
  let rows = List.rev t.rows in
  let n = Array.length t.headers in
  let widths = Array.map String.length t.headers in
  List.iter
    (function
      | Separator -> ()
      | Cells cs ->
        Array.iteri
          (fun i c -> if String.length c > widths.(i) then widths.(i) <- String.length c)
          cs)
    rows;
  let buf = Buffer.create 1024 in
  let emit_cells cs =
    for i = 0 to n - 1 do
      if i > 0 then Buffer.add_string buf "  ";
      let c = cs.(i) in
      Buffer.add_string buf c;
      Buffer.add_string buf (String.make (widths.(i) - String.length c) ' ')
    done;
    Buffer.add_char buf '\n'
  in
  let total = Array.fold_left ( + ) (2 * (n - 1)) widths in
  emit_cells t.headers;
  Buffer.add_string buf (String.make total '-');
  Buffer.add_char buf '\n';
  List.iter
    (function
      | Separator ->
        Buffer.add_string buf (String.make total '-');
        Buffer.add_char buf '\n'
      | Cells cs -> emit_cells cs)
    rows;
  Buffer.contents buf

let print t = print_string (render t); print_newline ()

let cell_f ?(decimals = 3) v = Printf.sprintf "%.*f" decimals v

let cell_pct ?(decimals = 1) v = Printf.sprintf "%.*f%%" decimals v
