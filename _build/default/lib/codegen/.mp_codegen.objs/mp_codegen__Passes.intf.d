lib/codegen/passes.mli: Builder Ir Mp_isa
