lib/uarch/cache_geometry.mli: Format
