examples/cache_fractions.mli:
