(** The energy-based instruction taxonomy of the paper's Section 5 /
    Table 3: instructions grouped into categories by the functional
    units they stress, with EPI normalised globally and within each
    category, and per-category exemplar rows (the top IPC×EPI
    instruction plus same-IPC/different-EPI contrasts). *)

type category = {
  label : string;   (** e.g. "FXU", "FXU or LSU", "LSU and 2FXU" *)
  members : Bootstrap.props list;  (** sorted by descending EPI *)
}

val category_label : Bootstrap.props -> bool -> string
(** [category_label props is_memory]: the category name derived from
    the measured per-instruction unit events. *)

val categorize :
  isa:Mp_isa.Isa_def.t -> Bootstrap.props list -> category list
(** Group bootstrapped instructions; categories ordered as in Table 3
    (single units first, then combinations). *)

type row = {
  category : string;
  mnemonic : string;
  core_ipc : float;
  epi_global : float;    (** normalised to the minimum selected EPI *)
  epi_category : float;  (** normalised within the category *)
  ipc_epi_product : float;
}

val table3 : ?per_category:int -> category list -> row list
(** For each category: the highest-IPC×EPI instruction, plus exemplars
    from the same-IPC group with the widest EPI contrast (the paper's
    "same core IPC but notably different EPI" companions); [per_category]
    rows total (default 3). Normalisations follow the paper. *)

val epi_spread : category -> float
(** Largest max/min EPI ratio (minus one, as a percentage) among the
    category's same-IPC groups — instructions stressing the same unit
    at the same rate. The paper reports spreads up to ~78%. *)
