(* Parallel-engine benchmark: the same measurement batch run serially
   (pool of one, no cache) and across the domain pool, with a
   bit-identical result check — the engine's determinism contract is
   asserted on every harness run, not only in the test suite. *)

open Microprobe

let run (ctx : Context.t) =
  Context.section "Parallel engine — pooled run_batch vs serial";
  let arch = ctx.Context.arch in
  let programs = Context.family_programs ~skip:2 ctx in
  let configs =
    [ Context.config ctx ~cores:1 ~smt:1;
      Context.config ctx ~cores:4 ~smt:2;
      Context.config ctx ~cores:8 ~smt:4 ]
  in
  let jobs =
    List.concat_map (fun c -> List.map (fun p -> (c, p)) programs) configs
  in
  Context.log "%d jobs (%d programs x %d configurations), pool of %d domains"
    (List.length jobs) (List.length programs) (List.length configs)
    (Mp_util.Parallel.size ctx.Context.pool);
  (* fresh machines with the cache off so both sides simulate every job *)
  let serial_machine = Machine.create ~cache:false arch.Arch.uarch in
  let serial_pool = Mp_util.Parallel.create 1 in
  let t0 = Unix.gettimeofday () in
  let serial = Machine.run_batch ~pool:serial_pool serial_machine jobs in
  let t_serial = Unix.gettimeofday () -. t0 in
  Mp_util.Parallel.shutdown serial_pool;
  let par_machine = Machine.create ~cache:false arch.Arch.uarch in
  let steals0 = Mp_util.Parallel.steal_count ctx.Context.pool in
  let t0 = Unix.gettimeofday () in
  let par = Machine.run_batch ~pool:ctx.Context.pool par_machine jobs in
  let t_par = Unix.gettimeofday () -. t0 in
  let steals = Mp_util.Parallel.steal_count ctx.Context.pool - steals0 in
  let identical = List.for_all2 (fun a b -> compare a b = 0) serial par in
  if not identical then
    failwith "parbench: pooled results diverge from the serial run";
  let speedup = t_serial /. t_par in
  Context.record_metric ctx "parbench_jobs" (float_of_int (List.length jobs));
  Context.record_metric ctx "parbench_serial_seconds" t_serial;
  Context.record_metric ctx "parbench_parallel_seconds" t_par;
  Context.record_metric ctx "parbench_speedup" speedup;
  Context.record_metric ctx "parbench_steals" (float_of_int steals);
  Context.log
    "serial %.2fs, pooled %.2fs -> %.2fx speedup (%d jobs stolen across\n\
     workers); results bit-identical"
    t_serial t_par speedup steals;
  (* memoization: the same batch again on a caching machine — the warm
     pass must also match the serial reference bit for bit *)
  let memo_machine = Machine.create arch.Arch.uarch in
  let t0 = Unix.gettimeofday () in
  ignore (Machine.run_batch ~pool:ctx.Context.pool memo_machine jobs);
  let t_cold = Unix.gettimeofday () -. t0 in
  let t0 = Unix.gettimeofday () in
  let warm = Machine.run_batch ~pool:ctx.Context.pool memo_machine jobs in
  let t_warm = Unix.gettimeofday () -. t0 in
  if not (List.for_all2 (fun a b -> compare a b = 0) serial warm) then
    failwith "parbench: cached results diverge from the serial run";
  let memo_speedup = t_cold /. Float.max t_warm 1e-9 in
  Context.record_metric ctx "parbench_memo_cold_seconds" t_cold;
  Context.record_metric ctx "parbench_memo_warm_seconds" t_warm;
  Context.record_metric ctx "parbench_memo_speedup" memo_speedup;
  (* disk hits on the "cold" pass mean a previous harness invocation of
     this same build already simulated these points *)
  (match Machine.measurement_cache memo_machine with
   | None -> ()
   | Some c ->
     let s = Measurement_cache.stats c in
     Context.record_metric ctx "parbench_disk_hits"
       (float_of_int s.Measurement_cache.disk_hits);
     if s.Measurement_cache.disk_hits > 0 then
       Context.log "%d of the cold-pass lookups were served from the disk cache"
         s.Measurement_cache.disk_hits);
  Context.log
    "memoized rerun: cold %.2fs, warm %.3fs -> %.0fx; cached results\n\
     bit-identical to serial"
    t_cold t_warm memo_speedup
