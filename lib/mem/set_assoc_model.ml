open Mp_uarch

type level = Cache_geometry.level

type stream = { target : level; addresses : int array }

type t = {
  uarch : Uarch_def.t;
  weights : (level * float) list;  (* normalised, all four levels *)
  pools : (level * int array) list;  (* line addresses per level *)
}

let rank = function
  | Cache_geometry.L1 -> 0
  | Cache_geometry.L2 -> 1
  | Cache_geometry.L3 -> 2
  | Cache_geometry.MEM -> 3

(* Build the line pool that guarantees sourcing from [level], rooted at
   L1 set index [s].  See the .mli for the invariants. *)
let build_pool uarch level s =
  let l1 = Uarch_def.cache uarch Cache_geometry.L1 in
  let l2 = Uarch_def.cache uarch Cache_geometry.L2 in
  let l3 = Uarch_def.cache uarch Cache_geometry.L3 in
  (* 3x associativity (+1 to avoid resonance with loop instruction
     counts): robust to the re-ordering an out-of-order core applies
     within its instruction window *)
  let thrash_count g = (3 * g.Cache_geometry.associativity) + 1 in
  let resident_count g = g.Cache_geometry.associativity / 2 in
  (* distinct tag base per level class keeps pools of different loops
     from aliasing even when they share set indices at deeper levels *)
  let base_tag = 1 + (rank level * 97) in
  match level with
  | Cache_geometry.L1 ->
    Array.init (max 1 (resident_count l1)) (fun i ->
        Cache_geometry.address_with_set l1 ~set:s ~tag:(base_tag + i))
  | Cache_geometry.L2 ->
    (* > L1-assoc lines sharing L1 set [s], spread over distinct L2 sets
       with at most [resident] lines per L2 set. *)
    let n = thrash_count l1 in
    let spread = Cache_geometry.sets l2 / Cache_geometry.sets l1 in
    Array.init n (fun j ->
        let set = s + (j mod spread * Cache_geometry.sets l1) in
        Cache_geometry.address_with_set l2 ~set ~tag:(base_tag + (j / spread)))
  | Cache_geometry.L3 ->
    (* > L2-assoc lines sharing the L2 set whose index equals [s]
       (upper L2-set bits zero), spread over distinct L3 sets. *)
    let n = thrash_count l2 in
    let spread = Cache_geometry.sets l3 / Cache_geometry.sets l2 in
    Array.init n (fun j ->
        let set = s + (j mod spread * Cache_geometry.sets l2) in
        Cache_geometry.address_with_set l3 ~set ~tag:(base_tag + (j / spread)))
  | Cache_geometry.MEM ->
    (* > L3-assoc lines sharing one L3 set: miss everywhere. *)
    let n = thrash_count l3 in
    Array.init n (fun j ->
        Cache_geometry.address_with_set l3 ~set:s ~tag:(base_tag + j))

let create ~uarch ?(partition = (0, 1)) ~distribution () =
  let thread, n_threads = partition in
  if n_threads < 1 || thread < 0 || thread >= n_threads then
    invalid_arg "Set_assoc_model.create: bad partition";
  List.iter
    (fun (_, w) ->
      if w < 0.0 then invalid_arg "Set_assoc_model.create: negative weight")
    distribution;
  let weight l =
    match List.assoc_opt l distribution with None -> 0.0 | Some w -> w
  in
  let total = List.fold_left (fun acc l -> acc +. weight l) 0.0
      Cache_geometry.all_levels
  in
  if total <= 0.0 then invalid_arg "Set_assoc_model.create: zero distribution";
  let weights =
    List.map (fun l -> (l, weight l /. total)) Cache_geometry.all_levels
  in
  let l1_sets = Cache_geometry.sets (Uarch_def.cache uarch Cache_geometry.L1) in
  let classes = List.length Cache_geometry.all_levels in
  let per_thread = l1_sets / n_threads in
  if per_thread < classes then
    invalid_arg "Set_assoc_model.create: L1 set space too small for partition";
  let per_class = per_thread / classes in
  let pools =
    List.map
      (fun l ->
        let s = (thread * per_thread) + (rank l * per_class) in
        (l, build_pool uarch l s))
      Cache_geometry.all_levels
  in
  { uarch; weights; pools }

let distribution t = t.weights

let sample_level t rng =
  let levels = Array.of_list (List.map fst t.weights) in
  let w = Array.of_list (List.map snd t.weights) in
  levels.(Mp_util.Rng.weighted_index rng w)

let pool_lines t level = List.assoc level t.pools

let stream t rng level =
  let lines = Array.copy (pool_lines t level) in
  Mp_util.Rng.shuffle_in_place rng lines;
  (* random phase: rotate the order so concurrent streams interleave *)
  let phase = Mp_util.Rng.int rng (Array.length lines) in
  let n = Array.length lines in
  let addresses = Array.init n (fun i -> lines.((i + phase) mod n)) in
  { target = level; addresses }

let coordinated_streams t rng ~targets =
  (* one shuffled rotation order per level *)
  let orders =
    List.map
      (fun (l, pool) ->
        let order = Array.copy pool in
        Mp_util.Rng.shuffle_in_place rng order;
        (l, order))
      t.pools
  in
  let count l =
    Array.fold_left (fun acc l' -> if l' = l then acc + 1 else acc) 0 targets
  in
  let counts = List.map (fun (l, _) -> (l, count l)) orders in
  let seen = Hashtbl.create 8 in
  Array.map
    (fun l ->
      let m = Option.value ~default:0 (Hashtbl.find_opt seen l) in
      Hashtbl.replace seen l (m + 1);
      let order = List.assoc l orders in
      let k = List.assoc l counts in
      let p = Array.length order in
      (* instruction m of k accesses rotation position m + i*k at
         iteration i, so the interleaved sequence is 0,1,2,... mod p *)
      let addresses = Array.init p (fun i -> order.((m + (i * k)) mod p)) in
      { target = l; addresses })
    targets

let streams_for_loop t rng ~n =
  if n <= 0 then [||]
  else begin
    (* largest-remainder apportionment of the n instructions *)
    let quota = List.map (fun (l, w) -> (l, w *. float_of_int n)) t.weights in
    let floors = List.map (fun (l, q) -> (l, int_of_float (Float.floor q), q)) quota in
    let assigned = List.fold_left (fun acc (_, f, _) -> acc + f) 0 floors in
    let remainder_order =
      List.sort
        (fun (_, f1, q1) (_, f2, q2) ->
          compare (q2 -. float_of_int f2) (q1 -. float_of_int f1))
        floors
    in
    let leftover = n - assigned in
    let counts =
      List.mapi
        (fun i (l, f, _) -> (l, if i < leftover then f + 1 else f))
        remainder_order
    in
    let slots =
      List.concat_map (fun (l, c) -> List.init c (fun _ -> l)) counts
    in
    let slots = Array.of_list slots in
    Mp_util.Rng.shuffle_in_place rng slots;
    Array.map (fun l -> stream t rng l) slots
  end

(* STREAM-like dense kernels: a deterministic strided walk, in address
   order, sized so the touched line set overflows every level above the
   target and (stride permitting) cycles within it. Deliberately the
   opposite of [stream]: nothing is randomised, so the sequential
   prefetcher sees stride-1 walks and bandwidth-style sweeps have a
   fixed footprint per (target, stride) cell. *)
let sequential_stream ~uarch ~target ~stride_lines =
  if stride_lines < 1 then
    invalid_arg "Set_assoc_model.sequential_stream: stride_lines < 1";
  let cache l = Uarch_def.cache uarch l in
  let cap_lines g = g.Cache_geometry.size_bytes / g.Cache_geometry.line_bytes in
  let line_bytes = (cache Cache_geometry.L1).Cache_geometry.line_bytes in
  (* distinct lines walked: half the target's capacity for L1 (resident
     by construction), twice the capacity of the level above otherwise
     (thrashes everything above the target) *)
  let n =
    match target with
    | Cache_geometry.L1 -> max 1 (cap_lines (cache Cache_geometry.L1) / 2)
    | Cache_geometry.L2 -> 2 * cap_lines (cache Cache_geometry.L1)
    | Cache_geometry.L3 -> 2 * cap_lines (cache Cache_geometry.L2)
    | Cache_geometry.MEM -> 2 * cap_lines (cache Cache_geometry.L3)
  in
  (* widely separated base per level class: walks of different targets
     never alias *)
  let base = (1 + rank target) lsl 34 in
  {
    target;
    addresses = Array.init n (fun i -> base + (i * stride_lines * line_bytes));
  }

let footprint_bytes t =
  let line_bytes =
    (Uarch_def.cache t.uarch Cache_geometry.L1).Cache_geometry.line_bytes
  in
  List.fold_left (fun acc (_, pool) -> acc + (Array.length pool * line_bytes))
    0 t.pools
