open Mp_uarch
open Mp_codegen

(* ----- opcode interning ------------------------------------------------- *)

type opmap = {
  ids : (string, int) Hashtbl.t;
  mutable names : string array;
  mutable count : int;
  lock : Mutex.t;
      (* deploys may run on pool domains; the intern table is the only
         mutable state they share, so every access takes the lock.
         Deterministic id assignment is the caller's job: Machine
         pre-interns every opcode in job order before fanning out. *)
}

let opmap_create () =
  { ids = Hashtbl.create 64; names = Array.make 64 ""; count = 0;
    lock = Mutex.create () }

let opmap_size m = m.count

let intern m name =
  Mutex.lock m.lock;
  let id =
    match Hashtbl.find_opt m.ids name with
    | Some id -> id
    | None ->
      let id = m.count in
      Hashtbl.add m.ids name id;
      if id >= Array.length m.names then begin
        let bigger = Array.make (2 * Array.length m.names) "" in
        Array.blit m.names 0 bigger 0 (Array.length m.names);
        m.names <- bigger
      end;
      m.names.(id) <- name;
      m.count <- id + 1;
      id
  in
  Mutex.unlock m.lock;
  id

let opmap_name m id =
  if id < 0 || id >= m.count then invalid_arg "Core_sim.opmap_name";
  m.names.(id)

(* ----- deployed programs ------------------------------------------------ *)

let n_pipe_kinds = 6

let pipe_index = function
  | Pipe.Fxu -> 0
  | Pipe.Lsu -> 1
  | Pipe.Vsu -> 2
  | Pipe.Bru -> 3
  | Pipe.Store_port -> 4
  | Pipe.Update_port -> 5

type dinstr = {
  op_id : int;
  fixed : (int * int) array;    (* (pipe kind, occupancy in uarch ticks) *)
  alt : (int * int) array;
  latency : int;                (* base latency; memory ops: per access *)
  dests : int array;            (* dense register ids *)
  srcs : int array;
  mem : int;                    (* 0 none / 1 load / 2 store *)
  upd_ops : int;                (* fixup micro-ops accounted as FXU events *)
  stream : int array;
  pattern : bool array;         (* conditional branches only *)
}

type dprog = {
  body : dinstr array;
  n_regs : int;
  daf : float;
}

let deploy ~uarch ~opmap ~streams (p : Ir.t) =
  let reg_ids = Hashtbl.create 64 in
  let n_regs = ref 0 in
  let reg_id r =
    match Hashtbl.find_opt reg_ids r with
    | Some i -> i
    | None ->
      let i = !n_regs in
      Hashtbl.add reg_ids r i;
      incr n_regs;
      i
  in
  let of_instr (i : Ir.instr) =
    let op = i.Ir.op in
    let res = uarch.Uarch_def.resources op in
    (* occupancies become exact integer ticks over the uarch common
       denominator; [occ_ticks] raises if the definition's [occ_den]
       does not cover some occupancy, so a broken definition fails at
       deploy rather than silently losing precision *)
    let conv u =
      (pipe_index u.Uarch_def.pipe, Uarch_def.occ_ticks uarch u.Uarch_def.occupancy)
    in
    let mem =
      match op.Mp_isa.Instruction.mem with
      | Mp_isa.Instruction.No_mem -> 0
      | Mp_isa.Instruction.Load -> 1
      | Mp_isa.Instruction.Store -> 2
    in
    {
      op_id = intern opmap op.Mp_isa.Instruction.mnemonic;
      fixed = Array.of_list (List.map conv res.Uarch_def.fixed);
      alt = Array.of_list (List.map conv res.Uarch_def.alt);
      latency = res.Uarch_def.latency;
      dests = Array.of_list (List.map reg_id i.Ir.dests);
      srcs = Array.of_list (List.map reg_id i.Ir.srcs);
      mem;
      upd_ops =
        (if op.Mp_isa.Instruction.update then 1 else 0)
        + (if op.Mp_isa.Instruction.algebraic then 1 else 0);
      stream = (if mem = 0 || op.Mp_isa.Instruction.prefetch then [||] else streams i.Ir.index);
      pattern =
        (match i.Ir.taken_pattern with Some pat -> pat | None -> [||]);
    }
  in
  let payload = Array.map of_instr p.Ir.body in
  let bdnz =
    {
      op_id = intern opmap "bdnz";
      fixed = [| (pipe_index Pipe.Bru, uarch.Uarch_def.occ_den) |];
      alt = [||];
      latency = 1;
      dests = [||];
      srcs = [||];
      mem = 0;
      upd_ops = 0;
      stream = [||];
      pattern = [||];
    }
  in
  { body = Array.append payload [| bdnz |];
    n_regs = max 1 !n_regs;
    daf = Ir.data_activity_factor p }

(* ----- activity --------------------------------------------------------- *)

type activity = {
  measured_cycles : int;
  threads : Measurement.counters array;
  op_issues : int array;
  level_loads : int array;
  switch_events : int;
  transitions : (int * int * int) list;
      (* (previous opcode id, next opcode id, count) over the dispatch bus *)
  daf : float;
  prefetches : int;
}

(* ----- the simulation --------------------------------------------------- *)

(* Process-wide period-skipping telemetry. Deliberately OUT of the
   [activity] record: skipped and dense runs must stay bit-identical
   counter-for-counter, so the only observable difference is wall-clock
   time and these monotone counters. *)
let period_hits_ctr = Atomic.make 0
let cycles_skipped_ctr = Atomic.make 0

let period_hits () = Atomic.get period_hits_ctr
let cycles_skipped () = Atomic.get cycles_skipped_ctr

let env_period =
  lazy
    (match Sys.getenv_opt "MP_PERIOD" with
     | Some v ->
       not
         (List.mem
            (String.lowercase_ascii (String.trim v))
            [ "off"; "0"; "false"; "no" ])
     | None -> true)

type pending = {
  mutable di : int;      (* body index *)
  mutable it : int;      (* iteration *)
  mutable seq : int;     (* per-thread dispatch sequence number *)
  deps : int array;      (* producer seqs captured at dispatch (-1 = none) *)
  mutable n_deps : int;
  mutable live : bool;
}

type raw_counters = {
  mutable instrs : int;
  mutable dispatched : int;
  mutable fxu : int;
  mutable lsu : int;
  mutable vsu : int;
  mutable bru : int;
  mutable st : int;
  mutable l1 : int;
  mutable l2 : int;
  mutable l3 : int;
  mutable memc : int;
}

let zero_raw () =
  { instrs = 0; dispatched = 0; fxu = 0; lsu = 0; vsu = 0; bru = 0; st = 0;
    l1 = 0; l2 = 0; l3 = 0; memc = 0 }

type thread_state = {
  prog : dprog;
  queue : pending array;      (* ring buffer of capacity window *)
  mutable q_head : int;
  mutable q_len : int;
  mutable pc : int;
  mutable iter : int;
  mutable iter_credit : int;  (* whole iterations credited by period skips *)
  mutable dispatch_seq : int;
  mutable in_flight : int;
  mutable stall_until : int;
  mutable last_dispatch_op : int;
  comp_cal : int array;       (* completions calendar, ring on cycles *)
  reg_last_writer : int array; (* dispatch seq of the youngest writer *)
  (* completion times per in-flight dispatch seq, tagged ring *)
  comp_seq : int array;
  comp_time : int array;
  predictor : int array;      (* 2-bit counters per static instruction *)
  counters : raw_counters;
  (* Ready-set scheduling state. All of it is indexed by the physical
     queue slot (0..window-1). An entry is in exactly one place at a
     time: the ready list (operands available, rescanned for pipes each
     cycle, in dispatch order), the wakeup calendar (operand arrival
     cycle known but in the future), or the waiter chains (some
     producer has not even issued, so its completion time is unknown). *)
  n_wait : int array;         (* producers not yet issued, per slot *)
  ready_at : int array;       (* max known producer completion, per slot *)
  rnext : int array;          (* ready list links; -2 = not in the list *)
  rprev : int array;
  mutable rhead : int;
  mutable rtail : int;
  whead : int array;          (* per comp-ring slot: first waiter node *)
  wlink : int array;          (* waiter node (slot * 4 + dep) -> next node *)
  rcal : int array;           (* wakeup calendar: slot-chain head per cycle *)
  rcal_next : int array;      (* per slot: next in the same calendar cycle *)
}

let calendar_size = 16384

let level_id = function
  | Cache_geometry.L1 -> 0
  | Cache_geometry.L2 -> 1
  | Cache_geometry.L3 -> 2
  | Cache_geometry.MEM -> 3

(* A boundary snapshot: the measured-counter state at a fingerprinted
   thread-0 iteration crossing. When a later crossing reproduces the
   fingerprint, (current - snapshot) is the exact per-period delta of
   every counter, and the cycle delta is the period length. *)
type boundary = {
  b_cycle : int;
  b_iters : int array;
  b_raw : raw_counters array;
  b_op_issues : int array;
  b_level_loads : int array;
  b_switch : int;
  b_transitions : int array;
  b_cache : int array;
}

(* One fingerprinted period's worth of every measured counter — the
   by-product of a period skip that the replay layer stores. All
   deltas are exact integers taken BEFORE the skip credits them, so
   [activity + k * delta] reproduces a dense run with k more periods
   bit-for-bit (see Replay for the validity conditions). Only captured
   when every thread advances the same number of iterations per period
   ([pd_period_iters]); heterogeneous-rate deployments replay at their
   recorded window only. *)
type period_delta = {
  pd_period_iters : int;  (* loop iterations per period, every thread *)
  pd_cycles : int;        (* cycles per period *)
  pd_min_total : int;     (* smallest warmup+measure the delta extends to:
                             max thread iteration at the match, plus 1 *)
  pd_counters : int array array;
      (* per thread: instrs, dispatched, fxu, lsu, vsu, bru, st,
         l1, l2, l3, memc — the raw_counters fields in order *)
  pd_op_issues : (int * int) list;      (* (opcode id, delta), sparse *)
  pd_level_loads : int array;
  pd_switch : int;
  pd_transitions : (int * int * int) list;  (* (prev id, next id, delta) *)
  pd_prefetches : int;
}

let run_ex ~uarch ~opmap ?mem_latency ?(warmup = 1) ?(measure = 2) ?period
    progs =
  let nthreads = Array.length progs in
  if nthreads = 0 then invalid_arg "Core_sim.run: no threads";
  let mem_lat =
    match mem_latency with Some l -> l | None -> uarch.Uarch_def.mem_latency
  in
  let window = uarch.Uarch_def.window in
  let total_iters = warmup + measure in
  (* Period skipping pays for its fingerprints only when there are
     enough measured iterations to elide; short windows run dense. *)
  let period_on =
    (match period with Some b -> b | None -> Lazy.force env_period)
    && measure >= 4
  in
  let cache = Cache_sim.create uarch in
  let latencies =
    (* load-to-use latency per source level id *)
    [| (Uarch_def.cache uarch Cache_geometry.L1).Cache_geometry.latency_cycles;
       (Uarch_def.cache uarch Cache_geometry.L2).Cache_geometry.latency_cycles;
       (Uarch_def.cache uarch Cache_geometry.L3).Cache_geometry.latency_cycles;
       mem_lat |]
  in
  (* One cycle is [tick] simulator ticks: the uarch common denominator
     of every occupancy, so each occupancy is a whole number of ticks
     and all busy-time bookkeeping below is exact integer
     arithmetic. *)
  let tick = uarch.Uarch_def.occ_den in
  (* Pipe instances: busy-time RESIDUALS in ticks relative to
     [pipe_now], kept >= 0. Relative storage plus integer arithmetic
     makes the residual pattern independent of the absolute cycle
     count: rebasing subtracts whole cycles' worth of ticks,
     reservation adds the occupancy's ticks, the free test compares
     against one cycle. An identical residual pattern therefore evolves
     identically at any point in the run — for *every* occupancy, which
     is what makes the period detector's state fingerprint exactly
     repeating for every kernel. *)
  let pipe_free =
    Array.init n_pipe_kinds (fun k ->
        let kind =
          match k with
          | 0 -> Pipe.Fxu | 1 -> Pipe.Lsu | 2 -> Pipe.Vsu | 3 -> Pipe.Bru
          | 4 -> Pipe.Store_port | _ -> Pipe.Update_port
        in
        Array.make (max 1 (Uarch_def.pipe_count uarch kind)) 0)
  in
  let pipe_now = ref 0 in
  let op_issues = Array.make (max 1 (opmap_size opmap + 64)) 0 in
  let level_loads = Array.make 4 0 in
  let switch_events = ref 0 in
  (* dispatch-bus opcode transitions: a flat dense matrix over interned
     opcode pairs — the per-dispatch Hashtbl this replaces dominated the
     dispatch loop. All ids are < opmap_size at run entry (interning
     happens at deploy, never mid-run). *)
  let trans_stride = max 1 (opmap_size opmap) in
  let transitions = Array.make (trans_stride * trans_stride) 0 in
  (* scratch for pipe-slot selection, hoisted out of the cycle loop *)
  let max_fixed =
    Array.fold_left
      (fun acc (p : dprog) ->
        Array.fold_left
          (fun acc (d : dinstr) -> max acc (Array.length d.fixed))
          acc p.body)
      1 progs
  in
  let fixed_slots = Array.make max_fixed (-1) in
  let threads =
    Array.map
      (fun prog ->
        {
          prog;
          queue =
            Array.init window (fun _ ->
                { di = 0; it = 0; seq = 0; deps = Array.make 4 (-1);
                  n_deps = 0; live = false });
          q_head = 0;
          q_len = 0;
          pc = 0;
          iter = 0;
          iter_credit = 0;
          dispatch_seq = 0;
          in_flight = 0;
          stall_until = 0;
          last_dispatch_op = -1;
          comp_cal = Array.make calendar_size 0;
          reg_last_writer = Array.make prog.n_regs (-1);
          comp_seq = Array.make (4 * window) (-1);
          comp_time = Array.make (4 * window) 0;
          predictor = Array.make (Array.length prog.body) 2;
          counters = zero_raw ();
          n_wait = Array.make window 0;
          ready_at = Array.make window 0;
          rnext = Array.make window (-2);
          rprev = Array.make window (-2);
          rhead = -1;
          rtail = -1;
          whead = Array.make (4 * window) (-1);
          wlink = Array.make (window * 4) (-1);
          rcal = Array.make calendar_size (-1);
          rcal_next = Array.make window (-1);
        })
      progs
  in
  let measuring = ref false in
  let start_cycle = ref 0 in
  let cycle = ref 0 in
  (* A pipe instance can accept an op at cycle [now] when its busy time
     runs out before the end of the cycle; reserving from the
     sub-cycle free tick (not the cycle boundary) lets occupancies like
     119/100 sustain their exact 100/119 throughput. *)
  (* Earliest free time per pipe kind: lets the common "every instance
     busy" case answer without scanning the instance array. The scan
     still picks the lowest-index free instance, exactly as before. *)
  let pipe_min = Array.make n_pipe_kinds 0 in
  let recompute_pipe_min k =
    let insts = pipe_free.(k) in
    let m = ref insts.(0) in
    for i = 1 to Array.length insts - 1 do
      if insts.(i) < !m then m := insts.(i)
    done;
    pipe_min.(k) <- !m
  in
  let find_free k =
    if pipe_min.(k) >= tick then -1
    else begin
      let insts = pipe_free.(k) in
      let n = Array.length insts in
      let rec go i =
        if i = n then -1 else if insts.(i) < tick then i else go (i + 1)
      in
      go 0
    end
  in
  (* advance the pipe residual epoch to [now] (clamping at free) *)
  let rebase_pipes now =
    if now > !pipe_now then begin
      let d = (now - !pipe_now) * tick in
      Array.iter
        (fun insts ->
          for i = 0 to Array.length insts - 1 do
            let r = insts.(i) - d in
            insts.(i) <- (if r > 0 then r else 0)
          done)
        pipe_free;
      for k = 0 to n_pipe_kinds - 1 do
        let m = pipe_min.(k) - d in
        pipe_min.(k) <- (if m > 0 then m else 0)
      done;
      pipe_now := now
    end
  in
  (* Ready-list maintenance. The list is doubly linked through physical
     queue slots and kept in dispatch (seq) order, so walking head->tail
     reproduces the dense oldest-first issue scan restricted to entries
     whose operands are available — the same issue decisions in the same
     order. *)
  let ready_insert t s =
    let seq = t.queue.(s).seq in
    if t.rtail < 0 then begin
      t.rhead <- s; t.rtail <- s; t.rprev.(s) <- -1; t.rnext.(s) <- -1
    end
    else if t.queue.(t.rtail).seq < seq then begin
      t.rnext.(t.rtail) <- s; t.rprev.(s) <- t.rtail; t.rnext.(s) <- -1;
      t.rtail <- s
    end
    else begin
      let p = ref t.rtail in
      while !p >= 0 && t.queue.(!p).seq > seq do p := t.rprev.(!p) done;
      if !p < 0 then begin
        t.rprev.(t.rhead) <- s; t.rnext.(s) <- t.rhead; t.rprev.(s) <- -1;
        t.rhead <- s
      end
      else begin
        let nx = t.rnext.(!p) in
        t.rnext.(!p) <- s; t.rprev.(s) <- !p; t.rnext.(s) <- nx;
        t.rprev.(nx) <- s
      end
    end
  in
  let ready_remove t s =
    let p = t.rprev.(s) and n = t.rnext.(s) in
    if p >= 0 then t.rnext.(p) <- n else t.rhead <- n;
    if n >= 0 then t.rprev.(n) <- p else t.rtail <- p;
    t.rnext.(s) <- -2;
    t.rprev.(s) <- -2
  in
  let rcal_park t s at =
    let idx = at land (calendar_size - 1) in
    t.rcal_next.(s) <- t.rcal.(idx);
    t.rcal.(idx) <- s
  in
  (* The loops are endless: the run ends when the slowest thread has
     dispatched its measured iterations; faster threads simply loop
     more. This keeps every thread in steady state for the whole
     measured window — essential when per-thread programs differ.
     [iter_credit] counts iterations accounted for by period skipping:
     they terminate the run like simulated ones, but never advance
     [iter] itself, whose raw value carries the stream/pattern phases. *)
  let all_done () =
    Array.for_all (fun t -> t.iter + t.iter_credit >= total_iters) threads
  in
  let reset_measurement () =
    Array.iter
      (fun t ->
        let c = t.counters in
        c.instrs <- 0; c.dispatched <- 0; c.fxu <- 0; c.lsu <- 0; c.vsu <- 0;
        c.bru <- 0; c.st <- 0; c.l1 <- 0; c.l2 <- 0; c.l3 <- 0; c.memc <- 0)
      threads;
    Array.fill op_issues 0 (Array.length op_issues) 0;
    Array.fill level_loads 0 4 0;
    switch_events := 0;
    Array.fill transitions 0 (Array.length transitions) 0;
    Cache_sim.reset_stats cache
  in
  (* ---- exact period detection ---------------------------------------- *)
  let has_mem =
    Array.exists
      (fun (p : dprog) ->
        Array.exists
          (fun (d : dinstr) -> d.mem <> 0 && Array.length d.stream > 0)
          p.body)
      progs
  in
  let has_branch =
    Array.exists
      (fun (p : dprog) ->
        Array.exists (fun (d : dinstr) -> Array.length d.pattern > 0) p.body)
      progs
  in
  (* distinct stream/pattern lengths per program: [iter mod m] for each
     is the full phase information [iter] feeds into future behaviour *)
  let iter_mods =
    Array.map
      (fun (p : dprog) ->
        (* accumulate with duplicates and sort+dedup once: body-length
           quadratic [List.mem] scans are measurable at deploy scale *)
        let ms = ref [] in
        Array.iter
          (fun (d : dinstr) ->
            let add n = if n > 1 then ms := n :: !ms in
            add (Array.length d.stream);
            add (Array.length d.pattern))
          p.body;
        Array.of_list (List.sort_uniq compare !ms))
      progs
  in
  let fpbuf = Buffer.create 1024 in
  (* Serialize every piece of machine state that influences future
     evolution, expressed relative to [now] (pipe residuals, completion
     countdowns, seq ages) so that two cycles in the same steady-state
     phase produce the same bytes. The string itself is the hash key:
     for core/pipe/queue state matching means *equality*, not a digest
     collision. The one exception is the cache portion of memory
     programs: the default packed model contributes a rolling 63-bit
     digest (O(1) per boundary instead of O(sets x ways)), so a match
     there is equality up to a ~2^-63 collision — see
     [Cache_sim.add_fingerprint]; [MP_CACHE_MODEL=list] restores full
     serialization. *)
  let fingerprint now =
    Buffer.clear fpbuf;
    let buf = fpbuf in
    (* dispatch round-robin phase *)
    Buffer.add_string buf (string_of_int (now mod nthreads));
    (* pipe residuals are integer ticks relative to [now] (the caller
       rebases first), so they are exact state by construction *)
    Array.iter
      (fun insts ->
        Buffer.add_char buf 'P';
        Array.iter
          (fun r ->
            Buffer.add_string buf (string_of_int r);
            Buffer.add_char buf ',')
          insts)
      pipe_free;
    Array.iteri
      (fun ti t ->
        Buffer.add_char buf 'T';
        Buffer.add_string buf (string_of_int t.pc);
        Buffer.add_char buf ';';
        Buffer.add_string buf (string_of_int (max 0 (t.stall_until - now)));
        Buffer.add_char buf ';';
        Buffer.add_string buf (string_of_int t.last_dispatch_op);
        Buffer.add_char buf ';';
        Array.iter
          (fun m ->
            Buffer.add_string buf (string_of_int (t.iter mod m));
            Buffer.add_char buf ',')
          iter_mods.(ti);
        Buffer.add_char buf ';';
        (* in-flight completions as (age, countdown); completed or
           recycled ring slots are behaviourally retired and omitted *)
        let ring = Array.length t.comp_seq in
        for off = 1 to ring do
          let seqv = t.dispatch_seq - off in
          if seqv >= 0 then begin
            let idx = seqv mod ring in
            if t.comp_seq.(idx) = seqv then begin
              let ct = t.comp_time.(idx) in
              if ct = max_int then begin
                Buffer.add_string buf (string_of_int off);
                Buffer.add_string buf ":u,"
              end
              else if ct > now then begin
                Buffer.add_string buf (string_of_int off);
                Buffer.add_char buf ':';
                Buffer.add_string buf (string_of_int (ct - now));
                Buffer.add_char buf ','
              end
            end
          end
        done;
        Buffer.add_char buf ';';
        (* register map: writers still in flight as relative age; all
           retired writers are interchangeable (value ready), but still
           distinct from "never written" *)
        Array.iter
          (fun w ->
            if w < 0 then Buffer.add_char buf 'N'
            else begin
              let idx = w mod ring in
              if t.comp_seq.(idx) = w && t.comp_time.(idx) > now then begin
                Buffer.add_string buf (string_of_int (t.dispatch_seq - w));
                Buffer.add_char buf ','
              end
              else Buffer.add_char buf 'R'
            end)
          t.reg_last_writer;
        Buffer.add_char buf ';';
        (* queue shape oldest-first: static instr, stream/pattern phase,
           producer ages *)
        for qi = 0 to t.q_len - 1 do
          let e = t.queue.((t.q_head + qi) mod window) in
          if e.live then begin
            Buffer.add_string buf (string_of_int e.di);
            Buffer.add_char buf '.';
            let d = t.prog.body.(e.di) in
            let slen = Array.length d.stream in
            if slen > 1 then begin
              Buffer.add_string buf (string_of_int (e.it mod slen));
              Buffer.add_char buf 's'
            end;
            let plen = Array.length d.pattern in
            if plen > 1 then begin
              Buffer.add_string buf (string_of_int (e.it mod plen));
              Buffer.add_char buf 'p'
            end;
            for k = 0 to e.n_deps - 1 do
              Buffer.add_string buf (string_of_int (t.dispatch_seq - e.deps.(k)));
              Buffer.add_char buf ','
            done;
            Buffer.add_char buf '|'
          end
          else Buffer.add_char buf 'x'
        done;
        Buffer.add_char buf ';';
        if has_branch then
          Array.iter
            (fun p -> Buffer.add_char buf (Char.chr (Char.code '0' + p)))
            t.predictor)
      threads;
    if has_mem then Cache_sim.add_fingerprint cache fpbuf;
    Buffer.contents fpbuf
  in
  let copy_raw (c : raw_counters) =
    { instrs = c.instrs; dispatched = c.dispatched; fxu = c.fxu; lsu = c.lsu;
      vsu = c.vsu; bru = c.bru; st = c.st; l1 = c.l1; l2 = c.l2; l3 = c.l3;
      memc = c.memc }
  in
  let b_table : (string, boundary) Hashtbl.t = Hashtbl.create 64 in
  let period_done = ref (not period_on) in
  let last_b_iter = ref (-1) in
  let skipped = ref 0 in
  let captured_delta = ref None in
  let snapshot now =
    {
      b_cycle = now;
      b_iters = Array.map (fun t -> t.iter) threads;
      b_raw = Array.map (fun t -> copy_raw t.counters) threads;
      b_op_issues = Array.copy op_issues;
      b_level_loads = Array.copy level_loads;
      b_switch = !switch_events;
      b_transitions = Array.copy transitions;
      b_cache = Cache_sim.stats_snapshot cache;
    }
  in
  (* State matched an earlier boundary: every counter delta since that
     boundary is one period's worth, exactly. Credit the remaining whole
     periods (leaving at least one full iteration per thread to run
     densely) and let the tail simulate from the current, unmodified
     machine state. *)
  let apply_period (b : boundary) now =
    period_done := true;
    let d_cycles = now - b.b_cycle in
    if d_cycles > 0 then begin
      let n = ref max_int in
      Array.iteri
        (fun j t ->
          let per = t.iter - b.b_iters.(j) in
          if per <= 0 then n := 0
          else begin
            let rem = total_iters - t.iter - t.iter_credit - 1 in
            let k = if rem <= 0 then 0 else rem / per in
            if k < !n then n := k
          end)
        threads;
      let n = !n in
      if n > 0 then begin
        (* Capture the per-period delta before crediting mutates the
           counters: it is exactly what one period adds to every
           measured quantity, the closed-form step the replay layer
           re-applies. Only a uniform per-thread iteration rate makes
           the step extrapolate across windows (see Replay). *)
        let per0 = threads.(0).iter - b.b_iters.(0) in
        if
          Array.for_all2
            (fun (t : thread_state) bi -> t.iter - bi = per0)
            threads b.b_iters
        then begin
          let i_max =
            Array.fold_left (fun acc t -> max acc t.iter) 0 threads
          in
          captured_delta :=
            Some
              {
                pd_period_iters = per0;
                pd_cycles = d_cycles;
                pd_min_total = i_max + 1;
                pd_counters =
                  Array.mapi
                    (fun j t ->
                      let c = t.counters and s = b.b_raw.(j) in
                      [| c.instrs - s.instrs; c.dispatched - s.dispatched;
                         c.fxu - s.fxu; c.lsu - s.lsu; c.vsu - s.vsu;
                         c.bru - s.bru; c.st - s.st; c.l1 - s.l1;
                         c.l2 - s.l2; c.l3 - s.l3; c.memc - s.memc |])
                    threads;
                pd_op_issues =
                  (let acc = ref [] in
                   for i = Array.length b.b_op_issues - 1 downto 0 do
                     let d = op_issues.(i) - b.b_op_issues.(i) in
                     if d <> 0 then acc := (i, d) :: !acc
                   done;
                   !acc);
                pd_level_loads =
                  Array.init 4 (fun i ->
                      level_loads.(i) - b.b_level_loads.(i));
                pd_switch = !switch_events - b.b_switch;
                pd_transitions =
                  (let acc = ref [] in
                   for key = Array.length transitions - 1 downto 0 do
                     let d = transitions.(key) - b.b_transitions.(key) in
                     if d <> 0 then
                       acc :=
                         (key / trans_stride, key mod trans_stride, d) :: !acc
                   done;
                   !acc);
                pd_prefetches =
                  Cache_sim.prefetches_issued cache
                  - b.b_cache.(Array.length b.b_cache - 1);
              }
        end;
        Array.iteri
          (fun j t ->
            let per = t.iter - b.b_iters.(j) in
            t.iter_credit <- t.iter_credit + (n * per);
            let c = t.counters and s = b.b_raw.(j) in
            c.instrs <- c.instrs + (n * (c.instrs - s.instrs));
            c.dispatched <- c.dispatched + (n * (c.dispatched - s.dispatched));
            c.fxu <- c.fxu + (n * (c.fxu - s.fxu));
            c.lsu <- c.lsu + (n * (c.lsu - s.lsu));
            c.vsu <- c.vsu + (n * (c.vsu - s.vsu));
            c.bru <- c.bru + (n * (c.bru - s.bru));
            c.st <- c.st + (n * (c.st - s.st));
            c.l1 <- c.l1 + (n * (c.l1 - s.l1));
            c.l2 <- c.l2 + (n * (c.l2 - s.l2));
            c.l3 <- c.l3 + (n * (c.l3 - s.l3));
            c.memc <- c.memc + (n * (c.memc - s.memc)))
          threads;
        for i = 0 to Array.length op_issues - 1 do
          op_issues.(i) <-
            op_issues.(i) + (n * (op_issues.(i) - b.b_op_issues.(i)))
        done;
        for i = 0 to 3 do
          level_loads.(i) <-
            level_loads.(i) + (n * (level_loads.(i) - b.b_level_loads.(i)))
        done;
        switch_events := !switch_events + (n * (!switch_events - b.b_switch));
        for i = 0 to Array.length transitions - 1 do
          transitions.(i) <-
            transitions.(i) + (n * (transitions.(i) - b.b_transitions.(i)))
        done;
        Cache_sim.credit cache ~times:n ~since:b.b_cache;
        skipped := !skipped + (n * d_cycles);
        Atomic.incr period_hits_ctr;
        ignore (Atomic.fetch_and_add cycles_skipped_ctr (n * d_cycles))
      end
    end;
    Hashtbl.reset b_table
  in
  let mispredict_penalty = 6 in
  while not (all_done ()) do
    let now = !cycle in
    rebase_pipes now;
    (* period detection: fingerprint at iteration boundaries of thread 0
       during the measured window until a repeat. State is integer
       everywhere, so every bounded kernel's steady state repeats
       bit-for-bit eventually; a kernel only stays dense when its period
       exceeds the measured window (e.g. address streams longer than the
       window), in which case the boundary count — and the snapshots
       held here — is bounded by the window itself. *)
    if !measuring && (not !period_done) && threads.(0).iter > !last_b_iter
    then begin
      last_b_iter := threads.(0).iter;
      let fp = fingerprint now in
      match Hashtbl.find_opt b_table fp with
      | Some b -> apply_period b now
      | None -> Hashtbl.add b_table fp (snapshot now)
    end;
    (* retire completions from the calendar *)
    Array.iter
      (fun t ->
        let slot = now land (calendar_size - 1) in
        t.in_flight <- t.in_flight - t.comp_cal.(slot);
        t.comp_cal.(slot) <- 0)
      threads;
    (* wake entries whose operand-arrival cycle is now *)
    Array.iter
      (fun t ->
        let idx = now land (calendar_size - 1) in
        let s = ref t.rcal.(idx) in
        t.rcal.(idx) <- -1;
        while !s >= 0 do
          let nx = t.rcal_next.(!s) in
          t.rcal_next.(!s) <- -1;
          if t.ready_at.(!s) > now then
            (* calendar aliasing guard; unreachable while latencies stay
               below the calendar span, but cheap to keep honest *)
            rcal_park t !s t.ready_at.(!s)
          else ready_insert t !s;
          s := nx
        done)
      threads;
    (* dispatch: shared width, round-robin priority *)
    let progressed = ref false in
    let budget = ref uarch.Uarch_def.dispatch_width in
    for k = 0 to nthreads - 1 do
      let t = threads.((now + k) mod nthreads) in
      let continue_ = ref true in
      while
        !continue_ && !budget > 0
        && t.stall_until <= now && t.in_flight < window && t.q_len < window
      do
        let body_len = Array.length t.prog.body in
        let sidx = (t.q_head + t.q_len) mod window in
        let slot = t.queue.(sidx) in
        slot.di <- t.pc;
        slot.it <- t.iter;
        slot.seq <- t.dispatch_seq;
        slot.live <- true;
        (* capture producers now: each source depends on the youngest
           writer dispatched so far (update-form bases therefore read
           the value preceding their own write, as on hardware) *)
        let body_i = t.prog.body.(t.pc) in
        slot.n_deps <- 0;
        let srcs = body_i.srcs in
        for si = 0 to Array.length srcs - 1 do
          let producer = t.reg_last_writer.(srcs.(si)) in
          if producer >= 0 && slot.n_deps < Array.length slot.deps then begin
            slot.deps.(slot.n_deps) <- producer;
            slot.n_deps <- slot.n_deps + 1
          end
        done;
        let ring = Array.length t.comp_seq in
        let dsts = body_i.dests in
        for d = 0 to Array.length dsts - 1 do
          t.reg_last_writer.(dsts.(d)) <- t.dispatch_seq
        done;
        t.comp_seq.(t.dispatch_seq mod ring) <- t.dispatch_seq;
        t.comp_time.(t.dispatch_seq mod ring) <- max_int;
        t.dispatch_seq <- t.dispatch_seq + 1;
        t.q_len <- t.q_len + 1;
        t.in_flight <- t.in_flight + 1;
        (* classify each captured producer: not yet issued -> chain a
           waiter on its comp-ring slot; issued but incomplete -> its
           completion bounds our wakeup; completed or recycled ->
           satisfied. An entry with nothing to wait for goes straight
           to the ready list (it is the youngest seq, so at the tail),
           visible to this same cycle's issue scan exactly like the
           dense scan saw it. *)
        t.n_wait.(sidx) <- 0;
        t.ready_at.(sidx) <- 0;
        for k = 0 to slot.n_deps - 1 do
          let d = slot.deps.(k) in
          let idx = d mod ring in
          if t.comp_seq.(idx) = d then begin
            let ct = t.comp_time.(idx) in
            if ct = max_int then begin
              let node = (sidx * 4) + k in
              t.wlink.(node) <- t.whead.(idx);
              t.whead.(idx) <- node;
              t.n_wait.(sidx) <- t.n_wait.(sidx) + 1
            end
            else if ct > now && ct > t.ready_at.(sidx) then
              t.ready_at.(sidx) <- ct
          end
        done;
        if t.n_wait.(sidx) = 0 then begin
          if t.ready_at.(sidx) <= now then ready_insert t sidx
          else rcal_park t sidx t.ready_at.(sidx)
        end;
        progressed := true;
        let op_id = t.prog.body.(t.pc).op_id in
        if !measuring then begin
          t.counters.dispatched <- t.counters.dispatched + 1;
          (* opcode transition on the shared dispatch bus: the order-
             dependent switching activity the ground truth charges for *)
          if op_id <> t.last_dispatch_op && t.last_dispatch_op >= 0 then begin
            incr switch_events;
            let key = (t.last_dispatch_op * trans_stride) + op_id in
            transitions.(key) <- transitions.(key) + 1
          end
        end;
        t.last_dispatch_op <- op_id;
        decr budget;
        t.pc <- t.pc + 1;
        if t.pc = body_len then begin
          t.pc <- 0;
          t.iter <- t.iter + 1;
          if t.iter + t.iter_credit >= total_iters then continue_ := false
        end
      done
    done;
    (* issue: walk each thread's ready list oldest-first, rotating the
       thread priority each cycle (SMT issue arbitration). The list
       holds exactly the live entries whose operands are available, in
       dispatch order — the same candidates the dense scan found, minus
       the per-entry dependency rescans. Nothing becomes ready
       mid-cycle (completions are always at least one cycle out), so
       the walk sees a stable frontier plus same-cycle dispatches
       appended at the tail, exactly as the dense scan did. *)
    for tk = 0 to nthreads - 1 do
      let t = threads.((now + tk) mod nthreads) in
      begin
        let c = t.counters in
        let ring = Array.length t.comp_seq in
        let cursor = ref t.rhead in
        while !cursor >= 0 do
          let s = !cursor in
          let next = t.rnext.(s) in
          let e = t.queue.(s) in
          let di = t.prog.body.(e.di) in
          begin
            (* pipe availability *)
            let fixed = di.fixed in
            let nfixed = Array.length fixed in
            let ok = ref true in
            for f = 0 to nfixed - 1 do
              let kind, _ = fixed.(f) in
              let sl = find_free kind in
              if sl < 0 then ok := false else fixed_slots.(f) <- sl
            done;
            let alt_choice = ref (-1) in
            let alt_slot = ref (-1) in
            if !ok && Array.length di.alt > 0 then begin
              let found = ref false in
              Array.iter
                (fun (kind, _) ->
                  if not !found then begin
                    let sl = find_free kind in
                    if sl >= 0 then begin
                      found := true;
                      alt_choice := kind;
                      alt_slot := sl
                    end
                  end)
                di.alt;
              if not !found then ok := false
            end;
            if !ok then begin
              (* reserve pipes, count unit events *)
              let count_pipe kind =
                if !measuring then
                  match kind with
                  | 0 -> c.fxu <- c.fxu + 1
                  | 1 -> c.lsu <- c.lsu + 1
                  | 2 -> c.vsu <- c.vsu + 1
                  | 3 -> c.bru <- c.bru + 1
                  | 4 -> c.st <- c.st + 1
                  | _ -> c.fxu <- c.fxu + di.upd_ops
              in
              let reserve kind slot occ =
                let insts = pipe_free.(kind) in
                (* residuals are clamped >= 0 at rebase, so reserving
                   from the sub-cycle free tick is a plain addition *)
                insts.(slot) <- insts.(slot) + occ;
                recompute_pipe_min kind;
                count_pipe kind
              in
              for f = 0 to nfixed - 1 do
                let kind, occ = fixed.(f) in
                reserve kind fixed_slots.(f) occ
              done;
              if !alt_choice >= 0 then begin
                let occ =
                  let rec find i =
                    let k, o = di.alt.(i) in
                    if k = !alt_choice then o else find (i + 1)
                  in
                  find 0
                in
                reserve !alt_choice !alt_slot occ
              end;
              (* latency *)
              let lat =
                if di.mem = 1 && Array.length di.stream > 0 then begin
                  let addr = di.stream.(e.it mod Array.length di.stream) in
                  let src = Cache_sim.access cache ~addr ~store:false in
                  let lid = level_id src in
                  if !measuring then begin
                    (match lid with
                     | 0 -> c.l1 <- c.l1 + 1
                     | 1 -> c.l2 <- c.l2 + 1
                     | 2 -> c.l3 <- c.l3 + 1
                     | _ -> c.memc <- c.memc + 1);
                    level_loads.(lid) <- level_loads.(lid) + 1
                  end;
                  latencies.(lid)
                end
                else if di.mem = 2 && Array.length di.stream > 0 then begin
                  let addr = di.stream.(e.it mod Array.length di.stream) in
                  ignore (Cache_sim.access cache ~addr ~store:true);
                  di.latency
                end
                else di.latency
              in
              (* conditional branch prediction *)
              if Array.length di.pattern > 0 then begin
                let outcome = di.pattern.(e.it mod Array.length di.pattern) in
                let p = t.predictor.(e.di) in
                let predicted = p >= 2 in
                t.predictor.(e.di) <-
                  (if outcome then min 3 (p + 1) else max 0 (p - 1));
                if predicted <> outcome then
                  t.stall_until <- max t.stall_until (now + mispredict_penalty)
              end;
              let completion = now + max 1 lat in
              let idx = e.seq mod ring in
              if t.comp_seq.(idx) = e.seq then begin
                t.comp_time.(idx) <- completion;
                (* wake consumers that were waiting on this producer's
                   issue: its completion time is now known *)
                let w = ref t.whead.(idx) in
                t.whead.(idx) <- -1;
                while !w >= 0 do
                  let nw = t.wlink.(!w) in
                  t.wlink.(!w) <- -1;
                  let ws = !w / 4 in
                  t.n_wait.(ws) <- t.n_wait.(ws) - 1;
                  if completion > t.ready_at.(ws) then
                    t.ready_at.(ws) <- completion;
                  if t.n_wait.(ws) = 0 then rcal_park t ws t.ready_at.(ws);
                  w := nw
                done
              end;
              t.comp_cal.(completion land (calendar_size - 1)) <-
                t.comp_cal.(completion land (calendar_size - 1)) + 1;
              if !measuring then begin
                c.instrs <- c.instrs + 1;
                op_issues.(di.op_id) <- op_issues.(di.op_id) + 1
              end;
              progressed := true;
              ready_remove t s;
              e.live <- false
            end
          end;
          cursor := next
        done;
        (* compact the head of the ring *)
        while t.q_len > 0 && not t.queue.(t.q_head).live do
          t.q_head <- (t.q_head + 1) mod window;
          t.q_len <- t.q_len - 1
        done
      end
    done;
    (* start the measured window once every thread passed warmup *)
    if (not !measuring) && Array.for_all (fun t -> t.iter >= warmup) threads
    then begin
      measuring := true;
      start_cycle := now + 1;
      reset_measurement ()
    end;
    incr cycle;
    (* Fast-forward across dead cycles. Tier A (blocked): every thread
       is dispatch-blocked and has an empty ready list, so no cycle can
       do anything until a completion retires, a wakeup fires or a
       stall expires — pipes are irrelevant because nothing is ready to
       issue. This fires even on cycles that did progress, which is
       where latency-bound kernels spend most of their time. Tier B
       (idle): nothing progressed at all; the next event may also be a
       pipe instance freeing up. Skipped cycles have empty completion
       and wakeup slots, and the blocking conditions persist until one
       of those events, so skipping is exact. *)
    if not (all_done ()) then begin
      let blocked =
        Array.for_all
          (fun t ->
            t.rhead < 0
            && (t.stall_until > !cycle || t.in_flight >= window
                || t.q_len >= window))
          threads
      in
      if blocked || not !progressed then begin
        let horizon = ref (!cycle + calendar_size - 2) in
        if not blocked then
          Array.iter
            (fun insts ->
              Array.iter
                (fun r ->
                  (* an instance is free as soon as its residual drops
                     below one full cycle ([find_free] tests < tick), so
                     it frees after floor(r/tick) more cycles — ceiling
                     here would overshoot fractional residuals by one
                     cycle and skip cycles where issue was possible *)
                  let c = !pipe_now + (r / tick) in
                  if c >= !cycle && c < !horizon then horizon := c)
                insts)
            pipe_free;
        Array.iter
          (fun t ->
            if t.stall_until >= !cycle && t.stall_until < !horizon then
              horizon := t.stall_until)
          threads;
        let inflight_total =
          Array.fold_left (fun acc t -> acc + t.in_flight) 0 threads
        in
        if inflight_total = 0 && !horizon > !cycle + calendar_size - 4 then
          failwith "Core_sim: deadlock (no in-flight work and no events)";
        let slot_empty c =
          let idx = c land (calendar_size - 1) in
          Array.for_all
            (fun t -> t.comp_cal.(idx) = 0 && t.rcal.(idx) < 0)
            threads
        in
        while !cycle < !horizon && slot_empty !cycle do
          incr cycle
        done
      end
    end
  done;
  let measured_cycles = max 1 (!cycle - !start_cycle + !skipped) in
  let counters_of t =
    let c = t.counters in
    {
      Measurement.cycles = float_of_int measured_cycles;
      instrs = float_of_int c.instrs;
      dispatched = float_of_int c.dispatched;
      fxu = float_of_int c.fxu;
      lsu = float_of_int c.lsu;
      vsu = float_of_int c.vsu;
      bru = float_of_int c.bru;
      st = float_of_int c.st;
      l1 = float_of_int c.l1;
      l2 = float_of_int c.l2;
      l3 = float_of_int c.l3;
      mem = float_of_int c.memc;
    }
  in
  let daf =
    Array.fold_left (fun acc (p : dprog) -> acc +. p.daf) 0.0 progs
    /. float_of_int nthreads
  in
  let activity = {
    measured_cycles;
    threads = Array.map counters_of threads;
    op_issues;
    level_loads;
    switch_events = !switch_events;
    transitions =
      (* ascending (prev, next) id order: deterministic regardless of
         the matrix stride; Power_sim re-sorts by opcode *name* before
         summing so the energy is also independent of how this
         machine's intern table grew *)
      (let acc = ref [] in
       for key = Array.length transitions - 1 downto 0 do
         let count = transitions.(key) in
         if count > 0 then
           acc := (key / trans_stride, key mod trans_stride, count) :: !acc
       done;
       !acc);
    daf;
    prefetches = Cache_sim.prefetches_issued cache;
  }
  in
  (activity, !captured_delta)

let run ~uarch ~opmap ?mem_latency ?warmup ?measure ?period progs =
  fst (run_ex ~uarch ~opmap ?mem_latency ?warmup ?measure ?period progs)
