lib/isa/disasm.ml: Encoding Instruction Isa_def List Printf
