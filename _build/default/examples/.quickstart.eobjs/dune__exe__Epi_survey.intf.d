examples/epi_survey.mli:
