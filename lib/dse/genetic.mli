(** Genetic-algorithm driver (the search previous stressmark work
    relied on exclusively; here one option among several). Maximises
    the fitness returned by [eval]. *)

type 'p operators = {
  init : Mp_util.Rng.t -> 'p;
  mutate : Mp_util.Rng.t -> 'p -> 'p;
  crossover : Mp_util.Rng.t -> 'p -> 'p -> 'p;
}

val search :
  rng:Mp_util.Rng.t ->
  ops:'p operators ->
  eval:('p -> float) ->
  ?eval_batch:('p list -> float list) ->
  ?point_key:('p -> string) ->
  ?population:int ->
  ?generations:int ->
  ?elite:int ->
  ?mutation_rate:float ->
  ?seeds:'p list ->
  unit ->
  'p Driver.result
(** Defaults: population 24, generations 12, elite 4, mutation rate
    0.3. Selection is 2-way tournament; elites carry over unchanged
    (and are never re-evaluated). [seeds] are placed in the initial
    population (truncated to the population size); the rest comes from
    [ops.init]. Deterministic given [rng]: candidate generation
    consumes the RNG before any scoring, so supplying [eval_batch]
    (the initial population and each generation's offspring are then
    scored as single batches — see {!Driver.eval_list}) or [point_key]
    (duplicate candidates within a batch are scored once and the score
    scattered back — sound when fitness is a pure function of the key)
    cannot change the search trajectory or the result. NaN fitness
    sorts strictly last. *)
