(* Tests for the analytical set-associative cache model: the static
   hit/miss guarantees of paper Section 2.1.3. *)

open Mp_uarch

let uarch () = Power7.define ()

let mk ?partition distribution =
  Mp_mem.Set_assoc_model.create ~uarch:(uarch ()) ?partition
    ~distribution ()

let all_l1 = [ (Cache_geometry.L1, 1.0) ]

let geom level = Uarch_def.cache (uarch ()) level

(* ----- construction -------------------------------------------------------- *)

let test_distribution_normalised () =
  let plan = mk [ (Cache_geometry.L1, 2.0); (Cache_geometry.L2, 2.0) ] in
  let d = Mp_mem.Set_assoc_model.distribution plan in
  Alcotest.(check (float 1e-9)) "L1" 0.5 (List.assoc Cache_geometry.L1 d);
  Alcotest.(check (float 1e-9)) "L2" 0.5 (List.assoc Cache_geometry.L2 d);
  Alcotest.(check (float 1e-9)) "MEM" 0.0 (List.assoc Cache_geometry.MEM d)

let test_create_validation () =
  let bad f = try ignore (f ()); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "negative weight" true
    (bad (fun () -> mk [ (Cache_geometry.L1, -1.0) ]));
  Alcotest.(check bool) "zero distribution" true
    (bad (fun () -> mk [ (Cache_geometry.L1, 0.0) ]));
  Alcotest.(check bool) "bad partition" true
    (bad (fun () -> mk ~partition:(2, 2) all_l1));
  Alcotest.(check bool) "partition too fine" true
    (bad (fun () -> mk ~partition:(0, 16) all_l1))

(* ----- pool invariants ------------------------------------------------------ *)

let test_l1_pool_resident () =
  let plan = mk all_l1 in
  let pool = Mp_mem.Set_assoc_model.pool_lines plan Cache_geometry.L1 in
  let l1 = geom Cache_geometry.L1 in
  Alcotest.(check bool) "within associativity" true
    (Array.length pool <= l1.Cache_geometry.associativity);
  let set = Cache_geometry.set_index l1 pool.(0) in
  Array.iter
    (fun a ->
      Alcotest.(check int) "same L1 set" set (Cache_geometry.set_index l1 a))
    pool;
  Alcotest.(check int) "distinct lines" (Array.length pool)
    (List.length (List.sort_uniq compare (Array.to_list pool)))

let test_l2_pool_thrashes_l1 () =
  let plan = mk [ (Cache_geometry.L2, 1.0) ] in
  let pool = Mp_mem.Set_assoc_model.pool_lines plan Cache_geometry.L2 in
  let l1 = geom Cache_geometry.L1 and l2 = geom Cache_geometry.L2 in
  Alcotest.(check bool) "more lines than L1 ways" true
    (Array.length pool > l1.Cache_geometry.associativity);
  let l1set = Cache_geometry.set_index l1 pool.(0) in
  Array.iter
    (fun a -> Alcotest.(check int) "one L1 set" l1set (Cache_geometry.set_index l1 a))
    pool;
  (* at most associativity lines per L2 set: they stay resident *)
  let per_set = Hashtbl.create 16 in
  Array.iter
    (fun a ->
      let s = Cache_geometry.set_index l2 a in
      Hashtbl.replace per_set s (1 + Option.value ~default:0 (Hashtbl.find_opt per_set s)))
    pool;
  Hashtbl.iter
    (fun _ n ->
      Alcotest.(check bool) "L2 resident" true (n <= l2.Cache_geometry.associativity))
    per_set

let test_l3_pool_thrashes_l2 () =
  let plan = mk [ (Cache_geometry.L3, 1.0) ] in
  let pool = Mp_mem.Set_assoc_model.pool_lines plan Cache_geometry.L3 in
  let l2 = geom Cache_geometry.L2 and l3 = geom Cache_geometry.L3 in
  Alcotest.(check bool) "more lines than L2 ways" true
    (Array.length pool > l2.Cache_geometry.associativity);
  let l2set = Cache_geometry.set_index l2 pool.(0) in
  Array.iter
    (fun a -> Alcotest.(check int) "one L2 set" l2set (Cache_geometry.set_index l2 a))
    pool;
  let per_set = Hashtbl.create 32 in
  Array.iter
    (fun a ->
      let s = Cache_geometry.set_index l3 a in
      Hashtbl.replace per_set s (1 + Option.value ~default:0 (Hashtbl.find_opt per_set s)))
    pool;
  Hashtbl.iter
    (fun _ n ->
      Alcotest.(check bool) "L3 resident" true (n <= l3.Cache_geometry.associativity))
    per_set

let test_mem_pool_thrashes_l3 () =
  let plan = mk [ (Cache_geometry.MEM, 1.0) ] in
  let pool = Mp_mem.Set_assoc_model.pool_lines plan Cache_geometry.MEM in
  let l3 = geom Cache_geometry.L3 in
  Alcotest.(check bool) "more lines than L3 ways" true
    (Array.length pool > l3.Cache_geometry.associativity);
  let set = Cache_geometry.set_index l3 pool.(0) in
  Array.iter
    (fun a -> Alcotest.(check int) "one L3 set" set (Cache_geometry.set_index l3 a))
    pool

let test_pools_disjoint_l1_sets () =
  let plan =
    mk [ (Cache_geometry.L1, 0.25); (Cache_geometry.L2, 0.25);
         (Cache_geometry.L3, 0.25); (Cache_geometry.MEM, 0.25) ]
  in
  let l1 = geom Cache_geometry.L1 in
  let sets_of level =
    Array.to_list (Mp_mem.Set_assoc_model.pool_lines plan level)
    |> List.map (Cache_geometry.set_index l1)
    |> List.sort_uniq compare
  in
  let all = List.concat_map sets_of Cache_geometry.all_levels in
  Alcotest.(check int) "no L1-set shared between levels"
    (List.length all)
    (List.length (List.sort_uniq compare all))

let test_partition_disjoint_between_threads () =
  let l1 = geom Cache_geometry.L1 in
  let sets_of_thread t =
    let plan = mk ~partition:(t, 4)
        [ (Cache_geometry.L1, 0.5); (Cache_geometry.L2, 0.5) ] in
    List.concat_map
      (fun lvl ->
        Array.to_list (Mp_mem.Set_assoc_model.pool_lines plan lvl)
        |> List.map (Cache_geometry.set_index l1))
      [ Cache_geometry.L1; Cache_geometry.L2 ]
    |> List.sort_uniq compare
  in
  let s0 = sets_of_thread 0 and s1 = sets_of_thread 1 in
  List.iter
    (fun s ->
      Alcotest.(check bool) "thread sets disjoint" false (List.mem s s1))
    s0

(* ----- streams --------------------------------------------------------------- *)

let test_sample_level_distribution () =
  let plan = mk [ (Cache_geometry.L1, 0.7); (Cache_geometry.L2, 0.3) ] in
  let rng = Mp_util.Rng.create 5 in
  let n = 20000 in
  let counts = Hashtbl.create 4 in
  for _ = 1 to n do
    let l = Mp_mem.Set_assoc_model.sample_level plan rng in
    Hashtbl.replace counts l (1 + Option.value ~default:0 (Hashtbl.find_opt counts l))
  done;
  let frac l = float_of_int (Option.value ~default:0 (Hashtbl.find_opt counts l)) /. float_of_int n in
  Alcotest.(check (float 0.02)) "L1 frac" 0.7 (frac Cache_geometry.L1);
  Alcotest.(check (float 0.02)) "L2 frac" 0.3 (frac Cache_geometry.L2)

let test_stream_addresses_in_pool () =
  let plan = mk [ (Cache_geometry.L2, 1.0) ] in
  let rng = Mp_util.Rng.create 6 in
  let s = Mp_mem.Set_assoc_model.stream plan rng Cache_geometry.L2 in
  let pool = Array.to_list (Mp_mem.Set_assoc_model.pool_lines plan Cache_geometry.L2) in
  Array.iter
    (fun a -> Alcotest.(check bool) "address from pool" true (List.mem a pool))
    s.Mp_mem.Set_assoc_model.addresses

let test_coordinated_streams_global_cycle () =
  (* interleaving the per-instruction streams in body order must walk
     the pool cyclically: between two touches of the same line, every
     other pool line is touched exactly once *)
  let plan = mk [ (Cache_geometry.L2, 1.0) ] in
  let rng = Mp_util.Rng.create 7 in
  let k = 3 in
  let targets = Array.make k Cache_geometry.L2 in
  let streams = Mp_mem.Set_assoc_model.coordinated_streams plan rng ~targets in
  let pool = Mp_mem.Set_assoc_model.pool_lines plan Cache_geometry.L2 in
  let p = Array.length pool in
  (* rebuild the runtime interleaving for two loop iterations *)
  let seq = ref [] in
  for iter = 0 to 1 do
    Array.iter
      (fun (s : Mp_mem.Set_assoc_model.stream) ->
        let a = s.Mp_mem.Set_assoc_model.addresses in
        seq := a.(iter mod Array.length a) :: !seq)
      streams
  done;
  let seq = Array.of_list (List.rev !seq) in
  (* distance between consecutive touches of any line must be >= p
     within the window we generated *)
  let last = Hashtbl.create 16 in
  Array.iteri
    (fun i a ->
      (match Hashtbl.find_opt last a with
       | Some j ->
         Alcotest.(check bool) "re-access distance = pool size" true (i - j >= p)
       | None -> ());
      Hashtbl.replace last a i)
    seq

let test_coordinated_apportionment () =
  let plan = mk [ (Cache_geometry.L1, 0.5); (Cache_geometry.L3, 0.5) ] in
  let rng = Mp_util.Rng.create 8 in
  let targets =
    Array.init 10 (fun i -> if i < 5 then Cache_geometry.L1 else Cache_geometry.L3)
  in
  let streams = Mp_mem.Set_assoc_model.coordinated_streams plan rng ~targets in
  Array.iteri
    (fun i (s : Mp_mem.Set_assoc_model.stream) ->
      Alcotest.(check bool) "target preserved" true
        (s.Mp_mem.Set_assoc_model.target = targets.(i)))
    streams

let test_streams_for_loop_counts () =
  let plan = mk [ (Cache_geometry.L1, 0.75); (Cache_geometry.L2, 0.25) ] in
  let rng = Mp_util.Rng.create 9 in
  let streams = Mp_mem.Set_assoc_model.streams_for_loop plan rng ~n:16 in
  let count l =
    Array.fold_left
      (fun acc (s : Mp_mem.Set_assoc_model.stream) ->
        if s.Mp_mem.Set_assoc_model.target = l then acc + 1 else acc)
      0 streams
  in
  Alcotest.(check int) "12 L1" 12 (count Cache_geometry.L1);
  Alcotest.(check int) "4 L2" 4 (count Cache_geometry.L2)

let test_footprint () =
  let plan = mk all_l1 in
  let fp = Mp_mem.Set_assoc_model.footprint_bytes plan in
  Alcotest.(check bool) "positive and small" true (fp > 0 && fp < 64 * 1024)

(* ----- end-to-end with the cache simulator ---------------------------------- *)

let last_targets = ref [||]

let simulate_distribution ?(return_targets = false) distribution =
  ignore return_targets;
  let u = uarch () in
  let plan = Mp_mem.Set_assoc_model.create ~uarch:u ~distribution () in
  let rng = Mp_util.Rng.create 11 in
  let n = 24 in
  let targets =
    Array.init n (fun _ -> Mp_mem.Set_assoc_model.sample_level plan rng)
  in
  last_targets := Array.copy targets;
  let streams = Mp_mem.Set_assoc_model.coordinated_streams plan rng ~targets in
  let cache = Mp_sim.Cache_sim.create u in
  (* warm up two full rotations, then measure *)
  let rounds = 40 in
  for _ = 1 to 8 do
    Array.iter
      (fun (s : Mp_mem.Set_assoc_model.stream) ->
        let a = s.Mp_mem.Set_assoc_model.addresses in
        ignore (Mp_sim.Cache_sim.access cache ~addr:a.(0) ~store:false))
      streams
  done;
  Mp_sim.Cache_sim.reset_stats cache;
  for r = 0 to rounds - 1 do
    Array.iter
      (fun (s : Mp_mem.Set_assoc_model.stream) ->
        let a = s.Mp_mem.Set_assoc_model.addresses in
        ignore (Mp_sim.Cache_sim.access cache ~addr:a.(r mod Array.length a) ~store:false))
      streams
  done;
  let total = float_of_int (rounds * n) in
  List.map
    (fun l -> (l, float_of_int (Mp_sim.Cache_sim.hits cache l) /. total))
    Cache_geometry.all_levels

let test_guarantee_under_simulation () =
  (* the headline property: the *sampled* per-instruction targets and
     the observed hit distribution agree on a real LRU hierarchy — the
     sampling itself quantises the ideal weights, so the comparison is
     against the realised targets *)
  let measured =
    simulate_distribution
      [ (Cache_geometry.L1, 0.4); (Cache_geometry.L2, 0.3);
        (Cache_geometry.L3, 0.2); (Cache_geometry.MEM, 0.1) ]
  in
  let targets = !last_targets in
  let n = float_of_int (Array.length targets) in
  let sampled l =
    float_of_int
      (Array.fold_left (fun acc x -> if x = l then acc + 1 else acc) 0 targets)
    /. n
  in
  List.iter
    (fun l ->
      Alcotest.(check (float 0.05))
        (Cache_geometry.level_to_string l ^ " share")
        (sampled l)
        (List.assoc l measured))
    Cache_geometry.all_levels;
  let total =
    List.fold_left (fun acc (_, v) -> acc +. v) 0.0 measured
  in
  Alcotest.(check (float 1e-9)) "shares sum to 1" 1.0 total

let test_pure_levels_exact () =
  (* the hardware prefetcher can convert a stray access or two into L1
     hits despite the randomised order; the guarantee is near-exact *)
  List.iter
    (fun lvl ->
      let measured = simulate_distribution [ (lvl, 1.0) ] in
      Alcotest.(check bool)
        ("pure " ^ Cache_geometry.level_to_string lvl)
        true
        (List.assoc lvl measured >= 0.97))
    Cache_geometry.all_levels

let () =
  Alcotest.run "mp_mem"
    [
      ("construction",
       [ Alcotest.test_case "normalised" `Quick test_distribution_normalised;
         Alcotest.test_case "validation" `Quick test_create_validation ]);
      ("pools",
       [ Alcotest.test_case "L1 resident" `Quick test_l1_pool_resident;
         Alcotest.test_case "L2 thrashes L1" `Quick test_l2_pool_thrashes_l1;
         Alcotest.test_case "L3 thrashes L2" `Quick test_l3_pool_thrashes_l2;
         Alcotest.test_case "MEM thrashes L3" `Quick test_mem_pool_thrashes_l3;
         Alcotest.test_case "levels disjoint" `Quick test_pools_disjoint_l1_sets;
         Alcotest.test_case "threads disjoint" `Quick test_partition_disjoint_between_threads ]);
      ("streams",
       [ Alcotest.test_case "sample distribution" `Quick test_sample_level_distribution;
         Alcotest.test_case "addresses from pool" `Quick test_stream_addresses_in_pool;
         Alcotest.test_case "global cycle" `Quick test_coordinated_streams_global_cycle;
         Alcotest.test_case "apportionment" `Quick test_coordinated_apportionment;
         Alcotest.test_case "loop counts" `Quick test_streams_for_loop_counts;
         Alcotest.test_case "footprint" `Quick test_footprint ]);
      ("simulation",
       [ Alcotest.test_case "mixed guarantee" `Quick test_guarantee_under_simulation;
         Alcotest.test_case "pure levels" `Quick test_pure_levels_exact ]);
    ]
