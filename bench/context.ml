(* Shared experimental context for the benchmark harness: the machine,
   the training suite, the measurement datasets and the trained models.
   Everything is built lazily and exactly once, mirroring the paper's
   measurement campaign (Section 3). *)

open Microprobe

type t = {
  arch : Arch.t;
  machine : Machine.t;
  pool : Mp_util.Parallel.t;
  quick : bool;
  mutable families : Workloads.Training.family list option;
  mutable spec : (Uarch_def.config * Measurement.t list) list option;
  mutable train_smt1 : Measurement.t list option;
  mutable train_smt_on : Measurement.t list option;
  mutable random_multi : Measurement.t list option;
  mutable micro_multi : Measurement.t list option;
  mutable bu : Power_model.Bottom_up.t option;
  mutable props : Epi.Bootstrap.props list option;
  mutable metrics : (string * float) list;  (* exported to BENCH_sim.json *)
  mutable membench_stride : (int * float * float * float array) list;
      (* membench's stride sweep — (stride_lines, packed and list
         Maccess/s, per-level source fractions) — picked up by
         exp_parallel's BENCH_scaling.json writer when membench ran
         earlier in the same invocation *)
}

let create ~quick =
  let arch = get_architecture "POWER7" in
  {
    arch;
    machine = Machine.create arch.Arch.uarch;
    pool = Mp_util.Parallel.global ();
    quick;
    families = None;
    spec = None;
    train_smt1 = None;
    train_smt_on = None;
    random_multi = None;
    micro_multi = None;
    bu = None;
    props = None;
    metrics = [];
    membench_stride = [];
  }

let record_metric t name v =
  t.metrics <- (name, v) :: List.remove_assoc name t.metrics

let metrics t = List.rev t.metrics

let config t ~cores ~smt = Uarch_def.config ~cores ~smt t.arch.Arch.uarch

let all_configs t = Uarch_def.all_configs t.arch.Arch.uarch

let log fmt = Printf.printf (fmt ^^ "\n%!")

let section title =
  Printf.printf "\n%s\n%s\n\n%!" title (String.make (String.length title) '=')

let timed name f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  log "[%s: %.1fs]" name (Unix.gettimeofday () -. t0);
  r

(* ----- datasets ---------------------------------------------------------- *)

let families t =
  match t.families with
  | Some f -> f
  | None ->
    let f =
      timed "generate Table-2 training suite" (fun () ->
          Workloads.Training.table2 ~machine:t.machine ~arch:t.arch
            ~quick:t.quick ())
    in
    t.families <- Some f;
    f

let family_programs ?(skip = 1) ?only_random ?(exclude_random = false) t =
  let fams = families t in
  let fams =
    match only_random with
    | Some true ->
      List.filter
        (fun (f : Workloads.Training.family) ->
          f.Workloads.Training.family_name = "Random")
        fams
    | _ ->
      if exclude_random then
        List.filter
          (fun (f : Workloads.Training.family) ->
            f.Workloads.Training.family_name <> "Random")
          fams
      else fams
  in
  Workloads.Training.all_entries fams
  |> List.filteri (fun i _ -> i mod skip = 0)
  |> List.map (fun (e : Workloads.Training.entry) -> e.Workloads.Training.program)

let run_programs t config programs =
  Machine.run_batch ~pool:t.pool t.machine
    (List.map (fun p -> (config, p)) programs)

(* fan one program list across several configurations as a single batch *)
let run_grid t configs programs =
  Machine.run_batch ~pool:t.pool t.machine
    (List.concat_map (fun c -> List.map (fun p -> (c, p)) programs) configs)

let train_smt1 t =
  match t.train_smt1 with
  | Some d -> d
  | None ->
    let d =
      timed "measure suite @ 1c-smt1" (fun () ->
          run_programs t (config t ~cores:1 ~smt:1) (family_programs t))
    in
    t.train_smt1 <- Some d;
    d

let train_smt_on t =
  match t.train_smt_on with
  | Some d -> d
  | None ->
    let d =
      timed "measure suite @ 1c-smt{2,4}" (fun () ->
          run_grid t
            [ config t ~cores:1 ~smt:2; config t ~cores:1 ~smt:4 ]
            (family_programs ~skip:2 t))
    in
    t.train_smt_on <- Some d;
    d

let random_multi t =
  match t.random_multi with
  | Some d -> d
  | None ->
    let programs = family_programs ~skip:3 ~only_random:true t in
    let d =
      timed "measure random set on every configuration" (fun () ->
          run_grid t (all_configs t) programs)
    in
    t.random_multi <- Some d;
    d

let micro_multi t =
  match t.micro_multi with
  | Some d -> d
  | None ->
    let programs = family_programs ~skip:3 ~exclude_random:true t in
    let configs =
      List.filter
        (fun (c : Uarch_def.config) ->
          List.mem c.Uarch_def.cores [ 1; 2; 4; 6; 8 ])
        (all_configs t)
    in
    let d =
      timed "measure micro-architecture set across configurations" (fun () ->
          run_grid t configs programs)
    in
    t.micro_multi <- Some d;
    d

let spec t =
  match t.spec with
  | Some d -> d
  | None ->
    let suite = Workloads.Spec.suite ~arch:t.arch () in
    let configs =
      if t.quick then
        [ config t ~cores:1 ~smt:1; config t ~cores:4 ~smt:2;
          config t ~cores:8 ~smt:4 ]
      else all_configs t
    in
    let d =
      timed "measure SPEC CPU2006 surrogate on every configuration" (fun () ->
          List.map
            (fun c ->
              ( c,
                List.map
                  (fun b ->
                    Workloads.Spec.run ~machine:t.machine ~config:c
                      ~pool:t.pool b)
                  suite ))
            configs)
    in
    t.spec <- Some d;
    d

let spec_all t = List.concat_map snd (spec t)

let spec_at t c = List.assoc c (spec t)

let bottom_up t =
  match t.bu with
  | Some m -> m
  | None ->
    let m =
      timed "train the bottom-up model" (fun () ->
          Power_model.Bottom_up.train
            ~baseline:(Machine.baseline_reading t.machine)
            ~smt1:(train_smt1 t) ~smt_on:(train_smt_on t)
            ~multi:(random_multi t) ())
    in
    t.bu <- Some m;
    m

let bootstrap_props t =
  match t.props with
  | Some p -> p
  | None ->
    let p =
      timed "bootstrap the ISA (latency/throughput/units/EPI)" (fun () ->
          Epi.Bootstrap.run ~machine:t.machine ~arch:t.arch
            ~size:(if t.quick then 512 else 1024)
            ~pool:t.pool ())
    in
    t.props <- Some p;
    p
