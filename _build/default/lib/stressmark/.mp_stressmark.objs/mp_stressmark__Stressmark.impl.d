lib/stressmark/stressmark.ml: Arch Array Builder Cache_geometry Hashtbl Instruction Isa_def List Mp_codegen Mp_dse Mp_epi Mp_isa Mp_sim Mp_uarch Mp_util Passes Printf String Synthesizer Uarch_def
