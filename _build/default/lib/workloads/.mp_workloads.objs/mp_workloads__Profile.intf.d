lib/workloads/profile.mli: Mp_codegen Mp_uarch Mp_util
