open Mp_uarch
open Mp_codegen

(* Sharded multi-process measurement execution. The coordinator side
   shards a deduplicated batch across a pool of worker subprocesses
   (each a re-exec of this very executable, flagged by MP_SHARD_WORKER)
   and scatters the streamed results back; the worker side is a frame
   loop installed by Machine at module-init time. The split with
   Machine is deliberate: this module owns the protocol and the pool,
   Machine owns how a request is actually executed — injected through
   [install_executor] so the two don't depend on each other
   circularly. *)

(* ----- protocol ---------------------------------------------------------- *)

(* Wire types are Marshal'd. Everything here is plain data except the
   uarch's [resources] closure, which is why requests are written with
   [Marshal.Closures] — valid only between identical binaries, which
   the self-exec guarantees and the namespace check enforces (the
   namespace embeds a digest of the executable, the same guard the disk
   cache uses). *)

type machine_spec = {
  ms_seed : int;
  ms_cache : bool;
  ms_replay : bool;
  ms_uarch : Uarch_def.t;
}

type job = {
  j_config : Uarch_def.config;
  (* one element = homogeneous deployment (replicated over SMT
     threads); [smt] elements = heterogeneous per-thread programs *)
  j_programs : Ir.t list;
  j_cost : float; (* forwarded so workers schedule heaviest-first too *)
}

type request = {
  rq_ns : string; (* Measurement_cache.namespace () of the sender *)
  rq_warmup : int;
  rq_measure : int;
  rq_period : bool option;
  rq_spec : machine_spec;
  rq_jobs : job array;
}

type response = {
  rs_ns : string;
  rs_results : (Measurement.t array, string) result;
}

(* ----- knobs ------------------------------------------------------------- *)

let worker_env_var = "MP_SHARD_WORKER"

let in_worker_process () = Sys.getenv_opt worker_env_var = Some "1"

(* MP_PROCS: 0/unset = in-process (unchanged behavior); N = that many
   workers; "auto" = one worker per domain-pool's worth of cores.
   Inside a worker process the answer is always 0 — workers never
   spawn their own process pools. *)
let env_procs () =
  if in_worker_process () then 0
  else
    match Sys.getenv_opt "MP_PROCS" with
    | None -> 0
    | Some s ->
      let s = String.lowercase_ascii (String.trim s) in
      if s = "" then 0
      else if s = "auto" then
        max 1
          (Mp_util.Parallel.detected_cores ()
          / max 1 (Mp_util.Parallel.default_size ()))
      else (
        match int_of_string_opt s with Some n when n >= 0 -> n | _ -> 0)

let default_timeout_s = 300.0

let env_timeout_s () =
  match Sys.getenv_opt "MP_PROC_TIMEOUT_S" with
  | Some s ->
    (match float_of_string_opt (String.trim s) with
     | Some v when v > 0.0 && Float.is_finite v -> v
     | _ -> default_timeout_s)
  | None -> default_timeout_s

(* ----- sharding ---------------------------------------------------------- *)

(* Placement is keyed by the programs' structural hashes, so the same
   structural program always lands on the same worker: that worker's
   replay table and warm in-memory cache accumulate exactly the records
   this program will ask for again. Configuration deliberately does not
   enter the key — all configurations of one program share a worker's
   warm replay state. *)
let shard_index ~shards programs =
  let module F = Mp_util.Fnv in
  let h =
    List.fold_left (fun h p -> F.int64 h (Ir.struct_hash p)) F.seed programs
  in
  Int64.to_int (F.finish h) land max_int mod max 1 shards

(* ----- worker side ------------------------------------------------------- *)

(* Machine installs the request executor at module-init time (it can't
   be referenced directly from here without a dependency cycle). *)
let executor : (request -> Measurement.t array) option ref = ref None

let install_executor f = executor := Some f

let worker_main () =
  (* Keep private copies of the protocol fds and point stdout at stderr
     for everyone else: any stray [print_string] in simulation code
     would otherwise corrupt the frame stream. *)
  let inp = Unix.dup Unix.stdin in
  let out = Unix.dup Unix.stdout in
  Unix.dup2 Unix.stderr Unix.stdout;
  let ns = Measurement_cache.namespace () in
  let execute rq =
    if rq.rq_ns <> ns then
      Error (Printf.sprintf "namespace mismatch: got %s, have %s" rq.rq_ns ns)
    else
      match !executor with
      | None -> Error "no executor installed"
      | Some f -> ( try Ok (f rq) with e -> Error (Printexc.to_string e))
  in
  let rec loop () =
    match Mp_util.Procpool.read_frame inp with
    | None -> () (* EOF: the coordinator shut the pool down *)
    | Some payload ->
      (match (Marshal.from_bytes payload 0 : request) with
       | exception _ -> () (* garbage on the wire: bail out, get reaped *)
       | rq ->
         let rs = { rs_ns = ns; rs_results = execute rq } in
         (match
            Mp_util.Procpool.write_frame out (Marshal.to_bytes rs [])
          with
          | () -> loop ()
          | exception _ -> () (* coordinator gone *)))
  in
  loop ()

(* Called from Machine's module initializer — i.e. in every executable
   that links the simulator — so any such executable can be its own
   worker. Never returns in a worker process. *)
let maybe_become_worker () =
  if in_worker_process () then begin
    worker_main ();
    exit 0
  end

(* ----- coordinator side -------------------------------------------------- *)

type pool = { pp : Mp_util.Procpool.t; timeout_s : float }

let create_pool ?(env = []) ?timeout_s n =
  let env =
    env
    @ [
        (worker_env_var, "1");
        (* workers must not recurse into process pools of their own *)
        ("MP_PROCS", "0");
      ]
  in
  {
    pp = Mp_util.Procpool.create ~env ~prog:Sys.executable_name ~args:[] n;
    timeout_s = (match timeout_s with Some s -> s | None -> env_timeout_s ());
  }

let pool_size p = Mp_util.Procpool.size p.pp

let procpool p = p.pp

let shutdown_pool p = Mp_util.Procpool.shutdown p.pp

(* One sharded dispatch at a time per coordinator: each worker's pipe
   carries one request/response exchange, so interleaving two batches
   over the same pool would cross their frames. *)
let dispatch_lock = Mutex.create ()

let run_jobs p ~spec ~warmup ~measure ?period jobs =
  let jobs = Array.of_list jobs in
  let n = Array.length jobs in
  let results = Array.make n None in
  if n > 0 then begin
    Mutex.lock dispatch_lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock dispatch_lock)
      (fun () ->
        let shards = pool_size p in
        let buckets = Array.make shards [] in
        Array.iteri
          (fun i j ->
            let s = shard_index ~shards j.j_programs in
            buckets.(s) <- i :: buckets.(s))
          jobs;
        let buckets = Array.map (fun l -> Array.of_list (List.rev l)) buckets in
        let ns = Measurement_cache.namespace () in
        (* send every shard first, then collect: workers compute their
           shards concurrently while the coordinator waits on the first *)
        let in_flight = Array.make shards false in
        Array.iteri
          (fun s bucket ->
            if Array.length bucket > 0 then begin
              let rq =
                {
                  rq_ns = ns;
                  rq_warmup = warmup;
                  rq_measure = measure;
                  rq_period = period;
                  rq_spec = spec;
                  rq_jobs = Array.map (fun i -> jobs.(i)) bucket;
                }
              in
              match Marshal.to_bytes rq [ Marshal.Closures ] with
              | exception _ -> () (* unmarshalable spec: caller recovers *)
              | payload ->
                in_flight.(s) <-
                  Mp_util.Procpool.send ~timeout_s:p.timeout_s p.pp s payload
            end)
          buckets;
        Array.iteri
          (fun s bucket ->
            if in_flight.(s) then
              match Mp_util.Procpool.recv ~timeout_s:p.timeout_s p.pp s with
              | None -> () (* crash/timeout: slot reaped, jobs recovered *)
              | Some payload ->
                (match (Marshal.from_bytes payload 0 : response) with
                 | exception _ -> Mp_util.Procpool.reap p.pp s
                 | rs ->
                   if rs.rs_ns <> ns then Mp_util.Procpool.reap p.pp s
                   else (
                     match rs.rs_results with
                     | Error _ -> () (* worker-reported failure *)
                     | Ok arr ->
                       if Array.length arr = Array.length bucket then
                         Array.iteri
                           (fun k i -> results.(i) <- Some arr.(k))
                           bucket
                       else Mp_util.Procpool.reap p.pp s)))
          buckets)
  end;
  results

(* ----- the shared pool --------------------------------------------------- *)

let global : pool option ref = ref None
let global_lock = Mutex.create ()

let shutdown_global () =
  Mutex.lock global_lock;
  let p = !global in
  global := None;
  Mutex.unlock global_lock;
  Option.iter shutdown_pool p

let () = at_exit shutdown_global

let get_pool n =
  Mutex.lock global_lock;
  let p =
    match !global with
    | Some p ->
      Mp_util.Procpool.ensure_size p.pp n;
      Some p
    | None -> (
      match create_pool n with
      | p ->
        global := Some p;
        Some p
      | exception _ -> None)
  in
  Mutex.unlock global_lock;
  p

let global_size () = match !global with Some p -> pool_size p | None -> 0
