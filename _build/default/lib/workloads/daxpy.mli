(** DAXPY kernels (y\[i\] ← a·x\[i\] + y\[i\]) with L1-contained
    footprints — the conventional hand-written stressmark the paper
    compares against in Figure 9. *)

val kernel :
  arch:Mp_codegen.Arch.t -> unroll:int -> ?size:int -> unit -> Mp_codegen.Ir.t
(** A loop of [unroll]-times-unrolled load-load-fmadd-store groups,
    all hitting the L1, with the natural loop-carried data flow. *)

val variants : arch:Mp_codegen.Arch.t -> ?size:int -> unit -> Mp_codegen.Ir.t list
(** Unroll factors 1, 2, 4 and 8 (different L1 footprints/ILP). *)
