lib/isa/instruction.ml: Format Int32 List Printf
