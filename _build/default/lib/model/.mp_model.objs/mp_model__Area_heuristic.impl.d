lib/model/area_heuristic.ml: Array Format List Measurement Mp_sim Mp_uarch Mp_util Pipe Uarch_def
