lib/workloads/daxpy.ml: Arch Builder List Mp_codegen Mp_uarch Passes Printf Synthesizer
