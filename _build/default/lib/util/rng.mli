(** Deterministic pseudo-random number generation.

    All stochastic behaviour in the framework (micro-benchmark
    randomisation, genetic search, sensor noise, workload phases) flows
    through this module so that every experiment is reproducible from a
    seed.  The generator is SplitMix64: fast, splittable and with
    well-understood statistical quality. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator. Equal seeds give equal
    streams. *)

val copy : t -> t
(** Independent copy sharing no state with the original. *)

val split : t -> t
(** [split g] advances [g] and returns a new generator whose stream is
    statistically independent of the remainder of [g]'s stream. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int g bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in g lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val float : t -> float -> float
(** [float g bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val gaussian : t -> mu:float -> sigma:float -> float
(** Normal deviate via Box–Muller. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val choose_list : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val shuffle_in_place : t -> 'a array -> unit
(** Fisher–Yates shuffle. *)

val shuffle : t -> 'a list -> 'a list

val weighted_index : t -> float array -> int
(** [weighted_index g w] picks index [i] with probability proportional
    to [w.(i)]. Weights must be non-negative with a positive sum. *)
