lib/codegen/builder.mli: Arch Ir Mp_isa Mp_util
