(* Unit and property tests for Mp_util: RNG, statistics, linear algebra
   and table rendering. *)

open Mp_util

let check_float = Alcotest.(check (float 1e-9))
let check_close eps = Alcotest.(check (float eps))

(* ----- rng -------------------------------------------------------------- *)

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let xa = List.init 8 (fun _ -> Rng.bits64 a) in
  let xb = List.init 8 (fun _ -> Rng.bits64 b) in
  Alcotest.(check bool) "different streams" true (xa <> xb)

let test_rng_split () =
  let g = Rng.create 7 in
  let h = Rng.split g in
  let xs = List.init 16 (fun _ -> Rng.bits64 g) in
  let ys = List.init 16 (fun _ -> Rng.bits64 h) in
  Alcotest.(check bool) "split independent" true (xs <> ys)

let test_rng_copy () =
  let g = Rng.create 9 in
  ignore (Rng.bits64 g);
  let h = Rng.copy g in
  Alcotest.(check int64) "copy continues identically" (Rng.bits64 g) (Rng.bits64 h)

let test_gaussian_moments () =
  let g = Rng.create 11 in
  let xs = Array.init 20000 (fun _ -> Rng.gaussian g ~mu:5.0 ~sigma:2.0) in
  check_close 0.1 "mean" 5.0 (Stats.mean xs);
  check_close 0.1 "stddev" 2.0 (Stats.stddev xs)

let test_weighted_index () =
  let g = Rng.create 3 in
  let counts = Array.make 3 0 in
  for _ = 1 to 30000 do
    let i = Rng.weighted_index g [| 1.0; 2.0; 7.0 |] in
    counts.(i) <- counts.(i) + 1
  done;
  check_close 0.02 "w0" 0.1 (float_of_int counts.(0) /. 30000.0);
  check_close 0.02 "w1" 0.2 (float_of_int counts.(1) /. 30000.0);
  check_close 0.02 "w2" 0.7 (float_of_int counts.(2) /. 30000.0)

let test_weighted_index_zero_total () =
  Alcotest.check_raises "zero weights" (Invalid_argument "Rng.weighted_index: non-positive total")
    (fun () -> ignore (Rng.weighted_index (Rng.create 1) [| 0.0; 0.0 |]))

let prop_int_in_bounds =
  QCheck.Test.make ~name:"Rng.int stays in bounds" ~count:500
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let g = Rng.create seed in
      let v = Rng.int g bound in
      v >= 0 && v < bound)

let prop_int_in_range =
  QCheck.Test.make ~name:"Rng.int_in inclusive bounds" ~count:500
    QCheck.(triple small_int (int_range (-50) 50) (int_range 0 100))
    (fun (seed, lo, extra) ->
      let hi = lo + extra in
      let g = Rng.create seed in
      let v = Rng.int_in g lo hi in
      v >= lo && v <= hi)

let prop_shuffle_permutation =
  QCheck.Test.make ~name:"shuffle preserves multiset" ~count:200
    QCheck.(pair small_int (list small_int))
    (fun (seed, l) ->
      let g = Rng.create seed in
      let shuffled = Rng.shuffle g l in
      List.sort compare shuffled = List.sort compare l)

let prop_float_bounds =
  QCheck.Test.make ~name:"Rng.float in [0,bound)" ~count:500
    QCheck.(pair small_int (float_range 0.001 1e6))
    (fun (seed, bound) ->
      let g = Rng.create seed in
      let v = Rng.float g bound in
      v >= 0.0 && v < bound)

(* ----- stats ------------------------------------------------------------ *)

let test_mean_variance () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  check_float "mean" 2.5 (Stats.mean xs);
  check_float "variance" 1.25 (Stats.variance xs);
  check_float "sum" 10.0 (Stats.sum xs)

let test_percentiles () =
  let xs = [| 4.0; 1.0; 3.0; 2.0 |] in
  check_float "median" 2.5 (Stats.median xs);
  check_float "p0" 1.0 (Stats.percentile xs 0.0);
  check_float "p100" 4.0 (Stats.percentile xs 100.0)

let test_paae () =
  let actual = [| 100.0; 200.0 |] in
  check_float "paae zero" 0.0 (Stats.paae ~actual ~predicted:actual);
  check_float "paae 10%" 10.0
    (Stats.paae ~actual ~predicted:[| 110.0; 180.0 |]);
  check_float "max err" 10.0
    (Stats.max_abs_pct_error ~actual ~predicted:[| 110.0; 180.0 |])

let test_pearson () =
  let xs = [| 1.0; 2.0; 3.0 |] in
  check_close 1e-9 "self-correlation" 1.0 (Stats.pearson xs xs);
  check_close 1e-9 "anti" (-1.0) (Stats.pearson xs [| 3.0; 2.0; 1.0 |]);
  check_float "flat" 0.0 (Stats.pearson xs [| 1.0; 1.0; 1.0 |])

let test_converged () =
  Alcotest.(check bool) "tight" true (Stats.converged [| 1.0; 1.001; 0.999 |]);
  Alcotest.(check bool) "loose" false (Stats.converged [| 1.0; 2.0 |])

let prop_percentile_monotone =
  QCheck.Test.make ~name:"percentile monotone in p" ~count:200
    QCheck.(pair (array_of_size Gen.(int_range 1 40) (float_range (-100.) 100.))
              (pair (float_range 0. 100.) (float_range 0. 100.)))
    (fun (xs, (p1, p2)) ->
      let lo = Float.min p1 p2 and hi = Float.max p1 p2 in
      Stats.percentile xs lo <= Stats.percentile xs hi +. 1e-9)

let prop_mean_bounded =
  QCheck.Test.make ~name:"mean within min/max" ~count:200
    QCheck.(array_of_size Gen.(int_range 1 40) (float_range (-1e3) 1e3))
    (fun xs ->
      let lo, hi = Stats.min_max xs in
      let m = Stats.mean xs in
      m >= lo -. 1e-9 && m <= hi +. 1e-9)

(* ----- matrix ----------------------------------------------------------- *)

let test_matrix_identity () =
  let a = Matrix.of_arrays [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let i = Matrix.identity 2 in
  let b = Matrix.mul a i in
  Alcotest.(check bool) "a*I = a" true
    (Matrix.get b 0 0 = 1.0 && Matrix.get b 1 1 = 4.0)

let test_matrix_solve () =
  let a = Matrix.of_arrays [| [| 2.0; 1.0 |]; [| 1.0; 3.0 |] |] in
  let x = Matrix.solve a [| 5.0; 10.0 |] in
  check_close 1e-9 "x0" 1.0 x.(0);
  check_close 1e-9 "x1" 3.0 x.(1)

let test_matrix_singular () =
  let a = Matrix.of_arrays [| [| 1.0; 2.0 |]; [| 2.0; 4.0 |] |] in
  Alcotest.check_raises "singular" (Failure "Matrix.solve: singular")
    (fun () -> ignore (Matrix.solve a [| 1.0; 2.0 |]))

let test_ols_recovery () =
  (* y = 3 x0 - 2 x1 + 5 *)
  let g = Rng.create 77 in
  let rows = Array.init 50 (fun _ ->
      [| Rng.float g 10.0; Rng.float g 10.0; 1.0 |]) in
  let y = Array.map (fun r -> (3.0 *. r.(0)) -. (2.0 *. r.(1)) +. 5.0) rows in
  let beta = Matrix.ols (Matrix.of_arrays rows) y in
  check_close 1e-4 "b0" 3.0 beta.(0);
  check_close 1e-4 "b1" (-2.0) beta.(1);
  check_close 1e-3 "b2" 5.0 beta.(2)

let test_nnls_nonnegative () =
  let g = Rng.create 78 in
  let rows = Array.init 60 (fun _ -> [| Rng.float g 5.0; Rng.float g 5.0 |]) in
  (* true weight of x1 is negative: nnls must clamp it at zero *)
  let y = Array.map (fun r -> (2.0 *. r.(0)) -. (1.0 *. r.(1))) rows in
  let beta = Matrix.nnls (Matrix.of_arrays rows) y in
  Alcotest.(check bool) "all non-negative" true (Array.for_all (fun b -> b >= 0.0) beta);
  Alcotest.(check bool) "x0 weight positive" true (beta.(0) > 0.5)

let test_nnls_recovery () =
  let g = Rng.create 79 in
  let rows = Array.init 60 (fun _ -> [| Rng.float g 5.0; Rng.float g 5.0 |]) in
  let y = Array.map (fun r -> (2.0 *. r.(0)) +. (0.5 *. r.(1))) rows in
  let beta = Matrix.nnls (Matrix.of_arrays rows) y in
  check_close 1e-3 "b0" 2.0 beta.(0);
  check_close 1e-3 "b1" 0.5 beta.(1)

let prop_transpose_involution =
  QCheck.Test.make ~name:"transpose involutive" ~count:100
    QCheck.(pair (int_range 1 6) (int_range 1 6))
    (fun (m, n) ->
      let g = Rng.create (m + (7 * n)) in
      let a = Matrix.of_arrays
          (Array.init m (fun _ -> Array.init n (fun _ -> Rng.float g 9.0))) in
      let tt = Matrix.transpose (Matrix.transpose a) in
      let ok = ref true in
      for i = 0 to m - 1 do
        for j = 0 to n - 1 do
          if Matrix.get a i j <> Matrix.get tt i j then ok := false
        done
      done;
      !ok)

let prop_solve_random_spd =
  QCheck.Test.make ~name:"solve recovers x on random SPD systems" ~count:100
    (QCheck.int_range 1 8)
    (fun n ->
      let g = Rng.create (1000 + n) in
      let b = Matrix.of_arrays
          (Array.init n (fun _ -> Array.init n (fun _ -> Rng.float g 2.0))) in
      (* a = b^T b + I is symmetric positive definite *)
      let a = Matrix.add (Matrix.mul (Matrix.transpose b) b) (Matrix.identity n) in
      let x = Array.init n (fun i -> float_of_int (i + 1)) in
      let rhs = Matrix.mul_vec a x in
      let solved = Matrix.solve a rhs in
      Array.for_all2 (fun u v -> Float.abs (u -. v) < 1e-6) x solved)

(* ----- text table ------------------------------------------------------- *)

let contains_sub haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

let test_text_table () =
  let t = Text_table.create [ "name"; "value" ] in
  Text_table.add_row t [ "alpha"; "1" ];
  Text_table.add_separator t;
  Text_table.add_row t [ "b" ];
  let s = Text_table.render t in
  Alcotest.(check bool) "has header" true
    (String.length s > 0 && String.sub s 0 4 = "name");
  Alcotest.(check bool) "mentions alpha" true (contains_sub s "alpha")

let test_text_table_too_wide () =
  let t = Text_table.create [ "a" ] in
  Alcotest.check_raises "too wide" (Invalid_argument "Text_table.add_row: too wide")
    (fun () -> Text_table.add_row t [ "x"; "y" ])

let test_cells () =
  Alcotest.(check string) "float" "1.500" (Text_table.cell_f 1.5);
  Alcotest.(check string) "pct" "12.3%" (Text_table.cell_pct 12.34)

(* ----- csv --------------------------------------------------------------- *)

let test_csv_basic () =
  let c = Csv.create [ "a"; "b" ] in
  Csv.add_row c [ "1"; "2" ];
  Csv.add_floats c [ 3.5; 4.25 ];
  Alcotest.(check string) "render" "a,b\n1,2\n3.5,4.25\n" (Csv.render c)

let test_csv_quoting () =
  let c = Csv.create [ "x" ] in
  Csv.add_row c [ "hello, \"world\"" ];
  Alcotest.(check string) "quoted" "x\n\"hello, \"\"world\"\"\"\n" (Csv.render c)

let test_csv_padding () =
  let c = Csv.create [ "a"; "b"; "c" ] in
  Csv.add_row c [ "1" ];
  Csv.add_row c [ "1"; "2"; "3"; "4" ];
  Alcotest.(check string) "padded/truncated" "a,b,c\n1,,\n1,2,3\n" (Csv.render c)

(* ----- transport frame codec --------------------------------------------- *)

(* The wire format shared by the pipe (Procpool) and socket (Netpool)
   transports. Everything runs over a plain Unix pipe: the codec only
   sees fds, so a pipe exercises exactly the byte paths a socket
   would. Payload sizes stay under the kernel pipe buffer so a single
   thread can write-then-read without deadlocking. *)

let with_pipe f =
  let r, w = Unix.pipe () in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close r with _ -> ());
      (try Unix.close w with _ -> ()))
    (fun () -> f r w)

let prop_frame_roundtrip =
  QCheck.Test.make ~name:"frame round-trip (any payload, incl. empty)"
    ~count:200
    QCheck.(string_of_size Gen.(int_range 0 16384))
    (fun s ->
      with_pipe (fun r w ->
          let payload = Bytes.of_string s in
          Transport.write_frame w payload;
          match Transport.read_frame ~timeout_s:5.0 r with
          | Some got -> Bytes.equal got payload
          | None -> false))

let prop_frame_garbage_total =
  (* arbitrary bytes after a small claimed length: the reader either
     produces a frame or None — never an exception. The first two
     header bytes are forced to zero so a garbage header can't demand
     a gigabyte allocation inside the property loop. *)
  QCheck.Test.make ~name:"garbage on the wire never raises" ~count:200
    QCheck.(string_of_size Gen.(int_range 0 64))
    (fun s ->
      with_pipe (fun r w ->
          let junk = Bytes.cat (Bytes.make 2 '\000') (Bytes.of_string s) in
          Transport.write_all w junk 0 (Bytes.length junk);
          Unix.close w;
          match Transport.read_frame ~timeout_s:1.0 r with
          | Some _ | None -> true
          | exception _ -> false))

let test_frame_empty_roundtrip () =
  with_pipe (fun r w ->
      Transport.write_frame w Bytes.empty;
      match Transport.read_frame ~timeout_s:5.0 r with
      | Some got -> Alcotest.(check int) "empty" 0 (Bytes.length got)
      | None -> Alcotest.fail "empty frame lost")

let test_frame_over_guard_rejected () =
  (* a header claiming max_frame_bytes + 1: the reader must reject it
     from the header alone — returning None without allocating the
     claimed payload (nothing but the header is ever written) *)
  with_pipe (fun r w ->
      let hdr = Bytes.create 4 in
      Bytes.set_int32_be hdr 0 (Int32.of_int (Transport.max_frame_bytes + 1));
      Transport.write_all w hdr 0 4;
      Unix.close w;
      Alcotest.(check bool) "over-guard -> None" true
        (Transport.read_frame ~timeout_s:1.0 r = None))

let test_frame_negative_length_rejected () =
  with_pipe (fun r w ->
      Transport.write_all w (Bytes.make 4 '\xff') 0 4;
      Unix.close w;
      Alcotest.(check bool) "negative length -> None" true
        (Transport.read_frame ~timeout_s:1.0 r = None))

let test_frame_truncated_header () =
  with_pipe (fun r w ->
      Transport.write_all w (Bytes.make 2 'x') 0 2;
      Unix.close w;
      Alcotest.(check bool) "truncated header -> None" true
        (Transport.read_frame ~timeout_s:1.0 r = None))

let test_frame_truncated_payload () =
  with_pipe (fun r w ->
      let hdr = Bytes.create 4 in
      Bytes.set_int32_be hdr 0 100l;
      Transport.write_all w hdr 0 4;
      Transport.write_all w (Bytes.make 50 'p') 0 50;
      Unix.close w;
      Alcotest.(check bool) "truncated payload -> None" true
        (Transport.read_frame ~timeout_s:1.0 r = None))

let test_frame_timeout () =
  with_pipe (fun r _w ->
      let t0 = Unix.gettimeofday () in
      let got = Transport.read_frame ~timeout_s:0.05 r in
      Alcotest.(check bool) "no frame -> None" true (got = None);
      Alcotest.(check bool) "returned promptly" true
        (Unix.gettimeofday () -. t0 < 2.0))

let test_frame_oversized_write_rejected () =
  (* the writer refuses to emit a frame the reader's guard would kill.
     Bytes.create leaves the buffer uninitialised, so the guard+1
     allocation is untouched virtual memory and the length check fires
     before a single byte reaches the fd *)
  with_pipe (fun _r w ->
      let huge = Bytes.create (Transport.max_frame_bytes + 1) in
      Alcotest.check_raises "over guard"
        (Invalid_argument "Transport.write_frame: frame too large")
        (fun () -> Transport.write_frame w huge))

let qsuite = List.map QCheck_alcotest.to_alcotest
    [ prop_int_in_bounds; prop_int_in_range; prop_shuffle_permutation;
      prop_float_bounds; prop_percentile_monotone; prop_mean_bounded;
      prop_transpose_involution; prop_solve_random_spd ]

let transport_qsuite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_frame_roundtrip; prop_frame_garbage_total ]

let () =
  Alcotest.run "mp_util"
    [
      ("rng",
       [ Alcotest.test_case "determinism" `Quick test_rng_determinism;
         Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
         Alcotest.test_case "split" `Quick test_rng_split;
         Alcotest.test_case "copy" `Quick test_rng_copy;
         Alcotest.test_case "gaussian moments" `Quick test_gaussian_moments;
         Alcotest.test_case "weighted index" `Quick test_weighted_index;
         Alcotest.test_case "weighted zero" `Quick test_weighted_index_zero_total ]);
      ("stats",
       [ Alcotest.test_case "mean/variance" `Quick test_mean_variance;
         Alcotest.test_case "percentiles" `Quick test_percentiles;
         Alcotest.test_case "paae" `Quick test_paae;
         Alcotest.test_case "pearson" `Quick test_pearson;
         Alcotest.test_case "converged" `Quick test_converged ]);
      ("matrix",
       [ Alcotest.test_case "identity" `Quick test_matrix_identity;
         Alcotest.test_case "solve" `Quick test_matrix_solve;
         Alcotest.test_case "singular" `Quick test_matrix_singular;
         Alcotest.test_case "ols recovery" `Quick test_ols_recovery;
         Alcotest.test_case "nnls nonnegative" `Quick test_nnls_nonnegative;
         Alcotest.test_case "nnls recovery" `Quick test_nnls_recovery ]);
      ("text_table",
       [ Alcotest.test_case "render" `Quick test_text_table;
         Alcotest.test_case "too wide" `Quick test_text_table_too_wide;
         Alcotest.test_case "cells" `Quick test_cells ]);
      ("csv",
       [ Alcotest.test_case "basic" `Quick test_csv_basic;
         Alcotest.test_case "quoting" `Quick test_csv_quoting;
         Alcotest.test_case "padding" `Quick test_csv_padding ]);
      ("transport",
       Alcotest.
         [ test_case "empty round-trip" `Quick test_frame_empty_roundtrip;
           test_case "over-guard header rejected" `Quick
             test_frame_over_guard_rejected;
           test_case "negative length rejected" `Quick
             test_frame_negative_length_rejected;
           test_case "truncated header" `Quick test_frame_truncated_header;
           test_case "truncated payload" `Quick test_frame_truncated_payload;
           test_case "read timeout" `Quick test_frame_timeout;
           test_case "oversized write rejected" `Quick
             test_frame_oversized_write_rejected ]
       @ transport_qsuite);
      ("properties", qsuite);
    ]
