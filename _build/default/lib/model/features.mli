(** The PMC-based feature formulas of the power models: per-thread
    activity rates for the seven power components of Equation (1) —
    FXU, VSU, LSU, L1, L2, L3, MEM. *)

val count : int
(** Number of features (7). *)

val names : string array
(** ["FXU"; "VSU"; "LSU"; "L1"; "L2"; "L3"; "MEM"]. *)

val of_thread : Mp_sim.Measurement.counters -> float array
(** Per-cycle rates of one hardware thread's counters. *)

val per_thread : Mp_sim.Measurement.t -> float array array
(** Feature vectors for each thread of the measured core. *)

val chip_sum : Mp_sim.Measurement.t -> float array
(** Sum over all threads of all enabled cores (identical copies run on
    every core, so this is [cores ×] the measured core's sum). *)

val dot : float array -> float array -> float
