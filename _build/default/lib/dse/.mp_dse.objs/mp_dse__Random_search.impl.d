lib/dse/random_search.ml: Driver List
