lib/dse/space.mli:
