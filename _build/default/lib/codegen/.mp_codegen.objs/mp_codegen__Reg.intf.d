lib/codegen/reg.mli: Format Mp_isa
