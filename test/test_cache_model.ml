(* Equivalence of the packed cache model against the list reference:
   trace-level QCheck properties (source levels, counters, prefetcher,
   rolling-digest invariants over randomized load/store traces with
   set aliasing and streaming), the prefetch-streak saturation
   contract, and machine-level bit-identity across the memory,
   non-dyadic, heterogeneous and training suites under the
   MP_CACHE_MODEL switch. *)

open Mp_codegen
open Mp_sim
module CG = Mp_uarch.Cache_geometry

let arch () = Arch.power7 ()

let config a ~cores ~smt = Mp_uarch.Uarch_def.config ~cores ~smt a.Arch.uarch

let with_model name f =
  Unix.putenv "MP_CACHE_MODEL" name;
  Fun.protect ~finally:(fun () -> Unix.putenv "MP_CACHE_MODEL" "") f

(* ----- trace-level equivalence -------------------------------------------- *)

(* A trace op: either an access aimed at a small window of L1 sets with
   a tag range wide enough to thrash every level (set aliasing), or a
   sequential line walk (streaming — wakes the prefetcher, whose
   lookups mutate state beyond the demand access itself). *)
type op =
  | Aliased of int * int * bool  (* L1 set, tag, store *)
  | Stream of int * int          (* base, length *)

let op_print = function
  | Aliased (s, t, st) -> Printf.sprintf "Aliased(%d,%d,%b)" s t st
  | Stream (b, n) -> Printf.sprintf "Stream(%d,%d)" b n

let op_gen =
  QCheck.Gen.(
    frequency
      [ (4,
         map3
           (fun s t st -> Aliased (s, t, st))
           (int_bound 7) (int_bound 29) bool);
        (1, map2 (fun b n -> Stream (b, 3 + n)) (int_bound 40) (int_bound 12))
      ])

let trace_arb =
  QCheck.make
    ~print:(fun ops -> String.concat ";" (List.map op_print ops))
    QCheck.Gen.(list_size (int_range 1 300) op_gen)

(* Drive one cache through a trace; returns the per-access source
   levels plus the final observable state. *)
let drive model ops =
  let a = arch () in
  let u = a.Arch.uarch in
  let c = Cache_sim.create ~model u in
  let l1g = Mp_uarch.Uarch_def.cache u CG.L1 in
  let srcs = ref [] in
  List.iter
    (fun op ->
      match op with
      | Aliased (s, t, st) ->
        let addr = CG.address_with_set l1g ~set:s ~tag:t in
        srcs := Cache_sim.access c ~addr ~store:st :: !srcs
      | Stream (b, n) ->
        for i = 0 to n - 1 do
          srcs :=
            Cache_sim.access c ~addr:((b * 0x4000) + (i * 128)) ~store:false
            :: !srcs
        done)
    ops;
  let buf = Buffer.create 256 in
  Cache_sim.add_fingerprint c buf;
  ( List.rev !srcs,
    Cache_sim.stats_snapshot c,
    Cache_sim.prefetch_streak c,
    Buffer.contents buf,
    c )

let prop_models_agree =
  QCheck.Test.make ~name:"packed = list on randomized traces" ~count:120
    trace_arb
    (fun ops ->
      let p_srcs, p_snap, p_streak, _, pc = drive Cache_sim.Packed ops in
      let l_srcs, l_snap, l_streak, _, _ = drive Cache_sim.List_ref ops in
      p_srcs = l_srcs && p_snap = l_snap && p_streak = l_streak
      && Cache_sim.digest_consistent pc)

let prop_digest_stable =
  (* the rolling digest is a pure function of the access history:
     replaying a trace bit-identically reproduces digest and
     fingerprint, and the incremental value always matches a from-
     scratch recomputation (checked inside digest_consistent) *)
  QCheck.Test.make ~name:"rolling digest is stable and incremental"
    ~count:60 trace_arb
    (fun ops ->
      let _, _, _, fp1, c1 = drive Cache_sim.Packed ops in
      let _, _, _, fp2, c2 = drive Cache_sim.Packed ops in
      fp1 = fp2
      && Cache_sim.rolling_digest c1 = Cache_sim.rolling_digest c2
      && Cache_sim.rolling_digest c1 <> None
      && Cache_sim.digest_consistent c1 && Cache_sim.digest_consistent c2)

(* ----- prefetch streak saturation ----------------------------------------- *)

let test_streak_saturates () =
  let a = arch () in
  List.iter
    (fun model ->
      let fingerprint_after n =
        let c = Cache_sim.create ~model a.Arch.uarch in
        for i = 0 to n - 1 do
          ignore (Cache_sim.access c ~addr:(i * 128) ~store:false)
        done;
        let buf = Buffer.create 256 in
        Cache_sim.add_fingerprint c buf;
        (Cache_sim.prefetch_streak c, Buffer.contents buf)
      in
      let streak_short, _ = fingerprint_after 10 in
      let streak_long, fp_long = fingerprint_after 600 in
      let name = Cache_sim.model_to_string model in
      Alcotest.(check int) (name ^ ": streak saturated after 10") 3 streak_short;
      Alcotest.(check int) (name ^ ": streak saturated after 600") 3 streak_long;
      (* the fingerprint's streak component is the saturated live value:
         a long sequential walk must not grow it *)
      let suffix s n = String.sub s (String.length s - n) n in
      Alcotest.(check string) (name ^ ": fingerprint streak field") ":3"
        (suffix fp_long 2))
    [ Cache_sim.Packed; Cache_sim.List_ref ]

(* ----- model selection ----------------------------------------------------- *)

let test_model_selection () =
  let a = arch () in
  let u = a.Arch.uarch in
  with_model "list" (fun () ->
      Alcotest.(check bool) "env selects list" true
        (Cache_sim.model (Cache_sim.create u) = Cache_sim.List_ref));
  with_model "packed" (fun () ->
      Alcotest.(check bool) "env selects packed" true
        (Cache_sim.model (Cache_sim.create u) = Cache_sim.Packed));
  with_model "" (fun () ->
      Alcotest.(check bool) "default is packed" true
        (Cache_sim.model (Cache_sim.create u) = Cache_sim.Packed));
  Alcotest.(check bool) "explicit argument wins" true
    (Cache_sim.model (Cache_sim.create ~model:Cache_sim.List_ref u)
     = Cache_sim.List_ref)

(* ----- machine-level bit-identity ------------------------------------------ *)

let synth a ~name ~size ?(mem = []) ?(fill = [ "lbz" ]) () =
  let s = Synthesizer.create ~name a in
  Synthesizer.add_pass s (Passes.skeleton ~size);
  Synthesizer.add_pass s
    (Passes.fill_uniform (List.map (Arch.find_instruction a) fill));
  if mem <> [] then Synthesizer.add_pass s (Passes.memory_model mem);
  Synthesizer.add_pass s (Passes.dependency Builder.No_deps);
  Synthesizer.synthesize ~seed:77 s

(* Run one program under both models on fresh dense machines; the
   measurement must not differ in a single bit. *)
let check_both ?measure a cfg p name =
  let run model =
    with_model model (fun () ->
        Machine.run ?measure
          (Machine.create ~cache:false ~replay:false a.Arch.uarch)
          cfg p)
  in
  Alcotest.(check bool) (name ^ " bit-identical across models") true
    (compare (run "list") (run "packed") = 0)

let test_memory_suite () =
  let a = arch () in
  let mixes =
    [ ("L1", [ (CG.L1, 1.0) ]); ("L2", [ (CG.L2, 1.0) ]);
      ("L3", [ (CG.L3, 1.0) ]); ("MEM", [ (CG.MEM, 1.0) ]);
      ("mixed", [ (CG.L1, 0.5); (CG.L3, 0.3); (CG.MEM, 0.2) ]) ]
  in
  List.iter
    (fun (mname, mem) ->
      let p = synth a ~name:("eq-" ^ mname) ~size:96 ~mem () in
      List.iter
        (fun smt ->
          check_both ~measure:16 a (config a ~cores:1 ~smt) p
            (Printf.sprintf "%s smt%d" mname smt))
        [ 1; 2; 4 ])
    mixes

let test_nondyadic () =
  (* fractional-occupancy opcodes over a memory mix: period skipping
     fires mid-window, so fingerprints, period credit and the tail all
     cross the digest-based match path *)
  let a = arch () in
  let p =
    synth a ~name:"eq-nondyadic" ~size:64
      ~fill:[ "lbz"; "stfd"; "mulld"; "andi." ]
      ~mem:[ (CG.L1, 0.6); (CG.L3, 0.4) ]
      ()
  in
  List.iter
    (fun smt ->
      check_both ~measure:64 a (config a ~cores:1 ~smt) p
        (Printf.sprintf "non-dyadic smt%d" smt))
    [ 1; 2; 4 ]

let test_heterogeneous () =
  let a = arch () in
  let compute = synth a ~name:"eq-compute" ~size:64 ~fill:[ "add"; "mulld" ] () in
  let memory = synth a ~name:"eq-mem" ~size:64 ~mem:[ (CG.L2, 1.0) ] () in
  let run model =
    with_model model (fun () ->
        Machine.run_heterogeneous ~measure:16
          (Machine.create ~cache:false ~replay:false a.Arch.uarch)
          (config a ~cores:1 ~smt:2)
          [ compute; memory ])
  in
  Alcotest.(check bool) "heterogeneous bit-identical across models" true
    (compare (run "list") (run "packed") = 0)

let test_training_suite () =
  (* the acceptance bar: the whole (quick) Table-2 training suite,
     program by program, packed vs list *)
  let a = arch () in
  let machine = Machine.create a.Arch.uarch in
  let fams = Mp_workloads.Training.table2 ~machine ~arch:a ~quick:true () in
  let progs =
    List.map
      (fun (e : Mp_workloads.Training.entry) -> e.Mp_workloads.Training.program)
      (Mp_workloads.Training.all_entries fams)
  in
  Alcotest.(check bool) "suite non-empty" true (List.length progs > 20);
  let cfg = config a ~cores:8 ~smt:2 in
  List.iteri
    (fun i p ->
      check_both ~measure:12 a cfg p
        (Printf.sprintf "suite entry %d (%s)" i p.Mp_codegen.Ir.name))
    progs

let () =
  Alcotest.run "mp_cache_model"
    [
      ("trace equivalence",
       [ QCheck_alcotest.to_alcotest prop_models_agree;
         QCheck_alcotest.to_alcotest prop_digest_stable ]);
      ("prefetcher",
       [ Alcotest.test_case "streak saturates at 3" `Quick
           test_streak_saturates ]);
      ("selection",
       [ Alcotest.test_case "MP_CACHE_MODEL" `Quick test_model_selection ]);
      ("machine bit-identity",
       [ Alcotest.test_case "memory suite" `Quick test_memory_suite;
         Alcotest.test_case "non-dyadic" `Quick test_nondyadic;
         Alcotest.test_case "heterogeneous" `Quick test_heterogeneous;
         Alcotest.test_case "training suite" `Slow test_training_suite ]);
    ]
