(* Tests for the Mp_util.Parallel domain pool and the determinism
   contract of Machine.run_batch: pooled, memoized evaluation must be
   bit-identical to serial Machine.run. *)

open Mp_codegen
open Mp_sim

(* ----- pool ----------------------------------------------------------------- *)

let test_map_order () =
  let pool = Mp_util.Parallel.create 4 in
  let xs = List.init 100 Fun.id in
  let r = Mp_util.Parallel.map pool (fun x -> x * x) xs in
  Mp_util.Parallel.shutdown pool;
  Alcotest.(check (list int)) "order preserved" (List.map (fun x -> x * x) xs) r

let test_map_chunked () =
  let pool = Mp_util.Parallel.create 3 in
  let xs = List.init 50 Fun.id in
  let r = Mp_util.Parallel.map_chunked ~chunk:7 pool (fun x -> x + 1) xs in
  Mp_util.Parallel.shutdown pool;
  Alcotest.(check (list int)) "chunked order" (List.map (( + ) 1) xs) r

let test_auto_chunk () =
  (* ceiling division toward ~8 chunks per worker; always >= 1 *)
  Alcotest.(check int) "tiny input" 1
    (Mp_util.Parallel.auto_chunk ~jobs:3 ~workers:4);
  Alcotest.(check int) "empty input" 1
    (Mp_util.Parallel.auto_chunk ~jobs:0 ~workers:4);
  Alcotest.(check int) "exact fit" 1
    (Mp_util.Parallel.auto_chunk ~jobs:32 ~workers:4);
  Alcotest.(check int) "one past the target rounds up" 2
    (Mp_util.Parallel.auto_chunk ~jobs:33 ~workers:4);
  Alcotest.(check int) "large batch" 4
    (Mp_util.Parallel.auto_chunk ~jobs:100 ~workers:4);
  (* the chunk count the size implies never exceeds ~8 per worker *)
  List.iter
    (fun (jobs, workers) ->
      let c = Mp_util.Parallel.auto_chunk ~jobs ~workers in
      Alcotest.(check bool) "chunk >= 1" true (c >= 1);
      let n_chunks = (jobs + c - 1) / c in
      Alcotest.(check bool) "at most 8 chunks per worker" true
        (n_chunks <= 8 * workers))
    [ (1, 1); (7, 3); (64, 4); (1000, 8); (12345, 6) ];
  (* the auto-tuned default still preserves order *)
  let pool = Mp_util.Parallel.create 3 in
  let xs = List.init 200 Fun.id in
  let r = Mp_util.Parallel.map_chunked pool (fun x -> x * 2) xs in
  Mp_util.Parallel.shutdown pool;
  Alcotest.(check (list int)) "auto-chunked order"
    (List.map (fun x -> x * 2) xs) r

let test_map_empty_and_size_one () =
  let pool = Mp_util.Parallel.create 1 in
  Alcotest.(check (list int)) "empty" []
    (Mp_util.Parallel.map pool (fun x -> x) []);
  Alcotest.(check (list int)) "size-1 pool is sequential" [ 2; 4 ]
    (Mp_util.Parallel.map pool (fun x -> 2 * x) [ 1; 2 ]);
  Mp_util.Parallel.shutdown pool

let test_cost_hint_preserves_order () =
  (* heavily skewed costs + a cost hint: execution is reordered
     (heaviest first, dealt across deques, tails stolen) but the result
     must still read exactly like List.map *)
  let pool = Mp_util.Parallel.create 4 in
  let xs = List.init 60 Fun.id in
  let cost x = float_of_int (if x mod 7 = 0 then 100 * x else 1) in
  let f x =
    (* skewed wall-clock too, so stealing actually happens *)
    if x mod 7 = 0 then Unix.sleepf 0.002;
    x * 3
  in
  let r = Mp_util.Parallel.map ~cost pool f xs in
  Alcotest.(check (list int)) "cost-hinted order" (List.map f xs) r;
  (* same with chunking: a chunk's cost is the sum of its members' *)
  let rc = Mp_util.Parallel.map_chunked ~chunk:5 ~cost pool (fun x -> x + 1) xs in
  Alcotest.(check (list int)) "chunked cost-hinted order"
    (List.map (( + ) 1) xs) rc;
  Mp_util.Parallel.shutdown pool

exception Boom of int

let test_exception_propagation () =
  let pool = Mp_util.Parallel.create 4 in
  let raised =
    try
      ignore
        (Mp_util.Parallel.map pool
           (fun x -> if x mod 2 = 0 then raise (Boom x) else x)
           (List.init 10 Fun.id));
      None
    with Boom n -> Some n
  in
  (* the lowest-indexed failure wins, deterministically *)
  Alcotest.(check (option int)) "lowest failure" (Some 0) raised;
  (* and the pool survives a failed batch *)
  Alcotest.(check (list int)) "pool alive after failure" [ 2; 3; 4 ]
    (Mp_util.Parallel.map pool (( + ) 1) [ 1; 2; 3 ]);
  Mp_util.Parallel.shutdown pool

let test_exception_in_stolen_task () =
  (* job 0 is the slowest and fails last in wall-clock terms; the other
     failing jobs are dealt to (and stolen across) other workers and
     fail first — the reported exception must still be job 0's, so
     failure propagation is deterministic under stealing *)
  let pool = Mp_util.Parallel.create 4 in
  let raised =
    try
      ignore
        (Mp_util.Parallel.map
           ~cost:(fun x -> float_of_int (100 - x))
           pool
           (fun x ->
             if x = 0 then Unix.sleepf 0.02;
             raise (Boom x))
           (List.init 12 Fun.id));
      None
    with Boom n -> Some n
  in
  Alcotest.(check (option int)) "job 0's exception wins" (Some 0) raised;
  Alcotest.(check (list int)) "pool alive after failure" [ 2; 3 ]
    (Mp_util.Parallel.map pool (( + ) 1) [ 1; 2 ]);
  Mp_util.Parallel.shutdown pool

let test_steal_counter () =
  (* a size-1 pool runs sequentially: nothing to steal *)
  let p1 = Mp_util.Parallel.create 1 in
  ignore (Mp_util.Parallel.map p1 (fun x -> x) (List.init 10 Fun.id));
  Alcotest.(check int) "sequential pool never steals" 0
    (Mp_util.Parallel.steal_count p1);
  Mp_util.Parallel.shutdown p1;
  (* the counter is monotone and the skewed batch's results are intact
     whatever the workers stole *)
  let p4 = Mp_util.Parallel.create 4 in
  let before = Mp_util.Parallel.steal_count p4 in
  let r =
    Mp_util.Parallel.map p4
      (fun x ->
        if x mod 4 = 0 then Unix.sleepf 0.004;
        x)
      (List.init 32 Fun.id)
  in
  Alcotest.(check (list int)) "results intact" (List.init 32 Fun.id) r;
  Alcotest.(check bool) "monotone" true
    (Mp_util.Parallel.steal_count p4 >= before);
  Mp_util.Parallel.shutdown p4

let test_nested_map_degrades () =
  (* a map issued from inside a worker must degrade to sequential
     execution instead of deadlocking on the pool's own queue *)
  let pool = Mp_util.Parallel.create 2 in
  let r =
    Mp_util.Parallel.map pool
      (fun x ->
        Alcotest.(check bool) "inside worker" true (Mp_util.Parallel.in_worker ());
        Mp_util.Parallel.map pool (fun y -> x * y) [ 1; 2; 3 ])
      [ 1; 2 ]
  in
  Mp_util.Parallel.shutdown pool;
  Alcotest.(check (list (list int))) "nested results"
    [ [ 1; 2; 3 ]; [ 2; 4; 6 ] ]
    r

let test_default_size_env () =
  Unix.putenv "MP_POOL_SIZE" "3";
  (* an explicit pin is honoured verbatim, even past the core count *)
  Alcotest.(check int) "env override" 3 (Mp_util.Parallel.default_size ());
  Alcotest.(check int) "requested follows env" 3
    (Mp_util.Parallel.requested_size ());
  Unix.putenv "MP_POOL_SIZE" "not-a-number";
  Alcotest.(check bool) "garbage ignored" true
    (Mp_util.Parallel.default_size () >= 1);
  Unix.putenv "MP_POOL_SIZE" "";
  (* without a pin the effective size never exceeds the detected core
     count — a default pool must not oversubscribe a small machine *)
  let cores = Mp_util.Parallel.detected_cores () in
  Alcotest.(check bool) "cores detected" true (cores >= 1);
  Alcotest.(check int) "requested = cores" cores
    (Mp_util.Parallel.requested_size ());
  Alcotest.(check bool) "capped at cores" true
    (Mp_util.Parallel.default_size () <= cores)

(* ----- adaptive fan-out ----------------------------------------------------- *)

let test_effective_width () =
  let w = Mp_util.Parallel.effective_width in
  Alcotest.(check (float 1e-9)) "no hint: width = jobs" 5.
    (w None [| 1; 2; 3; 4; 5 |]);
  (* one dominant job: total/max ~ 1 — no schedule beats serial *)
  Alcotest.(check (float 1e-9)) "dominated batch" 1.002
    (w (Some float_of_int) [| 1000; 1; 1 |]);
  (* uniform costs: width = job count, capped by it *)
  Alcotest.(check (float 1e-9)) "uniform batch" 4.
    (w (Some (fun _ -> 3.)) [| 0; 0; 0; 0 |]);
  (* degenerate costs fall back to the job count *)
  Alcotest.(check (float 1e-9)) "all-zero costs" 3.
    (w (Some (fun _ -> 0.)) [| 1; 2; 3 |])

let test_worthwhile () =
  let w = Mp_util.Parallel.worthwhile in
  Alcotest.(check bool) "size-1 pool never fans out" false
    (w ~size:1 ~jobs:100 ~width:100. ~min_jobs_per_core:0.);
  Alcotest.(check bool) "a single job never fans out" false
    (w ~size:8 ~jobs:1 ~width:1. ~min_jobs_per_core:0.);
  Alcotest.(check bool) "width below 2 never fans out" false
    (w ~size:8 ~jobs:10 ~width:1.5 ~min_jobs_per_core:0.);
  (* a width-6 batch on 8 workers still wins ~6x: the permissive
     default threshold (0.25 jobs/core = width 2 on 8 workers) keeps it
     parallel *)
  Alcotest.(check bool) "moderate width fans out at the default" true
    (w ~size:8 ~jobs:10 ~width:6.
       ~min_jobs_per_core:Mp_util.Parallel.default_min_jobs_per_core);
  Alcotest.(check bool) "a strict threshold rejects the same batch" false
    (w ~size:8 ~jobs:10 ~width:6. ~min_jobs_per_core:1.);
  Alcotest.(check bool) "zero disables the per-core criterion" true
    (w ~size:16 ~jobs:4 ~width:2. ~min_jobs_per_core:0.)

let test_min_jobs_per_core_env () =
  let d = Mp_util.Parallel.default_min_jobs_per_core in
  Unix.putenv "MP_POOL_MIN_JOBS_PER_CORE" "2.5";
  Alcotest.(check (float 1e-9)) "env override" 2.5
    (Mp_util.Parallel.env_min_jobs_per_core ());
  Unix.putenv "MP_POOL_MIN_JOBS_PER_CORE" "0";
  Alcotest.(check (float 1e-9)) "zero accepted" 0.
    (Mp_util.Parallel.env_min_jobs_per_core ());
  Unix.putenv "MP_POOL_MIN_JOBS_PER_CORE" "not-a-number";
  Alcotest.(check (float 1e-9)) "garbage ignored" d
    (Mp_util.Parallel.env_min_jobs_per_core ());
  Unix.putenv "MP_POOL_MIN_JOBS_PER_CORE" "-3";
  Alcotest.(check (float 1e-9)) "negative ignored" d
    (Mp_util.Parallel.env_min_jobs_per_core ());
  Unix.putenv "MP_POOL_MIN_JOBS_PER_CORE" "";
  Alcotest.(check (float 1e-9)) "unset falls back to the default" d
    (Mp_util.Parallel.env_min_jobs_per_core ())

let test_adaptive_fallback_counters () =
  let pool = Mp_util.Parallel.create 4 in
  (* a dominated batch (width ~1) runs sequentially in the caller *)
  let sf0 = Mp_util.Parallel.serial_fallbacks pool in
  let pb0 = Mp_util.Parallel.parallel_batches pool in
  let r =
    Mp_util.Parallel.map
      ~cost:(fun x -> if x = 0 then 1000. else 1.)
      pool (( + ) 1) [ 0; 1; 2 ]
  in
  Alcotest.(check (list int)) "fallback results intact" [ 1; 2; 3 ] r;
  Alcotest.(check int) "counted as a serial fallback" (sf0 + 1)
    (Mp_util.Parallel.serial_fallbacks pool);
  Alcotest.(check int) "not counted as parallel" pb0
    (Mp_util.Parallel.parallel_batches pool);
  (* a wide uniform batch fans out *)
  let pb1 = Mp_util.Parallel.parallel_batches pool in
  let xs = List.init 16 Fun.id in
  let r2 = Mp_util.Parallel.map pool (fun x -> 2 * x) xs in
  Alcotest.(check (list int)) "parallel results intact"
    (List.map (fun x -> 2 * x) xs) r2;
  Alcotest.(check int) "counted as parallel" (pb1 + 1)
    (Mp_util.Parallel.parallel_batches pool);
  (* the per-call override forces the same batch serial — bit-identical *)
  let sf1 = Mp_util.Parallel.serial_fallbacks pool in
  let r3 = Mp_util.Parallel.map ~min_jobs_per_core:1000. pool (fun x -> 2 * x) xs in
  Alcotest.(check (list int)) "forced-serial results identical" r2 r3;
  Alcotest.(check int) "override counted as a fallback" (sf1 + 1)
    (Mp_util.Parallel.serial_fallbacks pool);
  (* ... and map_chunked threads the override through *)
  let sf2 = Mp_util.Parallel.serial_fallbacks pool in
  let r4 =
    Mp_util.Parallel.map_chunked ~min_jobs_per_core:1000. pool
      (fun x -> 2 * x) xs
  in
  Alcotest.(check (list int)) "chunked forced-serial identical" r2 r4;
  Alcotest.(check bool) "chunked override counted" true
    (Mp_util.Parallel.serial_fallbacks pool > sf2);
  Mp_util.Parallel.shutdown pool;
  (* a size-1 pool books every multi-job batch as a fallback *)
  let p1 = Mp_util.Parallel.create 1 in
  let sf = Mp_util.Parallel.serial_fallbacks p1 in
  ignore (Mp_util.Parallel.map p1 Fun.id [ 1; 2; 3 ]);
  Alcotest.(check int) "size-1 pool counts fallbacks" (sf + 1)
    (Mp_util.Parallel.serial_fallbacks p1);
  Alcotest.(check int) "size-1 pool never parallel" 0
    (Mp_util.Parallel.parallel_batches p1);
  Mp_util.Parallel.shutdown p1

(* ----- run_batch determinism ------------------------------------------------ *)

let l1 = [ (Mp_uarch.Cache_geometry.L1, 1.0) ]

let mono a mnemonic =
  let ins = Arch.find_instruction a mnemonic in
  let synth = Synthesizer.create ~name:("par-" ^ mnemonic) a in
  Synthesizer.add_pass synth (Passes.skeleton ~size:256);
  Synthesizer.add_pass synth (Passes.fill_sequence [ ins ]);
  if Mp_isa.Instruction.is_memory ins then
    Synthesizer.add_pass synth (Passes.memory_model l1);
  Synthesizer.add_pass synth (Passes.dependency Builder.No_deps);
  Synthesizer.synthesize ~seed:77 synth

let mixed_jobs a =
  let progs = List.map (mono a) [ "mullw"; "lwz"; "xvmaddadp" ] in
  let configs =
    [ Mp_uarch.Uarch_def.config ~cores:1 ~smt:1 a.Arch.uarch;
      Mp_uarch.Uarch_def.config ~cores:4 ~smt:2 a.Arch.uarch ]
  in
  let jobs =
    List.concat_map (fun c -> List.map (fun p -> (c, p)) progs) configs
  in
  (* duplicates exercise the measurement cache on the batch side *)
  jobs @ [ List.hd jobs; List.nth jobs 3 ]

let check_identical msg serial batch =
  Alcotest.(check int) (msg ^ ": same length") (List.length serial)
    (List.length batch);
  List.iter2
    (fun (s : Measurement.t) (b : Measurement.t) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: %s bit-identical" msg s.Measurement.program)
        true
        (compare s b = 0))
    serial batch

let test_run_batch_matches_serial () =
  let a = Arch.power7 () in
  let jobs = mixed_jobs a in
  (* serial reference: caching off, plain Machine.run, job at a time *)
  let serial_machine = Machine.create ~cache:false a.Arch.uarch in
  let serial = List.map (fun (c, p) -> Machine.run serial_machine c p) jobs in
  (* pooled run with the cache on, forced multi-domain pool *)
  let batch_machine = Machine.create a.Arch.uarch in
  let pool = Mp_util.Parallel.create 4 in
  let batch = Machine.run_batch ~pool batch_machine jobs in
  Mp_util.Parallel.shutdown pool;
  check_identical "pool-4 vs serial" serial batch;
  (* and a second pass over the same machine: all cache hits *)
  let again = Machine.run_batch batch_machine jobs in
  check_identical "cache hits vs serial" serial again;
  match Machine.measurement_cache batch_machine with
  | None -> Alcotest.fail "expected a cache on the batch machine"
  | Some c ->
    let s = Measurement_cache.stats c in
    Alcotest.(check bool) "hits recorded" true
      (s.Measurement_cache.hits > 0)

let test_run_batch_pool_size_one () =
  let a = Arch.power7 () in
  let jobs = mixed_jobs a in
  let m1 = Machine.create ~cache:false a.Arch.uarch in
  let serial = List.map (fun (c, p) -> Machine.run m1 c p) jobs in
  let m2 = Machine.create ~cache:false a.Arch.uarch in
  let pool = Mp_util.Parallel.create 1 in
  let batch = Machine.run_batch ~pool m2 jobs in
  Mp_util.Parallel.shutdown pool;
  check_identical "pool-1 vs serial" serial batch

(* ----- process pool (transport) --------------------------------------------- *)

(* /bin/cat echoes bytes verbatim and the framing is symmetric, so a
   cat worker is a perfect protocol loopback for the transport layer. *)
let cat_pool n = Mp_util.Procpool.create ~prog:"/bin/cat" ~args:[] n

let test_procpool_echo () =
  let p = cat_pool 2 in
  let payload = Bytes.of_string "hello frames" in
  Alcotest.(check bool) "send 0" true (Mp_util.Procpool.send p 0 payload);
  Alcotest.(check bool) "send 1" true (Mp_util.Procpool.send p 1 payload);
  (match Mp_util.Procpool.recv ~timeout_s:10.0 p 0 with
   | Some b ->
     Alcotest.(check string) "echo 0" "hello frames" (Bytes.to_string b)
   | None -> Alcotest.fail "worker 0 did not echo");
  (match Mp_util.Procpool.recv ~timeout_s:10.0 p 1 with
   | Some b ->
     Alcotest.(check string) "echo 1" "hello frames" (Bytes.to_string b)
   | None -> Alcotest.fail "worker 1 did not echo");
  Mp_util.Procpool.shutdown p

let test_procpool_timeout_respawn () =
  let p = cat_pool 1 in
  let r0 = Mp_util.Procpool.respawn_count () in
  (* nothing was sent: a bounded recv must time out and reap the slot *)
  Alcotest.(check bool) "timeout recv" true
    (Mp_util.Procpool.recv ~timeout_s:0.2 p 0 = None);
  Alcotest.(check bool) "slot reaped" true (Mp_util.Procpool.pid p 0 = None);
  (* the next send respawns transparently and the exchange works again *)
  let payload = Bytes.of_string "back" in
  Alcotest.(check bool) "send respawns" true
    (Mp_util.Procpool.send p 0 payload);
  Alcotest.(check bool) "respawn counted" true
    (Mp_util.Procpool.respawn_count () > r0);
  (match Mp_util.Procpool.recv ~timeout_s:10.0 p 0 with
   | Some b ->
     Alcotest.(check string) "echo after respawn" "back" (Bytes.to_string b)
   | None -> Alcotest.fail "respawned worker did not echo");
  Mp_util.Procpool.shutdown p

let test_procpool_truncated_frame () =
  let p = cat_pool 1 in
  (* a header promising 64 bytes followed by only 3 and worker death:
     the reader must fail cleanly, not hang or surface a short frame *)
  let junk = Bytes.create 7 in
  Bytes.set_int32_be junk 0 64l;
  Bytes.blit_string "abc" 0 junk 4 3;
  Alcotest.(check bool) "raw bytes written" true
    (Mp_util.Procpool.send_raw p 0 junk);
  Mp_util.Procpool.kill p 0;
  Alcotest.(check bool) "truncated frame rejected" true
    (Mp_util.Procpool.recv ~timeout_s:10.0 p 0 = None);
  Alcotest.(check bool) "slot reaped after kill" true
    (Mp_util.Procpool.pid p 0 = None);
  Mp_util.Procpool.shutdown p

let test_procpool_ensure_size () =
  let p = cat_pool 1 in
  let r0 = Mp_util.Procpool.respawn_count () in
  Mp_util.Procpool.ensure_size p 3;
  Alcotest.(check int) "grown" 3 (Mp_util.Procpool.size p);
  let payload = Bytes.of_string "new slot" in
  Alcotest.(check bool) "lazy spawn on send" true
    (Mp_util.Procpool.send p 2 payload);
  (match Mp_util.Procpool.recv ~timeout_s:10.0 p 2 with
   | Some b -> Alcotest.(check string) "echo" "new slot" (Bytes.to_string b)
   | None -> Alcotest.fail "grown slot did not echo");
  Alcotest.(check int) "lazy spawn is not a respawn" r0
    (Mp_util.Procpool.respawn_count ());
  Mp_util.Procpool.shutdown p

(* ----- multi-process run_batch ---------------------------------------------- *)

(* The shard workers are re-execs of this very test binary (Machine's
   module initializer turns a flagged process into a frame loop), so
   these tests exercise the full self-exec protocol end to end. *)

let test_run_batch_procs_matches_serial () =
  let a = Arch.power7 () in
  let jobs = mixed_jobs a in
  let m1 = Machine.create ~cache:false a.Arch.uarch in
  let serial = List.map (fun (c, p) -> Machine.run m1 c p) jobs in
  let rec0 = Machine.jobs_recovered () in
  (* one worker subprocess, then two: both must be bit-identical *)
  let m2 = Machine.create ~cache:false a.Arch.uarch in
  check_identical "procs-1 vs serial" serial
    (Machine.run_batch ~procs:1 m2 jobs);
  let m3 = Machine.create ~cache:false a.Arch.uarch in
  check_identical "procs-2 vs serial" serial
    (Machine.run_batch ~procs:2 m3 jobs);
  Alcotest.(check int) "no recoveries in a healthy run" rec0
    (Machine.jobs_recovered ());
  Alcotest.(check bool) "shared pool live" true
    (Mp_sim.Shard_exec.global_size () >= 2)

let test_run_batch_worker_crash_recovers () =
  let a = Arch.power7 () in
  let jobs = mixed_jobs a in
  let m1 = Machine.create ~cache:false a.Arch.uarch in
  let serial = List.map (fun (c, p) -> Machine.run m1 c p) jobs in
  match Mp_sim.Shard_exec.get_pool 2 with
  | None -> Alcotest.fail "could not create the shared shard pool"
  | Some p ->
    let rec0 = Machine.jobs_recovered () in
    (* kill every worker mid-pool, exactly like a crash: each shard's
       exchange fails and every job must be recovered in-process *)
    Mp_util.Procpool.kill (Mp_sim.Shard_exec.procpool p) 0;
    Mp_util.Procpool.kill (Mp_sim.Shard_exec.procpool p) 1;
    let m2 = Machine.create ~cache:false a.Arch.uarch in
    let batch = Machine.run_batch ~procs:2 m2 jobs in
    check_identical "crashed workers vs serial" serial batch;
    Alcotest.(check bool) "recoveries counted" true
      (Machine.jobs_recovered () > rec0);
    (* the next dispatch finds reaped slots and respawns them *)
    let m3 = Machine.create ~cache:false a.Arch.uarch in
    check_identical "respawned pool vs serial" serial
      (Machine.run_batch ~procs:2 m3 jobs)

(* ----- multi-host run_batch -------------------------------------------------- *)

(* Remote workers are re-execs of this test binary serving the shard
   protocol over loopback TCP (MP_NET_WORKER), so these tests exercise
   the socket transport, the namespace handshake and the reconnect
   path end to end against the real executor. *)

let free_port () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with _ -> ())
    (fun () ->
      Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
      match Unix.getsockname fd with
      | Unix.ADDR_INET (_, p) -> p
      | _ -> Alcotest.fail "free_port: unexpected socket address")

let stop_worker pid =
  (try Unix.kill pid Sys.sigterm with _ -> ());
  (try ignore (Unix.waitpid [] pid) with _ -> ())

let test_run_batch_remote_matches_serial () =
  let a = Arch.power7 () in
  let jobs = mixed_jobs a in
  let m1 = Machine.create ~cache:false a.Arch.uarch in
  let serial = List.map (fun (c, p) -> Machine.run m1 c p) jobs in
  let port = free_port () in
  let pid = Mp_sim.Shard_exec.spawn_worker ~port () in
  Fun.protect
    ~finally:(fun () -> stop_worker pid)
    (fun () ->
      let hosts = [ ("127.0.0.1", port) ] in
      let rec0 = Machine.jobs_recovered () in
      let nf0 = Mp_util.Netpool.frames_sent () in
      (* remote-only pool: every fanned job crosses the socket *)
      let m2 = Machine.create ~cache:false a.Arch.uarch in
      check_identical "remote-only vs serial" serial
        (Machine.run_batch ~procs:0 ~hosts m2 jobs);
      Alcotest.(check int) "no recoveries over a healthy peer" rec0
        (Machine.jobs_recovered ());
      Alcotest.(check bool) "request frames crossed the socket" true
        (Mp_util.Netpool.frames_sent () > nf0);
      (* mixed pool: one local subprocess plus the remote peer, same
         placement fold, still bit-identical *)
      let m3 = Machine.create ~cache:false a.Arch.uarch in
      check_identical "mixed local+remote vs serial" serial
        (Machine.run_batch ~procs:1 ~hosts m3 jobs);
      Alcotest.(check int) "no recoveries in the mixed pool" rec0
        (Machine.jobs_recovered ()))

let test_run_batch_remote_crash_recovers () =
  let a = Arch.power7 () in
  let jobs = mixed_jobs a in
  let m1 = Machine.create ~cache:false a.Arch.uarch in
  let serial = List.map (fun (c, p) -> Machine.run m1 c p) jobs in
  let port = free_port () in
  let hosts = [ ("127.0.0.1", port) ] in
  let pid = Mp_sim.Shard_exec.spawn_worker ~port () in
  (* prime the connection so the SIGKILL severs an established peer
     (the hardest variant: the coordinator only learns at recv time) *)
  (match Mp_sim.Shard_exec.get_pool ~hosts 0 with
   | None -> Alcotest.fail "could not create the remote pool"
   | Some p ->
     (match Mp_sim.Shard_exec.netpool p with
      | None -> Alcotest.fail "remote pool has no netpool"
      | Some np ->
        Alcotest.(check bool) "peer connected" true
          (Mp_util.Netpool.connect ~retry_for_s:5.0 np 0)));
  Unix.kill pid Sys.sigkill;
  ignore (Unix.waitpid [] pid);
  let rec0 = Machine.jobs_recovered () in
  let m2 = Machine.create ~cache:false a.Arch.uarch in
  check_identical "dead peer vs serial" serial
    (Machine.run_batch ~procs:0 ~hosts m2 jobs);
  Alcotest.(check bool) "lost jobs recovered in-process" true
    (Machine.jobs_recovered () > rec0);
  (* a fresh worker on the same port: the next batch reconnects the
     reaped slot transparently and loses nothing *)
  let pid2 = Mp_sim.Shard_exec.spawn_worker ~port () in
  Fun.protect
    ~finally:(fun () -> stop_worker pid2)
    (fun () ->
      let rc0 = Mp_util.Netpool.reconnect_count () in
      let rec1 = Machine.jobs_recovered () in
      let m3 = Machine.create ~cache:false a.Arch.uarch in
      check_identical "reconnected peer vs serial" serial
        (Machine.run_batch ~procs:0 ~hosts m3 jobs);
      Alcotest.(check int) "no recoveries after reconnect" rec1
        (Machine.jobs_recovered ());
      Alcotest.(check bool) "reconnect counted" true
        (Mp_util.Netpool.reconnect_count () > rc0))

(* ----- dynamic shard scheduler ----------------------------------------------- *)

let test_sched_knob_env () =
  let sched s = Unix.putenv "MP_SHARD_SCHED" s; Shard_exec.env_sched () in
  Alcotest.(check bool) "static selected" true (sched "static" = Shard_exec.Static);
  Alcotest.(check bool) "case/space tolerant" true
    (sched "  Static " = Shard_exec.Static);
  Alcotest.(check bool) "dynamic selected" true (sched "dynamic" = Shard_exec.Dynamic);
  Alcotest.(check bool) "garbage means dynamic" true
    (sched "one-frame-per-slot" = Shard_exec.Dynamic);
  Alcotest.(check bool) "unset means dynamic" true (sched "" = Shard_exec.Dynamic);
  let inflight s = Unix.putenv "MP_INFLIGHT" s; Shard_exec.env_inflight () in
  Alcotest.(check int) "explicit depth" 4 (inflight "4");
  Alcotest.(check int) "1 disables pipelining" 1 (inflight "1");
  Alcotest.(check int) "clamped above" 64 (inflight "1000");
  Alcotest.(check int) "zero falls back" Shard_exec.default_inflight (inflight "0");
  Alcotest.(check int) "garbage falls back" Shard_exec.default_inflight
    (inflight "deep");
  Alcotest.(check int) "unset is the default" Shard_exec.default_inflight
    (inflight "");
  let spec s = Unix.putenv "MP_SPECULATE" s; Shard_exec.env_speculate () in
  Alcotest.(check bool) "off" true (spec "off" = Shard_exec.Spec_off);
  Alcotest.(check bool) "0 is off" true (spec "0" = Shard_exec.Spec_off);
  Alcotest.(check bool) "false is off" true (spec "FALSE" = Shard_exec.Spec_off);
  Alcotest.(check bool) "force" true (spec "force" = Shard_exec.Spec_force);
  Alcotest.(check bool) "on" true (spec "on" = Shard_exec.Spec_on);
  Alcotest.(check bool) "unset means on" true (spec "" = Shard_exec.Spec_on)

let test_chunk_heuristic () =
  (* each slot's pipeline window refills ~4 times over a balanced batch *)
  Alcotest.(check int) "balanced batch" 4
    (Shard_exec.default_chunk_jobs ~jobs:96 ~slots:3 ~inflight:2);
  Alcotest.(check int) "thin batch floors at 1" 1
    (Shard_exec.default_chunk_jobs ~jobs:5 ~slots:8 ~inflight:2);
  Alcotest.(check int) "empty batch" 1
    (Shard_exec.default_chunk_jobs ~jobs:0 ~slots:2 ~inflight:2);
  Alcotest.(check int) "degenerate pool" 24
    (Shard_exec.default_chunk_jobs ~jobs:96 ~slots:0 ~inflight:0);
  (* the Machine-side helper reads the pipeline depth from MP_INFLIGHT *)
  Unix.putenv "MP_INFLIGHT" "2";
  Alcotest.(check int) "machine helper agrees" 4
    (Machine.shard_chunk_jobs ~jobs:96 ~slots:3);
  Unix.putenv "MP_INFLIGHT" "8";
  Alcotest.(check int) "machine helper tracks the knob" 1
    (Machine.shard_chunk_jobs ~jobs:96 ~slots:3);
  Unix.putenv "MP_INFLIGHT" ""

(* A deliberately skewed batch: one heavy program appearing under four
   configurations — the config-blind placement fold lands all four on
   the same slot — plus three light programs. The width (total/max cost)
   still clears the adaptive fan-out threshold, so the batch genuinely
   dispatches to the worker pool. *)
let sized_prog a ~size ~seed ~name mnemonic =
  let ins = Arch.find_instruction a mnemonic in
  let synth = Synthesizer.create ~name a in
  Synthesizer.add_pass synth (Passes.skeleton ~size);
  Synthesizer.add_pass synth (Passes.fill_sequence [ ins ]);
  Synthesizer.add_pass synth (Passes.dependency Builder.No_deps);
  Synthesizer.synthesize ~seed synth

let skewed_jobs a =
  let heavy = sized_prog a ~size:256 ~seed:11 ~name:"dyn-heavy" "fadd" in
  let light i m = sized_prog a ~size:64 ~seed:(21 + i) ~name:("dyn-light-" ^ m) m in
  let cfg c s = Mp_uarch.Uarch_def.config ~cores:c ~smt:s a.Arch.uarch in
  List.map (fun (c, s) -> (cfg c s, heavy)) [ (2, 4); (4, 2); (8, 1); (4, 4) ]
  @ List.mapi (fun i m -> (cfg 1 1, light i m)) [ "fadd"; "mullw"; "xvmaddadp" ]

let test_dynamic_skewed_matches_serial () =
  let a = Arch.power7 () in
  let jobs = skewed_jobs a in
  let m1 = Machine.create ~cache:false a.Arch.uarch in
  let serial = List.map (fun (c, p) -> Machine.run m1 c p) jobs in
  let rec0 = Machine.jobs_recovered () in
  let m2 = Machine.create ~cache:false a.Arch.uarch in
  check_identical "static vs serial" serial
    (Machine.run_batch ~procs:2 ~shard_sched:Shard_exec.Static m2 jobs);
  Shard_exec.reset_slot_stats ();
  let m3 = Machine.create ~cache:false a.Arch.uarch in
  check_identical "dynamic vs serial" serial
    (Machine.run_batch ~procs:2 ~shard_sched:Shard_exec.Dynamic m3 jobs);
  Alcotest.(check int) "no recoveries in a healthy run" rec0
    (Machine.jobs_recovered ());
  (* per-slot telemetry: both subprocess slots got a row, the
     first-accepted jobs cover the whole batch exactly once, and busy
     time sits inside the batch's wall time *)
  let stats = Shard_exec.slot_stats () in
  Alcotest.(check (list string)) "one row per slot" [ "proc:0"; "proc:1" ]
    (List.map fst stats);
  List.iter
    (fun (label, s) ->
      Alcotest.(check bool) (label ^ ": busy within wall") true
        Shard_exec.(s.sl_busy_s >= 0. && s.sl_busy_s <= s.sl_wall_s +. 1e-9))
    stats;
  Alcotest.(check int) "every job accepted exactly once" (List.length jobs)
    (List.fold_left (fun n (_, s) -> n + s.Shard_exec.sl_jobs) 0 stats)

let test_dynamic_crash_requeues () =
  let a = Arch.power7 () in
  let jobs = skewed_jobs a in
  let m1 = Machine.create ~cache:false a.Arch.uarch in
  let serial = List.map (fun (c, p) -> Machine.run m1 c p) jobs in
  match Shard_exec.get_pool 2 with
  | None -> Alcotest.fail "could not create the shared shard pool"
  | Some p ->
    let rec0 = Machine.jobs_recovered () in
    (* SIGKILL one of the two workers: under the dynamic scheduler the
       dead slot's chunks re-enter the shared queue and the surviving
       worker completes them — no coordinator fallback, bit-identical *)
    Mp_util.Procpool.kill (Shard_exec.procpool p) 0;
    let m2 = Machine.create ~cache:false a.Arch.uarch in
    check_identical "one dead worker vs serial" serial
      (Machine.run_batch ~procs:2 ~shard_sched:Shard_exec.Dynamic m2 jobs);
    Alcotest.(check int) "requeue absorbed the loss in-pool" rec0
      (Machine.jobs_recovered ());
    (* the next dispatch respawns the reaped slot transparently *)
    let m3 = Machine.create ~cache:false a.Arch.uarch in
    check_identical "respawned pool vs serial" serial
      (Machine.run_batch ~procs:2 ~shard_sched:Shard_exec.Dynamic m3 jobs)

let test_speculate_force_first_result_wins () =
  let a = Arch.power7 () in
  let jobs = skewed_jobs a in
  let m1 = Machine.create ~cache:false a.Arch.uarch in
  let serial = List.map (fun (c, p) -> Machine.run m1 c p) jobs in
  Unix.putenv "MP_SPECULATE" "force";
  Fun.protect
    ~finally:(fun () -> Unix.putenv "MP_SPECULATE" "")
    (fun () ->
      (* Spec_force duplicates eagerly, so some chunk completes twice:
         the merge must keep the first result and discard the duplicate
         (counted as cancelled), still bit-identical to serial. The
         exact duplicate count is timing-dependent, so retry the batch
         a few times for a run where a duplicate actually landed. *)
      let rec attempt tries =
        let s0 = Shard_exec.chunks_speculated () in
        let c0 = Shard_exec.chunks_cancelled () in
        let m2 = Machine.create ~cache:false a.Arch.uarch in
        check_identical "speculated vs serial" serial
          (Machine.run_batch ~procs:2 ~shard_sched:Shard_exec.Dynamic m2 jobs);
        if Shard_exec.chunks_cancelled () > c0 then
          Alcotest.(check bool) "duplicates were dispatched" true
            (Shard_exec.chunks_speculated () > s0)
        else if tries > 1 then attempt (tries - 1)
        else Alcotest.fail "no duplicate completion in five attempts"
      in
      attempt 5)

let () =
  Alcotest.run "mp_parallel"
    [
      ("pool",
       [ Alcotest.test_case "map order" `Quick test_map_order;
         Alcotest.test_case "map chunked" `Quick test_map_chunked;
         Alcotest.test_case "auto chunk" `Quick test_auto_chunk;
         Alcotest.test_case "empty and size one" `Quick
           test_map_empty_and_size_one;
         Alcotest.test_case "cost hint preserves order" `Quick
           test_cost_hint_preserves_order;
         Alcotest.test_case "exception propagation" `Quick
           test_exception_propagation;
         Alcotest.test_case "exception in stolen task" `Quick
           test_exception_in_stolen_task;
         Alcotest.test_case "steal counter" `Quick test_steal_counter;
         Alcotest.test_case "nested map degrades" `Quick
           test_nested_map_degrades;
         Alcotest.test_case "MP_POOL_SIZE" `Quick test_default_size_env ]);
      ("adaptive fan-out",
       [ Alcotest.test_case "effective width" `Quick test_effective_width;
         Alcotest.test_case "worthwhile predicate" `Quick test_worthwhile;
         Alcotest.test_case "MP_POOL_MIN_JOBS_PER_CORE" `Quick
           test_min_jobs_per_core_env;
         Alcotest.test_case "fallback counters" `Quick
           test_adaptive_fallback_counters ]);
      ("run_batch",
       [ Alcotest.test_case "bit-identical vs serial" `Quick
           test_run_batch_matches_serial;
         Alcotest.test_case "pool of one" `Quick
           test_run_batch_pool_size_one ]);
      ("procpool",
       [ Alcotest.test_case "echo round-trip" `Quick test_procpool_echo;
         Alcotest.test_case "timeout reaps, send respawns" `Quick
           test_procpool_timeout_respawn;
         Alcotest.test_case "truncated frame" `Quick
           test_procpool_truncated_frame;
         Alcotest.test_case "ensure_size lazy spawn" `Quick
           test_procpool_ensure_size ]);
      ("multi-process",
       [ Alcotest.test_case "procs bit-identical vs serial" `Quick
           test_run_batch_procs_matches_serial;
         Alcotest.test_case "worker crash recovers" `Quick
           test_run_batch_worker_crash_recovers ]);
      ("multi-host",
       [ Alcotest.test_case "remote bit-identical vs serial" `Quick
           test_run_batch_remote_matches_serial;
         Alcotest.test_case "remote crash recovers + reconnects" `Quick
           test_run_batch_remote_crash_recovers ]);
      ("dynamic scheduler",
       [ Alcotest.test_case "MP_SHARD_SCHED / MP_INFLIGHT / MP_SPECULATE"
           `Quick test_sched_knob_env;
         Alcotest.test_case "chunk-size heuristic" `Quick test_chunk_heuristic;
         Alcotest.test_case "skewed batch bit-identical (static+dynamic)"
           `Quick test_dynamic_skewed_matches_serial;
         Alcotest.test_case "SIGKILL mid-batch requeues in-pool" `Quick
           test_dynamic_crash_requeues;
         Alcotest.test_case "forced speculation: first result wins" `Quick
           test_speculate_force_first_result_wins ]);
    ]
