(** The analytical set-associative cache model (paper Section 2.1.3).

    The model statically guarantees the data-source level of every load
    in an endless loop, with no design-space exploration:

    - a memory access is guaranteed to {e hit} level [L] in steady
      state when the loop cyclically touches more than [associativity]
      lines that share a set at every level above [L], while mapping to
      at most [associativity] lines per set at [L];
    - accesses of different target levels are kept from interfering by
      assigning them {e disjoint} L1 set indices (because each level's
      set field extends the previous one's — Figure 3b — disjoint L1
      sets imply disjoint sets at every level).

    Streams are randomised (line order and phase) to minimise hardware
    prefetcher interference, as prescribed by the paper. *)

type level = Mp_uarch.Cache_geometry.level

type stream = {
  target : level;
  addresses : int array;
  (** the cyclic address sequence one load instruction walks *)
}

type t
(** A memory plan: a requested distribution over hierarchy levels bound
    to a concrete disjoint-set layout. *)

val create :
  uarch:Mp_uarch.Uarch_def.t ->
  ?partition:int * int ->
  distribution:(level * float) list ->
  unit ->
  t
(** [create ~uarch ~distribution ()] builds a plan. [distribution]
    weights must be non-negative and sum to a positive value (they are
    normalised). [partition = (thread, n_threads)] carves the L1 set
    space so that hardware threads sharing a cache do not disturb each
    other's guarantees; default [(0, 1)]. Raises [Invalid_argument] if
    the L1 set space is too small for the requested partition. *)

val distribution : t -> (level * float) list
(** The normalised request, including zero-weight levels. *)

val sample_level : t -> Mp_util.Rng.t -> level
(** Draw a target level according to the distribution. *)

val stream : t -> Mp_util.Rng.t -> level -> stream
(** A fresh randomised cyclic stream guaranteed to be sourced from
    [level]. Distinct calls share the plan's line pools (so a loop with
    many loads stays within the guaranteed working set) but receive
    independent phases/orders. *)

val coordinated_streams :
  t -> Mp_util.Rng.t -> targets:level array -> stream array
(** [coordinated_streams plan rng ~targets] builds one stream per
    memory instruction of a loop body (given in body order) such that,
    per level, the {e interleaved} runtime access sequence walks the
    level's pool in one global cyclic rotation. This is what makes the
    steady-state guarantee hold when several instructions target the
    same level: every re-access of a line is separated by the whole
    pool, so levels above the target always miss and the target always
    hits. The rotation order is shuffled once (per plan instantiation)
    to defeat stride prefetchers. *)

val streams_for_loop :
  t -> Mp_util.Rng.t -> n:int -> stream array
(** [streams_for_loop plan rng ~n] returns one stream per memory
    instruction such that the instruction-count split matches the
    plan's distribution as closely as rounding allows (largest-
    remainder apportionment), in randomised order. *)

val sequential_stream :
  uarch:Mp_uarch.Uarch_def.t ->
  target:level ->
  stride_lines:int ->
  stream
(** A deterministic STREAM-like walk for bandwidth sweeps, independent
    of any plan: addresses ascend by [stride_lines] cache lines and the
    number of distinct lines is sized from the hierarchy (half the
    target's capacity for [L1]; twice the capacity of the level above
    for deeper targets, so at unit stride the walk thrashes every level
    above the target and hits the target itself). Unlike {!stream}
    nothing is randomised — the hardware-prefetcher-friendly ordering
    is the point of the sweep. Larger strides concentrate the walk into
    fewer sets, dragging the source level deeper: the roofline curve a
    stride sweep is meant to trace. *)

val pool_lines : t -> level -> int array
(** The line addresses backing a level's pool (for inspection/tests). *)

val footprint_bytes : t -> int
(** Total bytes touched by all pools. *)
