lib/workloads/extreme.ml: Arch Builder Ir List Mp_codegen Mp_uarch Passes Synthesizer
