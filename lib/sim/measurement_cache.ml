open Mp_uarch
open Mp_codegen

(* ----- disk persistence -------------------------------------------------- *)

(* Bump when the on-disk entry layout or the key derivation changes.
   Simulator-behaviour changes are handled automatically: the namespace
   digests the running executable, so entries written by a different
   build are invisible (and pruned) rather than silently reused.
   v2: occupancies became exact rationals (fixed-point simulator
   arithmetic) and seed-independent measurements drop the seed from the
   key.
   v3: keys are structural-hash folds (not Marshal+MD5 digests) and
   entries live in two-hex-digit shard subdirectories. *)
let schema_version = 3

type disk = { dir : string; namespace : string }

(* Fingerprint of the running build: entries are only valid for the
   binary that produced them, because any change to the simulator or
   the energy table changes what a key's measurement should be. *)
let binary_stamp =
  lazy
    (try Digest.to_hex (Digest.file Sys.executable_name)
     with _ -> Digest.to_hex (Digest.string Sys.executable_name))

let namespace () =
  Printf.sprintf "v%d-%s" schema_version (Lazy.force binary_stamp)

let cache_enabled () =
  match Sys.getenv_opt "MP_CACHE" with
  | Some v ->
    not
      (List.mem (String.lowercase_ascii (String.trim v))
         [ "off"; "0"; "false"; "no" ])
  | None -> true

let env_dir () =
  match Sys.getenv_opt "MP_CACHE_DIR" with
  | Some d when String.trim d <> "" -> String.trim d
  | _ -> "_mp_cache"

let env_disk () =
  if cache_enabled () then Some { dir = env_dir (); namespace = namespace () }
  else None

(* Entries shard into subdirectories named by the first two hex digits
   of the key, so a very large cache never accumulates one enormous
   flat directory (readdir/gc stay fast). The flat layout earlier
   versions wrote is still read — and migrated into its shard — by
   [disk_read]. *)
let shard_of key = if String.length key >= 2 then String.sub key 0 2 else "00"

let entry_name disk key = disk.namespace ^ "-" ^ key

let shard_dir disk key = Filename.concat disk.dir (shard_of key)

let entry_path disk key = Filename.concat (shard_dir disk key) (entry_name disk key)

(* where the pre-shard flat layout would have put this entry *)
let legacy_path disk key = Filename.concat disk.dir (entry_name disk key)

let is_dir path = match Sys.is_directory path with d -> d | exception _ -> false

(* a shard subdirectory is exactly two hex digits *)
let is_shard_name f =
  String.length f = 2
  && String.for_all
       (fun c -> (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))
       f

(* Drop entries left behind by other builds — at most once per
   directory per process, best-effort. *)
let pruned_dirs : (string, unit) Hashtbl.t = Hashtbl.create 4
let pruned_lock = Mutex.create ()

let prune_dir_files dir namespace =
  match Sys.readdir dir with
  | exception _ -> ()
  | fs ->
    Array.iter
      (fun f ->
        let path = Filename.concat dir f in
        if not (is_dir path) then begin
          let keep =
            String.length f > String.length namespace
            && String.sub f 0 (String.length namespace) = namespace
          in
          if not keep then try Sys.remove path with _ -> ()
        end)
      fs

let prune_stale disk =
  Mutex.lock pruned_lock;
  let fresh = not (Hashtbl.mem pruned_dirs disk.dir) in
  if fresh then Hashtbl.add pruned_dirs disk.dir ();
  Mutex.unlock pruned_lock;
  if fresh then begin
    (* flat legacy entries in the root, then every shard *)
    prune_dir_files disk.dir disk.namespace;
    match Sys.readdir disk.dir with
    | exception _ -> ()
    | fs ->
      Array.iter
        (fun f ->
          let sub = Filename.concat disk.dir f in
          if is_shard_name f && is_dir sub then
            prune_dir_files sub disk.namespace)
        fs
  end

(* ----- housekeeping ------------------------------------------------------ *)

(* A cache directory grows without bound: the current build's entries
   accumulate across runs and every rebuild starts a fresh namespace.
   [gc] bounds it by total size, evicting in oldest-mtime order (a
   cheap LRU proxy: [find] never touches mtime, so "oldest" means
   "written longest ago", which across builds and long campaigns is the
   entry least likely to be asked for again). In-flight writes —
   [.tmp.*] files, which [disk_write] renames into place when complete
   — are never touched. *)

type gc_stats = {
  entries : int;
  removed : int;
  bytes_before : int;
  bytes_after : int;
}

let is_tmp f = String.length f >= 5 && String.sub f 0 5 = ".tmp."

let env_max_bytes () =
  match Sys.getenv_opt "MP_CACHE_MAX_MB" with
  | Some s ->
    (match float_of_string_opt (String.trim s) with
     | Some mb when mb > 0.0 -> Some (int_of_float (mb *. 1024.0 *. 1024.0))
     | _ -> None)
  | None -> None

let gc ?max_bytes dir =
  let max_bytes =
    match max_bytes with
    | Some b -> max 0 b
    | None -> (match env_max_bytes () with Some b -> b | None -> max_int)
  in
  let files =
    match Sys.readdir dir with exception _ -> [||] | fs -> fs
  in
  (* entry files in [d], named relative to the cache root for the
     deterministic tie-break *)
  let scan d rel =
    match Sys.readdir d with
    | exception _ -> []
    | fs ->
      Array.to_list fs
      |> List.filter_map (fun f ->
             if is_tmp f then None
             else
               let path = Filename.concat d f in
               let rel = if rel = "" then f else Filename.concat rel f in
               match Unix.stat path with
               | exception _ -> None
               | st when st.Unix.st_kind = Unix.S_REG ->
                 Some (st.Unix.st_mtime, rel, path, st.Unix.st_size)
               | _ -> None)
  in
  let entries =
    scan dir ""
    @ (Array.to_list files
      |> List.concat_map (fun f ->
             if is_shard_name f && is_dir (Filename.concat dir f) then
               scan (Filename.concat dir f) f
             else []))
  in
  (* oldest first; name breaks mtime ties so eviction is deterministic *)
  let entries = List.sort compare entries in
  let bytes_before =
    List.fold_left (fun acc (_, _, _, sz) -> acc + sz) 0 entries
  in
  let total = ref bytes_before in
  let removed = ref 0 in
  List.iter
    (fun (_, _, path, sz) ->
      if !total > max_bytes then
        match Sys.remove path with
        | () ->
          total := !total - sz;
          incr removed
        | exception _ -> ())
    entries;
  {
    entries = List.length entries;
    removed = !removed;
    bytes_before;
    bytes_after = !total;
  }

(* Read-only counterpart to [gc]'s scan, for the `mp-cache stat` CLI:
   how many shard subdirectories, entry files and bytes a directory
   holds. In-flight [.tmp.*] files are excluded, like everywhere
   else. *)
type disk_stats = { ds_shards : int; ds_entries : int; ds_bytes : int }

let disk_stats dir =
  let count d (entries, bytes) =
    match Sys.readdir d with
    | exception _ -> (entries, bytes)
    | fs ->
      Array.fold_left
        (fun (entries, bytes) f ->
          if is_tmp f then (entries, bytes)
          else
            match Unix.stat (Filename.concat d f) with
            | exception _ -> (entries, bytes)
            | st when st.Unix.st_kind = Unix.S_REG ->
              (entries + 1, bytes + st.Unix.st_size)
            | _ -> (entries, bytes))
        (entries, bytes) fs
  in
  let acc = count dir (0, 0) in
  let shards, (entries, bytes) =
    match Sys.readdir dir with
    | exception _ -> (0, acc)
    | fs ->
      Array.fold_left
        (fun (shards, acc) f ->
          let sub = Filename.concat dir f in
          if is_shard_name f && is_dir sub then (shards + 1, count sub acc)
          else (shards, acc))
        (0, acc) fs
  in
  { ds_shards = shards; ds_entries = entries; ds_bytes = bytes }

(* Enforce the MP_CACHE_MAX_MB bound automatically — at most once per
   directory per process, like [prune_stale], so repeated
   [Machine.create] calls don't rescan the directory. *)
let gced_dirs : (string, unit) Hashtbl.t = Hashtbl.create 4

let gc_auto disk =
  match env_max_bytes () with
  | None -> ()
  | Some b ->
    Mutex.lock pruned_lock;
    let fresh = not (Hashtbl.mem gced_dirs disk.dir) in
    if fresh then Hashtbl.add gced_dirs disk.dir ();
    Mutex.unlock pruned_lock;
    if fresh then ignore (gc ~max_bytes:b disk.dir)

let ensure_dir dir = try Unix.mkdir dir 0o755 with _ -> ()

let tmp_counter = Atomic.make 0

(* write-to-temp + rename: readers never observe a partial entry, and
   concurrent writers of the same key are both writing identical bytes.
   The temp lives in the shard directory so the rename stays atomic
   within one directory. *)
let disk_write disk key (m : Measurement.t) =
  try
    ensure_dir disk.dir;
    let shard = shard_dir disk key in
    ensure_dir shard;
    let tmp =
      Filename.concat shard
        (Printf.sprintf ".tmp.%d.%d" (Unix.getpid ())
           (Atomic.fetch_and_add tmp_counter 1))
    in
    let oc = open_out_bin tmp in
    Marshal.to_channel oc (schema_version, key, m) [];
    close_out oc;
    Sys.rename tmp (entry_path disk key)
  with _ -> ()

(* any failure — missing file, truncation, corruption, wrong version —
   is a miss, never an error *)
let read_entry key path : Measurement.t option =
  match open_in_bin path with
  | exception _ -> None
  | ic ->
    let r =
      try
        let (v : int), (k : string), (m : Measurement.t) =
          Marshal.from_channel ic
        in
        if v = schema_version && k = key then Some m else None
      with _ -> None
    in
    close_in_noerr ic;
    r

let disk_read disk key : Measurement.t option =
  match read_entry key (entry_path disk key) with
  | Some m -> Some m
  | None ->
    (* flat legacy layout: serve the entry and migrate it into its
       shard, best-effort (a racing migrator renames identical bytes,
       so either rename winning is fine) *)
    (match read_entry key (legacy_path disk key) with
     | None -> None
     | Some m ->
       (try
          ensure_dir (shard_dir disk key);
          Sys.rename (legacy_path disk key) (entry_path disk key)
        with _ -> ());
       Some m)

(* ----- the cache --------------------------------------------------------- *)

type t = {
  lock : Mutex.t;
  table : (string, Measurement.t) Hashtbl.t;
  pending : (string, unit) Hashtbl.t;  (* keys being computed right now *)
  resolved : Condition.t;  (* signalled when a pending key settles *)
  disk : disk option;
  mutable hits : int;
  mutable misses : int;
  mutable disk_hits : int;
}

type stats = { hits : int; misses : int; disk_hits : int }

let create ?disk () =
  Option.iter prune_stale disk;
  Option.iter gc_auto disk;
  {
    lock = Mutex.create ();
    table = Hashtbl.create 256;
    pending = Hashtbl.create 8;
    resolved = Condition.create ();
    disk;
    hits = 0;
    misses = 0;
    disk_hits = 0;
  }

let persistent t = t.disk <> None

let stats t =
  Mutex.lock t.lock;
  let s = { hits = t.hits; misses = t.misses; disk_hits = t.disk_hits } in
  Mutex.unlock t.lock;
  s

let hit_rate t =
  let s = stats t in
  let total = s.hits + s.misses in
  if total = 0 then 0.0 else float_of_int s.hits /. float_of_int total

let reset_stats t =
  Mutex.lock t.lock;
  t.hits <- 0;
  t.misses <- 0;
  t.disk_hits <- 0;
  Mutex.unlock t.lock

let clear t =
  Mutex.lock t.lock;
  Hashtbl.reset t.table;
  t.hits <- 0;
  t.misses <- 0;
  t.disk_hits <- 0;
  Mutex.unlock t.lock

let length t =
  Mutex.lock t.lock;
  let n = Hashtbl.length t.table in
  Mutex.unlock t.lock;
  n

(* ----- fingerprinting --------------------------------------------------- *)

let level_tag = function
  | Cache_geometry.L1 -> '1'
  | Cache_geometry.L2 -> '2'
  | Cache_geometry.L3 -> '3'
  | Cache_geometry.MEM -> 'M'

let add_int buf n =
  Buffer.add_string buf (string_of_int n);
  Buffer.add_char buf ';'

let add_int64 buf n =
  Buffer.add_string buf (Int64.to_string n);
  Buffer.add_char buf ';'

let add_reg buf r =
  Buffer.add_string buf (Reg.to_string r);
  Buffer.add_char buf ','

let add_program buf (p : Ir.t) =
  Buffer.add_string buf p.Ir.name;
  Buffer.add_char buf '\x00';
  Array.iter
    (fun (i : Ir.instr) ->
      Buffer.add_string buf i.Ir.op.Mp_isa.Instruction.mnemonic;
      Buffer.add_char buf '(';
      List.iter (add_reg buf) i.Ir.dests;
      Buffer.add_char buf '<';
      List.iter (add_reg buf) i.Ir.srcs;
      (match i.Ir.imm with
       | Some v ->
         Buffer.add_char buf '#';
         add_int64 buf v
       | None -> ());
      (match i.Ir.mem_target with
       | Some l ->
         Buffer.add_char buf '@';
         Buffer.add_char buf (level_tag l)
       | None -> ());
      (match i.Ir.taken_pattern with
       | Some pat ->
         Buffer.add_char buf '?';
         Array.iter (fun b -> Buffer.add_char buf (if b then 't' else 'f')) pat
       | None -> ());
      Buffer.add_char buf ')')
    p.Ir.body;
  Buffer.add_char buf '|';
  List.iter
    (fun (r, v) ->
      add_reg buf r;
      Buffer.add_char buf '=';
      add_int64 buf v)
    p.Ir.reg_init;
  Buffer.add_char buf '|';
  match p.Ir.memory_distribution with
  | None -> Buffer.add_char buf '-'
  | Some dist ->
    List.iter
      (fun (l, w) ->
        Buffer.add_char buf (level_tag l);
        add_int64 buf (Int64.bits_of_float w))
      dist

let uarch_fingerprint (u : Uarch_def.t) =
  (* everything except [resources], which is a closure (both
     unmarshalable and meaningless as a content key; the instruction
     tables it encodes are versioned by the binary stamp anyway) *)
  let data =
    ( ( u.Uarch_def.name,
        u.Uarch_def.max_cores,
        u.Uarch_def.smt_modes,
        u.Uarch_def.dispatch_width,
        u.Uarch_def.completion_width,
        u.Uarch_def.window ),
      ( u.Uarch_def.pipes,
        u.Uarch_def.caches,
        u.Uarch_def.mem_latency,
        u.Uarch_def.mem_bw_lines_per_cycle,
        u.Uarch_def.freq_ghz,
        u.Uarch_def.unit_area_mm2,
        u.Uarch_def.pmcs,
        u.Uarch_def.occ_den ) )
  in
  Digest.to_hex (Digest.string (Marshal.to_string data []))

(* The original key derivation: serialise everything into a buffer and
   MD5 it. Kept as the reference implementation — [MP_KEY=marshal]
   switches back to it, and the tests assert that the structural path
   below induces the same hit/miss equivalence classes. *)
let key_marshal ?(uarch = "") ?seed ~(config : Uarch_def.config) ~warmup
    ~measure ~name per_thread =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf uarch;
  Buffer.add_char buf ';';
  (* [None]: the measurement is seed-independent — same bytes on any
     machine — so the key is shared across seeds *)
  (match seed with Some s -> add_int buf s | None -> Buffer.add_string buf "-;");
  add_int buf config.Uarch_def.cores;
  add_int buf config.Uarch_def.smt;
  add_int buf warmup;
  add_int buf measure;
  Buffer.add_string buf name;
  Buffer.add_char buf '\x00';
  Array.iter (add_program buf) per_thread;
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* O(1) per program: fold the precomputed structural hashes instead of
   re-serialising every instruction on every lookup. The per-program
   name is hashed inside [struct_hash]; [name] here is the run label,
   which [Machine.run] seeds per-thread RNGs from, so it stays in the
   key. *)
let key_structural ?(uarch = "") ?seed ~(config : Uarch_def.config) ~warmup
    ~measure ~name per_thread =
  let module F = Mp_util.Fnv in
  let h = F.string F.seed uarch in
  let h =
    match seed with None -> F.byte h 0 | Some s -> F.int (F.byte h 1) s
  in
  let h = F.int h config.Uarch_def.cores in
  let h = F.int h config.Uarch_def.smt in
  let h = F.int h warmup in
  let h = F.int h measure in
  let h = F.string h name in
  let h = F.int h (Array.length per_thread) in
  let h =
    Array.fold_left (fun h p -> F.int64 h (Ir.struct_hash p)) h per_thread
  in
  F.to_hex (F.finish h)

(* MP_KEY=marshal re-enables the serialising derivation (debug escape
   hatch for bisecting cache anomalies); anything else — including
   unset — uses the structural fold. *)
let use_marshal_key =
  lazy
    (match Sys.getenv_opt "MP_KEY" with
     | Some v -> String.lowercase_ascii (String.trim v) = "marshal"
     | None -> false)

(* cumulative wall time spent deriving keys, for the bench harness *)
let key_ns = Atomic.make 0

let key_seconds () = float_of_int (Atomic.get key_ns) *. 1e-9

let key ?uarch ?seed ~config ~warmup ~measure ~name per_thread =
  let t0 = Unix.gettimeofday () in
  let k =
    if Lazy.force use_marshal_key then
      key_marshal ?uarch ?seed ~config ~warmup ~measure ~name per_thread
    else key_structural ?uarch ?seed ~config ~warmup ~measure ~name per_thread
  in
  let dt = int_of_float ((Unix.gettimeofday () -. t0) *. 1e9) in
  ignore (Atomic.fetch_and_add key_ns (max 0 dt));
  k

(* ----- lookup ----------------------------------------------------------- *)

let find t k =
  Mutex.lock t.lock;
  match Hashtbl.find_opt t.table k with
  | Some m ->
    t.hits <- t.hits + 1;
    Mutex.unlock t.lock;
    Some m
  | None ->
    Mutex.unlock t.lock;
    (* the disk probe runs outside the lock: it is pure IO and two
       racing probes of the same key load identical bytes *)
    let from_disk = Option.bind t.disk (fun d -> disk_read d k) in
    Mutex.lock t.lock;
    (match from_disk with
     | Some m ->
       t.hits <- t.hits + 1;
       t.disk_hits <- t.disk_hits + 1;
       if not (Hashtbl.mem t.table k) then Hashtbl.add t.table k m
     | None -> t.misses <- t.misses + 1);
    Mutex.unlock t.lock;
    from_disk

let add t k m =
  Mutex.lock t.lock;
  let first = not (Hashtbl.mem t.table k) in
  if first then Hashtbl.add t.table k m;
  Mutex.unlock t.lock;
  if first then Option.iter (fun d -> disk_write d k m) t.disk

(* Single-flight: concurrent misses on the same key run [compute] at
   most once — the first claimant computes, everyone else blocks on
   [resolved] and reads the published value. The accounting invariant
   this preserves: [misses] counts computations actually executed
   (waiters are hits), which is what the harness reports as
   "simulations ran". *)
let rec find_or_add t k compute =
  Mutex.lock t.lock;
  match Hashtbl.find_opt t.table k with
  | Some m ->
    t.hits <- t.hits + 1;
    Mutex.unlock t.lock;
    m
  | None ->
    if Hashtbl.mem t.pending k then begin
      while Hashtbl.mem t.pending k do
        Condition.wait t.resolved t.lock
      done;
      let settled = Hashtbl.find_opt t.table k in
      (match settled with Some _ -> t.hits <- t.hits + 1 | None -> ());
      Mutex.unlock t.lock;
      match settled with
      | Some m -> m
      | None ->
        (* the computing domain failed; take over *)
        find_or_add t k compute
    end
    else begin
      Hashtbl.add t.pending k ();
      Mutex.unlock t.lock;
      (* the disk probe and the computation both run outside the lock *)
      match Option.bind t.disk (fun d -> disk_read d k) with
      | Some m ->
        Mutex.lock t.lock;
        t.hits <- t.hits + 1;
        t.disk_hits <- t.disk_hits + 1;
        if not (Hashtbl.mem t.table k) then Hashtbl.add t.table k m;
        Hashtbl.remove t.pending k;
        Condition.broadcast t.resolved;
        Mutex.unlock t.lock;
        m
      | None ->
        Mutex.lock t.lock;
        t.misses <- t.misses + 1;
        Mutex.unlock t.lock;
        let m =
          try compute ()
          with e ->
            Mutex.lock t.lock;
            Hashtbl.remove t.pending k;
            Condition.broadcast t.resolved;
            Mutex.unlock t.lock;
            raise e
        in
        Mutex.lock t.lock;
        if not (Hashtbl.mem t.table k) then Hashtbl.add t.table k m;
        Hashtbl.remove t.pending k;
        Condition.broadcast t.resolved;
        Mutex.unlock t.lock;
        Option.iter (fun d -> disk_write d k m) t.disk;
        m
    end
