(** The frame codec and endpoint interface shared by every worker
    transport.

    Frames are a 4-byte big-endian length followed by the payload,
    bounded by a 1 GiB guard so a corrupt header cannot make the reader
    allocate garbage. {!Procpool} (cloexec pipes to subprocesses) and
    {!Netpool} (TCP sockets to remote peers) both speak exactly this
    format — a worker loop written against one transport keeps working
    over the other, and the coordinator in [Mp_sim.Shard_exec] drives a
    mixed pool of {!endpoint}s without knowing which kind each slot
    is. *)

val max_frame_bytes : int
(** 1 GiB. A header claiming more (or a negative length) makes
    {!read_frame} return [None]; {!write_frame} raises [Invalid_argument]
    rather than emit such a frame. *)

val frame_header_bytes : int
(** 4 — the big-endian length prefix. *)

val write_all : ?deadline:float -> Unix.file_descr -> bytes -> int -> int -> unit
(** [write_all ?deadline fd buf off len] writes exactly [len] bytes,
    retrying short writes and EAGAIN/EINTR. [deadline] is an absolute
    [Unix.gettimeofday] time; raises [Unix.Unix_error (ETIMEDOUT, _, _)]
    when it passes (the fd should be non-blocking for the deadline to be
    honoured mid-write). *)

val read_exact :
  ?deadline:float -> Unix.file_descr -> bytes -> int -> int ->
  [ `Ok | `Eof | `Timeout ]
(** Read exactly [len] bytes or report why not. [`Eof] covers every
    terminal failure (closed pipe, reset connection, read error): they
    all mean "the peer is gone". *)

val write_frame : ?deadline:float -> Unix.file_descr -> bytes -> unit
(** Frame and write [payload]. Raises [Unix.Unix_error] on timeout or
    write failure, [Invalid_argument] if the payload exceeds
    {!max_frame_bytes}. *)

val read_frame : ?timeout_s:float -> Unix.file_descr -> bytes option
(** Read one frame. [None] on EOF, malformed length (negative or above
    the guard — nothing is allocated for such a header), or when no
    complete frame arrives within [timeout_s] (wait forever when
    omitted). Never raises on wire-level garbage. *)

(** {2 Endpoints}

    One addressable worker slot, however it is reached. On any failure
    the slot degrades to "this worker is gone": send/recv report
    failure, the caller reaps the slot and re-runs whatever was in
    flight. *)

type endpoint = {
  ep_label : string;
  ep_send : ?timeout_s:float -> bytes -> bool;
  ep_recv : ?timeout_s:float -> unit -> bytes option;
  ep_reap : unit -> unit;
  ep_rfd : unit -> Unix.file_descr option;
      (** the fd a response frame will arrive on, while the slot is
          live — what a multi-endpoint poll loop selects on; [None]
          once reaped (or, for a lazy TCP peer, before it ever
          connected) *)
  ep_wfd : unit -> Unix.file_descr option;
      (** the fd request frames are written to, for zero-timeout
          writability probes before a pipelined dispatch *)
}

val send : ?timeout_s:float -> endpoint -> bytes -> bool
val recv : ?timeout_s:float -> endpoint -> bytes option
val reap : endpoint -> unit
val label : endpoint -> string
val read_fd : endpoint -> Unix.file_descr option
val write_fd : endpoint -> Unix.file_descr option

val select_readable : ?timeout_s:float -> (int * endpoint) list -> int list
(** One [Unix.select] across many endpoints: the indices (the [int]
    the caller paired each endpoint with) of those whose read side has
    a frame (or EOF) pending after waiting at most [timeout_s]
    (default [0.0] — pure poll). Endpoints without a live read fd are
    skipped; EINTR reports nothing readable. This is the primitive
    under [Mp_sim.Shard_exec]'s dynamic scheduler — completions from
    any slot, pipe or socket, wake a single loop. *)

val writable : endpoint -> bool
(** Zero-timeout probe of the endpoint's write side: [true] when
    another frame can start without blocking (buffer has room). [false]
    for dead or not-yet-connected slots. *)
