(* Cache fractions: demonstrate the analytical set-associative cache
   model — ask for any hit distribution over L1/L2/L3/MEM and get a
   loop that realises it, statically, with no design-space search
   (paper Section 2.1.3 / Figure 3).

   Run with: dune exec examples/cache_fractions.exe [l1 l2 l3 mem]
   e.g.      dune exec examples/cache_fractions.exe -- 10 20 30 40 *)

open Microprobe

let () =
  let weights =
    match Array.to_list Sys.argv with
    | [ _; a; b; c; d ] ->
      [ float_of_string a; float_of_string b; float_of_string c;
        float_of_string d ]
    | _ -> [ 40.0; 30.0; 20.0; 10.0 ]
  in
  let dist = List.combine Cache_geometry.all_levels weights in
  let arch = get_architecture "POWER7" in
  Printf.printf "Requested distribution: %s\n"
    (String.concat ", "
       (List.map
          (fun (l, w) ->
            Printf.sprintf "%s %.0f%%" (Cache_geometry.level_to_string l)
              (w /. List.fold_left ( +. ) 0.0 weights *. 100.0))
          dist));
  (* inspect the plan the analytical model builds *)
  let plan = Set_assoc_model.create ~uarch:arch.Arch.uarch ~distribution:dist () in
  List.iter
    (fun level ->
      let pool = Set_assoc_model.pool_lines plan level in
      if Array.length pool > 0 then
        Printf.printf
          "%s pool: %d lines, first at 0x%x (L1 set %d)\n"
          (Cache_geometry.level_to_string level)
          (Array.length pool) pool.(0)
          (Cache_geometry.set_index
             (Uarch_def.cache arch.Arch.uarch Cache_geometry.L1)
             pool.(0)))
    Cache_geometry.all_levels;
  Printf.printf "Total footprint: %d bytes\n\n"
    (Set_assoc_model.footprint_bytes plan);
  (* build the loop and measure on every SMT mode *)
  let loads =
    Arch.select arch (fun i ->
        Instruction.is_load i && (not i.Instruction.prefetch)
        && not i.Instruction.update)
  in
  let synth = Synthesizer.create ~name:"fractions" arch in
  Synthesizer.add_pass synth (Passes.skeleton ~size:1024);
  Synthesizer.add_pass synth (Passes.fill_uniform loads);
  Synthesizer.add_pass synth (Passes.memory_model dist);
  Synthesizer.add_pass synth (Passes.dependency Builder.No_deps);
  let p = Synthesizer.synthesize ~seed:2 synth in
  let machine = Machine.create arch.Arch.uarch in
  List.iter
    (fun smt ->
      let c = Uarch_def.config ~cores:1 ~smt arch.Arch.uarch in
      let m = Machine.run machine c p in
      let k = Measurement.core_counters m in
      let total =
        Measurement.(k.l1 +. k.l2 +. k.l3 +. k.mem)
      in
      Printf.printf
        "SMT%d measured: L1 %4.1f%%  L2 %4.1f%%  L3 %4.1f%%  MEM %4.1f%%  \
         (IPC %.2f, power %.1f)\n"
        smt
        (100.0 *. k.Measurement.l1 /. total)
        (100.0 *. k.Measurement.l2 /. total)
        (100.0 *. k.Measurement.l3 /. total)
        (100.0 *. k.Measurement.mem /. total)
        m.Measurement.core_ipc m.Measurement.power)
    [ 1; 2; 4 ];
  print_endline
    "\nNo search was needed: the disjoint-set construction guarantees the\n\
     distribution statically (paper Section 2.1.3)."
