(** MicroProbe — automated micro-benchmark generation for systematic
    energy characterization of CMP/SMT processor systems.

    OCaml reproduction of Bertran et al., MICRO 2012. The module mirrors
    the paper's Python scripting interface (Figure 2):

    {[
      let arch = Microprobe.get_architecture "POWER7" in
      let synth = Microprobe.Synthesizer.create arch in
      Microprobe.Synthesizer.add_pass synth (Microprobe.Passes.skeleton ~size:4096);
      ...
      let ubench = Microprobe.Synthesizer.synthesize synth in
      print_string (Microprobe.Emit.to_asm ubench)
    ]}

    Sub-libraries are re-exported under topical names; see DESIGN.md
    for the system inventory. *)

val get_architecture : string -> Mp_codegen.Arch.t
(** Architecture registry lookup. Currently ships ["POWER7"]. Raises
    [Not_found] for unknown names. *)

val architectures : unit -> string list

val version : string

(* The architecture module *)
module Isa = Mp_isa
module Instruction = Mp_isa.Instruction
module Isa_def = Mp_isa.Isa_def
module Power_isa = Mp_isa.Power_isa
module Disasm = Mp_isa.Disasm
module Uarch = Mp_uarch
module Uarch_def = Mp_uarch.Uarch_def
module Pipe = Mp_uarch.Pipe
module Cache_geometry = Mp_uarch.Cache_geometry
module Pmc = Mp_uarch.Pmc

(* Micro-architecture analytical models *)
module Set_assoc_model = Mp_mem.Set_assoc_model

(* The code generation module *)
module Arch = Mp_codegen.Arch
module Reg = Mp_codegen.Reg
module Ir = Mp_codegen.Ir
module Builder = Mp_codegen.Builder
module Passes = Mp_codegen.Passes
module Synthesizer = Mp_codegen.Synthesizer
module Emit = Mp_codegen.Emit

(* The design space exploration module *)
module Dse = Mp_dse

(* The measurement substrate (simulated machine) *)
module Machine = Mp_sim.Machine
module Core_sim = Mp_sim.Core_sim
module Cache_sim = Mp_sim.Cache_sim
module Measurement = Mp_sim.Measurement
module Measurement_cache = Mp_sim.Measurement_cache
module Replay = Mp_sim.Replay
module Shard_exec = Mp_sim.Shard_exec
module Trace = Mp_potra.Trace

(* Case studies *)
module Power_model = Mp_model
module Workloads = Mp_workloads
module Epi = Mp_epi
module Stressmark = Mp_stressmark.Stressmark

module Util = Mp_util
