type t = { period_ms : float; samples : float array }

let create ~period_ms samples =
  if period_ms <= 0.0 then invalid_arg "Trace.create: period";
  { period_ms; samples = Array.copy samples }

let length t = Array.length t.samples

let duration_ms t = float_of_int (length t) *. t.period_ms

let mean t = Mp_util.Stats.mean t.samples

let max t = snd (Mp_util.Stats.min_max t.samples)

let min t = fst (Mp_util.Stats.min_max t.samples)

let window_means t ~window =
  if window <= 0 then invalid_arg "Trace.window_means: window";
  let n = length t / window in
  Array.init n (fun w ->
      let acc = ref 0.0 in
      for i = w * window to ((w + 1) * window) - 1 do
        acc := !acc +. t.samples.(i)
      done;
      !acc /. float_of_int window)

let stable_region ?(tolerance = 0.02) t =
  let n = length t in
  let best = ref None in
  let record lo hi =
    match !best with
    | Some (blo, bhi) when bhi - blo >= hi - lo -> ()
    | _ -> if hi - lo + 1 >= 4 then best := Some (lo, hi)
  in
  (* grow-a-window scan keeping running min/max *)
  let lo = ref 0 in
  let wmin = ref infinity and wmax = ref neg_infinity in
  let rescan from upto =
    wmin := infinity;
    wmax := neg_infinity;
    for i = from to upto do
      if t.samples.(i) < !wmin then wmin := t.samples.(i);
      if t.samples.(i) > !wmax then wmax := t.samples.(i)
    done
  in
  for hi = 0 to n - 1 do
    let v = t.samples.(hi) in
    if v < !wmin then wmin := v;
    if v > !wmax then wmax := v;
    let ok () =
      let m = ( !wmin +. !wmax ) /. 2.0 in
      m <> 0.0 && ( !wmax -. !wmin ) /. Float.abs m <= tolerance
    in
    while (not (ok ())) && !lo < hi do
      incr lo;
      rescan !lo hi
    done;
    if ok () then record !lo hi
  done;
  !best

let stable_mean ?tolerance t =
  match stable_region ?tolerance t with
  | None -> mean t
  | Some (lo, hi) ->
    Mp_util.Stats.mean (Array.sub t.samples lo (hi - lo + 1))

let concat = function
  | [] -> invalid_arg "Trace.concat: empty"
  | first :: _ as ts ->
    {
      period_ms = first.period_ms;
      samples = Array.concat (List.map (fun t -> t.samples) ts);
    }

let subsample t ~every =
  if every <= 0 then invalid_arg "Trace.subsample: every";
  {
    period_ms = t.period_ms *. float_of_int every;
    samples =
      Array.init (length t / every) (fun i -> t.samples.(i * every));
  }

let to_rows t =
  Array.to_list
    (Array.mapi (fun i v -> (float_of_int i *. t.period_ms, v)) t.samples)

let segments ?(tolerance = 0.05) ?(min_length = 2) t =
  let n = length t in
  if n = 0 then []
  else begin
    let out = ref [] in
    let lo = ref 0 in
    let wmin = ref t.samples.(0) and wmax = ref t.samples.(0) in
    let close hi =
      match !out with
      | (plo, _) :: rest when hi - !lo + 1 < min_length ->
        (* too short: extend the previous phase over it *)
        out := (plo, hi) :: rest
      | _ -> out := (!lo, hi) :: !out
    in
    for i = 1 to n - 1 do
      let v = t.samples.(i) in
      let nmin = Float.min !wmin v and nmax = Float.max !wmax v in
      let mid = (nmin +. nmax) /. 2.0 in
      let fits = mid <> 0.0 && (nmax -. nmin) /. Float.abs mid <= tolerance in
      if fits then begin
        wmin := nmin;
        wmax := nmax
      end
      else begin
        close (i - 1);
        lo := i;
        wmin := v;
        wmax := v
      end
    done;
    close (n - 1);
    List.rev !out
  end

let segment_means ?tolerance ?min_length t =
  segments ?tolerance ?min_length t
  |> List.map (fun (lo, hi) ->
         Mp_util.Stats.mean (Array.sub t.samples lo (hi - lo + 1)))
  |> Array.of_list
