(* Tests for mp_epi: the bootstrap process and the taxonomy. *)

open Mp_codegen
open Mp_uarch

let arch () = Arch.power7 ()

let machine a = Mp_sim.Machine.create a.Arch.uarch

let props a m ?zero_data () =
  Mp_epi.Bootstrap.instruction_props ~machine:(machine a) ~arch:a ~size:256
    ?zero_data
    (Arch.find_instruction a m)

let test_bootstrap_throughput_and_latency () =
  let a = arch () in
  let p = props a "subf" () in
  Alcotest.(check (float 0.1)) "throughput = 2 (core)" 2.0 p.Mp_epi.Bootstrap.core_ipc;
  Alcotest.(check (float 0.4)) "derived latency ~2" 2.0
    p.Mp_epi.Bootstrap.derived_latency

let test_bootstrap_fadd_latency () =
  let a = arch () in
  let p = props a "fadd" () in
  (* the derived latency carries a small warmup-drain bias *)
  Alcotest.(check (float 0.9)) "latency ~6" 6.0 p.Mp_epi.Bootstrap.derived_latency;
  Alcotest.(check (float 0.1)) "throughput 2" 2.0 p.Mp_epi.Bootstrap.core_ipc

let test_bootstrap_units () =
  let a = arch () in
  Alcotest.(check bool) "lbz -> LSU" true
    ((props a "lbz" ()).Mp_epi.Bootstrap.units = [ Pipe.LSU ]);
  Alcotest.(check bool) "ldux -> FXU+LSU" true
    ((props a "ldux" ()).Mp_epi.Bootstrap.units = [ Pipe.FXU; Pipe.LSU ]);
  let stx = props a "stxvw4x" () in
  Alcotest.(check bool) "stxvw4x stresses LSU and VSU" true
    (List.mem Pipe.LSU stx.Mp_epi.Bootstrap.units
     && List.mem Pipe.VSU stx.Mp_epi.Bootstrap.units);
  Alcotest.(check bool) "xvmaddadp -> VSU only" true
    ((props a "xvmaddadp" ()).Mp_epi.Bootstrap.units = [ Pipe.VSU ])

let test_epi_orderings () =
  (* the ground-truth EPI orderings of paper Table 3, observed purely
     through the sensor *)
  let a = arch () in
  let epi m = (props a m ()).Mp_epi.Bootstrap.epi in
  Alcotest.(check bool) "mulldo > subf" true (epi "mulldo" > epi "subf");
  Alcotest.(check bool) "subf > addic" true (epi "subf" > epi "addic");
  Alcotest.(check bool) "lxvw4x > lbz" true (epi "lxvw4x" > epi "lbz");
  Alcotest.(check bool) "xvmaddadp > xstsqrtdp" true
    (epi "xvmaddadp" > epi "xstsqrtdp");
  Alcotest.(check bool) "stfsux > stfdu" true (epi "stfsux" > epi "stfdu");
  (* the paper's 75% within-category gap *)
  Alcotest.(check bool) "xvmaddadp ~75% above xstsqrtdp" true
    (epi "xvmaddadp" /. epi "xstsqrtdp" > 1.5)

let test_zero_data_reduces_epi () =
  let a = arch () in
  let random = (props a "xvmaddadp" ()).Mp_epi.Bootstrap.epi in
  let zero = (props a "xvmaddadp" ~zero_data:true ()).Mp_epi.Bootstrap.epi in
  (* the paper reports up to 40% EPI reduction on zero inputs *)
  Alcotest.(check bool) "zero data reduces EPI by >20%" true
    (zero < random *. 0.8);
  Alcotest.(check bool) "but not implausibly" true (zero > random *. 0.3)

let test_run_subset () =
  let a = arch () in
  let instrs = List.map (Arch.find_instruction a) [ "add"; "lbz"; "fadd" ] in
  let ps = Mp_epi.Bootstrap.run ~machine:(machine a) ~arch:a ~size:128
      ~instructions:instrs () in
  Alcotest.(check int) "three bootstrapped" 3 (List.length ps)

let test_batched_run_matches_serial () =
  (* the batched campaign (one run_batch over a forced multi-domain
     pool) must be bit-identical, instruction by instruction, to the
     serial per-instruction path *)
  let a = arch () in
  let instrs =
    List.map (Arch.find_instruction a)
      [ "add"; "lbz"; "fadd"; "mulldo"; "xvmaddadp" ]
  in
  let serial_machine = machine a in
  let serial =
    List.map
      (fun i ->
        Mp_epi.Bootstrap.instruction_props ~machine:serial_machine ~arch:a
          ~size:128 i)
      instrs
  in
  let batch_machine = machine a in
  let pool = Mp_util.Parallel.create 4 in
  let batched =
    Mp_epi.Bootstrap.run ~machine:batch_machine ~arch:a ~size:128
      ~instructions:instrs ~pool ()
  in
  Mp_util.Parallel.shutdown pool;
  Alcotest.(check int) "same count" (List.length serial) (List.length batched);
  List.iter2
    (fun (s : Mp_epi.Bootstrap.props) (b : Mp_epi.Bootstrap.props) ->
      Alcotest.(check bool)
        (s.Mp_epi.Bootstrap.mnemonic ^ " bit-identical")
        true
        (compare s b = 0))
    serial batched

(* ----- taxonomy -------------------------------------------------------------- *)

let fake ~m ~ipc ~epi ~fxu ~lsu ~vsu =
  {
    Mp_epi.Bootstrap.mnemonic = m;
    derived_latency = 1.0;
    throughput = ipc;
    core_ipc = ipc;
    epi;
    events_per_instr =
      [ (Pipe.FXU, fxu); (Pipe.LSU, lsu); (Pipe.VSU, vsu); (Pipe.BRU, 0.0) ];
    units =
      List.filter_map
        (fun (u, r) -> if r >= 0.2 then Some u else None)
        [ (Pipe.FXU, fxu); (Pipe.LSU, lsu); (Pipe.VSU, vsu) ];
  }

let test_category_labels () =
  let lbl ~mem p = Mp_epi.Taxonomy.category_label p mem in
  Alcotest.(check string) "pure fxu" "FXU"
    (lbl ~mem:false (fake ~m:"a" ~ipc:2. ~epi:1. ~fxu:1.0 ~lsu:0.0 ~vsu:0.0));
  Alcotest.(check string) "simple int" "FXU or LSU"
    (lbl ~mem:false (fake ~m:"b" ~ipc:3.5 ~epi:1. ~fxu:0.6 ~lsu:0.4 ~vsu:0.0));
  Alcotest.(check string) "plain load" "LSU"
    (lbl ~mem:true (fake ~m:"c" ~ipc:1.7 ~epi:1. ~fxu:0.0 ~lsu:1.0 ~vsu:0.0));
  Alcotest.(check string) "update load" "LSU and FXU"
    (lbl ~mem:true (fake ~m:"d" ~ipc:1. ~epi:1. ~fxu:1.0 ~lsu:1.0 ~vsu:0.0));
  Alcotest.(check string) "algebraic update load" "LSU and 2FXU"
    (lbl ~mem:true (fake ~m:"e" ~ipc:1. ~epi:1. ~fxu:2.0 ~lsu:1.0 ~vsu:0.0));
  Alcotest.(check string) "vector store" "LSU and VSU"
    (lbl ~mem:true (fake ~m:"f" ~ipc:0.5 ~epi:1. ~fxu:0.0 ~lsu:2.0 ~vsu:1.0));
  Alcotest.(check string) "vector store update" "LSU and VSU and FXU"
    (lbl ~mem:true (fake ~m:"g" ~ipc:0.5 ~epi:1. ~fxu:1.0 ~lsu:2.0 ~vsu:1.0))

let test_table3_selection () =
  let cat =
    {
      Mp_epi.Taxonomy.label = "FXU";
      members =
        [ fake ~m:"hot" ~ipc:1.4 ~epi:2.6 ~fxu:1.0 ~lsu:0.0 ~vsu:0.0;
          fake ~m:"warm" ~ipc:2.0 ~epi:1.7 ~fxu:1.0 ~lsu:0.0 ~vsu:0.0;
          fake ~m:"cool" ~ipc:2.0 ~epi:1.0 ~fxu:1.0 ~lsu:0.0 ~vsu:0.0 ];
    }
  in
  let rows = Mp_epi.Taxonomy.table3 [ cat ] in
  Alcotest.(check int) "three rows" 3 (List.length rows);
  (match rows with
   | top :: _ ->
     (* hot has the highest IPC×EPI product: 3.64 > 3.4 > 2.0 *)
     Alcotest.(check string) "top by product" "hot" top.Mp_epi.Taxonomy.mnemonic;
     Alcotest.(check (float 0.01)) "global normalised to min" 2.6
       top.Mp_epi.Taxonomy.epi_global
   | [] -> Alcotest.fail "rows");
  let mins =
    List.map (fun (r : Mp_epi.Taxonomy.row) -> r.Mp_epi.Taxonomy.epi_category) rows
  in
  Alcotest.(check (float 1e-9)) "category min is 1" 1.0
    (List.fold_left Float.min infinity mins)

let test_epi_spread () =
  let cat =
    {
      Mp_epi.Taxonomy.label = "X";
      members =
        [ fake ~m:"a" ~ipc:1. ~epi:1.78 ~fxu:1.0 ~lsu:0. ~vsu:0.;
          fake ~m:"b" ~ipc:1. ~epi:1.0 ~fxu:1.0 ~lsu:0. ~vsu:0. ];
    }
  in
  Alcotest.(check (float 0.01)) "78%" 78.0 (Mp_epi.Taxonomy.epi_spread cat)

let test_categorize_end_to_end () =
  let a = arch () in
  let instrs =
    List.map (Arch.find_instruction a)
      [ "mulldo"; "addic"; "lbz"; "lxvw4x"; "xvmaddadp"; "add"; "ldux";
        "lhaux"; "stxvw4x"; "stfdux" ]
  in
  let ps = Mp_epi.Bootstrap.run ~machine:(machine a) ~arch:a ~size:256
      ~instructions:instrs () in
  let cats = Mp_epi.Taxonomy.categorize ~isa:a.Arch.isa ps in
  let find l =
    List.find_opt (fun c -> c.Mp_epi.Taxonomy.label = l) cats
  in
  Alcotest.(check bool) "FXU category" true (find "FXU" <> None);
  Alcotest.(check bool) "LSU category" true (find "LSU" <> None);
  Alcotest.(check bool) "VSU category" true (find "VSU" <> None);
  Alcotest.(check bool) "FXU or LSU category" true (find "FXU or LSU" <> None);
  Alcotest.(check bool) "LSU and FXU category" true (find "LSU and FXU" <> None);
  Alcotest.(check bool) "LSU and 2FXU category" true (find "LSU and 2FXU" <> None);
  (* members sorted by descending EPI *)
  List.iter
    (fun (c : Mp_epi.Taxonomy.category) ->
      let rec sorted = function
        | (a : Mp_epi.Bootstrap.props) :: (b :: _ as rest) ->
          a.Mp_epi.Bootstrap.epi >= b.Mp_epi.Bootstrap.epi && sorted rest
        | _ -> true
      in
      Alcotest.(check bool) (c.Mp_epi.Taxonomy.label ^ " sorted") true
        (sorted c.Mp_epi.Taxonomy.members))
    cats

let test_events_per_instr_reported () =
  let a = arch () in
  let p = props a "stfdux" () in
  (* update-form FP store: one LSU op, one FXU fixup, VSU data path *)
  let ev u = List.assoc u p.Mp_epi.Bootstrap.events_per_instr in
  Alcotest.(check bool) "lsu ~2/instr (pipe + store port)" true
    (ev Pipe.LSU > 1.5);
  Alcotest.(check bool) "fxu ~1/instr (update)" true
    (ev Pipe.FXU > 0.8 && ev Pipe.FXU < 1.3);
  Alcotest.(check bool) "vsu present" true (ev Pipe.VSU > 0.3)

let test_bootstrap_deterministic () =
  let a = arch () in
  let p1 = props a "mulld" () and p2 = props a "mulld" () in
  Alcotest.(check (float 1e-9)) "same EPI" p1.Mp_epi.Bootstrap.epi
    p2.Mp_epi.Bootstrap.epi

let prop_epi_nonnegative =
  let a = arch () in
  let instrs =
    Array.of_list
      (Arch.select a (fun i ->
           (not i.Mp_isa.Instruction.privileged)
           && (not (Mp_isa.Instruction.is_branch i))
           && (not i.Mp_isa.Instruction.prefetch)
           && i.Mp_isa.Instruction.exec_class <> Mp_isa.Instruction.Nop_op))
  in
  QCheck.Test.make ~name:"bootstrap yields sane properties" ~count:12
    QCheck.(int_range 0 (Array.length instrs - 1))
    (fun idx ->
      let p =
        Mp_epi.Bootstrap.instruction_props ~machine:(machine a) ~arch:a
          ~size:128 instrs.(idx)
      in
      p.Mp_epi.Bootstrap.epi >= 0.0
      && p.Mp_epi.Bootstrap.core_ipc > 0.0
      && p.Mp_epi.Bootstrap.derived_latency > 0.0
      && p.Mp_epi.Bootstrap.units <> [])

let () =
  Alcotest.run "mp_epi"
    [
      ("bootstrap",
       [ Alcotest.test_case "throughput/latency" `Quick test_bootstrap_throughput_and_latency;
         Alcotest.test_case "fadd latency" `Quick test_bootstrap_fadd_latency;
         Alcotest.test_case "unit detection" `Quick test_bootstrap_units;
         Alcotest.test_case "EPI orderings" `Quick test_epi_orderings;
         Alcotest.test_case "zero data" `Quick test_zero_data_reduces_epi;
         Alcotest.test_case "run subset" `Quick test_run_subset;
         Alcotest.test_case "batched run = serial" `Quick
           test_batched_run_matches_serial;
         Alcotest.test_case "events per instr" `Quick test_events_per_instr_reported;
         Alcotest.test_case "deterministic" `Quick test_bootstrap_deterministic;
         QCheck_alcotest.to_alcotest prop_epi_nonnegative ]);
      ("taxonomy",
       [ Alcotest.test_case "category labels" `Quick test_category_labels;
         Alcotest.test_case "table3 selection" `Quick test_table3_selection;
         Alcotest.test_case "epi spread" `Quick test_epi_spread;
         Alcotest.test_case "end to end" `Quick test_categorize_end_to_end ]);
    ]
