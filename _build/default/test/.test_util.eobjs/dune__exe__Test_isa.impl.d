test/test_isa.ml: Alcotest Array Disasm Hashtbl Instruction Isa_def List Mp_isa Mp_util Power_isa QCheck QCheck_alcotest String
