(** Content-addressed memoization of measurements.

    The search drivers re-measure identical (program, configuration)
    points constantly — GA elitism carries points across generations,
    crossover regenerates previously seen sequences, and phased
    workloads repeat their phase programs. Measurements are
    deterministic given (machine seed, program, configuration,
    warmup/measure), so a content-addressed cache returns the exact
    measurement the simulation would have produced.

    Keys digest everything the simulation depends on: the machine seed,
    the configuration, the warmup/measure window, the run name (the
    per-run RNG is seeded from it) and a structural fingerprint of every
    per-thread program (opcodes, operands, immediates, memory targets,
    branch patterns, register initialisation and the memory
    distribution).

    All operations are domain-safe: the table is guarded by a mutex so
    a {!Machine.run_batch} fan-out can share one cache. *)

type t

val create : unit -> t

type stats = { hits : int; misses : int }

val stats : t -> stats

val hit_rate : t -> float
(** [hits / (hits + misses)]; 0 when nothing was looked up. *)

val reset_stats : t -> unit
val clear : t -> unit

val length : t -> int
(** Number of memoized measurements. *)

val key :
  seed:int ->
  config:Mp_uarch.Uarch_def.config ->
  warmup:int ->
  measure:int ->
  name:string ->
  Mp_codegen.Ir.t array ->
  string
(** Digest of one measurement job. The array holds the per-thread
    programs (a single element for homogeneous deployment — replication
    over SMT threads is captured by [config]). *)

val find : t -> string -> Measurement.t option
(** Counts a hit or a miss. *)

val add : t -> string -> Measurement.t -> unit
(** First writer wins (concurrent writers compute identical values). *)

val find_or_add : t -> string -> (unit -> Measurement.t) -> Measurement.t
(** [find_or_add t k compute] returns the cached measurement for [k],
    or runs [compute] (outside the lock) and memoizes its result. *)
