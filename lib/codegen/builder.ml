open Mp_isa

type dep_mode = No_deps | Fixed of int | Random_range of int * int

type value_policy = Random_values | Constant of int64

type slot = {
  mutable op : Instruction.t option;
  mutable mem_target : Ir.level option;
  mutable pattern : bool array option;
}

type t = {
  arch : Arch.t;
  rng : Mp_util.Rng.t;
  mutable name : string;
  mutable slots : slot array;
  mutable mem_distribution : (Ir.level * float) list option;
  mutable dep_mode : dep_mode;
  mutable reg_policy : value_policy;
  mutable imm_policy : value_policy;
  mutable provenance : string list;
}

let create arch rng =
  {
    arch;
    rng;
    name = "ubench";
    slots = [||];
    mem_distribution = None;
    dep_mode = No_deps;
    reg_policy = Random_values;
    imm_policy = Random_values;
    provenance = [];
  }

let set_skeleton t n =
  if Array.length t.slots > 0 then failwith "Builder: skeleton already defined";
  if n <= 0 then failwith "Builder: skeleton size must be positive";
  t.slots <- Array.init n (fun _ -> { op = None; mem_target = None; pattern = None })

let size t = Array.length t.slots

let require_skeleton t pass =
  if size t = 0 then failwith (Printf.sprintf "pass %S requires a skeleton" pass)

let require_filled t pass =
  if size t = 0 then require_skeleton t pass;
  Array.iteri
    (fun i s ->
      if s.op = None then
        failwith (Printf.sprintf "pass %S: slot %d has no instruction" pass i))
    t.slots

let record t name = t.provenance <- name :: t.provenance

(* ----- operand wiring --------------------------------------------------- *)

type wired = {
  w_op : Instruction.t;
  mutable w_dests : Reg.t list;
  mutable w_srcs : Reg.t list;
  w_imm : int64 option;
  w_mem : Ir.level option;
  w_pattern : bool array option;
}

let imm_value t (op : Instruction.t) =
  if not op.has_imm then None
  else
    let bits = max 1 (min 62 op.imm_bits) in
    match t.imm_policy with
    | Constant v -> Some (Int64.logand v (Int64.sub (Int64.shift_left 1L bits) 1L))
    | Random_values ->
      Some (Int64.of_int (Mp_util.Rng.int t.rng (1 lsl (min bits 30))))

(* First wiring pass: default allocation from the rotating pools. *)
let default_wire t alloc (op : Instruction.t) slot_mem slot_pattern =
  let imm = imm_value t op in
  match op.mem with
  | Instruction.Load ->
    let b = Reg_alloc.base alloc in
    let srcs =
      b :: (if op.indexed then [ Reg_alloc.source alloc Instruction.Gpr ] else [])
    in
    let dests =
      (if op.has_dest then [ Reg_alloc.dest alloc op.data_class ] else [])
      @ (if op.update then [ b ] else [])
    in
    { w_op = op; w_dests = dests; w_srcs = srcs; w_imm = imm;
      w_mem = slot_mem; w_pattern = None }
  | Instruction.Store ->
    let b = Reg_alloc.base alloc in
    let data = Reg_alloc.source alloc op.data_class in
    let srcs =
      data :: b
      :: (if op.indexed then [ Reg_alloc.source alloc Instruction.Gpr ] else [])
    in
    let dests = if op.update then [ b ] else [] in
    { w_op = op; w_dests = dests; w_srcs = srcs; w_imm = imm;
      w_mem = slot_mem; w_pattern = None }
  | Instruction.No_mem ->
    if Instruction.is_branch op then
      { w_op = op; w_dests = []; w_srcs = []; w_imm = imm; w_mem = None;
        w_pattern = slot_pattern }
    else
      let dests =
        if op.exec_class = Instruction.Cmp_op then
          [ Reg_alloc.dest alloc Instruction.Cr ]
        else if op.has_dest then [ Reg_alloc.dest alloc op.data_class ]
        else []
      in
      let srcs =
        List.init op.srcs (fun _ -> Reg_alloc.source alloc op.data_class)
      in
      { w_op = op; w_dests = dests; w_srcs = srcs; w_imm = imm; w_mem = None;
        w_pattern = slot_pattern }

(* Dependency pass: point the first data source (the base register, for
   loads) at the destination of the instruction [d] earlier whose result
   class matches, scanning a small window backwards for a compatible
   producer. *)
let apply_dependency t (wired : wired array) =
  let n = Array.length wired in
  let pick_distance i =
    ignore i;
    match t.dep_mode with
    | No_deps -> None
    | Fixed d -> if d >= 1 && d < n then Some d else None
    | Random_range (lo, hi) ->
      let lo = max 1 lo and hi = max 1 (min hi (n - 1)) in
      if hi < lo then None else Some (Mp_util.Rng.int_in t.rng lo hi)
  in
  let wanted_class (w : wired) =
    let op = w.w_op in
    match op.mem with
    | Instruction.Load -> Some Instruction.Gpr (* chase through the base *)
    | Instruction.Store -> Some op.data_class
    | Instruction.No_mem ->
      if Instruction.is_branch op || op.srcs = 0 then None
      else Some op.data_class
  in
  let producer_of_class j cls =
    List.find_opt (fun r -> Reg.class_of r = cls) wired.(j).w_dests
  in
  Array.iteri
    (fun i w ->
      match (pick_distance i, wanted_class w) with
      | None, _ | _, None -> ()
      | Some d, Some cls ->
        (* the chain wraps around the endless loop: instruction i
           consumes the result produced d slots earlier, modulo the
           body, so the dependence carries across iterations *)
        let rec scan j steps =
          if steps > 8 then None
          else
            let j = ((j mod n) + n) mod n in
            match producer_of_class j cls with
            | Some r -> Some r
            | None -> scan (j - 1) (steps + 1)
        in
        (match scan (i - d) 0 with
         | None -> ()
         | Some producer ->
           (match w.w_srcs with
            | [] -> ()
            | first :: rest ->
              (* loads: replace the base; others: the first data source *)
              let replace_at0 = Instruction.is_load w.w_op || not (Instruction.is_store w.w_op) in
              if replace_at0 && Reg.class_of first = cls then
                w.w_srcs <- producer :: rest
              else
                (* stores: the data source comes first in our layout *)
                if Reg.class_of first = cls then w.w_srcs <- producer :: rest)))
    wired

let value_for t =
  match t.reg_policy with
  | Constant v -> fun _ -> v
  | Random_values -> fun () -> Mp_util.Rng.bits64 t.rng

let finalize t =
  require_filled t "finalize";
  let alloc = Reg_alloc.create () in
  let wired =
    Array.map
      (fun s ->
        match s.op with
        | None -> assert false
        | Some op -> default_wire t alloc op s.mem_target s.pattern)
      t.slots
  in
  apply_dependency t wired;
  let seen = Hashtbl.create 64 in
  let value = value_for t in
  let reg_init = ref [] in
  let note r =
    if not (Hashtbl.mem seen r) then begin
      Hashtbl.add seen r ();
      reg_init := (r, value ()) :: !reg_init
    end
  in
  Array.iter
    (fun w ->
      List.iter note w.w_srcs;
      List.iter note w.w_dests)
    wired;
  let body =
    Array.mapi
      (fun index w ->
        { Ir.index; op = w.w_op; dests = w.w_dests; srcs = w.w_srcs;
          imm = w.w_imm; mem_target = w.w_mem; taken_pattern = w.w_pattern })
      wired
  in
  let reg_init = List.rev !reg_init in
  let program =
    {
      Ir.name = t.name;
      body;
      reg_init;
      imm_policy =
        (match t.imm_policy with
         | Random_values -> "random"
         | Constant v -> Printf.sprintf "const:%Ld" v);
      memory_distribution = t.mem_distribution;
      provenance = List.rev t.provenance;
      (* hashed here, once, so cache keys downstream are a cheap fold
         over precomputed fields rather than a per-lookup serialisation
         of the whole program *)
      struct_hash =
        Ir.compute_struct_hash ~name:t.name ~body ~reg_init
          ~memory_distribution:t.mem_distribution;
      body_hash =
        Ir.compute_body_hash ~body ~reg_init
          ~memory_distribution:t.mem_distribution;
    }
  in
  match Ir.validate program with
  | Ok () -> program
  | Error e -> failwith (Printf.sprintf "Builder.finalize: %s" e)
