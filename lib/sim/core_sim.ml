open Mp_uarch
open Mp_codegen

(* ----- opcode interning ------------------------------------------------- *)

type opmap = {
  ids : (string, int) Hashtbl.t;
  mutable names : string array;
  mutable count : int;
  lock : Mutex.t;
      (* deploys may run on pool domains; the intern table is the only
         mutable state they share, so every access takes the lock.
         Deterministic id assignment is the caller's job: Machine
         pre-interns every opcode in job order before fanning out. *)
}

let opmap_create () =
  { ids = Hashtbl.create 64; names = Array.make 64 ""; count = 0;
    lock = Mutex.create () }

let opmap_size m = m.count

let intern m name =
  Mutex.lock m.lock;
  let id =
    match Hashtbl.find_opt m.ids name with
    | Some id -> id
    | None ->
      let id = m.count in
      Hashtbl.add m.ids name id;
      if id >= Array.length m.names then begin
        let bigger = Array.make (2 * Array.length m.names) "" in
        Array.blit m.names 0 bigger 0 (Array.length m.names);
        m.names <- bigger
      end;
      m.names.(id) <- name;
      m.count <- id + 1;
      id
  in
  Mutex.unlock m.lock;
  id

let opmap_name m id =
  if id < 0 || id >= m.count then invalid_arg "Core_sim.opmap_name";
  m.names.(id)

(* ----- deployed programs ------------------------------------------------ *)

let n_pipe_kinds = 6

let pipe_index = function
  | Pipe.Fxu -> 0
  | Pipe.Lsu -> 1
  | Pipe.Vsu -> 2
  | Pipe.Bru -> 3
  | Pipe.Store_port -> 4
  | Pipe.Update_port -> 5

type dinstr = {
  op_id : int;
  fixed : (int * float) array;  (* (pipe kind, occupancy) *)
  alt : (int * float) array;
  latency : int;                (* base latency; memory ops: per access *)
  dests : int array;            (* dense register ids *)
  srcs : int array;
  mem : int;                    (* 0 none / 1 load / 2 store *)
  upd_ops : int;                (* fixup micro-ops accounted as FXU events *)
  stream : int array;
  pattern : bool array;         (* conditional branches only *)
}

type dprog = {
  body : dinstr array;
  n_regs : int;
  daf : float;
}

let deploy ~uarch ~opmap ~streams (p : Ir.t) =
  let reg_ids = Hashtbl.create 64 in
  let n_regs = ref 0 in
  let reg_id r =
    match Hashtbl.find_opt reg_ids r with
    | Some i -> i
    | None ->
      let i = !n_regs in
      Hashtbl.add reg_ids r i;
      incr n_regs;
      i
  in
  let of_instr (i : Ir.instr) =
    let op = i.Ir.op in
    let res = uarch.Uarch_def.resources op in
    let conv u = (pipe_index u.Uarch_def.pipe, u.Uarch_def.occupancy) in
    let mem =
      match op.Mp_isa.Instruction.mem with
      | Mp_isa.Instruction.No_mem -> 0
      | Mp_isa.Instruction.Load -> 1
      | Mp_isa.Instruction.Store -> 2
    in
    {
      op_id = intern opmap op.Mp_isa.Instruction.mnemonic;
      fixed = Array.of_list (List.map conv res.Uarch_def.fixed);
      alt = Array.of_list (List.map conv res.Uarch_def.alt);
      latency = res.Uarch_def.latency;
      dests = Array.of_list (List.map reg_id i.Ir.dests);
      srcs = Array.of_list (List.map reg_id i.Ir.srcs);
      mem;
      upd_ops =
        (if op.Mp_isa.Instruction.update then 1 else 0)
        + (if op.Mp_isa.Instruction.algebraic then 1 else 0);
      stream = (if mem = 0 || op.Mp_isa.Instruction.prefetch then [||] else streams i.Ir.index);
      pattern =
        (match i.Ir.taken_pattern with Some pat -> pat | None -> [||]);
    }
  in
  let payload = Array.map of_instr p.Ir.body in
  let bdnz =
    {
      op_id = intern opmap "bdnz";
      fixed = [| (pipe_index Pipe.Bru, 1.0) |];
      alt = [||];
      latency = 1;
      dests = [||];
      srcs = [||];
      mem = 0;
      upd_ops = 0;
      stream = [||];
      pattern = [||];
    }
  in
  { body = Array.append payload [| bdnz |];
    n_regs = max 1 !n_regs;
    daf = Ir.data_activity_factor p }

(* ----- activity --------------------------------------------------------- *)

type activity = {
  measured_cycles : int;
  threads : Measurement.counters array;
  op_issues : int array;
  level_loads : int array;
  switch_events : int;
  transitions : (int * int * int) list;
      (* (previous opcode id, next opcode id, count) over the dispatch bus *)
  daf : float;
  prefetches : int;
}

(* ----- the simulation --------------------------------------------------- *)

type pending = {
  mutable di : int;      (* body index *)
  mutable it : int;      (* iteration *)
  mutable seq : int;     (* per-thread dispatch sequence number *)
  deps : int array;      (* producer seqs captured at dispatch (-1 = none) *)
  mutable n_deps : int;
  mutable live : bool;
}

type raw_counters = {
  mutable instrs : int;
  mutable dispatched : int;
  mutable fxu : int;
  mutable lsu : int;
  mutable vsu : int;
  mutable bru : int;
  mutable st : int;
  mutable l1 : int;
  mutable l2 : int;
  mutable l3 : int;
  mutable memc : int;
}

let zero_raw () =
  { instrs = 0; dispatched = 0; fxu = 0; lsu = 0; vsu = 0; bru = 0; st = 0;
    l1 = 0; l2 = 0; l3 = 0; memc = 0 }

type thread_state = {
  prog : dprog;
  queue : pending array;      (* ring buffer of capacity window *)
  mutable q_head : int;
  mutable q_len : int;
  mutable pc : int;
  mutable iter : int;
  mutable dispatch_seq : int;
  mutable in_flight : int;
  mutable stall_until : int;
  mutable last_dispatch_op : int;
  comp_cal : int array;       (* completions calendar, ring on cycles *)
  reg_last_writer : int array; (* dispatch seq of the youngest writer *)
  (* completion times per in-flight dispatch seq, tagged ring *)
  comp_seq : int array;
  comp_time : int array;
  predictor : int array;      (* 2-bit counters per static instruction *)
  counters : raw_counters;
}

let calendar_size = 16384

let level_id = function
  | Cache_geometry.L1 -> 0
  | Cache_geometry.L2 -> 1
  | Cache_geometry.L3 -> 2
  | Cache_geometry.MEM -> 3

let run ~uarch ~opmap ?mem_latency ?(warmup = 1) ?(measure = 2) progs =
  let nthreads = Array.length progs in
  if nthreads = 0 then invalid_arg "Core_sim.run: no threads";
  let mem_lat =
    match mem_latency with Some l -> l | None -> uarch.Uarch_def.mem_latency
  in
  let window = uarch.Uarch_def.window in
  let total_iters = warmup + measure in
  let cache = Cache_sim.create uarch in
  let latencies =
    (* load-to-use latency per source level id *)
    [| (Uarch_def.cache uarch Cache_geometry.L1).Cache_geometry.latency_cycles;
       (Uarch_def.cache uarch Cache_geometry.L2).Cache_geometry.latency_cycles;
       (Uarch_def.cache uarch Cache_geometry.L3).Cache_geometry.latency_cycles;
       mem_lat |]
  in
  (* pipe instances *)
  let pipe_free =
    Array.init n_pipe_kinds (fun k ->
        let kind =
          match k with
          | 0 -> Pipe.Fxu | 1 -> Pipe.Lsu | 2 -> Pipe.Vsu | 3 -> Pipe.Bru
          | 4 -> Pipe.Store_port | _ -> Pipe.Update_port
        in
        Array.make (max 1 (Uarch_def.pipe_count uarch kind)) 0.0)
  in
  let op_issues = Array.make (max 1 (opmap_size opmap + 64)) 0 in
  let level_loads = Array.make 4 0 in
  let switch_events = ref 0 in
  (* dispatch-bus opcode transitions: a flat dense matrix over interned
     opcode pairs — the per-dispatch Hashtbl this replaces dominated the
     dispatch loop. All ids are < opmap_size at run entry (interning
     happens at deploy, never mid-run). *)
  let trans_stride = max 1 (opmap_size opmap) in
  let transitions = Array.make (trans_stride * trans_stride) 0 in
  (* scratch for pipe-slot selection, hoisted out of the cycle loop *)
  let max_fixed =
    Array.fold_left
      (fun acc (p : dprog) ->
        Array.fold_left
          (fun acc (d : dinstr) -> max acc (Array.length d.fixed))
          acc p.body)
      1 progs
  in
  let fixed_slots = Array.make max_fixed (-1) in
  let threads =
    Array.map
      (fun prog ->
        {
          prog;
          queue =
            Array.init window (fun _ ->
                { di = 0; it = 0; seq = 0; deps = Array.make 4 (-1);
                  n_deps = 0; live = false });
          q_head = 0;
          q_len = 0;
          pc = 0;
          iter = 0;
          dispatch_seq = 0;
          in_flight = 0;
          stall_until = 0;
          last_dispatch_op = -1;
          comp_cal = Array.make calendar_size 0;
          reg_last_writer = Array.make prog.n_regs (-1);
          comp_seq = Array.make (4 * window) (-1);
          comp_time = Array.make (4 * window) 0;
          predictor = Array.make (Array.length prog.body) 2;
          counters = zero_raw ();
        })
      progs
  in
  let measuring = ref false in
  let start_cycle = ref 0 in
  let cycle = ref 0 in
  (* A pipe instance can accept an op at cycle [now] when its busy time
     runs out before the end of the cycle; reserving from the fractional
     free time (not the cycle boundary) lets occupancies like 1.19
     sustain their exact 1/1.19 throughput. *)
  let find_free insts nowf =
    let n = Array.length insts in
    let rec go i =
      if i = n then -1 else if insts.(i) < nowf +. 1.0 then i else go (i + 1)
    in
    go 0
  in
  (* The loops are endless: the run ends when the slowest thread has
     dispatched its measured iterations; faster threads simply loop
     more. This keeps every thread in steady state for the whole
     measured window — essential when per-thread programs differ. *)
  let all_done () =
    Array.for_all (fun t -> t.iter >= total_iters) threads
  in
  let reset_measurement () =
    Array.iter
      (fun t ->
        let c = t.counters in
        c.instrs <- 0; c.dispatched <- 0; c.fxu <- 0; c.lsu <- 0; c.vsu <- 0;
        c.bru <- 0; c.st <- 0; c.l1 <- 0; c.l2 <- 0; c.l3 <- 0; c.memc <- 0)
      threads;
    Array.fill op_issues 0 (Array.length op_issues) 0;
    Array.fill level_loads 0 4 0;
    switch_events := 0;
    Array.fill transitions 0 (Array.length transitions) 0;
    Cache_sim.reset_stats cache
  in
  let mispredict_penalty = 6 in
  while not (all_done ()) do
    let now = !cycle in
    let nowf = float_of_int now in
    (* retire completions from the calendar *)
    Array.iter
      (fun t ->
        let slot = now land (calendar_size - 1) in
        t.in_flight <- t.in_flight - t.comp_cal.(slot);
        t.comp_cal.(slot) <- 0)
      threads;
    (* dispatch: shared width, round-robin priority *)
    let progressed = ref false in
    let budget = ref uarch.Uarch_def.dispatch_width in
    for k = 0 to nthreads - 1 do
      let t = threads.((now + k) mod nthreads) in
      let continue_ = ref true in
      while
        !continue_ && !budget > 0
        && t.stall_until <= now && t.in_flight < window && t.q_len < window
      do
        let body_len = Array.length t.prog.body in
        let slot = t.queue.((t.q_head + t.q_len) mod window) in
        slot.di <- t.pc;
        slot.it <- t.iter;
        slot.seq <- t.dispatch_seq;
        slot.live <- true;
        (* capture producers now: each source depends on the youngest
           writer dispatched so far (update-form bases therefore read
           the value preceding their own write, as on hardware) *)
        let body_i = t.prog.body.(t.pc) in
        slot.n_deps <- 0;
        let srcs = body_i.srcs in
        for si = 0 to Array.length srcs - 1 do
          let producer = t.reg_last_writer.(srcs.(si)) in
          if producer >= 0 && slot.n_deps < Array.length slot.deps then begin
            slot.deps.(slot.n_deps) <- producer;
            slot.n_deps <- slot.n_deps + 1
          end
        done;
        let ring = Array.length t.comp_seq in
        let dsts = body_i.dests in
        for d = 0 to Array.length dsts - 1 do
          t.reg_last_writer.(dsts.(d)) <- t.dispatch_seq
        done;
        t.comp_seq.(t.dispatch_seq mod ring) <- t.dispatch_seq;
        t.comp_time.(t.dispatch_seq mod ring) <- max_int;
        t.dispatch_seq <- t.dispatch_seq + 1;
        t.q_len <- t.q_len + 1;
        t.in_flight <- t.in_flight + 1;
        progressed := true;
        let op_id = t.prog.body.(t.pc).op_id in
        if !measuring then begin
          t.counters.dispatched <- t.counters.dispatched + 1;
          (* opcode transition on the shared dispatch bus: the order-
             dependent switching activity the ground truth charges for *)
          if op_id <> t.last_dispatch_op && t.last_dispatch_op >= 0 then begin
            incr switch_events;
            let key = (t.last_dispatch_op * trans_stride) + op_id in
            transitions.(key) <- transitions.(key) + 1
          end
        end;
        t.last_dispatch_op <- op_id;
        decr budget;
        t.pc <- t.pc + 1;
        if t.pc = body_len then begin
          t.pc <- 0;
          t.iter <- t.iter + 1;
          if t.iter >= total_iters then continue_ := false
        end
      done
    done;
    (* issue: scan pending entries oldest-first per thread, rotating
       the thread priority each cycle (SMT issue arbitration) *)
    for tk = 0 to nthreads - 1 do
      let t = threads.((now + tk) mod nthreads) in
      begin
        let c = t.counters in
        for qi = 0 to t.q_len - 1 do
          let e = t.queue.((t.q_head + qi) mod window) in
          if e.live then begin
            let di = t.prog.body.(e.di) in
            (* operand readiness: all captured producers completed
               (a producer whose ring slot was reused is long retired) *)
            let ready = ref true in
            let ring = Array.length t.comp_seq in
            for k = 0 to e.n_deps - 1 do
              let d = e.deps.(k) in
              let idx = d mod ring in
              if t.comp_seq.(idx) = d && t.comp_time.(idx) > now then
                ready := false
            done;
            if !ready then begin
              (* pipe availability *)
              let fixed = di.fixed in
              let nfixed = Array.length fixed in
              let ok = ref true in
              for f = 0 to nfixed - 1 do
                let kind, _ = fixed.(f) in
                let s = find_free pipe_free.(kind) nowf in
                if s < 0 then ok := false else fixed_slots.(f) <- s
              done;
              let alt_choice = ref (-1) in
              let alt_slot = ref (-1) in
              if !ok && Array.length di.alt > 0 then begin
                let found = ref false in
                Array.iter
                  (fun (kind, _) ->
                    if not !found then begin
                      let s = find_free pipe_free.(kind) nowf in
                      if s >= 0 then begin
                        found := true;
                        alt_choice := kind;
                        alt_slot := s
                      end
                    end)
                  di.alt;
                if not !found then ok := false
              end;
              if !ok then begin
                (* reserve pipes, count unit events *)
                let count_pipe kind =
                  if !measuring then
                    match kind with
                    | 0 -> c.fxu <- c.fxu + 1
                    | 1 -> c.lsu <- c.lsu + 1
                    | 2 -> c.vsu <- c.vsu + 1
                    | 3 -> c.bru <- c.bru + 1
                    | 4 -> c.st <- c.st + 1
                    | _ -> c.fxu <- c.fxu + di.upd_ops
                in
                let reserve kind slot occ =
                  let insts = pipe_free.(kind) in
                  insts.(slot) <- Float.max insts.(slot) nowf +. occ;
                  count_pipe kind
                in
                for f = 0 to nfixed - 1 do
                  let kind, occ = fixed.(f) in
                  reserve kind fixed_slots.(f) occ
                done;
                if !alt_choice >= 0 then begin
                  let occ =
                    let rec find i =
                      let k, o = di.alt.(i) in
                      if k = !alt_choice then o else find (i + 1)
                    in
                    find 0
                  in
                  reserve !alt_choice !alt_slot occ
                end;
                (* latency *)
                let lat =
                  if di.mem = 1 && Array.length di.stream > 0 then begin
                    let addr = di.stream.(e.it mod Array.length di.stream) in
                    let src = Cache_sim.access cache ~addr ~store:false in
                    let lid = level_id src in
                    if !measuring then begin
                      (match lid with
                       | 0 -> c.l1 <- c.l1 + 1
                       | 1 -> c.l2 <- c.l2 + 1
                       | 2 -> c.l3 <- c.l3 + 1
                       | _ -> c.memc <- c.memc + 1);
                      level_loads.(lid) <- level_loads.(lid) + 1
                    end;
                    latencies.(lid)
                  end
                  else if di.mem = 2 && Array.length di.stream > 0 then begin
                    let addr = di.stream.(e.it mod Array.length di.stream) in
                    ignore (Cache_sim.access cache ~addr ~store:true);
                    di.latency
                  end
                  else di.latency
                in
                (* conditional branch prediction *)
                if Array.length di.pattern > 0 then begin
                  let outcome = di.pattern.(e.it mod Array.length di.pattern) in
                  let p = t.predictor.(e.di) in
                  let predicted = p >= 2 in
                  t.predictor.(e.di) <-
                    (if outcome then min 3 (p + 1) else max 0 (p - 1));
                  if predicted <> outcome then
                    t.stall_until <- max t.stall_until (now + mispredict_penalty)
                end;
                let completion = now + max 1 lat in
                let ring = Array.length t.comp_seq in
                if t.comp_seq.(e.seq mod ring) = e.seq then
                  t.comp_time.(e.seq mod ring) <- completion;
                t.comp_cal.(completion land (calendar_size - 1)) <-
                  t.comp_cal.(completion land (calendar_size - 1)) + 1;
                if !measuring then begin
                  c.instrs <- c.instrs + 1;
                  op_issues.(di.op_id) <- op_issues.(di.op_id) + 1
                end;
                progressed := true;
                e.live <- false
              end
            end
          end
        done;
        (* compact the head of the ring *)
        while t.q_len > 0 && not t.queue.(t.q_head).live do
          t.q_head <- (t.q_head + 1) mod window;
          t.q_len <- t.q_len - 1
        done
      end
    done;
    (* start the measured window once every thread passed warmup *)
    if (not !measuring) && Array.for_all (fun t -> t.iter >= warmup) threads
    then begin
      measuring := true;
      start_cycle := now + 1;
      reset_measurement ()
    end;
    incr cycle;
    (* Fast-forward across dead cycles (latency-bound phases): nothing
       dispatched or issued, so the next scheduler-relevant event is a
       completion retiring, a pipe becoming free or a stall expiring.
       Skipped cycles have empty calendar slots, so skipping them is
       exact. *)
    if (not !progressed) && not (all_done ()) then begin
      let horizon = ref (!cycle + calendar_size - 2) in
      Array.iter
        (fun insts ->
          Array.iter
            (fun f ->
              let c = int_of_float (Float.ceil f) in
              if c >= !cycle && c < !horizon then horizon := c)
            insts)
        pipe_free;
      Array.iter
        (fun t ->
          if t.stall_until >= !cycle && t.stall_until < !horizon then
            horizon := t.stall_until)
        threads;
      let inflight_total =
        Array.fold_left (fun acc t -> acc + t.in_flight) 0 threads
      in
      if inflight_total = 0 && !horizon > !cycle + calendar_size - 4 then
        failwith "Core_sim: deadlock (no in-flight work and no events)";
      let slot_empty c =
        let idx = c land (calendar_size - 1) in
        Array.for_all (fun t -> t.comp_cal.(idx) = 0) threads
      in
      while !cycle < !horizon && slot_empty !cycle do
        incr cycle
      done
    end
  done;
  let measured_cycles = max 1 (!cycle - !start_cycle) in
  let counters_of t =
    let c = t.counters in
    {
      Measurement.cycles = float_of_int measured_cycles;
      instrs = float_of_int c.instrs;
      dispatched = float_of_int c.dispatched;
      fxu = float_of_int c.fxu;
      lsu = float_of_int c.lsu;
      vsu = float_of_int c.vsu;
      bru = float_of_int c.bru;
      st = float_of_int c.st;
      l1 = float_of_int c.l1;
      l2 = float_of_int c.l2;
      l3 = float_of_int c.l3;
      mem = float_of_int c.memc;
    }
  in
  let daf =
    Array.fold_left (fun acc (p : dprog) -> acc +. p.daf) 0.0 progs
    /. float_of_int nthreads
  in
  {
    measured_cycles;
    threads = Array.map counters_of threads;
    op_issues;
    level_loads;
    switch_events = !switch_events;
    transitions =
      (* ascending (prev, next) id order: deterministic regardless of
         the matrix stride; Power_sim re-sorts by opcode *name* before
         summing so the energy is also independent of how this
         machine's intern table grew *)
      (let acc = ref [] in
       for key = Array.length transitions - 1 downto 0 do
         let count = transitions.(key) in
         if count > 0 then
           acc := (key / trans_stride, key mod trans_stride, count) :: !acc
       done;
       !acc);
    daf;
    prefetches = Cache_sim.prefetches_issued cache;
  }
