test/test_model.ml: Alcotest Array Cache_geometry List Machine Measurement Mp_codegen Mp_isa Mp_model Mp_sim Mp_uarch Mp_util Option Power7 Printf Uarch_def
