lib/workloads/daxpy.mli: Mp_codegen
