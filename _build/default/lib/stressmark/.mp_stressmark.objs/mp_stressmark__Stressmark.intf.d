lib/stressmark/stressmark.mli: Mp_codegen Mp_epi Mp_isa Mp_sim
