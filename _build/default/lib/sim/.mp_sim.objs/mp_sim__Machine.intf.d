lib/sim/machine.mli: Measurement Mp_codegen Mp_uarch
