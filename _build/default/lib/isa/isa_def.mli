(** ISA registries and the readable text-file definition format.

    The paper supplies ISA definitions "using readable text files ...
    constructed using the information from ISA definition manuals", so
    that users can add/remove instructions and re-run the very same
    script without touching framework internals. This module implements
    that format: a round-trippable textual syntax parsed into a
    registry of {!Instruction.t}. *)

type t
(** An ISA: a name plus an ordered instruction registry. *)

val name : t -> string
val instructions : t -> Instruction.t list
val size : t -> int

val find : t -> string -> Instruction.t option
(** Lookup by mnemonic. *)

val find_exn : t -> string -> Instruction.t
(** Raises [Not_found] with the mnemonic in the message. *)

val mem : t -> string -> bool

val select : t -> (Instruction.t -> bool) -> Instruction.t list
(** The Figure-2 query primitive: [select isa Instruction.is_load]. *)

val create : name:string -> Instruction.t list -> t
(** Raises [Invalid_argument] on duplicate mnemonics. *)

val add : t -> Instruction.t -> t
(** Functional update; raises on duplicate mnemonic. *)

val remove : t -> string -> t
(** Removing an absent mnemonic is a no-op. *)

val parse : string -> (t, string) result
(** Parse the text-file format. Errors carry a line number. *)

val to_text : t -> string
(** Serialise back to the text format; [parse (to_text isa)] recovers
    an equal registry. *)

val pp : Format.formatter -> t -> unit
