(** Descriptive statistics and error metrics used across the framework. *)

val mean : float array -> float
(** Arithmetic mean; 0 for an empty array. *)

val variance : float array -> float
(** Population variance; 0 for fewer than two samples. *)

val stddev : float array -> float

val min_max : float array -> float * float
(** Raises [Invalid_argument] on an empty array. *)

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [\[0,100\]]; linear interpolation
    between order statistics. Raises on an empty array. *)

val median : float array -> float

val sum : float array -> float

val paae : actual:float array -> predicted:float array -> float
(** Percentage average absolute error, the paper's accuracy metric:
    mean over samples of [|pred - act| / act * 100]. Arrays must have
    equal non-zero length and positive actuals. *)

val max_abs_pct_error : actual:float array -> predicted:float array -> float
(** Maximum per-sample absolute percentage error. *)

val pearson : float array -> float array -> float
(** Correlation coefficient; 0 when either side has zero variance. *)

val normalize_to : float -> float array -> float array
(** [normalize_to r xs] scales so that the maximum maps to [r]. *)

val converged : ?tolerance:float -> float array -> bool
(** [converged ~tolerance xs] is true when the relative spread
    (max-min)/mean of the samples is below [tolerance] (default 0.01).
    Used for steady-state detection of simulated runs. *)
