lib/mem/set_assoc_model.ml: Array Cache_geometry Float Hashtbl List Mp_uarch Mp_util Option Uarch_def
