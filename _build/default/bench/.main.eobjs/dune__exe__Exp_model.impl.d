bench/exp_model.ml: Array Context Float List Machine Measurement Microprobe Mp_util Power_model Stats Text_table Uarch_def Workloads
