(* Tests for the design-space exploration module. *)

open Mp_dse

(* ----- space combinators ----------------------------------------------------- *)

let test_cartesian () =
  let pts = Space.cartesian [ [ 1; 2 ]; [ 3; 4; 5 ] ] in
  Alcotest.(check int) "2x3" 6 (List.length pts);
  Alcotest.(check bool) "contains [1;4]" true (List.mem [ 1; 4 ] pts);
  Alcotest.(check int) "empty dims = unit" 1 (List.length (Space.cartesian []))

let test_sequences () =
  let pts = Space.sequences [ 'a'; 'b'; 'c' ] ~length:6 in
  Alcotest.(check int) "3^6" 729 (List.length pts);
  Alcotest.(check int) "size fn" 729 (Space.size_sequences ~alphabet:3 ~length:6);
  Alcotest.(check int) "distinct" 729
    (List.length (List.sort_uniq compare pts))

let test_combinations () =
  let pts = Space.combinations_with_repetition [ 1; 2; 3 ] ~length:2 in
  Alcotest.(check int) "C(4,2)" 6 (List.length pts);
  Alcotest.(check int) "size fn" 6 (Space.size_combinations ~alphabet:3 ~length:2);
  Alcotest.(check bool) "sorted multisets" true
    (List.for_all (fun l -> List.sort compare l = l) pts)

let test_permutations () =
  Alcotest.(check int) "3!" 6 (List.length (Space.permutations [ 1; 2; 3 ]));
  Alcotest.(check int) "multiset distinct" 3
    (List.length (Space.distinct_permutations [ 1; 1; 2 ]));
  Alcotest.(check int) "6 over 2,2,2" 90
    (List.length (Space.distinct_permutations [ 1; 1; 2; 2; 3; 3 ]))

(* ----- drivers ------------------------------------------------------------- *)

let parabola x = -.((float_of_int x -. 17.0) ** 2.0)

let test_exhaustive () =
  let points = List.init 100 (fun i -> i) in
  let progress = ref 0 in
  let r =
    Exhaustive.search ~on_progress:(fun n _ -> progress := n) ~eval:parabola
      points
  in
  Alcotest.(check int) "best point" 17 r.Driver.best.Driver.point;
  Alcotest.(check int) "all evaluated" 100 r.Driver.evaluations;
  Alcotest.(check int) "progress called" 100 !progress;
  Alcotest.(check bool) "empty space rejected" true
    (try ignore (Exhaustive.search ~eval:parabola []); false
     with Invalid_argument _ -> true)

let test_random_search () =
  let rng = Mp_util.Rng.create 3 in
  let r =
    Random_search.search ~rng ~sample:(fun g -> Mp_util.Rng.int g 100)
      ~eval:parabola ~budget:200 ()
  in
  Alcotest.(check int) "budget respected" 200 r.Driver.evaluations;
  Alcotest.(check bool) "close to optimum" true
    (abs (r.Driver.best.Driver.point - 17) <= 3)

let test_genetic_beats_random_init () =
  (* maximise a deceptive-ish multimodal function over ints *)
  let f x =
    let x = float_of_int x in
    (10.0 *. sin (x /. 7.0)) -. (((x -. 120.0) /. 40.0) ** 2.0)
  in
  let ops =
    {
      Genetic.init = (fun g -> Mp_util.Rng.int g 256);
      mutate = (fun g x -> max 0 (min 255 (x + Mp_util.Rng.int_in g (-16) 16)));
      crossover = (fun g a b -> if Mp_util.Rng.bool g then (a + b) / 2 else a);
    }
  in
  let rng = Mp_util.Rng.create 5 in
  let r = Genetic.search ~rng ~ops ~eval:f ~population:20 ~generations:15 () in
  (* exhaustive optimum for reference *)
  let best_exh =
    (Exhaustive.search ~eval:f (List.init 256 (fun i -> i))).Driver.best
  in
  Alcotest.(check bool) "GA near global optimum" true
    (r.Driver.best.Driver.score >= best_exh.Driver.score -. 0.5)

let test_genetic_determinism () =
  let ops =
    {
      Genetic.init = (fun g -> Mp_util.Rng.int g 64);
      mutate = (fun g _ -> Mp_util.Rng.int g 64);
      crossover = (fun _ a b -> (a + b) / 2);
    }
  in
  let run () =
    let rng = Mp_util.Rng.create 9 in
    (Genetic.search ~rng ~ops ~eval:parabola ()).Driver.best.Driver.point
  in
  Alcotest.(check int) "same seed same result" (run ()) (run ())

let test_genetic_validation () =
  let ops =
    { Genetic.init = (fun _ -> 0); mutate = (fun _ x -> x);
      crossover = (fun _ a _ -> a) }
  in
  Alcotest.(check bool) "population >= 2" true
    (try
       ignore (Genetic.search ~rng:(Mp_util.Rng.create 1) ~ops ~eval:parabola
                 ~population:1 ());
       false
     with Invalid_argument _ -> true)

let test_genetic_seeds () =
  (* a seeded optimum must survive into the result even when random
     initialisation would never find it *)
  let ops =
    { Genetic.init = (fun _ -> 0);
      mutate = (fun _ x -> max 0 (x - 1));
      crossover = (fun _ a b -> min a b) }
  in
  let rng = Mp_util.Rng.create 4 in
  let r =
    Genetic.search ~rng ~ops ~eval:float_of_int ~population:6 ~generations:2
      ~elite:1 ~seeds:[ 1000 ] ()
  in
  Alcotest.(check int) "seed retained" 1000 r.Driver.best.Driver.point

let test_eval_list_dedup () =
  (* duplicate keys are scored once, in first-occurrence order, and
     the scores scatter back to every position *)
  let calls = ref 0 in
  let seen = ref [] in
  let eval x =
    incr calls;
    seen := x :: !seen;
    float_of_int (x * x)
  in
  let points = [ 3; 1; 3; 2; 1; 3 ] in
  let d0 = Driver.dup_collapsed () in
  let evals = Driver.eval_list ~key:string_of_int ~eval points in
  Alcotest.(check int) "unique evals only" 3 !calls;
  Alcotest.(check (list int)) "first-occurrence order" [ 3; 1; 2 ]
    (List.rev !seen);
  Alcotest.(check int) "dup counter delta" 3 (Driver.dup_collapsed () - d0);
  Alcotest.(check (list int)) "positions keep their own points" points
    (List.map (fun e -> e.Driver.point) evals);
  let plain = Driver.eval_list ~eval:(fun x -> float_of_int (x * x)) points in
  Alcotest.(check bool) "scores identical to the undeduped run" true
    (List.for_all2
       (fun a b -> a.Driver.score = b.Driver.score)
       evals plain)

let test_eval_list_dedup_batch () =
  (* with eval_batch, only the deduplicated points reach the batch *)
  let batches = ref [] in
  let eval_batch ps =
    batches := ps :: !batches;
    List.map float_of_int ps
  in
  let evals =
    Driver.eval_list ~key:string_of_int ~eval_batch ~eval:float_of_int
      [ 5; 5; 7; 5 ]
  in
  Alcotest.(check (list (list int))) "one deduplicated batch" [ [ 5; 7 ] ]
    !batches;
  Alcotest.(check (list int)) "scattered scores" [ 5; 5; 7; 5 ]
    (List.map (fun e -> int_of_float e.Driver.score) evals)

let test_genetic_point_key_invariant () =
  (* keyed dedup sits entirely on the evaluation side of the GA, so the
     search trajectory — every point, every score, the count — is
     bit-identical with it on or off *)
  let ops =
    { Genetic.init = (fun g -> Mp_util.Rng.int g 8);
      mutate = (fun g _ -> Mp_util.Rng.int g 8);
      crossover = (fun _ a b -> (a + b) / 2) }
  in
  let run key =
    let rng = Mp_util.Rng.create 11 in
    Genetic.search ~rng ~ops ?point_key:key ~eval:parabola ~population:8
      ~generations:4 ()
  in
  let a = run None in
  let b = run (Some string_of_int) in
  Alcotest.(check int) "same best point" a.Driver.best.Driver.point
    b.Driver.best.Driver.point;
  Alcotest.(check int) "same evaluation count" a.Driver.evaluations
    b.Driver.evaluations;
  Alcotest.(check bool) "same full trajectory" true
    (List.for_all2
       (fun x y ->
         x.Driver.point = y.Driver.point && x.Driver.score = y.Driver.score)
       a.Driver.all b.Driver.all)

let test_driver_helpers () =
  let evals =
    [ { Driver.point = "a"; score = 1.0 };
      { Driver.point = "b"; score = 5.0 };
      { Driver.point = "c"; score = 3.0 } ]
  in
  Alcotest.(check string) "best" "b" (Driver.best_of evals).Driver.point;
  Alcotest.(check bool) "top 2" true
    (List.map (fun e -> e.Driver.point) (Driver.top 2 evals) = [ "b"; "c" ])

let prop_exhaustive_maximum =
  QCheck.Test.make ~name:"exhaustive returns the true maximum" ~count:100
    QCheck.(list_of_size Gen.(int_range 1 30) (int_range (-1000) 1000))
    (fun points ->
      let eval x = float_of_int x in
      let r = Exhaustive.search ~eval points in
      r.Driver.best.Driver.score
      = List.fold_left (fun acc x -> Float.max acc (eval x)) neg_infinity points)

let prop_ga_evaluations_bound =
  QCheck.Test.make ~name:"GA evaluation count bounded" ~count:20
    QCheck.(pair (int_range 2 12) (int_range 1 6))
    (fun (pop, gens) ->
      let ops =
        { Genetic.init = (fun g -> Mp_util.Rng.int g 16);
          mutate = (fun g _ -> Mp_util.Rng.int g 16);
          crossover = (fun _ a _ -> a) }
      in
      let rng = Mp_util.Rng.create (pop + gens) in
      let r =
        Genetic.search ~rng ~ops ~eval:parabola ~population:pop
          ~generations:gens ~elite:1 ()
      in
      r.Driver.evaluations <= pop * (gens + 1))

let () =
  Alcotest.run "mp_dse"
    [
      ("space",
       [ Alcotest.test_case "cartesian" `Quick test_cartesian;
         Alcotest.test_case "sequences" `Quick test_sequences;
         Alcotest.test_case "combinations" `Quick test_combinations;
         Alcotest.test_case "permutations" `Quick test_permutations ]);
      ("drivers",
       [ Alcotest.test_case "exhaustive" `Quick test_exhaustive;
         Alcotest.test_case "random" `Quick test_random_search;
         Alcotest.test_case "genetic quality" `Quick test_genetic_beats_random_init;
         Alcotest.test_case "genetic determinism" `Quick test_genetic_determinism;
         Alcotest.test_case "genetic validation" `Quick test_genetic_validation;
         Alcotest.test_case "genetic seeds" `Quick test_genetic_seeds;
         Alcotest.test_case "eval_list dedup" `Quick test_eval_list_dedup;
         Alcotest.test_case "eval_list dedup batch" `Quick
           test_eval_list_dedup_batch;
         Alcotest.test_case "point_key invariance" `Quick
           test_genetic_point_key_invariant;
         Alcotest.test_case "helpers" `Quick test_driver_helpers ]);
      ("properties",
       [ QCheck_alcotest.to_alcotest prop_exhaustive_maximum;
         QCheck_alcotest.to_alcotest prop_ga_evaluations_bound ]);
    ]
