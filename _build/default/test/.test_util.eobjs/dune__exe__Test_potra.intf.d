test/test_potra.mli:
