type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy g = { state = g.state }

(* SplitMix64 output function (Steele, Lea & Flood 2014). *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
            0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
            0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits64 g =
  g.state <- Int64.add g.state golden_gamma;
  mix g.state

let split g =
  let seed = bits64 g in
  { state = seed }

let int g bound =
  assert (bound > 0);
  (* mask to 62 bits so the OCaml-int truncation cannot go negative *)
  let r = Int64.to_int (bits64 g) land max_int in
  r mod bound

let int_in g lo hi =
  assert (hi >= lo);
  lo + int g (hi - lo + 1)

let float g bound =
  (* 53 random bits mapped to [0,1). *)
  let r = Int64.to_float (Int64.shift_right_logical (bits64 g) 11) in
  r /. 9007199254740992.0 *. bound

let bool g = Int64.logand (bits64 g) 1L = 1L

let gaussian g ~mu ~sigma =
  let rec nonzero () =
    let u = float g 1.0 in
    if u > 0.0 then u else nonzero ()
  in
  let u1 = nonzero () and u2 = float g 1.0 in
  mu +. (sigma *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

let choose g a =
  assert (Array.length a > 0);
  a.(int g (Array.length a))

let choose_list g l =
  match l with
  | [] -> invalid_arg "Rng.choose_list: empty list"
  | _ -> List.nth l (int g (List.length l))

let shuffle_in_place g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let shuffle g l =
  let a = Array.of_list l in
  shuffle_in_place g a;
  Array.to_list a

let weighted_index g w =
  let total = Array.fold_left ( +. ) 0.0 w in
  if total <= 0.0 then invalid_arg "Rng.weighted_index: non-positive total";
  let target = float g total in
  let n = Array.length w in
  let rec scan i acc =
    if i = n - 1 then i
    else
      let acc = acc +. w.(i) in
      if target < acc then i else scan (i + 1) acc
  in
  scan 0 0.0
