lib/model/top_down.ml: Array Features Format List Measurement Mp_sim Mp_uarch Mp_util Uarch_def
