(** Exhaustive search over an enumerated design space — feasible once
    micro-architecture heuristics have constrained the space to the
    points of interest (the paper's Section 6 argument). *)

val search :
  ?on_progress:(int -> 'p Driver.evaluation -> unit) ->
  ?eval_batch:('p list -> float list) ->
  eval:('p -> float) ->
  'p list ->
  'p Driver.result
(** Evaluate every point — as one batch when [eval_batch] is given
    (see {!Driver.eval_list}). [on_progress] fires once per evaluation
    with the running count (after the batch completes, in batch mode).
    Raises [Invalid_argument] on an empty space. *)
