(** A fixed-size work-stealing domain pool for fan-out over independent
    jobs.

    The measurement engine evaluates thousands of (program,
    configuration) points whose simulations are independent; this pool
    spreads them over the machine's cores with plain stdlib domains —
    no external dependencies.

    Scheduling: every worker owns a deque. A batch is dealt round-robin
    across the deques; owners take from the front of their own deque
    and an idle worker steals from the back of another's (the two ends
    of a Chase-Lev deque, mutex-guarded). Stealing keeps domains busy
    at batch tails, where job costs are heavily skewed — an 8-core/SMT4
    simulation costs ~10x a 1-core/SMT1 one.

    Semantics:
    - {!map} and {!map_chunked} preserve the order of the input list;
      the result is indistinguishable from [List.map] applied
      left-to-right (jobs must therefore be independent and
      deterministic, which every simulation job is by construction).
      The optional [cost] hint only reorders {e execution} (heaviest
      first), never results.
    - A pool of size 1 — and any call made {e from inside} a pool
      worker — degrades to sequential execution, so nested maps can
      never deadlock on the job deques.
    - Fan-out is {e adaptive}: a batch without enough parallel width
      to amortise domain wakeup/steal overhead (see {!worthwhile} and
      the [MP_POOL_MIN_JOBS_PER_CORE] knob) also runs sequentially.
      Either execution produces bit-identical results, so the decision
      is pure scheduling; {!serial_fallbacks} / {!parallel_batches}
      count the outcomes.
    - If any job raises, the exception of the lowest-indexed failing
      job is re-raised in the caller once all jobs have drained —
      regardless of which worker ran or stole the failing job. *)

type t

val create : int -> t
(** [create n] spawns a pool of [n] worker domains (clamped to at
    least 1; a size-1 pool spawns no domains and runs sequentially). *)

val size : t -> int
(** Number of workers ([1] means sequential). *)

val steal_count : t -> int
(** Total jobs executed by a worker other than the one they were dealt
    to, since pool creation. Monotone; a scheduler health metric
    (exported to BENCH_sim.json), not part of any determinism
    contract. *)

val shutdown : t -> unit
(** Stop the workers and join them (queued jobs are drained first).
    Idempotent. Maps on a shut-down pool run sequentially. *)

val map :
  ?cost:('a -> float) ->
  ?min_jobs_per_core:float ->
  t -> ('a -> 'b) -> 'a list -> 'b list
(** Order-preserving parallel map: one job per element. [cost] is a
    scheduling hint — jobs are started heaviest-first (ties broken by
    input position) so long jobs don't land at the batch tail; it has
    no effect on the result.

    The batch fans out only when {!worthwhile} says the parallelism
    can amortise domain overhead; otherwise it runs sequentially in
    the caller (bit-identical either way). [min_jobs_per_core]
    overrides the environment threshold for this call — [0.] forces
    fan-out of any batch with width >= 2, large values force serial
    (tests use both). *)

val auto_chunk : jobs:int -> workers:int -> int
(** The chunk size {!map_chunked} derives when [?chunk] is omitted:
    ceiling division of [jobs] targeting ~8 chunks per worker, so the
    steal scheduler has slack to rebalance skewed tails while queue
    traffic stays amortised. Always ≥ 1; small inputs get chunk 1
    (plain {!map}). Exposed for tests and for callers that want to
    report the effective granularity. *)

val map_chunked :
  ?chunk:int ->
  ?cost:('a -> float) ->
  ?min_jobs_per_core:float ->
  t -> ('a -> 'b) -> 'a list -> 'b list
(** Like {!map} but groups elements into chunks to amortise queue
    traffic when jobs are small. [chunk] overrides the {!auto_chunk}
    default. A chunk's cost is the sum of its members'; result order is
    input order either way. The adaptive fan-out decision is taken at
    chunk granularity. *)

(** {2 Adaptive fan-out}

    Fanning a batch across domains only pays when the batch carries
    enough {e parallel width}: speedup is bounded by
    [total_cost / max_cost] (no schedule finishes before the largest
    job), and a pool whose workers can't each get a job's worth of
    work mostly pays wakeups. Batches below the threshold run
    sequentially in the caller — results are bit-identical by the
    {!map} contract, so the decision is pure scheduling. *)

val effective_width : ('a -> float) option -> 'a array -> float
(** [min jobs (total_cost / max_cost)] — the batch's usable
    parallelism in "largest-job equivalents"; just [jobs] without a
    cost hint (or when every cost is <= 0). *)

val worthwhile :
  size:int -> jobs:int -> width:float -> min_jobs_per_core:float -> bool
(** The fan-out predicate: a pool of [size] workers fans out a batch
    iff [size > 1], [jobs >= 2], [width >= 2] and
    [width >= min_jobs_per_core * size]. Exposed pure for tests. *)

val default_min_jobs_per_core : float
(** 0.25 — deliberately permissive: speedup is bounded by the batch's
    width, not the pool's size (a width-6 batch on 8 workers still
    wins ~6x), so the per-core criterion only rejects batches so thin
    that most domains would wake for nothing. *)

val env_min_jobs_per_core : unit -> float
(** [MP_POOL_MIN_JOBS_PER_CORE] parsed as a non-negative float,
    otherwise {!default_min_jobs_per_core}. [0] disables the
    jobs-per-core criterion (any batch of width >= 2 fans out). *)

val parallel_batches : t -> int
(** Batches (>= 2 jobs) this pool fanned out since creation. Monotone
    telemetry for BENCH_sim.json, like {!steal_count}. *)

val serial_fallbacks : t -> int
(** Batches (>= 2 jobs) this pool ran sequentially — adaptive
    fallback, nested calls, or a size-1 pool. *)

val in_worker : unit -> bool
(** True when called from inside a pool worker (nested maps degrade). *)

val detected_cores : unit -> int
(** Cores available to this process
    ([Domain.recommended_domain_count ()]). *)

val requested_size : unit -> int
(** The pool size the environment asks for: [MP_POOL_SIZE] when set to
    a positive integer, otherwise {!detected_cores}. Reported alongside
    the effective size in BENCH_sim.json so an oversubscribed or capped
    pool is visible in the artifact. *)

val default_size : unit -> int
(** The {e effective} pool size used by {!global}: an explicit
    [MP_POOL_SIZE] verbatim (deliberate pinning is honoured, even past
    the core count), otherwise {!requested_size} capped at
    {!detected_cores} — a pool never oversubscribes a small machine by
    default. *)

val global : unit -> t
(** The process-wide shared pool, created on first use with
    {!default_size} workers and shut down at exit. *)

val shutdown_global : unit -> unit
(** Shut down and drop the {!global} pool now (a later {!global} call
    creates a fresh one). Explicit counterpart to the [at_exit] hook
    for exit paths that want worker domains joined deterministically —
    the CLI and the bench harness call it before returning. Idempotent
    and safe when no global pool was ever created. *)
