test/test_util.ml: Alcotest Array Csv Float Gen List Matrix Mp_util QCheck QCheck_alcotest Rng Stats String Text_table
