test/test_epi.mli:
