lib/model/features.ml: Array Measurement Mp_sim Mp_uarch
