(** A crash-tolerant pool of worker subprocesses driven over
    stdin/stdout pipes.

    The transport layer under {!Mp_sim.Shard_exec}: it owns process
    lifecycle (spawn, reap, respawn) and length-prefixed framing, and
    knows nothing about frame contents. Every failure mode — a worker
    that died or stopped responding, a truncated or oversized frame, a
    write into a broken pipe — degrades to "this worker is gone": the
    slot is reaped (SIGKILL + waitpid, fds closed) and the call reports
    failure, leaving the {e caller} to re-run whatever was in flight.
    The next {!send} to a reaped slot respawns it transparently
    (counted by {!respawn_count}).

    Frames are a 4-byte big-endian length followed by the payload,
    bounded by a 1 GiB guard so a corrupt header cannot make the reader
    allocate garbage. Pipe ends kept by the coordinator are
    close-on-exec, so a worker spawned later never holds an earlier
    worker's pipes open (EOF on shutdown stays reliable), and writes
    are non-blocking with a deadline so a wedged worker cannot block
    the coordinator. SIGPIPE is ignored process-wide at pool creation.

    All operations are domain-safe; per-worker sends/recvs serialize on
    the pool lock only for slot bookkeeping (the blocking read itself
    runs outside it). *)

type t

val child_env : (string * string) list -> string array
(** The inherited environment with [overrides] applied on top (an
    override wins over an inherited binding of the same name; the first
    occurrence of a key within the override list wins). Exposed so
    other spawners — e.g. loopback TCP workers — build child
    environments with identical semantics. *)

val create : ?env:(string * string) list -> prog:string -> args:string list ->
  int -> t
(** [create ~prog ~args n] spawns [n] workers (clamped to at least 1)
    running [prog args], each with its stdin/stdout connected to the
    pool and stderr inherited. [env] lists overrides applied on top of
    the inherited environment (an override wins over an inherited
    binding of the same name). Raises if the initial spawns fail. *)

val size : t -> int

val ensure_size : t -> int -> unit
(** Grow the pool to at least [n] slots. New slots spawn lazily on
    first {!send} (not counted as respawns). Never shrinks. *)

val pid : t -> int -> int option
(** The worker's process id, or [None] when the slot is reaped. *)

val send : ?timeout_s:float -> t -> int -> bytes -> bool
(** Frame and write [payload] to worker [i], respawning a reaped slot
    first. [false] means the worker is gone (spawn failed, broken pipe,
    or the write timed out) and the slot has been reaped — the caller
    owns whatever it was trying to dispatch. *)

val recv : ?timeout_s:float -> t -> int -> bytes option
(** Read one frame from worker [i]. [None] means the worker is gone —
    EOF, a malformed frame, or no complete frame within [timeout_s]
    (wait forever when omitted) — and the slot has been reaped. *)

val reap : t -> int -> unit
(** Force-reap a slot: SIGKILL + waitpid, fds closed. Used by callers
    that detect a sick worker at a higher level (e.g. a frame that
    unmarshals to garbage); the next {!send} respawns. *)

val kill : t -> int -> unit
(** Test hook: SIGKILL the worker but leave the slot's bookkeeping
    untouched, exactly like a real crash — the next {!send} or {!recv}
    discovers the death and reaps. *)

val endpoint : t -> int -> Transport.endpoint
(** View slot [i] as a generic transport endpoint (label ["proc:i"]),
    so a coordinator can drive a mixed pool of subprocess and socket
    workers uniformly. *)

val shutdown : ?grace_s:float -> t -> unit
(** Close every worker's stdin (EOF lets healthy workers exit on their
    own), wait up to [grace_s] seconds (default 1.0) per straggler,
    then SIGKILL and reap. Idempotent. *)

(** {2 Process-wide telemetry}

    Cumulative across every pool in the process (the bench harness
    reports one number per metric); monotone, never part of any
    result. *)

val respawn_count : unit -> int
(** Workers spawned to replace a reaped one (initial spawns and lazy
    {!ensure_size} first-spawns excluded). *)

val frames_sent : unit -> int

val frames_received : unit -> int

(** {2 Framing primitives}

    Aliases for {!Transport}'s codec (the shared wire format under both
    this pool and {!Netpool}), kept so the worker side of a protocol
    and existing tests keep compiling against the historical names. *)

val max_frame_bytes : int

val write_frame : ?deadline:float -> Unix.file_descr -> bytes -> unit
(** [deadline] is an absolute [Unix.gettimeofday] time; raises
    [Unix.Unix_error] on timeout or write failure. *)

val read_frame : ?timeout_s:float -> Unix.file_descr -> bytes option
(** [None] on EOF, malformed length, or timeout. *)

val send_raw : t -> int -> bytes -> bool
(** Test hook: write raw bytes to worker [i] with {e no} framing, to
    simulate a truncated or corrupt frame on the wire. *)
