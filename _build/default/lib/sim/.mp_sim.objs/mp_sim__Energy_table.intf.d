lib/sim/energy_table.mli:
