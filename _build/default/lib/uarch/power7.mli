(** The POWER7 micro-architecture definition used throughout the paper:
    8 cores, SMT modes 1/2/4, 2×FXU + 2×LSU + 2×VSU pipes per core,
    32KB L1D / 256KB L2 / 4MB local L3 slice, 128-byte lines.

    Occupancies and latencies are set so that the *measured* per-class
    steady-state IPCs match the paper's Table 3 (e.g. simple integer
    ≈3.5, FXU-only ≈2.0, loads ≈1.68, update-form loads ≈1.0,
    vector/FP stores ≈0.48). *)

val define : unit -> Uarch_def.t
(** Fresh definition bound to a fresh copy of the shipped ISA. *)

val isa : Uarch_def.t -> Mp_isa.Isa_def.t
(** The ISA a definition built by [define] is bound to. *)
