let registry = [ ("POWER7", Mp_codegen.Arch.power7) ]

let get_architecture name =
  match List.assoc_opt name registry with
  | Some make -> make ()
  | None -> raise Not_found

let architectures () = List.map fst registry

let version = "1.0.0"

module Isa = Mp_isa
module Instruction = Mp_isa.Instruction
module Isa_def = Mp_isa.Isa_def
module Power_isa = Mp_isa.Power_isa
module Disasm = Mp_isa.Disasm
module Uarch = Mp_uarch
module Uarch_def = Mp_uarch.Uarch_def
module Pipe = Mp_uarch.Pipe
module Cache_geometry = Mp_uarch.Cache_geometry
module Pmc = Mp_uarch.Pmc
module Set_assoc_model = Mp_mem.Set_assoc_model
module Arch = Mp_codegen.Arch
module Reg = Mp_codegen.Reg
module Ir = Mp_codegen.Ir
module Builder = Mp_codegen.Builder
module Passes = Mp_codegen.Passes
module Synthesizer = Mp_codegen.Synthesizer
module Emit = Mp_codegen.Emit
module Dse = Mp_dse
module Machine = Mp_sim.Machine
module Core_sim = Mp_sim.Core_sim
module Cache_sim = Mp_sim.Cache_sim
module Measurement = Mp_sim.Measurement
module Measurement_cache = Mp_sim.Measurement_cache
module Replay = Mp_sim.Replay
module Shard_exec = Mp_sim.Shard_exec
module Trace = Mp_potra.Trace
module Power_model = Mp_model
module Workloads = Mp_workloads
module Epi = Mp_epi
module Stressmark = Mp_stressmark.Stressmark
module Util = Mp_util
