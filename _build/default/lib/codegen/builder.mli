(** Mutable micro-benchmark under construction. Passes transform a
    builder; {!finalize} performs operand wiring and produces the
    immutable {!Ir.t}. *)

type dep_mode =
  | No_deps
  | Fixed of int           (** first data source ← dest of the op [d] back *)
  | Random_range of int * int

type value_policy = Random_values | Constant of int64

type slot = {
  mutable op : Mp_isa.Instruction.t option;
  mutable mem_target : Ir.level option;
  mutable pattern : bool array option;
}

type t = {
  arch : Arch.t;
  rng : Mp_util.Rng.t;
  mutable name : string;
  mutable slots : slot array;
  mutable mem_distribution : (Ir.level * float) list option;
  mutable dep_mode : dep_mode;
  mutable reg_policy : value_policy;
  mutable imm_policy : value_policy;
  mutable provenance : string list;  (** reverse order *)
}

val create : Arch.t -> Mp_util.Rng.t -> t

val set_skeleton : t -> int -> unit
(** Allocate [n] empty slots. Raises if already set. *)

val size : t -> int
(** 0 before the skeleton pass. *)

val require_skeleton : t -> string -> unit
(** Raise [Failure] naming the offending pass when no skeleton exists. *)

val require_filled : t -> string -> unit
(** Raise when any slot has no instruction yet. *)

val record : t -> string -> unit
(** Append a pass name to the provenance trail. *)

val finalize : t -> Ir.t
(** Wire operands (respecting [dep_mode]), initialise registers and
    immediates per policy, and validate. Raises [Failure] on invalid
    construction (e.g. unfilled slots). *)
