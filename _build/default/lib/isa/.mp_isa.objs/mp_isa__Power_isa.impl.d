lib/isa/power_isa.ml: Instruction Isa_def
