(** The SMT/CMP-aware bottom-up counter-based power model
    (paper Section 4.1, Figure 4).

    Four steps: (1) model a single hardware context on 1-core/SMT1 data
    — per-component weights plus the SMT1 intercept; (2) model the SMT
    effect as the intercept shift of SMT-enabled runs; (3) model the
    CMP effect and uncore power by regressing the residuals of runs
    across core counts against the number of enabled cores; (4) combine:

    P = Σ_threads P_dyn + SMT_effect·#cores·[SMT on] + CMP_effect·#cores
        + P_uncore + P_workload_independent *)

type style =
  | Joint       (** one non-negative least-squares fit over all components *)
  | Sequential  (** the paper's per-component regression sequence *)

type t = {
  weights : float array;    (** 7 component weights (non-negative) *)
  intercept1 : float;       (** workload-independent power (SMT1 fit) *)
  smt_effect : float;       (** per core with SMT enabled *)
  cmp_effect : float;       (** per enabled core *)
  uncore : float;
  style : style;
}

val train :
  ?style:style ->
  baseline:float ->
  smt1:Mp_sim.Measurement.t list ->
  smt_on:Mp_sim.Measurement.t list ->
  multi:Mp_sim.Measurement.t list ->
  unit ->
  t
(** [baseline]: the measured deepest-idle sensor reading (the
    workload-independent power anchor). [smt1]: micro-benchmarks on 1
    core, SMT1 (step 1). [smt_on]: on 1
    core with SMT 2/4 (step 2). [multi]: runs spanning core counts
    (step 3; the paper uses the random family on every configuration).
    Default style [Joint]. Raises [Invalid_argument] when a step's data
    is empty or on the wrong configuration. *)

val predict : t -> Mp_sim.Measurement.t -> float

type breakdown = {
  workload_independent : float;
  uncore_part : float;
  cmp_part : float;
  smt_part : float;
  dynamic : float;
}

val decompose : t -> Mp_sim.Measurement.t -> breakdown
(** Per-component prediction breakdown (sums to [predict]). *)

val breakdown_total : breakdown -> float
val pp : Format.formatter -> t -> unit
