lib/codegen/arch.mli: Format Mp_isa Mp_uarch
