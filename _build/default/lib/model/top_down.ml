open Mp_sim
open Mp_uarch

type t = {
  coefficients : float array;
  cores_coef : float;
  smt_coef : float;
  intercept : float;
  training_set : string;
}

let row (m : Measurement.t) =
  let x = Features.chip_sum m in
  let n = float_of_int m.Measurement.config.Uarch_def.cores in
  let smt = if m.Measurement.config.Uarch_def.smt > 1 then 1.0 else 0.0 in
  Array.concat [ x; [| n; smt; 1.0 |] ]

let train ~name samples =
  let k = Features.count + 3 in
  if List.length samples < k then
    invalid_arg "Top_down.train: not enough samples";
  let rows = Array.of_list (List.map row samples) in
  let y =
    Array.of_list
      (List.map (fun (m : Measurement.t) -> m.Measurement.power) samples)
  in
  let beta = Mp_util.Matrix.ols ~ridge:1e-6 (Mp_util.Matrix.of_arrays rows) y in
  {
    coefficients = Array.sub beta 0 Features.count;
    cores_coef = beta.(Features.count);
    smt_coef = beta.(Features.count + 1);
    intercept = beta.(Features.count + 2);
    training_set = name;
  }

let predict t (m : Measurement.t) =
  let x = Features.chip_sum m in
  let n = float_of_int m.Measurement.config.Uarch_def.cores in
  let smt = if m.Measurement.config.Uarch_def.smt > 1 then 1.0 else 0.0 in
  Features.dot t.coefficients x +. (t.cores_coef *. n) +. (t.smt_coef *. smt)
  +. t.intercept

let pp ppf t =
  Format.fprintf ppf "top-down model (%s): intercept %.2f, cores %.3f, smt %.3f"
    t.training_set t.intercept t.cores_coef t.smt_coef
