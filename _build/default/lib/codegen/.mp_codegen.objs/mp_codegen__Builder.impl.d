lib/codegen/builder.ml: Arch Array Hashtbl Instruction Int64 Ir List Mp_isa Mp_util Printf Reg Reg_alloc
