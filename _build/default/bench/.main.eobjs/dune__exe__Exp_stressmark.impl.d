bench/exp_stressmark.ml: Arch Array Context Float Instruction List Machine Measurement Microprobe Mp_util Printf Stats Stressmark String Text_table Uarch_def Workloads
