(* 64-bit FNV-1a folding with a splitmix-style finisher. The folds are
   plain multiply-xor steps — cheap enough to run per instruction at
   program-build time — and [finish] adds the avalanche FNV itself
   lacks, so low-entropy inputs (small ints, short mnemonics) still
   spread over the whole 64-bit space. *)

type t = int64

let seed = 0xCBF29CE484222325L (* FNV-1a offset basis *)
let prime = 0x100000001B3L

let byte h b = Int64.mul (Int64.logxor h (Int64.of_int (b land 0xFF))) prime

let int64 h v =
  let h = ref h in
  for shift = 0 to 7 do
    h := byte !h (Int64.to_int (Int64.shift_right_logical v (shift * 8)))
  done;
  !h

let int h v = int64 h (Int64.of_int v)

let bool h b = byte h (if b then 1 else 0)

(* length-prefixed, so adjacent strings can't alias across a boundary *)
let string h s =
  let h = ref (int h (String.length s)) in
  String.iter (fun c -> h := byte !h (Char.code c)) s;
  !h

(* splitmix64 finalizer *)
let finish z =
  let z =
    Int64.mul
      (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul
      (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let to_hex v = Printf.sprintf "%016Lx" v

(* ----- native-int variant ------------------------------------------------- *)

(* The same multiply-xor structure on OCaml's untagged 63-bit ints: no
   Int64 boxing, so a fold is a handful of machine instructions. Used
   where a hash is recomputed inside a simulator hot loop (the cache
   model re-hashes a set on every fill). The constants are the 64-bit
   ones truncated into native-int range, so the two variants are NOT
   interchangeable — finished values live in different spaces. *)

let seed_int = 0x3BF29CE484222325 (* offset basis, truncated to 62 bits *)
let prime_int = 0x100000001B3

let fold_int h v = (h lxor v) * prime_int

(* splitmix-style avalanche, constants truncated into native-int range *)
let finish_int z =
  let z = (z lxor (z lsr 30)) * 0x3F58476D1CE4E5B9 in
  let z = (z lxor (z lsr 27)) * 0x14D049BB133111EB in
  z lxor (z lsr 31)
