(** Content-addressed memoization of measurements, in memory and
    optionally on disk.

    The search drivers re-measure identical (program, configuration)
    points constantly — GA elitism carries points across generations,
    crossover regenerates previously seen sequences, and phased
    workloads repeat their phase programs. Measurements are
    deterministic given (machine seed, program, configuration,
    warmup/measure), so a content-addressed cache returns the exact
    measurement the simulation would have produced.

    Keys digest everything the simulation depends on: the machine seed,
    the configuration, the warmup/measure window, the run name (the
    per-run RNG is seeded from it), a structural fingerprint of every
    per-thread program (opcodes, operands, immediates, memory targets,
    branch patterns, register initialisation and the memory
    distribution) and, via the optional [uarch] argument, the
    micro-architecture definition itself.

    {2 Disk persistence}

    A cache created with [~disk] also persists entries under
    [disk.dir], one file per entry ([namespace ^ "-" ^ key], written to
    a temp file and renamed so readers never see partial entries), and
    consults the directory on in-memory misses — repeated harness
    invocations skip every point a previous run already simulated.
    Entries shard into subdirectories named by the first two hex digits
    of the key ([disk.dir/ab/<namespace>-<key>]) so huge caches never
    accumulate one enormous flat directory; entries written by earlier
    versions into the flat root are still read, and migrated into their
    shard on first access. The namespace stamps the schema version
    {e and a digest of the running executable}: entries written by a
    different build are ignored (and pruned on first use), because a
    rebuilt simulator may map the same key to a different measurement.
    Corrupt, truncated or wrong-version files are treated as misses,
    never errors.

    All operations are domain-safe: the table is guarded by a mutex so
    a {!Machine.run_batch} fan-out can share one cache. *)

type t

type disk = { dir : string; namespace : string }

val schema_version : int
(** Bumped when the on-disk entry layout changes. *)

val namespace : unit -> string
(** ["v<schema>-<digest of the running executable>"] — the prefix under
    which this build's entries live. *)

val env_disk : unit -> disk option
(** The disk configuration the environment selects: [None] when
    [MP_CACHE] is [off]/[0]/[false]/[no], otherwise the directory named
    by [MP_CACHE_DIR] (default ["_mp_cache"]) with {!namespace}. This
    is what {!Machine.create} uses. *)

val create : ?disk:disk -> unit -> t
(** [create ()] is purely in-memory; [create ~disk ()] also reads and
    writes [disk.dir] (created on first write; stale-namespace entries
    are pruned once per process, and when [MP_CACHE_MAX_MB] is set the
    directory is {!gc}'d down to that bound once per process). *)

(** {2 Housekeeping}

    The directory otherwise grows without limit: the current build's
    entries accumulate across runs, and every rebuild opens a fresh
    namespace. *)

type gc_stats = {
  entries : int;      (** entry files examined (in-flight temps excluded) *)
  removed : int;      (** entries deleted by this sweep *)
  bytes_before : int;
  bytes_after : int;
}

val env_max_bytes : unit -> int option
(** The size bound the environment selects: [MP_CACHE_MAX_MB] parsed as
    a positive number of mebibytes ([None] when unset or unparsable). *)

val gc : ?max_bytes:int -> string -> gc_stats
(** [gc dir] prunes entry files from a cache directory, oldest mtime
    first (name breaks ties, so eviction order is deterministic), until
    the total size is at most [max_bytes] (default {!env_max_bytes};
    a no-op sweep when neither gives a bound). Entries still being
    written — the [.tmp.*] files {!add} renames into place — are never
    touched, and a concurrently deleted entry is simply a future cache
    miss, so running [gc] against a live cache is safe. Best-effort:
    IO errors skip the file rather than raise. *)

type disk_stats = {
  ds_shards : int;   (** two-hex-digit shard subdirectories present *)
  ds_entries : int;  (** entry files, root plus shards (temps excluded) *)
  ds_bytes : int;    (** total size of those entries *)
}

val disk_stats : string -> disk_stats
(** Read-only scan of a cache (or replay-store) directory — what
    [mp-cache stat] prints. A missing directory reports all zeros;
    in-flight [.tmp.*] files are excluded, as everywhere else. *)

val persistent : t -> bool

type stats = {
  hits : int;      (** lookups served without computing (memory or disk) *)
  misses : int;    (** computations actually executed *)
  disk_hits : int; (** the subset of [hits] loaded from disk *)
}

val stats : t -> stats

val hit_rate : t -> float
(** [hits / (hits + misses)]; 0 when nothing was looked up. *)

val reset_stats : t -> unit

val clear : t -> unit
(** Drop the in-memory table and the counters (disk entries are kept). *)

val length : t -> int
(** Number of memoized measurements in memory. *)

val uarch_fingerprint : Mp_uarch.Uarch_def.t -> string
(** Digest of a micro-architecture definition, for the [uarch] key
    component — two machines with different uarchs must never share an
    entry. *)

val key :
  ?uarch:string ->
  ?seed:int ->
  config:Mp_uarch.Uarch_def.config ->
  warmup:int ->
  measure:int ->
  name:string ->
  Mp_codegen.Ir.t array ->
  string
(** Digest of one measurement job. The array holds the per-thread
    programs (a single element for homogeneous deployment — replication
    over SMT threads is captured by [config]); [uarch] is a
    {!uarch_fingerprint} (default empty for callers with a fixed
    uarch). Omit [seed] for seed-independent measurements (no
    seed-consuming generation pass, no memory streams): their bytes are
    the same on every machine, so the shared key lets warm disk caches
    serve all seeds.

    By default this is {!key_structural} — an O(1)-per-program fold of
    the precomputed {!Mp_codegen.Ir.struct_hash} fields. Setting
    [MP_KEY=marshal] in the environment switches to {!key_marshal}, the
    original serialise-and-MD5 derivation, as a debug escape hatch; the
    two induce identical hit/miss equivalence classes but produce
    different key strings (so a disk cache written under one derivation
    is cold under the other). *)

val key_structural :
  ?uarch:string ->
  ?seed:int ->
  config:Mp_uarch.Uarch_def.config ->
  warmup:int ->
  measure:int ->
  name:string ->
  Mp_codegen.Ir.t array ->
  string
(** The fast derivation: FNV/splitmix fold over the job parameters and
    each program's precomputed structural hash. 16 hex characters. *)

val key_marshal :
  ?uarch:string ->
  ?seed:int ->
  config:Mp_uarch.Uarch_def.config ->
  warmup:int ->
  measure:int ->
  name:string ->
  Mp_codegen.Ir.t array ->
  string
(** The reference derivation: serialise every program field into a
    buffer and MD5 it. 32 hex characters. Exposed for the equivalence
    tests and the [MP_KEY=marshal] escape hatch. *)

val key_seconds : unit -> float
(** Cumulative wall-clock seconds this process has spent inside {!key}
    (either derivation), for the bench harness's
    [key_digest_seconds] metric. *)

val find : t -> string -> Measurement.t option
(** Memory first, then disk (promoting a disk entry into memory).
    Counts a hit or a miss. *)

val add : t -> string -> Measurement.t -> unit
(** First writer wins (concurrent writers compute identical values);
    persisted when the cache has a disk. *)

val find_or_add : t -> string -> (unit -> Measurement.t) -> Measurement.t
(** [find_or_add t k compute] returns the cached measurement for [k],
    or runs [compute] (outside the lock) and memoizes its result.

    {e Single-flight}: concurrent calls for the same key run [compute]
    at most once — the first claimant computes while the others block
    until the value is published, then return it (counted as hits, so
    [misses] equals computations executed). If the computing domain's
    [compute] raises, the exception propagates to it alone and one
    blocked caller takes over the computation. [compute] must not
    re-enter [find_or_add] with the same key (it would deadlock);
    simulation jobs never do. *)
