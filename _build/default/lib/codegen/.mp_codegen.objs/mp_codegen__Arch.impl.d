lib/codegen/arch.ml: Format Mp_isa Mp_uarch
