examples/stressmark_hunt.ml: Arch Epi Float Instruction List Machine Measurement Microprobe Printf Stressmark String Uarch_def Util Workloads
