lib/workloads/extreme.mli: Mp_codegen
