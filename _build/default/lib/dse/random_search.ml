let search ~rng ~sample ~eval ~budget =
  if budget <= 0 then invalid_arg "Random_search.search: budget";
  let all =
    List.init budget (fun _ ->
        let p = sample rng in
        { Driver.point = p; score = eval p })
  in
  { Driver.best = Driver.best_of all; evaluations = budget; all }
