(* A crash-tolerant pool of remote workers driven over TCP sockets.
   The socket sibling of [Procpool]: same frame codec ([Transport]),
   same failure contract — every failure mode (connect refused, reset
   connection, truncated frame, read timeout) degrades to "this peer is
   gone" (the slot is reaped and the call reports failure), and the
   *caller* re-runs whatever was in flight. Unlike subprocesses, a
   remote peer cannot be respawned from here: a reaped slot just
   reconnects on the next send, with capped exponential backoff so a
   down host costs a bounded fast-fail instead of a connect timeout per
   batch. *)

(* ----- process-wide telemetry -------------------------------------------- *)

let sent = Atomic.make 0
let received = Atomic.make 0
let bytes_total = Atomic.make 0
let reconnects = Atomic.make 0

let frames_sent () = Atomic.get sent
let frames_received () = Atomic.get received
let bytes_transferred () = Atomic.get bytes_total
let reconnect_count () = Atomic.get reconnects

(* ----- the pool ---------------------------------------------------------- *)

type stats = {
  st_frames_sent : int;
  st_frames_received : int;
  st_bytes_sent : int;
  st_bytes_received : int;
  st_reconnects : int;
}

type peer = {
  p_host : string;
  p_port : int;
  p_label : string;
  mutable p_fd : Unix.file_descr option;
  mutable p_connected_once : bool; (* a later connect is a reconnect *)
  mutable p_backoff_s : float;
  mutable p_next_attempt : float; (* gettimeofday before which we fast-fail *)
  mutable p_frames_sent : int;
  mutable p_frames_received : int;
  mutable p_bytes_sent : int;
  mutable p_bytes_received : int;
  mutable p_reconnects : int;
}

type t = {
  handshake : bytes option;
  connect_timeout_s : float;
  lock : Mutex.t; (* guards peer slots (connect/reap transitions) *)
  peers : peer array;
}

let backoff_initial_s = 0.05
let backoff_cap_s = 2.0

let default_connect_timeout_s () =
  match Sys.getenv_opt "MP_NET_CONNECT_TIMEOUT_S" with
  | Some s -> (match float_of_string_opt s with Some f when f > 0.0 -> f | _ -> 10.0)
  | None -> 10.0

let fresh_peer (host, port) =
  {
    p_host = host;
    p_port = port;
    p_label = Printf.sprintf "%s:%d" host port;
    p_fd = None;
    p_connected_once = false;
    p_backoff_s = backoff_initial_s;
    p_next_attempt = 0.0;
    p_frames_sent = 0;
    p_frames_received = 0;
    p_bytes_sent = 0;
    p_bytes_received = 0;
    p_reconnects = 0;
  }

let create ?handshake ?connect_timeout_s hosts =
  (* a write into a socket whose peer just died must surface as an
     error, not kill the coordinator *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with _ -> ());
  let connect_timeout_s =
    match connect_timeout_s with
    | Some s -> s
    | None -> default_connect_timeout_s ()
  in
  {
    handshake;
    connect_timeout_s;
    lock = Mutex.create ();
    peers = Array.of_list (List.map fresh_peer hosts);
  }

let size t = Array.length t.peers

let resolve host port =
  match Unix.getaddrinfo host (string_of_int port)
          [ Unix.AI_SOCKTYPE Unix.SOCK_STREAM ] with
  | [] -> None
  | ai :: _ -> Some ai.Unix.ai_addr

(* Non-blocking connect + select + SO_ERROR, so a black-holed host
   costs [connect_timeout_s] instead of the kernel's minutes-long
   default. The socket stays non-blocking afterwards: frame writes go
   through [Transport.write_all], which handles EAGAIN with the send
   deadline, and reads always pass through select. *)
let connect_fd t peer =
  match resolve peer.p_host peer.p_port with
  | None -> None
  | Some addr ->
    let fd = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
    Unix.set_close_on_exec fd;
    Unix.set_nonblock fd;
    (try Unix.setsockopt fd Unix.TCP_NODELAY true with _ -> ());
    let ok =
      match Unix.connect fd addr with
      | () -> true
      | exception Unix.Unix_error ((Unix.EINPROGRESS | Unix.EWOULDBLOCK), _, _) ->
        (match Unix.select [] [ fd ] [] t.connect_timeout_s with
         | _, [ _ ], _ -> Unix.getsockopt_error fd = None
         | _ -> false
         | exception _ -> false)
      | exception _ -> false
    in
    if not ok then begin
      (try Unix.close fd with _ -> ());
      None
    end
    else Some fd

(* The handshake makes wire-compatibility explicit instead of hoping:
   both ends exchange one frame carrying the protocol tag plus the
   measurement-cache namespace (schema version + binary digest), and a
   mismatch rejects the peer before any Marshal.Closures payload is
   ever decoded against the wrong binary. *)
let handshake_ok t fd =
  match t.handshake with
  | None -> true
  | Some hs ->
    let deadline = Unix.gettimeofday () +. t.connect_timeout_s in
    (match Transport.write_frame ~deadline fd hs with
     | exception _ -> false
     | () ->
       (match Transport.read_frame ~timeout_s:t.connect_timeout_s fd with
        | Some reply -> Bytes.equal reply hs
        | None -> false))

(* must hold t.lock *)
let reap_locked peer =
  (match peer.p_fd with
   | Some fd -> (try Unix.close fd with _ -> ())
   | None -> ());
  peer.p_fd <- None

(* must hold t.lock; returns the live fd or None. Respects the backoff
   window so a down host fast-fails instead of paying the connect
   timeout on every send. *)
let ensure_connected_locked t peer =
  match peer.p_fd with
  | Some fd -> Some fd
  | None ->
    let now = Unix.gettimeofday () in
    if now < peer.p_next_attempt then None
    else begin
      match connect_fd t peer with
      | Some fd when handshake_ok t fd ->
        if peer.p_connected_once then begin
          peer.p_reconnects <- peer.p_reconnects + 1;
          Atomic.incr reconnects
        end;
        peer.p_connected_once <- true;
        peer.p_backoff_s <- backoff_initial_s;
        peer.p_next_attempt <- 0.0;
        peer.p_fd <- Some fd;
        Some fd
      | Some fd ->
        (* reachable but wrong protocol/namespace: still back off, or a
           stale worker would be re-handshaken on every send *)
        (try Unix.close fd with _ -> ());
        peer.p_next_attempt <- now +. peer.p_backoff_s;
        peer.p_backoff_s <- Float.min backoff_cap_s (peer.p_backoff_s *. 2.0);
        None
      | None ->
        peer.p_next_attempt <- now +. peer.p_backoff_s;
        peer.p_backoff_s <- Float.min backoff_cap_s (peer.p_backoff_s *. 2.0);
        None
    end

let connect ?(retry_for_s = 0.0) t i =
  let deadline = Unix.gettimeofday () +. retry_for_s in
  let rec loop () =
    Mutex.lock t.lock;
    let peer = t.peers.(i) in
    (* an explicit connect is a caller saying "try now" — e.g. a test
       that just restarted the worker — so skip the backoff window *)
    peer.p_next_attempt <- 0.0;
    let ok = ensure_connected_locked t peer <> None in
    Mutex.unlock t.lock;
    if ok then true
    else if Unix.gettimeofday () < deadline then begin
      Unix.sleepf 0.02;
      loop ()
    end
    else false
  in
  loop ()

let send ?timeout_s t i payload =
  let deadline = Option.map (fun s -> Unix.gettimeofday () +. s) timeout_s in
  Mutex.lock t.lock;
  let peer = t.peers.(i) in
  let ok =
    match ensure_connected_locked t peer with
    | None -> false
    | Some fd ->
      (match Transport.write_frame ?deadline fd payload with
       | () ->
         let n = Bytes.length payload + Transport.frame_header_bytes in
         peer.p_frames_sent <- peer.p_frames_sent + 1;
         peer.p_bytes_sent <- peer.p_bytes_sent + n;
         Atomic.incr sent;
         ignore (Atomic.fetch_and_add bytes_total n);
         true
       | exception _ ->
         reap_locked peer;
         false)
  in
  Mutex.unlock t.lock;
  ok

let recv ?timeout_s t i =
  let fd =
    Mutex.lock t.lock;
    let fd = t.peers.(i).p_fd in
    Mutex.unlock t.lock;
    fd
  in
  match fd with
  | None -> None
  | Some fd ->
    (* the read itself runs outside the lock — a slow peer must not
       block sends to its siblings *)
    (match Transport.read_frame ?timeout_s fd with
     | Some payload ->
       let n = Bytes.length payload + Transport.frame_header_bytes in
       Mutex.lock t.lock;
       let peer = t.peers.(i) in
       peer.p_frames_received <- peer.p_frames_received + 1;
       peer.p_bytes_received <- peer.p_bytes_received + n;
       Mutex.unlock t.lock;
       Atomic.incr received;
       ignore (Atomic.fetch_and_add bytes_total n);
       Some payload
     | None ->
       Mutex.lock t.lock;
       reap_locked t.peers.(i);
       Mutex.unlock t.lock;
       None)

let reap t i =
  Mutex.lock t.lock;
  reap_locked t.peers.(i);
  Mutex.unlock t.lock

let connected t i =
  Mutex.lock t.lock;
  let up = t.peers.(i).p_fd <> None in
  Mutex.unlock t.lock;
  up

let label t i = t.peers.(i).p_label

let stats t i =
  Mutex.lock t.lock;
  let p = t.peers.(i) in
  let s =
    {
      st_frames_sent = p.p_frames_sent;
      st_frames_received = p.p_frames_received;
      st_bytes_sent = p.p_bytes_sent;
      st_bytes_received = p.p_bytes_received;
      st_reconnects = p.p_reconnects;
    }
  in
  Mutex.unlock t.lock;
  s

let endpoint t i =
  let fd () =
    Mutex.lock t.lock;
    let fd = t.peers.(i).p_fd in
    Mutex.unlock t.lock;
    fd
  in
  {
    Transport.ep_label = label t i;
    ep_send = (fun ?timeout_s payload -> send ?timeout_s t i payload);
    ep_recv = (fun ?timeout_s () -> recv ?timeout_s t i);
    ep_reap = (fun () -> reap t i);
    (* one socket carries both directions; unconnected peers expose
       neither side, so the poll loop skips them until a send connects *)
    ep_rfd = fd;
    ep_wfd = fd;
  }

let shutdown t =
  Mutex.lock t.lock;
  Array.iter reap_locked t.peers;
  Mutex.unlock t.lock
