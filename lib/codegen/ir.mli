(** Micro-benchmark internal representation.

    A micro-benchmark is an endless loop: a body of payload
    instructions plus an implicit loop-closing [bdnz]. Memory
    instructions carry a {e target hierarchy level}; the concrete
    address streams are instantiated at deployment time (per hardware
    thread) by the measurement harness, so that one program can be
    replicated over any SMT partition without violating the analytical
    model's disjointness guarantees. *)

type level = Mp_uarch.Cache_geometry.level

type instr = {
  index : int;
  op : Mp_isa.Instruction.t;
  dests : Reg.t list;           (** results, including update write-backs *)
  srcs : Reg.t list;            (** register data + address sources *)
  imm : int64 option;
  mem_target : level option;    (** [Some _] iff [op] is a memory op *)
  taken_pattern : bool array option;
      (** conditional branches: outcome per dynamic execution, cycled *)
}

type t = {
  name : string;
  body : instr array;
  reg_init : (Reg.t * int64) list;
  imm_policy : string;          (** provenance of immediate initialisation *)
  memory_distribution : (level * float) list option;
  provenance : string list;     (** names of the passes applied, in order *)
  struct_hash : int64;
      (** structural content hash, precomputed at {!Builder.finalize}
          time — see {!compute_struct_hash} *)
  body_hash : int64;
      (** like [struct_hash] but excluding the name — see
          {!compute_body_hash} *)
}

val size : t -> int
(** Payload instructions in the loop body. *)

val compute_struct_hash :
  name:string ->
  body:instr array ->
  reg_init:(Reg.t * int64) list ->
  memory_distribution:(level * float) list option ->
  int64
(** 64-bit FNV/splitmix content hash of everything a measurement can
    depend on through the program: name, instruction stream (opcodes,
    operands, immediates, memory targets, branch patterns), register
    initialisation and memory distribution. [imm_policy] and
    [provenance] are excluded (build metadata, already reflected in the
    hashed fields). Deterministic across processes, so it is safe in
    persistent cache keys; the measurement cache folds this precomputed
    field instead of re-serialising the program on every lookup. *)

val compute_body_hash :
  body:instr array ->
  reg_init:(Reg.t * int64) list ->
  memory_distribution:(level * float) list option ->
  int64
(** The same content fold as {!compute_struct_hash} {e without} the
    name: programs differing only in their label share it. The name
    reaches a measurement only through the per-run RNG (address-stream
    randomisation for memory programs, sensor noise), so
    name-insensitive layers — the steady-state {!Mp_sim.Replay} table —
    key on this hash and fold the RNG inputs in separately, exactly
    when a program consumes them. *)

val rehash : t -> t
(** Recompute [struct_hash] and [body_hash] from the current field
    values — required after hand-editing a finalized program (e.g.
    [{ p with body }] in tests); {!Builder.finalize} output is already
    hashed. *)

val struct_hash : t -> int64

val body_hash : t -> int64

val has_memory : t -> bool
(** Whether any body instruction is a memory operation — allocation-free
    (unlike [memory_instructions <> []]). *)

val instruction_mix : t -> (string * int) list
(** Mnemonic histogram, descending count. *)

val memory_instructions : t -> instr list

val validate : t -> (unit, string) result
(** Structural invariants: indices are dense, memory ops have targets
    and non-memory ops do not, operand register classes agree with the
    instruction signature, register indices are within file bounds. *)

val data_activity_factor : t -> float
(** Mean normalised population count of the register initialisation
    values, in [\[0, 1\]]. Random data sits near 0.5; all-zero data at
    0. The power ground-truth uses this to model data-dependent
    switching. *)

val pp_summary : Format.formatter -> t -> unit
