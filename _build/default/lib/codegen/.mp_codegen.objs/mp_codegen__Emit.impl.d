lib/codegen/emit.ml: Array Buffer Instruction Int64 Ir List Mp_isa Mp_uarch Printf Reg String
