lib/uarch/cache_geometry.ml: Format
