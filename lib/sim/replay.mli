(** Steady-state replay: closed-form measurement steps compiled from
    fingerprinted periods.

    {!Core_sim}'s period detector proves, by full-state fingerprint
    {e equality}, that the machine state repeats at an iteration
    boundary. A run that detected a period therefore factors exactly
    into head + k·period + tail, with an integer per-period counter
    delta. This table stores each run's final activity together with
    that delta; a later measurement of the same structural program —
    a different batch, a later bootstrap round, a GA re-evaluation, a
    different window length — is answered by [base + k·delta] without
    simulating warmup-to-steady-state at all. Replayed activities are
    bit-identical to dense simulation (asserted by the test suite and
    the replay benchmark).

    Records are keyed on the uarch fingerprint, SMT mode, warmup,
    effective memory latency, and each per-thread program's name-free
    {!Mp_codegen.Ir.body_hash}; programs that consume per-run
    randomness (memory address streams) additionally fold the RNG
    inputs via [salt]. The measured window is deliberately {e not}
    part of the key — one record serves every admissible window
    through the period step. Counters are stored by opcode name, so a
    record reifies bit-identically against any machine's intern table
    ({!Power_sim} sums energies in name order).

    The whole layer is disabled by [MP_REPLAY=off] (accepted spellings
    as for [MP_PERIOD]); {!Machine.create} then simulates every run
    densely. Records persist to disk under the measurement cache's
    directory ([MP_CACHE_DIR]/replay, same [MP_CACHE] gate, same
    2-hex-digit sharding, same binary-stamped namespace), so warm runs
    skip even their first-period simulation. *)

type t

val create : ?disk_dir:string -> unit -> t
(** An empty table. [disk_dir] (absent by default) adds persistent
    storage rooted at that directory — tests use isolated in-memory
    tables. *)

val global : unit -> t
(** The process-wide table {!Machine.create} attaches by default,
    created on first use with the environment's disk configuration
    (see {!enabled}). *)

val enabled : unit -> bool
(** False when [MP_REPLAY] is set to [off]/[0]/[false]/[no]. *)

val length : t -> int
(** Number of in-memory records. *)

val key :
  uarch:string ->
  smt:int ->
  warmup:int ->
  mem_latency:int ->
  ?salt:string ->
  Mp_codegen.Ir.t array ->
  string
(** Digest of everything a run's activity depends on except the
    measured window. [uarch] is a
    {!Measurement_cache.uarch_fingerprint}; [mem_latency] the
    {e effective} latency (base, or inflated by bandwidth contention);
    [salt] folds the per-run RNG inputs and must be supplied exactly
    when some per-thread program consumes randomness (memory address
    streams). The array holds the per-thread programs, hashed by
    {!Mp_codegen.Ir.body_hash} so records are shared across program
    names. *)

val find :
  t ->
  opmap:Core_sim.opmap ->
  daf:float ->
  warmup:int ->
  measure:int ->
  string ->
  Core_sim.activity option
(** The activity of a [measure]-iteration window reconstructed from a
    stored record: a base snapshot at the same window verbatim, or any
    base plus an integral number of period steps. A window is
    admissible from base [b] when [(measure - b) mod period_iters = 0]
    and both totals (warmup+measure) reach the period's recorded
    minimum — below it the run would end before the fingerprint match,
    so its counters are not of head + k·period + tail form. Counts a
    hit or a miss. *)

val record :
  t ->
  opmap:Core_sim.opmap ->
  measure:int ->
  string ->
  Core_sim.activity ->
  Core_sim.period_delta option ->
  unit
(** Store a dense run's final activity (and, when the run skipped a
    period, the per-period delta) under the key. Merging keeps one
    base per distinct window (bounded) and the first period delta;
    concurrent writers store identical data, so first-writer-wins is
    safe. Persisted when the table has a disk directory. *)

val hits : unit -> int
(** Process-wide count of measurements served from replay records.
    Monotone telemetry (exported to BENCH_sim.json), never part of any
    activity. *)

val misses : unit -> int
(** Process-wide count of {!find} calls that fell through to dense
    simulation. *)
