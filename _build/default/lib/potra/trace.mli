(** POTRA-style power/performance trace handling (the paper analyses
    its sensor and PMC traces with the POTRA framework \[6\]): uniform
    time series with windowed aggregation and stability detection. *)

type t = { period_ms : float; samples : float array }

val create : period_ms:float -> float array -> t
val length : t -> int
val duration_ms : t -> float
val mean : t -> float
val max : t -> float
val min : t -> float

val window_means : t -> window:int -> float array
(** Non-overlapping window means (last partial window dropped). *)

val stable_region : ?tolerance:float -> t -> (int * int) option
(** Longest contiguous region (as sample indices, inclusive) whose
    relative spread stays within [tolerance] (default 0.02); [None] if
    no region of at least 4 samples qualifies. Used to discard the
    warmup transient of a measurement. *)

val stable_mean : ?tolerance:float -> t -> float
(** Mean of the stable region, falling back to the global mean. *)

val segments : ?tolerance:float -> ?min_length:int -> t -> (int * int) list
(** Greedy phase segmentation: maximal contiguous regions whose
    relative spread stays within [tolerance] (default 0.05), each at
    least [min_length] samples (default 2; shorter runs merge into the
    previous phase). Segments cover the trace and are returned in
    order — the "phase-specific" power view of a workload trace. *)

val segment_means : ?tolerance:float -> ?min_length:int -> t -> float array
(** Mean power of each segment, in order. *)

val concat : t list -> t
(** Concatenate traces with the first trace's period. *)

val subsample : t -> every:int -> t

val to_rows : t -> (float * float) list
(** (time_ms, value) pairs, for plotting/CSV export. *)
