lib/dse/driver.mli:
