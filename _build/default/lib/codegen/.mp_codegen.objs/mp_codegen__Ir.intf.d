lib/codegen/ir.mli: Format Mp_isa Mp_uarch Reg
