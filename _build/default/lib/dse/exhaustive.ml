let search ?on_progress ~eval points =
  if points = [] then invalid_arg "Exhaustive.search: empty space";
  let count = ref 0 in
  let all =
    List.map
      (fun p ->
        let e = { Driver.point = p; score = eval p } in
        incr count;
        (match on_progress with Some f -> f !count e | None -> ());
        e)
      points
  in
  { Driver.best = Driver.best_of all; evaluations = !count; all }
