(** Budgeted random sampling of a design space — the baseline driver. *)

val search :
  rng:Mp_util.Rng.t ->
  sample:(Mp_util.Rng.t -> 'p) ->
  eval:('p -> float) ->
  ?eval_batch:('p list -> float list) ->
  budget:int ->
  unit ->
  'p Driver.result
(** All [budget] points are drawn before scoring, so with [eval_batch]
    the entire budget is evaluated as one batch (see
    {!Driver.eval_list}); the sampled points are identical either
    way. *)
