lib/uarch/pipe.ml: Format
