(** 64-bit FNV-1a content folding with a splitmix-style finisher.

    Used to build structural content hashes incrementally: start from
    {!seed}, fold fields in a canonical order, and {!finish} the
    accumulator for avalanche. Strings fold length-prefixed so adjacent
    fields cannot alias across a boundary. Deterministic across
    processes and machines (unlike [Hashtbl.hash] on boxed values it
    depends only on the folded bytes), so finished hashes are safe to
    persist in disk-cache keys. *)

type t = int64

val seed : t
(** FNV-1a 64-bit offset basis — the canonical starting accumulator. *)

val byte : t -> int -> t
(** Fold one byte (the low 8 bits of the argument). *)

val int : t -> int -> t
(** Fold a native int as 8 little-endian bytes. *)

val int64 : t -> int64 -> t

val bool : t -> bool -> t

val string : t -> string -> t
(** Fold the length, then every byte. *)

val finish : t -> int64
(** splitmix64 finalizer: full-width avalanche of the accumulator. *)

val to_hex : int64 -> string
(** 16 lowercase hex characters, zero-padded. *)

(** {2 Native-int variant}

    Allocation-free folding on OCaml's untagged native ints, for hashes
    recomputed inside simulator hot loops. Same multiply-xor/avalanche
    structure with truncated constants — deterministic across processes
    on a given word size, but {e not} value-compatible with the int64
    variant above. *)

val seed_int : int
(** Starting accumulator for the native-int folds. *)

val fold_int : int -> int -> int
(** Fold one native int in a single multiply-xor step. *)

val finish_int : int -> int
(** Splitmix-style avalanche of a native-int accumulator. *)
