lib/dse/space.ml: Array List
