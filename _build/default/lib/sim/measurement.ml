open Mp_uarch

type counters = {
  cycles : float;
  instrs : float;
  dispatched : float;
  fxu : float;
  lsu : float;
  vsu : float;
  bru : float;
  st : float;
  l1 : float;
  l2 : float;
  l3 : float;
  mem : float;
}

let zero_counters =
  { cycles = 0.; instrs = 0.; dispatched = 0.; fxu = 0.; lsu = 0.; vsu = 0.;
    bru = 0.; st = 0.; l1 = 0.; l2 = 0.; l3 = 0.; mem = 0. }

let add_counters a b =
  {
    cycles = Float.max a.cycles b.cycles;
    instrs = a.instrs +. b.instrs;
    dispatched = a.dispatched +. b.dispatched;
    fxu = a.fxu +. b.fxu;
    lsu = a.lsu +. b.lsu;
    vsu = a.vsu +. b.vsu;
    bru = a.bru +. b.bru;
    st = a.st +. b.st;
    l1 = a.l1 +. b.l1;
    l2 = a.l2 +. b.l2;
    l3 = a.l3 +. b.l3;
    mem = a.mem +. b.mem;
  }

let scale_counters k c =
  {
    cycles = c.cycles *. k;
    instrs = c.instrs *. k;
    dispatched = c.dispatched *. k;
    fxu = c.fxu *. k;
    lsu = c.lsu *. k;
    vsu = c.vsu *. k;
    bru = c.bru *. k;
    st = c.st *. k;
    l1 = c.l1 *. k;
    l2 = c.l2 *. k;
    l3 = c.l3 *. k;
    mem = c.mem *. k;
  }

let read c = function
  | Pmc.PM_RUN_CYC -> c.cycles
  | Pmc.PM_INST_CMPL -> c.instrs
  | Pmc.PM_INST_DISP -> c.dispatched
  | Pmc.PM_FXU_FIN -> c.fxu
  | Pmc.PM_LSU_FIN -> c.lsu
  | Pmc.PM_VSU_FIN -> c.vsu
  | Pmc.PM_BRU_FIN -> c.bru
  | Pmc.PM_ST_FIN -> c.st
  | Pmc.PM_DATA_FROM_L1 -> c.l1
  | Pmc.PM_DATA_FROM_L2 -> c.l2
  | Pmc.PM_DATA_FROM_L3 -> c.l3
  | Pmc.PM_DATA_FROM_MEM -> c.mem

let ipc c = if c.cycles <= 0.0 then 0.0 else c.instrs /. c.cycles

let rate c v = if c.cycles <= 0.0 then 0.0 else v /. c.cycles

type t = {
  config : Uarch_def.config;
  program : string;
  threads : counters array;
  core_ipc : float;
  power : float;
  power_trace : float array;
}

let total_threads t = Array.length t.threads * t.config.Uarch_def.cores

let core_counters t =
  Array.fold_left add_counters zero_counters t.threads

let pp ppf t =
  Format.fprintf ppf "%s @ %s: core IPC %.2f, power %.2f" t.program
    (Uarch_def.config_to_string t.config)
    t.core_ipc t.power
