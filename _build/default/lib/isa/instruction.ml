type reg_class = Gpr | Fpr | Vsr | Cr

type exec_class =
  | Simple_int
  | Complex_int
  | Mul_int
  | Div_int
  | Fp_arith
  | Fp_fma
  | Fp_heavy
  | Vec_logic
  | Vec_arith
  | Vec_fma
  | Dec_arith
  | Cmp_op
  | Branch_op
  | Nop_op
  | Mem_op

type mem_kind = No_mem | Load | Store

type form = D | DS | X | XO | A | XX3 | VX | I_form | B_form | MD

type t = {
  mnemonic : string;
  exec_class : exec_class;
  mem : mem_kind;
  update : bool;
  algebraic : bool;
  indexed : bool;
  data_class : reg_class;
  width : int;
  has_imm : bool;
  imm_bits : int;
  srcs : int;
  has_dest : bool;
  conditional : bool;
  privileged : bool;
  prefetch : bool;
  form : form;
  opcode : int;
  xo : int;
  description : string;
}

let xo_bits = function
  | D | I_form | B_form -> 0
  | DS -> 2
  | X | XO -> 10
  | A -> 5
  | XX3 -> 8
  | VX -> 11
  | MD -> 4

let make ~mnemonic ~exec_class ?(mem = No_mem) ?(update = false)
    ?(algebraic = false) ?(indexed = false) ?(data_class = Gpr) ?(width = 64)
    ?(has_imm = false) ?(imm_bits = 16) ?(srcs = 2) ?(has_dest = true)
    ?(conditional = false) ?(privileged = false) ?(prefetch = false)
    ?(form = X) ~opcode ?(xo = 0) ?(description = "") () =
  if mnemonic = "" then invalid_arg "Instruction.make: empty mnemonic";
  if opcode < 0 || opcode > 63 then invalid_arg "Instruction.make: opcode";
  let max_xo = (1 lsl xo_bits form) - 1 in
  if xo < 0 || (xo_bits form > 0 && xo > max_xo) then
    invalid_arg (Printf.sprintf "Instruction.make: xo out of range for %s" mnemonic);
  (match width with
   | 8 | 16 | 32 | 64 | 128 -> ()
   | _ -> invalid_arg "Instruction.make: width");
  if srcs < 0 || srcs > 3 then invalid_arg "Instruction.make: srcs";
  { mnemonic; exec_class; mem; update; algebraic; indexed; data_class; width;
    has_imm; imm_bits; srcs; has_dest; conditional; privileged; prefetch;
    form; opcode; xo; description }

let is_load i = i.mem = Load
let is_store i = i.mem = Store
let is_memory i = i.mem <> No_mem
let is_branch i = i.exec_class = Branch_op

let is_vector i =
  i.data_class = Vsr
  || (match i.exec_class with
      | Vec_logic | Vec_arith | Vec_fma -> true
      | Simple_int | Complex_int | Mul_int | Div_int | Fp_arith | Fp_fma
      | Fp_heavy | Dec_arith | Cmp_op | Branch_op | Nop_op | Mem_op -> false)

let is_float i =
  i.data_class = Fpr
  || (match i.exec_class with
      | Fp_arith | Fp_fma | Fp_heavy -> true
      | Simple_int | Complex_int | Mul_int | Div_int | Vec_logic | Vec_arith
      | Vec_fma | Dec_arith | Cmp_op | Branch_op | Nop_op | Mem_op -> false)

let is_decimal i = i.exec_class = Dec_arith

let is_integer i =
  (match i.exec_class with
   | Simple_int | Complex_int | Mul_int | Div_int | Cmp_op -> true
   | Fp_arith | Fp_fma | Fp_heavy | Vec_logic | Vec_arith | Vec_fma
   | Dec_arith | Branch_op | Nop_op -> false
   | Mem_op -> i.data_class = Gpr)

let add_count cls n acc =
  if n = 0 then acc
  else
    match List.assoc_opt cls acc with
    | None -> (cls, n) :: acc
    | Some m -> (cls, n + m) :: List.remove_assoc cls acc

let reads i =
  match i.mem with
  | No_mem ->
    if is_branch i then (if i.conditional then [ (Cr, 1) ] else [])
    else add_count i.data_class i.srcs []
  | Load ->
    (* base (+ index) address registers *)
    add_count Gpr (if i.indexed then 2 else 1) []
  | Store ->
    add_count Gpr (if i.indexed then 2 else 1) (add_count i.data_class 1 [])

let writes i =
  match i.mem with
  | No_mem ->
    if is_branch i then []
    else if i.exec_class = Cmp_op then [ (Cr, 1) ]
    else if i.has_dest then [ (i.data_class, 1) ]
    else []
  | Load ->
    add_count i.data_class 1 (if i.update then [ (Gpr, 1) ] else [])
  | Store -> if i.update then [ (Gpr, 1) ] else []

let exec_class_to_string = function
  | Simple_int -> "simple_int"
  | Complex_int -> "complex_int"
  | Mul_int -> "mul_int"
  | Div_int -> "div_int"
  | Fp_arith -> "fp_arith"
  | Fp_fma -> "fp_fma"
  | Fp_heavy -> "fp_heavy"
  | Vec_logic -> "vec_logic"
  | Vec_arith -> "vec_arith"
  | Vec_fma -> "vec_fma"
  | Dec_arith -> "dec_arith"
  | Cmp_op -> "cmp"
  | Branch_op -> "branch"
  | Nop_op -> "nop"
  | Mem_op -> "mem"

let exec_class_of_string = function
  | "simple_int" -> Some Simple_int
  | "complex_int" -> Some Complex_int
  | "mul_int" -> Some Mul_int
  | "div_int" -> Some Div_int
  | "fp_arith" -> Some Fp_arith
  | "fp_fma" -> Some Fp_fma
  | "fp_heavy" -> Some Fp_heavy
  | "vec_logic" -> Some Vec_logic
  | "vec_arith" -> Some Vec_arith
  | "vec_fma" -> Some Vec_fma
  | "dec_arith" -> Some Dec_arith
  | "cmp" -> Some Cmp_op
  | "branch" -> Some Branch_op
  | "nop" -> Some Nop_op
  | "mem" -> Some Mem_op
  | _ -> None

let form_to_string = function
  | D -> "D"
  | DS -> "DS"
  | X -> "X"
  | XO -> "XO"
  | A -> "A"
  | XX3 -> "XX3"
  | VX -> "VX"
  | I_form -> "I"
  | B_form -> "B"
  | MD -> "MD"

let form_of_string = function
  | "D" -> Some D
  | "DS" -> Some DS
  | "X" -> Some X
  | "XO" -> Some XO
  | "A" -> Some A
  | "XX3" -> Some XX3
  | "VX" -> Some VX
  | "I" -> Some I_form
  | "B" -> Some B_form
  | "MD" -> Some MD
  | _ -> None

let reg_class_to_string = function
  | Gpr -> "gpr"
  | Fpr -> "fpr"
  | Vsr -> "vsr"
  | Cr -> "cr"

let reg_class_of_string = function
  | "gpr" -> Some Gpr
  | "fpr" -> Some Fpr
  | "vsr" -> Some Vsr
  | "cr" -> Some Cr
  | _ -> None

let pp ppf i =
  Format.fprintf ppf "%s(%s%s, %d-bit, op=%d xo=%d)" i.mnemonic
    (exec_class_to_string i.exec_class)
    (match i.mem with No_mem -> "" | Load -> ",load" | Store -> ",store")
    i.width i.opcode i.xo

module Encoding = struct
  type fields = { rt : int; ra : int; rb : int; imm : int }

  let check_reg name limit v =
    if v < 0 || v >= limit then
      invalid_arg (Printf.sprintf "Encoding: %s=%d out of range" name v)

  let mask bits v = v land ((1 lsl bits) - 1)

  (* Layout (simplified, big-endian bit numbering flattened to an int32):
     [opcode:6][rt:5][ra:5][rb-or-imm-hi...] with the extended opcode
     placed in the low bits according to the form's width. *)
  let encode i f =
    let reg_limit = if i.data_class = Vsr then 64 else 32 in
    check_reg "rt" reg_limit f.rt;
    check_reg "ra" 32 f.ra;
    check_reg "rb" (if i.form = XX3 then 64 else 32) f.rb;
    let top = (i.opcode lsl 26) lor (mask 5 f.rt lsl 21) lor (mask 5 f.ra lsl 16) in
    let word =
      match i.form with
      | D -> top lor mask 16 f.imm
      | DS ->
        (* 14-bit displacement scaled by 4, extended opcode in the low bits *)
        top lor (mask 14 f.imm lsl 2) lor i.xo
      | I_form -> (i.opcode lsl 26) lor mask 26 f.imm
      | B_form -> top lor mask 16 f.imm
      | X | XO -> top lor (mask 5 f.rb lsl 11) lor (i.xo lsl 1)
      | A -> top lor (mask 5 f.rb lsl 11) lor (mask 5 f.imm lsl 6) lor (i.xo lsl 1)
      | XX3 ->
        (* extra VSR bit of rt/rb folded into the low bits *)
        top lor (mask 5 f.rb lsl 11) lor (i.xo lsl 3)
        lor ((f.rt lsr 5) lsl 1) lor ((f.rb lsr 5) lsl 2)
      | VX -> top lor (mask 5 f.rb lsl 11) lor i.xo
      | MD -> top lor (mask 6 f.imm lsl 10) lor (i.xo lsl 2)
    in
    Int32.of_int (word land 0xFFFFFFFF)

  let decode_fields i word =
    let w = Int32.to_int word land 0xFFFFFFFF in
    let rt = (w lsr 21) land 31 and ra = (w lsr 16) land 31 in
    let rb = (w lsr 11) land 31 in
    match i.form with
    | D | B_form -> { rt; ra; rb = 0; imm = w land 0xFFFF }
    | DS -> { rt; ra; rb = 0; imm = (w land 0xFFFF) lsr 2 }
    | I_form -> { rt = 0; ra = 0; rb = 0; imm = w land 0x3FFFFFF }
    | X | XO -> { rt; ra; rb; imm = 0 }
    | A -> { rt; ra; rb; imm = (w lsr 6) land 31 }
    | XX3 ->
      let rt = rt lor (((w lsr 1) land 1) lsl 5) in
      let rb = rb lor (((w lsr 2) land 1) lsl 5) in
      { rt; ra; rb; imm = 0 }
    | VX -> { rt; ra; rb; imm = 0 }
    | MD -> { rt; ra; rb = 0; imm = (w lsr 10) land 63 }

  let opcode_of_word word = (Int32.to_int word lsr 26) land 63

  let xo_of_word form word =
    let w = Int32.to_int word land 0xFFFFFFFF in
    match form with
    | D | I_form | B_form -> 0
    | DS -> w land 3
    | X | XO -> (w lsr 1) land 0x3FF
    | A -> (w lsr 1) land 0x1F
    | XX3 -> (w lsr 3) land 0xFF
    | VX -> w land 0x7FF
    | MD -> (w lsr 2) land 0xF
end
