lib/isa/disasm.mli: Instruction Isa_def
