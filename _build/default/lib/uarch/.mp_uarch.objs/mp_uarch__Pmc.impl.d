lib/uarch/pmc.ml: Cache_geometry Format Pipe
