type match_result = {
  instruction : Instruction.t;
  fields : Instruction.Encoding.fields;
}

let matches (i : Instruction.t) word =
  Instruction.Encoding.opcode_of_word word = i.Instruction.opcode
  && Instruction.Encoding.xo_of_word i.Instruction.form word = i.Instruction.xo

let decode_all isa word =
  List.filter_map
    (fun (i : Instruction.t) ->
      if matches i word then
        Some { instruction = i; fields = Instruction.Encoding.decode_fields i word }
      else None)
    (Isa_def.instructions isa)

let decode isa word =
  match decode_all isa word with [] -> None | m :: _ -> Some m

let to_string m =
  let i = m.instruction and f = m.fields in
  let open Instruction in
  let r n = Printf.sprintf "r%d" n in
  match i.form with
  | D | DS ->
    if Instruction.is_memory i then
      Printf.sprintf "%s r%d, %d(%s)" i.mnemonic f.Encoding.rt f.Encoding.imm
        (r f.Encoding.ra)
    else
      Printf.sprintf "%s r%d, %s, %d" i.mnemonic f.Encoding.rt
        (r f.Encoding.ra) f.Encoding.imm
  | I_form -> Printf.sprintf "%s %d" i.mnemonic f.Encoding.imm
  | B_form -> Printf.sprintf "%s %d" i.mnemonic f.Encoding.imm
  | X | XO | A | XX3 | VX ->
    Printf.sprintf "%s r%d, %s, %s" i.mnemonic f.Encoding.rt (r f.Encoding.ra)
      (r f.Encoding.rb)
  | MD ->
    Printf.sprintf "%s r%d, %s, %d" i.mnemonic f.Encoding.rt (r f.Encoding.ra)
      f.Encoding.imm

let roundtrip isa i f =
  let word = Instruction.Encoding.encode i f in
  List.exists
    (fun m ->
      m.instruction.Instruction.mnemonic = i.Instruction.mnemonic
      && m.fields = Instruction.Encoding.decode_fields i word)
    (decode_all isa word)
