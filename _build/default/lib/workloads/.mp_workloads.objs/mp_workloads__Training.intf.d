lib/workloads/training.mli: Mp_codegen Mp_isa Mp_sim Mp_uarch
