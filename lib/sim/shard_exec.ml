open Mp_uarch
open Mp_codegen

(* Sharded multi-process measurement execution. The coordinator side
   shards a deduplicated batch across a pool of worker subprocesses
   (each a re-exec of this very executable, flagged by MP_SHARD_WORKER)
   and scatters the streamed results back; the worker side is a frame
   loop installed by Machine at module-init time. The split with
   Machine is deliberate: this module owns the protocol and the pool,
   Machine owns how a request is actually executed — injected through
   [install_executor] so the two don't depend on each other
   circularly. *)

(* ----- protocol ---------------------------------------------------------- *)

(* Wire types are Marshal'd. Everything here is plain data except the
   uarch's [resources] closure, which is why requests are written with
   [Marshal.Closures] — valid only between identical binaries, which
   the self-exec guarantees and the namespace check enforces (the
   namespace embeds a digest of the executable, the same guard the disk
   cache uses). *)

type machine_spec = {
  ms_seed : int;
  ms_cache : bool;
  ms_replay : bool;
  ms_uarch : Uarch_def.t;
}

type job = {
  j_config : Uarch_def.config;
  (* one element = homogeneous deployment (replicated over SMT
     threads); [smt] elements = heterogeneous per-thread programs *)
  j_programs : Ir.t list;
  j_cost : float; (* forwarded so workers schedule heaviest-first too *)
}

type request = {
  rq_ns : string; (* Measurement_cache.namespace () of the sender *)
  rq_chunk : int; (* echoed back verbatim: which chunk this frame carries *)
  rq_warmup : int;
  rq_measure : int;
  rq_period : bool option;
  rq_spec : machine_spec;
  rq_jobs : job array;
}

type response = {
  rs_ns : string;
  rs_chunk : int; (* the request's [rq_chunk] — pipelined and speculated
                     dispatch means a slot's responses are matched by
                     tag, never by arrival order alone *)
  rs_results : (Measurement.t array, string) result;
}

(* ----- knobs ------------------------------------------------------------- *)

let worker_env_var = "MP_SHARD_WORKER"

let net_worker_env_var = "MP_NET_WORKER"

(* set while this process is serving remote coordinators over TCP —
   the same "workers don't fan out" bar as the env flags, but for the
   CLI's [worker --listen] mode, which can't rely on its own
   environment having been scrubbed *)
let net_serving = ref false

let in_worker_process () =
  Sys.getenv_opt worker_env_var = Some "1"
  || Sys.getenv_opt net_worker_env_var <> None
  || !net_serving

(* MP_PROCS: 0/unset = in-process (unchanged behavior); N = that many
   workers; "auto" = one worker per domain-pool's worth of cores.
   Inside a worker process the answer is always 0 — workers never
   spawn their own process pools. *)
let env_procs () =
  if in_worker_process () then 0
  else
    match Sys.getenv_opt "MP_PROCS" with
    | None -> 0
    | Some s ->
      let s = String.lowercase_ascii (String.trim s) in
      if s = "" then 0
      else if s = "auto" then
        max 1
          (Mp_util.Parallel.detected_cores ()
          / max 1 (Mp_util.Parallel.default_size ()))
      else (
        match int_of_string_opt s with Some n when n >= 0 -> n | _ -> 0)

let default_timeout_s = 300.0

let env_timeout_s () =
  match Sys.getenv_opt "MP_PROC_TIMEOUT_S" with
  | Some s ->
    (match float_of_string_opt (String.trim s) with
     | Some v when v > 0.0 && Float.is_finite v -> v
     | _ -> default_timeout_s)
  | None -> default_timeout_s

(* "host:port,host:port,..."; entries that don't parse are dropped.
   The split is on the *last* colon so bracketless IPv6 literals keep
   working. Always [] inside a worker — remote workers never chain to
   further remotes. *)
let parse_hosts s =
  String.split_on_char ',' s
  |> List.filter_map (fun entry ->
         let entry = String.trim entry in
         match String.rindex_opt entry ':' with
         | None -> None
         | Some i ->
           let host = String.sub entry 0 i in
           let port = String.sub entry (i + 1) (String.length entry - i - 1) in
           (match int_of_string_opt port with
            | Some p when p > 0 && p < 65536 && host <> "" -> Some (host, p)
            | _ -> None))

let env_hosts () =
  if in_worker_process () then []
  else
    match Sys.getenv_opt "MP_HOSTS" with None -> [] | Some s -> parse_hosts s

(* MP_SHARD_SCHED: how a batch is spread over the pool. [Dynamic] (the
   default) splits each shard into chunks and dispatches them
   work-conservingly — fast slots drain work slow slots haven't
   started; [Static] is the original one-frame-per-slot barrier, kept
   as a fallback and as the baseline the scheduling bench compares
   against. *)
type sched = Static | Dynamic

let env_sched () =
  match Sys.getenv_opt "MP_SHARD_SCHED" with
  | Some s when String.lowercase_ascii (String.trim s) = "static" -> Static
  | _ -> Dynamic

(* MP_INFLIGHT: chunk frames kept in flight per slot under the dynamic
   scheduler. Workers serve strictly one request at a time, so a second
   outstanding frame sits in the pipe/socket buffer — its transfer and
   decode overlap the previous chunk's compute. 1 disables pipelining. *)
let default_inflight = 2

let env_inflight () =
  match Sys.getenv_opt "MP_INFLIGHT" with
  | Some s ->
    (match int_of_string_opt (String.trim s) with
     | Some n when n >= 1 -> min n 64
     | _ -> default_inflight)
  | None -> default_inflight

(* MP_SPECULATE: what an idle slot does once the queue is empty but
   chunks are still outstanding elsewhere. [Spec_on] (default)
   re-dispatches the oldest outstanding chunk to the idle slot and the
   first response wins — a straggler or silently-dead peer no longer
   gates the batch. [Spec_off] disables tail re-dispatch. [Spec_force]
   is a test hook: duplicate eagerly whenever a slot merely has spare
   capacity, guaranteeing duplicate completions so the first-result-wins
   merge path is exercised deterministically. *)
type speculate = Spec_off | Spec_on | Spec_force

let env_speculate () =
  match Sys.getenv_opt "MP_SPECULATE" with
  | Some s -> (
    match String.lowercase_ascii (String.trim s) with
    | "off" | "0" | "false" -> Spec_off
    | "force" -> Spec_force
    | _ -> Spec_on)
  | None -> Spec_on

(* ----- per-slot telemetry ------------------------------------------------- *)

(* Cumulative per endpoint label over every batch in the process, so
   the bench harness can report where the work actually ran (and how
   often speculation fired) without threading pool handles around. *)

type slot_stat = {
  sl_jobs : int; (* jobs whose first-accepted result came from here *)
  sl_chunks : int; (* chunks whose first-accepted result came from here *)
  sl_speculated : int; (* duplicate chunk copies dispatched to this slot *)
  sl_cancelled : int; (* completions discarded because a sibling won *)
  sl_busy_s : float; (* wall time with >= 1 chunk in flight here *)
  sl_wall_s : float; (* wall time of batches this slot participated in *)
}

let zero_stat =
  {
    sl_jobs = 0;
    sl_chunks = 0;
    sl_speculated = 0;
    sl_cancelled = 0;
    sl_busy_s = 0.0;
    sl_wall_s = 0.0;
  }

let slot_stats_tbl : (string, slot_stat) Hashtbl.t = Hashtbl.create 8
let slot_stats_lock = Mutex.create ()

let record_slot_stat label d =
  Mutex.lock slot_stats_lock;
  let cur =
    match Hashtbl.find_opt slot_stats_tbl label with
    | Some s -> s
    | None -> zero_stat
  in
  Hashtbl.replace slot_stats_tbl label
    {
      sl_jobs = cur.sl_jobs + d.sl_jobs;
      sl_chunks = cur.sl_chunks + d.sl_chunks;
      sl_speculated = cur.sl_speculated + d.sl_speculated;
      sl_cancelled = cur.sl_cancelled + d.sl_cancelled;
      sl_busy_s = cur.sl_busy_s +. d.sl_busy_s;
      sl_wall_s = cur.sl_wall_s +. d.sl_wall_s;
    };
  Mutex.unlock slot_stats_lock

let slot_stats () =
  Mutex.lock slot_stats_lock;
  let l = Hashtbl.fold (fun k v acc -> (k, v) :: acc) slot_stats_tbl [] in
  Mutex.unlock slot_stats_lock;
  List.sort (fun (a, _) (b, _) -> compare a b) l

let reset_slot_stats () =
  Mutex.lock slot_stats_lock;
  Hashtbl.reset slot_stats_tbl;
  Mutex.unlock slot_stats_lock

let chunks_speculated () =
  List.fold_left (fun a (_, s) -> a + s.sl_speculated) 0 (slot_stats ())

let chunks_cancelled () =
  List.fold_left (fun a (_, s) -> a + s.sl_cancelled) 0 (slot_stats ())

(* the handshake both ends of a TCP connection must present: protocol
   tag plus the measurement-cache namespace (schema version + binary
   digest) — the same guard the pipe transport checks per-request,
   moved to connect time so an incompatible peer is rejected before any
   closure-bearing frame is decoded *)
let net_handshake () =
  Bytes.of_string ("mpnet1 " ^ Measurement_cache.namespace ())

(* ----- sharding ---------------------------------------------------------- *)

(* Placement is keyed by the programs' structural hashes, so the same
   structural program always lands on the same worker: that worker's
   replay table and warm in-memory cache accumulate exactly the records
   this program will ask for again. Configuration deliberately does not
   enter the key — all configurations of one program share a worker's
   warm replay state. *)
let shard_index ~shards programs =
  let module F = Mp_util.Fnv in
  let h =
    List.fold_left (fun h p -> F.int64 h (Ir.struct_hash p)) F.seed programs
  in
  Int64.to_int (F.finish h) land max_int mod max 1 shards

(* ----- worker side ------------------------------------------------------- *)

(* Machine installs the request executor at module-init time (it can't
   be referenced directly from here without a dependency cycle). *)
let executor : (request -> Measurement.t array) option ref = ref None

let install_executor f = executor := Some f

(* One request → one response, shared by the pipe worker and the TCP
   server. The namespace check is per-request even though the TCP path
   also handshakes at connect time: requests carry Marshal'd closures,
   so it is checked as close to the decode as possible. *)
let execute_request ns rq =
  if rq.rq_ns <> ns then
    Error (Printf.sprintf "namespace mismatch: got %s, have %s" rq.rq_ns ns)
  else
    match !executor with
    | None -> Error "no executor installed"
    | Some f -> ( try Ok (f rq) with e -> Error (Printexc.to_string e))

(* The worker frame loop over an arbitrary fd pair; returns on EOF,
   wire garbage, a dead coordinator, or [stop] turning true between
   requests (an in-flight request always finishes first — that is the
   graceful-drain contract). [idle_tick_s] bounds how long a quiet
   connection can delay noticing [stop]: the loop selects for
   readability on that tick and only then commits to a blocking frame
   read, so an idle tick is never mistaken for a closed peer. *)
let serve_loop ?(stop = ref false) ?idle_tick_s inp out =
  let ns = Measurement_cache.namespace () in
  let next_frame () =
    match idle_tick_s with
    | None -> (
      match Mp_util.Transport.read_frame inp with
      | Some p -> `Frame p
      | None -> `Closed)
    | Some tick ->
      let rec wait () =
        if !stop then `Closed
        else
          match Unix.select [ inp ] [] [] tick with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
          | [], _, _ -> wait ()
          | _ -> (
            match Mp_util.Transport.read_frame inp with
            | Some p -> `Frame p
            | None -> `Closed)
      in
      wait ()
  in
  let rec loop () =
    match next_frame () with
    | `Closed -> ()
    | `Frame payload ->
      (match (Marshal.from_bytes payload 0 : request) with
       | exception _ -> () (* garbage on the wire: bail out, get reaped *)
       | rq ->
         let rs =
           {
             rs_ns = ns;
             rs_chunk = rq.rq_chunk;
             rs_results = execute_request ns rq;
           }
         in
         (match Mp_util.Transport.write_frame out (Marshal.to_bytes rs []) with
          | () -> loop ()
          | exception _ -> () (* coordinator gone *)))
  in
  loop ()

let worker_main () =
  (* A coordinator that died mid-exchange turns our response write into
     EPIPE, which must surface as an exception (the loop exits cleanly),
     not a fatal SIGPIPE. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with _ -> ());
  (* Keep private copies of the protocol fds and point stdout at stderr
     for everyone else: any stray [print_string] in simulation code
     would otherwise corrupt the frame stream. *)
  let inp = Unix.dup Unix.stdin in
  let out = Unix.dup Unix.stdout in
  Unix.dup2 Unix.stderr Unix.stdout;
  serve_loop inp out

(* ----- the TCP worker ----------------------------------------------------- *)

(* [serve] turns this process into a persistent remote worker: bind,
   accept one coordinator at a time, handshake, run the same frame loop
   the pipe worker runs. SIGTERM/SIGINT set a stop flag instead of
   killing the process, so an in-flight request finishes and its
   response is delivered before we exit — the coordinator never loses a
   job to a polite shutdown. *)
let serve ?(host = "0.0.0.0") ~port () =
  net_serving := true;
  let stop = ref false in
  let request_stop _ = stop := true in
  (try Sys.set_signal Sys.sigterm (Sys.Signal_handle request_stop) with _ -> ());
  (try Sys.set_signal Sys.sigint (Sys.Signal_handle request_stop) with _ -> ());
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with _ -> ());
  let addr =
    match
      Unix.getaddrinfo host (string_of_int port)
        [ Unix.AI_SOCKTYPE Unix.SOCK_STREAM; Unix.AI_PASSIVE ]
    with
    | ai :: _ -> ai.Unix.ai_addr
    | [] -> Unix.ADDR_INET (Unix.inet_addr_of_string host, port)
  in
  let lsock = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
  Unix.set_close_on_exec lsock;
  Unix.setsockopt lsock Unix.SO_REUSEADDR true;
  Unix.bind lsock addr;
  Unix.listen lsock 8;
  let hs = net_handshake () in
  let serve_conn fd =
    Unix.set_close_on_exec fd;
    (try Unix.setsockopt fd Unix.TCP_NODELAY true with _ -> ());
    let accepted =
      (* mirror of Netpool's connect-side handshake: read theirs, echo
         ours; byte-inequality rejects the connection before any
         closure-bearing frame is decoded *)
      match Mp_util.Transport.read_frame ~timeout_s:10.0 fd with
      | Some theirs when Bytes.equal theirs hs ->
        (match Mp_util.Transport.write_frame fd hs with
         | () -> true
         | exception _ -> false)
      | Some _ | None -> false
    in
    if accepted then serve_loop ~stop ~idle_tick_s:0.25 fd fd;
    try Unix.close fd with _ -> ()
  in
  let rec accept_loop () =
    if not !stop then begin
      (* select tick so a pending SIGTERM is noticed within 0.25 s even
         when no coordinator ever connects *)
      (match Unix.select [ lsock ] [] [] 0.25 with
       | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
       | [], _, _ -> ()
       | _ ->
         (match Unix.accept lsock with
          | exception _ -> ()
          | fd, _ -> serve_conn fd));
      accept_loop ()
    end
  in
  accept_loop ();
  (try Unix.close lsock with _ -> ())

(* Called from Machine's module initializer — i.e. in every executable
   that links the simulator — so any such executable can be its own
   worker. Never returns in a worker process. MP_NET_WORKER holds
   "port" or "host:port" and turns the process into a TCP worker (used
   by [spawn_worker] for loopback workers in tests and benches);
   MP_SHARD_WORKER=1 keeps the pipe protocol over stdin/stdout. *)
let maybe_become_worker () =
  if Sys.getenv_opt worker_env_var = Some "1" then begin
    worker_main ();
    exit 0
  end
  else
    match Sys.getenv_opt net_worker_env_var with
    | None -> ()
    | Some spec ->
      let host, port =
        match String.rindex_opt spec ':' with
        | None -> ("127.0.0.1", int_of_string_opt (String.trim spec))
        | Some i ->
          ( String.sub spec 0 i,
            int_of_string_opt
              (String.sub spec (i + 1) (String.length spec - i - 1)) )
      in
      (match port with
       | Some port when port > 0 && port < 65536 ->
         (try serve ~host ~port ()
          with e ->
            prerr_endline
              (Printf.sprintf "MP_NET_WORKER %s: %s" spec (Printexc.to_string e));
            exit 1)
       | _ ->
         prerr_endline (Printf.sprintf "MP_NET_WORKER: bad listen spec %S" spec);
         exit 1);
      exit 0

(* Spawn a loopback TCP worker — a re-exec of this executable with
   MP_NET_WORKER set — and wait until its port accepts connections, so
   callers can build a pool against it without racing its startup. The
   probe connection is rejected by the server's handshake read (EOF)
   and costs it nothing. *)
let spawn_worker ?(env = []) ?(host = "127.0.0.1") ?(ready_timeout_s = 30.0)
    ~port () =
  let env =
    (net_worker_env_var, Printf.sprintf "%s:%d" host port)
    :: (("MP_PROCS", "0") :: env)
  in
  let envp = Mp_util.Procpool.child_env env in
  let devnull = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
  let pid =
    Fun.protect
      ~finally:(fun () -> try Unix.close devnull with _ -> ())
      (fun () ->
        Unix.create_process_env Sys.executable_name
          [| Sys.executable_name |]
          envp devnull Unix.stderr Unix.stderr)
  in
  let deadline = Unix.gettimeofday () +. ready_timeout_s in
  let addr =
    match
      Unix.getaddrinfo host (string_of_int port)
        [ Unix.AI_SOCKTYPE Unix.SOCK_STREAM ]
    with
    | ai :: _ -> ai.Unix.ai_addr
    | [] -> Unix.ADDR_INET (Unix.inet_addr_of_string host, port)
  in
  let rec wait_ready () =
    let probe () =
      let fd = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with _ -> ())
        (fun () ->
          match Unix.connect fd addr with
          | () -> true
          | exception _ -> false)
    in
    if probe () then ()
    else if Unix.gettimeofday () < deadline then begin
      Unix.sleepf 0.02;
      wait_ready ()
    end
    else begin
      (try Unix.kill pid Sys.sigkill with _ -> ());
      (try ignore (Unix.waitpid [] pid) with _ -> ());
      failwith
        (Printf.sprintf "spawn_worker: %s:%d not accepting after %.1fs" host
           port ready_timeout_s)
    end
  in
  wait_ready ();
  pid

(* ----- coordinator side -------------------------------------------------- *)

(* A mixed pool: slots [0, local) are worker subprocesses behind pipes,
   slots [local, local+remote) are TCP peers. The shard fold neither
   knows nor cares which kind a slot is — placement depends only on the
   slot count, so an all-local, all-remote, or mixed pool of the same
   size shards identically. *)
type pool = {
  pp : Mp_util.Procpool.t option;
  np : Mp_util.Netpool.t option;
  hosts : (string * int) list;
  timeout_s : float;
}

let create_pool ?(env = []) ?timeout_s ?(hosts = []) n =
  let env =
    env
    @ [
        (worker_env_var, "1");
        (* workers must not recurse into pools of their own *)
        ("MP_PROCS", "0");
        ("MP_HOSTS", "");
      ]
  in
  let pp =
    if n > 0 then
      Some (Mp_util.Procpool.create ~env ~prog:Sys.executable_name ~args:[] n)
    else None
  in
  let np =
    if hosts <> [] then
      Some (Mp_util.Netpool.create ~handshake:(net_handshake ()) hosts)
    else None
  in
  {
    pp;
    np;
    hosts;
    timeout_s = (match timeout_s with Some s -> s | None -> env_timeout_s ());
  }

let local_size p =
  match p.pp with Some pp -> Mp_util.Procpool.size pp | None -> 0

let remote_size p =
  match p.np with Some np -> Mp_util.Netpool.size np | None -> 0

let pool_size p = local_size p + remote_size p

let procpool p =
  match p.pp with
  | Some pp -> pp
  | None -> invalid_arg "Shard_exec.procpool: pool has no local workers"

let netpool p = p.np

let slot_endpoint p s =
  let local = local_size p in
  if s < local then Mp_util.Procpool.endpoint (Option.get p.pp) s
  else Mp_util.Netpool.endpoint (Option.get p.np) (s - local)

let shutdown_pool p =
  Option.iter Mp_util.Procpool.shutdown p.pp;
  Option.iter Mp_util.Netpool.shutdown p.np

(* One sharded dispatch at a time per coordinator: each slot's
   pipe/socket carries one request/response conversation (a window of
   pipelined frames under the dynamic scheduler), so interleaving two
   batches over the same pool would cross their frames. *)
let dispatch_lock = Mutex.create ()

(* ----- static scheduler --------------------------------------------------- *)

(* The original one-frame-per-slot barrier: each shard travels as a
   single request, every shard is sent before any response is read, and
   the batch takes as long as its slowest shard. Kept as the
   MP_SHARD_SCHED=static fallback and as the baseline the scheduling
   bench compares against. *)
let run_static p ~spec ~warmup ~measure ~period jobs results =
  let shards = pool_size p in
  let buckets = Array.make shards [] in
  Array.iteri
    (fun i j ->
      let s = shard_index ~shards j.j_programs in
      buckets.(s) <- i :: buckets.(s))
    jobs;
  let buckets = Array.map (fun l -> Array.of_list (List.rev l)) buckets in
  let ns = Measurement_cache.namespace () in
  (* send every shard first, then collect: workers compute their
     shards concurrently while the coordinator waits on the first *)
  let in_flight = Array.make shards false in
  Array.iteri
    (fun s bucket ->
      if Array.length bucket > 0 then begin
        let rq =
          {
            rq_ns = ns;
            rq_chunk = s;
            rq_warmup = warmup;
            rq_measure = measure;
            rq_period = period;
            rq_spec = spec;
            rq_jobs = Array.map (fun i -> jobs.(i)) bucket;
          }
        in
        match Marshal.to_bytes rq [ Marshal.Closures ] with
        | exception _ -> () (* unmarshalable spec: caller recovers *)
        | payload ->
          in_flight.(s) <-
            Mp_util.Transport.send ~timeout_s:p.timeout_s (slot_endpoint p s)
              payload
      end)
    buckets;
  Array.iteri
    (fun s bucket ->
      if in_flight.(s) then begin
        let ep = slot_endpoint p s in
        match Mp_util.Transport.recv ~timeout_s:p.timeout_s ep with
        | None -> () (* crash/timeout: slot reaped, jobs recovered *)
        | Some payload ->
          (match (Marshal.from_bytes payload 0 : response) with
           | exception _ -> Mp_util.Transport.reap ep
           | rs ->
             if rs.rs_ns <> ns then Mp_util.Transport.reap ep
             else (
               match rs.rs_results with
               | Error _ -> () (* worker-reported failure *)
               | Ok arr ->
                 if Array.length arr = Array.length bucket then
                   Array.iteri (fun k i -> results.(i) <- Some arr.(k)) bucket
                 else Mp_util.Transport.reap ep))
      end)
    buckets

(* ----- dynamic scheduler -------------------------------------------------- *)

(* Aim for enough chunks that every slot refills its pipeline window a
   few times over — that is what lets fast slots drain a skewed shard —
   while keeping per-chunk framing overhead amortized. *)
let default_chunk_jobs ~jobs ~slots ~inflight =
  max 1 (jobs / (max 1 slots * max 1 inflight * 4))

type chunk_state = C_live | C_done | C_failed

type chunk = {
  c_id : int;
  c_jobs : int array; (* indices into the batch *)
  mutable c_state : chunk_state;
  mutable c_copies : int; (* dispatched copies currently outstanding *)
  mutable c_slots : int list; (* slots running those copies *)
  mutable c_first_sent : float;
}

(* per-batch, per-slot stat accumulator (merged into the process-wide
   table once the batch completes) *)
type slot_acc = {
  mutable a_jobs : int;
  mutable a_chunks : int;
  mutable a_spec : int;
  mutable a_cancel : int;
  mutable a_busy : float;
}

(* Work-conserving chunked dispatch. The batch is split into
   affinity-keyed chunks (the struct-hash fold still picks each chunk's
   *preferred* slot, so warm replay/cache state keeps accruing where it
   always did); every live slot keeps up to [inflight] chunk frames
   outstanding, and as completions arrive the next chunk is pulled from
   the slot's own queue, then from re-queued work of dead slots, then
   stolen from the longest sibling queue. Once the queues are dry, idle
   slots re-dispatch the oldest outstanding chunk ([speculate]) and the
   first response wins — a straggling or silently-dead slot no longer
   gates the batch. Results are scattered by the chunk's own job
   indices, so placement never affects what the caller sees. *)
let run_dynamic p ~spec ~warmup ~measure ~period ~chunk_jobs ~inflight
    ~speculate jobs results =
  let slots = pool_size p in
  let ns = Measurement_cache.namespace () in
  let t_start = Unix.gettimeofday () in
  (* chunking: bucket job indices by preferred slot, split each bucket
     into runs of [chunk_jobs] *)
  let buckets = Array.make slots [] in
  Array.iteri
    (fun i j ->
      let s = shard_index ~shards:slots j.j_programs in
      buckets.(s) <- i :: buckets.(s))
    jobs;
  let rev_chunks = ref [] in
  let n_chunks = ref 0 in
  let pending = Array.init slots (fun _ -> Queue.create ()) in
  Array.iteri
    (fun s l ->
      let idxs = Array.of_list (List.rev l) in
      let len = Array.length idxs in
      let step = max 1 chunk_jobs in
      let off = ref 0 in
      while !off < len do
        let k = min step (len - !off) in
        let c =
          {
            c_id = !n_chunks;
            c_jobs = Array.sub idxs !off k;
            c_state = C_live;
            c_copies = 0;
            c_slots = [];
            c_first_sent = 0.0;
          }
        in
        incr n_chunks;
        rev_chunks := c :: !rev_chunks;
        Queue.push c pending.(s);
        off := !off + k
      done)
    buckets;
  let chunks = Array.of_list (List.rev !rev_chunks) in
  let live_left = ref (Array.length chunks) in
  let ep = Array.init slots (slot_endpoint p) in
  let live = Array.make slots true in
  let requeue = Queue.create () in
  let inflightq = Array.make slots [] in (* oldest dispatch first *)
  let deadline = Array.make slots infinity in
  let busy_since = Array.make slots None in
  let stats =
    Array.init slots (fun _ ->
        { a_jobs = 0; a_chunks = 0; a_spec = 0; a_cancel = 0; a_busy = 0.0 })
  in
  let now () = Unix.gettimeofday () in
  let flush_busy s t =
    match busy_since.(s) with
    | Some t0 ->
      stats.(s).a_busy <- stats.(s).a_busy +. (t -. t0);
      busy_since.(s) <- None
    | None -> ()
  in
  let remove_slot s c = c.c_slots <- List.filter (fun x -> x <> s) c.c_slots in
  let fail_slot s =
    if live.(s) then begin
      live.(s) <- false;
      flush_busy s (now ());
      Mp_util.Transport.reap ep.(s);
      (* copies lost with the slot re-enter the queue — unless another
         copy is still running (speculation) or the chunk already
         finished *)
      List.iter
        (fun c ->
          c.c_copies <- c.c_copies - 1;
          remove_slot s c;
          if c.c_state = C_live && c.c_copies = 0 then Queue.push c requeue)
        inflightq.(s);
      inflightq.(s) <- [];
      deadline.(s) <- infinity;
      (* its never-dispatched affinity work too *)
      Queue.transfer pending.(s) requeue
    end
  in
  let dispatch s c ~spec_copy =
    let rq =
      {
        rq_ns = ns;
        rq_chunk = c.c_id;
        rq_warmup = warmup;
        rq_measure = measure;
        rq_period = period;
        rq_spec = spec;
        rq_jobs = Array.map (fun i -> jobs.(i)) c.c_jobs;
      }
    in
    match Marshal.to_bytes rq [ Marshal.Closures ] with
    | exception _ ->
      (* unmarshalable spec: deterministic, don't re-queue — the
         caller's in-process recovery picks these jobs up *)
      if c.c_state = C_live && c.c_copies = 0 then begin
        c.c_state <- C_failed;
        decr live_left
      end;
      `Chunk_failed
    | payload ->
      if Mp_util.Transport.send ~timeout_s:p.timeout_s ep.(s) payload then begin
        let t = now () in
        if c.c_copies = 0 then c.c_first_sent <- t;
        c.c_copies <- c.c_copies + 1;
        c.c_slots <- s :: c.c_slots;
        if inflightq.(s) = [] then begin
          busy_since.(s) <- Some t;
          deadline.(s) <- t +. p.timeout_s
        end;
        inflightq.(s) <- inflightq.(s) @ [ c ];
        if spec_copy then stats.(s).a_spec <- stats.(s).a_spec + 1;
        `Sent
      end
      else begin
        fail_slot s;
        (* the chunk in hand was popped from a queue and never made it
           into this slot's in-flight list, so [fail_slot] cannot see
           it — re-queue it here unless a speculated copy still runs *)
        if c.c_state = C_live && c.c_copies = 0 then Queue.push c requeue;
        `Slot_dead
      end
  in
  let steal_victim s =
    let best = ref (-1) and best_len = ref 0 in
    Array.iteri
      (fun v q ->
        if v <> s then begin
          let len = Queue.length q in
          if len > !best_len then begin
            best := v;
            best_len := len
          end
        end)
      pending;
    if !best >= 0 then Some pending.(!best) else None
  in
  let rec next_work s =
    let popped =
      if not (Queue.is_empty pending.(s)) then Some (Queue.pop pending.(s))
      else if not (Queue.is_empty requeue) then Some (Queue.pop requeue)
      else
        match steal_victim s with Some q -> Some (Queue.pop q) | None -> None
    in
    match popped with
    | Some c when c.c_state <> C_live -> next_work s (* defensive skip *)
    | x -> x
  in
  (* the oldest still-outstanding chunk not already running here, one
     duplicate copy at most *)
  let pick_speculation s =
    let best = ref None in
    Array.iter
      (fun c ->
        if
          c.c_state = C_live && c.c_copies >= 1 && c.c_copies < 2
          && not (List.mem s c.c_slots)
        then
          match !best with
          | Some b when b.c_first_sent <= c.c_first_sent -> ()
          | _ -> best := Some c)
      chunks;
    !best
  in
  let recv_one s =
    match Mp_util.Transport.recv ~timeout_s:p.timeout_s ep.(s) with
    | None -> fail_slot s
    | Some payload ->
      (match (Marshal.from_bytes payload 0 : response) with
       | exception _ -> fail_slot s
       | rs ->
         if rs.rs_ns <> ns then fail_slot s
         else (
           match
             List.find_opt (fun c -> c.c_id = rs.rs_chunk) inflightq.(s)
           with
           | None -> fail_slot s (* a tag we never sent here *)
           | Some c ->
             inflightq.(s) <- List.filter (fun x -> x != c) inflightq.(s);
             c.c_copies <- c.c_copies - 1;
             remove_slot s c;
             let t = now () in
             if inflightq.(s) = [] then begin
               flush_busy s t;
               deadline.(s) <- infinity
             end
             else deadline.(s) <- t +. p.timeout_s;
             if c.c_state <> C_live then
               (* a sibling's copy already won: first result stands *)
               stats.(s).a_cancel <- stats.(s).a_cancel + 1
             else (
               match rs.rs_results with
               | Error _ ->
                 (* executor-reported failure. With another copy still
                    running, let it decide (the failure may be
                    slot-local); with none, it is deterministic — do
                    NOT re-queue (that would loop), leave the jobs for
                    the caller's in-process recovery *)
                 if c.c_copies = 0 then begin
                   c.c_state <- C_failed;
                   decr live_left
                 end
               | Ok arr when Array.length arr = Array.length c.c_jobs ->
                 Array.iteri (fun k i -> results.(i) <- Some arr.(k)) c.c_jobs;
                 c.c_state <- C_done;
                 decr live_left;
                 stats.(s).a_jobs <- stats.(s).a_jobs + Array.length c.c_jobs;
                 stats.(s).a_chunks <- stats.(s).a_chunks + 1
               | Ok _ ->
                 (* wrong cardinality: protocol violation — the chunk is
                    lost here but not deterministically failed *)
                 if c.c_copies = 0 then Queue.push c requeue;
                 fail_slot s)))
  in
  let any_live () = Array.exists Fun.id live in
  let rec loop () =
    if !live_left > 0 && any_live () then begin
      (* dispatch: keep every live slot's window full. The first frame
         may block like a static send; refills are gated on a
         zero-timeout writability probe so one slot's full buffer never
         wedges the whole loop. *)
      for s = 0 to slots - 1 do
        let rec fill () =
          if live.(s) && List.length inflightq.(s) < inflight then begin
            let can_send =
              inflightq.(s) = [] || Mp_util.Transport.writable ep.(s)
            in
            if can_send then (
              match next_work s with
              | Some c -> (
                match dispatch s c ~spec_copy:false with
                | `Sent | `Chunk_failed -> fill ()
                | `Slot_dead -> ())
              | None ->
                let want_spec =
                  match speculate with
                  | Spec_off -> false
                  | Spec_on -> inflightq.(s) = []
                  | Spec_force -> true
                in
                if want_spec then (
                  match pick_speculation s with
                  | Some c -> (
                    match dispatch s c ~spec_copy:true with
                    | `Sent -> fill ()
                    | `Chunk_failed | `Slot_dead -> ())
                  | None -> ()))
          end
        in
        fill ()
      done;
      (* collect: wait for any completion, bounded by the nearest slot
         deadline (a slot that goes silent for timeout_s between frames
         is declared dead and its chunks re-queued) *)
      let waiting = ref [] in
      for s = slots - 1 downto 0 do
        if live.(s) && inflightq.(s) <> [] then
          waiting := (s, ep.(s)) :: !waiting
      done;
      if !waiting <> [] then begin
        let t = now () in
        let nearest =
          List.fold_left (fun a (s, _) -> Float.min a deadline.(s)) infinity
            !waiting
        in
        let tick = Float.max 0.0 (Float.min 0.25 (nearest -. t)) in
        let ready = Mp_util.Transport.select_readable ~timeout_s:tick !waiting in
        List.iter (fun s -> if live.(s) then recv_one s) ready;
        let t = now () in
        for s = 0 to slots - 1 do
          if live.(s) && inflightq.(s) <> [] && t > deadline.(s) then
            fail_slot s
        done;
        loop ()
      end
      (* waiting = [] with work left only happens when every remaining
         chunk just failed or every slot died mid-dispatch: fall out,
         the caller recovers the [None] positions *)
    end
  in
  loop ();
  (* Speculated copies may still be in flight after the last chunk
     completed. Their frames must not survive into the next batch, so
     drain them briefly (counting late duplicates as cancelled); a slot
     still silent after the grace window is reaped — it was the
     straggler speculation routed around, and a reap now beats a stale
     frame later. *)
  let drain_deadline = now () +. Float.min 1.0 p.timeout_s in
  let rec drain () =
    let waiting = ref [] in
    for s = slots - 1 downto 0 do
      if live.(s) && inflightq.(s) <> [] then waiting := (s, ep.(s)) :: !waiting
    done;
    if !waiting <> [] then begin
      let left = drain_deadline -. now () in
      if left <= 0.0 then List.iter (fun (s, _) -> fail_slot s) !waiting
      else begin
        let ready =
          Mp_util.Transport.select_readable ~timeout_s:(Float.min left 0.1)
            !waiting
        in
        List.iter (fun s -> if live.(s) then recv_one s) ready;
        drain ()
      end
    end
  in
  drain ();
  let t_end = now () in
  let wall = t_end -. t_start in
  Array.iteri
    (fun s a ->
      flush_busy s t_end;
      record_slot_stat
        (Mp_util.Transport.label ep.(s))
        {
          sl_jobs = a.a_jobs;
          sl_chunks = a.a_chunks;
          sl_speculated = a.a_spec;
          sl_cancelled = a.a_cancel;
          sl_busy_s = a.a_busy;
          sl_wall_s = wall;
        })
    stats

let run_jobs p ~spec ~warmup ~measure ?period ?sched ?chunk_jobs ?inflight
    ?speculate jobs =
  let jobs = Array.of_list jobs in
  let n = Array.length jobs in
  let results = Array.make n None in
  if n > 0 then begin
    Mutex.lock dispatch_lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock dispatch_lock)
      (fun () ->
        match (match sched with Some s -> s | None -> env_sched ()) with
        | Static -> run_static p ~spec ~warmup ~measure ~period jobs results
        | Dynamic ->
          let inflight =
            match inflight with Some i -> max 1 i | None -> env_inflight ()
          in
          let chunk_jobs =
            match chunk_jobs with
            | Some c -> max 1 c
            | None -> default_chunk_jobs ~jobs:n ~slots:(pool_size p) ~inflight
          in
          let speculate =
            match speculate with Some s -> s | None -> env_speculate ()
          in
          run_dynamic p ~spec ~warmup ~measure ~period ~chunk_jobs ~inflight
            ~speculate jobs results)
  end;
  results

(* ----- the shared pool --------------------------------------------------- *)

let global : pool option ref = ref None
let global_lock = Mutex.create ()

let shutdown_global () =
  Mutex.lock global_lock;
  let p = !global in
  global := None;
  Mutex.unlock global_lock;
  Option.iter shutdown_pool p

let () = at_exit shutdown_global

let get_pool ?(hosts = []) n =
  Mutex.lock global_lock;
  let recreate () =
    match create_pool ~hosts n with
    | p ->
      global := Some p;
      Some p
    | exception _ -> None
  in
  let p =
    match !global with
    | Some p when p.hosts = hosts && (n = 0 || p.pp <> None) ->
      Option.iter (fun pp -> Mp_util.Procpool.ensure_size pp n) p.pp;
      Some p
    | Some p ->
      (* the host set changed (or local workers are now needed where
         there were none): replace the pool rather than serve a stale
         topology — shard placement depends on the slot count *)
      global := None;
      shutdown_pool p;
      recreate ()
    | None -> recreate ()
  in
  Mutex.unlock global_lock;
  p

let global_size () = match !global with Some p -> local_size p | None -> 0

let global_remote_size () =
  match !global with Some p -> remote_size p | None -> 0
