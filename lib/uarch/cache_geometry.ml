type level = L1 | L2 | L3 | MEM

type t = {
  level : level;
  size_bytes : int;
  associativity : int;
  line_bytes : int;
  latency_cycles : int;
}

let is_pow2 n = n > 0 && n land (n - 1) = 0

let log2 n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let make ~level ~size_bytes ~associativity ~line_bytes ~latency_cycles =
  if not (is_pow2 size_bytes && is_pow2 line_bytes && is_pow2 associativity)
  then invalid_arg "Cache_geometry.make: sizes must be powers of two";
  if size_bytes mod (line_bytes * associativity) <> 0 then
    invalid_arg "Cache_geometry.make: geometry does not divide";
  if latency_cycles <= 0 then invalid_arg "Cache_geometry.make: latency";
  { level; size_bytes; associativity; line_bytes; latency_cycles }

let sets g = g.size_bytes / (g.line_bytes * g.associativity)

let offset_bits g = log2 g.line_bytes

let set_bits g = log2 (sets g)

let set_index g addr = (addr lsr offset_bits g) land (sets g - 1)

(* precomputable halves of [set_index]: both run a division/log2 loop,
   so per-access callers hoist them into their own state once *)
let set_shift g = offset_bits g

let set_mask g = sets g - 1

let line_address g addr = addr land lnot (g.line_bytes - 1)

let tag g addr = addr lsr (offset_bits g + set_bits g)

let address_with_set g ~set ~tag =
  if set < 0 || set >= sets g then invalid_arg "Cache_geometry: set out of range";
  (tag lsl (offset_bits g + set_bits g)) lor (set lsl offset_bits g)

let level_to_string = function
  | L1 -> "L1"
  | L2 -> "L2"
  | L3 -> "L3"
  | MEM -> "MEM"

let level_of_string = function
  | "L1" -> Some L1
  | "L2" -> Some L2
  | "L3" -> Some L3
  | "MEM" -> Some MEM
  | _ -> None

let level_rank = function L1 -> 0 | L2 -> 1 | L3 -> 2 | MEM -> 3

let level_compare a b = compare (level_rank a) (level_rank b)

let all_levels = [ L1; L2; L3; MEM ]

let pp ppf g =
  Format.fprintf ppf "%s: %dKB %d-way %dB lines (%d sets, %d cyc)"
    (level_to_string g.level) (g.size_bytes / 1024) g.associativity
    g.line_bytes (sets g) g.latency_cycles
