open Mp_sim

let count = 7

let names = [| "FXU"; "VSU"; "LSU"; "L1"; "L2"; "L3"; "MEM" |]

let of_thread (c : Measurement.counters) =
  let r v = Measurement.rate c v in
  [| r c.Measurement.fxu;
     r c.Measurement.vsu;
     r (c.Measurement.lsu +. c.Measurement.st);
     r c.Measurement.l1;
     r c.Measurement.l2;
     r c.Measurement.l3;
     r c.Measurement.mem |]

let per_thread (m : Measurement.t) = Array.map of_thread m.Measurement.threads

let chip_sum (m : Measurement.t) =
  let acc = Array.make count 0.0 in
  Array.iter
    (fun c ->
      let x = of_thread c in
      Array.iteri (fun i v -> acc.(i) <- acc.(i) +. v) x)
    m.Measurement.threads;
  let cores = float_of_int m.Measurement.config.Mp_uarch.Uarch_def.cores in
  Array.map (fun v -> v *. cores) acc

let dot a b =
  let acc = ref 0.0 in
  Array.iteri (fun i v -> acc := !acc +. (v *. b.(i))) a;
  !acc
