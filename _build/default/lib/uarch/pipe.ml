type t = Fxu | Lsu | Vsu | Bru | Store_port | Update_port

type unit_kind = FXU | LSU | VSU | BRU

let all = [ Fxu; Lsu; Vsu; Bru; Store_port; Update_port ]

let all_units = [ FXU; LSU; VSU; BRU ]

let parent_unit = function
  | Fxu | Update_port -> FXU
  | Lsu | Store_port -> LSU
  | Vsu -> VSU
  | Bru -> BRU

let to_string = function
  | Fxu -> "FXU"
  | Lsu -> "LSU"
  | Vsu -> "VSU"
  | Bru -> "BRU"
  | Store_port -> "ST"
  | Update_port -> "UPD"

let unit_to_string = function
  | FXU -> "FXU"
  | LSU -> "LSU"
  | VSU -> "VSU"
  | BRU -> "BRU"

let unit_of_string = function
  | "FXU" -> Some FXU
  | "LSU" -> Some LSU
  | "VSU" -> Some VSU
  | "BRU" -> Some BRU
  | _ -> None

let compare_unit a b =
  let rank = function FXU -> 0 | LSU -> 1 | VSU -> 2 | BRU -> 3 in
  compare (rank a) (rank b)

let pp ppf p = Format.pp_print_string ppf (to_string p)
