lib/model/bottom_up.ml: Array Features Float Format List Measurement Mp_sim Mp_uarch Mp_util Printf String Uarch_def
