lib/sim/machine.ml: Array Core_sim Energy_table Float Hashtbl Ir List Measurement Mp_codegen Mp_mem Mp_uarch Mp_util Option Power_sim String Uarch_def
