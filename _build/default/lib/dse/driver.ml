type 'p evaluation = { point : 'p; score : float }

type 'p result = {
  best : 'p evaluation;
  evaluations : int;
  all : 'p evaluation list;
}

let best_of = function
  | [] -> invalid_arg "Driver.best_of: empty"
  | e :: rest ->
    List.fold_left (fun acc x -> if x.score > acc.score then x else acc) e rest

let top n evals =
  let sorted = List.sort (fun a b -> compare b.score a.score) evals in
  List.filteri (fun i _ -> i < n) sorted
