lib/sim/measurement.mli: Format Mp_uarch
