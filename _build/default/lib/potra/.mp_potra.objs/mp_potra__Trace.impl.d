lib/potra/trace.ml: Array Float List Mp_util
