test/test_dse.ml: Alcotest Driver Exhaustive Float Gen Genetic List Mp_dse Mp_util QCheck QCheck_alcotest Random_search Space
