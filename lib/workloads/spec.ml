open Mp_uarch.Cache_geometry
open Mp_codegen

type benchmark = {
  name : string;
  integer : bool;
  phases : (Ir.t * float) list;
}

(* Per-benchmark base profiles, loosely following published SPEC CPU2006
   characterisations: class balance, branchiness, locality. *)
let base name =
  let p = Profile.balanced in
  let mem l1 l2 l3 m = [ (L1, l1); (L2, l2); (L3, l3); (MEM, m) ] in
  match name with
  | "perlbench" ->
    { p with simple_int = 0.38; complex_int = 0.12; fp = 0.0; vec = 0.0;
      branch_freq = 0.10; mem_mix = mem 0.90 0.08 0.015 0.005 }
  | "bzip2" ->
    { p with simple_int = 0.35; complex_int = 0.15; fp = 0.0; vec = 0.0;
      load = 0.30; mem_mix = mem 0.75 0.20 0.04 0.01 }
  | "gcc" ->
    { p with simple_int = 0.34; complex_int = 0.12; fp = 0.0; vec = 0.0;
      branch_freq = 0.12; mem_mix = mem 0.78 0.14 0.06 0.02 }
  | "mcf" ->
    { p with simple_int = 0.20; complex_int = 0.05; fp = 0.0; vec = 0.0;
      load = 0.45; store = 0.08; dep = Builder.Fixed 1;
      mem_mix = mem 0.45 0.15 0.15 0.25 }
  | "gobmk" ->
    { p with simple_int = 0.40; fp = 0.0; vec = 0.0; branch_freq = 0.14;
      mem_mix = mem 0.88 0.09 0.02 0.01 }
  | "hmmer" ->
    { p with simple_int = 0.48; complex_int = 0.14; fp = 0.0; vec = 0.0;
      branch_freq = 0.02; dep = Builder.Random_range (4, 12);
      mem_mix = mem 0.96 0.03 0.008 0.002 }
  | "sjeng" ->
    { p with simple_int = 0.42; fp = 0.0; vec = 0.0; branch_freq = 0.13;
      mem_mix = mem 0.86 0.10 0.03 0.01 }
  | "libquantum" ->
    { p with simple_int = 0.25; fp = 0.0; vec = 0.05; load = 0.40;
      store = 0.15; dep = Builder.Random_range (6, 14);
      mem_mix = mem 0.30 0.10 0.20 0.40 }
  | "h264ref" ->
    { p with simple_int = 0.38; mul = 0.10; vec = 0.10; fp = 0.02;
      dep = Builder.Random_range (3, 10); mem_mix = mem 0.92 0.06 0.015 0.005 }
  | "omnetpp" ->
    { p with simple_int = 0.26; fp = 0.0; vec = 0.0; load = 0.38;
      branch_freq = 0.10; dep = Builder.Fixed 1;
      mem_mix = mem 0.55 0.18 0.15 0.12 }
  | "astar" ->
    { p with simple_int = 0.30; fp = 0.0; vec = 0.0; load = 0.35;
      branch_freq = 0.09; dep = Builder.Fixed 2;
      mem_mix = mem 0.62 0.18 0.12 0.08 }
  | "xalancbmk" ->
    { p with simple_int = 0.33; fp = 0.0; vec = 0.0; branch_freq = 0.12;
      load = 0.32; mem_mix = mem 0.70 0.16 0.09 0.05 }
  | "bwaves" ->
    { p with simple_int = 0.10; fp = 0.22; vec = 0.20; load = 0.30;
      store = 0.10; branch_freq = 0.01; dep = Builder.Random_range (4, 12);
      mem_mix = mem 0.55 0.15 0.12 0.18 }
  | "gamess" ->
    (* the suite's hottest point: dense, independent vector arithmetic
       resident in the L1 — near-stressmark behaviour *)
    { p with simple_int = 0.10; complex_int = 0.02; mul = 0.08; fp = 0.25;
      vec = 0.40; load = 0.15; store = 0.02; branch_freq = 0.0;
      dep = Builder.No_deps; mem_mix = mem 0.99 0.008 0.001 0.001 }
  | "milc" ->
    { p with simple_int = 0.10; fp = 0.18; vec = 0.25; load = 0.30;
      store = 0.10; dep = Builder.Random_range (5, 12);
      mem_mix = mem 0.50 0.12 0.13 0.25 }
  | "zeusmp" ->
    { p with simple_int = 0.12; fp = 0.30; vec = 0.12; load = 0.28;
      mem_mix = mem 0.68 0.14 0.12 0.06 }
  | "gromacs" ->
    { p with simple_int = 0.18; fp = 0.35; vec = 0.10; load = 0.24;
      mem_mix = mem 0.90 0.07 0.02 0.01 }
  | "cactusADM" ->
    { p with simple_int = 0.10; fp = 0.35; vec = 0.10; load = 0.28;
      store = 0.12; dep = Builder.Random_range (3, 8);
      mem_mix = mem 0.55 0.15 0.10 0.20 }
  | "leslie3d" ->
    { p with simple_int = 0.10; fp = 0.32; vec = 0.12; load = 0.28;
      mem_mix = mem 0.58 0.16 0.14 0.12 }
  | "namd" ->
    { p with simple_int = 0.15; fp = 0.45; vec = 0.06; load = 0.24;
      branch_freq = 0.01; dep = Builder.Random_range (5, 12);
      mem_mix = mem 0.94 0.05 0.008 0.002 }
  | "dealII" ->
    { p with simple_int = 0.18; fp = 0.33; vec = 0.05; load = 0.28;
      mem_mix = mem 0.80 0.13 0.05 0.02 }
  | "soplex" ->
    { p with simple_int = 0.20; fp = 0.25; vec = 0.02; load = 0.33;
      branch_freq = 0.06; mem_mix = mem 0.60 0.17 0.13 0.10 }
  | "povray" ->
    { p with simple_int = 0.22; fp = 0.40; vec = 0.03; load = 0.22;
      branch_freq = 0.08; dep = Builder.Random_range (3, 9);
      mem_mix = mem 0.96 0.03 0.008 0.002 }
  | "calculix" ->
    { p with simple_int = 0.16; fp = 0.38; vec = 0.06; load = 0.26;
      mem_mix = mem 0.85 0.10 0.04 0.01 }
  | "GemsFDTD" ->
    { p with simple_int = 0.10; fp = 0.30; vec = 0.12; load = 0.30;
      store = 0.10; mem_mix = mem 0.52 0.16 0.12 0.20 }
  | "tonto" ->
    { p with simple_int = 0.16; fp = 0.36; vec = 0.05; load = 0.26;
      mem_mix = mem 0.82 0.12 0.04 0.02 }
  | "lbm" ->
    { p with simple_int = 0.08; fp = 0.28; vec = 0.12; load = 0.30;
      store = 0.16; branch_freq = 0.005; dep = Builder.Random_range (6, 14);
      mem_mix = mem 0.40 0.12 0.13 0.35 }
  | "wrf" ->
    { p with simple_int = 0.14; fp = 0.32; vec = 0.08; load = 0.28;
      mem_mix = mem 0.72 0.14 0.09 0.05 }
  | "sphinx3" ->
    { p with simple_int = 0.16; fp = 0.34; vec = 0.04; load = 0.30;
      mem_mix = mem 0.70 0.17 0.09 0.04 }
  | other -> invalid_arg (Printf.sprintf "Spec.base: unknown benchmark %S" other)

let cint =
  [ "perlbench"; "bzip2"; "gcc"; "mcf"; "gobmk"; "hmmer"; "sjeng";
    "libquantum"; "h264ref"; "omnetpp"; "astar"; "xalancbmk" ]

let names =
  cint
  @ [ "bwaves"; "gamess"; "milc"; "zeusmp"; "gromacs"; "cactusADM";
      "leslie3d"; "namd"; "dealII"; "soplex"; "povray"; "calculix";
      "GemsFDTD"; "tonto"; "lbm"; "wrf"; "sphinx3" ]

(* gamess's hottest region behaves like a hand-scheduled dense FMA
   kernel: multiply, vector multiply-add and a streaming vector load,
   fully independent, L1-resident — the kind of loop that makes SPEC's
   peak power rival a hand-written stress test (the paper's Figure 9
   baseline is the maximum power *during execution* of the suite). *)
let hot_kernel ~arch ~size name =
  let f = Arch.find_instruction arch in
  let seqn = [ f "xvmaddadp"; f "xvmaddadp"; f "mullw"; f "mullw";
               f "lxvd2x"; f "lxvd2x" ] in
  let synth = Synthesizer.create ~name arch in
  Synthesizer.add_pass synth (Passes.skeleton ~size);
  Synthesizer.add_pass synth (Passes.fill_sequence seqn);
  Synthesizer.add_pass synth (Passes.memory_model [ (L1, 1.0) ]);
  Synthesizer.add_pass synth (Passes.dependency Builder.No_deps);
  Synthesizer.add_pass synth (Passes.init_registers Builder.Random_values);
  Synthesizer.add_pass synth (Passes.rename name);
  Synthesizer.synthesize ~seed:(Hashtbl.hash name) synth

let benchmark ~arch ?(size = 1024) name =
  if not (List.mem name names) then raise Not_found;
  let seed = Hashtbl.hash ("spec2006:" ^ name) in
  let rng = Mp_util.Rng.create seed in
  let profile = base name in
  let n_phases = 2 + Mp_util.Rng.int rng 3 in
  let phases =
    List.init n_phases (fun k ->
        let p = Profile.perturb rng ~strength:0.35 profile in
        let prog =
          Profile.program ~arch
            ~name:(Printf.sprintf "%s.p%d" name k)
            ~seed:(seed + (k * 7919))
            ~size p
        in
        let weight = 0.5 +. Mp_util.Rng.float rng 1.0 in
        (prog, weight))
  in
  let phases =
    if name = "gamess" then
      (hot_kernel ~arch ~size (name ^ ".hot"), 2.0) :: phases
    else phases
  in
  { name; integer = List.mem name cint; phases }

let suite ~arch ?size () = List.map (fun n -> benchmark ~arch ?size n) names

let run ~machine ~config ?pool b =
  Mp_sim.Machine.run_phases ?pool machine config b.phases
