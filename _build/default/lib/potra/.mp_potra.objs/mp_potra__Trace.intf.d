lib/potra/trace.mli:
