open Instruction

(* Compact builders. Opcode/xo values follow the Power ISA v2.06B
   encodings (XO-form "o" variants fold the OE bit into the top of the
   10-bit extended-opcode field, as in the manual). *)

let d ~op ?(cls = Simple_int) ?(width = 64) ?(srcs = 1) ?(imm = 16) ?desc m =
  make ~mnemonic:m ~exec_class:cls ~width ~srcs ~has_imm:true ~imm_bits:imm
    ~form:D ~opcode:op ?description:desc ()

let xo_arith ~xo ?(cls = Simple_int) ?(width = 64) ?(srcs = 2) ?desc m =
  make ~mnemonic:m ~exec_class:cls ~width ~srcs ~form:XO ~opcode:31 ~xo
    ?description:desc ()

let x_logic ~xo ?(cls = Simple_int) ?(width = 64) ?(srcs = 2) ?desc m =
  make ~mnemonic:m ~exec_class:cls ~width ~srcs ~form:X ~opcode:31 ~xo
    ?description:desc ()

let ld_d ~op ~width ?(cls = Gpr) ?(update = false) ?(algebraic = false) ?desc m =
  make ~mnemonic:m ~exec_class:Mem_op ~mem:Load ~update ~algebraic
    ~data_class:cls ~width ~has_imm:true ~imm_bits:16 ~srcs:0 ~form:D
    ~opcode:op ?description:desc ()

let ld_ds ~xo ~width ?(update = false) ?(algebraic = false) ?desc m =
  make ~mnemonic:m ~exec_class:Mem_op ~mem:Load ~update ~algebraic ~width
    ~has_imm:true ~imm_bits:14 ~srcs:0 ~form:DS ~opcode:58 ~xo
    ?description:desc ()

let ld_x ~xo ~width ?(cls = Gpr) ?(update = false) ?(algebraic = false) ?desc m =
  make ~mnemonic:m ~exec_class:Mem_op ~mem:Load ~update ~algebraic
    ~indexed:true ~data_class:cls ~width ~srcs:0 ~form:X ~opcode:31 ~xo
    ?description:desc ()

let st_d ~op ~width ?(cls = Gpr) ?(update = false) ?desc m =
  make ~mnemonic:m ~exec_class:Mem_op ~mem:Store ~update ~data_class:cls
    ~width ~has_imm:true ~imm_bits:16 ~srcs:1 ~has_dest:false ~form:D
    ~opcode:op ?description:desc ()

let st_ds ~xo ~width ?(update = false) ?desc m =
  make ~mnemonic:m ~exec_class:Mem_op ~mem:Store ~update ~width ~has_imm:true
    ~imm_bits:14 ~srcs:1 ~has_dest:false ~form:DS ~opcode:62 ~xo
    ?description:desc ()

let st_x ~xo ~width ?(cls = Gpr) ?(update = false) ?desc m =
  make ~mnemonic:m ~exec_class:Mem_op ~mem:Store ~update ~indexed:true
    ~data_class:cls ~width ~srcs:1 ~has_dest:false ~form:X ~opcode:31 ~xo
    ?description:desc ()

let fp_a ~op ~xo ?(cls = Fp_arith) ?(width = 64) ?(srcs = 2) ?desc m =
  make ~mnemonic:m ~exec_class:cls ~data_class:Fpr ~width ~srcs ~form:A
    ~opcode:op ~xo ?description:desc ()

let vsx ~xo ?(cls = Vec_arith) ?(width = 128) ?(srcs = 2) ?desc m =
  make ~mnemonic:m ~exec_class:cls ~data_class:Vsr ~width ~srcs ~form:XX3
    ~opcode:60 ~xo ?description:desc ()

let vsx_x ~xo ?(cls = Vec_arith) ?(width = 128) ?(srcs = 1) ?desc m =
  make ~mnemonic:m ~exec_class:cls ~data_class:Vsr ~width ~srcs ~form:X
    ~opcode:60 ~xo ?description:desc ()

let altivec ~xo ?(cls = Vec_arith) ?(srcs = 2) ?desc m =
  make ~mnemonic:m ~exec_class:cls ~data_class:Vsr ~width:128 ~srcs ~form:VX
    ~opcode:4 ~xo ?description:desc ()

let dec ~xo ?(srcs = 2) ?desc m =
  make ~mnemonic:m ~exec_class:Dec_arith ~data_class:Fpr ~width:64 ~srcs
    ~form:X ~opcode:59 ~xo ?description:desc ()

let instruction_list () =
  [
    (* --- simple integer: executable by FXU or LSU ---------------------- *)
    xo_arith "add" ~xo:266 ~desc:"Add";
    xo_arith "subf" ~xo:40 ~cls:Complex_int ~desc:"Subtract from";
    xo_arith "addc" ~xo:10 ~cls:Complex_int ~desc:"Add carrying";
    xo_arith "adde" ~xo:138 ~cls:Complex_int ~desc:"Add extended";
    xo_arith "neg" ~xo:104 ~srcs:1 ~desc:"Negate";
    x_logic "and" ~xo:28 ~desc:"AND";
    x_logic "or" ~xo:444 ~desc:"OR";
    x_logic "xor" ~xo:316 ~desc:"XOR";
    x_logic "nand" ~xo:476 ~desc:"NAND";
    x_logic "nor" ~xo:124 ~desc:"NOR";
    x_logic "eqv" ~xo:284 ~desc:"Equivalent";
    x_logic "andc" ~xo:60 ~desc:"AND with complement";
    x_logic "orc" ~xo:412 ~desc:"OR with complement";
    d "addi" ~op:14 ~desc:"Add immediate";
    d "addis" ~op:15 ~desc:"Add immediate shifted";
    d "addic" ~op:12 ~cls:Complex_int ~desc:"Add immediate carrying";
    d "addic." ~op:13 ~cls:Complex_int ~desc:"Add immediate carrying and record";
    d "subfic" ~op:8 ~cls:Complex_int ~desc:"Subtract from immediate carrying";
    d "ori" ~op:24 ~desc:"OR immediate";
    d "oris" ~op:25 ~desc:"OR immediate shifted";
    d "xori" ~op:26 ~desc:"XOR immediate";
    d "andi." ~op:28 ~desc:"AND immediate and record";
    (* --- complex integer: FXU only ------------------------------------- *)
    x_logic "extsb" ~xo:954 ~cls:Complex_int ~srcs:1 ~width:8 ~desc:"Extend sign byte";
    x_logic "extsh" ~xo:922 ~cls:Complex_int ~srcs:1 ~width:16 ~desc:"Extend sign halfword";
    x_logic "extsw" ~xo:986 ~cls:Complex_int ~srcs:1 ~width:32 ~desc:"Extend sign word";
    x_logic "cntlzw" ~xo:26 ~cls:Complex_int ~srcs:1 ~width:32 ~desc:"Count leading zeros word";
    x_logic "cntlzd" ~xo:58 ~cls:Complex_int ~srcs:1 ~desc:"Count leading zeros dword";
    x_logic "popcntb" ~xo:122 ~cls:Complex_int ~srcs:1 ~desc:"Population count bytes";
    x_logic "popcntd" ~xo:506 ~cls:Complex_int ~srcs:1 ~desc:"Population count dword";
    x_logic "cmpb" ~xo:508 ~cls:Complex_int ~desc:"Compare bytes";
    x_logic "slw" ~xo:24 ~cls:Complex_int ~width:32 ~desc:"Shift left word";
    x_logic "srw" ~xo:536 ~cls:Complex_int ~width:32 ~desc:"Shift right word";
    x_logic "sld" ~xo:27 ~cls:Complex_int ~desc:"Shift left dword";
    x_logic "srd" ~xo:539 ~cls:Complex_int ~desc:"Shift right dword";
    x_logic "sraw" ~xo:792 ~cls:Complex_int ~width:32 ~desc:"Shift right algebraic word";
    x_logic "srad" ~xo:794 ~cls:Complex_int ~desc:"Shift right algebraic dword";
    make ~mnemonic:"rldicl" ~exec_class:Complex_int ~srcs:1 ~has_imm:true
      ~imm_bits:6 ~form:MD ~opcode:30 ~xo:0 ~description:"Rotate left dword immediate clear left" ();
    make ~mnemonic:"rldicr" ~exec_class:Complex_int ~srcs:1 ~has_imm:true
      ~imm_bits:6 ~form:MD ~opcode:30 ~xo:1 ~description:"Rotate left dword immediate clear right" ();
    xo_arith "mulld" ~xo:233 ~cls:Mul_int ~desc:"Multiply low dword";
    xo_arith "mulldo" ~xo:745 ~cls:Mul_int ~desc:"Multiply low dword with overflow";
    xo_arith "mullw" ~xo:235 ~cls:Mul_int ~width:32 ~desc:"Multiply low word";
    xo_arith "mulhw" ~xo:75 ~cls:Mul_int ~width:32 ~desc:"Multiply high word";
    xo_arith "mulhd" ~xo:73 ~cls:Mul_int ~desc:"Multiply high dword";
    xo_arith "mulhdu" ~xo:9 ~cls:Mul_int ~desc:"Multiply high dword unsigned";
    d "mulli" ~op:7 ~cls:Mul_int ~desc:"Multiply low immediate";
    xo_arith "divd" ~xo:489 ~cls:Div_int ~desc:"Divide dword";
    xo_arith "divw" ~xo:491 ~cls:Div_int ~width:32 ~desc:"Divide word";
    xo_arith "divdu" ~xo:457 ~cls:Div_int ~desc:"Divide dword unsigned";
    xo_arith "divwu" ~xo:459 ~cls:Div_int ~width:32 ~desc:"Divide word unsigned";
    (* --- compares and branches ----------------------------------------- *)
    make ~mnemonic:"cmpw" ~exec_class:Cmp_op ~width:32 ~form:X ~opcode:31
      ~xo:0 ~description:"Compare word" ();
    make ~mnemonic:"cmplw" ~exec_class:Cmp_op ~width:32 ~form:X ~opcode:31
      ~xo:32 ~description:"Compare logical word" ();
    make ~mnemonic:"cmpdi" ~exec_class:Cmp_op ~has_imm:true ~srcs:1 ~form:D
      ~opcode:11 ~description:"Compare dword immediate" ();
    make ~mnemonic:"b" ~exec_class:Branch_op ~srcs:0 ~has_dest:false
      ~has_imm:true ~imm_bits:24 ~form:I_form ~opcode:18 ~description:"Branch" ();
    make ~mnemonic:"bc" ~exec_class:Branch_op ~srcs:0 ~has_dest:false
      ~conditional:true ~has_imm:true ~imm_bits:14 ~form:B_form ~opcode:16
      ~description:"Branch conditional" ();
    make ~mnemonic:"bdnz" ~exec_class:Branch_op ~srcs:0 ~has_dest:false
      ~conditional:true ~has_imm:true ~imm_bits:14 ~form:B_form ~opcode:16
      ~xo:0 ~description:"Decrement CTR, branch if non-zero" ();
    make ~mnemonic:"bclr" ~exec_class:Branch_op ~srcs:0 ~has_dest:false
      ~conditional:true ~form:X ~opcode:19 ~xo:16 ~description:"Branch conditional to LR" ();
    make ~mnemonic:"bcctr" ~exec_class:Branch_op ~srcs:0 ~has_dest:false
      ~conditional:true ~form:X ~opcode:19 ~xo:528 ~description:"Branch conditional to CTR" ();
    make ~mnemonic:"nop" ~exec_class:Nop_op ~srcs:0 ~has_dest:false ~form:D
      ~opcode:24 ~description:"No operation (ori 0,0,0)" ();
    (* --- integer loads -------------------------------------------------- *)
    ld_d "lbz" ~op:34 ~width:8 ~desc:"Load byte and zero";
    ld_d "lbzu" ~op:35 ~width:8 ~update:true ~desc:"Load byte and zero with update";
    ld_d "lhz" ~op:40 ~width:16 ~desc:"Load halfword and zero";
    ld_d "lhzu" ~op:41 ~width:16 ~update:true ~desc:"Load halfword and zero with update";
    ld_d "lha" ~op:42 ~width:16 ~algebraic:true ~desc:"Load halfword algebraic";
    ld_d "lhau" ~op:43 ~width:16 ~algebraic:true ~update:true
      ~desc:"Load halfword algebraic with update";
    ld_d "lwz" ~op:32 ~width:32 ~desc:"Load word and zero";
    ld_d "lwzu" ~op:33 ~width:32 ~update:true ~desc:"Load word and zero with update";
    ld_ds "ld" ~xo:0 ~width:64 ~desc:"Load dword";
    ld_ds "ldu" ~xo:1 ~width:64 ~update:true ~desc:"Load dword with update";
    ld_ds "lwa" ~xo:2 ~width:32 ~algebraic:true ~desc:"Load word algebraic";
    ld_x "lbzx" ~xo:87 ~width:8 ~desc:"Load byte and zero indexed";
    ld_x "lbzux" ~xo:119 ~width:8 ~update:true ~desc:"Load byte and zero with update indexed";
    ld_x "lhzx" ~xo:279 ~width:16 ~desc:"Load halfword and zero indexed";
    ld_x "lhzux" ~xo:311 ~width:16 ~update:true ~desc:"Load halfword and zero with update indexed";
    ld_x "lhax" ~xo:343 ~width:16 ~algebraic:true ~desc:"Load halfword algebraic indexed";
    ld_x "lhaux" ~xo:375 ~width:16 ~algebraic:true ~update:true
      ~desc:"Load halfword algebraic with update indexed";
    ld_x "lwzx" ~xo:23 ~width:32 ~desc:"Load word and zero indexed";
    ld_x "lwzux" ~xo:55 ~width:32 ~update:true ~desc:"Load word and zero with update indexed";
    ld_x "lwax" ~xo:341 ~width:32 ~algebraic:true ~desc:"Load word algebraic indexed";
    ld_x "lwaux" ~xo:373 ~width:32 ~algebraic:true ~update:true
      ~desc:"Load word algebraic with update indexed";
    ld_x "ldx" ~xo:21 ~width:64 ~desc:"Load dword indexed";
    ld_x "ldux" ~xo:53 ~width:64 ~update:true ~desc:"Load dword with update indexed";
    (* --- integer stores -------------------------------------------------- *)
    st_d "stb" ~op:38 ~width:8 ~desc:"Store byte";
    st_d "stbu" ~op:39 ~width:8 ~update:true ~desc:"Store byte with update";
    st_d "sth" ~op:44 ~width:16 ~desc:"Store halfword";
    st_d "sthu" ~op:45 ~width:16 ~update:true ~desc:"Store halfword with update";
    st_d "stw" ~op:36 ~width:32 ~desc:"Store word";
    st_d "stwu" ~op:37 ~width:32 ~update:true ~desc:"Store word with update";
    st_ds "std" ~xo:0 ~width:64 ~desc:"Store dword";
    st_ds "stdu" ~xo:1 ~width:64 ~update:true ~desc:"Store dword with update";
    st_x "stbx" ~xo:215 ~width:8 ~desc:"Store byte indexed";
    st_x "sthx" ~xo:407 ~width:16 ~desc:"Store halfword indexed";
    st_x "stwx" ~xo:151 ~width:32 ~desc:"Store word indexed";
    st_x "stwux" ~xo:183 ~width:32 ~update:true ~desc:"Store word with update indexed";
    st_x "stdx" ~xo:149 ~width:64 ~desc:"Store dword indexed";
    st_x "stdux" ~xo:181 ~width:64 ~update:true ~desc:"Store dword with update indexed";
    (* --- floating point loads/stores ------------------------------------ *)
    ld_d "lfs" ~op:48 ~width:32 ~cls:Fpr ~desc:"Load FP single";
    ld_d "lfsu" ~op:49 ~width:32 ~cls:Fpr ~update:true ~desc:"Load FP single with update";
    ld_d "lfd" ~op:50 ~width:64 ~cls:Fpr ~desc:"Load FP double";
    ld_d "lfdu" ~op:51 ~width:64 ~cls:Fpr ~update:true ~desc:"Load FP double with update";
    ld_x "lfsx" ~xo:535 ~width:32 ~cls:Fpr ~desc:"Load FP single indexed";
    ld_x "lfsux" ~xo:567 ~width:32 ~cls:Fpr ~update:true ~desc:"Load FP single with update indexed";
    ld_x "lfdx" ~xo:599 ~width:64 ~cls:Fpr ~desc:"Load FP double indexed";
    ld_x "lfdux" ~xo:631 ~width:64 ~cls:Fpr ~update:true ~desc:"Load FP double with update indexed";
    st_d "stfs" ~op:52 ~width:32 ~cls:Fpr ~desc:"Store FP single";
    st_d "stfsu" ~op:53 ~width:32 ~cls:Fpr ~update:true ~desc:"Store FP single with update";
    st_d "stfd" ~op:54 ~width:64 ~cls:Fpr ~desc:"Store FP double";
    st_d "stfdu" ~op:55 ~width:64 ~cls:Fpr ~update:true ~desc:"Store FP double with update";
    st_x "stfsx" ~xo:663 ~width:32 ~cls:Fpr ~desc:"Store FP single indexed";
    st_x "stfsux" ~xo:695 ~width:32 ~cls:Fpr ~update:true ~desc:"Store FP single with update indexed";
    st_x "stfdx" ~xo:727 ~width:64 ~cls:Fpr ~desc:"Store FP double indexed";
    st_x "stfdux" ~xo:759 ~width:64 ~cls:Fpr ~update:true ~desc:"Store FP double with update indexed";
    (* --- vector / VSX loads/stores --------------------------------------- *)
    ld_x "lvx" ~xo:103 ~width:128 ~cls:Vsr ~desc:"Load vector indexed";
    ld_x "lvewx" ~xo:71 ~width:32 ~cls:Vsr ~desc:"Load vector element word indexed";
    ld_x "lxvw4x" ~xo:780 ~width:128 ~cls:Vsr ~desc:"Load VSX vector word*4 indexed";
    ld_x "lxvd2x" ~xo:844 ~width:128 ~cls:Vsr ~desc:"Load VSX vector dword*2 indexed";
    ld_x "lxvdsx" ~xo:332 ~width:64 ~cls:Vsr ~desc:"Load VSX dword and splat indexed";
    ld_x "lxsdx" ~xo:588 ~width:64 ~cls:Vsr ~desc:"Load VSX scalar dword indexed";
    st_x "stvx" ~xo:231 ~width:128 ~cls:Vsr ~desc:"Store vector indexed";
    st_x "stvewx" ~xo:199 ~width:32 ~cls:Vsr ~desc:"Store vector element word indexed";
    st_x "stxvw4x" ~xo:908 ~width:128 ~cls:Vsr ~desc:"Store VSX vector word*4 indexed";
    st_x "stxvd2x" ~xo:972 ~width:128 ~cls:Vsr ~desc:"Store VSX vector dword*2 indexed";
    st_x "stxsdx" ~xo:716 ~width:64 ~cls:Vsr ~desc:"Store VSX scalar dword indexed";
    make ~mnemonic:"dcbt" ~exec_class:Mem_op ~mem:Load ~indexed:true ~srcs:0
      ~has_dest:false ~prefetch:true ~form:X ~opcode:31 ~xo:278
      ~description:"Data cache block touch (prefetch)" ();
    (* --- scalar floating point ------------------------------------------ *)
    fp_a "fadd" ~op:63 ~xo:21 ~desc:"FP add double";
    fp_a "fsub" ~op:63 ~xo:20 ~desc:"FP subtract double";
    fp_a "fmul" ~op:63 ~xo:25 ~desc:"FP multiply double";
    fp_a "fdiv" ~op:63 ~xo:18 ~cls:Fp_heavy ~desc:"FP divide double";
    fp_a "fsqrt" ~op:63 ~xo:22 ~cls:Fp_heavy ~srcs:1 ~desc:"FP square root double";
    fp_a "fmadd" ~op:63 ~xo:29 ~cls:Fp_fma ~srcs:3 ~desc:"FP multiply-add double";
    fp_a "fmsub" ~op:63 ~xo:28 ~cls:Fp_fma ~srcs:3 ~desc:"FP multiply-subtract double";
    fp_a "fnmadd" ~op:63 ~xo:31 ~cls:Fp_fma ~srcs:3 ~desc:"FP negative multiply-add double";
    fp_a "fnmsub" ~op:63 ~xo:30 ~cls:Fp_fma ~srcs:3 ~desc:"FP negative multiply-subtract double";
    fp_a "fadds" ~op:59 ~xo:21 ~width:32 ~desc:"FP add single";
    fp_a "fmuls" ~op:59 ~xo:25 ~width:32 ~desc:"FP multiply single";
    fp_a "fmadds" ~op:59 ~xo:29 ~cls:Fp_fma ~srcs:3 ~width:32 ~desc:"FP multiply-add single";
    (* --- VSX scalar / vector double precision ---------------------------- *)
    vsx "xsadddp" ~xo:32 ~width:64 ~desc:"VSX scalar add dp";
    vsx "xssubdp" ~xo:40 ~width:64 ~desc:"VSX scalar subtract dp";
    vsx "xsmuldp" ~xo:48 ~width:64 ~desc:"VSX scalar multiply dp";
    vsx "xsdivdp" ~xo:56 ~width:64 ~cls:Fp_heavy ~desc:"VSX scalar divide dp";
    vsx "xsmaddadp" ~xo:33 ~width:64 ~cls:Vec_fma ~srcs:3 ~desc:"VSX scalar multiply-add dp";
    vsx "xsnmsubadp" ~xo:177 ~width:64 ~cls:Vec_fma ~srcs:3
      ~desc:"VSX scalar negative multiply-subtract dp";
    vsx_x "xssqrtdp" ~xo:75 ~width:64 ~cls:Fp_heavy ~desc:"VSX scalar square root dp";
    vsx_x "xstsqrtdp" ~xo:106 ~width:64 ~cls:Fp_heavy ~desc:"VSX scalar test square root dp";
    vsx "xvadddp" ~xo:96 ~desc:"VSX vector add dp";
    vsx "xvsubdp" ~xo:104 ~desc:"VSX vector subtract dp";
    vsx "xvmuldp" ~xo:112 ~desc:"VSX vector multiply dp";
    vsx "xvdivdp" ~xo:120 ~cls:Fp_heavy ~desc:"VSX vector divide dp";
    vsx "xvmaddadp" ~xo:97 ~cls:Vec_fma ~srcs:3 ~desc:"VSX vector multiply-add dp";
    vsx "xvmaddmdp" ~xo:105 ~cls:Vec_fma ~srcs:3 ~desc:"VSX vector multiply-add dp (M)";
    vsx "xvnmsubadp" ~xo:241 ~cls:Vec_fma ~srcs:3 ~desc:"VSX vector negative multiply-subtract dp";
    vsx "xvnmsubmdp" ~xo:249 ~cls:Vec_fma ~srcs:3
      ~desc:"VSX vector negative multiply-subtract dp (M)";
    vsx_x "xvsqrtdp" ~xo:203 ~cls:Fp_heavy ~desc:"VSX vector square root dp";
    vsx "xxlxor" ~xo:154 ~cls:Vec_logic ~desc:"VSX logical XOR";
    vsx "xxland" ~xo:130 ~cls:Vec_logic ~desc:"VSX logical AND";
    vsx "xxlor" ~xo:146 ~cls:Vec_logic ~desc:"VSX logical OR";
    (* --- AltiVec integer vector ------------------------------------------ *)
    altivec "vaddubm" ~xo:0 ~desc:"Vector add unsigned byte modulo";
    altivec "vadduhm" ~xo:64 ~desc:"Vector add unsigned halfword modulo";
    altivec "vadduwm" ~xo:128 ~desc:"Vector add unsigned word modulo";
    altivec "vaddudm" ~xo:192 ~desc:"Vector add unsigned dword modulo";
    altivec "vand" ~xo:1028 ~cls:Vec_logic ~desc:"Vector AND";
    altivec "vor" ~xo:1156 ~cls:Vec_logic ~desc:"Vector OR";
    altivec "vxor" ~xo:1220 ~cls:Vec_logic ~desc:"Vector XOR";
    altivec "vnor" ~xo:1284 ~cls:Vec_logic ~desc:"Vector NOR";
    altivec "vmaxsw" ~xo:386 ~desc:"Vector maximum signed word";
    altivec "vminsw" ~xo:898 ~desc:"Vector minimum signed word";
    (* --- decimal floating point ------------------------------------------ *)
    dec "dadd" ~xo:2 ~desc:"DFP add";
    dec "dsub" ~xo:514 ~desc:"DFP subtract";
    dec "dmul" ~xo:34 ~desc:"DFP multiply";
    dec "ddiv" ~xo:546 ~desc:"DFP divide";
  ]

let load () = Isa_def.create ~name:"PowerISA-2.06B-subset" (instruction_list ())

let definition_text () = Isa_def.to_text (load ())

let table3_mnemonics =
  [
    "mulldo"; "subf"; "addic";
    "lxvw4x"; "lvewx"; "lbz";
    "xvnmsubmdp"; "xvmaddadp"; "xstsqrtdp";
    "add"; "nor"; "and";
    "ldux"; "lwax"; "lfsu";
    "lhaux"; "lwaux"; "lhau";
    "stxvw4x"; "stxsdx"; "stfd";
    "stfsux"; "stfdux"; "stfdu";
  ]
