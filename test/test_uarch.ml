(* Tests for mp_uarch: cache geometry arithmetic, the POWER7 definition,
   instruction-to-unit mapping and configurations. *)

open Mp_uarch

let uarch () = Power7.define ()

let find u m = Mp_isa.Isa_def.find_exn (Power7.isa u) m

(* ----- cache geometry ---------------------------------------------------- *)

let l1 () = Uarch_def.cache (uarch ()) Cache_geometry.L1

let test_geometry_counts () =
  let u = uarch () in
  let l1 = Uarch_def.cache u Cache_geometry.L1 in
  let l2 = Uarch_def.cache u Cache_geometry.L2 in
  let l3 = Uarch_def.cache u Cache_geometry.L3 in
  Alcotest.(check int) "L1 sets" 32 (Cache_geometry.sets l1);
  Alcotest.(check int) "L2 sets" 256 (Cache_geometry.sets l2);
  Alcotest.(check int) "L3 sets" 4096 (Cache_geometry.sets l3);
  Alcotest.(check int) "L1 offset bits" 7 (Cache_geometry.offset_bits l1);
  Alcotest.(check int) "L1 set bits" 5 (Cache_geometry.set_bits l1);
  Alcotest.(check int) "L2 set bits" 8 (Cache_geometry.set_bits l2);
  Alcotest.(check int) "L3 set bits" 12 (Cache_geometry.set_bits l3)

let test_set_field_nesting () =
  (* Figure 3b: each level's set field extends the previous one's, so
     equal L2 sets imply equal L1 sets *)
  let u = uarch () in
  let l1 = Uarch_def.cache u Cache_geometry.L1 in
  let l2 = Uarch_def.cache u Cache_geometry.L2 in
  let a = Cache_geometry.address_with_set l2 ~set:0x53 ~tag:7 in
  let b = Cache_geometry.address_with_set l2 ~set:0x53 ~tag:9 in
  Alcotest.(check int) "same L1 set" (Cache_geometry.set_index l1 a)
    (Cache_geometry.set_index l1 b)

let test_geometry_validation () =
  Alcotest.(check bool) "non power of two" true
    (try
       ignore (Cache_geometry.make ~level:Cache_geometry.L1 ~size_bytes:3000
                 ~associativity:8 ~line_bytes:128 ~latency_cycles:1);
       false
     with Invalid_argument _ -> true)

let prop_set_roundtrip =
  QCheck.Test.make ~name:"address_with_set/set_index round-trip" ~count:500
    QCheck.(pair (int_range 0 31) (int_range 0 100000))
    (fun (set, tag) ->
      let g = l1 () in
      let addr = Cache_geometry.address_with_set g ~set ~tag in
      Cache_geometry.set_index g addr = set && Cache_geometry.tag g addr = tag)

let prop_line_address_idempotent =
  QCheck.Test.make ~name:"line_address idempotent" ~count:500
    QCheck.(int_range 0 10_000_000)
    (fun addr ->
      let g = l1 () in
      let la = Cache_geometry.line_address g addr in
      Cache_geometry.line_address g la = la && la land 127 = 0)

(* ----- configurations ----------------------------------------------------- *)

let test_all_configs () =
  let u = uarch () in
  Alcotest.(check int) "8 cores x 3 smt" 24 (List.length (Uarch_def.all_configs u));
  let c = Uarch_def.config ~cores:4 ~smt:2 u in
  Alcotest.(check int) "threads" 8 (Uarch_def.threads c);
  Alcotest.(check string) "to_string" "4c-smt2" (Uarch_def.config_to_string c)

let test_config_validation () =
  let u = uarch () in
  let bad f = try ignore (f ()); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "0 cores" true (bad (fun () -> Uarch_def.config ~cores:0 ~smt:1 u));
  Alcotest.(check bool) "9 cores" true (bad (fun () -> Uarch_def.config ~cores:9 ~smt:1 u));
  Alcotest.(check bool) "smt3" true (bad (fun () -> Uarch_def.config ~cores:1 ~smt:3 u))

(* ----- resource mapping ---------------------------------------------------- *)

let test_units_stressed () =
  let u = uarch () in
  let units m = Uarch_def.units_stressed u (find u m) in
  Alcotest.(check bool) "lbz -> LSU" true (units "lbz" = [ Pipe.LSU ]);
  Alcotest.(check bool) "ldux -> FXU+LSU" true (units "ldux" = [ Pipe.FXU; Pipe.LSU ]);
  Alcotest.(check bool) "xvmaddadp -> VSU" true (units "xvmaddadp" = [ Pipe.VSU ]);
  Alcotest.(check bool) "stxvw4x -> LSU+VSU" true (units "stxvw4x" = [ Pipe.LSU; Pipe.VSU ]);
  Alcotest.(check bool) "stfdux -> FXU+LSU+VSU" true
    (units "stfdux" = [ Pipe.FXU; Pipe.LSU; Pipe.VSU ]);
  Alcotest.(check bool) "b -> BRU" true (units "b" = [ Pipe.BRU ]);
  Alcotest.(check bool) "stresses query" true
    (Uarch_def.stresses u (find u "xvmaddadp") Pipe.VSU)

let test_peak_ipc () =
  let u = uarch () in
  let peak m = Uarch_def.peak_ipc u (find u m) in
  Alcotest.(check (float 0.01)) "add" 3.538 (peak "add");
  Alcotest.(check (float 0.01)) "subf" 2.0 (peak "subf");
  Alcotest.(check (float 0.01)) "mulldo" 1.399 (peak "mulldo");
  Alcotest.(check (float 0.01)) "lbz" 1.681 (peak "lbz");
  Alcotest.(check (float 0.01)) "ldux" 1.0 (peak "ldux");
  Alcotest.(check (float 0.01)) "stfd" 0.481 (peak "stfd");
  Alcotest.(check (float 0.01)) "xstsqrtdp (override)" 2.0 (peak "xstsqrtdp")

let test_level_latency_monotone () =
  let u = uarch () in
  let lat l = Uarch_def.level_latency u l in
  Alcotest.(check bool) "monotone" true
    (lat Cache_geometry.L1 < lat Cache_geometry.L2
     && lat Cache_geometry.L2 < lat Cache_geometry.L3
     && lat Cache_geometry.L3 < lat Cache_geometry.MEM)

let test_pipe_counts () =
  let u = uarch () in
  Alcotest.(check int) "2 FXU" 2 (Uarch_def.pipe_count u Pipe.Fxu);
  Alcotest.(check int) "2 LSU" 2 (Uarch_def.pipe_count u Pipe.Lsu);
  Alcotest.(check int) "2 VSU" 2 (Uarch_def.pipe_count u Pipe.Vsu);
  Alcotest.(check int) "1 store port" 1 (Uarch_def.pipe_count u Pipe.Store_port)

let test_parent_units () =
  Alcotest.(check bool) "store port -> LSU" true
    (Pipe.parent_unit Pipe.Store_port = Pipe.LSU);
  Alcotest.(check bool) "update port -> FXU" true
    (Pipe.parent_unit Pipe.Update_port = Pipe.FXU)

(* ----- PMC catalogue -------------------------------------------------------- *)

let test_pmc_mapping () =
  Alcotest.(check string) "fxu" "PM_FXU_FIN" (Pmc.name (Pmc.of_unit Pipe.FXU));
  Alcotest.(check string) "l3" "PM_DATA_FROM_L3"
    (Pmc.name (Pmc.of_level Cache_geometry.L3));
  Alcotest.(check int) "catalogue size" 12 (List.length Pmc.all);
  List.iter
    (fun id ->
      Alcotest.(check bool) (Pmc.name id) true (String.length (Pmc.description id) > 0))
    Pmc.all

let test_every_instruction_mapped () =
  (* every non-nop instruction of the shipped ISA must stress at least
     one functional unit *)
  let u = uarch () in
  List.iter
    (fun (i : Mp_isa.Instruction.t) ->
      if i.Mp_isa.Instruction.exec_class <> Mp_isa.Instruction.Nop_op then
        Alcotest.(check bool)
          ("mapped " ^ i.Mp_isa.Instruction.mnemonic)
          true
          (Uarch_def.units_stressed u i <> []))
    (Mp_isa.Isa_def.instructions (Power7.isa u))

(* ----- fixed-point occupancy arithmetic ------------------------------------ *)

let test_occ_den_exact () =
  (* the tick denominator must make every occupancy of every ISA
     instruction an exact whole number of ticks — fixed and alternate
     usages alike. This is the invariant the simulator's integer pipe
     residuals rest on. *)
  let u = uarch () in
  Alcotest.(check int) "POWER7 denominator" 100 u.Uarch_def.occ_den;
  List.iter
    (fun (i : Mp_isa.Instruction.t) ->
      let r = u.Uarch_def.resources i in
      List.iter
        (fun (usage : Uarch_def.usage) ->
          let occ = usage.Uarch_def.occupancy in
          Alcotest.(check bool)
            (Printf.sprintf "%s den divides" i.Mp_isa.Instruction.mnemonic)
            true
            (u.Uarch_def.occ_den mod Occupancy.den occ = 0);
          (* ticks/occ_den = num/den exactly, by cross-multiplication *)
          let ticks = Uarch_def.occ_ticks u occ in
          Alcotest.(check int)
            (Printf.sprintf "%s exact ticks" i.Mp_isa.Instruction.mnemonic)
            (Occupancy.num occ * u.Uarch_def.occ_den)
            (ticks * Occupancy.den occ))
        (r.Uarch_def.fixed @ r.Uarch_def.alt))
    (Mp_isa.Isa_def.instructions (Power7.isa u))

let prop_occupancy_ticks_exact =
  (* for any rational occupancy, converting to ticks over any common
     multiple of its denominator loses no precision *)
  QCheck.Test.make ~name:"occupancy tick conversion is exact" ~count:500
    QCheck.(triple (int_range 0 500) (int_range 1 64) (int_range 1 8))
    (fun (num, den, k) ->
      let occ = Occupancy.make num den in
      let d = k * Occupancy.lcm_den 100 occ in
      let ticks = Occupancy.ticks occ ~den:d in
      ticks * Occupancy.den occ = Occupancy.num occ * d)

let () =
  Alcotest.run "mp_uarch"
    [
      ("geometry",
       [ Alcotest.test_case "counts" `Quick test_geometry_counts;
         Alcotest.test_case "set nesting" `Quick test_set_field_nesting;
         Alcotest.test_case "validation" `Quick test_geometry_validation;
         QCheck_alcotest.to_alcotest prop_set_roundtrip;
         QCheck_alcotest.to_alcotest prop_line_address_idempotent ]);
      ("configs",
       [ Alcotest.test_case "all configs" `Quick test_all_configs;
         Alcotest.test_case "validation" `Quick test_config_validation ]);
      ("resources",
       [ Alcotest.test_case "units stressed" `Quick test_units_stressed;
         Alcotest.test_case "peak ipc" `Quick test_peak_ipc;
         Alcotest.test_case "latencies" `Quick test_level_latency_monotone;
         Alcotest.test_case "pipe counts" `Quick test_pipe_counts;
         Alcotest.test_case "parent units" `Quick test_parent_units;
         Alcotest.test_case "all mapped" `Quick test_every_instruction_mapped;
         Alcotest.test_case "occupancy denominator" `Quick test_occ_den_exact;
         QCheck_alcotest.to_alcotest prop_occupancy_ticks_exact ]);
      ("pmc", [ Alcotest.test_case "mapping" `Quick test_pmc_mapping ]);
    ]
