lib/util/rng.mli:
