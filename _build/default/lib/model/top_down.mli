(** Top-down counter-based models (the comparison baselines of Section
    4.1.2): one multiple linear regression over the same inputs as the
    bottom-up model — per-unit activity rates, the number of enabled
    cores and the SMT flag — trained on whatever workload population is
    supplied (micro-benchmarks, random benchmarks, or SPEC itself). *)

type t = {
  coefficients : float array;  (** 7 feature coefficients *)
  cores_coef : float;
  smt_coef : float;
  intercept : float;
  training_set : string;
}

val train : name:string -> Mp_sim.Measurement.t list -> t
(** Ordinary least squares; raises [Invalid_argument] on fewer samples
    than coefficients. *)

val predict : t -> Mp_sim.Measurement.t -> float
val pp : Format.formatter -> t -> unit
