open Mp_codegen
open Mp_isa
open Mp_uarch.Cache_geometry

type entry = {
  program : Ir.t;
  target_ipc : float option;
  achieved_ipc : float;
}

type family = {
  family_name : string;
  units : string;
  description : string;
  entries : entry list;
}

let smt1_config arch =
  Mp_uarch.Uarch_def.config ~cores:1 ~smt:1 arch.Arch.uarch

let measure_ipc ~machine ~arch program =
  let m = Mp_sim.Machine.run machine (smt1_config arch) program in
  m.Mp_sim.Measurement.core_ipc

(* ----- GA-driven IPC targeting ----------------------------------------- *)

type genome = { weights : float array; dep : int }

let dep_modes =
  [| Builder.No_deps; Builder.Fixed 1; Builder.Fixed 2; Builder.Fixed 3;
     Builder.Fixed 4; Builder.Fixed 6; Builder.Fixed 8;
     Builder.Random_range (1, 6) |]

let genome_program ~arch ~name ~size ~candidates g =
  let weighted =
    List.mapi (fun i ins -> (ins, 0.02 +. g.weights.(i))) candidates
  in
  let synth = Synthesizer.create ~name arch in
  Synthesizer.add_pass synth (Passes.skeleton ~size);
  Synthesizer.add_pass synth (Passes.fill_weighted weighted);
  if List.exists (fun i -> Instruction.is_memory i) candidates then
    Synthesizer.add_pass synth (Passes.memory_model [ (L1, 1.0) ]);
  Synthesizer.add_pass synth (Passes.dependency dep_modes.(g.dep));
  Synthesizer.add_pass synth (Passes.init_registers Builder.Random_values);
  Synthesizer.add_pass synth (Passes.rename name);
  Synthesizer.synthesize ~seed:(Hashtbl.hash name) synth

let ipc_family ~machine ~arch ~name ~units ~description ~candidates ~targets
    ?(size = 512) ?(population = 10) ?(generations = 5) () =
  if candidates = [] then invalid_arg "Training.ipc_family: no candidates";
  let n = List.length candidates in
  let ops =
    {
      Mp_dse.Genetic.init =
        (fun rng ->
          { weights = Array.init n (fun _ -> Mp_util.Rng.float rng 1.0);
            dep = Mp_util.Rng.int rng (Array.length dep_modes) });
      mutate =
        (fun rng g ->
          if Mp_util.Rng.bool rng then
            { g with dep = Mp_util.Rng.int rng (Array.length dep_modes) }
          else begin
            let w = Array.copy g.weights in
            let i = Mp_util.Rng.int rng n in
            w.(i) <- Mp_util.Rng.float rng 1.0;
            { g with weights = w }
          end);
      crossover =
        (fun rng a b ->
          {
            weights =
              Array.init n (fun i ->
                  if Mp_util.Rng.bool rng then a.weights.(i) else b.weights.(i));
            dep = (if Mp_util.Rng.bool rng then a.dep else b.dep);
          });
    }
  in
  let entries =
    List.map
      (fun target ->
        let bench_name = Printf.sprintf "%s-ipc%.1f" name target in
        let eval g =
          let p = genome_program ~arch ~name:bench_name ~size ~candidates g in
          let ipc = measure_ipc ~machine ~arch p in
          -.Float.abs (ipc -. target)
        in
        let rng = Mp_util.Rng.create (Hashtbl.hash bench_name) in
        (* seed one uniform-mix genome per dependency mode so that
           chain-limited low-IPC regions are always reachable *)
        let seeds =
          List.init (Array.length dep_modes) (fun d ->
              { weights = Array.make n 0.5; dep = d })
        in
        let result =
          Mp_dse.Genetic.search ~rng ~ops ~eval ~population ~generations
            ~elite:2 ~seeds ()
        in
        let g = result.Mp_dse.Driver.best.Mp_dse.Driver.point in
        let program = genome_program ~arch ~name:bench_name ~size ~candidates g in
        { program;
          target_ipc = Some target;
          achieved_ipc = measure_ipc ~machine ~arch program })
      targets
  in
  { family_name = name; units; description; entries }

(* ----- memory families -------------------------------------------------- *)

let load_candidates arch =
  Arch.select arch (fun i ->
      Instruction.is_load i && (not i.Instruction.prefetch)
      && not i.Instruction.update)

let store_candidates arch =
  Arch.select arch (fun i -> Instruction.is_store i && not i.Instruction.update)

let memory_family ~machine ~arch ~name ~description ~loads_only ~distribution
    ~count ?(size = 512) () =
  let candidates =
    if loads_only then load_candidates arch
    else load_candidates arch @ store_candidates arch
  in
  let entries =
    List.init count (fun k ->
        let bench_name = Printf.sprintf "%s-%d" name k in
        let synth = Synthesizer.create ~name:bench_name arch in
        Synthesizer.add_pass synth (Passes.skeleton ~size);
        Synthesizer.add_pass synth (Passes.fill_uniform candidates);
        Synthesizer.add_pass synth (Passes.memory_model distribution);
        Synthesizer.add_pass synth (Passes.dependency Builder.No_deps);
        Synthesizer.add_pass synth (Passes.init_registers Builder.Random_values);
        Synthesizer.add_pass synth (Passes.rename bench_name);
        let program = Synthesizer.synthesize ~seed:(Hashtbl.hash bench_name) synth in
        { program;
          target_ipc = None;
          achieved_ipc = measure_ipc ~machine ~arch program })
  in
  { family_name = name; units = "LSU + caches"; description; entries }

(* ----- random family ----------------------------------------------------- *)

let usable arch =
  Arch.select arch (fun i ->
      (not i.Instruction.privileged)
      && (not (Instruction.is_branch i))
      && not i.Instruction.prefetch)

let random_distribution rng =
  let w () = Mp_util.Rng.float rng 1.0 in
  [ (L1, 0.25 +. w ()); (L2, w ()); (L3, w ()); (MEM, w () /. 2.0) ]

let random_family ~machine ~arch ~count ?(size = 512) () =
  let candidates = Array.of_list (usable arch) in
  let loads = Array.of_list (load_candidates arch) in
  let stores = Array.of_list (store_candidates arch) in
  let entries =
    List.init count (fun k ->
        let bench_name = Printf.sprintf "random-%d" k in
        let rng = Mp_util.Rng.create (Hashtbl.hash bench_name) in
        (* a random subset of the ISA with random weights; like any
           random slice of real code, it always touches memory and
           carries register dependencies — so the family does NOT cover
           extreme single-flavour activities (this is what dooms
           workload-trained top-down models on the paper's Figure 7) *)
        let picks = 3 + Mp_util.Rng.int rng 12 in
        let weighted =
          (Mp_util.Rng.choose rng loads, 0.1 +. Mp_util.Rng.float rng 0.5)
          :: (Mp_util.Rng.choose rng stores, 0.05 +. Mp_util.Rng.float rng 0.25)
          :: List.init picks (fun _ ->
                 (Mp_util.Rng.choose rng candidates,
                  0.05 +. Mp_util.Rng.float rng 1.0))
        in
        let synth = Synthesizer.create ~name:bench_name arch in
        Synthesizer.add_pass synth (Passes.skeleton ~size);
        Synthesizer.add_pass synth (Passes.fill_weighted weighted);
        Synthesizer.add_pass synth (Passes.memory_model (random_distribution rng));
        Synthesizer.add_pass synth
          (Passes.dependency
             (Builder.Random_range (1, 2 + Mp_util.Rng.int rng 7)));
        Synthesizer.add_pass synth (Passes.init_registers Builder.Random_values);
        Synthesizer.add_pass synth (Passes.rename bench_name);
        let program = Synthesizer.synthesize ~seed:(Hashtbl.hash bench_name) synth in
        { program;
          target_ipc = None;
          achieved_ipc = measure_ipc ~machine ~arch program })
  in
  { family_name = "Random"; units = "Unknown";
    description = "Random micro-benchmarks"; entries }

(* ----- the Table 2 suite ------------------------------------------------- *)

let frange lo hi step =
  let n = int_of_float (Float.round (((hi -. lo) /. step) +. 1.0)) in
  List.init n (fun i -> lo +. (float_of_int i *. step))

let every_nth n l = List.filteri (fun i _ -> i mod n = 0) l

let table2 ~machine ~arch ?(quick = false) () =
  let select pred = Arch.select arch pred in
  let simple_ints =
    select (fun i -> i.Instruction.exec_class = Instruction.Simple_int)
  in
  let complex_ints =
    select (fun i ->
        match i.Instruction.exec_class with
        | Instruction.Complex_int | Instruction.Mul_int | Instruction.Div_int ->
          true
        | _ -> false)
  in
  let vsu_ops =
    select (fun i ->
        (not (Instruction.is_memory i))
        && Mp_uarch.Uarch_def.stresses arch.Arch.uarch i Mp_uarch.Pipe.VSU)
  in
  let non_mem_non_branch =
    select (fun i ->
        (not (Instruction.is_memory i))
        && (not (Instruction.is_branch i))
        && i.Instruction.exec_class <> Instruction.Nop_op)
  in
  let thin targets = if quick then every_nth 4 targets else targets in
  let cnt n = if quick then max 2 (n / 4) else n in
  let ipc name units desc candidates targets =
    ipc_family ~machine ~arch ~name ~units ~description:desc ~candidates
      ~targets:(thin targets)
      ~population:(if quick then 6 else 10)
      ~generations:(if quick then 3 else 5)
      ()
  in
  let memf name desc ~loads_only distribution n =
    memory_family ~machine ~arch ~name ~description:desc ~loads_only
      ~distribution ~count:(cnt n) ()
  in
  [
    ipc "Simple Integer" "FXU or LSU"
      "Mix of simple integer instructions (LSU- or FXU-executable)"
      simple_ints (frange 0.5 3.9 0.1);
    ipc "Complex Integer" "FXU"
      "Mix of complex integer instructions (FXU only)" complex_ints
      (frange 0.1 1.1 0.1);
    ipc "Integer" "FXU, LSU" "Mix of integer instructions"
      (simple_ints @ complex_ints)
      (frange 0.1 1.2 0.1);
    ipc "Float/Vector" "VSU"
      "Mix of vector, float and decimal instructions" vsu_ops
      (frange 0.1 1.4 0.1);
    ipc "Unit Mix" "VSU, FXU, LSU"
      "Mix of all kinds of instructions (no memory, no branch)"
      non_mem_non_branch (frange 0.1 2.0 0.1);
    memf "L1 ld" "Random mix of load instructions hitting the L1"
      ~loads_only:true [ (L1, 1.0) ] 10;
    memf "L1 ld/st" "Random mix of load/store instructions hitting the L1"
      ~loads_only:false [ (L1, 1.0) ] 10;
    memf "L1L2a" "75% L1 / 25% L2" ~loads_only:false [ (L1, 0.75); (L2, 0.25) ] 10;
    memf "L1L2b" "50% L1 / 50% L2" ~loads_only:false [ (L1, 0.5); (L2, 0.5) ] 10;
    memf "L1L2c" "25% L1 / 75% L2" ~loads_only:false [ (L1, 0.25); (L2, 0.75) ] 10;
    memf "L1L3a" "75% L1 / 25% L3" ~loads_only:false [ (L1, 0.75); (L3, 0.25) ] 10;
    memf "L1L3b" "50% L1 / 50% L3" ~loads_only:false [ (L1, 0.5); (L3, 0.5) ] 10;
    memf "L1L3c" "25% L1 / 75% L3" ~loads_only:false [ (L1, 0.25); (L3, 0.75) ] 10;
    memf "L2" "Random mix of load/store instructions hitting the L2"
      ~loads_only:false [ (L2, 1.0) ] 10;
    memf "L2L3a" "75% L2 / 25% L3" ~loads_only:false [ (L2, 0.75); (L3, 0.25) ] 10;
    memf "L2L3b" "50% L2 / 50% L3" ~loads_only:false [ (L2, 0.5); (L3, 0.5) ] 10;
    memf "L2L3c" "25% L2 / 75% L3" ~loads_only:false [ (L2, 0.25); (L3, 0.75) ] 10;
    memf "L3" "Random mix of load/store instructions hitting the L3"
      ~loads_only:false [ (L3, 1.0) ] 10;
    memf "Caches" "33% L1 / 33% L2 / 34% L3" ~loads_only:false
      [ (L1, 0.33); (L2, 0.33); (L3, 0.34) ] 10;
    memf "Memory" "Random mix of load/store instructions missing all caches"
      ~loads_only:false [ (MEM, 1.0) ] 20;
    random_family ~machine ~arch ~count:(cnt 331) ();
  ]

let all_entries families = List.concat_map (fun f -> f.entries) families
