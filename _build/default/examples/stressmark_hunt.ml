(* Stressmark hunt: let the framework select max-power candidate
   instructions from bootstrap data (highest IPCxEPI per functional
   unit) and search the sequence space for the hottest loop — then
   compare against a hand-written expert stressmark and a DAXPY kernel
   (the paper's case study C, at example scale).

   Run with: dune exec examples/stressmark_hunt.exe *)

open Microprobe

let () =
  let arch = get_architecture "POWER7" in
  let machine = Machine.create arch.Arch.uarch in

  (* 1. candidate selection from bootstrap data *)
  let pool =
    [ "mulldo"; "mulld"; "mullw"; "subf"; "add";
      "lxvw4x"; "lxvd2x"; "lvewx"; "lbz";
      "xvnmsubmdp"; "xvmaddadp"; "xvmaddmdp"; "fmadd" ]
  in
  Printf.printf "Bootstrapping %d candidate instructions...\n%!"
    (List.length pool);
  let props =
    Epi.Bootstrap.run ~machine ~arch
      ~instructions:(List.map (Arch.find_instruction arch) pool)
      ()
  in
  let picks = Stressmark.microprobe_instructions ~isa:arch.Arch.isa props in
  Printf.printf "Per-unit IPCxEPI winners: %s\n%!"
    (String.concat ", "
       (List.map (fun (i : Instruction.t) -> i.Instruction.mnemonic) picks));

  (* 2. exhaustive search over a rotation-reduced sequence space *)
  let space =
    Stressmark.exhaustive_sequences picks ~length:6
    |> List.filteri (fun i _ -> i mod 3 = 0) (* example-scale subset *)
  in
  Printf.printf "Searching %d candidate sequences x 3 SMT modes...\n%!"
    (List.length space);
  let mp =
    Stressmark.evaluate_set ~machine ~arch ~name:"MicroProbe" space
  in

  (* 3. references: expert hand-written loop, DAXPY, hottest SPEC point *)
  let manual =
    Stressmark.evaluate_set ~machine ~arch ~name:"Expert Manual"
      (Stressmark.expert_manual_sequences arch)
  in
  let cfg smt = Uarch_def.config ~cores:8 ~smt arch.Arch.uarch in
  let daxpy = Workloads.Daxpy.kernel ~arch ~unroll:4 () in
  let daxpy_power =
    List.fold_left
      (fun acc smt ->
        Float.max acc (Machine.run machine (cfg smt) daxpy).Measurement.power)
      0.0 [ 1; 2; 4 ]
  in
  let spec_peak =
    List.fold_left
      (fun acc name ->
        let b = Workloads.Spec.benchmark ~arch name in
        let m = Workloads.Spec.run ~machine ~config:(cfg 4) b in
        Float.max acc (snd (Util.Stats.min_max m.Measurement.power_trace)))
      0.0 [ "gamess"; "calculix"; "leslie3d" ]
  in
  Printf.printf
    "\nDAXPY kernel:          %.1f\n\
     SPEC surrogate peak:   %.1f\n\
     Expert manual best:    %.1f (%s)\n\
     MicroProbe best:       %.1f (%s, SMT%d) — %+.1f%% over the SPEC peak\n"
    daxpy_power spec_peak manual.Stressmark.max_power
    (String.concat "," manual.Stressmark.best.Stressmark.sequence)
    mp.Stressmark.max_power
    (String.concat "," mp.Stressmark.best.Stressmark.sequence)
    mp.Stressmark.best.Stressmark.smt
    ((mp.Stressmark.max_power /. spec_peak -. 1.0) *. 100.0);
  (* 4. order matters *)
  let f = Arch.find_instruction arch in
  let os =
    Stressmark.order_spread ~machine ~arch
      [ f "mulldo"; f "lxvw4x"; f "xvnmsubmdp" ]
  in
  Printf.printf
    "\nSame three instructions, %d orders: power %.1f..%.1f (%.1f%% spread)\n"
    os.Stressmark.n_orders os.Stressmark.min_power os.Stressmark.max_power
    os.Stressmark.spread_pct
