lib/model/validation.ml: Array List Measurement Mp_sim Mp_uarch Mp_util
