lib/codegen/ir.ml: Array Format Hashtbl Instruction Int64 List Mp_isa Mp_uarch Option Printf Reg String
