open Mp_uarch

type reading = {
  true_power : float;
  sensor_mean : float;
  trace : float array;
}

let static_power ~(table : Energy_table.t) ~(config : Uarch_def.config) =
  let n = float_of_int config.Uarch_def.cores in
  table.idle_power +. table.uncore_base
  +. (table.cmp_linear *. n)
  +. (table.cmp_quad *. n *. n)
  +. (if config.Uarch_def.smt > 1 then table.smt_overhead *. n else 0.0)

let core_dynamic ~(table : Energy_table.t) ~opmap ~(activity : Core_sim.activity) =
  let cycles = float_of_int (max 1 activity.Core_sim.measured_cycles) in
  let scale = table.data_scale activity.Core_sim.daf in
  (* Sum opcode and transition energies in opcode-NAME order, never in
     intern-id order: ids reflect the machine's interning history, and
     float summation order must not — otherwise a measurement served
     from the persistent cache to a machine with a different history
     would differ in the last bit from a fresh simulation. *)
  let issued = ref [] in
  Array.iteri
    (fun id count ->
      if count > 0 then
        issued := (Core_sim.opmap_name opmap id, count) :: !issued)
    activity.Core_sim.op_issues;
  let opcode_energy =
    List.fold_left
      (fun acc (name, count) ->
        acc +. (float_of_int count *. table.opcode_epi name))
      0.0
      (List.sort compare !issued)
  in
  let cache_energy = ref 0.0 in
  Array.iteri
    (fun lid count ->
      cache_energy :=
        !cache_energy +. (float_of_int count *. table.level_energy.(lid)))
    activity.Core_sim.level_loads;
  let stores =
    Array.fold_left
      (fun acc (c : Measurement.counters) -> acc +. c.Measurement.st)
      0.0 activity.Core_sim.threads
  in
  let dispatched =
    Array.fold_left
      (fun acc (c : Measurement.counters) -> acc +. c.Measurement.dispatched)
      0.0 activity.Core_sim.threads
  in
  let transition_energy =
    List.fold_left
      (fun acc (a, b, count) ->
        acc +. (float_of_int count *. table.transition_energy a b))
      0.0
      (List.sort compare
         (List.map
            (fun (a, b, count) ->
              (Core_sim.opmap_name opmap a, Core_sim.opmap_name opmap b, count))
            activity.Core_sim.transitions))
  in
  ((opcode_energy *. scale)
   +. !cache_energy
   +. (stores *. table.store_energy)
   +. (dispatched *. table.dispatch_energy)
   +. transition_energy)
  /. cycles

let chip_power ~table ~config ~opmap ~activity =
  let dyn_core = core_dynamic ~table ~opmap ~activity in
  let chip_dyn = dyn_core *. float_of_int config.Uarch_def.cores in
  static_power ~table ~config +. table.saturate chip_dyn

let idle_power ~table ~config = static_power ~table ~config

let sample ~table ~rng ?(windows = 24) ~config ~opmap ~activity () =
  let p = chip_power ~table ~config ~opmap ~activity in
  let trace =
    Array.init windows (fun _ ->
        let rel = Mp_util.Rng.gaussian rng ~mu:1.0 ~sigma:table.noise_rel in
        let abs = Mp_util.Rng.gaussian rng ~mu:0.0 ~sigma:table.noise_abs in
        Float.max 0.0 ((p *. rel) +. abs))
  in
  { true_power = p; sensor_mean = Mp_util.Stats.mean trace; trace }
