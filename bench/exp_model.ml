(* Case study A experiments: Figures 5a, 5b, 6, 7 and 8. *)

open Microprobe
open Mp_util

let pct x = Text_table.cell_pct ~decimals:1 x

(* ----- Figure 5a: SPEC power tracking with component breakdown ----------------- *)

let fig5a (ctx : Context.t) =
  Context.section
    "Figure 5a — SPEC CPU2006 power tracking, 4 cores / SMT4 (breakdown)";
  let bu = Context.bottom_up ctx in
  let c = Context.config ctx ~cores:4 ~smt:4 in
  let suite = Workloads.Spec.suite ~arch:ctx.Context.arch () in
  let table =
    Text_table.create
      [ "Benchmark"; "Measured"; "Predicted"; "WrkldInd"; "Uncore"; "CMP";
        "SMT"; "Dynamic"; "Err%" ]
  in
  let errs = ref [] in
  List.iter
    (fun b ->
      let m = Workloads.Spec.run ~machine:ctx.Context.machine ~config:c b in
      let d = Power_model.Bottom_up.decompose bu m in
      let predicted = Power_model.Bottom_up.breakdown_total d in
      let err =
        Float.abs (predicted -. m.Measurement.power) /. m.Measurement.power
        *. 100.0
      in
      errs := err :: !errs;
      Text_table.add_row table
        [ b.Workloads.Spec.name;
          Text_table.cell_f ~decimals:1 m.Measurement.power;
          Text_table.cell_f ~decimals:1 predicted;
          Text_table.cell_f ~decimals:1 d.Power_model.Bottom_up.workload_independent;
          Text_table.cell_f ~decimals:1 d.Power_model.Bottom_up.uncore_part;
          Text_table.cell_f ~decimals:1 d.Power_model.Bottom_up.cmp_part;
          Text_table.cell_f ~decimals:1 d.Power_model.Bottom_up.smt_part;
          Text_table.cell_f ~decimals:1 d.Power_model.Bottom_up.dynamic;
          pct err ])
    suite;
  Text_table.print table;
  Context.log
    "Only the dynamic component varies with the workload; the others are\n\
     fixed by the 4-core/SMT4 configuration — the decomposability the\n\
     bottom-up methodology provides.";
  Context.log "Mean tracking error: %s"
    (pct (Stats.mean (Array.of_list !errs)))

(* ----- Figure 5b: BU PAAE per configuration ------------------------------------ *)

let fig5b (ctx : Context.t) =
  Context.section "Figure 5b — bottom-up model PAAE per configuration (SPEC)";
  let bu = Context.bottom_up ctx in
  let predict = Power_model.Bottom_up.predict bu in
  let table = Text_table.create [ "Config"; "PAAE"; "Max err" ] in
  let all = ref [] in
  List.iter
    (fun (c, ms) ->
      all := ms @ !all;
      Text_table.add_row table
        [ Uarch_def.config_to_string c;
          pct (Power_model.Validation.paae ~predict ms);
          pct (Power_model.Validation.max_error ~predict ms) ])
    (Context.spec ctx);
  Text_table.add_separator table;
  Text_table.add_row table
    [ "average"; pct (Power_model.Validation.paae ~predict !all);
      pct (Power_model.Validation.max_error ~predict !all) ];
  Text_table.print table;
  Context.log "[paper: most configurations below 2.3%%, max around 4%%]"

(* ----- Figure 6: BU vs top-down models ------------------------------------------ *)

let top_down_models (ctx : Context.t) =
  let td_micro =
    Power_model.Top_down.train ~name:"TD_Micro" (Context.micro_multi ctx)
  in
  let td_random =
    Power_model.Top_down.train ~name:"TD_Random" (Context.random_multi ctx)
  in
  let td_spec = Power_model.Top_down.train ~name:"TD_SPEC" (Context.spec_all ctx) in
  [ td_micro; td_random; td_spec ]

let fig6 (ctx : Context.t) =
  Context.section
    "Figure 6 — PAAE on SPEC per configuration: bottom-up vs top-down models";
  let bu = Context.bottom_up ctx in
  let tds = top_down_models ctx in
  let headers =
    [ "Config"; "BU" ]
    @ List.map (fun (t : Power_model.Top_down.t) -> t.Power_model.Top_down.training_set) tds
  in
  let table = Text_table.create headers in
  let add_row label ms =
    Text_table.add_row table
      ([ label;
         pct (Power_model.Validation.paae
                ~predict:(Power_model.Bottom_up.predict bu) ms) ]
      @ List.map
          (fun td ->
            pct (Power_model.Validation.paae
                   ~predict:(Power_model.Top_down.predict td) ms))
          tds)
  in
  List.iter
    (fun (c, ms) -> add_row (Uarch_def.config_to_string c) ms)
    (Context.spec ctx);
  Text_table.add_separator table;
  add_row "average" (Context.spec_all ctx);
  Text_table.print table;
  Context.log
    "[paper: all models land in the 2-4%% band on SPEC, the BU model\n\
     closest to the optimistic TD_SPEC; TD_SPEC is optimistic because it\n\
     trains on the validation suite]"

(* ----- Figure 7: extreme cases ----------------------------------------------------- *)

let fig7 (ctx : Context.t) =
  Context.section "Figure 7 — PAAE on the extreme activity cases";
  let bu = Context.bottom_up ctx in
  let tds = top_down_models ctx in
  let cases = Workloads.Extreme.cases ~arch:ctx.Context.arch () in
  let configs =
    if ctx.Context.quick then
      [ Context.config ctx ~cores:1 ~smt:1; Context.config ctx ~cores:8 ~smt:4 ]
    else
      List.filter
        (fun (c : Uarch_def.config) -> List.mem c.Uarch_def.cores [ 1; 4; 8 ])
        (Context.all_configs ctx)
  in
  let table =
    Text_table.create
      ([ "Case"; "BU" ]
      @ List.map
          (fun (t : Power_model.Top_down.t) -> t.Power_model.Top_down.training_set)
          tds)
  in
  let worst_td_random = ref 0.0 in
  List.iter
    (fun (case : Workloads.Extreme.case) ->
      let ms =
        Context.run_grid ctx configs [ case.Workloads.Extreme.program ]
      in
      let td_cells =
        List.map
          (fun (td : Power_model.Top_down.t) ->
            let e =
              Power_model.Validation.paae
                ~predict:(Power_model.Top_down.predict td) ms
            in
            if td.Power_model.Top_down.training_set = "TD_Random" then
              worst_td_random := Float.max !worst_td_random e;
            pct e)
          tds
      in
      Text_table.add_row table
        ([ case.Workloads.Extreme.name;
           pct (Power_model.Validation.paae
                  ~predict:(Power_model.Bottom_up.predict bu) ms) ]
        @ td_cells))
    cases;
  Text_table.print table;
  Context.log
    "Worst TD_Random extreme-case error: %s [paper: 62%% on FXU High] —\n\
     workload-trained models are biased toward the activities they saw;\n\
     micro-architecture-aware training sets stay accurate."
    (pct !worst_td_random)

(* ----- Figure 8: average power breakdown per configuration --------------------------- *)

let fig8 (ctx : Context.t) =
  Context.section
    "Figure 8 — average SPEC power breakdown per configuration (% of total)";
  let bu = Context.bottom_up ctx in
  let table =
    Text_table.create
      [ "Config"; "WrkldInd"; "Uncore"; "CMP"; "SMT"; "Dynamic"; "WI+Unc" ]
  in
  List.iter
    (fun (c, ms) ->
      let parts =
        List.map
          (fun m ->
            let d = Power_model.Bottom_up.decompose bu m in
            let tot = Power_model.Bottom_up.breakdown_total d in
            Power_model.Bottom_up.
              [| d.workload_independent /. tot; d.uncore_part /. tot;
                 d.cmp_part /. tot; d.smt_part /. tot; d.dynamic /. tot |])
          ms
      in
      let n = float_of_int (List.length parts) in
      let avg i =
        List.fold_left (fun acc p -> acc +. p.(i)) 0.0 parts /. n *. 100.0
      in
      Text_table.add_row table
        [ Uarch_def.config_to_string c;
          pct (avg 0); pct (avg 1); pct (avg 2); pct (avg 3); pct (avg 4);
          pct (avg 0 +. avg 1) ])
    (Context.spec ctx);
  Text_table.print table;
  Context.log
    "[paper: workload-independent + uncore fall from ~85%% (1 core SMT1)\n\
     toward ~50%% (8 cores SMT4); the SMT effect stays below 3%%]"
