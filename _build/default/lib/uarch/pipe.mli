(** Execution pipes (functional sub-units) of a core.

    [Store_port] and [Update_port] are sub-resources of the LSU and FXU
    respectively: they model the single store-issue and base-update/
    sign-extend ports that cap the throughput of stores and of
    update-form / algebraic loads. For *power and PMC accounting* they
    roll up to their parent unit via {!parent_unit}. *)

type t = Fxu | Lsu | Vsu | Bru | Store_port | Update_port

type unit_kind = FXU | LSU | VSU | BRU
(** The architect-visible functional units of the paper (plus BRU). *)

val all : t list
val all_units : unit_kind list

val parent_unit : t -> unit_kind
(** The functional unit a pipe's activity is accounted to. *)

val to_string : t -> string
val unit_to_string : unit_kind -> string
val unit_of_string : string -> unit_kind option
val compare_unit : unit_kind -> unit_kind -> int
val pp : Format.formatter -> t -> unit
