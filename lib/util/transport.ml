(* The byte-level frame codec shared by every worker transport. A frame
   is a 4-byte big-endian length followed by the payload; the 1 GiB
   guard bounds the damage a corrupt header can do — the reader fails
   the peer instead of trying to allocate gigabytes. Both the pipe
   transport (Procpool) and the socket transport (Netpool) speak
   exactly this format, so a worker loop written against one keeps
   working over the other. *)

let max_frame_bytes = 1 lsl 30

let frame_header_bytes = 4

(* writes with an optional absolute deadline: callers hand us
   non-blocking fds, so a peer that stopped reading surfaces as EAGAIN +
   select timeout instead of wedging the coordinator forever *)
let rec write_all ?deadline fd buf off len =
  if len > 0 then begin
    (match deadline with
     | Some d ->
       let left = d -. Unix.gettimeofday () in
       if left <= 0.0 then raise (Unix.Unix_error (Unix.ETIMEDOUT, "write", ""));
       (match Unix.select [] [ fd ] [] left with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        | _, [], _ -> raise (Unix.Unix_error (Unix.ETIMEDOUT, "write", ""))
        | _ -> ())
     | None -> ());
    match Unix.write fd buf off len with
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
      write_all ?deadline fd buf off len
    | n -> write_all ?deadline fd buf (off + n) (len - n)
  end

let write_frame ?deadline fd payload =
  let len = Bytes.length payload in
  if len > max_frame_bytes then invalid_arg "Transport.write_frame: frame too large";
  let hdr = Bytes.create frame_header_bytes in
  Bytes.set_int32_be hdr 0 (Int32.of_int len);
  write_all ?deadline fd hdr 0 frame_header_bytes;
  write_all ?deadline fd payload 0 len

(* [`Eof] covers every way the stream can end badly — closed pipe,
   reset connection, read error — because they all mean the same thing
   to the caller: the peer is gone. *)
let read_exact ?deadline fd buf off len =
  let pos = ref off and left = ref len in
  let rec loop () =
    if !left = 0 then `Ok
    else begin
      let wait =
        match deadline with None -> -1.0 | Some d -> d -. Unix.gettimeofday ()
      in
      if deadline <> None && wait <= 0.0 then `Timeout
      else
        match Unix.select [ fd ] [] [] wait with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
        | [], _, _ -> loop () (* deadline re-checked at the top *)
        | _ ->
          (match Unix.read fd buf !pos !left with
           | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
             loop ()
           | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
           | exception _ -> `Eof
           | 0 -> `Eof
           | n ->
             pos := !pos + n;
             left := !left - n;
             loop ())
    end
  in
  loop ()

let read_frame ?timeout_s fd =
  let deadline = Option.map (fun s -> Unix.gettimeofday () +. s) timeout_s in
  let hdr = Bytes.create frame_header_bytes in
  match read_exact ?deadline fd hdr 0 frame_header_bytes with
  | `Eof | `Timeout -> None
  | `Ok ->
    let len = Int32.to_int (Bytes.get_int32_be hdr 0) in
    if len < 0 || len > max_frame_bytes then None
    else begin
      let payload = Bytes.create len in
      match read_exact ?deadline fd payload 0 len with
      | `Ok -> Some payload
      | `Eof | `Timeout -> None
    end

(* ----- the transport interface ------------------------------------------- *)

(* One addressable worker slot, however it is reached. Shard_exec's
   coordinator drives a mixed pool of these without caring whether a
   slot is a subprocess behind pipes or a TCP peer: send a frame, read
   a frame, and on any failure declare the slot dead ([reap]) and
   re-run its in-flight jobs elsewhere. *)
type endpoint = {
  ep_label : string;  (** for diagnostics, e.g. ["proc:3"] or ["10.0.0.2:7070"] *)
  ep_send : ?timeout_s:float -> bytes -> bool;
  ep_recv : ?timeout_s:float -> unit -> bytes option;
  ep_reap : unit -> unit;
  ep_rfd : unit -> Unix.file_descr option;
  ep_wfd : unit -> Unix.file_descr option;
}

let send ?timeout_s ep payload = ep.ep_send ?timeout_s payload
let recv ?timeout_s ep = ep.ep_recv ?timeout_s ()
let reap ep = ep.ep_reap ()
let label ep = ep.ep_label
let read_fd ep = ep.ep_rfd ()
let write_fd ep = ep.ep_wfd ()

(* One select over many endpoints: the indices (into [eps]) of those
   whose read side has data pending. Endpoints with no live read fd are
   skipped — their slots are already dead or never connected. EINTR and
   a select refused by the OS both report "nothing readable"; the
   caller's deadline bookkeeping decides what that means. *)
let select_readable ?(timeout_s = 0.0) eps =
  let fds =
    List.filter_map
      (fun (i, ep) -> Option.map (fun fd -> (fd, i)) (ep.ep_rfd ()))
      eps
  in
  match fds with
  | [] -> []
  | _ -> (
    match Unix.select (List.map fst fds) [] [] timeout_s with
    | exception _ -> []
    | ready, _, _ ->
      List.filter_map
        (fun (fd, i) -> if List.memq fd ready then Some i else None)
        fds)

(* Zero-timeout writability probe: [true] means one more frame can
   start without blocking the caller (the pipe/socket buffer has room).
   Used by the pipelined dispatcher to avoid wedging the whole
   scheduling loop on one slow slot's full buffer. A dead or
   unconnected endpoint probes [false]. *)
let writable ep =
  match ep.ep_wfd () with
  | None -> false
  | Some fd -> (
    match Unix.select [] [ fd ] [] 0.0 with
    | exception _ -> false
    | _, w, _ -> w <> [])
