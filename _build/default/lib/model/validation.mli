(** Model validation: the percentage average absolute prediction error
    (PAAE) metric of the paper, per configuration and overall. *)

val paae :
  predict:(Mp_sim.Measurement.t -> float) -> Mp_sim.Measurement.t list -> float
(** Mean of |predicted − measured| / measured × 100 over the samples.
    Raises on an empty list. *)

val max_error :
  predict:(Mp_sim.Measurement.t -> float) -> Mp_sim.Measurement.t list -> float

val by_config :
  predict:(Mp_sim.Measurement.t -> float) ->
  Mp_sim.Measurement.t list ->
  (Mp_uarch.Uarch_def.config * float) list
(** PAAE per distinct configuration, in (cores, smt) order. *)
