examples/stressmark_hunt.mli:
