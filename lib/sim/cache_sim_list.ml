open Mp_uarch

(* The original list-of-levels cache model, kept verbatim as the
   bit-exactness oracle for the packed model in [Cache_sim] (reachable
   there via [MP_CACHE_MODEL=list]). Apart from the saturated prefetch
   streak — shared by both models — nothing here is optimised: levels
   are a list, counters an assoc list, and the boundary fingerprint
   serializes every line of every set. [Cache_sim] documents the
   equivalence argument. *)

(* One set-associative LRU level: per set, [ways] line addresses ordered
   most-recently-used first; -1 marks an empty way. *)
type level_state = {
  geom : Cache_geometry.t;
  lines : int array array;  (* set -> MRU-ordered line addresses *)
}

type t = {
  levels : level_state list;  (* L1, L2, L3 in order *)
  counts : (Cache_geometry.level * int ref) list;
  mutable prefetch_last : int;   (* last line accessed *)
  mutable prefetch_streak : int; (* consecutive +1-line strides, saturated *)
  mutable prefetch_count : int;
}

let make_level geom =
  {
    geom;
    lines = Array.init (Cache_geometry.sets geom)
        (fun _ -> Array.make geom.Cache_geometry.associativity (-1));
  }

let create (uarch : Uarch_def.t) =
  {
    levels = List.map make_level uarch.Uarch_def.caches;
    counts = List.map (fun l -> (l, ref 0)) Cache_geometry.all_levels;
    prefetch_last = min_int;
    prefetch_streak = 0;
    prefetch_count = 0;
  }

(* Probe a level: true if the line is present; on hit, move to MRU. *)
let probe lvl line =
  let set = lvl.lines.(Cache_geometry.set_index lvl.geom line) in
  let ways = Array.length set in
  let rec find i = if i = ways then -1 else if set.(i) = line then i else find (i + 1) in
  let pos = find 0 in
  if pos < 0 then false
  else begin
    (* move-to-front *)
    for j = pos downto 1 do
      set.(j) <- set.(j - 1)
    done;
    set.(0) <- line;
    true
  end

let fill lvl line =
  let set = lvl.lines.(Cache_geometry.set_index lvl.geom line) in
  let ways = Array.length set in
  for j = ways - 1 downto 1 do
    set.(j) <- set.(j - 1)
  done;
  set.(0) <- line

(* Walk the hierarchy for one line; returns the source level and fills
   all levels above it. *)
let lookup t line =
  let rec walk = function
    | [] -> Cache_geometry.MEM
    | lvl :: deeper ->
      if probe lvl line then lvl.geom.Cache_geometry.level
      else
        let src = walk deeper in
        fill lvl line;
        src
  in
  walk t.levels

let line_of t addr =
  match t.levels with
  | [] -> addr
  | l1 :: _ -> Cache_geometry.line_address l1.geom addr

let line_bytes t =
  match t.levels with
  | [] -> 128
  | l1 :: _ -> l1.geom.Cache_geometry.line_bytes

let bump t level =
  incr (List.assoc level t.counts)

let run_prefetcher t line =
  let step = line_bytes t in
  if line = t.prefetch_last + step then begin
    (* only [streak >= 3] is ever consulted: saturate the live counter
       at that bound so behavioural state — and with it the boundary
       fingerprint — stays periodic on endless sequential walks *)
    if t.prefetch_streak < 3 then t.prefetch_streak <- t.prefetch_streak + 1;
    if t.prefetch_streak >= 3 then begin
      (* stream detected: pull the next two lines into the hierarchy *)
      ignore (lookup t (line + step));
      ignore (lookup t (line + (2 * step)));
      t.prefetch_count <- t.prefetch_count + 2
    end
  end
  else t.prefetch_streak <- 0;
  t.prefetch_last <- line

let access t ~addr ~store =
  ignore store;
  let line = line_of t addr in
  let src = lookup t line in
  bump t src;
  run_prefetcher t line;
  src

let hits t level = !(List.assoc level t.counts)

let prefetches_issued t = t.prefetch_count

let prefetch_streak t = t.prefetch_streak

let reset_stats t =
  List.iter (fun (_, r) -> r := 0) t.counts;
  t.prefetch_count <- 0

(* ----- period-skipping support ------------------------------------------- *)

let stats_snapshot t =
  let n = List.length t.counts in
  let a = Array.make (n + 1) 0 in
  List.iteri (fun i (_, r) -> a.(i) <- !r) t.counts;
  a.(n) <- t.prefetch_count;
  a

let credit t ~times ~since =
  List.iteri
    (fun i (_, r) -> r := !r + (times * (!r - since.(i))))
    t.counts;
  t.prefetch_count <-
    t.prefetch_count
    + (times * (t.prefetch_count - since.(List.length t.counts)))

let add_fingerprint t buf =
  List.iter
    (fun lvl ->
      Buffer.add_char buf 'L';
      Array.iter
        (fun set ->
          Array.iter
            (fun line ->
              Buffer.add_string buf (string_of_int line);
              Buffer.add_char buf ',')
            set;
          Buffer.add_char buf '/')
        lvl.lines)
    t.levels;
  Buffer.add_char buf '#';
  Buffer.add_string buf (string_of_int t.prefetch_last);
  Buffer.add_char buf ':';
  (* the live counter is saturated at 3, so this clamp is a no-op kept
     as documentation of what the fingerprint depends on *)
  Buffer.add_string buf (string_of_int (min t.prefetch_streak 3))
