type t = {
  opcode_epi : string -> float;
  level_energy : float array;
  store_energy : float;
  dispatch_energy : float;
  transition_energy : string -> string -> float;
  idle_power : float;
  uncore_base : float;
  cmp_linear : float;
  cmp_quad : float;
  smt_overhead : float;
  data_scale : float -> float;
  saturate : float -> float;
  noise_rel : float;
  noise_abs : float;
}

(* Energy unit: the scale where addic's dynamic energy is 0.30.  The
   targets below are the paper's Table 3 global EPI values (normalised
   to addic = 1.00); memory opcodes subtract the cache-event energy the
   measurement will add back, so the *observed* EPI lands on target. *)

(* Global dynamic scale: sets the dynamic share of total chip power so
   that the Figure-8 breakdown shapes emerge (~15% dynamic at 1 core
   SMT1, approaching half the chip at 8 cores SMT4). *)
let dyn_scale = 3.0

let addic_energy = 0.30 *. dyn_scale

let l1_e = 0.12 *. dyn_scale
let l2_e = 0.60 *. dyn_scale
let l3_e = 1.80 *. dyn_scale
let mem_e = 6.00 *. dyn_scale
let store_e = 0.25 *. dyn_scale

(* (mnemonic, target observed EPI relative to addic, cache adder). *)
let table3_targets =
  [
    ("mulldo", 2.60, 0.0); ("subf", 1.69, 0.0); ("addic", 1.00, 0.0);
    ("lxvw4x", 2.88, l1_e); ("lvewx", 2.81, l1_e); ("lbz", 2.14, l1_e);
    ("xvnmsubmdp", 2.35, 0.0); ("xvmaddadp", 2.31, 0.0); ("xstsqrtdp", 1.32, 0.0);
    ("add", 1.73, 0.0); ("nor", 1.58, 0.0); ("and", 1.16, 0.0);
    ("ldux", 5.12, l1_e); ("lwax", 5.01, l1_e); ("lfsu", 4.24, l1_e);
    ("lhaux", 5.51, l1_e); ("lwaux", 5.29, l1_e); ("lhau", 4.80, l1_e);
    ("stxvw4x", 8.36, store_e); ("stxsdx", 7.16, store_e); ("stfd", 5.97, store_e);
    ("stfsux", 10.00, store_e); ("stfdux", 9.49, store_e); ("stfdu", 8.40, store_e);
    (* near-top alternatives (not in the paper's table, pinned so the
       expert's picks sit just below the framework's) *)
    ("mullw", 2.45, 0.0); ("lxvd2x", 2.75, l1_e); ("xvmaddmdp", 2.28, 0.0);
  ]

(* Deterministic per-mnemonic jitter in [lo, hi] for untabled opcodes:
   the instruction-to-instruction energy spread the paper observes even
   within one functional-unit category. *)
let jitter ~lo ~hi name =
  let h = Hashtbl.hash ("epi-jitter:" ^ name) land 0xFFFF in
  lo +. ((hi -. lo) *. (float_of_int h /. 65535.0))

let class_base (i : Mp_isa.Instruction.t) =
  let open Mp_isa.Instruction in
  match i.exec_class with
  | Simple_int -> 0.42
  | Complex_int -> 0.46
  | Mul_int -> 0.60
  | Div_int -> 2.40
  | Fp_arith -> 0.55
  | Fp_fma -> 0.62
  | Fp_heavy -> 1.60
  | Vec_logic -> 0.46
  | Vec_arith -> 0.56
  | Vec_fma -> 0.62
  | Dec_arith -> 1.05
  | Cmp_op -> 0.38
  | Branch_op -> 0.22
  | Nop_op -> 0.10
  | Mem_op ->
    (match i.mem with
     | Load ->
       0.52
       +. (if i.data_class <> Gpr then 0.12 else 0.0)
       +. (if i.update then 0.55 else 0.0)
       +. (if i.algebraic then 0.50 else 0.0)
       +. (if i.indexed then 0.02 else 0.0)
     | Store ->
       (if i.data_class <> Gpr then 1.55 else 0.75)
       +. (if i.update then 0.35 else 0.0)
       +. (if i.indexed then 0.03 else 0.0)
     | No_mem -> 0.40)

(* Bind the EPI function against a fresh copy of the shipped ISA; the
   lookup degrades gracefully (class base without jitter) for opcodes a
   user adds later. *)
let make_opcode_epi () =
  let isa = Mp_isa.Power_isa.load () in
  let cache = Hashtbl.create 256 in
  fun name ->
    match Hashtbl.find_opt cache name with
    | Some e -> e
    | None ->
      let e =
        match List.find_opt (fun (m, _, _) -> m = name) table3_targets with
        | Some (_, target, adder) -> (target *. addic_energy) -. adder
        | None ->
          dyn_scale
          *. (match Mp_isa.Isa_def.find isa name with
              | Some i -> class_base i *. jitter ~lo:0.80 ~hi:1.10 name
              | None -> if name = "bdnz" then 0.22 else 0.40)
      in
      let e = Float.max 0.02 e in
      Hashtbl.add cache name e;
      e

(* Ordered-pair transition energy: how much the dispatch/issue buses
   toggle when opcode [b] follows opcode [a]. Deliberately irregular
   (encoding-dependent), so the best instruction *order* is not
   guessable without search — the effect behind the paper's 17%
   same-mix/different-order power spread. *)
(* Explicit pair factors for the instructions the stressmark case study
   revolves around: the high-energy direction of each 3-cycle is the
   *reverse* of the order a developer naturally writes, so finding it
   requires search (the paper's Expert-DSE vs Expert-manual gap). *)
let pair_overrides =
  [
    (("mullw", "xvmaddadp"), 0.60); (("xvmaddadp", "lxvd2x"), 0.70);
    (("lxvd2x", "mullw"), 0.50);
    (("xvmaddadp", "mullw"), 1.60); (("mullw", "lxvd2x"), 1.50);
    (("lxvd2x", "xvmaddadp"), 1.70);
    (("mulldo", "lxvw4x"), 1.50); (("lxvw4x", "xvnmsubmdp"), 1.55);
    (("xvnmsubmdp", "mulldo"), 1.45);
    (("mulldo", "xvnmsubmdp"), 0.80); (("xvnmsubmdp", "lxvw4x"), 0.90);
    (("lxvw4x", "mulldo"), 0.70);
  ]

let transition_energy a b =
  if a = b then 0.0
  else
    let f =
      match List.assoc_opt (a, b) pair_overrides with
      | Some f -> f
      | None -> jitter ~lo:0.10 ~hi:2.40 ("pair:" ^ a ^ ">" ^ b)
    in
    0.16 *. dyn_scale *. f

(* Power-delivery saturation: dynamic power above [p0] is delivered at
   a diminishing rate (voltage droop / current limits). *)
let saturate p =
  let p0 = 60.0 in
  let excess = Float.max 0.0 (p -. p0) in
  p -. (0.35 *. excess *. excess /. (excess +. 40.0))

let power7 =
  {
    opcode_epi = make_opcode_epi ();
    level_energy = [| l1_e; l2_e; l3_e; mem_e |];
    store_energy = store_e;
    dispatch_energy = 0.04 *. dyn_scale;
    transition_energy;
    idle_power = 30.0;
    uncore_base = 6.0;
    cmp_linear = 1.2;
    cmp_quad = -0.02;
    smt_overhead = 0.5;
    data_scale = (fun daf -> Float.min 1.12 (0.6 +. (0.8 *. daf)));
    saturate;
    noise_rel = 0.004;
    noise_abs = 0.06;
  }
