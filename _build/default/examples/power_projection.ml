(* Power projection: train a small bottom-up CMP/SMT power model on
   MicroProbe-generated micro-benchmarks, then project the power of
   SPEC-surrogate workloads it has never seen — with per-component
   breakdowns (the paper's case study A, at example scale).

   Run with: dune exec examples/power_projection.exe *)

open Microprobe

let () =
  let arch = get_architecture "POWER7" in
  let machine = Machine.create arch.Arch.uarch in
  let cfg ~cores ~smt = Uarch_def.config ~cores ~smt arch.Arch.uarch in

  (* 1. generate a compact micro-architecture-aware training set *)
  print_endline "Generating the training micro-benchmarks...";
  let mono ?mem name =
    let ins = Arch.find_instruction arch name in
    let s = Synthesizer.create ~name:("train-" ^ name) arch in
    Synthesizer.add_pass s (Passes.skeleton ~size:512);
    Synthesizer.add_pass s (Passes.fill_sequence [ ins ]);
    (match mem with
     | Some d -> Synthesizer.add_pass s (Passes.memory_model d)
     | None ->
       if Instruction.is_memory ins then
         Synthesizer.add_pass s
           (Passes.memory_model [ (Cache_geometry.L1, 1.0) ]));
    Synthesizer.add_pass s (Passes.dependency Builder.No_deps);
    Synthesizer.synthesize ~seed:7 s
  in
  let programs =
    [ mono "add"; mono "subf"; mono "mulld"; mono "xvmaddadp"; mono "fadd";
      mono "fmadd"; mono "lbz"; mono "ld"; mono "std"; mono "stfd";
      mono ~mem:[ (Cache_geometry.L2, 1.0) ] "lwz";
      mono ~mem:[ (Cache_geometry.L3, 1.0) ] "lwz";
      mono ~mem:[ (Cache_geometry.MEM, 1.0) ] "lwz" ]
  in
  let run c p = Machine.run machine c p in

  (* 2. the four-step bottom-up methodology *)
  print_endline "Measuring the training set (steps 1-3 of Figure 4)...";
  let smt1 = List.map (run (cfg ~cores:1 ~smt:1)) programs in
  let smt_on =
    List.map (run (cfg ~cores:1 ~smt:2)) programs
    @ List.map (run (cfg ~cores:1 ~smt:4)) programs
  in
  let multi =
    List.concat_map
      (fun cores ->
        List.concat_map
          (fun smt -> List.map (run (cfg ~cores ~smt)) programs)
          [ 1; 4 ])
      [ 1; 2; 4; 8 ]
  in
  let bu =
    Power_model.Bottom_up.train ~baseline:(Machine.baseline_reading machine)
      ~smt1 ~smt_on ~multi ()
  in
  Format.printf "%a@.@." Power_model.Bottom_up.pp bu;

  (* 3. project workloads the model never saw *)
  print_endline "Projecting SPEC-surrogate workloads (unseen by the model):";
  let table =
    Util.Text_table.create
      [ "Workload"; "Config"; "Measured"; "Predicted"; "Err%"; "Dynamic";
        "CMP"; "SMT" ]
  in
  List.iter
    (fun (name, c) ->
      let b = Workloads.Spec.benchmark ~arch name in
      let m = Workloads.Spec.run ~machine ~config:c b in
      let d = Power_model.Bottom_up.decompose bu m in
      let p = Power_model.Bottom_up.breakdown_total d in
      Util.Text_table.add_row table
        [ name;
          Uarch_def.config_to_string c;
          Printf.sprintf "%.1f" m.Measurement.power;
          Printf.sprintf "%.1f" p;
          Printf.sprintf "%.1f%%"
            (Float.abs (p -. m.Measurement.power) /. m.Measurement.power *. 100.);
          Printf.sprintf "%.1f" d.Power_model.Bottom_up.dynamic;
          Printf.sprintf "%.1f" d.Power_model.Bottom_up.cmp_part;
          Printf.sprintf "%.1f" d.Power_model.Bottom_up.smt_part ])
    [ ("hmmer", cfg ~cores:2 ~smt:1); ("mcf", cfg ~cores:4 ~smt:2);
      ("namd", cfg ~cores:8 ~smt:4); ("lbm", cfg ~cores:8 ~smt:2);
      ("povray", cfg ~cores:6 ~smt:4) ];
  Util.Text_table.print table;
  print_endline
    "The breakdown columns come from the model's decomposability:\n\
     top-down models can only produce the total."
