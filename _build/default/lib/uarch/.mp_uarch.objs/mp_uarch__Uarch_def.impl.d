lib/uarch/uarch_def.ml: Cache_geometry Float Format List Mp_isa Pipe Pmc Printf
