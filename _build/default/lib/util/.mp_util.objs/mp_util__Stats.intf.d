lib/util/stats.mli:
