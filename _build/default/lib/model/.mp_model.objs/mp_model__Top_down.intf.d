lib/model/top_down.mli: Format Mp_sim
