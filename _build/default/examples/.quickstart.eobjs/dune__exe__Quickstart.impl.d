examples/quickstart.ml: Arch Builder Cache_geometry Emit Format Instruction Ir List Machine Measurement Microprobe Passes Printf String Synthesizer Uarch_def
