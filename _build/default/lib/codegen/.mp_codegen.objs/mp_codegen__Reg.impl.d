lib/codegen/reg.ml: Format Mp_isa Printf Stdlib
